// protocol_fuzz: seeded mutation fuzzer for the daemon's wire protocol.
//
// Two layers, same corpus of valid request lines:
//
//   parse mode (always): run every mutated frame through
//   server::parse_request in-process. The assertion is "no crash, no
//   hang" -- the parser must reject garbage with a taxonomy error, never
//   throw past its boundary or walk off the line.
//
//   wire mode (--connect): replay the mutated frames against a live
//   daemon. Every response line the daemon sends must be valid JSON,
//   and every `ok:false` must carry an `error.code` from the documented
//   taxonomy (server::known_error_code). A frame may legitimately get
//   the connection closed (oversized -> too_large, bad token ->
//   auth_failed); the fuzzer reconnects and keeps going. After all
//   frames, a torn-frame pass sends every prefix-truncated request and
//   hangs up mid-frame, then a final ping proves the daemon is still
//   serving.
//
// Mutations (seeded, deterministic): bit flips, byte insert/delete,
// truncation, span duplication, embedded NUL and non-UTF-8 bytes, deep
// bracket nesting, and oversized padding past --oversized-bytes. The
// corpus deliberately excludes `shutdown` -- a mutated frame must never
// be able to stop the daemon under test.
//
// Exit 0 = every frame survived. Used by tools/check_netchaos.sh and the
// `protocol_fuzz_smoke` ctest.
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "obs/json.hpp"
#include "server/protocol.hpp"
#include "server/transport.hpp"
#include "util/cli.hpp"

using namespace netalign;

namespace {

struct Rng {
  std::uint64_t state;
  explicit Rng(std::uint64_t seed) : state(seed ? seed : 0x2545f4914f6cdd1dULL) {}
  std::uint64_t next() {
    state ^= state << 13;
    state ^= state >> 7;
    state ^= state << 17;
    return state;
  }
  std::size_t below(std::size_t n) {
    return n == 0 ? 0 : static_cast<std::size_t>(next() % n);
  }
};

/// Valid request lines to mutate. No `shutdown` here, ever: a lucky
/// mutation must not be able to kill the daemon under test. The submit
/// carries a 1-second deadline so a mutation that inflates `iters` into
/// a huge-but-valid job still dies quickly server-side.
std::vector<std::string> base_corpus(const std::string& token) {
  std::vector<std::string> corpus = {
      R"({"method":"ping"})",
      R"({"method":"stats","id":7})",
      R"({"method":"status","job":0})",
      R"({"method":"progress","job":1,"cursor":3})",
      R"({"method":"result","job":2})",
      R"({"method":"cancel","job":0,"id":"c1"})",
      R"({"method":"submit","problem":"bad problem text","solver":"bp",)"
      R"("matcher":"approx","iters":5,"deadline_seconds":1.0,)"
      R"("request_id":"fuzz-1"})",
      R"({"nonsense":true})",
      R"([1,2,3])",
      R"("just a string")",
      R"(not json at all)",
  };
  std::string auth = R"({"method":"auth","token":)";
  obs::append_json_string(auth, token.empty() ? "fuzz-token" : token);
  auth += "}";
  corpus.push_back(std::move(auth));
  return corpus;
}

std::string mutate(const std::string& base, Rng& rng,
                   std::size_t oversized_bytes) {
  std::string s = base;
  switch (rng.below(9)) {
    case 0: {  // bit flip
      if (!s.empty()) {
        const std::size_t i = rng.below(s.size());
        s[i] = static_cast<char>(s[i] ^ (1u << rng.below(8)));
      }
      break;
    }
    case 1: {  // insert a random byte (can be '\n', '{', NUL, ...)
      const auto b = static_cast<char>(rng.next() & 0xff);
      s.insert(rng.below(s.size() + 1), 1, b);
      break;
    }
    case 2: {  // delete a byte
      if (!s.empty()) s.erase(rng.below(s.size()), 1);
      break;
    }
    case 3: {  // truncate
      s.resize(rng.below(s.size() + 1));
      break;
    }
    case 4: {  // duplicate a span
      if (!s.empty()) {
        const std::size_t from = rng.below(s.size());
        const std::size_t len = 1 + rng.below(s.size() - from);
        s.insert(rng.below(s.size() + 1), s.substr(from, len));
      }
      break;
    }
    case 5: {  // embedded NUL + invalid UTF-8
      s.insert(rng.below(s.size() + 1), std::string("\x00\xff\xfe", 3));
      break;
    }
    case 6: {  // deep nesting: recursion bombs for naive parsers
      const std::size_t depth = 64 + rng.below(512);
      std::string bomb(depth, '[');
      bomb.append(depth, ']');
      s.insert(rng.below(s.size() + 1), bomb);
      break;
    }
    case 7: {  // oversized: pad past the server's request-line cap
      const std::size_t want = oversized_bytes + rng.below(4096);
      if (s.size() < want) s.append(want - s.size(), ' ');
      break;
    }
    default: {  // stacked small mutations
      for (int k = 0; k < 4 && !s.empty(); ++k) {
        const std::size_t i = rng.below(s.size());
        s[i] = static_cast<char>(rng.next() & 0xff);
      }
      break;
    }
  }
  return s;
}

/// How many response lines a frame should produce once '\n' is
/// appended: one per non-empty newline-separated segment (the server
/// ignores blank lines and answers every other line exactly once).
std::size_t expected_responses(const std::string& frame) {
  std::size_t count = 0;
  std::size_t start = 0;
  while (start <= frame.size()) {
    const std::size_t eol = frame.find('\n', start);
    const std::size_t end = eol == std::string::npos ? frame.size() : eol;
    if (end > start) ++count;
    if (eol == std::string::npos) break;
    start = eol + 1;
  }
  return count;
}

/// A raw blocking connection with a poll() read deadline -- the fuzzer
/// must detect a hung daemon rather than hang with it.
struct Wire {
  int fd = -1;
  std::string buffer;

  ~Wire() { drop(); }
  void drop() {
    if (fd >= 0) ::close(fd);
    fd = -1;
    buffer.clear();
  }
  [[nodiscard]] bool connected() const { return fd >= 0; }

  bool send_all(std::string_view bytes) {
    std::size_t off = 0;
    while (off < bytes.size()) {
      const ssize_t n =
          ::send(fd, bytes.data() + off, bytes.size() - off, MSG_NOSIGNAL);
      if (n < 0) {
        if (errno == EINTR) continue;
        drop();
        return false;
      }
      off += static_cast<std::size_t>(n);
    }
    return true;
  }

  /// 0 = got a line, 1 = peer closed, -1 = timeout (daemon hung).
  int read_line(std::string& out, int timeout_ms) {
    for (;;) {
      const std::size_t eol = buffer.find('\n');
      if (eol != std::string::npos) {
        out = buffer.substr(0, eol);
        buffer.erase(0, eol + 1);
        return 0;
      }
      pollfd p{fd, POLLIN, 0};
      const int ready = ::poll(&p, 1, timeout_ms);
      if (ready == 0) return -1;
      if (ready < 0) {
        if (errno == EINTR) continue;
        drop();
        return 1;
      }
      char chunk[65536];
      const ssize_t n = ::read(fd, chunk, sizeof(chunk));
      if (n == 0 || (n < 0 && errno != EINTR && errno != EAGAIN)) {
        drop();
        return 1;
      }
      if (n > 0) buffer.append(chunk, static_cast<std::size_t>(n));
    }
  }
};

constexpr int kReadTimeoutMs = 10000;

struct FuzzStats {
  std::size_t frames = 0;
  std::size_t responses = 0;
  std::size_t errors_seen = 0;
  std::size_t closes = 0;
  std::size_t violations = 0;
};

/// Validate one response line against the protocol contract. Returns
/// false (and explains) on a taxonomy violation.
bool check_response(const std::string& line, FuzzStats& stats) {
  obs::JsonValue doc;
  if (!obs::try_parse_json(line, doc) || !doc.is_object()) {
    std::fprintf(stderr, "protocol_fuzz: non-JSON response: %.200s\n",
                 line.c_str());
    return false;
  }
  const obs::JsonValue* ok = doc.find("ok");
  if (ok == nullptr || ok->type() != obs::JsonValue::Type::kBool) {
    std::fprintf(stderr, "protocol_fuzz: response missing ok: %.200s\n",
                 line.c_str());
    return false;
  }
  if (!ok->as_bool()) {
    ++stats.errors_seen;
    const obs::JsonValue* error = doc.find("error");
    const obs::JsonValue* code =
        error != nullptr && error->is_object() ? error->find("code") : nullptr;
    if (code == nullptr || !code->is_string() ||
        !server::known_error_code(code->as_string())) {
      std::fprintf(stderr,
                   "protocol_fuzz: error outside the taxonomy: %.200s\n",
                   line.c_str());
      return false;
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) try {
  CliParser cli(
      "protocol_fuzz: seeded mutation fuzzing of the daemon wire protocol.\n"
      "Parse-mode always runs; add --connect to replay frames at a live "
      "daemon.");
  auto& frames = cli.add_int("frames", 1000, "mutated frames to generate");
  auto& seed = cli.add_int("seed", 42, "mutation RNG seed");
  auto& connect_spec = cli.add_string(
      "connect", "", "daemon endpoint for wire mode (empty = parse-only)");
  auto& auth_token_file = cli.add_string(
      "auth-token-file", "", "auth token file for tcp daemons (wire mode)");
  auto& oversized_bytes = cli.add_int(
      "oversized-bytes", 300000,
      "size floor for oversized frames (should exceed the daemon's "
      "--max-request-bytes)");
  auto& torn = cli.add_bool(
      "torn", true,
      "wire mode: also send every prefix-truncated frame and hang up "
      "mid-frame (--no-torn to skip)");
  if (!cli.parse(argc, argv)) return 0;
  if (frames < 1 || oversized_bytes < 1) {
    std::fprintf(stderr, "protocol_fuzz: flag out of range\n");
    return 2;
  }

  std::string token;
  if (!auth_token_file.empty()) {
    token = server::load_auth_token(auth_token_file);
  }
  const std::vector<std::string> corpus = base_corpus(token);
  Rng rng(static_cast<std::uint64_t>(seed));
  FuzzStats stats;

  // ---- parse mode: the parser must never escape its boundary --------
  for (std::int64_t i = 0; i < frames; ++i) {
    const std::string frame =
        mutate(corpus[rng.below(corpus.size())], rng,
               static_cast<std::size_t>(oversized_bytes));
    server::Request req;
    server::ErrorCode code{};
    std::string message;
    if (!server::parse_request(frame, req, code, message)) {
      if (!server::known_error_code(server::to_string(code)) ||
          message.empty()) {
        std::fprintf(stderr,
                     "protocol_fuzz: parse rejection outside taxonomy "
                     "(frame %lld)\n",
                     static_cast<long long>(i));
        ++stats.violations;
      }
    }
  }
  std::printf("protocol_fuzz: parse mode ok (%lld frames)\n",
              static_cast<long long>(frames));

  if (connect_spec.empty()) {
    if (stats.violations != 0) return 1;
    return 0;
  }

  // ---- wire mode ----------------------------------------------------
  server::Endpoint ep;
  std::string error;
  if (!server::parse_endpoint(connect_spec, ep, error)) {
    std::fprintf(stderr, "protocol_fuzz: %s\n", error.c_str());
    return 2;
  }
  Wire wire;
  auto reconnect = [&]() -> bool {
    wire.drop();
    wire.fd = server::connect_endpoint(ep, error);
    if (wire.fd < 0) {
      std::fprintf(stderr, "protocol_fuzz: reconnect failed: %s\n",
                   error.c_str());
      return false;
    }
    if (token.empty()) return true;
    std::string auth = R"({"method":"auth","token":)";
    obs::append_json_string(auth, token);
    auth += "}\n";
    std::string line;
    if (!wire.send_all(auth) || wire.read_line(line, kReadTimeoutMs) != 0) {
      return false;
    }
    return check_response(line, stats);
  };
  if (!reconnect()) return 1;

  Rng wire_rng(static_cast<std::uint64_t>(seed) ^ 0xda7aba5eULL);
  for (std::int64_t i = 0; i < frames; ++i) {
    std::string frame =
        mutate(corpus[wire_rng.below(corpus.size())], wire_rng,
               static_cast<std::size_t>(oversized_bytes));
    const std::size_t expect = expected_responses(frame);
    frame.push_back('\n');
    ++stats.frames;
    if (!wire.connected() && !reconnect()) return 1;
    if (!wire.send_all(frame)) {
      // The daemon hung up mid-send (a prior frame earned the close and
      // the RST landed here). Fine -- reconnect handles the next frame.
      ++stats.closes;
      continue;
    }
    for (std::size_t k = 0; k < expect; ++k) {
      std::string line;
      const int rc = wire.read_line(line, kReadTimeoutMs);
      if (rc == -1) {
        std::fprintf(stderr,
                     "protocol_fuzz: daemon hung: no response to frame "
                     "%lld within %d ms\n",
                     static_cast<long long>(i), kReadTimeoutMs);
        return 1;
      }
      if (rc == 1) {
        // Closed instead of answering the rest: legal for frames that
        // earn a disconnect (too_large, auth_failed).
        ++stats.closes;
        break;
      }
      ++stats.responses;
      if (!check_response(line, stats)) ++stats.violations;
    }
  }

  if (torn) {
    Rng torn_rng(static_cast<std::uint64_t>(seed) ^ 0x70e4ULL);
    for (const std::string& base : corpus) {
      for (std::size_t cut = 1; cut < base.size();
           cut += 1 + torn_rng.below(7)) {
        Wire t;
        t.fd = server::connect_endpoint(ep, error);
        if (t.fd < 0) {
          std::fprintf(stderr, "protocol_fuzz: torn connect failed: %s\n",
                       error.c_str());
          return 1;
        }
        // A prefix with no newline: the daemon is left holding a
        // partial frame when we vanish. It must just reap the buffer.
        t.send_all(std::string_view(base).substr(0, cut));
        t.drop();
      }
    }
    std::printf("protocol_fuzz: torn-frame pass done\n");
  }

  // The daemon must still be fully alive after everything above.
  if (!wire.connected() && !reconnect()) return 1;
  std::string line;
  if (!wire.send_all("{\"method\":\"ping\"}\n") ||
      wire.read_line(line, kReadTimeoutMs) != 0 ||
      !check_response(line, stats)) {
    std::fprintf(stderr, "protocol_fuzz: daemon not serving after fuzz\n");
    return 1;
  }

  std::printf(
      "protocol_fuzz: wire mode ok: %zu frames, %zu responses, %zu taxonomy "
      "errors, %zu closes, %zu violations\n",
      stats.frames, stats.responses, stats.errors_seen, stats.closes,
      stats.violations);
  return stats.violations == 0 ? 0 : 1;
} catch (const std::exception& e) {
  std::fprintf(stderr, "protocol_fuzz: error: %s\n", e.what());
  return 1;
}
