// Documentation consistency checker, run as the `docs_check` CTest.
//
// Four guarantees, all cheap and all the kind that silently rot:
//  1. every top-level directory under src/ is mentioned (as "src/<name>")
//     in docs/ARCHITECTURE.md, so the module map cannot fall behind the
//     tree;
//  2. every bench binary (bench/bench_*.cpp) is mentioned by name in
//     docs/PERFORMANCE.md, so the bench-to-artifact index cannot fall
//     behind the bench/ directory;
//  3. every relative link target in the repo's Markdown files resolves to
//     an existing file or directory, so renames cannot leave dangling
//     references;
//  4. every --flag the netalign CLI, the netalign_server daemon, and the
//     network-chaos tools (net_proxy, protocol_fuzz) register
//     (add_string/add_int/add_bool/add_double calls in their sources,
//     plus the shared observability flags in src/util/cli.cpp) appears as
//     "--flag" somewhere in README.md or docs/*.md, so a new flag cannot
//     land undocumented.
//
// Scans all *.md under the repo root except build trees, results/, .git
// and ISSUE.md (driver-owned, not part of the docs). Code fences are
// stripped before link extraction so snippets like `operator[](i)` are
// not mistaken for links; http(s)/mailto targets and pure #anchors are
// skipped.
//
//   docs_check /path/to/repo
#include <algorithm>
#include <cctype>
#include <cstdio>
#include <exception>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace fs = std::filesystem;

namespace {

std::string read_file(const fs::path& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open " + path.string());
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

/// Remove ``` fenced blocks and `inline code` spans, preserving line
/// structure so reported line numbers stay meaningful.
std::string strip_code(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  bool in_fence = false;
  std::size_t pos = 0;
  while (pos < text.size()) {
    std::size_t eol = text.find('\n', pos);
    if (eol == std::string::npos) eol = text.size();
    const std::string_view line(text.data() + pos, eol - pos);
    const std::size_t first = line.find_first_not_of(" \t");
    const bool fence_marker =
        first != std::string_view::npos && line.substr(first, 3) == "```";
    if (fence_marker) {
      in_fence = !in_fence;
    } else if (!in_fence) {
      // Drop `inline code` spans within the kept line.
      bool in_tick = false;
      for (const char c : line) {
        if (c == '`') {
          in_tick = !in_tick;
        } else if (!in_tick) {
          out.push_back(c);
        }
      }
    }
    out.push_back('\n');
    pos = eol + 1;
  }
  return out;
}

/// Extract markdown link targets: the (...) part of [text](target).
std::vector<std::pair<std::string, std::size_t>> extract_links(
    const std::string& text) {
  std::vector<std::pair<std::string, std::size_t>> out;
  std::size_t lineno = 1;
  for (std::size_t i = 0; i + 1 < text.size(); ++i) {
    if (text[i] == '\n') {
      ++lineno;
      continue;
    }
    if (text[i] != ']' || text[i + 1] != '(') continue;
    const std::size_t close = text.find(')', i + 2);
    if (close == std::string::npos) continue;
    out.emplace_back(text.substr(i + 2, close - i - 2), lineno);
  }
  return out;
}

bool is_external(const std::string& target) {
  return target.rfind("http://", 0) == 0 || target.rfind("https://", 0) == 0 ||
         target.rfind("mailto:", 0) == 0;
}

bool skip_dir(const fs::path& p) {
  const std::string name = p.filename().string();
  return name == ".git" || name == "results" ||
         name.rfind("build", 0) == 0;
}

/// Flag names registered in `source` via add_string/add_int/add_bool/
/// add_double -- the first string literal after the call is the flag.
std::vector<std::string> registered_flags(const std::string& source) {
  std::vector<std::string> out;
  for (const char* fn :
       {"add_string(", "add_int(", "add_bool(", "add_double("}) {
    std::size_t pos = 0;
    while ((pos = source.find(fn, pos)) != std::string::npos) {
      pos += std::string_view(fn).size();
      // Skip declarations like `add_int(const std::string& ...` -- only a
      // string literal directly names a flag.
      const std::size_t open = source.find('"', pos);
      const std::size_t stop = source.find_first_of(");", pos);
      if (open == std::string::npos || stop == std::string::npos ||
          open > stop) {
        continue;
      }
      const std::size_t close = source.find('"', open + 1);
      if (close == std::string::npos) continue;
      std::string name = source.substr(open + 1, close - open - 1);
      if (!name.empty() &&
          std::find(out.begin(), out.end(), name) == out.end()) {
        out.push_back(std::move(name));
      }
    }
  }
  return out;
}

/// True when `--name` appears in `docs` at a flag boundary (so a
/// documented "--squares-mode" does not excuse an undocumented
/// "--squares").
bool flag_documented(const std::string& docs, const std::string& name) {
  const std::string needle = "--" + name;
  std::size_t pos = 0;
  while ((pos = docs.find(needle, pos)) != std::string::npos) {
    const std::size_t after = pos + needle.size();
    const char c = after < docs.size() ? docs[after] : '\0';
    if (!(std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '-' ||
          c == '_')) {
      return true;
    }
    pos = after;
  }
  return false;
}

}  // namespace

int main(int argc, char** argv) try {
  if (argc != 2) {
    std::fprintf(stderr, "usage: docs_check REPO_ROOT\n");
    return 2;
  }
  const fs::path root = argv[1];
  int failures = 0;

  // --- Check 1: src/ top-level dirs all appear in ARCHITECTURE.md -------
  const fs::path arch_path = root / "docs" / "ARCHITECTURE.md";
  if (!fs::exists(arch_path)) {
    std::fprintf(stderr, "FAIL: docs/ARCHITECTURE.md does not exist\n");
    ++failures;
  } else {
    const std::string arch = read_file(arch_path);
    for (const auto& entry : fs::directory_iterator(root / "src")) {
      if (!entry.is_directory()) continue;
      const std::string name = entry.path().filename().string();
      if (arch.find("src/" + name) == std::string::npos) {
        std::fprintf(stderr,
                     "FAIL: src/%s is not documented in "
                     "docs/ARCHITECTURE.md (mention \"src/%s\")\n",
                     name.c_str(), name.c_str());
        ++failures;
      }
    }
  }

  // --- Check 2: bench binaries all appear in PERFORMANCE.md -------------
  const fs::path perf_path = root / "docs" / "PERFORMANCE.md";
  if (!fs::exists(perf_path)) {
    std::fprintf(stderr, "FAIL: docs/PERFORMANCE.md does not exist\n");
    ++failures;
  } else {
    const std::string perf = read_file(perf_path);
    for (const auto& entry : fs::directory_iterator(root / "bench")) {
      if (!entry.is_regular_file()) continue;
      if (entry.path().extension() != ".cpp") continue;
      const std::string stem = entry.path().stem().string();
      if (stem.rfind("bench_", 0) != 0) continue;  // common.cpp etc.
      if (perf.find(stem) == std::string::npos) {
        std::fprintf(stderr,
                     "FAIL: bench/%s.cpp is not indexed in "
                     "docs/PERFORMANCE.md (mention \"%s\")\n",
                     stem.c_str(), stem.c_str());
        ++failures;
      }
    }
  }

  // --- Check 4: CLI / server flags are all documented -------------------
  // The haystack is the RAW markdown (flags are usually shown inside code
  // fences, which the link checker strips).
  {
    std::string docs;
    const fs::path readme = root / "README.md";
    if (fs::exists(readme)) docs += read_file(readme);
    if (fs::exists(root / "docs")) {
      for (const auto& entry : fs::directory_iterator(root / "docs")) {
        if (entry.path().extension() == ".md") docs += read_file(entry.path());
      }
    }
    for (const char* rel : {"tools/netalign_cli.cpp",
                            "tools/netalign_server.cpp",
                            "tools/net_proxy.cpp",
                            "tools/protocol_fuzz.cpp",
                            "src/util/cli.cpp"}) {
      const fs::path src_path = root / rel;
      if (!fs::exists(src_path)) {
        std::fprintf(stderr, "FAIL: flag source %s does not exist\n", rel);
        ++failures;
        continue;
      }
      for (const std::string& name : registered_flags(read_file(src_path))) {
        if (!flag_documented(docs, name)) {
          std::fprintf(stderr,
                       "FAIL: flag --%s (registered in %s) is not "
                       "documented in README.md or docs/*.md\n",
                       name.c_str(), rel);
          ++failures;
        }
      }
    }
  }

  // --- Check 3: all relative markdown links resolve ---------------------
  std::vector<fs::path> md_files;
  for (fs::recursive_directory_iterator it(root), end; it != end; ++it) {
    if (it->is_directory()) {
      if (skip_dir(it->path())) it.disable_recursion_pending();
      continue;
    }
    if (it->path().extension() != ".md") continue;
    if (it->path().filename() == "ISSUE.md") continue;
    md_files.push_back(it->path());
  }
  for (const auto& md : md_files) {
    const std::string text = strip_code(read_file(md));
    for (const auto& [raw_target, lineno] : extract_links(text)) {
      std::string target = raw_target;
      // Strip an anchor; a bare anchor links within the same file.
      if (const auto hash = target.find('#'); hash != std::string::npos) {
        target = target.substr(0, hash);
      }
      if (target.empty() || is_external(raw_target)) continue;
      const fs::path resolved = md.parent_path() / target;
      if (!fs::exists(resolved)) {
        std::fprintf(stderr, "FAIL: %s:%zu: broken link -> %s\n",
                     fs::relative(md, root).string().c_str(), lineno,
                     raw_target.c_str());
        ++failures;
      }
    }
  }

  if (failures > 0) {
    std::fprintf(stderr, "docs_check: %d failure(s)\n", failures);
    return 1;
  }
  std::printf("docs_check: OK (%zu markdown files checked)\n",
              md_files.size());
  return 0;
} catch (const std::exception& e) {
  std::fprintf(stderr, "error: %s\n", e.what());
  return 1;
}
