#!/usr/bin/env sh
# One-command robustness gate for the fault-injection substrate
# (docs/ARCHITECTURE.md "Fault model & reliable delivery"):
#
#   1. build the ASan+UBSan tree and run the fault suite under it
#      (ctest -L fault) -- the degraded code paths must be memory- and
#      UB-clean, not just green;
#   2. run bench_fault_sweep twice per seed (1, 7, 42) and require
#      bit-identical output -- the determinism contract: every fault
#      decision is a pure function of (plan seed, program order), so a
#      seeded run must replay exactly.
#
#   tools/check_robustness.sh            # both stages
#
# Exits non-zero on any compile error, test failure, sanitizer report, or
# determinism mismatch. Uses the build-asan/ tree; the release tree stays
# untouched.
set -eu

cd "$(dirname "$0")/.."
JOBS="$(nproc 2>/dev/null || echo 2)"

echo "== ASan+UBSan: configure + build =="
cmake --preset asan-ubsan
cmake --build build-asan -j "$JOBS"

echo "== ASan+UBSan: fault suite (ctest -L fault) =="
UBSAN_OPTIONS="${UBSAN_OPTIONS:-print_stacktrace=1 halt_on_error=1}" \
  ctest --test-dir build-asan -L fault --no-tests=error --output-on-failure

echo "== determinism: bench_fault_sweep replays bit-identically =="
TMPDIR_DET="$(mktemp -d)"
trap 'rm -rf "$TMPDIR_DET"' EXIT
for SEED in 1 7 42; do
  ./build-asan/bench/bench_fault_sweep --seed "$SEED" \
    > "$TMPDIR_DET/sweep-$SEED-a.txt"
  ./build-asan/bench/bench_fault_sweep --seed "$SEED" \
    > "$TMPDIR_DET/sweep-$SEED-b.txt"
  if ! cmp -s "$TMPDIR_DET/sweep-$SEED-a.txt" "$TMPDIR_DET/sweep-$SEED-b.txt"
  then
    echo "DETERMINISM FAILURE: seed $SEED produced different output" >&2
    diff "$TMPDIR_DET/sweep-$SEED-a.txt" "$TMPDIR_DET/sweep-$SEED-b.txt" >&2 || true
    exit 1
  fi
  echo "seed $SEED: identical"
done

echo "robustness checks passed"
