#!/usr/bin/env sh
# One-command recovery gate for the checkpoint/restart subsystem
# (docs/ARCHITECTURE.md "Preemption & recovery", docs/FORMATS.md
# "Checkpoint format"):
#
#   1. build the ASan+UBSan tree and run the recovery suite under it
#      (ctest -L recovery) -- restore paths must be memory-clean, not
#      just green;
#   2. kill-resume determinism: for bp, mr, and dist-mr, SIGKILL the CLI
#      at a randomized moment mid-run, resume from the checkpoint it left
#      behind, and require the final matching and objective-history CSV
#      to be byte-identical to an uninterrupted run's. The killed run's
#      trace (cut mid-line by the kill) must still summarize cleanly;
#   3. corruption fallback: flip a byte in the newest checkpoint
#      generation and require resume to recover from .prev; corrupt both
#      generations and require a hard, non-zero-exit refusal;
#   4. deadline: a run under --deadline-seconds must exit cleanly with
#      stopped_reason=deadline and leave a resumable checkpoint.
#
#   tools/check_recovery.sh            # all stages
#
# Exits non-zero on any compile error, test failure, sanitizer report,
# mismatch, or missing checkpoint. Uses the build-asan/ tree (stage 2's
# kill targets run under ASan too); the release tree stays untouched.
set -eu

cd "$(dirname "$0")/.."
JOBS="$(nproc 2>/dev/null || echo 2)"

echo "== ASan+UBSan: configure + build =="
cmake --preset asan-ubsan
cmake --build build-asan -j "$JOBS"

CLI=./build-asan/tools/netalign
SUMMARY=./build-asan/tools/trace_summary
TMP="$(mktemp -d)"
trap 'rm -rf "$TMP"' EXIT

echo "== ASan+UBSan: recovery suite (ctest -L recovery) =="
UBSAN_OPTIONS="${UBSAN_OPTIONS:-print_stacktrace=1 halt_on_error=1}" \
  ctest --test-dir build-asan -L recovery --no-tests=error \
  --output-on-failure

echo "== problem generation =="
"$CLI" generate --type powerlaw --n 700 --dbar 6 --seed 4242 \
  --out "$TMP/p.nap"

# Overwrite 8 bytes in the middle of file $1 (simulated media
# corruption; lands in a section payload, so the section CRC must trip).
corrupt_file() {
  _size="$(wc -c < "$1")"
  printf 'XXXXXXXX' | \
    dd of="$1" bs=1 seek=$((_size / 2)) conv=notrunc 2>/dev/null
}

run_kill_resume() {
  METHOD="$1"
  ITERS="$2"
  D="$TMP/$METHOD"
  mkdir -p "$D"

  echo "-- $METHOD: uninterrupted reference ($ITERS iters) --"
  "$CLI" align --problem "$TMP/p.nap" --method "$METHOD" --iters "$ITERS" \
    --save-matching "$D/ref.mat" --history "$D/ref.csv" > "$D/ref.out"

  # SIGKILL at a randomized delay. The solver checkpoints every
  # iteration, so once the first iteration has committed there is always
  # a usable generation; if the run finishes before the kill, resume
  # degenerates to restore-and-finalize, which must *still* reproduce
  # the reference. A kill that lands before the first checkpoint
  # (startup + squares build under ASan can take >0.1s) proves nothing
  # about recovery, so that draw is retried with a longer delay rather
  # than reported as a failure.
  ATTEMPT=0
  while :; do
    ATTEMPT=$((ATTEMPT + 1))
    DELAY="$(awk -v a="$ATTEMPT" \
      'BEGIN{srand(); printf "%.2f", 0.05 + (a - 1) * 0.20 + rand() * 0.40}')"
    echo "-- $METHOD: killed run (SIGKILL after ${DELAY}s) --"
    rm -f "$D/run.ckpt" "$D/run.ckpt.prev"
    "$CLI" align --problem "$TMP/p.nap" --method "$METHOD" --iters "$ITERS" \
      --checkpoint-out "$D/run.ckpt" --checkpoint-every 1 \
      --trace-out "$D/kill.jsonl" > "$D/kill.out" 2>&1 &
    PID=$!
    sleep "$DELAY"
    kill -9 "$PID" 2>/dev/null || true
    wait "$PID" 2>/dev/null || true
    [ -f "$D/run.ckpt" ] && break
    if [ "$ATTEMPT" -ge 5 ]; then
      echo "FAILURE: $METHOD left no checkpoint behind after $ATTEMPT runs" >&2
      exit 1
    fi
    echo "   (kill landed before the first checkpoint; retrying)"
  done

  # The kill can cut the trace mid-line; trace_summary must tolerate
  # exactly that (a warning, not an error).
  "$SUMMARY" "$D/kill.jsonl" > /dev/null

  echo "-- $METHOD: resume --"
  "$CLI" align --problem "$TMP/p.nap" --method "$METHOD" --iters "$ITERS" \
    --resume "$D/run.ckpt" \
    --save-matching "$D/res.mat" --history "$D/res.csv" > "$D/res.out"

  for F in mat csv; do
    if ! cmp -s "$D/ref.$F" "$D/res.$F"; then
      echo "RECOVERY FAILURE: $METHOD resumed .$F differs from the" \
           "uninterrupted run" >&2
      diff "$D/ref.$F" "$D/res.$F" >&2 || true
      exit 1
    fi
  done
  echo "$METHOD: resumed matching and history identical"
}

echo "== kill-resume determinism =="
run_kill_resume bp 40
run_kill_resume mr 30
run_kill_resume dist-mr 30

echo "== corruption: newest generation falls back to .prev =="
D="$TMP/corrupt"
mkdir -p "$D"
"$CLI" align --problem "$TMP/p.nap" --method mr --iters 6 \
  --checkpoint-out "$D/c.ckpt" --checkpoint-every 1 \
  --save-matching "$D/ref.mat" > /dev/null
if [ ! -f "$D/c.ckpt.prev" ]; then
  echo "FAILURE: no .prev generation after a multi-checkpoint run" >&2
  exit 1
fi
corrupt_file "$D/c.ckpt"
"$CLI" align --problem "$TMP/p.nap" --method mr --iters 6 \
  --resume "$D/c.ckpt" --save-matching "$D/res.mat" > "$D/res.out"
echo "fallback resume succeeded (restored previous generation)"

corrupt_file "$D/c.ckpt.prev"
if "$CLI" align --problem "$TMP/p.nap" --method mr --iters 6 \
     --resume "$D/c.ckpt" > "$D/both.out" 2>&1; then
  echo "FAILURE: resume accepted a checkpoint with both generations" \
       "corrupt" >&2
  cat "$D/both.out" >&2
  exit 1
fi
if ! grep -q "both generations" "$D/both.out"; then
  echo "FAILURE: both-corrupt refusal lacks the expected message" >&2
  cat "$D/both.out" >&2
  exit 1
fi
echo "both-generations-corrupt resume refused, as required"

echo "== deadline: clean exit with best-so-far and a valid checkpoint =="
D="$TMP/deadline"
mkdir -p "$D"
"$CLI" align --problem "$TMP/p.nap" --method bp --iters 100000 \
  --deadline-seconds 0.5 --checkpoint-out "$D/d.ckpt" \
  --trace-out "$D/d.jsonl" > "$D/d.out"
if ! grep -q "(deadline)" "$D/d.out"; then
  echo "FAILURE: deadline run did not report stopped_reason=deadline" >&2
  cat "$D/d.out" >&2
  exit 1
fi
if ! "$SUMMARY" "$D/d.jsonl" | grep -q "stopped=deadline"; then
  echo "FAILURE: trace run_end lacks stopped_reason=deadline" >&2
  exit 1
fi
if [ ! -f "$D/d.ckpt" ]; then
  echo "FAILURE: deadline run left no checkpoint" >&2
  exit 1
fi
"$CLI" align --problem "$TMP/p.nap" --method bp --iters 5 \
  --resume "$D/d.ckpt" > /dev/null
echo "deadline stop honored; checkpoint resumable"

echo "recovery checks passed"
