#!/usr/bin/env bash
# Run the standard bench sweep with --json-out and merge the per-bench
# results into one netalign-bench-sweep-v1 document (docs/PERFORMANCE.md).
#
# Usage:
#   tools/bench_runner.sh [--build-dir DIR] [--out-dir DIR]
#                         [--smoke] [--append LABEL] [--threshold R]
#
#   default          run the sweep, validate each result, write sweep.json
#   --smoke          additionally compare the fresh sweep against the
#                    committed BENCH_netalign.json baseline (exit nonzero on
#                    regression) -- this is what the `bench_smoke` CTest runs
#   --append LABEL   append the fresh sweep to BENCH_netalign.json as a new
#                    trajectory entry labeled LABEL, dated today -- how the
#                    committed baseline is updated after a perf-relevant PR
#
# The sweep profile is fixed (same benches, scales, and seeds as the
# committed BENCH_netalign.json entries) so candidate and baseline numbers
# are comparable; change the profile and the baseline together.
#
# Each result's env block records stopped_reason/iterations_completed;
# the per-result validation below rejects any run that did not complete
# (deadline- or signal-truncated runs measure less work and must never
# enter the baseline).
set -euo pipefail

REPO_ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD_DIR="$REPO_ROOT/build"
OUT_DIR=""
SMOKE=0
APPEND_LABEL=""
THRESHOLD=""

while [[ $# -gt 0 ]]; do
  case "$1" in
    --build-dir) BUILD_DIR="$2"; shift 2 ;;
    --out-dir)   OUT_DIR="$2"; shift 2 ;;
    --smoke)     SMOKE=1; shift ;;
    --append)    APPEND_LABEL="$2"; shift 2 ;;
    --threshold) THRESHOLD="$2"; shift 2 ;;
    -h|--help)   sed -n '2,19p' "$0"; exit 0 ;;
    *) echo "bench_runner.sh: unknown argument: $1" >&2; exit 2 ;;
  esac
done

OUT_DIR="${OUT_DIR:-$BUILD_DIR/bench_results}"
COMPARE="$BUILD_DIR/tools/bench_compare"
BASELINE="$REPO_ROOT/BENCH_netalign.json"
mkdir -p "$OUT_DIR"

for exe in "$BUILD_DIR/bench/bench_kernels" "$COMPARE"; do
  if [[ ! -x "$exe" ]]; then
    echo "bench_runner.sh: missing $exe (build the repo first)" >&2
    exit 2
  fi
done

# --- The sweep profile. Scales are sized so the whole sweep takes tens of
# seconds; seeds are pinned so nnz(S) and objectives are reproducible.
echo "== bench_kernels =="
"$BUILD_DIR/bench/bench_kernels" --scale 0.05 --repeats 3 --iters 10 \
    --batch 8 --seed 909 --json-out "$OUT_DIR/bench_kernels.json"
echo "== bench_fig6_steps_mr =="
"$BUILD_DIR/bench/bench_fig6_steps_mr" --scale 0.05 --iters 10 \
    --seed 606 --json-out "$OUT_DIR/bench_fig6_steps_mr.json"
echo "== bench_fig7_steps_bp =="
"$BUILD_DIR/bench/bench_fig7_steps_bp" --scale 0.05 --iters 10 --batch 8 \
    --seed 707 --json-out "$OUT_DIR/bench_fig7_steps_bp.json"
echo "== bench_server_load =="
# In-process, fixed profile; sized so the latency percentiles clear
# bench_compare's min-seconds floor and actually gate. This is where the
# journal on/off columns (journal_{off,on}_p95_seconds) enter the
# committed baseline: a durability-cost regression trips the
# --latency-threshold gate like any other tail-latency metric.
"$BUILD_DIR/bench/bench_server_load" --n 300 --polite-jobs 40 \
    --polite-iters 40 --aggressive-clients 3 --aggressive-iters 800 \
    --retention-jobs 120 --retained-cap 16 \
    --json-out "$OUT_DIR/bench_server_load.json"

RESULTS=("$OUT_DIR/bench_kernels.json" "$OUT_DIR/bench_fig6_steps_mr.json"
         "$OUT_DIR/bench_fig7_steps_bp.json"
         "$OUT_DIR/bench_server_load.json")

echo "== validate =="
"$COMPARE" --validate "${RESULTS[@]}"

echo "== merge =="
"$COMPARE" --merge "$OUT_DIR/sweep.json" "${RESULTS[@]}"

if [[ -n "$APPEND_LABEL" ]]; then
  echo "== append to $(basename "$BASELINE") =="
  "$COMPARE" --append "$BASELINE" --label "$APPEND_LABEL" \
      --date "$(date -I)" "$OUT_DIR/sweep.json"
fi

if [[ "$SMOKE" -eq 1 ]]; then
  echo "== compare against committed baseline =="
  if [[ ! -f "$BASELINE" ]]; then
    echo "bench_runner.sh: no $BASELINE to compare against" >&2
    exit 2
  fi
  EXTRA=()
  [[ -n "$THRESHOLD" ]] && EXTRA+=(--threshold "$THRESHOLD")
  "$COMPARE" "${EXTRA[@]+"${EXTRA[@]}"}" "$BASELINE" "$OUT_DIR/sweep.json"
fi

echo "bench_runner.sh: done (results in $OUT_DIR)"
