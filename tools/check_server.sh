#!/usr/bin/env sh
# End-to-end smoke gate for the alignment daemon (docs/SERVER.md):
#
#   1. start netalign_server on a scratch endpoint -- an AF_UNIX socket
#      by default, or a loopback TCP port with auth (--transport tcp);
#   2. submit a job through `netalign client` and require the saved
#      matching to be byte-identical to a one-shot `netalign align` of
#      the same problem with the same parameters -- the server must be a
#      transport, never a different solver;
#   3. resubmit the same bytes and require an observable squares-cache
#      hit (server.cache_hit >= 1 in `client stats`);
#   4. exercise the admission/error path with an unknown method;
#   5. run bench_server_load's small in-process profile (per-tenant fair
#      scheduling + bounded retention; nonzero exit if the retained-job
#      cap is violated);
#   6. drain-shutdown the daemon and require a clean exit (and, for
#      unix, a removed socket).
#
#   tools/check_server.sh [--build-dir DIR] [--transport unix|tcp]
#
# Exits non-zero on any mismatch, missed cache hit, or unclean shutdown.
set -eu

cd "$(dirname "$0")/.."
BUILD=./build
TRANSPORT=unix
while [ $# -gt 0 ]; do
  case "$1" in
    --build-dir) BUILD="$2"; shift 2 ;;
    --transport) TRANSPORT="$2"; shift 2 ;;
    *) echo "unknown argument: $1" >&2; exit 2 ;;
  esac
done
case "$TRANSPORT" in
  unix|tcp) ;;
  *) echo "unknown --transport: $TRANSPORT (unix | tcp)" >&2; exit 2 ;;
esac

CLI="$BUILD/tools/netalign"
SERVER="$BUILD/tools/netalign_server"
for BIN in "$CLI" "$SERVER"; do
  if [ ! -x "$BIN" ]; then
    echo "FAILURE: $BIN not built (cmake --build $BUILD)" >&2
    exit 1
  fi
done

TMP="$(mktemp -d)"
SOCK="$TMP/na.sock"
SERVER_PID=""
cleanup() {
  [ -n "$SERVER_PID" ] && kill "$SERVER_PID" 2>/dev/null || true
  rm -rf "$TMP"
}
trap cleanup EXIT

echo "== problem generation =="
"$CLI" generate --type powerlaw --n 300 --dbar 6 --seed 99 \
  --out "$TMP/p.nap"

echo "== one-shot reference =="
"$CLI" align --problem "$TMP/p.nap" --method bp --iters 30 \
  --save-matching "$TMP/ref.mat" > "$TMP/ref.out"

echo "== daemon up ($TRANSPORT) =="
if [ "$TRANSPORT" = "tcp" ]; then
  echo "check-server-secret" > "$TMP/tok"
  "$SERVER" --listen tcp:127.0.0.1:0 --auth-token-file "$TMP/tok" \
    --workers 2 --work-dir "$TMP/jobs" > "$TMP/server.log" 2>&1 &
  SERVER_PID=$!
  # The kernel picks the port; the daemon prints it once bound.
  TRIES=0
  until grep -q 'serving on tcp:' "$TMP/server.log" 2>/dev/null; do
    TRIES=$((TRIES + 1))
    if [ "$TRIES" -gt 100 ]; then
      echo "FAILURE: daemon never reported its TCP port" >&2
      cat "$TMP/server.log" >&2
      exit 1
    fi
    sleep 0.1
  done
  PORT="$(sed -n 's/.*serving on tcp:127\.0\.0\.1:\([0-9]*\).*/\1/p' \
    "$TMP/server.log" | head -n 1)"
  CONN="--connect tcp:127.0.0.1:$PORT --auth-token-file $TMP/tok"
else
  "$SERVER" --socket "$SOCK" --workers 2 --work-dir "$TMP/jobs" \
    > "$TMP/server.log" 2>&1 &
  SERVER_PID=$!
  CONN="--socket $SOCK"
fi
TRIES=0
until "$CLI" client ping $CONN > /dev/null 2>&1; do
  TRIES=$((TRIES + 1))
  if [ "$TRIES" -gt 100 ]; then
    echo "FAILURE: daemon never answered ping" >&2
    cat "$TMP/server.log" >&2
    exit 1
  fi
  sleep 0.1
done

echo "== submit + byte-compare against the one-shot CLI =="
"$CLI" client submit $CONN --problem "$TMP/p.nap" \
  --solver bp --iters 30 --wait --save-matching "$TMP/srv.mat" \
  > "$TMP/submit1.out"
if ! cmp -s "$TMP/ref.mat" "$TMP/srv.mat"; then
  echo "FAILURE: server matching differs from the one-shot CLI" >&2
  diff "$TMP/ref.mat" "$TMP/srv.mat" >&2 || true
  exit 1
fi
echo "server matching byte-identical to one-shot align"

echo "== resubmit: squares cache must hit =="
"$CLI" client submit $CONN --problem "$TMP/p.nap" \
  --solver bp --iters 30 --wait > "$TMP/submit2.out"
"$CLI" client stats $CONN > "$TMP/stats.out"
if ! grep -q '"server.cache_hit":[1-9]' "$TMP/stats.out"; then
  echo "FAILURE: repeat submission did not hit the problem cache" >&2
  cat "$TMP/stats.out" >&2
  exit 1
fi
echo "repeat submission served from cache"

echo "== error taxonomy over the wire =="
if "$CLI" client result $CONN --job 9999 > "$TMP/err.out" 2>&1
then
  echo "FAILURE: result for a nonexistent job did not fail" >&2
  exit 1
fi
if ! grep -q '"not_found"' "$TMP/err.out"; then
  echo "FAILURE: expected error code not_found, got:" >&2
  cat "$TMP/err.out" >&2
  exit 1
fi

if [ "$TRANSPORT" = "tcp" ]; then
  echo "== tcp auth: requests without the token are refused =="
  if "$CLI" client stats --connect "tcp:127.0.0.1:$PORT" \
    > "$TMP/noauth.out" 2>&1
  then
    echo "FAILURE: unauthenticated stats succeeded on tcp" >&2
    exit 1
  fi
  if ! grep -q 'auth_required' "$TMP/noauth.out"; then
    echo "FAILURE: expected auth_required, got:" >&2
    cat "$TMP/noauth.out" >&2
    exit 1
  fi
  echo "unauthenticated request refused with auth_required"
fi

echo "== multi-tenant load smoke (bench_server_load, in-process) =="
BENCH="$BUILD/bench/bench_server_load"
if [ -x "$BENCH" ]; then
  # Quick scheduling/retention exercise: the retained-cap invariant is
  # enforced (nonzero exit on violation); the fairness ratio is printed.
  "$BENCH" --smoke > "$TMP/load.out" 2>&1 || {
    echo "FAILURE: bench_server_load --smoke failed" >&2
    cat "$TMP/load.out" >&2
    exit 1
  }
  grep 'degradation' "$TMP/load.out" || true
else
  echo "skipped ($BENCH not built)"
fi

echo "== drain shutdown =="
"$CLI" client shutdown $CONN > /dev/null
WAITED=0
while kill -0 "$SERVER_PID" 2>/dev/null; do
  WAITED=$((WAITED + 1))
  if [ "$WAITED" -gt 100 ]; then
    echo "FAILURE: daemon still alive 10s after drain shutdown" >&2
    exit 1
  fi
  sleep 0.1
done
wait "$SERVER_PID" 2>/dev/null && RC=0 || RC=$?
if [ "$RC" -ne 0 ]; then
  echo "FAILURE: daemon exited with rc=$RC" >&2
  cat "$TMP/server.log" >&2
  exit 1
fi
SERVER_PID=""
if [ "$TRANSPORT" = "unix" ] && [ -e "$SOCK" ]; then
  echo "FAILURE: daemon left its socket behind" >&2
  exit 1
fi
echo "clean shutdown"

echo "server checks passed ($TRANSPORT)"
