#!/usr/bin/env bash
# Drive bench_server_load against a *real* netalign_server daemon: start
# the binary on a scratch socket with the bench's quota/retention profile,
# run the three load phases over it (baseline latency, 10x-aggressive
# contention, retention sweep), and shut it down. This measures the shipped
# daemon end to end -- socket, poll loop, scheduler -- where the bench's
# default in-process mode measures the library.
#
# Usage:
#   tools/bench_server_load.sh [--build-dir DIR] [--out FILE]
#                              [--smoke] [--no-enforce]
#
#   --smoke       small CI profile (this is what the server_load_smoke
#                 CTest runs)
#   --no-enforce  report the fairness ratio without gating on it
#
# The JSON result (bench_result schema, docs/PERFORMANCE.md) lands in
# --out (default: BUILD/bench_results/bench_server_load.json); merge and
# baseline flows are the same as every other bench via bench_runner.sh's
# tooling (bench_compare --validate / --merge).
set -euo pipefail

REPO_ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD_DIR="$REPO_ROOT/build"
OUT=""
SMOKE=0
ENFORCE=1

while [[ $# -gt 0 ]]; do
  case "$1" in
    --build-dir)  BUILD_DIR="$2"; shift 2 ;;
    --out)        OUT="$2"; shift 2 ;;
    --smoke)      SMOKE=1; shift ;;
    --no-enforce) ENFORCE=0; shift ;;
    -h|--help)    sed -n '2,17p' "$0"; exit 0 ;;
    *) echo "bench_server_load.sh: unknown argument: $1" >&2; exit 2 ;;
  esac
done

SERVER="$BUILD_DIR/tools/netalign_server"
BENCH="$BUILD_DIR/bench/bench_server_load"
CLI="$BUILD_DIR/tools/netalign"
for exe in "$SERVER" "$BENCH" "$CLI"; do
  if [[ ! -x "$exe" ]]; then
    echo "bench_server_load.sh: missing $exe (build the repo first)" >&2
    exit 2
  fi
done
OUT="${OUT:-$BUILD_DIR/bench_results/bench_server_load.json}"
mkdir -p "$(dirname "$OUT")"

TMP="$(mktemp -d)"
SOCK="$TMP/na.sock"
SERVER_PID=""
cleanup() {
  [[ -n "$SERVER_PID" ]] && kill "$SERVER_PID" 2>/dev/null || true
  rm -rf "$TMP"
}
trap cleanup EXIT

# The daemon profile must match what the bench asserts about: the same
# retained cap it checks, a per-tenant running cap below --workers (that
# reserve is what bounds polite latency under an aggressive flood), and a
# per-tenant queue quota below the global queue cap.
RETAINED_CAP=32
[[ "$SMOKE" -eq 1 ]] && RETAINED_CAP=16

echo "== daemon up ($SERVER) =="
"$SERVER" --socket "$SOCK" --workers 2 --threads 1 \
  --queue-cap 32 --tenant-queue-cap 4 --tenant-running-cap 1 \
  --retained-cap "$RETAINED_CAP" --work-dir "$TMP/jobs" \
  > "$TMP/server.log" 2>&1 &
SERVER_PID=$!
TRIES=0
until "$CLI" client ping --socket "$SOCK" > /dev/null 2>&1; do
  TRIES=$((TRIES + 1))
  if [[ "$TRIES" -gt 100 ]]; then
    echo "bench_server_load.sh: daemon never answered ping" >&2
    cat "$TMP/server.log" >&2
    exit 1
  fi
  sleep 0.1
done

ARGS=(--socket "$SOCK" --retained-cap "$RETAINED_CAP" --json-out "$OUT")
[[ "$SMOKE" -eq 1 ]] && ARGS+=(--smoke)
[[ "$ENFORCE" -eq 1 ]] && ARGS+=(--enforce)
echo "== bench_server_load ${ARGS[*]} =="
"$BENCH" "${ARGS[@]}"

echo "== daemon down =="
"$CLI" client shutdown --socket "$SOCK" --now > /dev/null
wait "$SERVER_PID" && RC=0 || RC=$?
SERVER_PID=""
if [[ "$RC" -ne 0 ]]; then
  echo "bench_server_load.sh: daemon exited with rc=$RC" >&2
  cat "$TMP/server.log" >&2
  exit 1
fi

"$BUILD_DIR/tools/bench_compare" --validate "$OUT"
echo "bench_server_load.sh: done ($OUT)"
