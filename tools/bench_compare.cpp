// Compare, validate, merge, and archive machine-readable bench results
// (docs/PERFORMANCE.md; schemas in src/obs/bench_result.hpp).
//
// Modes:
//   bench_compare BASELINE CANDIDATE [--threshold R] [--min-seconds S]
//                 [--latency-threshold L]
//       Per-metric delta table; exits 1 when any time metric (a `_seconds`
//       key whose baseline is at least --min-seconds) regresses beyond
//       base*(1+R). Latency percentile metrics (`_p50/_p95/_p99_seconds`)
//       get the looser base*(1+L) gate. BASELINE may be a result, sweep,
//       or trajectory file (trajectories compare against their last entry,
//       or --entry LABEL).
//   bench_compare --validate FILE...
//       Schema-check each file; exits 1 on the first invalid one.
//   bench_compare --merge OUT FILE...
//       Merge result files into one sweep document at OUT.
//   bench_compare --append TRAJ --label L --date YYYY-MM-DD SWEEP
//       Append SWEEP as a labeled entry to the trajectory TRAJ (creating
//       it if absent) -- how tools/bench_runner.sh grows BENCH_netalign.json.
#include <cstdio>
#include <exception>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "obs/bench_result.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

using namespace netalign;

namespace {

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open " + path);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

obs::JsonValue load_json(const std::string& path) {
  try {
    return obs::parse_json(read_file(path));
  } catch (const std::exception& e) {
    throw std::runtime_error(path + ": " + e.what());
  }
}

int run_validate(const std::vector<std::string>& paths) {
  for (const auto& path : paths) {
    const auto errors = obs::validate_bench_json(load_json(path));
    if (!errors.empty()) {
      for (const auto& err : errors) {
        std::fprintf(stderr, "%s: %s\n", path.c_str(), err.c_str());
      }
      return 1;
    }
    std::printf("%s: OK\n", path.c_str());
  }
  return 0;
}

int run_merge(const std::string& out_path,
              const std::vector<std::string>& paths) {
  std::vector<obs::JsonValue> docs;
  docs.reserve(paths.size());
  for (const auto& path : paths) docs.push_back(load_json(path));
  const std::string merged = obs::merge_results_to_sweep(docs);
  std::ofstream out(out_path);
  if (!out) throw std::runtime_error("cannot open " + out_path);
  out << merged;
  std::printf("merged %zu result(s) into %s\n", paths.size(),
              out_path.c_str());
  return 0;
}

int run_append(const std::string& traj_path, const std::string& sweep_path,
               const std::string& label, const std::string& date) {
  if (label.empty() || date.empty()) {
    throw std::runtime_error("--append requires --label and --date");
  }
  std::string existing;
  if (std::ifstream probe(traj_path); probe) existing = read_file(traj_path);
  const std::string updated = obs::append_trajectory_entry(
      existing, load_json(sweep_path), label, date);
  std::ofstream out(traj_path);
  if (!out) throw std::runtime_error("cannot open " + traj_path);
  out << updated;
  std::printf("appended entry \"%s\" to %s\n", label.c_str(),
              traj_path.c_str());
  return 0;
}

int run_compare(const std::string& base_path, const std::string& cand_path,
                const obs::CompareOptions& options,
                const std::string& entry_label) {
  const auto base = obs::collect_metrics(load_json(base_path), entry_label);
  const auto cand = obs::collect_metrics(load_json(cand_path));
  const auto deltas = obs::compare_metrics(base, cand, options);
  TextTable table({"metric", "baseline", "candidate", "ratio", "verdict"});
  for (const auto& d : deltas) {
    const char* verdict = !d.is_time     ? "info"
                          : !d.gated     ? "noise"
                          : d.regression ? "REGRESSION"
                          : d.is_latency ? "ok (latency)"
                                         : "ok";
    table.add_row({d.name, TextTable::fixed(d.base, 6),
                   TextTable::fixed(d.cand, 6),
                   d.base == 0.0 ? "-" : TextTable::fixed(d.ratio(), 2),
                   verdict});
  }
  table.print();
  std::printf("compared %zu shared metric(s); gate: candidate > baseline * "
              "%.2f on _seconds metrics >= %.3fs (* %.2f on _p50/_p95/_p99 "
              "latency percentiles)\n",
              deltas.size(), 1.0 + options.threshold, options.min_seconds,
              1.0 + options.latency_threshold);
  if (obs::has_regression(deltas)) {
    std::fprintf(stderr, "bench_compare: REGRESSION detected\n");
    return 1;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) try {
  CliParser cli(
      "Compare two bench JSON files (exit 1 on regression), or --validate / "
      "--merge / --append them. See docs/PERFORMANCE.md.");
  auto& validate = cli.add_bool("validate", false, "schema-check the inputs");
  auto& merge = cli.add_string("merge", "", "merge results into this sweep");
  auto& append = cli.add_string("append", "",
                                "append a sweep entry to this trajectory");
  auto& label = cli.add_string("label", "", "entry label for --append");
  auto& date = cli.add_string("date", "", "entry date for --append");
  auto& entry =
      cli.add_string("entry", "", "trajectory entry label to compare against "
                                  "(default: last entry)");
  auto& threshold = cli.add_double(
      "threshold", obs::CompareOptions{}.threshold,
      "allowed relative slowdown before a time metric regresses");
  auto& min_seconds = cli.add_double(
      "min-seconds", obs::CompareOptions{}.min_seconds,
      "time metrics with a smaller baseline are never gated");
  auto& latency_threshold = cli.add_double(
      "latency-threshold", obs::CompareOptions{}.latency_threshold,
      "allowed relative slowdown for _p50/_p95/_p99_seconds latency "
      "percentile metrics (noisier than kernel times)");
  if (!cli.parse(argc, argv)) return 0;
  const auto& args = cli.positional();

  if (validate) {
    if (args.empty()) throw std::runtime_error("--validate needs files");
    return run_validate(args);
  }
  if (!merge.empty()) {
    if (args.empty()) throw std::runtime_error("--merge needs result files");
    return run_merge(merge, args);
  }
  if (!append.empty()) {
    if (args.size() != 1) {
      throw std::runtime_error("--append needs exactly one sweep file");
    }
    return run_append(append, args[0], label, date);
  }
  if (args.size() != 2) {
    std::fprintf(stderr, "usage: bench_compare BASELINE CANDIDATE "
                         "(or --validate/--merge/--append; --help)\n");
    return 2;
  }
  obs::CompareOptions options;
  options.threshold = threshold;
  options.min_seconds = min_seconds;
  options.latency_threshold = latency_threshold;
  return run_compare(args[0], args[1], options, entry);
} catch (const std::exception& e) {
  std::fprintf(stderr, "error: %s\n", e.what());
  return 2;
}
