// Summarize a JSONL run trace (docs/OBSERVABILITY.md) into the per-step
// time table the paper's Figures 6 and 7 report.
//
// Reads the trace produced by --trace-out, groups events into runs at each
// run_start, sums the per-step seconds of every iteration event, and
// prints one {step, seconds, fraction} table per run -- the same layout
// the bench binaries print live, but reconstructed entirely from the
// trace. Also reports the run's iteration/rounding counts, the run_end
// totals, and the final counter registry when present.
//
//   trace_summary trace.jsonl
//   trace_summary --csv steps.csv trace.jsonl
#include <cstdio>
#include <exception>
#include <fstream>
#include <string>
#include <vector>

#include "obs/json.hpp"
#include "obs/jsonl_tail.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

using namespace netalign;

namespace {

/// Accumulated view of one run (run_start .. run_end).
struct RunSummary {
  std::string method = "unknown";
  std::vector<std::string> params;  // "key=value" strings from run_start
  std::vector<std::pair<std::string, double>> step_seconds;  // ordered
  std::int64_t iterations = 0;
  std::int64_t rounds = 0;
  bool has_end = false;
  double total_seconds = 0.0;
  double objective = 0.0;
  std::int64_t best_iteration = 0;
  std::string stopped_reason;  // empty when run_end predates the field
  std::vector<std::pair<std::string, std::int64_t>> counters;
};

void add_step(RunSummary& run, const std::string& name, double seconds) {
  for (auto& [step, total] : run.step_seconds) {
    if (step == name) {
      total += seconds;
      return;
    }
  }
  run.step_seconds.emplace_back(name, seconds);
}

/// Render a run_start field value for the header line.
std::string field_repr(const obs::JsonValue& v) {
  using Type = obs::JsonValue::Type;
  switch (v.type()) {
    case Type::kString:
      return v.as_string();
    case Type::kNumber: {
      const double d = v.as_number();
      if (d == static_cast<double>(static_cast<std::int64_t>(d))) {
        return std::to_string(static_cast<std::int64_t>(d));
      }
      return std::to_string(d);
    }
    case Type::kBool:
      return v.as_bool() ? "true" : "false";
    default:
      return "?";
  }
}

void print_run(const RunSummary& run, int index, const std::string& csv) {
  std::printf("== run %d: %s", index, run.method.c_str());
  for (const auto& p : run.params) std::printf(" %s", p.c_str());
  std::printf(" ==\n");

  double grand = 0.0;
  for (const auto& [step, seconds] : run.step_seconds) grand += seconds;
  TextTable table({"step", "seconds", "fraction"});
  for (const auto& [step, seconds] : run.step_seconds) {
    table.add_row({step, TextTable::fixed(seconds, 3),
                   TextTable::pct(grand > 0.0 ? seconds / grand : 0.0)});
  }
  table.print();
  if (!csv.empty()) table.write_csv(csv);

  std::printf("iterations=%lld rounds=%lld",
              static_cast<long long>(run.iterations),
              static_cast<long long>(run.rounds));
  if (run.has_end) {
    std::printf(" total=%.3fs objective=%.3f best_iteration=%lld",
                run.total_seconds, run.objective,
                static_cast<long long>(run.best_iteration));
    if (!run.stopped_reason.empty()) {
      std::printf(" stopped=%s", run.stopped_reason.c_str());
    }
  }
  std::printf("\n");
  if (!run.counters.empty()) {
    std::printf("counters:\n");
    for (const auto& [name, value] : run.counters) {
      // Wide enough for squares.implicit_cursor_reuse_hits and friends.
      std::printf("  %-36s %lld\n", name.c_str(),
                  static_cast<long long>(value));
    }
  }
  std::printf("\n");
}

}  // namespace

int main(int argc, char** argv) try {
  CliParser cli(
      "trace_summary: per-step time table from a JSONL run trace.\n"
      "usage: trace_summary [flags] TRACE.jsonl");
  auto& csv = cli.add_string("csv", "",
                             "also write each run's step table to this CSV "
                             "(last run wins when the trace has several)");
  if (!cli.parse(argc, argv)) return 0;
  if (cli.positional().size() != 1) {
    std::fprintf(stderr, "usage: trace_summary [flags] TRACE.jsonl\n");
    return 1;
  }
  const std::string path = cli.positional()[0];
  if (!std::ifstream(path)) {
    // The tail reader tolerates a missing file (it may appear later for a
    // live consumer); a one-shot summary should fail loudly instead.
    std::fprintf(stderr, "error: cannot open %s\n", path.c_str());
    return 1;
  }

  // Group lines into runs. A trace normally opens with run_start, but a
  // truncated or solver-only trace may not; events before the first
  // run_start fall into an implicit run 0.
  std::vector<RunSummary> runs;
  auto current = [&]() -> RunSummary& {
    if (runs.empty()) runs.emplace_back();
    return runs.back();
  };

  // The writer here is known dead, so the tail-tolerant contract of
  // obs::JsonlTailReader (docs/OBSERVABILITY.md) maps onto one pass:
  // kPending with a partial tail and kTruncatedTail are the crashed
  // writer's cut-off final event (warn and stop); kMalformed mid-stream
  // stays a hard error. The server's progress stream shares this reader,
  // so both consumers tolerate exactly the same damage.
  obs::JsonlTailReader reader(path);
  obs::JsonValue doc;
  for (bool done = false; !done;) {
    using Status = obs::JsonlTailReader::Status;
    switch (reader.next(doc)) {
      case Status::kPending:
        if (reader.has_partial_tail()) {
          std::fprintf(
              stderr, "warning: %s:%lld: ignoring truncated final line\n",
              path.c_str(), static_cast<long long>(reader.lineno() + 1));
        }
        done = true;
        continue;
      case Status::kTruncatedTail:
        std::fprintf(stderr,
                     "warning: %s:%lld: ignoring truncated final line\n",
                     path.c_str(), static_cast<long long>(reader.lineno()));
        done = true;
        continue;
      case Status::kMalformed:
        std::fprintf(stderr, "error: %s:%lld: malformed JSON\n", path.c_str(),
                     static_cast<long long>(reader.lineno()));
        return 1;
      case Status::kEvent:
        break;
    }
    const obs::JsonValue* event = doc.find("event");
    if (event == nullptr || !event->is_string()) {
      std::fprintf(stderr, "error: %s:%lld: missing \"event\" field\n",
                   path.c_str(), static_cast<long long>(reader.lineno()));
      return 1;
    }
    const std::string& kind = event->as_string();
    if (kind == "run_start") {
      RunSummary run;
      if (const auto* method = doc.find("method")) {
        run.method = method->as_string();
      }
      // Everything except the envelope and build metadata renders into the
      // header: the thread count plus the caller's parameter fields.
      for (const auto& [key, value] : doc.members()) {
        if (key == "event" || key == "ts" || key == "seq" ||
            key == "method" || key == "omp_schedule" ||
            key == "omp_version" || key == "git_sha" ||
            key == "build_type" || key == "build_flags") {
          continue;
        }
        run.params.push_back(key + "=" + field_repr(value));
      }
      runs.push_back(std::move(run));
    } else if (kind == "iteration") {
      RunSummary& run = current();
      run.iterations += 1;
      if (const auto* steps = doc.find("steps"); steps != nullptr &&
                                                 steps->is_object()) {
        for (const auto& [step, seconds] : steps->members()) {
          add_step(run, step, seconds.as_number());
        }
      }
    } else if (kind == "round") {
      current().rounds += 1;
    } else if (kind == "run_end") {
      RunSummary& run = current();
      run.has_end = true;
      if (const auto* v = doc.find("total_seconds")) {
        run.total_seconds = v->as_number();
      }
      if (const auto* v = doc.find("objective")) {
        run.objective = v->as_number();
      }
      if (const auto* v = doc.find("best_iteration")) {
        run.best_iteration = static_cast<std::int64_t>(v->as_number());
      }
      if (const auto* v = doc.find("stopped_reason");
          v != nullptr && v->is_string()) {
        run.stopped_reason = v->as_string();
      }
      if (const auto* v = doc.find("counters");
          v != nullptr && v->is_object()) {
        for (const auto& [name, value] : v->members()) {
          run.counters.emplace_back(
              name, static_cast<std::int64_t>(value.as_number()));
        }
      }
    }
    // Unknown event types are skipped: the schema is allowed to grow.
  }

  if (runs.empty()) {
    std::printf("no events in %s\n", path.c_str());
    return 0;
  }
  for (std::size_t i = 0; i < runs.size(); ++i) {
    print_run(runs[i], static_cast<int>(i), csv);
  }
  return 0;
} catch (const std::exception& e) {
  std::fprintf(stderr, "error: %s\n", e.what());
  return 1;
}
