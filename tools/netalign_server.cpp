// netalign_server: the alignment-as-a-service daemon.
//
// Listens on an AF_UNIX socket or a TCP port for newline-delimited JSON
// requests (protocol spec: docs/SERVER.md), runs alignment jobs on a
// bounded worker pool with an LRU cache of parsed problems + squares
// matrices, and streams solver progress by re-serving each job's JSONL
// trace. TCP listeners require --auth-token-file; see docs/SERVER.md
// "Transports & network hardening".
//
// Examples:
//   netalign_server --socket /tmp/netalign.sock --workers 2
//       --work-dir /tmp/netalign-jobs &
//   netalign client ping --socket /tmp/netalign.sock
//
//   netalign_server --listen tcp:127.0.0.1:4455 --auth-token-file tok
//       --idle-timeout-ms 30000 --max-conns 256 --work-dir /tmp/jobs &
//   netalign client ping --connect tcp:127.0.0.1:4455 --auth-token-file tok
//
// SIGTERM/SIGINT trigger a drain shutdown: no new submits, queued and
// running jobs finish, then the daemon exits and removes the socket.
#include <cstdio>
#include <exception>
#include <string>

#include "server/server.hpp"
#include "server/transport.hpp"
#include "util/cli.hpp"
#include "util/parallel.hpp"
#include "util/stop.hpp"

using namespace netalign;

int main(int argc, char** argv) try {
  CliParser cli(
      "netalign_server: serve alignment jobs over a local socket.\n"
      "Wire protocol: newline-delimited JSON, documented in docs/SERVER.md.");
  auto& socket_path = cli.add_string(
      "socket", "", "AF_UNIX socket path (shorthand for --listen unix:<path>)");
  auto& listen = cli.add_string(
      "listen", "",
      "endpoint to serve on: unix:<path> or tcp:<host>:<port> (port 0 = "
      "ephemeral; the bound port is printed on startup)");
  auto& auth_token_file = cli.add_string(
      "auth-token-file", "",
      "file whose first line is the shared auth token (required for tcp: "
      "listeners; clients authenticate per connection)");
  auto& idle_timeout_ms = cli.add_int(
      "idle-timeout-ms", 0,
      "drop connections with no socket activity for this long (0 = never)");
  auto& max_conns = cli.add_int(
      "max-conns", 0,
      "max simultaneous connections; overflow is refused with a rejected "
      "error (0 = unlimited)");
  auto& workers = cli.add_int("workers", 2, "solver worker threads");
  auto& queue_cap = cli.add_int(
      "queue-cap", 16, "max queued jobs before submits are rejected");
  auto& tenant_queue_cap = cli.add_int(
      "tenant-queue-cap", 8,
      "max queued jobs per tenant before quota_exceeded");
  auto& tenant_running_cap = cli.add_int(
      "tenant-running-cap", 0,
      "max concurrently running jobs per tenant (0 = no cap)");
  auto& drr_quantum = cli.add_int(
      "drr-quantum", 100,
      "iteration-credits per tenant per fair-scheduling pass");
  auto& retained_cap = cli.add_int(
      "retained-cap", 256,
      "finished jobs kept before LRU eviction (then: expired)");
  auto& cache_cap = cli.add_int(
      "cache-cap", 8, "LRU capacity: parsed problems + squares matrices");
  auto& max_request = cli.add_int(
      "max-request-bytes", static_cast<int64_t>(server::kDefaultMaxRequestBytes),
      "largest accepted request line");
  auto& max_output = cli.add_int(
      "max-output-bytes", 16 << 20,
      "per-connection unread response backlog before the client is dropped");
  auto& max_problem = cli.add_int(
      "max-problem-bytes", 1 << 30,
      "largest problem_path file a worker will read");
  auto& work_dir = cli.add_string(
      "work-dir", "", "directory for per-job trace files (required)");
  auto& journal = cli.add_bool(
      "journal", true,
      "write-ahead job journal in --work-dir (--no-journal = volatile jobs)");
  auto& journal_fsync = cli.add_bool(
      "journal-fsync", false,
      "fsync every journal append, not just terminal records");
  auto& recover = cli.add_bool(
      "recover", true,
      "replay the journal at startup (--no-recover discards prior jobs)");
  auto& checkpoint_every = cli.add_int(
      "checkpoint-every", 25,
      "solver-checkpoint cadence for running jobs, in iterations (0 = off)");
  auto& squares_mode = cli.add_string(
      "squares-mode", "explicit",
      "default squares backend for submits without one: explicit | implicit "
      "| auto");
  auto& squares_max_mb = cli.add_int(
      "squares-max-mb", 2048,
      "auto-mode threshold: explicit squares estimate (MiB) beyond which "
      "jobs build the implicit backend");
  auto& threads = cli.add_int("threads", 0, "OpenMP threads (0 = default)");
  if (!cli.parse(argc, argv)) return 0;
  if ((socket_path.empty() == listen.empty()) || work_dir.empty()) {
    std::fprintf(stderr,
                 "netalign_server: --work-dir and exactly one of --socket / "
                 "--listen are required\n");
    return 2;
  }
  if (workers < 1 || queue_cap < 1 || tenant_queue_cap < 1 ||
      tenant_running_cap < 0 || drr_quantum < 1 || retained_cap < 1 ||
      cache_cap < 1 || max_request < 1 || max_output < 1 ||
      max_problem < 1 || checkpoint_every < 0 || squares_max_mb < 1 ||
      idle_timeout_ms < 0 || max_conns < 0) {
    std::fprintf(stderr, "netalign_server: flag out of range\n");
    return 2;
  }
  if (squares_mode != "explicit" && squares_mode != "implicit" &&
      squares_mode != "auto") {
    std::fprintf(stderr,
                 "netalign_server: --squares-mode must be explicit | "
                 "implicit | auto\n");
    return 2;
  }
  if (threads > 0) set_threads(static_cast<int>(threads));

  const std::string spec =
      listen.empty() ? "unix:" + std::string(socket_path) : std::string(listen);
  server::Endpoint endpoint;
  std::string endpoint_error;
  if (!server::parse_endpoint(spec, endpoint, endpoint_error)) {
    std::fprintf(stderr, "netalign_server: %s\n", endpoint_error.c_str());
    return 2;
  }
  std::string auth_token;
  if (!auth_token_file.empty()) {
    auth_token = server::load_auth_token(auth_token_file);
  }
  if (endpoint.kind == server::Endpoint::Kind::kTcp && auth_token.empty()) {
    std::fprintf(stderr,
                 "netalign_server: tcp listeners require --auth-token-file "
                 "(unix sockets are guarded by filesystem permissions; a TCP "
                 "port is not)\n");
    return 2;
  }

  server::ServerOptions options;
  options.listen = spec;
  options.auth_token = auth_token;
  options.idle_timeout_ms = idle_timeout_ms;
  options.max_conns = static_cast<std::size_t>(max_conns);
  options.workers = static_cast<int>(workers);
  options.queue_cap = static_cast<std::size_t>(queue_cap);
  options.tenant_queue_cap = static_cast<std::size_t>(tenant_queue_cap);
  options.tenant_running_cap = static_cast<int>(tenant_running_cap);
  options.drr_quantum = drr_quantum;
  options.retained_cap = static_cast<std::size_t>(retained_cap);
  options.cache_cap = static_cast<std::size_t>(cache_cap);
  options.max_request_bytes = static_cast<std::size_t>(max_request);
  options.max_output_bytes = static_cast<std::size_t>(max_output);
  options.max_problem_bytes = static_cast<std::size_t>(max_problem);
  options.work_dir = work_dir;
  options.journal = journal;
  options.journal_fsync = journal_fsync;
  options.recover = recover;
  options.checkpoint_every = checkpoint_every;
  options.squares_mode = squares_mode;
  options.squares_max_mb = static_cast<std::uint64_t>(squares_max_mb);
  options.stop_flag = install_stop_signal_handlers();

  server::Server srv(options);
  // run() prints the authoritative "serving on <spec>" line once the
  // listener is bound (the kernel picks the port for tcp:...:0).
  std::printf("netalign_server: starting (%lld workers, queue %lld, "
              "cache %lld)\n",
              static_cast<long long>(workers),
              static_cast<long long>(queue_cap),
              static_cast<long long>(cache_cap));
  std::fflush(stdout);
  const int rc = srv.run();
  std::printf("netalign_server: exiting (rc=%d)\n", rc);
  return rc;
} catch (const std::exception& e) {
  std::fprintf(stderr, "netalign_server: error: %s\n", e.what());
  return 1;
}
