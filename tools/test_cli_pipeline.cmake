# End-to-end smoke test of the netalign CLI: generate -> stats -> align
# (saving the matching) -> match. Run via ctest; CLI points at the built
# binary and WORKDIR at a scratch directory.
if(NOT DEFINED CLI OR NOT DEFINED WORKDIR)
  message(FATAL_ERROR "pass -DCLI=<binary> -DWORKDIR=<dir>")
endif()
file(MAKE_DIRECTORY "${WORKDIR}")

function(run_step)
  execute_process(COMMAND ${ARGV} RESULT_VARIABLE rv
                  OUTPUT_VARIABLE out ERROR_VARIABLE err)
  if(NOT rv EQUAL 0)
    message(FATAL_ERROR "step failed (${rv}): ${ARGV}\n${out}\n${err}")
  endif()
endfunction()

set(problem "${WORKDIR}/pipeline.nap")
set(matching "${WORKDIR}/pipeline.match")

run_step("${CLI}" generate --type powerlaw --n 120 --dbar 3 --seed 9
         --out "${problem}")
if(NOT EXISTS "${problem}")
  message(FATAL_ERROR "generate did not write ${problem}")
endif()

run_step("${CLI}" stats --problem "${problem}")
run_step("${CLI}" align --problem "${problem}" --method bp --iters 30
         --matcher approx --save-matching "${matching}")
if(NOT EXISTS "${matching}")
  message(FATAL_ERROR "align did not write ${matching}")
endif()
run_step("${CLI}" align --problem "${problem}" --method mr --iters 20)
run_step("${CLI}" align --problem "${problem}" --method isorank --iters 50
         --matcher exact)
run_step("${CLI}" match --problem "${problem}" --matcher suitor)

# Error paths must fail loudly.
execute_process(COMMAND "${CLI}" align --problem "${WORKDIR}/missing.nap"
                RESULT_VARIABLE rv OUTPUT_QUIET ERROR_QUIET)
if(rv EQUAL 0)
  message(FATAL_ERROR "align on a missing file should fail")
endif()
execute_process(COMMAND "${CLI}" bogus-subcommand
                RESULT_VARIABLE rv OUTPUT_QUIET ERROR_QUIET)
if(rv EQUAL 0)
  message(FATAL_ERROR "unknown subcommand should fail")
endif()
