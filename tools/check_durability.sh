#!/usr/bin/env sh
# SIGKILL chaos gate for the durable-jobs subsystem (docs/SERVER.md
# "Durability & recovery", docs/FORMATS.md "Job journal"):
#
#   1. chaos rounds: start netalign_server with the journal on, submit a
#      batch of jobs across two tenants, SIGKILL the daemon at a
#      randomized moment mid-load, restart it on the same --work-dir,
#      and require
#        - zero lost acknowledged jobs: every job id the daemon ack'd
#          before the kill must still resolve after recovery and finish
#          as done (never not_found/expired);
#        - no duplicated terminal events: at most one terminal record
#          per job id in the journal, and every job's result is served
#          exactly once;
#        - byte-identical matchings: each recovered job's saved matching
#          must equal an uninterrupted one-shot `netalign align` of the
#          same problem and parameters (checkpoint resume and re-runs
#          are both deterministic, so a crash may cost time but never
#          changes an answer);
#   2. client retry: a `client submit --wait --retry` started before the
#      kill must survive the daemon restart through its reconnect loop
#      and come back with the same byte-identical matching;
#   3. clean drain shutdown of the recovered daemon.
#
#   tools/check_durability.sh [--build-dir DIR] [--rounds N] [--seed S]
#
# Exits non-zero on any lost job, duplicated terminal record, matching
# mismatch, or unclean shutdown. Deterministic kill schedule per --seed
# (default 1): rerunning with the same seed reproduces the same delays.
set -eu

cd "$(dirname "$0")/.."
BUILD=./build
ROUNDS=3
SEED=1
while [ $# -gt 0 ]; do
  case "$1" in
    --build-dir) BUILD="$2"; shift 2 ;;
    --rounds) ROUNDS="$2"; shift 2 ;;
    --seed) SEED="$2"; shift 2 ;;
    *) echo "unknown argument: $1" >&2; exit 2 ;;
  esac
done

CLI="$BUILD/tools/netalign"
SERVER="$BUILD/tools/netalign_server"
for BIN in "$CLI" "$SERVER"; do
  if [ ! -x "$BIN" ]; then
    echo "FAILURE: $BIN not built (cmake --build $BUILD)" >&2
    exit 1
  fi
done

TMP="$(mktemp -d)"
SERVER_PID=""
cleanup() {
  [ -n "$SERVER_PID" ] && kill -9 "$SERVER_PID" 2>/dev/null || true
  rm -rf "$TMP"
}
trap cleanup EXIT

echo "== problems + uninterrupted references =="
"$CLI" generate --type powerlaw --n 700 --dbar 6 --seed 4641 \
  --out "$TMP/p1.nap"
"$CLI" generate --type powerlaw --n 500 --dbar 5 --seed 4642 \
  --out "$TMP/p2.nap"
# The byte-compare targets: the server is a transport, never a different
# solver, so the one-shot CLI is the ground truth (same invariant as
# check_server.sh) -- even across a SIGKILL and a checkpoint resume.
"$CLI" align --problem "$TMP/p1.nap" --method bp --iters 40 \
  --save-matching "$TMP/ref_bp.mat" > /dev/null
"$CLI" align --problem "$TMP/p2.nap" --method mr --iters 30 \
  --save-matching "$TMP/ref_mr.mat" > /dev/null

start_daemon() {  # $1 = socket, $2 = work dir, $3 = log file
  "$SERVER" --socket "$1" --workers 2 --work-dir "$2" \
    --checkpoint-every 1 > "$3" 2>&1 &
  SERVER_PID=$!
  _tries=0
  until "$CLI" client ping --socket "$1" > /dev/null 2>&1; do
    _tries=$((_tries + 1))
    if [ "$_tries" -gt 100 ]; then
      echo "FAILURE: daemon never answered ping" >&2
      cat "$3" >&2
      exit 1
    fi
    sleep 0.1
  done
}

# Poll `client result` until the job is terminal; echoes nothing, writes
# the matching to $3. not_ready keeps polling; not_found/expired is a
# lost acknowledged job -- the exact failure this gate exists to catch.
poll_result() {  # $1 = socket, $2 = job id, $3 = matching out, $4 = scratch
  _tries=0
  while :; do
    if "$CLI" client result --socket "$1" --job "$2" \
         --save-matching "$3" > "$4" 2>&1; then
      if grep -q '"state":"done"' "$4"; then return 0; fi
      echo "FAILURE: job $2 finished in an unexpected state:" >&2
      cat "$4" >&2
      exit 1
    fi
    if grep -q '"not_found"\|"expired"' "$4"; then
      echo "FAILURE: acknowledged job $2 was lost by the restart" >&2
      cat "$4" >&2
      exit 1
    fi
    _tries=$((_tries + 1))
    if [ "$_tries" -gt 600 ]; then
      echo "FAILURE: job $2 did not finish within 60s of recovery" >&2
      cat "$4" >&2
      exit 1
    fi
    sleep 0.1
  done
}

ROUND=1
while [ "$ROUND" -le "$ROUNDS" ]; do
  D="$TMP/round$ROUND"
  SOCK="$D/na.sock"
  mkdir -p "$D"
  echo "== round $ROUND/$ROUNDS: daemon up, 6 jobs, SIGKILL, recover =="
  start_daemon "$SOCK" "$D/jobs" "$D/server1.log"

  # Six jobs, two specs, two tenants; every ack'd id must survive.
  IDS=""
  SPECS=""
  J=0
  while [ "$J" -lt 6 ]; do
    if [ $((J % 2)) -eq 0 ]; then
      PROB="$TMP/p1.nap"; SOLVER=bp; ITERS=40; REF=ref_bp
    else
      PROB="$TMP/p2.nap"; SOLVER=mr; ITERS=30; REF=ref_mr
    fi
    "$CLI" client submit --socket "$SOCK" --problem "$PROB" \
      --solver "$SOLVER" --iters "$ITERS" --tenant "t$((J % 2))" \
      > "$D/submit$J.out"
    ID="$(sed -n 's/.*"job":\([0-9][0-9]*\).*/\1/p' "$D/submit$J.out")"
    if [ -z "$ID" ]; then
      echo "FAILURE: submit $J was not acknowledged" >&2
      cat "$D/submit$J.out" >&2
      exit 1
    fi
    IDS="$IDS $ID"
    SPECS="$SPECS $REF"
    J=$((J + 1))
  done

  # Deterministic randomized kill point: somewhere between "everything
  # still queued" and "most jobs already done", so across rounds the
  # kill lands on queued, running, and terminal jobs alike.
  DELAY="$(awk -v s="$SEED" -v r="$ROUND" \
    'BEGIN{srand(s * 131 + r); printf "%.2f", 0.05 + rand() * 0.80}')"
  echo "-- SIGKILL after ${DELAY}s --"
  sleep "$DELAY"
  kill -9 "$SERVER_PID" 2>/dev/null || true
  wait "$SERVER_PID" 2>/dev/null || true
  SERVER_PID=""
  if [ ! -f "$D/jobs/journal.jsonl" ]; then
    echo "FAILURE: no journal survived the kill" >&2
    exit 1
  fi

  echo "-- restart on the same work dir --"
  start_daemon "$SOCK" "$D/jobs" "$D/server2.log"
  "$CLI" client stats --socket "$SOCK" > "$D/stats.out"
  if ! grep -q '"recovered":true' "$D/stats.out"; then
    echo "FAILURE: restarted daemon did not report a recovery" >&2
    cat "$D/stats.out" >&2
    exit 1
  fi

  K=0
  for ID in $IDS; do
    K=$((K + 1))
    REF="$(echo "$SPECS" | awk -v k="$K" '{print $k}')"
    poll_result "$SOCK" "$ID" "$D/job$ID.mat" "$D/result$ID.out"
    if ! cmp -s "$TMP/$REF.mat" "$D/job$ID.mat"; then
      echo "DURABILITY FAILURE: job $ID matching differs from the" \
           "uninterrupted $REF run" >&2
      exit 1
    fi
    # No duplicated terminal events: recovery must re-serve a completed
    # job's result, never re-run it into a second terminal record. (A
    # compaction rewrites the journal as a snapshot with exactly one
    # terminal record per finished job -- two is always the bug.)
    N="$(grep -c "\"event\":\"terminal\",\"job\":$ID," \
         "$D/jobs/journal.jsonl" || true)"
    if [ "$N" -gt 1 ]; then
      echo "DURABILITY FAILURE: job $ID has $N terminal records" >&2
      grep "\"job\":$ID," "$D/jobs/journal.jsonl" >&2 || true
      exit 1
    fi
  done
  echo "round $ROUND: all 6 jobs survived, matchings byte-identical"

  echo "-- drain shutdown --"
  "$CLI" client shutdown --socket "$SOCK" > /dev/null
  WAITED=0
  while kill -0 "$SERVER_PID" 2>/dev/null; do
    WAITED=$((WAITED + 1))
    if [ "$WAITED" -gt 100 ]; then
      echo "FAILURE: recovered daemon still alive 10s after shutdown" >&2
      exit 1
    fi
    sleep 0.1
  done
  wait "$SERVER_PID" 2>/dev/null && RC=0 || RC=$?
  SERVER_PID=""
  if [ "$RC" -ne 0 ]; then
    echo "FAILURE: recovered daemon exited with rc=$RC" >&2
    cat "$D/server2.log" >&2
    exit 1
  fi
  ROUND=$((ROUND + 1))
done

echo "== client --retry survives a daemon restart mid-wait =="
D="$TMP/retry"
SOCK="$D/na.sock"
mkdir -p "$D"
start_daemon "$SOCK" "$D/jobs" "$D/server1.log"
# The waiting client rides out the kill through its reconnect loop; the
# auto-generated request_id makes a replayed submit idempotent, so even
# a kill between send and ack cannot double-enqueue the job.
"$CLI" client submit --socket "$SOCK" --problem "$TMP/p1.nap" \
  --solver bp --iters 40 --wait --retry 60 --retry-max-ms 200 \
  --save-matching "$D/cli.mat" > "$D/cli.out" 2>&1 &
CLIENT_PID=$!
sleep 0.3
kill -9 "$SERVER_PID" 2>/dev/null || true
wait "$SERVER_PID" 2>/dev/null || true
SERVER_PID=""
sleep 0.2
start_daemon "$SOCK" "$D/jobs" "$D/server2.log"
if ! wait "$CLIENT_PID"; then
  echo "FAILURE: waiting client did not survive the daemon restart" >&2
  cat "$D/cli.out" >&2
  exit 1
fi
if ! cmp -s "$TMP/ref_bp.mat" "$D/cli.mat"; then
  echo "DURABILITY FAILURE: retried client's matching differs from the" \
       "uninterrupted run" >&2
  exit 1
fi
echo "waiting client reconnected; matching byte-identical"
"$CLI" client shutdown --socket "$SOCK" > /dev/null
WAITED=0
while kill -0 "$SERVER_PID" 2>/dev/null; do
  WAITED=$((WAITED + 1))
  if [ "$WAITED" -gt 100 ]; then
    echo "FAILURE: daemon still alive 10s after final shutdown" >&2
    exit 1
  fi
  sleep 0.1
done
SERVER_PID=""

echo "durability checks passed"
