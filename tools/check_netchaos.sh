#!/usr/bin/env sh
# Network chaos gate for the alignment daemon's TCP transport
# (docs/SERVER.md "Transports & network hardening"):
#
#   1. start netalign_server on loopback TCP with auth, an idle timeout,
#      and a connection cap;
#   2. record a fault-free reference: submit a job straight to the
#      daemon, save the matching;
#   3. for each chaos seed, put tools/net_proxy between client and
#      daemon -- byte-split writes, delays, mid-stream RSTs, and
#      black-holed connections -- and require a retrying client to
#      survive every fault with a matching byte-identical to the
#      reference (idempotent request_id resubmits make the retries
#      safe);
#   4. fuzz the wire protocol directly (protocol_fuzz: >= 1000 mutated/
#      truncated/oversized frames + torn-frame hangups): zero daemon
#      crashes, only taxonomy-conformant error responses;
#   5. require the daemon to still answer stats (with the chaos visible
#      in its connection counters) and shut down cleanly.
#
#   tools/check_netchaos.sh [--build-dir DIR] [--seeds N]
#
# Every fault is driven by a seeded RNG: a failure reproduces from the
# seed printed on the failing line.
set -eu

cd "$(dirname "$0")/.."
BUILD=./build
SEEDS=3
while [ $# -gt 0 ]; do
  case "$1" in
    --build-dir) BUILD="$2"; shift 2 ;;
    --seeds) SEEDS="$2"; shift 2 ;;
    *) echo "unknown argument: $1" >&2; exit 2 ;;
  esac
done

CLI="$BUILD/tools/netalign"
SERVER="$BUILD/tools/netalign_server"
PROXY="$BUILD/tools/net_proxy"
FUZZ="$BUILD/tools/protocol_fuzz"
for BIN in "$CLI" "$SERVER" "$PROXY" "$FUZZ"; do
  if [ ! -x "$BIN" ]; then
    echo "FAILURE: $BIN not built (cmake --build $BUILD)" >&2
    exit 1
  fi
done

TMP="$(mktemp -d)"
SERVER_PID=""
PROXY_PID=""
cleanup() {
  [ -n "$PROXY_PID" ] && kill "$PROXY_PID" 2>/dev/null || true
  [ -n "$SERVER_PID" ] && kill "$SERVER_PID" 2>/dev/null || true
  rm -rf "$TMP"
}
trap cleanup EXIT

wait_for_port() {
  # wait_for_port LOGFILE PREFIX -> prints the port
  _TRIES=0
  until grep -q "$2tcp:127\.0\.0\.1:[0-9]" "$1" 2>/dev/null; do
    _TRIES=$((_TRIES + 1))
    if [ "$_TRIES" -gt 100 ]; then
      echo "FAILURE: no TCP port in $1" >&2
      cat "$1" >&2
      exit 1
    fi
    sleep 0.1
  done
  sed -n "s/.*$2tcp:127\.0\.0\.1:\([0-9]*\).*/\1/p" "$1" | head -n 1
}

echo "== problem + daemon up =="
"$CLI" generate --type powerlaw --n 120 --dbar 5 --seed 7 \
  --out "$TMP/p.nap"
echo "netchaos-secret" > "$TMP/tok"
"$SERVER" --listen tcp:127.0.0.1:0 --auth-token-file "$TMP/tok" \
  --workers 2 --work-dir "$TMP/jobs" --max-request-bytes 262144 \
  --idle-timeout-ms 5000 --max-conns 64 > "$TMP/server.log" 2>&1 &
SERVER_PID=$!
PORT="$(wait_for_port "$TMP/server.log" 'serving on ')"

echo "== fault-free reference matching =="
"$CLI" client submit --connect "tcp:127.0.0.1:$PORT" \
  --auth-token-file "$TMP/tok" --problem "$TMP/p.nap" --solver bp \
  --iters 25 --wait --save-matching "$TMP/ref.mat" > /dev/null

SEED=1
while [ "$SEED" -le "$SEEDS" ]; do
  echo "== chaos seed $SEED: client through the fault proxy =="
  "$PROXY" --listen tcp:127.0.0.1:0 --target "tcp:127.0.0.1:$PORT" \
    --seed "$SEED" --split-prob 0.6 --delay-prob 0.3 --delay-ms 25 \
    --rst-prob 0.08 --blackhole-prob 0.15 --blackhole-ms 250 \
    > "$TMP/proxy$SEED.log" 2>&1 &
  PROXY_PID=$!
  PPORT="$(wait_for_port "$TMP/proxy$SEED.log" 'listening on ')"
  rm -f "$TMP/chaos.mat"
  if ! "$CLI" client submit --connect "tcp:127.0.0.1:$PPORT" \
    --auth-token-file "$TMP/tok" --problem "$TMP/p.nap" --solver bp \
    --iters 25 --retry 12 --retry-max-ms 500 --wait \
    --save-matching "$TMP/chaos.mat" > "$TMP/chaos$SEED.out" 2>&1; then
    echo "FAILURE: client did not survive chaos seed $SEED" >&2
    cat "$TMP/chaos$SEED.out" >&2
    cat "$TMP/proxy$SEED.log" >&2
    exit 1
  fi
  if ! cmp -s "$TMP/ref.mat" "$TMP/chaos.mat"; then
    echo "FAILURE: seed $SEED matching differs from the fault-free run" >&2
    exit 1
  fi
  if ! kill -0 "$SERVER_PID" 2>/dev/null; then
    echo "FAILURE: daemon died under chaos seed $SEED" >&2
    cat "$TMP/server.log" >&2
    exit 1
  fi
  kill "$PROXY_PID" 2>/dev/null || true
  wait "$PROXY_PID" 2>/dev/null || true
  PROXY_PID=""
  echo "seed $SEED survived, matching byte-identical"
  SEED=$((SEED + 1))
done

echo "== wire-protocol fuzz (direct, no proxy) =="
if ! "$FUZZ" --frames 1000 --seed 42 --connect "tcp:127.0.0.1:$PORT" \
  --auth-token-file "$TMP/tok" --oversized-bytes 300000 \
  > "$TMP/fuzz.out" 2>&1; then
  echo "FAILURE: protocol fuzz found a violation" >&2
  cat "$TMP/fuzz.out" >&2
  cat "$TMP/server.log" >&2
  exit 1
fi
grep 'wire mode ok' "$TMP/fuzz.out"

echo "== daemon still healthy =="
if ! kill -0 "$SERVER_PID" 2>/dev/null; then
  echo "FAILURE: daemon died during fuzzing" >&2
  cat "$TMP/server.log" >&2
  exit 1
fi
"$CLI" client stats --connect "tcp:127.0.0.1:$PORT" \
  --auth-token-file "$TMP/tok" > "$TMP/stats.out"
# The chaos must be visible in the counters: connections were accepted
# throughout, and the fuzz phase produced protocol rejections without
# killing anything.
if ! grep -q '"server.conns_accepted":[1-9]' "$TMP/stats.out" ||
   ! grep -q '"server.bad_requests":[1-9]' "$TMP/stats.out"; then
  echo "FAILURE: chaos left no trace in the server counters" >&2
  cat "$TMP/stats.out" >&2
  exit 1
fi

echo "== shutdown (now: fuzz-mutated submits may still be queued) =="
"$CLI" client shutdown --connect "tcp:127.0.0.1:$PORT" \
  --auth-token-file "$TMP/tok" --now > /dev/null
WAITED=0
while kill -0 "$SERVER_PID" 2>/dev/null; do
  WAITED=$((WAITED + 1))
  if [ "$WAITED" -gt 100 ]; then
    echo "FAILURE: daemon still alive 10s after shutdown" >&2
    exit 1
  fi
  sleep 0.1
done
wait "$SERVER_PID" 2>/dev/null && RC=0 || RC=$?
if [ "$RC" -ne 0 ]; then
  echo "FAILURE: daemon exited with rc=$RC" >&2
  cat "$TMP/server.log" >&2
  exit 1
fi
SERVER_PID=""

echo "network chaos checks passed ($SEEDS seeds, 1000 fuzz frames)"
