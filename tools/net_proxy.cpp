// net_proxy: a deterministic fault-injecting TCP relay for chaos tests.
//
// Sits between a netalign client and a netalign_server TCP listener and
// mangles the byte stream the way a bad network would, under a seeded
// RNG so every failure reproduces from its seed:
//
//   --split-prob      forward a random prefix of a buffered chunk per
//                     relay pass (byte-level write splits; the peer sees
//                     frames torn at arbitrary byte boundaries)
//   --delay-prob      hold a chunk for --delay-ms before forwarding
//   --rst-prob        mid-stream RST: SO_LINGER{1,0} + close on both
//                     sides, rolled per forwarded chunk
//   --blackhole-prob  rolled per accepted connection: swallow every
//                     client byte (ACKed but never forwarded) for
//                     --blackhole-ms, then RST. Bounded on purpose --
//                     the client's read eventually dies with a reset
//                     instead of hanging forever, so its retry policy
//                     gets to fire.
//
// All probabilities are per-roll in [0,1]. The relay itself is a single
// poll() loop, so fault timing interleaves with real socket readiness
// exactly once per pass -- no hidden threads, no extra nondeterminism
// beyond the kernel's own scheduling of the two real endpoints.
//
// Used by tools/check_netchaos.sh; exits 0 on SIGTERM/SIGINT.
//
// Example:
//   net_proxy --target tcp:127.0.0.1:4455 --seed 7 --rst-prob 0.05 &
//   netalign client ping --connect tcp:127.0.0.1:<printed port> ...
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "server/transport.hpp"
#include "util/cli.hpp"
#include "util/stop.hpp"

using namespace netalign;
using Clock = std::chrono::steady_clock;

namespace {

/// xorshift64: tiny, seedable, and plenty for fault dice.
struct Rng {
  std::uint64_t state;
  explicit Rng(std::uint64_t seed) : state(seed ? seed : 0x9e3779b97f4a7c15ULL) {}
  std::uint64_t next() {
    state ^= state << 13;
    state ^= state >> 7;
    state ^= state << 17;
    return state;
  }
  /// Uniform-ish double in [0,1).
  double roll() {
    return static_cast<double>(next() >> 11) * (1.0 / 9007199254740992.0);
  }
  /// Uniform-ish size in [1, n].
  std::size_t upto(std::size_t n) {
    return n <= 1 ? n : 1 + static_cast<std::size_t>(next() % n);
  }
};

void rst_close(int fd) {
  if (fd < 0) return;
  // linger(on, 0s): close() discards unsent data and fires an RST
  // instead of the orderly FIN -- the "mid-stream reset" fault.
  linger lg{};
  lg.l_onoff = 1;
  lg.l_linger = 0;
  ::setsockopt(fd, SOL_SOCKET, SO_LINGER, &lg, sizeof(lg));
  ::close(fd);
}

/// One direction of a relay: bytes read from `src` wait in `pending`
/// until the fault dice let them through to `dst`.
struct Pipe {
  std::string pending;
  Clock::time_point release{};  ///< delay fault: hold until this instant
  bool eof = false;             ///< src half-closed; flush then propagate
};

struct Relay {
  int client = -1;  ///< accepted side
  int server = -1;  ///< connection to --target
  Pipe up;          ///< client -> server
  Pipe down;        ///< server -> client
  bool blackhole = false;
  Clock::time_point blackhole_until{};
  bool dead = false;
};

constexpr std::size_t kPendingCap = 256u * 1024;

}  // namespace

int main(int argc, char** argv) try {
  CliParser cli(
      "net_proxy: seeded fault-injecting TCP relay for chaos testing.\n"
      "Forwards --listen <-> --target, rolling per-chunk faults.");
  auto& listen_spec = cli.add_string(
      "listen", "tcp:127.0.0.1:0",
      "endpoint to accept clients on (port 0 = ephemeral, printed)");
  auto& target_spec = cli.add_string(
      "target", "", "upstream server endpoint, e.g. tcp:127.0.0.1:4455");
  auto& seed = cli.add_int("seed", 1, "fault RNG seed (deterministic replay)");
  auto& split_prob = cli.add_double(
      "split-prob", 0.0, "chance a relay pass forwards only a random prefix");
  auto& delay_prob = cli.add_double(
      "delay-prob", 0.0, "chance a chunk is held for --delay-ms");
  auto& delay_ms = cli.add_int("delay-ms", 20, "hold time for delayed chunks");
  auto& rst_prob = cli.add_double(
      "rst-prob", 0.0, "chance a forwarded chunk RSTs the whole relay");
  auto& blackhole_prob = cli.add_double(
      "blackhole-prob", 0.0,
      "chance an accepted connection is black-holed (swallow, then RST)");
  auto& blackhole_ms = cli.add_int(
      "blackhole-ms", 250, "how long a black-holed connection swallows bytes");
  if (!cli.parse(argc, argv)) return 0;
  if (target_spec.empty()) {
    std::fprintf(stderr, "net_proxy: --target is required\n");
    return 2;
  }
  if (split_prob < 0 || split_prob > 1 || delay_prob < 0 || delay_prob > 1 ||
      rst_prob < 0 || rst_prob > 1 || blackhole_prob < 0 ||
      blackhole_prob > 1 || delay_ms < 0 || blackhole_ms < 0) {
    std::fprintf(stderr, "net_proxy: flag out of range\n");
    return 2;
  }

  std::string error;
  server::Endpoint listen_ep;
  server::Endpoint target_ep;
  if (!server::parse_endpoint(listen_spec, listen_ep, error) ||
      !server::parse_endpoint(target_spec, target_ep, error)) {
    std::fprintf(stderr, "net_proxy: %s\n", error.c_str());
    return 2;
  }
  server::Listener listener;
  if (!listener.open(listen_ep, error)) {
    std::fprintf(stderr, "net_proxy: %s\n", error.c_str());
    return 1;
  }
  std::printf("net_proxy: listening on %s (target %s, seed %lld)\n",
              listener.bound().str().c_str(), target_ep.str().c_str(),
              static_cast<long long>(seed));
  std::fflush(stdout);

  const std::atomic<bool>* stop = install_stop_signal_handlers();
  Rng rng(static_cast<std::uint64_t>(seed));
  std::vector<Relay> relays;

  while (!stop->load(std::memory_order_relaxed)) {
    const auto now = Clock::now();
    std::vector<pollfd> fds;
    fds.push_back({listener.fd(), POLLIN, 0});
    for (Relay& r : relays) {
      short cev = 0;
      short sev = 0;
      if (!r.up.eof && r.up.pending.size() < kPendingCap) cev |= POLLIN;
      if (!r.down.pending.empty() && now >= r.down.release) cev |= POLLOUT;
      if (!r.down.eof && r.down.pending.size() < kPendingCap) sev |= POLLIN;
      if (!r.up.pending.empty() && now >= r.up.release && !r.blackhole) {
        sev |= POLLOUT;
      }
      fds.push_back({r.client, cev, 0});
      fds.push_back({r.server, sev, 0});
    }
    // Short tick so delay releases and blackhole deadlines fire promptly
    // even when no fd turns ready.
    const int n = ::poll(fds.data(), fds.size(), 20);
    if (n < 0 && errno != EINTR) break;

    if ((fds[0].revents & POLLIN) != 0) {
      for (;;) {
        const int cfd = ::accept(listener.fd(), nullptr, nullptr);
        if (cfd < 0) break;
        std::string connect_error;
        const int sfd = server::connect_endpoint(target_ep, connect_error);
        if (sfd < 0) {
          // Upstream down: the client sees an RST, which is exactly what
          // a half-dead network gives it.
          std::fprintf(stderr, "net_proxy: upstream connect failed: %s\n",
                       connect_error.c_str());
          rst_close(cfd);
          continue;
        }
        server::set_nonblocking(cfd);
        server::set_nonblocking(sfd);
        Relay r;
        r.client = cfd;
        r.server = sfd;
        if (rng.roll() < blackhole_prob) {
          r.blackhole = true;
          r.blackhole_until =
              Clock::now() + std::chrono::milliseconds(blackhole_ms);
        }
        relays.push_back(std::move(r));
      }
    }

    std::size_t idx = 1;
    for (Relay& r : relays) {
      const pollfd& cp = fds[idx++];
      const pollfd& sp = fds[idx++];
      if (r.dead) continue;
      const auto pass = Clock::now();

      auto read_into = [&](int fd, Pipe& pipe, short revents) {
        if ((revents & (POLLIN | POLLHUP | POLLERR)) == 0) return true;
        char chunk[65536];
        const ssize_t got = ::read(fd, chunk, sizeof(chunk));
        if (got > 0) {
          pipe.pending.append(chunk, static_cast<std::size_t>(got));
          if (rng.roll() < delay_prob) {
            pipe.release = pass + std::chrono::milliseconds(delay_ms);
          }
          return true;
        }
        if (got == 0) {
          pipe.eof = true;
          return true;
        }
        if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) {
          return true;
        }
        return false;  // reset under us; tear the relay down
      };

      auto flush = [&](int dst, Pipe& pipe, bool faulted) {
        if (pipe.pending.empty() || pass < pipe.release) return 1;
        if (faulted && rng.roll() < rst_prob) return -1;
        std::size_t len = pipe.pending.size();
        if (faulted && rng.roll() < split_prob) len = rng.upto(len);
        const ssize_t sent =
            ::send(dst, pipe.pending.data(), len, MSG_NOSIGNAL);
        if (sent > 0) {
          pipe.pending.erase(0, static_cast<std::size_t>(sent));
          return 1;
        }
        if (sent < 0 && errno != EAGAIN && errno != EWOULDBLOCK &&
            errno != EINTR) {
          return 0;  // peer gone
        }
        return 1;
      };

      bool alive = read_into(r.client, r.up, cp.revents) &&
                   read_into(r.server, r.down, sp.revents);
      if (alive && r.blackhole) {
        // Swallow silently: the bytes were ACKed at the TCP layer but
        // never reach the server. After the deadline, reset the client
        // so its next read fails instead of blocking forever.
        r.up.pending.clear();
        if (pass >= r.blackhole_until) alive = false;
      }
      if (alive) {
        const int fup = r.blackhole ? 1 : flush(r.server, r.up, true);
        // Responses flow unfaulted by split/rst here; the dice already
        // rolled on the request path and the delay fault (stamped at
        // read time) applies to both directions.
        const int fdown = flush(r.client, r.down, false);
        if (fup == -1 || fdown == -1) {
          alive = false;  // RST fault fired
        } else if (fup == 0 || fdown == 0) {
          alive = false;
        }
      }
      if (alive && r.up.eof && r.up.pending.empty() &&
          r.down.eof && r.down.pending.empty()) {
        // Both sides done and drained: orderly close, no RST.
        ::close(r.client);
        ::close(r.server);
        r.client = r.server = -1;
        r.dead = true;
        continue;
      }
      if (alive && r.up.eof && r.up.pending.empty()) {
        ::shutdown(r.server, SHUT_WR);
      }
      if (alive && r.down.eof && r.down.pending.empty()) {
        ::shutdown(r.client, SHUT_WR);
      }
      if (!alive) {
        rst_close(r.client);
        rst_close(r.server);
        r.client = r.server = -1;
        r.dead = true;
      }
    }
    relays.erase(std::remove_if(relays.begin(), relays.end(),
                                [](const Relay& r) { return r.dead; }),
                 relays.end());
  }

  for (Relay& r : relays) {
    rst_close(r.client);
    rst_close(r.server);
  }
  std::printf("net_proxy: exiting\n");
  return 0;
} catch (const std::exception& e) {
  std::fprintf(stderr, "net_proxy: error: %s\n", e.what());
  return 1;
}
