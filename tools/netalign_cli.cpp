// netalign command-line driver.
//
// Subcommands:
//   generate   make a synthetic instance / dataset stand-in, save it
//   stats      report a problem file's statistics (Table-II style)
//   align      run MR / BP / IsoRank on a problem file, optionally save
//              the matching
//   match      max-weight matching of L alone with any matcher
//
// Examples:
//   netalign generate --type powerlaw --n 400 --dbar 8 --out p.nap
//   netalign generate --type standin --dataset lcsh-wiki --scale 0.05
//       --out wiki.nap
//   netalign stats --problem p.nap
//   netalign align --problem p.nap --method bp --matcher approx
//       --iters 200 --save-matching out.match
//   netalign match --problem p.nap --matcher exact
#include <cstdio>
#include <exception>
#include <memory>
#include <string>

#include "dist/dist_bp.hpp"
#include "dist/dist_mr.hpp"
#include "graph/algorithms.hpp"
#include "io/matching_io.hpp"
#include "io/problem_io.hpp"
#include "netalign/belief_prop.hpp"
#include "netalign/isorank.hpp"
#include "netalign/klau_mr.hpp"
#include "netalign/synthetic.hpp"
#include "obs/counters.hpp"
#include "obs/trace.hpp"
#include "util/cli.hpp"
#include "util/parallel.hpp"
#include "util/stop.hpp"
#include "util/table.hpp"

using namespace netalign;

namespace {

int cmd_generate(int argc, char** argv) {
  CliParser cli("netalign generate: create an alignment problem file.");
  auto& type = cli.add_string(
      "type", "powerlaw", "instance family: powerlaw | ontology | standin");
  auto& n = cli.add_int("n", 400, "vertices (powerlaw/ontology)");
  auto& dbar = cli.add_double("dbar", 4.0, "expected random L-degree");
  auto& dataset = cli.add_string("dataset", "dmela-scere",
                                 "standin dataset (Table II name)");
  auto& scale = cli.add_double("scale", 1.0, "standin scale (0, 1]");
  auto& seed = cli.add_int("seed", 42, "random seed");
  auto& alpha = cli.add_double("alpha", 1.0, "objective alpha");
  auto& beta = cli.add_double("beta", 2.0, "objective beta");
  auto& out = cli.add_string("out", "problem.nap", "output path");
  if (!cli.parse(argc, argv)) return 0;

  NetAlignProblem problem;
  if (type == "powerlaw") {
    PowerLawInstanceOptions opt;
    opt.n = static_cast<vid_t>(n);
    opt.expected_degree = dbar;
    opt.seed = static_cast<std::uint64_t>(seed);
    opt.alpha = alpha;
    opt.beta = beta;
    problem = make_power_law_instance(opt).problem;
  } else if (type == "ontology") {
    OntologyInstanceOptions opt;
    opt.n = static_cast<vid_t>(n);
    opt.expected_degree = dbar;
    opt.seed = static_cast<std::uint64_t>(seed);
    opt.alpha = alpha;
    opt.beta = beta;
    problem = make_ontology_instance(opt).problem;
  } else if (type == "standin") {
    StandInSpec spec;
    bool found = false;
    for (const auto& s : paper_table2_specs()) {
      if (s.name == dataset) {
        spec = s;
        found = true;
      }
    }
    if (!found) {
      std::fprintf(stderr, "unknown dataset '%s'\n", dataset.c_str());
      return 1;
    }
    spec.seed = static_cast<std::uint64_t>(seed);
    spec.alpha = alpha;
    spec.beta = beta;
    problem = make_standin_problem(spec, scale);
  } else {
    std::fprintf(stderr, "unknown --type '%s'\n", type.c_str());
    return 1;
  }
  write_problem_file(out, problem);
  std::printf("wrote %s: |V_A|=%d |V_B|=%d |E_L|=%lld\n", out.c_str(),
              problem.A.num_vertices(), problem.B.num_vertices(),
              static_cast<long long>(problem.L.num_edges()));
  return 0;
}

int cmd_stats(int argc, char** argv) {
  CliParser cli("netalign stats: summarize a problem file.");
  auto& path = cli.add_string("problem", "", "problem file (required)");
  auto& with_squares =
      cli.add_bool("squares", true, "also build S and report nnz(S)");
  if (!cli.parse(argc, argv)) return 0;
  const NetAlignProblem p = read_problem_file(path);

  TextTable table({"quantity", "value"});
  table.add_row({"name", p.name});
  table.add_row({"alpha", TextTable::fixed(p.alpha, 3)});
  table.add_row({"beta", TextTable::fixed(p.beta, 3)});
  table.add_row({"|V_A|", TextTable::num(p.A.num_vertices())});
  table.add_row({"|V_B|", TextTable::num(p.B.num_vertices())});
  table.add_row({"|E_A|", TextTable::num(p.A.num_edges())});
  table.add_row({"|E_B|", TextTable::num(p.B.num_edges())});
  table.add_row({"|E_L|", TextTable::num(p.L.num_edges())});
  const auto da = degree_stats(p.A);
  const auto db = degree_stats(p.B);
  table.add_row({"A mean degree", TextTable::fixed(da.mean, 2)});
  table.add_row({"B mean degree", TextTable::fixed(db.mean, 2)});
  table.add_row({"A max degree", TextTable::num(da.max)});
  table.add_row({"B max degree", TextTable::num(db.max)});
  table.add_row(
      {"A components", TextTable::num(connected_components(p.A).count)});
  table.add_row(
      {"B components", TextTable::num(connected_components(p.B).count)});
  if (with_squares) {
    const auto S = SquaresMatrix::build(p);
    table.add_row({"nnz(S)", TextTable::num(S.num_nonzeros())});
    table.add_row({"squares", TextTable::num(S.num_squares())});
  }
  table.print();
  return 0;
}

int cmd_align(int argc, char** argv) {
  CliParser cli("netalign align: run an alignment method on a problem.");
  auto& path = cli.add_string("problem", "", "problem file (required)");
  auto& method = cli.add_string(
      "method", "bp",
      "alignment method: bp | mr | isorank | dist-bp | dist-mr");
  auto& matcher_name = cli.add_string(
      "matcher", "approx", "exact | approx | greedy | suitor | auction | pga");
  auto& iters = cli.add_int("iters", 200, "iterations");
  auto& batch = cli.add_int("batch", 1, "BP rounding batch size");
  auto& gamma = cli.add_double("gamma", 0.0,
                               "damping / step size (0 = method default)");
  auto& threads = cli.add_int("threads", 0, "OpenMP threads (0 = default)");
  auto& ranks = cli.add_int("ranks", 4, "simulated ranks (dist-* methods)");
  auto& save = cli.add_string("save-matching", "", "write the matching here");
  auto& verbose = cli.add_bool("steps", false, "print per-step timings");
  auto& history = cli.add_string(
      "history", "", "write the objective history to this CSV");
  auto& ckpt_out = cli.add_string(
      "checkpoint-out", "",
      "write checkpoints here (atomic; previous generation kept at .prev)");
  auto& ckpt_every = cli.add_int(
      "checkpoint-every", 1, "checkpoint every N iterations");
  auto& resume = cli.add_string(
      "resume", "", "resume from this checkpoint (bit-identical continuation)");
  auto& deadline = cli.add_double(
      "deadline-seconds", 0.0,
      "stop after this many seconds with the best-so-far matching (0 = off)");
  const ObsFlags obs_flags = add_obs_flags(cli);
  if (!cli.parse(argc, argv)) return 0;
  if (threads > 0) set_threads(static_cast<int>(threads));

  SolveBudget budget;
  budget.checkpoint_path = ckpt_out;
  budget.checkpoint_every =
      ckpt_out.empty() ? 0 : static_cast<int>(ckpt_every);
  budget.resume_path = resume;
  budget.deadline_seconds = deadline;
  // SIGTERM/SIGINT latch a stop flag the solvers poll once per iteration:
  // the run then ends like a deadline -- final checkpoint, best-so-far
  // result, clean exit -- instead of dying mid-iteration.
  budget.stop_flag = install_stop_signal_handlers();

  const NetAlignProblem p = read_problem_file(path);
  const SquaresMatrix S = SquaresMatrix::build(p);
  const MatcherKind matcher = matcher_from_string(matcher_name);

  std::unique_ptr<obs::TraceWriter> trace;
  if (!obs_flags.trace_out.empty()) {
    trace = std::make_unique<obs::TraceWriter>(obs_flags.trace_out);
  }
  obs::Counters counters;
  obs::Counters* const counters_ptr = obs_flags.counters ? &counters : nullptr;
  if (trace) {
    trace->run_start(method, {{"problem", p.name},
                              {"matcher", matcher_name},
                              {"iters", iters}});
  }

  AlignResult r;
  if (method == "bp") {
    BeliefPropOptions opt;
    opt.max_iterations = static_cast<int>(iters);
    opt.matcher = matcher;
    opt.batch_size = static_cast<int>(batch);
    if (gamma > 0.0) opt.gamma = gamma;
    opt.trace = trace.get();
    opt.counters = counters_ptr;
    opt.budget = budget;
    r = belief_prop_align(p, S, opt);
  } else if (method == "mr") {
    KlauMrOptions opt;
    opt.max_iterations = static_cast<int>(iters);
    opt.matcher = matcher;
    if (gamma > 0.0) opt.gamma = gamma;
    opt.trace = trace.get();
    opt.counters = counters_ptr;
    opt.budget = budget;
    r = klau_mr_align(p, S, opt);
  } else if (method == "isorank") {
    IsoRankOptions opt;
    opt.max_iterations = static_cast<int>(iters);
    opt.matcher = matcher;
    if (gamma > 0.0) opt.gamma = gamma;
    opt.trace = trace.get();
    opt.counters = counters_ptr;
    opt.budget = budget;
    r = isorank_align(p, S, opt);
  } else if (method == "dist-bp") {
    dist::DistBpOptions opt;
    opt.num_ranks = static_cast<int>(ranks);
    opt.max_iterations = static_cast<int>(iters);
    opt.matcher = matcher;
    if (gamma > 0.0) opt.gamma = gamma;
    opt.trace = trace.get();
    opt.counters = counters_ptr;
    dist::DistBpStats dstats;
    opt.budget = budget;
    r = dist::distributed_belief_prop_align(p, S, opt, &dstats);
    std::printf("[dist] ranks=%lld supersteps=%zu messages=%zu "
                "(%zu remote) bytes=%zu\n",
                static_cast<long long>(ranks), dstats.bsp.supersteps,
                dstats.bsp.messages, dstats.bsp.remote_messages,
                dstats.bsp.bytes);
  } else if (method == "dist-mr") {
    dist::DistMrOptions opt;
    opt.num_ranks = static_cast<int>(ranks);
    opt.max_iterations = static_cast<int>(iters);
    if (gamma > 0.0) opt.gamma = gamma;
    opt.trace = trace.get();
    opt.counters = counters_ptr;
    dist::DistMrStats dstats;
    opt.budget = budget;
    r = dist::distributed_klau_mr_align(p, S, opt, &dstats);
    std::printf("[dist] ranks=%lld supersteps=%zu messages=%zu "
                "(%zu remote) bytes=%zu\n",
                static_cast<long long>(ranks), dstats.bsp.supersteps,
                dstats.bsp.messages, dstats.bsp.remote_messages,
                dstats.bsp.bytes);
  } else {
    std::fprintf(stderr, "unknown --method '%s'\n", method.c_str());
    return 1;
  }

  if (trace) {
    obs::TraceWriter::Fields extra{
        {"stopped_reason", to_string(r.stopped_reason)},
        {"iterations_completed", r.iterations_completed}};
    if (r.resumed_from > 0) extra.emplace_back("resumed_from", r.resumed_from);
    trace->run_end(r.total_seconds, r.value.objective, r.best_iteration,
                   counters_ptr, extra);
  }

  std::printf("%s on %s: objective=%.3f (weight=%.3f, overlap=%.0f), "
              "%lld matches, best at iteration %d, %d iterations (%s), "
              "%.2fs\n",
              method.c_str(), p.name.c_str(), r.value.objective,
              r.value.weight, r.value.overlap,
              static_cast<long long>(r.matching.cardinality),
              r.best_iteration, r.iterations_completed,
              to_string(r.stopped_reason), r.total_seconds);
  if (obs_flags.counters) {
    TextTable ctable({"counter", "value"});
    for (const auto& name : counters.names()) {
      ctable.add_row({name, TextTable::num(counters.total(name))});
    }
    ctable.print();
  }
  if (verbose) {
    TextTable table({"step", "seconds", "fraction"});
    for (const auto& step : r.timers.names()) {
      table.add_row({step, TextTable::fixed(r.timers.total(step), 3),
                     TextTable::pct(r.timers.fraction(step))});
    }
    table.print();
  }
  if (!history.empty()) {
    TextTable h(r.upper_history.empty()
                    ? std::vector<std::string>{"event", "objective"}
                    : std::vector<std::string>{"event", "objective",
                                               "upper_bound"});
    for (std::size_t i = 0; i < r.objective_history.size(); ++i) {
      if (r.upper_history.empty()) {
        h.add_row({TextTable::num(static_cast<int64_t>(i)),
                   TextTable::fixed(r.objective_history[i], 6)});
      } else {
        h.add_row({TextTable::num(static_cast<int64_t>(i)),
                   TextTable::fixed(r.objective_history[i], 6),
                   TextTable::fixed(r.upper_history[i], 6)});
      }
    }
    h.write_csv(history);
    std::printf("history written to %s\n", history.c_str());
  }
  if (!save.empty()) {
    write_matching_file(save, r.matching);
    std::printf("matching written to %s\n", save.c_str());
  }
  return 0;
}

int cmd_match(int argc, char** argv) {
  CliParser cli("netalign match: max-weight matching of L alone.");
  auto& path = cli.add_string("problem", "", "problem file (required)");
  auto& matcher_name = cli.add_string(
      "matcher", "approx", "exact | approx | greedy | suitor | auction | pga");
  auto& save = cli.add_string("save-matching", "", "write the matching here");
  auto& want_counters =
      cli.add_bool("counters", false, "print the matcher's counter registry");
  if (!cli.parse(argc, argv)) return 0;
  const NetAlignProblem p = read_problem_file(path);
  const std::vector<weight_t> w(p.L.weights().begin(), p.L.weights().end());
  WallTimer t;
  obs::Counters counters;
  const auto m = run_matcher(p.L, w, matcher_from_string(matcher_name),
                             want_counters ? &counters : nullptr);
  std::printf("%s matching: weight=%.3f cardinality=%lld in %.3fs\n",
              matcher_name.c_str(), m.weight,
              static_cast<long long>(m.cardinality), t.seconds());
  if (want_counters) {
    for (const auto& name : counters.names()) {
      std::printf("  %-24s %lld\n", name.c_str(),
                  static_cast<long long>(counters.total(name)));
    }
  }
  if (!save.empty()) {
    write_matching_file(save, m);
    std::printf("matching written to %s\n", save.c_str());
  }
  return 0;
}

void usage() {
  std::fputs(
      "usage: netalign <generate|stats|align|match> [flags...]\n"
      "       netalign <subcommand> --help for details\n",
      stderr);
}

}  // namespace

int main(int argc, char** argv) try {
  if (argc < 2) {
    usage();
    return 1;
  }
  const std::string cmd = argv[1];
  // Shift argv so each subcommand parses its own flags.
  if (cmd == "generate") return cmd_generate(argc - 1, argv + 1);
  if (cmd == "stats") return cmd_stats(argc - 1, argv + 1);
  if (cmd == "align") return cmd_align(argc - 1, argv + 1);
  if (cmd == "match") return cmd_match(argc - 1, argv + 1);
  usage();
  return 1;
} catch (const std::exception& e) {
  std::fprintf(stderr, "error: %s\n", e.what());
  return 1;
}
