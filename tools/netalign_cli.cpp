// netalign command-line driver.
//
// Subcommands:
//   generate   make a synthetic instance / dataset stand-in, save it
//   stats      report a problem file's statistics (Table-II style)
//   align      run MR / BP / IsoRank on a problem file, optionally save
//              the matching
//   match      max-weight matching of L alone with any matcher
//   client     talk to a running netalign_server (docs/SERVER.md)
//
// Examples:
//   netalign generate --type powerlaw --n 400 --dbar 8 --out p.nap
//   netalign generate --type standin --dataset lcsh-wiki --scale 0.05
//       --out wiki.nap
//   netalign stats --problem p.nap
//   netalign align --problem p.nap --method bp --matcher approx
//       --iters 200 --save-matching out.match
//   netalign match --problem p.nap --matcher exact
//   netalign client submit --socket /tmp/na.sock --problem p.nap --wait
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <exception>
#include <fstream>
#include <memory>
#include <random>
#include <sstream>
#include <string>
#include <thread>

#include "dist/dist_bp.hpp"
#include "dist/dist_mr.hpp"
#include "graph/algorithms.hpp"
#include "io/matching_io.hpp"
#include "io/problem_io.hpp"
#include "netalign/belief_prop.hpp"
#include "netalign/isorank.hpp"
#include "netalign/klau_mr.hpp"
#include "netalign/synthetic.hpp"
#include "obs/counters.hpp"
#include "obs/json.hpp"
#include "obs/trace.hpp"
#include "server/client.hpp"
#include "server/protocol.hpp"
#include "server/transport.hpp"
#include "util/cli.hpp"
#include "util/parallel.hpp"
#include "util/stop.hpp"
#include "util/table.hpp"

using namespace netalign;

namespace {

int cmd_generate(int argc, char** argv) {
  CliParser cli("netalign generate: create an alignment problem file.");
  auto& type = cli.add_string(
      "type", "powerlaw", "instance family: powerlaw | ontology | standin");
  auto& n = cli.add_int("n", 400, "vertices (powerlaw/ontology)");
  auto& dbar = cli.add_double("dbar", 4.0, "expected random L-degree");
  auto& dataset = cli.add_string("dataset", "dmela-scere",
                                 "standin dataset (Table II name)");
  auto& scale = cli.add_double("scale", 1.0, "standin scale (0, 1]");
  auto& seed = cli.add_int("seed", 42, "random seed");
  auto& alpha = cli.add_double("alpha", 1.0, "objective alpha");
  auto& beta = cli.add_double("beta", 2.0, "objective beta");
  auto& out = cli.add_string("out", "problem.nap", "output path");
  if (!cli.parse(argc, argv)) return 0;

  NetAlignProblem problem;
  if (type == "powerlaw") {
    PowerLawInstanceOptions opt;
    opt.n = static_cast<vid_t>(n);
    opt.expected_degree = dbar;
    opt.seed = static_cast<std::uint64_t>(seed);
    opt.alpha = alpha;
    opt.beta = beta;
    problem = make_power_law_instance(opt).problem;
  } else if (type == "ontology") {
    OntologyInstanceOptions opt;
    opt.n = static_cast<vid_t>(n);
    opt.expected_degree = dbar;
    opt.seed = static_cast<std::uint64_t>(seed);
    opt.alpha = alpha;
    opt.beta = beta;
    problem = make_ontology_instance(opt).problem;
  } else if (type == "standin") {
    StandInSpec spec;
    bool found = false;
    for (const auto& s : paper_table2_specs()) {
      if (s.name == dataset) {
        spec = s;
        found = true;
      }
    }
    if (!found) {
      std::fprintf(stderr, "unknown dataset '%s'\n", dataset.c_str());
      return 1;
    }
    spec.seed = static_cast<std::uint64_t>(seed);
    spec.alpha = alpha;
    spec.beta = beta;
    problem = make_standin_problem(spec, scale);
  } else {
    std::fprintf(stderr, "unknown --type '%s'\n", type.c_str());
    return 1;
  }
  write_problem_file(out, problem);
  std::printf("wrote %s: |V_A|=%d |V_B|=%d |E_L|=%lld\n", out.c_str(),
              problem.A.num_vertices(), problem.B.num_vertices(),
              static_cast<long long>(problem.L.num_edges()));
  return 0;
}

int cmd_stats(int argc, char** argv) {
  CliParser cli("netalign stats: summarize a problem file.");
  auto& path = cli.add_string("problem", "", "problem file (required)");
  auto& with_squares =
      cli.add_bool("squares", true, "also build S and report nnz(S)");
  if (!cli.parse(argc, argv)) return 0;
  const NetAlignProblem p = read_problem_file(path);

  TextTable table({"quantity", "value"});
  table.add_row({"name", p.name});
  table.add_row({"alpha", TextTable::fixed(p.alpha, 3)});
  table.add_row({"beta", TextTable::fixed(p.beta, 3)});
  table.add_row({"|V_A|", TextTable::num(p.A.num_vertices())});
  table.add_row({"|V_B|", TextTable::num(p.B.num_vertices())});
  table.add_row({"|E_A|", TextTable::num(p.A.num_edges())});
  table.add_row({"|E_B|", TextTable::num(p.B.num_edges())});
  table.add_row({"|E_L|", TextTable::num(p.L.num_edges())});
  const auto da = degree_stats(p.A);
  const auto db = degree_stats(p.B);
  table.add_row({"A mean degree", TextTable::fixed(da.mean, 2)});
  table.add_row({"B mean degree", TextTable::fixed(db.mean, 2)});
  table.add_row({"A max degree", TextTable::num(da.max)});
  table.add_row({"B max degree", TextTable::num(db.max)});
  table.add_row(
      {"A components", TextTable::num(connected_components(p.A).count)});
  table.add_row(
      {"B components", TextTable::num(connected_components(p.B).count)});
  if (with_squares) {
    const auto S = SquaresMatrix::build(p);
    table.add_row({"nnz(S)", TextTable::num(S.num_nonzeros())});
    table.add_row({"squares", TextTable::num(S.num_squares())});
  }
  table.print();
  return 0;
}

int cmd_align(int argc, char** argv) {
  CliParser cli("netalign align: run an alignment method on a problem.");
  auto& path = cli.add_string("problem", "", "problem file (required)");
  auto& method = cli.add_string(
      "method", "bp",
      "alignment method: bp | mr | isorank | dist-bp | dist-mr");
  auto& matcher_name = cli.add_string(
      "matcher", "approx", "exact | approx | greedy | suitor | auction | pga");
  auto& iters = cli.add_int("iters", 200, "iterations");
  auto& batch = cli.add_int("batch", 1, "BP rounding batch size");
  auto& gamma = cli.add_double("gamma", 0.0,
                               "damping / step size (0 = method default)");
  auto& threads = cli.add_int("threads", 0, "OpenMP threads (0 = default)");
  auto& ranks = cli.add_int("ranks", 4, "simulated ranks (dist-* methods)");
  auto& squares_mode_name = cli.add_string(
      "squares-mode", "explicit",
      "squares backend: explicit | implicit | auto "
      "(docs/ARCHITECTURE.md \"Memory model & implicit squares\")");
  auto& squares_max_mb = cli.add_int(
      "squares-max-mb", 2048,
      "auto squares mode: switch to implicit when the explicit S estimate "
      "exceeds this many MiB");
  auto& save = cli.add_string("save-matching", "", "write the matching here");
  auto& verbose = cli.add_bool("steps", false, "print per-step timings");
  auto& history = cli.add_string(
      "history", "", "write the objective history to this CSV");
  auto& ckpt_out = cli.add_string(
      "checkpoint-out", "",
      "write checkpoints here (atomic; previous generation kept at .prev)");
  auto& ckpt_every = cli.add_int(
      "checkpoint-every", 1, "checkpoint every N iterations");
  auto& resume = cli.add_string(
      "resume", "", "resume from this checkpoint (bit-identical continuation)");
  auto& deadline = cli.add_double(
      "deadline-seconds", 0.0,
      "stop after this many seconds with the best-so-far matching (0 = off)");
  const ObsFlags obs_flags = add_obs_flags(cli);
  if (!cli.parse(argc, argv)) return 0;
  if (threads > 0) set_threads(static_cast<int>(threads));

  SolveBudget budget;
  budget.checkpoint_path = ckpt_out;
  budget.checkpoint_every =
      ckpt_out.empty() ? 0 : static_cast<int>(ckpt_every);
  budget.resume_path = resume;
  budget.deadline_seconds = deadline;
  // SIGTERM/SIGINT latch a stop flag the solvers poll once per iteration:
  // the run then ends like a deadline -- final checkpoint, best-so-far
  // result, clean exit -- instead of dying mid-iteration.
  budget.stop_flag = install_stop_signal_handlers();

  const NetAlignProblem p = read_problem_file(path);
  SquaresMode squares_mode = squares_mode_from_string(squares_mode_name);
  const bool dist_method = method == "dist-bp" || method == "dist-mr";
  if (dist_method && squares_mode == SquaresMode::kImplicit) {
    std::fprintf(stderr,
                 "--squares-mode=implicit is not supported by %s (the rank "
                 "partitioners need the materialized CSR)\n",
                 method.c_str());
    return 1;
  }
  if (dist_method) squares_mode = SquaresMode::kExplicit;
  SquaresBackendOptions squares_opts;
  squares_opts.mode = squares_mode;
  squares_opts.budget_bytes = static_cast<std::uint64_t>(squares_max_mb) << 20;
  // IsoRank never reads S transposed; skip the counting-cursor tables.
  squares_opts.transpose_support = method != "isorank";
  const SquaresBackend backend = build_squares_backend(p, squares_opts);
  const SquaresView S = backend.view();
  if (squares_mode != SquaresMode::kExplicit) {
    std::printf("squares: mode=%s (requested %s), nnz=%lld, "
                "explicit estimate %.1f MiB, resident structure %.1f MiB\n",
                backend.mode_name().c_str(), squares_mode_name.c_str(),
                static_cast<long long>(backend.nnz),
                static_cast<double>(backend.explicit_bytes) / (1 << 20),
                static_cast<double>(backend.structure_bytes()) / (1 << 20));
  }
  const MatcherKind matcher = matcher_from_string(matcher_name);

  std::unique_ptr<obs::TraceWriter> trace;
  if (!obs_flags.trace_out.empty()) {
    trace = std::make_unique<obs::TraceWriter>(obs_flags.trace_out);
  }
  obs::Counters counters;
  obs::Counters* const counters_ptr = obs_flags.counters ? &counters : nullptr;
  if (trace) {
    trace->run_start(method, {{"problem", p.name},
                              {"matcher", matcher_name},
                              {"iters", iters},
                              {"squares_mode", backend.mode_name()}});
  }

  AlignResult r;
  if (method == "bp") {
    BeliefPropOptions opt;
    opt.max_iterations = static_cast<int>(iters);
    opt.matcher = matcher;
    opt.batch_size = static_cast<int>(batch);
    if (gamma > 0.0) opt.gamma = gamma;
    opt.trace = trace.get();
    opt.counters = counters_ptr;
    opt.budget = budget;
    r = belief_prop_align(p, S, opt);
  } else if (method == "mr") {
    KlauMrOptions opt;
    opt.max_iterations = static_cast<int>(iters);
    opt.matcher = matcher;
    if (gamma > 0.0) opt.gamma = gamma;
    opt.trace = trace.get();
    opt.counters = counters_ptr;
    opt.budget = budget;
    r = klau_mr_align(p, S, opt);
  } else if (method == "isorank") {
    IsoRankOptions opt;
    opt.max_iterations = static_cast<int>(iters);
    opt.matcher = matcher;
    if (gamma > 0.0) opt.gamma = gamma;
    opt.trace = trace.get();
    opt.counters = counters_ptr;
    opt.budget = budget;
    r = isorank_align(p, S, opt);
  } else if (method == "dist-bp") {
    dist::DistBpOptions opt;
    opt.num_ranks = static_cast<int>(ranks);
    opt.max_iterations = static_cast<int>(iters);
    opt.matcher = matcher;
    if (gamma > 0.0) opt.gamma = gamma;
    opt.trace = trace.get();
    opt.counters = counters_ptr;
    dist::DistBpStats dstats;
    opt.budget = budget;
    r = dist::distributed_belief_prop_align(p, *backend.matrix, opt, &dstats);
    std::printf("[dist] ranks=%lld supersteps=%zu messages=%zu "
                "(%zu remote) bytes=%zu\n",
                static_cast<long long>(ranks), dstats.bsp.supersteps,
                dstats.bsp.messages, dstats.bsp.remote_messages,
                dstats.bsp.bytes);
  } else if (method == "dist-mr") {
    dist::DistMrOptions opt;
    opt.num_ranks = static_cast<int>(ranks);
    opt.max_iterations = static_cast<int>(iters);
    if (gamma > 0.0) opt.gamma = gamma;
    opt.trace = trace.get();
    opt.counters = counters_ptr;
    dist::DistMrStats dstats;
    opt.budget = budget;
    r = dist::distributed_klau_mr_align(p, *backend.matrix, opt, &dstats);
    std::printf("[dist] ranks=%lld supersteps=%zu messages=%zu "
                "(%zu remote) bytes=%zu\n",
                static_cast<long long>(ranks), dstats.bsp.supersteps,
                dstats.bsp.messages, dstats.bsp.remote_messages,
                dstats.bsp.bytes);
  } else {
    std::fprintf(stderr, "unknown --method '%s'\n", method.c_str());
    return 1;
  }

  if (obs_flags.counters && backend.is_implicit()) {
    // Enumeration volume for this process's whole run (build + solve);
    // docs/OBSERVABILITY.md "squares.implicit_*". Published before
    // run_end so the counters land in the trace too.
    backend.implicit->publish_counters(counters_ptr);
  }
  if (trace) {
    obs::TraceWriter::Fields extra{
        {"stopped_reason", to_string(r.stopped_reason)},
        {"iterations_completed", r.iterations_completed}};
    if (r.resumed_from > 0) extra.emplace_back("resumed_from", r.resumed_from);
    trace->run_end(r.total_seconds, r.value.objective, r.best_iteration,
                   counters_ptr, extra);
  }

  std::printf("%s on %s: objective=%.3f (weight=%.3f, overlap=%.0f), "
              "%lld matches, best at iteration %d, %d iterations (%s), "
              "%.2fs\n",
              method.c_str(), p.name.c_str(), r.value.objective,
              r.value.weight, r.value.overlap,
              static_cast<long long>(r.matching.cardinality),
              r.best_iteration, r.iterations_completed,
              to_string(r.stopped_reason), r.total_seconds);
  if (obs_flags.counters) {
    TextTable ctable({"counter", "value"});
    for (const auto& name : counters.names()) {
      ctable.add_row({name, TextTable::num(counters.total(name))});
    }
    ctable.print();
  }
  if (verbose) {
    TextTable table({"step", "seconds", "fraction"});
    for (const auto& step : r.timers.names()) {
      table.add_row({step, TextTable::fixed(r.timers.total(step), 3),
                     TextTable::pct(r.timers.fraction(step))});
    }
    table.print();
  }
  if (!history.empty()) {
    TextTable h(r.upper_history.empty()
                    ? std::vector<std::string>{"event", "objective"}
                    : std::vector<std::string>{"event", "objective",
                                               "upper_bound"});
    for (std::size_t i = 0; i < r.objective_history.size(); ++i) {
      if (r.upper_history.empty()) {
        h.add_row({TextTable::num(static_cast<int64_t>(i)),
                   TextTable::fixed(r.objective_history[i], 6)});
      } else {
        h.add_row({TextTable::num(static_cast<int64_t>(i)),
                   TextTable::fixed(r.objective_history[i], 6),
                   TextTable::fixed(r.upper_history[i], 6)});
      }
    }
    h.write_csv(history);
    std::printf("history written to %s\n", history.c_str());
  }
  if (!save.empty()) {
    write_matching_file(save, r.matching);
    std::printf("matching written to %s\n", save.c_str());
  }
  return 0;
}

int cmd_match(int argc, char** argv) {
  CliParser cli("netalign match: max-weight matching of L alone.");
  auto& path = cli.add_string("problem", "", "problem file (required)");
  auto& matcher_name = cli.add_string(
      "matcher", "approx", "exact | approx | greedy | suitor | auction | pga");
  auto& save = cli.add_string("save-matching", "", "write the matching here");
  auto& want_counters =
      cli.add_bool("counters", false, "print the matcher's counter registry");
  if (!cli.parse(argc, argv)) return 0;
  const NetAlignProblem p = read_problem_file(path);
  const std::vector<weight_t> w(p.L.weights().begin(), p.L.weights().end());
  WallTimer t;
  obs::Counters counters;
  const auto m = run_matcher(p.L, w, matcher_from_string(matcher_name),
                             want_counters ? &counters : nullptr);
  std::printf("%s matching: weight=%.3f cardinality=%lld in %.3fs\n",
              matcher_name.c_str(), m.weight,
              static_cast<long long>(m.cardinality), t.seconds());
  if (want_counters) {
    for (const auto& name : counters.names()) {
      std::printf("  %-36s %lld\n", name.c_str(),
                  static_cast<long long>(counters.total(name)));
    }
  }
  if (!save.empty()) {
    write_matching_file(save, m);
    std::printf("matching written to %s\n", save.c_str());
  }
  return 0;
}

/// Compact JSON object builder for client requests (the server side uses
/// server::ResponseBuilder; requests are plain objects without the
/// ok/id envelope, hence this little sibling).
struct JsonObj {
  std::string buf = "{";
  bool first = true;
  void key(std::string_view k) {
    if (!first) buf.push_back(',');
    first = false;
    obs::append_json_string(buf, k);
    buf.push_back(':');
  }
  JsonObj& add(std::string_view k, std::string_view v) {
    key(k);
    obs::append_json_string(buf, v);
    return *this;
  }
  // String literals must not fall into the bool overload (pointer -> bool
  // is a standard conversion and would beat string_view).
  JsonObj& add(std::string_view k, const char* v) {
    return add(k, std::string_view(v));
  }
  JsonObj& add(std::string_view k, std::int64_t v) {
    key(k);
    obs::append_json_number(buf, v);
    return *this;
  }
  JsonObj& add(std::string_view k, double v) {
    key(k);
    obs::append_json_number(buf, v);
    return *this;
  }
  JsonObj& add(std::string_view k, bool v) {
    key(k);
    buf += v ? "true" : "false";
    return *this;
  }
  std::string str() && {
    buf.push_back('}');
    return std::move(buf);
  }
};

/// Rebuild the matching from a `result` response and save it with the
/// same writer the one-shot CLI uses, so the file is byte-identical to a
/// local `netalign align --save-matching` of the same job.
void save_matching_from_result(const obs::JsonValue& doc,
                               const std::string& path) {
  const obs::JsonValue* num_a = doc.find("num_a");
  const obs::JsonValue* num_b = doc.find("num_b");
  const obs::JsonValue* pairs = doc.find("pairs");
  if (num_a == nullptr || num_b == nullptr || pairs == nullptr ||
      !pairs->is_array()) {
    throw std::runtime_error("result response lacks num_a/num_b/pairs");
  }
  BipartiteMatching m;
  m.mate_a.assign(static_cast<std::size_t>(num_a->as_number()), kInvalidVid);
  m.mate_b.assign(static_cast<std::size_t>(num_b->as_number()), kInvalidVid);
  for (const obs::JsonValue& pair : pairs->items()) {
    if (!pair.is_array() || pair.items().size() != 2) {
      throw std::runtime_error("malformed pair in result response");
    }
    const auto a = static_cast<vid_t>(pair.items()[0].as_number());
    const auto b = static_cast<vid_t>(pair.items()[1].as_number());
    m.mate_a[static_cast<std::size_t>(a)] = b;
    m.mate_b[static_cast<std::size_t>(b)] = a;
    m.cardinality += 1;
  }
  write_matching_file(path, m);
  std::printf("matching written to %s\n", path.c_str());
}

/// A fresh idempotency token for `submit --retry`: unique across
/// processes and invocations is all that matters, not unpredictability.
std::string make_request_id() {
  std::random_device rd;
  const std::uint64_t hi =
      (static_cast<std::uint64_t>(rd()) << 32) ^ rd();
  const std::uint64_t lo = static_cast<std::uint64_t>(
      std::chrono::steady_clock::now().time_since_epoch().count());
  char buf[64];
  std::snprintf(buf, sizeof(buf), "cli-%016llx%016llx",
                static_cast<unsigned long long>(hi),
                static_cast<unsigned long long>(lo));
  return buf;
}

bool response_ok(const obs::JsonValue& doc) {
  const obs::JsonValue* ok = doc.find("ok");
  return ok != nullptr && ok->type() == obs::JsonValue::Type::kBool &&
         ok->as_bool();
}

std::string response_state(const obs::JsonValue& doc) {
  const obs::JsonValue* state = doc.find("state");
  return state != nullptr && state->is_string() ? state->as_string() : "";
}

int cmd_client(int argc, char** argv) {
  if (argc < 2) {
    std::fputs(
        "usage: netalign client "
        "<ping|submit|status|progress|result|cancel|stats|shutdown> "
        "--socket PATH | --connect tcp:HOST:PORT [flags...]\n",
        stderr);
    return 1;
  }
  const std::string action = argv[1];
  CliParser cli("netalign client " + action +
                ": talk to a running netalign_server (docs/SERVER.md).");
  auto& socket = cli.add_string(
      "socket", "", "server AF_UNIX socket path (or use --connect)");
  auto& connect = cli.add_string(
      "connect", "",
      "server endpoint: unix:<path> or tcp:<host>:<port> (overrides "
      "--socket)");
  auto& auth_token_file = cli.add_string(
      "auth-token-file", "",
      "file whose first line is the auth token (required for tcp: servers)");
  auto& problem = cli.add_string(
      "problem", "", "problem file, sent inline (submit)");
  auto& solver = cli.add_string(
      "solver", "bp", "bp | mr | isorank | dist-bp | dist-mr (submit)");
  auto& matcher = cli.add_string(
      "matcher", "approx",
      "exact | approx | greedy | suitor | auction | pga (submit)");
  auto& iters = cli.add_int("iters", 100, "iterations (submit)");
  auto& batch = cli.add_int("batch", 1, "BP rounding batch size (submit)");
  auto& ranks = cli.add_int("ranks", 4, "simulated ranks, dist-* (submit)");
  auto& gamma = cli.add_double(
      "gamma", 0.0, "damping / step size, 0 = method default (submit)");
  auto& squares_mode_name = cli.add_string(
      "squares-mode", "",
      "squares backend: explicit | implicit | auto; empty = server default "
      "(submit)");
  auto& deadline = cli.add_double(
      "deadline-seconds", 0.0, "server-side deadline, 0 = none (submit)");
  auto& tag = cli.add_string("tag", "", "free-form job label (submit)");
  auto& tenant = cli.add_string(
      "tenant", "", "fair-scheduling tenant bucket (submit; default tenant)");
  auto& wait = cli.add_bool(
      "wait", false, "submit: poll until the job finishes, print the result");
  auto& job = cli.add_int(
      "job", -1, "job id (status/progress/result/cancel)");
  auto& cursor = cli.add_int("cursor", 0, "event cursor (progress)");
  auto& save = cli.add_string(
      "save-matching", "", "result/--wait: write the matching here");
  auto& now = cli.add_bool(
      "now", false, "shutdown: cancel running jobs instead of draining");
  auto& retry = cli.add_int(
      "retry", 0,
      "reconnect attempts after a lost connection (daemon restarting)");
  auto& retry_max_ms = cli.add_int(
      "retry-max-ms", 2000, "cap on the reconnect backoff step");
  auto& request_id = cli.add_string(
      "request-id", "",
      "submit: idempotency token; a replayed submit returns the original "
      "job id (auto-generated when --retry > 0)");
  if (!cli.parse(argc - 1, argv + 1)) return 0;
  if (socket.empty() && connect.empty()) {
    std::fputs("netalign client: --socket or --connect is required\n", stderr);
    return 1;
  }
  if (retry < 0 || retry_max_ms < 1) {
    std::fputs("netalign client: --retry/--retry-max-ms out of range\n",
               stderr);
    return 1;
  }
  const std::string target =
      connect.empty() ? std::string(socket) : std::string(connect);
  std::string auth_token;
  if (!auth_token_file.empty()) {
    auth_token = server::load_auth_token(auth_token_file);
  }

  server::RetryPolicy policy;
  policy.retries = static_cast<int>(retry);
  policy.max_backoff_ms = static_cast<int>(retry_max_ms);
  server::ServerClient client(target, policy, auth_token);
  std::string request;
  if (action == "ping" || action == "stats") {
    request = std::move(JsonObj{}.add("method", action)).str();
  } else if (action == "submit") {
    if (problem.empty()) {
      std::fputs("netalign client submit: --problem is required\n", stderr);
      return 1;
    }
    std::ifstream in(problem, std::ios::binary);
    if (!in) {
      std::fprintf(stderr, "netalign client: cannot open %s\n",
                   problem.c_str());
      return 1;
    }
    std::ostringstream text;
    text << in.rdbuf();
    JsonObj req;
    req.add("method", "submit")
        .add("problem", text.str())
        .add("solver", solver)
        .add("matcher", matcher)
        .add("iters", iters)
        .add("batch", batch)
        .add("ranks", ranks);
    if (gamma > 0.0) req.add("gamma", gamma);
    if (!squares_mode_name.empty()) req.add("squares_mode", squares_mode_name);
    if (deadline > 0.0) req.add("deadline_seconds", deadline);
    if (!tag.empty()) req.add("tag", tag);
    if (!tenant.empty()) req.add("tenant", tenant);
    std::string rid = request_id;
    if (rid.empty() && retry > 0) {
      // Retries re-send the submit line verbatim; without an idempotency
      // token a retry after a lost ack would enqueue the job twice.
      rid = make_request_id();
    }
    if (!rid.empty()) req.add("request_id", rid);
    request = std::move(req).str();
  } else if (action == "status" || action == "result" || action == "cancel") {
    request = std::move(JsonObj{}.add("method", action).add("job", job)).str();
  } else if (action == "progress") {
    request = std::move(JsonObj{}
                            .add("method", action)
                            .add("job", job)
                            .add("cursor", cursor))
                  .str();
  } else if (action == "shutdown") {
    request =
        std::move(JsonObj{}.add("method", action).add("now", bool(now))).str();
  } else {
    std::fprintf(stderr, "netalign client: unknown action '%s'\n",
                 action.c_str());
    return 1;
  }

  obs::JsonValue doc = client.call(request);
  std::string line;
  obs::write_json(line, doc);
  std::printf("%s\n", line.c_str());
  if (!response_ok(doc)) return 1;

  if (action == "submit" && wait) {
    const obs::JsonValue* id = doc.find("job");
    if (id == nullptr || !id->is_number()) return 1;
    const auto job_id = static_cast<std::int64_t>(id->as_number());
    for (;;) {
      std::this_thread::sleep_for(std::chrono::milliseconds(100));
      const obs::JsonValue status = client.call(
          std::move(JsonObj{}.add("method", "status").add("job", job_id))
              .str());
      if (!response_ok(status)) return 1;
      const std::string state = response_state(status);
      if (state != "queued" && state != "running") break;
    }
    doc = client.call(
        std::move(JsonObj{}.add("method", "result").add("job", job_id))
            .str());
    line.clear();
    obs::write_json(line, doc);
    std::printf("%s\n", line.c_str());
    if (!response_ok(doc)) return 1;
  }
  if (!save.empty() && (action == "result" || (action == "submit" && wait))) {
    save_matching_from_result(doc, save);
  }
  return 0;
}

void usage() {
  std::fputs(
      "usage: netalign <generate|stats|align|match|client> [flags...]\n"
      "       netalign <subcommand> --help for details\n",
      stderr);
}

}  // namespace

int main(int argc, char** argv) try {
  if (argc < 2) {
    usage();
    return 1;
  }
  const std::string cmd = argv[1];
  // Shift argv so each subcommand parses its own flags.
  if (cmd == "generate") return cmd_generate(argc - 1, argv + 1);
  if (cmd == "stats") return cmd_stats(argc - 1, argv + 1);
  if (cmd == "align") return cmd_align(argc - 1, argv + 1);
  if (cmd == "match") return cmd_match(argc - 1, argv + 1);
  if (cmd == "client") return cmd_client(argc - 1, argv + 1);
  usage();
  return 1;
} catch (const std::exception& e) {
  std::fprintf(stderr, "error: %s\n", e.what());
  return 1;
}
