#!/usr/bin/env sh
# One-command concurrency gate: build the ThreadSanitizer tree and run the
# contention stress suite plus the alignment-server suite (label `server`:
# scheduler, cancel storms, socket loop) under it, then (optionally) the
# ASan+UBSan tree over the full test suite.
#
#   tools/check_concurrency.sh           # TSan + stress suite only (~1 min)
#   tools/check_concurrency.sh --full    # also ASan/UBSan over all tests
#
# Exits non-zero on any compile error, test failure, or sanitizer report
# (TSan makes the test process exit 66 when it saw a race). The trees are
# separate from build/ (build-tsan/, build-asan/), so the release tree
# stays untouched.
set -eu

cd "$(dirname "$0")/.."
JOBS="$(nproc 2>/dev/null || echo 2)"

echo "== TSan: configure + build =="
cmake --preset tsan
cmake --build build-tsan -j "$JOBS"

echo "== TSan: stress + server suites (ctest -L 'tsan|server') =="
TSAN_OPTIONS="${TSAN_OPTIONS:-halt_on_error=0 second_deadlock_stack=1}" \
  ctest --test-dir build-tsan -L 'tsan|server' --output-on-failure

if [ "${1:-}" = "--full" ]; then
  echo "== ASan+UBSan: configure + build =="
  cmake --preset asan-ubsan
  cmake --build build-asan -j "$JOBS"
  echo "== ASan+UBSan: full suite =="
  UBSAN_OPTIONS="${UBSAN_OPTIONS:-print_stacktrace=1 halt_on_error=1}" \
    ctest --test-dir build-asan --output-on-failure -j "$JOBS"
fi

echo "concurrency checks passed"
