#include "netalign/isorank.hpp"

#include <gtest/gtest.h>

#include "matching/verify.hpp"
#include "netalign/belief_prop.hpp"
#include "netalign/synthetic.hpp"

namespace netalign {
namespace {

SyntheticInstance make_instance(std::uint64_t seed, double dbar = 2.0) {
  PowerLawInstanceOptions opt;
  opt.n = 60;
  opt.seed = seed;
  opt.expected_degree = dbar;
  return make_power_law_instance(opt);
}

TEST(IsoRank, ProducesValidMatching) {
  const auto inst = make_instance(1);
  const auto S = SquaresMatrix::build(inst.problem);
  const auto r = isorank_align(inst.problem, S);
  EXPECT_TRUE(is_valid_matching(inst.problem.L, r.matching));
  EXPECT_GT(r.value.objective, 0.0);
  EXPECT_GE(r.best_iteration, 1);
}

TEST(IsoRank, ConvergesUnderTolerance) {
  const auto inst = make_instance(2);
  const auto S = SquaresMatrix::build(inst.problem);
  IsoRankOptions opt;
  opt.max_iterations = 200;
  opt.tolerance = 1e-10;
  const auto r = isorank_align(inst.problem, S, opt);
  ASSERT_FALSE(r.objective_history.empty());
  // The recorded series is the iterate movement; it must shrink.
  EXPECT_LT(r.objective_history.back(), r.objective_history.front());
  EXPECT_LT(r.objective_history.back(), 1e-10);
}

TEST(IsoRank, RecoversIdentityOnEasyInstances) {
  const auto inst = make_instance(3, 2.0);
  const auto S = SquaresMatrix::build(inst.problem);
  const auto r = isorank_align(inst.problem, S);
  EXPECT_GE(fraction_correct(r.matching, inst.reference), 0.8);
}

TEST(IsoRank, TrailsBpOnOverlapObjective) {
  // IsoRank is the baseline: on harder instances BP's objective should be
  // at least as good (usually better).
  const auto inst = make_instance(4, 10.0);
  const auto S = SquaresMatrix::build(inst.problem);
  const auto iso = isorank_align(inst.problem, S);
  BeliefPropOptions bp;
  bp.max_iterations = 100;
  const auto r_bp = belief_prop_align(inst.problem, S, bp);
  EXPECT_GE(r_bp.value.objective, iso.value.objective - 1e-9);
}

TEST(IsoRank, GammaZeroReturnsPriorRounding) {
  // With gamma = 0 the fixed point is the prior itself: matching L's raw
  // (normalized) weights.
  const auto inst = make_instance(5);
  const auto S = SquaresMatrix::build(inst.problem);
  IsoRankOptions opt;
  opt.gamma = 0.0;
  opt.max_iterations = 3;
  const auto r = isorank_align(inst.problem, S, opt);
  EXPECT_TRUE(is_valid_matching(inst.problem.L, r.matching));
  // All-unit weights: prior is uniform, so any maximum matching of the
  // uniform vector is fine; validity and nonzero cardinality suffice.
  EXPECT_GT(r.matching.cardinality, 0);
}

TEST(IsoRank, RejectsBadOptions) {
  const auto inst = make_instance(6);
  const auto S = SquaresMatrix::build(inst.problem);
  IsoRankOptions opt;
  opt.gamma = 1.0;
  EXPECT_THROW(isorank_align(inst.problem, S, opt), std::invalid_argument);
  opt.gamma = 0.85;
  opt.max_iterations = 0;
  EXPECT_THROW(isorank_align(inst.problem, S, opt), std::invalid_argument);
}

TEST(IsoRank, DeterministicAcrossRuns) {
  const auto inst = make_instance(7);
  const auto S = SquaresMatrix::build(inst.problem);
  const auto a = isorank_align(inst.problem, S);
  const auto b = isorank_align(inst.problem, S);
  EXPECT_EQ(a.value.objective, b.value.objective);
  EXPECT_EQ(a.matching.mate_a, b.matching.mate_a);
}

TEST(IsoRank, StepTimersAreRecorded) {
  const auto inst = make_instance(8);
  const auto S = SquaresMatrix::build(inst.problem);
  const auto r = isorank_align(inst.problem, S);
  EXPECT_GT(r.timers.count("propagate"), 0u);
  EXPECT_EQ(r.timers.count("matching"), 1u);
}

}  // namespace
}  // namespace netalign
