#include "netalign/synthetic.hpp"

#include <gtest/gtest.h>

#include "graph/algorithms.hpp"
#include "netalign/squares.hpp"

namespace netalign {
namespace {

TEST(PowerLawInstance, BasicShape) {
  PowerLawInstanceOptions opt;
  opt.n = 120;
  opt.seed = 1;
  opt.expected_degree = 4.0;
  const auto inst = make_power_law_instance(opt);
  const auto& p = inst.problem;
  EXPECT_TRUE(p.is_consistent());
  EXPECT_EQ(p.A.num_vertices(), 120);
  EXPECT_EQ(p.B.num_vertices(), 120);
  EXPECT_EQ(static_cast<vid_t>(inst.reference.size()), 120);
}

TEST(PowerLawInstance, ContainsIdentityEdges) {
  PowerLawInstanceOptions opt;
  opt.n = 90;
  opt.seed = 2;
  const auto inst = make_power_law_instance(opt);
  for (vid_t i = 0; i < 90; ++i) {
    EXPECT_NE(inst.problem.L.find_edge(i, i), kInvalidEid);
    EXPECT_EQ(inst.reference[i], i);
  }
}

TEST(PowerLawInstance, ExpectedDegreeControlsLSize) {
  PowerLawInstanceOptions sparse, dense;
  sparse.n = dense.n = 200;
  sparse.seed = dense.seed = 3;
  sparse.expected_degree = 2.0;
  dense.expected_degree = 12.0;
  const auto a = make_power_law_instance(sparse);
  const auto b = make_power_law_instance(dense);
  EXPECT_GT(b.problem.L.num_edges(), 2 * a.problem.L.num_edges());
  // |E_L| ~ n * (1 + dbar): random pairs plus the identity diagonal.
  const double expected = 200.0 * (1.0 + 12.0);
  EXPECT_NEAR(static_cast<double>(b.problem.L.num_edges()), expected,
              0.25 * expected);
}

TEST(PowerLawInstance, PerturbationKeepsBaseEdges) {
  PowerLawInstanceOptions opt;
  opt.n = 100;
  opt.seed = 4;
  const auto inst = make_power_law_instance(opt);
  // A and B share the base graph G: every edge of G is in both. We can't
  // reconstruct G directly, but A intersect B must be substantial --
  // at least the base edge count minus nothing (perturbation only adds).
  eid_t shared = 0;
  for (const auto& [u, v] : inst.problem.A.edge_list()) {
    if (inst.problem.B.has_edge(u, v)) ++shared;
  }
  EXPECT_GT(shared, 0);
}

TEST(PowerLawInstance, DeterministicPerSeed) {
  PowerLawInstanceOptions opt;
  opt.n = 80;
  opt.seed = 5;
  const auto a = make_power_law_instance(opt);
  const auto b = make_power_law_instance(opt);
  EXPECT_EQ(a.problem.A.edge_list(), b.problem.A.edge_list());
  EXPECT_EQ(a.problem.B.edge_list(), b.problem.B.edge_list());
  EXPECT_EQ(a.problem.L.num_edges(), b.problem.L.num_edges());
}

TEST(PowerLawInstance, DifferentSeedsDiffer) {
  PowerLawInstanceOptions a, b;
  a.n = b.n = 80;
  a.seed = 6;
  b.seed = 7;
  const auto ia = make_power_law_instance(a);
  const auto ib = make_power_law_instance(b);
  EXPECT_NE(ia.problem.A.edge_list(), ib.problem.A.edge_list());
}

TEST(PowerLawInstance, RejectsTinyN) {
  PowerLawInstanceOptions opt;
  opt.n = 1;
  EXPECT_THROW(make_power_law_instance(opt), std::invalid_argument);
}

TEST(OntologyInstance, TreeCoreIsConnected) {
  OntologyInstanceOptions opt;
  opt.n = 150;
  opt.seed = 21;
  const auto inst = make_ontology_instance(opt);
  // The shared tree spans both graphs, so each side is connected.
  const auto cc_a = connected_components(inst.problem.A);
  const auto cc_b = connected_components(inst.problem.B);
  EXPECT_EQ(cc_a.count, 1);
  EXPECT_EQ(cc_b.count, 1);
  // At least the n-1 tree edges are present on each side.
  EXPECT_GE(inst.problem.A.num_edges(), 149);
  EXPECT_GE(inst.problem.B.num_edges(), 149);
}

TEST(OntologyInstance, SidesShareTheTreeButDifferInCrossEdges) {
  OntologyInstanceOptions opt;
  opt.n = 200;
  opt.seed = 22;
  opt.cross_degree = 3.0;
  const auto inst = make_ontology_instance(opt);
  eid_t shared = 0;
  for (const auto& [u, v] : inst.problem.A.edge_list()) {
    if (inst.problem.B.has_edge(u, v)) ++shared;
  }
  EXPECT_GE(shared, 199);  // the tree
  EXPECT_GT(inst.problem.A.num_edges(), shared);  // plus own cross edges
  EXPECT_NE(inst.problem.A.edge_list(), inst.problem.B.edge_list());
}

TEST(OntologyInstance, PreferentialTreeIsSkewed) {
  OntologyInstanceOptions pref, unif;
  pref.n = unif.n = 600;
  pref.seed = unif.seed = 23;
  pref.cross_degree = unif.cross_degree = 0.0;
  pref.preferential = true;
  unif.preferential = false;
  const auto ip = make_ontology_instance(pref);
  const auto iu = make_ontology_instance(unif);
  EXPECT_GT(degree_stats(ip.problem.A).max,
            degree_stats(iu.problem.A).max);
}

TEST(OntologyInstance, IdentityEdgesAreHeaviestOnAverage) {
  OntologyInstanceOptions opt;
  opt.n = 200;
  opt.seed = 24;
  const auto inst = make_ontology_instance(opt);
  double id_sum = 0.0, other_sum = 0.0;
  eid_t id_count = 0, other_count = 0;
  const auto& L = inst.problem.L;
  for (eid_t e = 0; e < L.num_edges(); ++e) {
    if (L.edge_a(e) == L.edge_b(e)) {
      id_sum += L.edge_weight(e);
      ++id_count;
    } else {
      other_sum += L.edge_weight(e);
      ++other_count;
    }
  }
  ASSERT_EQ(id_count, 200);
  ASSERT_GT(other_count, 0);
  EXPECT_GT(id_sum / id_count, other_sum / other_count);
}

TEST(OntologyInstance, DeterministicPerSeed) {
  OntologyInstanceOptions opt;
  opt.n = 100;
  opt.seed = 25;
  const auto a = make_ontology_instance(opt);
  const auto b = make_ontology_instance(opt);
  EXPECT_EQ(a.problem.A.edge_list(), b.problem.A.edge_list());
  EXPECT_EQ(a.problem.L.num_edges(), b.problem.L.num_edges());
}

TEST(OntologyInstance, RejectsTinyN) {
  OntologyInstanceOptions opt;
  opt.n = 1;
  EXPECT_THROW(make_ontology_instance(opt), std::invalid_argument);
}

TEST(StandIn, Table2SpecsMatchPaper) {
  const auto specs = paper_table2_specs();
  ASSERT_EQ(specs.size(), 4u);
  EXPECT_EQ(specs[0].name, "dmela-scere");
  EXPECT_EQ(specs[0].num_a, 9459);
  EXPECT_EQ(specs[0].num_b, 5696);
  EXPECT_EQ(specs[0].target_el, 34582);
  EXPECT_EQ(specs[0].target_nnz_s, 6860);
  EXPECT_EQ(specs[3].name, "lcsh-rameau");
  EXPECT_EQ(specs[3].target_el, 20883500);
}

TEST(StandIn, ScaledProblemApproximatesTargets) {
  StandInSpec spec = paper_table2_specs()[0];  // dmela-scere
  const double scale = 0.2;
  const auto p = make_standin_problem(spec, scale);
  EXPECT_TRUE(p.is_consistent());
  EXPECT_NEAR(static_cast<double>(p.A.num_vertices()), spec.num_a * scale,
              2.0);
  EXPECT_NEAR(static_cast<double>(p.B.num_vertices()), spec.num_b * scale,
              2.0);
  // |E_L| within 25% of the scaled target (duplicates collapse).
  EXPECT_NEAR(static_cast<double>(p.L.num_edges()),
              static_cast<double>(spec.target_el) * scale,
              0.25 * static_cast<double>(spec.target_el) * scale);
}

TEST(StandIn, SquaresCountIsInTargetBallpark) {
  StandInSpec spec = paper_table2_specs()[1];  // homo-musm
  const double scale = 0.3;
  const auto p = make_standin_problem(spec, scale);
  const auto S = SquaresMatrix::build(p);
  const double target = static_cast<double>(spec.target_nnz_s) * scale;
  // The construction is calibrated, not exact: within a factor of 3.
  EXPECT_GT(static_cast<double>(S.num_nonzeros()), target / 3.0);
  EXPECT_LT(static_cast<double>(S.num_nonzeros()), target * 3.0);
}

TEST(StandIn, RejectsBadScale) {
  const auto spec = paper_table2_specs()[0];
  EXPECT_THROW(make_standin_problem(spec, 0.0), std::invalid_argument);
  EXPECT_THROW(make_standin_problem(spec, 1.5), std::invalid_argument);
}

TEST(StandIn, NameEncodesScale) {
  const auto spec = paper_table2_specs()[0];
  const auto full = make_standin_problem(spec, 1.0);
  EXPECT_EQ(full.name, "dmela-scere");
  const auto scaled = make_standin_problem(spec, 0.5);
  EXPECT_NE(scaled.name.find("dmela-scere-x"), std::string::npos);
}

}  // namespace
}  // namespace netalign
