#include "matching/locally_dominant.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "helpers.hpp"
#include "matching/exact_mwm.hpp"
#include "matching/greedy.hpp"
#include "matching/verify.hpp"
#include "util/parallel.hpp"

namespace netalign {
namespace {

using testing::own_weights;
using testing::random_bipartite;

TEST(LocallyDominant, EmptyGraph) {
  const BipartiteGraph g = BipartiteGraph::from_edges(4, 4, {});
  const auto m = locally_dominant_matching(g, own_weights(g));
  EXPECT_EQ(m.cardinality, 0);
  EXPECT_TRUE(is_valid_matching(g, m));
}

TEST(LocallyDominant, SingleEdge) {
  const std::vector<LEdge> edges = {{0, 1, 2.0}};
  const BipartiteGraph g = BipartiteGraph::from_edges(1, 2, edges);
  const auto m = locally_dominant_matching(g, own_weights(g));
  EXPECT_EQ(m.cardinality, 1);
  EXPECT_DOUBLE_EQ(m.weight, 2.0);
}

TEST(LocallyDominant, PicksLocallyDominantEdge) {
  // Path a0 - b0 - a1 with weights 1.0 and 3.0: the 3.0 edge dominates.
  const std::vector<LEdge> edges = {{0, 0, 1.0}, {1, 0, 3.0}, {1, 1, 2.0}};
  const BipartiteGraph g = BipartiteGraph::from_edges(2, 2, edges);
  const auto m = locally_dominant_matching(g, own_weights(g));
  EXPECT_EQ(m.mate_a[1], 0);
  // After (a1, b0) matches, phase 2 must still match a0's remaining... a0
  // only neighbors b0, so a0 stays single; b1 likewise.
  EXPECT_EQ(m.cardinality, 1);
  EXPECT_DOUBLE_EQ(m.weight, 3.0);
}

TEST(LocallyDominant, Phase2RematchesAfterCandidateDies) {
  // Chain a0-b0 (3), a0-b1 (2), a1-b1 (1): first (a0, b0)? No -- a0's best
  // is b0 (3) and b0's best is a0, they match; then b1's candidate a0 is
  // matched, so phase 2 re-points b1 to a1 and matches (a1, b1).
  const std::vector<LEdge> edges = {{0, 0, 3.0}, {0, 1, 2.0}, {1, 1, 1.0}};
  const BipartiteGraph g = BipartiteGraph::from_edges(2, 2, edges);
  const auto m = locally_dominant_matching(g, own_weights(g));
  EXPECT_EQ(m.cardinality, 2);
  EXPECT_EQ(m.mate_a[0], 0);
  EXPECT_EQ(m.mate_a[1], 1);
  EXPECT_DOUBLE_EQ(m.weight, 4.0);
}

TEST(LocallyDominant, IgnoresNonPositiveEdges) {
  const std::vector<LEdge> edges = {{0, 0, -1.0}, {1, 1, 0.0}, {0, 1, 2.0}};
  const BipartiteGraph g = BipartiteGraph::from_edges(2, 2, edges);
  const auto m = locally_dominant_matching(g, own_weights(g));
  EXPECT_EQ(m.cardinality, 1);
  EXPECT_EQ(m.mate_a[0], 1);
}

TEST(LocallyDominant, HalfApproximationHoldsOnRandomGraphs) {
  Xoshiro256 rng(1234);
  for (int trial = 0; trial < 100; ++trial) {
    const auto g = random_bipartite(8, 8, 24, rng);
    const auto w = own_weights(g);
    const auto approx = locally_dominant_matching(g, w);
    const auto exact = max_weight_matching_exact(g, w);
    ASSERT_TRUE(is_valid_matching(g, approx)) << "trial " << trial;
    EXPECT_TRUE(is_maximal_matching(g, w, approx)) << "trial " << trial;
    EXPECT_LE(approx.weight, exact.weight + 1e-9);
    EXPECT_GE(approx.weight, 0.5 * exact.weight - 1e-9) << "trial " << trial;
    EXPECT_GE(approx.cardinality * 2, exact.cardinality) << "trial " << trial;
  }
}

TEST(LocallyDominant, AgreesWithGreedyUnderDistinctWeights) {
  // With all-distinct weights the locally-dominant matching is unique and
  // equals the greedy matching (both pick exactly the locally dominant
  // edges).
  Xoshiro256 rng(555);
  for (int trial = 0; trial < 50; ++trial) {
    const auto g = random_bipartite(10, 10, 35, rng);
    const auto w = own_weights(g);
    const auto ld = locally_dominant_matching(g, w);
    const auto gr = greedy_matching(g, w);
    EXPECT_NEAR(ld.weight, gr.weight, 1e-9) << "trial " << trial;
    EXPECT_EQ(ld.cardinality, gr.cardinality);
    for (vid_t a = 0; a < g.num_a(); ++a) {
      EXPECT_EQ(ld.mate_a[a], gr.mate_a[a]) << "trial " << trial;
    }
  }
}

TEST(LocallyDominant, OneSidedInitMatchesTwoSidedWeightClass) {
  Xoshiro256 rng(777);
  for (int trial = 0; trial < 50; ++trial) {
    const auto g = random_bipartite(9, 7, 28, rng);
    const auto w = own_weights(g);
    LdOptions one;
    one.init = LdInit::kOneSided;
    const auto m1 = locally_dominant_matching(g, w, one);
    const auto m2 = locally_dominant_matching(g, w);
    ASSERT_TRUE(is_valid_matching(g, m1));
    EXPECT_TRUE(is_maximal_matching(g, w, m1)) << "trial " << trial;
    // Distinct weights => unique locally-dominant matching, so the two
    // initializations converge to the same answer.
    EXPECT_NEAR(m1.weight, m2.weight, 1e-9) << "trial " << trial;
  }
}

TEST(LocallyDominant, StatsRecordQueueDecay) {
  Xoshiro256 rng(888);
  const auto g = random_bipartite(400, 400, 3000, rng);
  const auto w = own_weights(g);
  LdStats stats;
  const auto m = locally_dominant_matching(g, w, {}, &stats);
  EXPECT_TRUE(is_valid_matching(g, m));
  ASSERT_GE(stats.rounds, 1);
  ASSERT_EQ(stats.queue_sizes.size(), static_cast<std::size_t>(stats.rounds));
  EXPECT_GT(stats.findmate_calls, 0);
  // The first round's queue covers the phase-1 matches (2 entries per
  // matched pair); sizes are positive and the series terminates.
  for (const eid_t q : stats.queue_sizes) EXPECT_GT(q, 0);
}

TEST(LocallyDominant, TieBreakingIsById) {
  // Two equal-weight edges at a0: candidate must be the smaller B id
  // (global id na + b, so b0 over b1).
  const std::vector<LEdge> edges = {{0, 0, 1.0}, {0, 1, 1.0}};
  const BipartiteGraph g = BipartiteGraph::from_edges(1, 2, edges);
  const auto m = locally_dominant_matching(g, own_weights(g));
  EXPECT_EQ(m.mate_a[0], 0);
}

TEST(LocallyDominant, WeightSizeMismatchThrows) {
  const BipartiteGraph g = BipartiteGraph::from_edges(2, 2, {});
  std::vector<weight_t> wrong(1, 1.0);
  EXPECT_THROW(locally_dominant_matching(g, wrong), std::invalid_argument);
}

TEST(LocallyDominant, RepeatedRunsAreIdentical) {
  Xoshiro256 rng(999);
  const auto g = random_bipartite(50, 50, 300, rng);
  const auto w = own_weights(g);
  const auto m1 = locally_dominant_matching(g, w);
  const auto m2 = locally_dominant_matching(g, w);
  EXPECT_EQ(m1.mate_a, m2.mate_a);
  EXPECT_EQ(m1.mate_b, m2.mate_b);
}

TEST(LocallyDominant, PerfectDiagonalIsFound) {
  std::vector<LEdge> edges;
  const vid_t n = 100;
  for (vid_t i = 0; i < n; ++i) edges.push_back(LEdge{i, i, 2.0});
  // Add light distractor edges.
  for (vid_t i = 0; i + 1 < n; ++i) edges.push_back(LEdge{i, i + 1, 1.0});
  const BipartiteGraph g = BipartiteGraph::from_edges(n, n, edges);
  const auto m = locally_dominant_matching(g, own_weights(g));
  EXPECT_EQ(m.cardinality, n);
  for (vid_t i = 0; i < n; ++i) EXPECT_EQ(m.mate_a[i], i);
}

TEST(LocallyDominant, MultiThreadRunsRemainValidAndHalfApprox) {
  Xoshiro256 rng(2024);
  const auto g = random_bipartite(200, 200, 1500, rng);
  const auto w = own_weights(g);
  const auto exact = max_weight_matching_exact(g, w);
  for (int threads : {1, 2, 4, 8}) {
    ThreadCountGuard guard(threads);
    for (auto init : {LdInit::kTwoSided, LdInit::kOneSided}) {
      LdOptions opt;
      opt.init = init;
      const auto m = locally_dominant_matching(g, w, opt);
      ASSERT_TRUE(is_valid_matching(g, m));
      EXPECT_TRUE(is_maximal_matching(g, w, m));
      EXPECT_GE(m.weight, 0.5 * exact.weight - 1e-9)
          << "threads=" << threads;
      EXPECT_LE(m.weight, exact.weight + 1e-9);
    }
  }
}

}  // namespace
}  // namespace netalign
