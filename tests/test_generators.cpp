#include "graph/generators.hpp"

#include <gtest/gtest.h>

#include <numeric>
#include <stdexcept>

namespace netalign {
namespace {

TEST(PowerLawDegrees, RespectsBounds) {
  Xoshiro256 rng(1);
  const auto d = power_law_degrees(1000, 2.5, 2.0, 50.0, rng);
  ASSERT_EQ(d.size(), 1000u);
  for (double v : d) {
    EXPECT_GE(v, 2.0);
    EXPECT_LE(v, 50.0);
  }
}

TEST(PowerLawDegrees, DefaultMaxIsNMinusOne) {
  Xoshiro256 rng(2);
  const auto d = power_law_degrees(100, 2.0, 1.0, 0.0, rng);
  for (double v : d) EXPECT_LE(v, 99.0);
}

TEST(PowerLawDegrees, HeavyTailExists) {
  Xoshiro256 rng(3);
  const auto d = power_law_degrees(5000, 2.1, 1.0, 0.0, rng);
  const double max = *std::max_element(d.begin(), d.end());
  const double mean = std::accumulate(d.begin(), d.end(), 0.0) / 5000.0;
  // A power law with exponent 2.1 should produce a max far above the mean.
  EXPECT_GT(max, 10.0 * mean);
}

TEST(PowerLawDegrees, RejectsBadParameters) {
  Xoshiro256 rng(4);
  EXPECT_THROW(power_law_degrees(10, 1.0, 1.0, 0.0, rng),
               std::invalid_argument);
  EXPECT_THROW(power_law_degrees(10, 2.5, 0.0, 0.0, rng),
               std::invalid_argument);
}

TEST(ChungLu, MatchesExpectedDegreesApproximately) {
  Xoshiro256 rng(5);
  const vid_t n = 2000;
  std::vector<double> degrees(n, 6.0);
  const Graph g = chung_lu(degrees, rng);
  const double target_edges = n * 6.0 / 2.0;
  EXPECT_NEAR(static_cast<double>(g.num_edges()), target_edges,
              0.15 * target_edges);
}

TEST(ChungLu, EmptyWeightsGiveEmptyGraph) {
  Xoshiro256 rng(6);
  const Graph g = chung_lu(std::vector<double>{}, rng);
  EXPECT_EQ(g.num_vertices(), 0);
  const Graph g2 = chung_lu(std::vector<double>(5, 0.0), rng);
  EXPECT_EQ(g2.num_edges(), 0);
}

TEST(ChungLu, IsDeterministicPerSeed) {
  std::vector<double> degrees(300, 4.0);
  Xoshiro256 a(7), b(7);
  const Graph ga = chung_lu(degrees, a);
  const Graph gb = chung_lu(degrees, b);
  EXPECT_EQ(ga.edge_list(), gb.edge_list());
}

TEST(ErdosRenyi, EdgeCountNearExpectation) {
  Xoshiro256 rng(8);
  const vid_t n = 500;
  const double p = 0.02;
  const Graph g = erdos_renyi(n, p, rng);
  const double expected = p * n * (n - 1) / 2.0;
  EXPECT_NEAR(static_cast<double>(g.num_edges()), expected, 0.15 * expected);
}

TEST(ErdosRenyi, ZeroProbabilityGivesNoEdges) {
  Xoshiro256 rng(9);
  EXPECT_EQ(erdos_renyi(100, 0.0, rng).num_edges(), 0);
}

TEST(ErdosRenyi, FullProbabilityGivesCompleteGraph) {
  Xoshiro256 rng(10);
  const Graph g = erdos_renyi(20, 1.0, rng);
  EXPECT_EQ(g.num_edges(), 20 * 19 / 2);
}

TEST(ErdosRenyi, RejectsBadProbability) {
  Xoshiro256 rng(11);
  EXPECT_THROW(erdos_renyi(10, -0.1, rng), std::invalid_argument);
  EXPECT_THROW(erdos_renyi(10, 1.5, rng), std::invalid_argument);
}

TEST(PreferentialAttachment, ProducesConnectedCore) {
  Xoshiro256 rng(12);
  const Graph g = preferential_attachment(200, 2, rng);
  EXPECT_EQ(g.num_vertices(), 200);
  // Every non-seed vertex attaches with >= 1 edge.
  for (vid_t v = 1; v < 200; ++v) EXPECT_GE(g.degree(v), 1);
}

TEST(PreferentialAttachment, RejectsZeroEdges) {
  Xoshiro256 rng(13);
  EXPECT_THROW(preferential_attachment(10, 0, rng), std::invalid_argument);
}

TEST(AddRandomEdges, PreservesExistingEdges) {
  Xoshiro256 rng(14);
  const Graph g = erdos_renyi(100, 0.05, rng);
  const Graph h = add_random_edges(g, 0.02, rng);
  for (const auto& [u, v] : g.edge_list()) {
    EXPECT_TRUE(h.has_edge(u, v));
  }
  EXPECT_GE(h.num_edges(), g.num_edges());
}

TEST(AddRandomEdges, AddsRoughlyExpectedCount) {
  Xoshiro256 rng(15);
  const vid_t n = 400;
  const Graph empty = Graph::from_edges(n, {});
  const Graph h = add_random_edges(empty, 0.02, rng);
  const double expected = 0.02 * n * (n - 1) / 2.0;
  EXPECT_NEAR(static_cast<double>(h.num_edges()), expected, 0.2 * expected);
}

TEST(RandomPowerLawGraph, ProducesSkewedDegrees) {
  Xoshiro256 rng(16);
  const Graph g = random_power_law_graph(2000, 2.3, 1.5, rng);
  EXPECT_GT(g.num_edges(), 0);
  EXPECT_GT(g.max_degree(), 5 * (2 * g.num_edges() / g.num_vertices()));
}

}  // namespace
}  // namespace netalign
