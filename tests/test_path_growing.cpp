#include "matching/path_growing.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "helpers.hpp"
#include "matching/exact_mwm.hpp"
#include "matching/greedy.hpp"
#include "matching/verify.hpp"

namespace netalign {
namespace {

using testing::own_weights;
using testing::random_bipartite;

TEST(PathGrowing, EmptyGraph) {
  const BipartiteGraph g = BipartiteGraph::from_edges(4, 4, {});
  const auto m = path_growing_matching(g, own_weights(g));
  EXPECT_EQ(m.cardinality, 0);
  EXPECT_TRUE(is_valid_matching(g, m));
}

TEST(PathGrowing, SingleEdge) {
  const std::vector<LEdge> edges = {{0, 0, 2.0}};
  const BipartiteGraph g = BipartiteGraph::from_edges(1, 1, edges);
  const auto m = path_growing_matching(g, own_weights(g));
  EXPECT_EQ(m.cardinality, 1);
  EXPECT_DOUBLE_EQ(m.weight, 2.0);
}

TEST(PathGrowing, DpBeatsAlternationOnThreePath) {
  // Path with weights 1.0, 1.5, 1.0: alternating matchings give {1.5} or
  // {1.0, 1.0}; the DP picks the {1.0, 1.0} = 2.0 side.
  const std::vector<LEdge> edges = {{0, 0, 1.0}, {1, 0, 1.5}, {1, 1, 1.0}};
  const BipartiteGraph g = BipartiteGraph::from_edges(2, 2, edges);
  const auto m = path_growing_matching(g, own_weights(g));
  EXPECT_DOUBLE_EQ(m.weight, 2.0);
  EXPECT_EQ(m.cardinality, 2);
}

TEST(PathGrowing, IsHalfApproximate) {
  Xoshiro256 rng(31415);
  for (int trial = 0; trial < 100; ++trial) {
    const auto g = random_bipartite(8, 8, 26, rng);
    const auto w = own_weights(g);
    const auto m = path_growing_matching(g, w);
    const auto exact = max_weight_matching_exact(g, w);
    ASSERT_TRUE(is_valid_matching(g, m)) << "trial " << trial;
    EXPECT_LE(m.weight, exact.weight + 1e-9);
    EXPECT_GE(m.weight, 0.5 * exact.weight - 1e-9) << "trial " << trial;
  }
}

TEST(PathGrowing, TypicallyAtLeastGreedy) {
  // Not a theorem edge-by-edge, but in aggregate the DP refinement makes
  // path-growing competitive with greedy; check on a batch.
  Xoshiro256 rng(2718);
  double pg_total = 0.0, greedy_total = 0.0;
  for (int trial = 0; trial < 40; ++trial) {
    const auto g = random_bipartite(20, 20, 80, rng);
    const auto w = own_weights(g);
    pg_total += path_growing_matching(g, w).weight;
    greedy_total += greedy_matching(g, w).weight;
  }
  EXPECT_GE(pg_total, 0.95 * greedy_total);
}

TEST(PathGrowing, IgnoresNonPositiveEdges) {
  const std::vector<LEdge> edges = {{0, 0, -2.0}, {1, 1, 0.0}};
  const BipartiteGraph g = BipartiteGraph::from_edges(2, 2, edges);
  const auto m = path_growing_matching(g, own_weights(g));
  EXPECT_EQ(m.cardinality, 0);
}

TEST(PathGrowing, StatsTrackPaths) {
  Xoshiro256 rng(999);
  const auto g = random_bipartite(50, 50, 300, rng);
  PathGrowingStats stats;
  const auto m = path_growing_matching(g, own_weights(g), &stats);
  EXPECT_TRUE(is_valid_matching(g, m));
  EXPECT_GT(stats.paths, 0);
  EXPECT_GE(stats.longest_path, 1);
}

TEST(PathGrowing, WeightSizeMismatchThrows) {
  const BipartiteGraph g = BipartiteGraph::from_edges(2, 2, {});
  std::vector<weight_t> wrong(3, 1.0);
  EXPECT_THROW(path_growing_matching(g, wrong), std::invalid_argument);
}

TEST(PathGrowing, DeterministicAcrossRuns) {
  Xoshiro256 rng(1001);
  const auto g = random_bipartite(30, 30, 150, rng);
  const auto w = own_weights(g);
  const auto a = path_growing_matching(g, w);
  const auto b = path_growing_matching(g, w);
  EXPECT_EQ(a.mate_a, b.mate_a);
  EXPECT_EQ(a.weight, b.weight);
}

}  // namespace
}  // namespace netalign
