#include "matching/exact_mwm.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "helpers.hpp"
#include "matching/verify.hpp"

namespace netalign {
namespace {

using testing::own_weights;
using testing::random_bipartite;

TEST(ExactMwm, EmptyGraph) {
  const BipartiteGraph g = BipartiteGraph::from_edges(3, 3, {});
  const auto m = max_weight_matching_exact(g, own_weights(g));
  EXPECT_EQ(m.cardinality, 0);
  EXPECT_EQ(m.weight, 0.0);
  EXPECT_TRUE(is_valid_matching(g, m));
}

TEST(ExactMwm, SingleEdge) {
  const std::vector<LEdge> edges = {{0, 1, 2.5}};
  const BipartiteGraph g = BipartiteGraph::from_edges(1, 2, edges);
  const auto m = max_weight_matching_exact(g, own_weights(g));
  EXPECT_EQ(m.cardinality, 1);
  EXPECT_DOUBLE_EQ(m.weight, 2.5);
  EXPECT_EQ(m.mate_a[0], 1);
}

TEST(ExactMwm, PrefersHeavyEdgeOverTwoLight) {
  // a0-b0 (10) conflicts with a0-b1 (1) + ... a heavy middle edge should
  // win over being greedy elsewhere when the sums favor it.
  const std::vector<LEdge> edges = {
      {0, 0, 3.0}, {0, 1, 2.0}, {1, 0, 2.0}};
  const BipartiteGraph g = BipartiteGraph::from_edges(2, 2, edges);
  const auto m = max_weight_matching_exact(g, own_weights(g));
  // Optimal: a0-b1 (2) + a1-b0 (2) = 4 > a0-b0 (3).
  EXPECT_DOUBLE_EQ(m.weight, 4.0);
  EXPECT_EQ(m.cardinality, 2);
}

TEST(ExactMwm, GreedyIsSuboptimalHere) {
  // The classic half-approximation worst case: the greedy/locally-dominant
  // answer is w, the optimum is 2 * (w - eps).
  const std::vector<LEdge> edges = {
      {0, 0, 1.0}, {0, 1, 0.9}, {1, 0, 0.9}};
  const BipartiteGraph g = BipartiteGraph::from_edges(2, 2, edges);
  const auto m = max_weight_matching_exact(g, own_weights(g));
  EXPECT_NEAR(m.weight, 1.8, 1e-12);
}

TEST(ExactMwm, IgnoresNonPositiveEdges) {
  const std::vector<LEdge> edges = {{0, 0, -1.0}, {0, 1, 0.0}, {1, 1, 2.0}};
  const BipartiteGraph g = BipartiteGraph::from_edges(2, 2, edges);
  const auto m = max_weight_matching_exact(g, own_weights(g));
  EXPECT_EQ(m.cardinality, 1);
  EXPECT_DOUBLE_EQ(m.weight, 2.0);
  EXPECT_EQ(m.mate_a[0], kInvalidVid);
}

TEST(ExactMwm, MatchesBruteForceOnSmallRandomGraphs) {
  Xoshiro256 rng(101);
  for (int trial = 0; trial < 200; ++trial) {
    const auto g = random_bipartite(4, 4, 8, rng);
    const auto w = own_weights(g);
    const auto m = max_weight_matching_exact(g, w);
    ASSERT_TRUE(is_valid_matching(g, m));
    EXPECT_NEAR(m.weight, brute_force_mwm_value(g, w), 1e-9)
        << "trial " << trial;
    EXPECT_NEAR(m.weight, matching_weight(g, w, m), 1e-9);
  }
}

TEST(ExactMwm, MatchesBruteForceOnRectangularGraphs) {
  Xoshiro256 rng(202);
  for (int trial = 0; trial < 100; ++trial) {
    const auto g = random_bipartite(3, 7, 10, rng);
    const auto w = own_weights(g);
    const auto m = max_weight_matching_exact(g, w);
    ASSERT_TRUE(is_valid_matching(g, m));
    EXPECT_NEAR(m.weight, brute_force_mwm_value(g, w), 1e-9);
  }
}

TEST(ExactMwm, HandlesMixedSignWeights) {
  Xoshiro256 rng(303);
  for (int trial = 0; trial < 100; ++trial) {
    const auto g = random_bipartite(4, 4, 9, rng, -0.5, 1.0);
    const auto w = own_weights(g);
    const auto m = max_weight_matching_exact(g, w);
    ASSERT_TRUE(is_valid_matching(g, m));
    EXPECT_NEAR(m.weight, brute_force_mwm_value(g, w), 1e-9);
    // Never match a non-positive edge.
    for (vid_t a = 0; a < g.num_a(); ++a) {
      if (m.mate_a[a] == kInvalidVid) continue;
      EXPECT_GT(w[g.find_edge(a, m.mate_a[a])], 0.0);
    }
  }
}

TEST(ExactMwm, PerfectMatchingOnDiagonalGraph) {
  std::vector<LEdge> edges;
  const vid_t n = 50;
  for (vid_t i = 0; i < n; ++i) edges.push_back(LEdge{i, i, 1.0});
  const BipartiteGraph g = BipartiteGraph::from_edges(n, n, edges);
  const auto m = max_weight_matching_exact(g, own_weights(g));
  EXPECT_EQ(m.cardinality, n);
  EXPECT_DOUBLE_EQ(m.weight, static_cast<double>(n));
}

TEST(ExactMwm, WorkspaceReuseGivesSameAnswers) {
  Xoshiro256 rng(404);
  MwmWorkspace ws;
  for (int trial = 0; trial < 30; ++trial) {
    const auto g = random_bipartite(6, 5, 14, rng);
    const auto w = own_weights(g);
    const auto fresh = max_weight_matching_exact(g, w);
    const auto reused = max_weight_matching_exact(g, w, ws);
    EXPECT_NEAR(fresh.weight, reused.weight, 1e-9);
    EXPECT_EQ(fresh.cardinality, reused.cardinality);
  }
}

TEST(ExactMwm, WeightVectorSizeMismatchThrows) {
  const BipartiteGraph g = BipartiteGraph::from_edges(2, 2, {});
  std::vector<weight_t> wrong(3, 1.0);
  EXPECT_THROW(max_weight_matching_exact(g, wrong), std::invalid_argument);
}

TEST(ExactMwm, LargerRandomInstanceIsConsistent) {
  Xoshiro256 rng(505);
  const auto g = random_bipartite(300, 280, 3000, rng);
  const auto w = own_weights(g);
  const auto m = max_weight_matching_exact(g, w);
  ASSERT_TRUE(is_valid_matching(g, m));
  EXPECT_NEAR(m.weight, matching_weight(g, w, m), 1e-9);
  // The exact optimum is at least any greedy run; sanity lower bound:
  EXPECT_GT(m.weight, 0.0);
  // Exact MWM under positive weights is maximal (otherwise adding the free
  // edge would improve it).
  EXPECT_TRUE(is_maximal_matching(g, w, m));
}

}  // namespace
}  // namespace netalign
