#include "matching/suitor.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <stdexcept>

#include "helpers.hpp"
#include "matching/exact_mwm.hpp"
#include "matching/greedy.hpp"
#include "matching/verify.hpp"
#include "util/parallel.hpp"

namespace netalign {
namespace {

using testing::own_weights;
using testing::random_bipartite;

TEST(Suitor, EmptyGraph) {
  const BipartiteGraph g = BipartiteGraph::from_edges(3, 3, {});
  const auto m = suitor_matching(g, own_weights(g));
  EXPECT_EQ(m.cardinality, 0);
  EXPECT_TRUE(is_valid_matching(g, m));
}

TEST(Suitor, SingleEdge) {
  const std::vector<LEdge> edges = {{0, 0, 1.0}};
  const BipartiteGraph g = BipartiteGraph::from_edges(1, 1, edges);
  const auto m = suitor_matching(g, own_weights(g));
  EXPECT_EQ(m.cardinality, 1);
  EXPECT_DOUBLE_EQ(m.weight, 1.0);
}

TEST(Suitor, DisplacementChainsResolve) {
  // a0 proposes to b0; a1 (heavier) displaces it; a0 re-proposes to b1.
  const std::vector<LEdge> edges = {{0, 0, 2.0}, {1, 0, 3.0}, {0, 1, 1.0}};
  const BipartiteGraph g = BipartiteGraph::from_edges(2, 2, edges);
  const auto m = suitor_matching(g, own_weights(g));
  EXPECT_EQ(m.cardinality, 2);
  EXPECT_EQ(m.mate_a[1], 0);
  EXPECT_EQ(m.mate_a[0], 1);
  EXPECT_DOUBLE_EQ(m.weight, 4.0);
}

TEST(Suitor, HalfApproximationHolds) {
  Xoshiro256 rng(321);
  for (int trial = 0; trial < 100; ++trial) {
    const auto g = random_bipartite(8, 8, 24, rng);
    const auto w = own_weights(g);
    const auto m = suitor_matching(g, w);
    const auto exact = max_weight_matching_exact(g, w);
    ASSERT_TRUE(is_valid_matching(g, m)) << "trial " << trial;
    EXPECT_TRUE(is_maximal_matching(g, w, m)) << "trial " << trial;
    EXPECT_LE(m.weight, exact.weight + 1e-9);
    EXPECT_GE(m.weight, 0.5 * exact.weight - 1e-9) << "trial " << trial;
  }
}

TEST(Suitor, AgreesWithGreedyUnderDistinctWeights) {
  Xoshiro256 rng(654);
  for (int trial = 0; trial < 50; ++trial) {
    const auto g = random_bipartite(10, 10, 30, rng);
    const auto w = own_weights(g);
    const auto su = suitor_matching(g, w);
    const auto gr = greedy_matching(g, w);
    EXPECT_NEAR(su.weight, gr.weight, 1e-9) << "trial " << trial;
    EXPECT_EQ(su.cardinality, gr.cardinality) << "trial " << trial;
  }
}

TEST(Suitor, IgnoresNonPositiveEdges) {
  const std::vector<LEdge> edges = {{0, 0, -5.0}, {1, 1, 0.0}};
  const BipartiteGraph g = BipartiteGraph::from_edges(2, 2, edges);
  const auto m = suitor_matching(g, own_weights(g));
  EXPECT_EQ(m.cardinality, 0);
}

TEST(Suitor, StatsCountProposals) {
  Xoshiro256 rng(987);
  const auto g = random_bipartite(50, 50, 400, rng);
  const auto w = own_weights(g);
  SuitorStats stats;
  const auto m = suitor_matching(g, w, &stats);
  EXPECT_TRUE(is_valid_matching(g, m));
  EXPECT_GT(stats.proposals, 0);
  EXPECT_GE(stats.proposals, stats.displaced);
}

TEST(Suitor, WeightSizeMismatchThrows) {
  const BipartiteGraph g = BipartiteGraph::from_edges(2, 2, {});
  std::vector<weight_t> wrong(9, 1.0);
  EXPECT_THROW(suitor_matching(g, wrong), std::invalid_argument);
}

TEST(Suitor, AllEqualWeightsLexicographicWinner) {
  // beats() at equal weight prefers the smaller proposer id (suitor.hpp,
  // "Memory model"): with a1 and a0 both offering weight 1.0 to b0 -- a1's
  // edge listed first -- a0 must end up holding b0 regardless of proposal
  // order, and a1 stays unmatched.
  const std::vector<LEdge> edges = {{1, 0, 1.0}, {0, 0, 1.0}};
  const BipartiteGraph g = BipartiteGraph::from_edges(2, 1, edges);
  const auto m = suitor_matching(g, own_weights(g));
  EXPECT_EQ(m.cardinality, 1);
  EXPECT_EQ(m.mate_a[0], 0);
  EXPECT_EQ(m.mate_a[1], kInvalidVid);
  EXPECT_EQ(m.mate_b[0], 0);
}

TEST(Suitor, HeavyTiesDeterministicAcrossThreadCounts) {
  // All-equal weights make every beats() comparison a tie-break: the
  // adversarial regime for the proposal word, since any torn or stale read
  // that flipped a tie would show up as a different matching. The result
  // must be a valid maximal matching and bit-identical across 1, 2 and
  // max threads (the determinism guarantee documented in suitor.hpp).
  Xoshiro256 rng(1357);
  for (int trial = 0; trial < 20; ++trial) {
    const auto g = random_bipartite(40, 40, 300, rng);
    const std::vector<weight_t> w(
        static_cast<std::size_t>(g.num_edges()), 1.0);
    BipartiteMatching ref;
    for (const int threads : {1, 2, std::max(4, max_threads())}) {
      ThreadCountGuard guard(threads);
      const auto m = suitor_matching(g, w);
      ASSERT_TRUE(is_valid_matching(g, m)) << "trial " << trial;
      EXPECT_TRUE(is_maximal_matching(g, w, m)) << "trial " << trial;
      if (threads == 1) {
        ref = m;
      } else {
        EXPECT_EQ(m.mate_a, ref.mate_a)
            << "trial " << trial << " threads " << threads;
        EXPECT_EQ(m.mate_b, ref.mate_b)
            << "trial " << trial << " threads " << threads;
      }
    }
  }
}

TEST(Suitor, FewDistinctWeightsDeterministicAcrossThreadCounts) {
  // Two weight levels: displacement chains (heavier displaces lighter)
  // interleave with tie-breaks at each level.
  Xoshiro256 rng(8642);
  for (int trial = 0; trial < 20; ++trial) {
    const auto g = random_bipartite(40, 40, 300, rng);
    std::vector<weight_t> w(static_cast<std::size_t>(g.num_edges()));
    for (auto& v : w) v = rng.uniform_int(2) == 0 ? 1.0 : 2.0;
    BipartiteMatching ref;
    for (const int threads : {1, 2, std::max(4, max_threads())}) {
      ThreadCountGuard guard(threads);
      const auto m = suitor_matching(g, w);
      ASSERT_TRUE(is_valid_matching(g, m)) << "trial " << trial;
      if (threads == 1) {
        ref = m;
      } else {
        EXPECT_EQ(m.mate_a, ref.mate_a)
            << "trial " << trial << " threads " << threads;
      }
    }
  }
}

TEST(Suitor, MultiThreadRunsRemainValid) {
  Xoshiro256 rng(246);
  const auto g = random_bipartite(150, 150, 1200, rng);
  const auto w = own_weights(g);
  const auto exact = max_weight_matching_exact(g, w);
  for (int threads : {1, 2, 4}) {
    ThreadCountGuard guard(threads);
    const auto m = suitor_matching(g, w);
    ASSERT_TRUE(is_valid_matching(g, m));
    EXPECT_TRUE(is_maximal_matching(g, w, m));
    EXPECT_GE(m.weight, 0.5 * exact.weight - 1e-9);
  }
}

}  // namespace
}  // namespace netalign
