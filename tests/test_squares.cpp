#include "netalign/squares.hpp"

#include <gtest/gtest.h>

#include "netalign/synthetic.hpp"
#include "util/prng.hpp"

namespace netalign {
namespace {

/// Hand-built problem: A and B are single edges, L is the 2x2 identity
/// pairing; the unique square is {(0,0'),(1,1')}.
NetAlignProblem tiny_square_problem() {
  NetAlignProblem p;
  const std::vector<std::pair<vid_t, vid_t>> ea = {{0, 1}};
  const std::vector<std::pair<vid_t, vid_t>> eb = {{0, 1}};
  p.A = Graph::from_edges(2, ea);
  p.B = Graph::from_edges(2, eb);
  const std::vector<LEdge> el = {{0, 0, 1.0}, {1, 1, 1.0}, {0, 1, 1.0}};
  p.L = BipartiteGraph::from_edges(2, 2, el);
  return p;
}

TEST(Squares, FindsTheOneSquare) {
  const auto p = tiny_square_problem();
  const auto S = SquaresMatrix::build(p);
  // Exactly one square: edges (0,0) and (1,1) of L, ids 0 and 2
  // (row-major: (0,0)=0, (0,1)=1, (1,1)=2).
  EXPECT_EQ(S.num_squares(), 1);
  EXPECT_EQ(S.num_nonzeros(), 2);
  const eid_t e00 = p.L.find_edge(0, 0);
  const eid_t e11 = p.L.find_edge(1, 1);
  EXPECT_NE(S.pattern().find(static_cast<vid_t>(e00),
                             static_cast<vid_t>(e11)),
            kInvalidEid);
  EXPECT_NE(S.pattern().find(static_cast<vid_t>(e11),
                             static_cast<vid_t>(e00)),
            kInvalidEid);
}

TEST(Squares, NoSquaresWithoutOverlapStructure) {
  NetAlignProblem p;
  p.A = Graph::from_edges(2, std::vector<std::pair<vid_t, vid_t>>{{0, 1}});
  p.B = Graph::from_edges(2, {});  // B has no edges => no squares
  const std::vector<LEdge> el = {{0, 0, 1.0}, {1, 1, 1.0}};
  p.L = BipartiteGraph::from_edges(2, 2, el);
  const auto S = SquaresMatrix::build(p);
  EXPECT_EQ(S.num_nonzeros(), 0);
}

TEST(Squares, DiagonalIsNeverPresent) {
  PowerLawInstanceOptions opt;
  opt.n = 80;
  opt.seed = 5;
  const auto inst = make_power_law_instance(opt);
  const auto S = SquaresMatrix::build(inst.problem);
  for (vid_t e = 0; e < S.num_rows(); ++e) {
    EXPECT_EQ(S.pattern().find(e, e), kInvalidEid);
  }
}

TEST(Squares, PatternIsStructurallySymmetric) {
  PowerLawInstanceOptions opt;
  opt.n = 60;
  opt.seed = 6;
  const auto inst = make_power_law_instance(opt);
  const auto S = SquaresMatrix::build(inst.problem);
  EXPECT_TRUE(S.pattern().is_structurally_symmetric());
  EXPECT_EQ(S.num_nonzeros() % 2, 0);
}

TEST(Squares, TransPermIsAnInvolutionMatchingPattern) {
  PowerLawInstanceOptions opt;
  opt.n = 50;
  opt.seed = 7;
  const auto inst = make_power_law_instance(opt);
  const auto S = SquaresMatrix::build(inst.problem);
  const auto perm = S.trans_perm();
  ASSERT_EQ(static_cast<eid_t>(perm.size()), S.num_nonzeros());
  const auto& pat = S.pattern();
  for (vid_t r = 0; r < pat.num_rows(); ++r) {
    for (eid_t k = pat.row_begin(r); k < pat.row_end(r); ++k) {
      // perm[k] is the slot of the transposed entry; applying twice
      // returns to k.
      EXPECT_EQ(perm[perm[k]], k);
      EXPECT_EQ(pat.col_idx()[perm[k]], r);
    }
  }
}

TEST(Squares, EverySquareIsAGenuineOverlap) {
  PowerLawInstanceOptions opt;
  opt.n = 60;
  opt.seed = 8;
  opt.expected_degree = 3.0;
  const auto inst = make_power_law_instance(opt);
  const auto& p = inst.problem;
  const auto S = SquaresMatrix::build(p);
  const auto& pat = S.pattern();
  for (vid_t e = 0; e < pat.num_rows(); ++e) {
    for (eid_t k = pat.row_begin(e); k < pat.row_end(e); ++k) {
      const vid_t f = pat.col_idx()[k];
      const eid_t ee = static_cast<eid_t>(e), ff = static_cast<eid_t>(f);
      EXPECT_TRUE(p.A.has_edge(p.L.edge_a(ee), p.L.edge_a(ff)));
      EXPECT_TRUE(p.B.has_edge(p.L.edge_b(ee), p.L.edge_b(ff)));
    }
  }
}

TEST(Squares, BruteForceCountMatches) {
  // Count squares directly by enumerating L-edge pairs.
  PowerLawInstanceOptions opt;
  opt.n = 40;
  opt.seed = 9;
  const auto inst = make_power_law_instance(opt);
  const auto& p = inst.problem;
  const auto S = SquaresMatrix::build(p);
  eid_t expected = 0;
  for (eid_t e = 0; e < p.L.num_edges(); ++e) {
    for (eid_t f = e + 1; f < p.L.num_edges(); ++f) {
      if (p.A.has_edge(p.L.edge_a(e), p.L.edge_a(f)) &&
          p.B.has_edge(p.L.edge_b(e), p.L.edge_b(f))) {
        ++expected;
      }
    }
  }
  EXPECT_EQ(S.num_squares(), expected);
}

TEST(Squares, InconsistentProblemThrows) {
  NetAlignProblem p;
  p.A = Graph::from_edges(3, {});
  p.B = Graph::from_edges(3, {});
  p.L = BipartiteGraph::from_edges(2, 3, {});  // wrong A side
  EXPECT_THROW(SquaresMatrix::build(p), std::invalid_argument);
}

}  // namespace
}  // namespace netalign
