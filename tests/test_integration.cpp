// End-to-end tests across the full pipeline: generate an instance, build
// S, run both alignment methods with both matchers, compare to references.
#include <gtest/gtest.h>

#include <sstream>

#include "io/problem_io.hpp"
#include "matching/verify.hpp"
#include "netalign/belief_prop.hpp"
#include "netalign/klau_mr.hpp"
#include "netalign/synthetic.hpp"
#include "util/parallel.hpp"

namespace netalign {
namespace {

TEST(Integration, BothMethodsBeatTheNaiveRounding) {
  // The baseline from Section III: match L's raw weights directly. Both
  // iterative methods must reach at least that objective (they see it at
  // iteration 1 modulo the overlap bonus) on an overlap-rich instance.
  PowerLawInstanceOptions opt;
  opt.n = 80;
  opt.seed = 21;
  opt.expected_degree = 4.0;
  const auto inst = make_power_law_instance(opt);
  const auto S = SquaresMatrix::build(inst.problem);

  const auto w = std::vector<weight_t>(inst.problem.L.weights().begin(),
                                       inst.problem.L.weights().end());
  const auto naive = round_heuristic(inst.problem, S, w, MatcherKind::kExact);

  KlauMrOptions mr;
  mr.max_iterations = 60;
  const auto r_mr = klau_mr_align(inst.problem, S, mr);
  BeliefPropOptions bp;
  bp.max_iterations = 60;
  const auto r_bp = belief_prop_align(inst.problem, S, bp);

  EXPECT_GE(r_mr.value.objective, naive.value.objective - 1e-9);
  EXPECT_GE(r_bp.value.objective, naive.value.objective - 1e-9);
}

TEST(Integration, MethodsRecoverPlantedAlignmentAtLowNoise) {
  PowerLawInstanceOptions opt;
  opt.n = 60;
  opt.seed = 22;
  opt.expected_degree = 2.0;
  const auto inst = make_power_law_instance(opt);
  const auto S = SquaresMatrix::build(inst.problem);

  KlauMrOptions mr;
  mr.max_iterations = 100;
  mr.matcher = MatcherKind::kExact;
  BeliefPropOptions bp;
  bp.max_iterations = 100;
  bp.matcher = MatcherKind::kExact;

  const auto r_mr = klau_mr_align(inst.problem, S, mr);
  const auto r_bp = belief_prop_align(inst.problem, S, bp);
  EXPECT_GE(fraction_correct(r_mr.matching, inst.reference), 0.85);
  EXPECT_GE(fraction_correct(r_bp.matching, inst.reference), 0.85);
}

TEST(Integration, RoundTrippedProblemGivesIdenticalResults) {
  PowerLawInstanceOptions opt;
  opt.n = 50;
  opt.seed = 23;
  const auto inst = make_power_law_instance(opt);
  std::stringstream ss;
  write_problem(ss, inst.problem);
  const auto reloaded = read_problem(ss);

  const auto s1 = SquaresMatrix::build(inst.problem);
  const auto s2 = SquaresMatrix::build(reloaded);
  EXPECT_EQ(s1.num_nonzeros(), s2.num_nonzeros());

  BeliefPropOptions bp;
  bp.max_iterations = 20;
  bp.matcher = MatcherKind::kGreedy;
  const auto r1 = belief_prop_align(inst.problem, s1, bp);
  const auto r2 = belief_prop_align(reloaded, s2, bp);
  EXPECT_EQ(r1.value.objective, r2.value.objective);
}

TEST(Integration, StandInPipelineRunsEndToEnd) {
  // A miniature ontology-style stand-in through the full BP pipeline.
  auto spec = paper_table2_specs()[0];
  spec.seed = 99;
  const auto p = make_standin_problem(spec, 0.05);
  const auto S = SquaresMatrix::build(p);
  BeliefPropOptions bp;
  bp.max_iterations = 15;
  bp.batch_size = 4;
  const auto r = belief_prop_align(p, S, bp);
  EXPECT_TRUE(is_valid_matching(p.L, r.matching));
  EXPECT_GT(r.value.objective, 0.0);
}

TEST(Integration, ThreadCountDoesNotChangeKlauExact) {
  // Klau's method with exact matching everywhere is deterministic
  // regardless of thread count: every parallel reduction is over disjoint
  // writes and the matchings are exact.
  PowerLawInstanceOptions opt;
  opt.n = 40;
  opt.seed = 24;
  const auto inst = make_power_law_instance(opt);
  const auto S = SquaresMatrix::build(inst.problem);
  KlauMrOptions mr;
  mr.max_iterations = 20;
  mr.matcher = MatcherKind::kExact;

  weight_t reference = 0.0;
  for (int threads : {1, 2, 4}) {
    ThreadCountGuard guard(threads);
    const auto r = klau_mr_align(inst.problem, S, mr);
    if (threads == 1) {
      reference = r.value.objective;
    } else {
      EXPECT_EQ(r.value.objective, reference) << "threads=" << threads;
    }
  }
}

TEST(Integration, BpApproxVsExactQualityGapIsSmall) {
  // Miniature of the paper's Figure 3 conclusion on a harder instance.
  PowerLawInstanceOptions opt;
  opt.n = 100;
  opt.seed = 25;
  opt.expected_degree = 8.0;
  const auto inst = make_power_law_instance(opt);
  const auto S = SquaresMatrix::build(inst.problem);

  BeliefPropOptions exact, approx;
  exact.max_iterations = approx.max_iterations = 80;
  exact.matcher = MatcherKind::kExact;
  approx.matcher = MatcherKind::kLocallyDominant;
  const auto re = belief_prop_align(inst.problem, S, exact);
  const auto ra = belief_prop_align(inst.problem, S, approx);
  EXPECT_GE(ra.value.objective, 0.75 * re.value.objective);
}

}  // namespace
}  // namespace netalign
