#include "matching/small_mwm.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "helpers.hpp"
#include "matching/verify.hpp"

namespace netalign {
namespace {

using Edge = SmallMwmSolver::Edge;

TEST(SmallMwm, EmptyInput) {
  SmallMwmSolver solver;
  std::vector<std::uint8_t> chosen;
  EXPECT_EQ(solver.solve({}, chosen), 0.0);
}

TEST(SmallMwm, SingleEdge) {
  SmallMwmSolver solver;
  const std::vector<Edge> edges = {{10, 20, 1.5}};
  std::vector<std::uint8_t> chosen(1);
  EXPECT_DOUBLE_EQ(solver.solve(edges, chosen), 1.5);
  EXPECT_EQ(chosen[0], 1);
}

TEST(SmallMwm, ConflictPicksHeavier) {
  SmallMwmSolver solver;
  // Two edges sharing the A endpoint 5.
  const std::vector<Edge> edges = {{5, 1, 1.0}, {5, 2, 3.0}};
  std::vector<std::uint8_t> chosen(2);
  EXPECT_DOUBLE_EQ(solver.solve(edges, chosen), 3.0);
  EXPECT_EQ(chosen[0], 0);
  EXPECT_EQ(chosen[1], 1);
}

TEST(SmallMwm, AugmentingPathBeatsGreedy) {
  SmallMwmSolver solver;
  const std::vector<Edge> edges = {{0, 0, 1.0}, {0, 1, 0.9}, {1, 0, 0.9}};
  std::vector<std::uint8_t> chosen(3);
  EXPECT_NEAR(solver.solve(edges, chosen), 1.8, 1e-12);
  EXPECT_EQ(chosen[0], 0);
  EXPECT_EQ(chosen[1], 1);
  EXPECT_EQ(chosen[2], 1);
}

TEST(SmallMwm, IgnoresNonPositiveWeights) {
  SmallMwmSolver solver;
  const std::vector<Edge> edges = {{0, 0, -2.0}, {1, 1, 0.0}};
  std::vector<std::uint8_t> chosen(2);
  EXPECT_DOUBLE_EQ(solver.solve(edges, chosen), 0.0);
  EXPECT_EQ(chosen[0], 0);
  EXPECT_EQ(chosen[1], 0);
}

TEST(SmallMwm, ArbitraryGlobalIdsAreCompressed) {
  SmallMwmSolver solver;
  // Endpoint ids far outside any dense range.
  const std::vector<Edge> edges = {
      {100000, 999999, 1.0}, {100000, 888888, 2.0}, {200000, 999999, 2.0}};
  std::vector<std::uint8_t> chosen(3);
  EXPECT_DOUBLE_EQ(solver.solve(edges, chosen), 4.0);
}

TEST(SmallMwm, MatchesFullSolverOnRandomSubproblems) {
  Xoshiro256 rng(606);
  SmallMwmSolver solver;
  for (int trial = 0; trial < 300; ++trial) {
    const auto g = testing::random_bipartite(5, 5, 9, rng);
    const auto w = testing::own_weights(g);
    std::vector<Edge> edges;
    for (eid_t e = 0; e < g.num_edges(); ++e) {
      edges.push_back(Edge{g.edge_a(e), g.edge_b(e), w[e]});
    }
    std::vector<std::uint8_t> chosen(edges.size());
    const weight_t value = solver.solve(edges, chosen);
    EXPECT_NEAR(value, brute_force_mwm_value(g, w), 1e-9) << "trial " << trial;

    // The chosen set must itself be a matching with the reported weight.
    weight_t sum = 0.0;
    std::vector<int> deg_a(5, 0), deg_b(5, 0);
    for (std::size_t k = 0; k < edges.size(); ++k) {
      if (!chosen[k]) continue;
      sum += edges[k].w;
      deg_a[edges[k].a]++;
      deg_b[edges[k].b]++;
    }
    EXPECT_NEAR(sum, value, 1e-9);
    for (int d : deg_a) EXPECT_LE(d, 1);
    for (int d : deg_b) EXPECT_LE(d, 1);
  }
}

TEST(SmallMwm, SolverReuseAcrossDifferentSizes) {
  SmallMwmSolver solver;
  std::vector<std::uint8_t> chosen(8);
  const std::vector<Edge> big = {{0, 0, 1.0}, {1, 1, 1.0}, {2, 2, 1.0},
                                 {3, 3, 1.0}, {0, 1, 0.5}, {1, 2, 0.5},
                                 {2, 3, 0.5}, {3, 0, 0.5}};
  EXPECT_DOUBLE_EQ(solver.solve(big, chosen), 4.0);
  const std::vector<Edge> small = {{7, 7, 2.0}};
  EXPECT_DOUBLE_EQ(solver.solve(small, std::span(chosen.data(), 1)), 2.0);
  EXPECT_DOUBLE_EQ(solver.solve(big, chosen), 4.0);
}

TEST(SmallMwm, DuplicateEdgePairsKeepHeaviest) {
  SmallMwmSolver solver;
  // Duplicate (a, b) pairs happen when distinct squares share an edge
  // pair; the solver must count the pair once at the heaviest weight.
  const std::vector<Edge> edges = {{0, 0, 1.0}, {0, 0, 3.0}};
  std::vector<std::uint8_t> chosen(2);
  EXPECT_DOUBLE_EQ(solver.solve(edges, chosen), 3.0);
  EXPECT_EQ(chosen[0] + chosen[1], 1);
  EXPECT_EQ(chosen[1], 1);  // the heavier duplicate is the chosen one
}

}  // namespace
}  // namespace netalign
