#include "dist/dist_mr.hpp"

#include <gtest/gtest.h>

#include "matching/verify.hpp"
#include "netalign/klau_mr.hpp"
#include "netalign/synthetic.hpp"

namespace netalign {
namespace {

using dist::DistMrOptions;
using dist::DistMrStats;
using dist::distributed_klau_mr_align;

SyntheticInstance make_instance(std::uint64_t seed, vid_t n = 60,
                                double dbar = 3.0) {
  PowerLawInstanceOptions opt;
  opt.n = n;
  opt.seed = seed;
  opt.expected_degree = dbar;
  return make_power_law_instance(opt);
}

TEST(DistMr, ProducesValidMatching) {
  const auto inst = make_instance(1);
  const auto S = SquaresMatrix::build(inst.problem);
  DistMrOptions opt;
  opt.max_iterations = 20;
  const auto r = distributed_klau_mr_align(inst.problem, S, opt);
  EXPECT_TRUE(is_valid_matching(inst.problem.L, r.matching));
  EXPECT_GT(r.value.objective, 0.0);
}

TEST(DistMr, MatchesSharedMemoryMrExactly) {
  // Same data, same exact row matchings, and the distributed matcher is
  // the deterministic locally-dominant algorithm: the trajectories must
  // coincide with shared-memory MR configured with the same matcher.
  const auto inst = make_instance(2, 70, 5.0);
  const auto S = SquaresMatrix::build(inst.problem);

  KlauMrOptions shared;
  shared.max_iterations = 25;
  shared.matcher = MatcherKind::kLocallyDominant;
  shared.final_exact_round = false;
  const auto rs = klau_mr_align(inst.problem, S, shared);

  for (int ranks : {1, 4, 9}) {
    DistMrOptions opt;
    opt.num_ranks = ranks;
    opt.max_iterations = 25;
    opt.gamma = shared.gamma;
    opt.mstep = shared.mstep;
    opt.bound_scale = shared.bound_scale;
    opt.final_exact_round = false;
    const auto rd = distributed_klau_mr_align(inst.problem, S, opt);
    ASSERT_EQ(rd.objective_history.size(), rs.objective_history.size());
    for (std::size_t i = 0; i < rs.objective_history.size(); ++i) {
      EXPECT_NEAR(rd.objective_history[i], rs.objective_history[i], 1e-9)
          << "ranks=" << ranks << " iteration " << i;
      EXPECT_NEAR(rd.upper_history[i], rs.upper_history[i], 1e-9)
          << "ranks=" << ranks << " iteration " << i;
    }
    EXPECT_NEAR(rd.value.objective, rs.value.objective, 1e-9);
  }
}

TEST(DistMr, ResultIndependentOfRankCount) {
  const auto inst = make_instance(3);
  const auto S = SquaresMatrix::build(inst.problem);
  weight_t reference = 0.0;
  for (int ranks : {1, 2, 6}) {
    DistMrOptions opt;
    opt.num_ranks = ranks;
    opt.max_iterations = 15;
    const auto r = distributed_klau_mr_align(inst.problem, S, opt);
    if (ranks == 1) {
      reference = r.value.objective;
    } else {
      EXPECT_NEAR(r.value.objective, reference, 1e-9) << "ranks=" << ranks;
    }
  }
}

TEST(DistMr, StatsAccountForCommunication) {
  const auto inst = make_instance(4);
  const auto S = SquaresMatrix::build(inst.problem);
  DistMrOptions opt;
  opt.num_ranks = 4;
  opt.max_iterations = 8;
  DistMrStats stats;
  const auto r = distributed_klau_mr_align(inst.problem, S, opt, &stats);
  EXPECT_TRUE(is_valid_matching(inst.problem.L, r.matching));
  // Two transpose exchanges per iteration plus the matcher's supersteps.
  EXPECT_GE(stats.bsp.supersteps, 16u);
  EXPECT_GT(stats.bsp.messages, 0u);
  EXPECT_EQ(stats.gather_bytes,
            8u * static_cast<std::size_t>(inst.problem.L.num_edges()) *
                (sizeof(weight_t) + 1));
}

TEST(DistMr, RejectsBadOptions) {
  const auto inst = make_instance(5);
  const auto S = SquaresMatrix::build(inst.problem);
  DistMrOptions opt;
  opt.num_ranks = 0;
  EXPECT_THROW(distributed_klau_mr_align(inst.problem, S, opt),
               std::invalid_argument);
  opt.num_ranks = 2;
  opt.mstep = 0;
  EXPECT_THROW(distributed_klau_mr_align(inst.problem, S, opt),
               std::invalid_argument);
}

}  // namespace
}  // namespace netalign
