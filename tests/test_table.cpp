#include "util/table.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>

namespace netalign {
namespace {

TEST(TextTable, FormatsHeaderAndRows) {
  TextTable t({"name", "value"});
  t.add_row({"alpha", "1"});
  t.add_row({"beta", "22"});
  const std::string s = t.to_string();
  EXPECT_NE(s.find("name"), std::string::npos);
  EXPECT_NE(s.find("alpha"), std::string::npos);
  EXPECT_NE(s.find("22"), std::string::npos);
}

TEST(TextTable, RejectsWrongCellCount) {
  TextTable t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), std::invalid_argument);
}

TEST(TextTable, NumInsertsThousandsSeparators) {
  EXPECT_EQ(TextTable::num(0), "0");
  EXPECT_EQ(TextTable::num(999), "999");
  EXPECT_EQ(TextTable::num(1000), "1,000");
  EXPECT_EQ(TextTable::num(4971629), "4,971,629");
  EXPECT_EQ(TextTable::num(-12345), "-12,345");
}

TEST(TextTable, FixedRespectsPrecision) {
  EXPECT_EQ(TextTable::fixed(3.14159, 2), "3.14");
  EXPECT_EQ(TextTable::fixed(1.0, 0), "1");
}

TEST(TextTable, PctScalesFractions) {
  EXPECT_EQ(TextTable::pct(0.5, 1), "50.0%");
  EXPECT_EQ(TextTable::pct(0.123, 0), "12%");
}

TEST(TextTable, SciUsesExponentNotation) {
  const std::string s = TextTable::sci(12345.0, 2);
  EXPECT_NE(s.find('e'), std::string::npos);
}

TEST(TextTable, ColumnsAreAligned) {
  TextTable t({"k", "v"});
  t.add_row({"x", "1"});
  t.add_row({"longer", "2"});
  std::istringstream rows(t.to_string());
  std::string line;
  std::getline(rows, line);
  const auto width = line.size();
  while (std::getline(rows, line)) {
    EXPECT_EQ(line.size(), width);
  }
}

TEST(TextTable, CsvRendersHeaderAndRows) {
  TextTable t({"a", "b"});
  t.add_row({"x", "1,234"});
  const std::string csv = t.to_csv();
  EXPECT_EQ(csv, "a,b\nx,1234\n");  // thousands separators stripped
}

TEST(TextTable, CsvQuotesSpecialCells) {
  TextTable t({"name"});
  t.add_row({"has,comma"});
  t.add_row({"has\"quote"});
  const std::string csv = t.to_csv();
  EXPECT_NE(csv.find("\"has,comma\""), std::string::npos);
  EXPECT_NE(csv.find("\"has\"\"quote\""), std::string::npos);
}

TEST(TextTable, WriteCsvEmptyPathIsNoOp) {
  TextTable t({"a"});
  EXPECT_NO_THROW(t.write_csv(""));
}

TEST(TextTable, WriteCsvBadPathThrows) {
  TextTable t({"a"});
  EXPECT_THROW(t.write_csv("/nonexistent-dir/x.csv"), std::runtime_error);
}

TEST(TextTable, PrintWritesToStream) {
  TextTable t({"a"});
  t.add_row({"b"});
  std::ostringstream os;
  t.print(os);
  EXPECT_EQ(os.str(), t.to_string());
}

}  // namespace
}  // namespace netalign
