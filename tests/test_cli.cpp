#include "util/cli.hpp"

#include <gtest/gtest.h>

#include <array>
#include <stdexcept>

namespace netalign {
namespace {

TEST(CliParser, DefaultsSurviveEmptyArgv) {
  CliParser cli("test");
  auto& n = cli.add_int("n", 42, "count");
  auto& x = cli.add_double("x", 1.5, "factor");
  auto& flag = cli.add_bool("flag", false, "toggle");
  auto& s = cli.add_string("s", "hello", "text");
  const char* argv[] = {"prog"};
  ASSERT_TRUE(cli.parse(1, argv));
  EXPECT_EQ(n, 42);
  EXPECT_EQ(x, 1.5);
  EXPECT_FALSE(flag);
  EXPECT_EQ(s, "hello");
}

TEST(CliParser, ParsesSpaceSeparatedValues) {
  CliParser cli;
  auto& n = cli.add_int("n", 0, "count");
  const char* argv[] = {"prog", "--n", "17"};
  ASSERT_TRUE(cli.parse(3, argv));
  EXPECT_EQ(n, 17);
}

TEST(CliParser, ParsesEqualsSyntax) {
  CliParser cli;
  auto& x = cli.add_double("x", 0.0, "factor");
  const char* argv[] = {"prog", "--x=2.25"};
  ASSERT_TRUE(cli.parse(2, argv));
  EXPECT_EQ(x, 2.25);
}

TEST(CliParser, BoolFlagWithoutValue) {
  CliParser cli;
  auto& f = cli.add_bool("verbose", false, "chatty");
  const char* argv[] = {"prog", "--verbose"};
  ASSERT_TRUE(cli.parse(2, argv));
  EXPECT_TRUE(f);
}

TEST(CliParser, NoPrefixDisablesBool) {
  CliParser cli;
  auto& f = cli.add_bool("verbose", true, "chatty");
  const char* argv[] = {"prog", "--no-verbose"};
  ASSERT_TRUE(cli.parse(2, argv));
  EXPECT_FALSE(f);
}

TEST(CliParser, BoolAcceptsExplicitValue) {
  CliParser cli;
  auto& f = cli.add_bool("verbose", false, "chatty");
  const char* argv[] = {"prog", "--verbose=true"};
  ASSERT_TRUE(cli.parse(2, argv));
  EXPECT_TRUE(f);
}

TEST(CliParser, UnknownFlagThrows) {
  CliParser cli;
  const char* argv[] = {"prog", "--bogus", "1"};
  EXPECT_THROW(cli.parse(3, argv), std::runtime_error);
}

TEST(CliParser, MalformedIntThrows) {
  CliParser cli;
  cli.add_int("n", 0, "count");
  const char* argv[] = {"prog", "--n", "xyz"};
  EXPECT_THROW(cli.parse(3, argv), std::runtime_error);
}

TEST(CliParser, MissingValueThrows) {
  CliParser cli;
  cli.add_int("n", 0, "count");
  const char* argv[] = {"prog", "--n"};
  EXPECT_THROW(cli.parse(2, argv), std::runtime_error);
}

TEST(CliParser, PositionalArgumentsCollected) {
  CliParser cli;
  cli.add_int("n", 0, "count");
  const char* argv[] = {"prog", "input.txt", "--n", "3", "output.txt"};
  ASSERT_TRUE(cli.parse(5, argv));
  ASSERT_EQ(cli.positional().size(), 2u);
  EXPECT_EQ(cli.positional()[0], "input.txt");
  EXPECT_EQ(cli.positional()[1], "output.txt");
}

TEST(CliParser, HelpReturnsFalse) {
  CliParser cli("my tool");
  cli.add_int("n", 1, "count");
  const char* argv[] = {"prog", "--help"};
  EXPECT_FALSE(cli.parse(2, argv));
}

TEST(CliParser, HelpTextMentionsFlagsAndDefaults) {
  CliParser cli("my tool");
  cli.add_int("iters", 400, "iteration count");
  const std::string h = cli.help_text();
  EXPECT_NE(h.find("--iters"), std::string::npos);
  EXPECT_NE(h.find("400"), std::string::npos);
  EXPECT_NE(h.find("iteration count"), std::string::npos);
}

}  // namespace
}  // namespace netalign
