// Randomized whole-pipeline property battery: for every (instance family,
// method, seed) combination, the invariants of DESIGN.md Section 6 must
// hold end to end -- valid matchings, consistent objective decomposition,
// best-of-history bookkeeping, and the MR upper bound when exact matching
// is in play.
#include <gtest/gtest.h>

#include <algorithm>
#include <tuple>

#include "matching/verify.hpp"
#include "netalign/belief_prop.hpp"
#include "netalign/isorank.hpp"
#include "netalign/klau_mr.hpp"
#include "netalign/synthetic.hpp"

namespace netalign {
namespace {

enum class Family { kPowerLaw, kOntology };
enum class Method { kMr, kBp, kIsoRank };

const char* to_cstr(Family f) {
  return f == Family::kPowerLaw ? "powerlaw" : "ontology";
}
const char* to_cstr(Method m) {
  switch (m) {
    case Method::kMr:
      return "MR";
    case Method::kBp:
      return "BP";
    case Method::kIsoRank:
      return "IsoRank";
  }
  return "?";
}

SyntheticInstance make(Family family, std::uint64_t seed) {
  if (family == Family::kOntology) {
    OntologyInstanceOptions opt;
    opt.n = 70;
    opt.seed = seed;
    opt.expected_degree = 4.0;
    return make_ontology_instance(opt);
  }
  PowerLawInstanceOptions opt;
  opt.n = 70;
  opt.seed = seed;
  opt.expected_degree = 4.0;
  return make_power_law_instance(opt);
}

class PipelineProperty
    : public ::testing::TestWithParam<
          std::tuple<Family, Method, std::uint64_t>> {};

TEST_P(PipelineProperty, InvariantsHold) {
  const auto [family, method, seed] = GetParam();
  const auto inst = make(family, seed);
  const auto& p = inst.problem;
  const auto S = SquaresMatrix::build(p);

  AlignResult r;
  switch (method) {
    case Method::kMr: {
      KlauMrOptions opt;
      opt.max_iterations = 30;
      opt.matcher = MatcherKind::kExact;
      r = klau_mr_align(p, S, opt);
      break;
    }
    case Method::kBp: {
      BeliefPropOptions opt;
      opt.max_iterations = 30;
      opt.matcher = MatcherKind::kLocallyDominant;
      r = belief_prop_align(p, S, opt);
      break;
    }
    case Method::kIsoRank: {
      IsoRankOptions opt;
      opt.max_iterations = 60;
      r = isorank_align(p, S, opt);
      break;
    }
  }

  // Structural validity and objective decomposition.
  ASSERT_TRUE(is_valid_matching(p.L, r.matching));
  const auto recheck = evaluate_objective(p, S, r.matching);
  EXPECT_NEAR(recheck.objective, r.value.objective, 1e-9);
  EXPECT_NEAR(r.value.objective,
              p.alpha * r.value.weight + p.beta * r.value.overlap, 1e-9);
  EXPECT_NEAR(r.value.overlap, brute_force_overlap(p, r.matching), 1e-9);

  // Best-of-history bookkeeping (IsoRank records residuals, not scores).
  if (method != Method::kIsoRank && !r.objective_history.empty()) {
    const double best_seen = *std::max_element(
        r.objective_history.begin(), r.objective_history.end());
    EXPECT_GE(r.value.objective + 1e-9, best_seen);
  }

  // The MR upper bound with exact matching caps every objective.
  if (method == Method::kMr) {
    for (std::size_t i = 0; i < r.upper_history.size(); ++i) {
      EXPECT_GE(r.upper_history[i] + 1e-9, r.objective_history[i])
          << "iteration " << i;
    }
  }

  // Positive progress on every instance family.
  EXPECT_GT(r.value.objective, 0.0);
  EXPECT_GT(r.matching.cardinality, 0);
}

INSTANTIATE_TEST_SUITE_P(
    Battery, PipelineProperty,
    ::testing::Combine(
        ::testing::Values(Family::kPowerLaw, Family::kOntology),
        ::testing::Values(Method::kMr, Method::kBp, Method::kIsoRank),
        ::testing::Values(101ULL, 202ULL, 303ULL, 404ULL, 505ULL)),
    [](const ::testing::TestParamInfo<PipelineProperty::ParamType>& pinfo) {
      return std::string(to_cstr(std::get<0>(pinfo.param))) + "_" +
             to_cstr(std::get<1>(pinfo.param)) + "_s" +
             std::to_string(std::get<2>(pinfo.param));
    });

}  // namespace
}  // namespace netalign
