#include "netalign/prune.hpp"

#include <gtest/gtest.h>

#include "helpers.hpp"

namespace netalign {
namespace {

using testing::random_bipartite;

BipartiteGraph star_with_weights() {
  // a0 connected to b0..b3 with weights 4, 3, 2, 1.
  const std::vector<LEdge> edges = {
      {0, 0, 4.0}, {0, 1, 3.0}, {0, 2, 2.0}, {0, 3, 1.0}};
  return BipartiteGraph::from_edges(1, 4, edges);
}

TEST(PruneTopK, KeepsHeaviestPerRow) {
  const auto L = star_with_weights();
  const auto pruned = prune_top_k(L, 2, PruneMode::kIntersection);
  // Each b has only one edge (top-1 of its column), so intersection keeps
  // the edges that are top-2 of a0's row: weights 4 and 3.
  ASSERT_EQ(pruned.num_edges(), 2);
  EXPECT_NE(pruned.find_edge(0, 0), kInvalidEid);
  EXPECT_NE(pruned.find_edge(0, 1), kInvalidEid);
}

TEST(PruneTopK, UnionKeepsColumnChampions) {
  const auto L = star_with_weights();
  // Union mode: every edge is the top-1 of its B column, so all survive
  // even with k = 1.
  const auto pruned = prune_top_k(L, 1, PruneMode::kUnion);
  EXPECT_EQ(pruned.num_edges(), 4);
}

TEST(PruneTopK, PreservesWeights) {
  Xoshiro256 rng(2);
  const auto L = random_bipartite(20, 20, 150, rng);
  const auto pruned = prune_top_k(L, 3);
  for (eid_t e = 0; e < pruned.num_edges(); ++e) {
    const eid_t orig = L.find_edge(pruned.edge_a(e), pruned.edge_b(e));
    ASSERT_NE(orig, kInvalidEid);
    EXPECT_EQ(pruned.edge_weight(e), L.edge_weight(orig));
  }
}

TEST(PruneTopK, EveryVertexKeepsAtMostKInIntersectionMode) {
  Xoshiro256 rng(3);
  const auto L = random_bipartite(15, 15, 120, rng);
  const vid_t k = 2;
  const auto pruned = prune_top_k(L, k, PruneMode::kIntersection);
  for (vid_t a = 0; a < pruned.num_a(); ++a) EXPECT_LE(pruned.degree_a(a), k);
  for (vid_t b = 0; b < pruned.num_b(); ++b) EXPECT_LE(pruned.degree_b(b), k);
}

TEST(PruneTopK, UnionNeverStrandsAVertexWithCandidates) {
  Xoshiro256 rng(4);
  const auto L = random_bipartite(15, 15, 120, rng);
  const auto pruned = prune_top_k(L, 1, PruneMode::kUnion);
  for (vid_t a = 0; a < L.num_a(); ++a) {
    if (L.degree_a(a) > 0) {
      EXPECT_GE(pruned.degree_a(a), 1);
    }
  }
  for (vid_t b = 0; b < L.num_b(); ++b) {
    if (L.degree_b(b) > 0) {
      EXPECT_GE(pruned.degree_b(b), 1);
    }
  }
}

TEST(PruneTopK, LargeKIsIdentity) {
  Xoshiro256 rng(5);
  const auto L = random_bipartite(10, 10, 60, rng);
  const auto pruned = prune_top_k(L, 100, PruneMode::kIntersection);
  EXPECT_EQ(pruned.num_edges(), L.num_edges());
}

TEST(PruneTopK, RejectsZeroK) {
  const auto L = star_with_weights();
  EXPECT_THROW(prune_top_k(L, 0), std::invalid_argument);
}

TEST(PruneThreshold, DropsLightEdges) {
  const auto L = star_with_weights();
  const auto pruned = prune_threshold(L, 2.5);
  ASSERT_EQ(pruned.num_edges(), 2);
  EXPECT_NE(pruned.find_edge(0, 0), kInvalidEid);
  EXPECT_NE(pruned.find_edge(0, 1), kInvalidEid);
}

TEST(PruneThreshold, ZeroThresholdKeepsEverything) {
  Xoshiro256 rng(6);
  const auto L = random_bipartite(10, 10, 50, rng);
  EXPECT_EQ(prune_threshold(L, 0.0).num_edges(), L.num_edges());
}

}  // namespace
}  // namespace netalign
