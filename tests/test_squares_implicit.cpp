// Equivalence gate for the implicit squares backend (the tier-1 CTest
// behind the bit-identity claim in docs/ARCHITECTURE.md "Memory model &
// implicit squares"): for a fixed problem, the implicit backend must
// present exactly the explicit CSR's pattern -- same row pointers, same
// ascending columns, same transpose offsets -- and every solver must
// produce a bit-identical matching and objective over either backend.
#include "netalign/squares_implicit.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "graph/generators.hpp"
#include "helpers.hpp"
#include "netalign/belief_prop.hpp"
#include "netalign/isorank.hpp"
#include "netalign/klau_mr.hpp"
#include "netalign/squares_view.hpp"
#include "netalign/synthetic.hpp"

namespace netalign {
namespace {

/// Perturbed near-isomorphic pair (the paper's Section VI-A family).
NetAlignProblem power_law_problem(std::uint64_t seed, vid_t n = 80) {
  PowerLawInstanceOptions opt;
  opt.n = n;
  opt.seed = seed;
  opt.expected_degree = 3.0;
  return make_power_law_instance(opt).problem;
}

/// Hub-heavy Chung-Lu pair: a skewed expected-degree sequence gives a few
/// very wide rows of S next to many narrow ones, which is exactly the
/// shape that stresses the nnz-balanced transpose chunking.
NetAlignProblem chung_lu_problem(std::uint64_t seed, vid_t n = 90) {
  Xoshiro256 rng(seed);
  std::vector<double> degrees(static_cast<std::size_t>(n), 1.5);
  for (int hub = 0; hub < 4; ++hub) {
    degrees[static_cast<std::size_t>(rng.uniform_int(n))] =
        static_cast<double>(n) / 3.0;
  }
  NetAlignProblem p;
  p.A = chung_lu(degrees, rng);
  p.B = add_random_edges(p.A, 0.02, rng);
  p.L = testing::random_bipartite(n, n, 5 * n, rng);
  p.name = "chung-lu-hubs";
  return p;
}

/// Sparse L over sparse graphs: most rows of S are empty.
NetAlignProblem sparse_problem(std::uint64_t seed, vid_t n = 70) {
  Xoshiro256 rng(seed);
  NetAlignProblem p;
  p.A = erdos_renyi(n, 1.5 / static_cast<double>(n), rng);
  p.B = erdos_renyi(n, 1.5 / static_cast<double>(n), rng);
  p.L = testing::random_bipartite(n, n, 2 * n, rng);
  p.name = "sparse-empty-rows";
  return p;
}

/// All instances the equivalence sweep covers.
std::vector<NetAlignProblem> sweep_instances() {
  std::vector<NetAlignProblem> out;
  for (std::uint64_t seed : {11ull, 12ull, 13ull}) {
    out.push_back(power_law_problem(seed));
    out.push_back(chung_lu_problem(seed));
    out.push_back(sparse_problem(seed));
  }
  return out;
}

/// Row-by-row pattern comparison: columns via a serial lease, transpose
/// offsets via the chunk protocol, both against the explicit CSR.
void expect_identical_enumeration(const NetAlignProblem& p) {
  SCOPED_TRACE(p.name);
  const SquaresMatrix S = SquaresMatrix::build(p);
  const auto imp = ImplicitSquares::build(p);
  ASSERT_EQ(imp->num_rows(), S.num_rows());
  ASSERT_EQ(imp->num_nonzeros(), S.num_nonzeros());
  const auto ptr = S.pattern().row_ptr();
  const auto scol = S.pattern().col_idx();
  const auto perm = S.trans_perm();
  for (vid_t e = 0; e < S.num_rows(); ++e) {
    ASSERT_EQ(imp->row_begin(e), ptr[e]);
    ASSERT_EQ(imp->row_end(e), ptr[e + 1]);
  }
  {
    ImplicitSquares::Lease lease(*imp);
    for (vid_t e = 0; e < S.num_rows(); ++e) {
      const auto cols = lease.cols(e);
      const auto expected = scol.subspan(
          static_cast<std::size_t>(ptr[e]),
          static_cast<std::size_t>(ptr[e + 1] - ptr[e]));
      ASSERT_EQ(cols.size(), expected.size()) << "row " << e;
      for (std::size_t i = 0; i < cols.size(); ++i) {
        ASSERT_EQ(cols[i], expected[i]) << "row " << e << " nz " << i;
      }
    }
  }
  {
    ImplicitSquares::Lease lease(*imp);
    for (std::int64_t c = 0; c < imp->num_trans_chunks(); ++c) {
      lease.begin_trans_chunk(c);
      for (vid_t e = imp->trans_chunk_begin(c); e < imp->trans_chunk_end(c);
           ++e) {
        const auto [cols, tks] = lease.row_trans(e);
        ASSERT_EQ(tks.size(),
                  static_cast<std::size_t>(ptr[e + 1] - ptr[e]));
        for (std::size_t i = 0; i < tks.size(); ++i) {
          ASSERT_EQ(tks[i], perm[static_cast<std::size_t>(ptr[e]) + i])
              << "row " << e << " nz " << i;
          // The transpose offset really is the mirrored nonzero.
          ASSERT_EQ(scol[static_cast<std::size_t>(tks[i])], e);
        }
      }
    }
  }
}

TEST(ImplicitSquares, RowEnumerationMatchesExplicitAcrossInstances) {
  for (const auto& p : sweep_instances()) expect_identical_enumeration(p);
}

TEST(ImplicitSquares, HandlesAllRowsEmpty) {
  // No edges in A means no squares at all: every row enumerates empty.
  Xoshiro256 rng(5);
  NetAlignProblem p;
  p.A = Graph::from_edges(40, {});
  p.B = erdos_renyi(40, 0.1, rng);
  p.L = testing::random_bipartite(40, 40, 80, rng);
  p.name = "no-squares";
  const SquaresMatrix S = SquaresMatrix::build(p);
  ASSERT_EQ(S.num_nonzeros(), 0);
  expect_identical_enumeration(p);
}

TEST(ImplicitSquares, CursorCachesLastRow) {
  const auto p = power_law_problem(21);
  const auto imp = ImplicitSquares::build(p);
  vid_t wide = 0;
  for (vid_t e = 0; e < imp->num_rows(); ++e) {
    if (imp->row_end(e) - imp->row_begin(e) >
        imp->row_end(wide) - imp->row_begin(wide)) {
      wide = e;
    }
  }
  ASSERT_GT(imp->row_end(wide), imp->row_begin(wide));
  // The build's transpose base-count pass enumerates rows through the
  // same pool, so compare stats deltas, not absolutes.
  const ImplicitSquares::Stats before = imp->stats();
  {
    ImplicitSquares::Lease lease(*imp);
    const auto first = lease.cols(wide);
    const std::vector<vid_t> copy(first.begin(), first.end());
    const auto again = lease.cols(wide);  // served from the cached row
    ASSERT_EQ(again.size(), copy.size());
    for (std::size_t i = 0; i < copy.size(); ++i) {
      EXPECT_EQ(again[i], copy[i]);
    }
  }
  const ImplicitSquares::Stats stats = imp->stats();
  EXPECT_EQ(stats.rows_enumerated - before.rows_enumerated, 1);
  EXPECT_EQ(stats.cursor_reuse_hits - before.cursor_reuse_hits, 1);
}

TEST(ImplicitSquares, TransposeAccessRequiresSupport) {
  const auto p = power_law_problem(22);
  ImplicitSquares::BuildOptions opt;
  opt.transpose_support = false;
  const auto imp = ImplicitSquares::build(p, opt);
  EXPECT_FALSE(imp->transpose_support());
  EXPECT_EQ(imp->num_trans_chunks(), 0);
  ImplicitSquares::Lease lease(*imp);
  EXPECT_NO_THROW(lease.cols(0));
  EXPECT_THROW(lease.begin_trans_chunk(0), std::logic_error);
}

TEST(ImplicitSquares, ViewSweepsMatchExplicit) {
  // The SquaresView parallel sweeps (the solver-facing API) agree with
  // the explicit backend under real OpenMP scheduling, including the
  // implicit transpose path's chunk grid.
  const auto p = chung_lu_problem(31);
  const SquaresMatrix S = SquaresMatrix::build(p);
  const auto imp = ImplicitSquares::build(p);
  const SquaresView ve(S);
  const SquaresView vi(*imp);
  ASSERT_TRUE(vi.is_implicit());
  ASSERT_EQ(vi.explicit_matrix(), nullptr);
  ASSERT_EQ(ve.num_nonzeros(), vi.num_nonzeros());
  ASSERT_EQ(ve.max_row_width(), vi.max_row_width());

  const auto nnz = static_cast<std::size_t>(S.num_nonzeros());
  std::vector<vid_t> cols_e(nnz), cols_i(nnz);
  ve.par_rows([&](vid_t, eid_t base, std::span<const vid_t> cols) {
    for (std::size_t i = 0; i < cols.size(); ++i) {
      cols_e[static_cast<std::size_t>(base) + i] = cols[i];
    }
  });
  vi.par_rows([&](vid_t, eid_t base, std::span<const vid_t> cols) {
    for (std::size_t i = 0; i < cols.size(); ++i) {
      cols_i[static_cast<std::size_t>(base) + i] = cols[i];
    }
  });
  EXPECT_EQ(cols_e, cols_i);

  std::vector<eid_t> tks_e(nnz), tks_i(nnz);
  ve.par_rows_trans([&](vid_t, eid_t base, std::span<const vid_t>,
                        std::span<const eid_t> tks) {
    for (std::size_t i = 0; i < tks.size(); ++i) {
      tks_e[static_cast<std::size_t>(base) + i] = tks[i];
    }
  });
  vi.par_rows_trans([&](vid_t, eid_t base, std::span<const vid_t>,
                        std::span<const eid_t> tks) {
    for (std::size_t i = 0; i < tks.size(); ++i) {
      tks_i[static_cast<std::size_t>(base) + i] = tks[i];
    }
  });
  EXPECT_EQ(tks_e, tks_i);
}

TEST(ImplicitSquares, AutoModeSelectsByBudget) {
  const auto p = power_law_problem(41);
  SquaresBackendOptions opt;
  opt.mode = SquaresMode::kAuto;
  opt.budget_bytes = std::uint64_t{1} << 40;  // far above any estimate
  const SquaresBackend roomy = build_squares_backend(p, opt);
  EXPECT_FALSE(roomy.is_implicit());
  EXPECT_EQ(roomy.mode_name(), "explicit");
  opt.budget_bytes = 1;  // below any non-empty estimate
  const SquaresBackend tight = build_squares_backend(p, opt);
  EXPECT_TRUE(tight.is_implicit());
  EXPECT_EQ(tight.mode_name(), "implicit");
  EXPECT_EQ(roomy.nnz, tight.nnz);
  EXPECT_EQ(roomy.explicit_bytes, tight.explicit_bytes);
  EXPECT_GT(tight.explicit_bytes, 0u);
  EXPECT_EQ(tight.view().num_nonzeros(), roomy.view().num_nonzeros());
}

TEST(ImplicitSquares, SquaresModeStringsRoundTrip) {
  EXPECT_EQ(squares_mode_from_string("explicit"), SquaresMode::kExplicit);
  EXPECT_EQ(squares_mode_from_string("implicit"), SquaresMode::kImplicit);
  EXPECT_EQ(squares_mode_from_string("auto"), SquaresMode::kAuto);
  EXPECT_EQ(to_string(SquaresMode::kImplicit), "implicit");
  EXPECT_THROW(squares_mode_from_string("eager"), std::invalid_argument);
}

/// Solver runs over both backends must agree bit-for-bit: same matching
/// vector, same objective down to the last ulp.
void expect_bit_identical_solvers(const NetAlignProblem& p) {
  SCOPED_TRACE(p.name);
  const SquaresMatrix S = SquaresMatrix::build(p);
  const auto imp = ImplicitSquares::build(p);

  {
    BeliefPropOptions opt;
    opt.max_iterations = 8;
    opt.record_history = false;
    const AlignResult a = belief_prop_align(p, S, opt);
    const AlignResult b = belief_prop_align(p, *imp, opt);
    EXPECT_EQ(a.matching.mate_a, b.matching.mate_a) << "bp";
    EXPECT_EQ(a.value.objective, b.value.objective) << "bp";
    EXPECT_EQ(a.iterations_completed, b.iterations_completed) << "bp";
  }
  {
    KlauMrOptions opt;
    opt.max_iterations = 8;
    opt.record_history = false;
    const AlignResult a = klau_mr_align(p, S, opt);
    const AlignResult b = klau_mr_align(p, *imp, opt);
    EXPECT_EQ(a.matching.mate_a, b.matching.mate_a) << "mr";
    EXPECT_EQ(a.value.objective, b.value.objective) << "mr";
    EXPECT_EQ(a.best_upper_bound, b.best_upper_bound) << "mr";
  }
  {
    IsoRankOptions opt;
    opt.max_iterations = 20;
    opt.record_history = false;
    const AlignResult a = isorank_align(p, S, opt);
    const AlignResult b = isorank_align(p, *imp, opt);
    EXPECT_EQ(a.matching.mate_a, b.matching.mate_a) << "isorank";
    EXPECT_EQ(a.value.objective, b.value.objective) << "isorank";
  }
}

TEST(ImplicitSquares, SolverMatchingsBitIdenticalAcrossBackends) {
  for (const auto& p : sweep_instances()) expect_bit_identical_solvers(p);
}

}  // namespace
}  // namespace netalign
