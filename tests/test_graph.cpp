#include "graph/graph.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

namespace netalign {
namespace {

using Edges = std::vector<std::pair<vid_t, vid_t>>;

TEST(Graph, EmptyGraph) {
  const Graph g = Graph::from_edges(5, {});
  EXPECT_EQ(g.num_vertices(), 5);
  EXPECT_EQ(g.num_edges(), 0);
  EXPECT_EQ(g.degree(0), 0);
  EXPECT_FALSE(g.has_edge(0, 1));
}

TEST(Graph, BuildsUndirectedAdjacency) {
  const Edges edges = {{0, 1}, {1, 2}};
  const Graph g = Graph::from_edges(3, edges);
  EXPECT_EQ(g.num_edges(), 2);
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_TRUE(g.has_edge(1, 0));
  EXPECT_TRUE(g.has_edge(2, 1));
  EXPECT_FALSE(g.has_edge(0, 2));
  EXPECT_EQ(g.degree(1), 2);
}

TEST(Graph, DropsSelfLoops) {
  const Edges edges = {{0, 0}, {0, 1}};
  const Graph g = Graph::from_edges(2, edges);
  EXPECT_EQ(g.num_edges(), 1);
  EXPECT_FALSE(g.has_edge(0, 0));
}

TEST(Graph, CollapsesDuplicatesInBothOrientations) {
  const Edges edges = {{0, 1}, {1, 0}, {0, 1}};
  const Graph g = Graph::from_edges(2, edges);
  EXPECT_EQ(g.num_edges(), 1);
}

TEST(Graph, NeighborsAreSorted) {
  const Edges edges = {{2, 5}, {2, 1}, {2, 3}};
  const Graph g = Graph::from_edges(6, edges);
  const auto nbrs = g.neighbors(2);
  ASSERT_EQ(nbrs.size(), 3u);
  EXPECT_EQ(nbrs[0], 1);
  EXPECT_EQ(nbrs[1], 3);
  EXPECT_EQ(nbrs[2], 5);
}

TEST(Graph, OutOfRangeVertexThrows) {
  const Edges edges = {{0, 7}};
  EXPECT_THROW(Graph::from_edges(3, edges), std::out_of_range);
}

TEST(Graph, MaxDegree) {
  const Edges edges = {{0, 1}, {0, 2}, {0, 3}, {1, 2}};
  const Graph g = Graph::from_edges(4, edges);
  EXPECT_EQ(g.max_degree(), 3);
}

TEST(Graph, EdgeListRoundTrips) {
  const Edges edges = {{3, 1}, {0, 2}, {1, 2}};
  const Graph g = Graph::from_edges(4, edges);
  const auto out = g.edge_list();
  ASSERT_EQ(out.size(), 3u);
  // Canonical u < v, lexicographic.
  EXPECT_EQ(out[0], (std::pair<vid_t, vid_t>{0, 2}));
  EXPECT_EQ(out[1], (std::pair<vid_t, vid_t>{1, 2}));
  EXPECT_EQ(out[2], (std::pair<vid_t, vid_t>{1, 3}));
  const Graph g2 = Graph::from_edges(4, out);
  EXPECT_EQ(g2.num_edges(), g.num_edges());
  for (const auto& [u, v] : out) EXPECT_TRUE(g2.has_edge(u, v));
}

}  // namespace
}  // namespace netalign
