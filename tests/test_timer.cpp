#include "util/timer.hpp"

#include <gtest/gtest.h>

namespace netalign {
namespace {

TEST(WallTimer, ElapsedIsNonNegativeAndMonotone) {
  WallTimer t;
  const double a = t.seconds();
  const double b = t.seconds();
  EXPECT_GE(a, 0.0);
  EXPECT_GE(b, a);
}

TEST(WallTimer, ResetRestartsClock) {
  WallTimer t;
  volatile double sink = 0.0;
  for (int i = 0; i < 100000; ++i) sink = sink + i;
  t.reset();
  EXPECT_LT(t.seconds(), 1.0);
}

TEST(StepTimers, AccumulatesAcrossAdds) {
  StepTimers timers;
  timers.add("a", 1.0);
  timers.add("a", 2.0);
  timers.add("b", 3.0);
  EXPECT_DOUBLE_EQ(timers.total("a"), 3.0);
  EXPECT_DOUBLE_EQ(timers.total("b"), 3.0);
  EXPECT_EQ(timers.count("a"), 2u);
  EXPECT_EQ(timers.count("b"), 1u);
  EXPECT_DOUBLE_EQ(timers.grand_total(), 6.0);
}

TEST(StepTimers, UnknownNameIsZero) {
  StepTimers timers;
  EXPECT_EQ(timers.total("missing"), 0.0);
  EXPECT_EQ(timers.count("missing"), 0u);
  EXPECT_EQ(timers.fraction("missing"), 0.0);
}

TEST(StepTimers, FractionSumsToOne) {
  StepTimers timers;
  timers.add("x", 1.0);
  timers.add("y", 3.0);
  EXPECT_DOUBLE_EQ(timers.fraction("x") + timers.fraction("y"), 1.0);
  EXPECT_DOUBLE_EQ(timers.fraction("y"), 0.75);
}

TEST(StepTimers, NamesPreserveFirstUseOrder) {
  StepTimers timers;
  timers.add("z", 1.0);
  timers.add("a", 1.0);
  timers.add("z", 1.0);
  ASSERT_EQ(timers.names().size(), 2u);
  EXPECT_EQ(timers.names()[0], "z");
  EXPECT_EQ(timers.names()[1], "a");
}

TEST(StepTimers, MergeCombinesEntries) {
  StepTimers a, b;
  a.add("s", 1.0);
  b.add("s", 2.0);
  b.add("t", 5.0);
  a.merge(b);
  EXPECT_DOUBLE_EQ(a.total("s"), 3.0);
  EXPECT_DOUBLE_EQ(a.total("t"), 5.0);
  EXPECT_EQ(a.count("s"), 2u);
}

TEST(StepTimers, ClearResets) {
  StepTimers timers;
  timers.add("a", 1.0);
  timers.clear();
  EXPECT_EQ(timers.grand_total(), 0.0);
  EXPECT_TRUE(timers.names().empty());
}

TEST(ScopedStepTimer, RecordsOnDestruction) {
  StepTimers timers;
  {
    ScopedStepTimer t(timers, "scope");
  }
  EXPECT_EQ(timers.count("scope"), 1u);
  EXPECT_GE(timers.total("scope"), 0.0);
}

}  // namespace
}  // namespace netalign
