#include "util/timer.hpp"

#include <gtest/gtest.h>

namespace netalign {
namespace {

TEST(WallTimer, ElapsedIsNonNegativeAndMonotone) {
  WallTimer t;
  const double a = t.seconds();
  const double b = t.seconds();
  EXPECT_GE(a, 0.0);
  EXPECT_GE(b, a);
}

TEST(WallTimer, ResetRestartsClock) {
  WallTimer t;
  volatile double sink = 0.0;
  for (int i = 0; i < 100000; ++i) sink = sink + i;
  t.reset();
  EXPECT_LT(t.seconds(), 1.0);
}

TEST(StepTimers, AccumulatesAcrossAdds) {
  StepTimers timers;
  timers.add("a", 1.0);
  timers.add("a", 2.0);
  timers.add("b", 3.0);
  EXPECT_DOUBLE_EQ(timers.total("a"), 3.0);
  EXPECT_DOUBLE_EQ(timers.total("b"), 3.0);
  EXPECT_EQ(timers.count("a"), 2u);
  EXPECT_EQ(timers.count("b"), 1u);
  EXPECT_DOUBLE_EQ(timers.grand_total(), 6.0);
}

TEST(StepTimers, UnknownNameIsZero) {
  StepTimers timers;
  EXPECT_EQ(timers.total("missing"), 0.0);
  EXPECT_EQ(timers.count("missing"), 0u);
  EXPECT_EQ(timers.fraction("missing"), 0.0);
}

TEST(StepTimers, FractionSumsToOne) {
  StepTimers timers;
  timers.add("x", 1.0);
  timers.add("y", 3.0);
  EXPECT_DOUBLE_EQ(timers.fraction("x") + timers.fraction("y"), 1.0);
  EXPECT_DOUBLE_EQ(timers.fraction("y"), 0.75);
}

TEST(StepTimers, NamesPreserveFirstUseOrder) {
  StepTimers timers;
  timers.add("z", 1.0);
  timers.add("a", 1.0);
  timers.add("z", 1.0);
  ASSERT_EQ(timers.names().size(), 2u);
  EXPECT_EQ(timers.names()[0], "z");
  EXPECT_EQ(timers.names()[1], "a");
}

TEST(StepTimers, MergeCombinesEntries) {
  StepTimers a, b;
  a.add("s", 1.0);
  b.add("s", 2.0);
  b.add("t", 5.0);
  a.merge(b);
  EXPECT_DOUBLE_EQ(a.total("s"), 3.0);
  EXPECT_DOUBLE_EQ(a.total("t"), 5.0);
  EXPECT_EQ(a.count("s"), 2u);
}

TEST(StepTimers, MergeOverlappingKeysSumsTotalsAndCounts) {
  StepTimers a, b;
  a.add("x", 1.0);
  a.add("y", 2.0);
  b.add("y", 3.0);
  b.add("y", 4.0);
  b.add("z", 5.0);
  a.merge(b);
  EXPECT_DOUBLE_EQ(a.total("x"), 1.0);
  EXPECT_DOUBLE_EQ(a.total("y"), 9.0);
  EXPECT_DOUBLE_EQ(a.total("z"), 5.0);
  EXPECT_EQ(a.count("y"), 3u);
  // Target's first-use order wins; new keys append in source order.
  ASSERT_EQ(a.names().size(), 3u);
  EXPECT_EQ(a.names()[0], "x");
  EXPECT_EQ(a.names()[1], "y");
  EXPECT_EQ(a.names()[2], "z");
}

TEST(StepTimers, MergeIsAssociative) {
  // (a + b) + c and a + (b + c) agree -- the property the per-thread
  // instrumentation join relies on.
  auto make = [](double v1, double v2) {
    StepTimers t;
    t.add("p", v1);
    t.add("q", v2);
    return t;
  };
  StepTimers left_a = make(1.0, 2.0), b1 = make(4.0, 8.0),
             c1 = make(16.0, 32.0);
  left_a.merge(b1);
  left_a.merge(c1);

  StepTimers right_a = make(1.0, 2.0), b2 = make(4.0, 8.0),
             c2 = make(16.0, 32.0);
  b2.merge(c2);
  right_a.merge(b2);

  for (const auto& name : {"p", "q"}) {
    EXPECT_DOUBLE_EQ(left_a.total(name), right_a.total(name));
    EXPECT_EQ(left_a.count(name), right_a.count(name));
  }
}

TEST(StepTimers, MergeIntoEmptyCopies) {
  StepTimers a, b;
  b.add("only", 7.0);
  a.merge(b);
  EXPECT_DOUBLE_EQ(a.total("only"), 7.0);
  EXPECT_EQ(a.count("only"), 1u);
  ASSERT_EQ(a.names().size(), 1u);
}

TEST(StepTimers, ClearResets) {
  StepTimers timers;
  timers.add("a", 1.0);
  timers.clear();
  EXPECT_EQ(timers.grand_total(), 0.0);
  EXPECT_TRUE(timers.names().empty());
}

TEST(ScopedStepTimer, RecordsOnDestruction) {
  StepTimers timers;
  {
    ScopedStepTimer t(timers, "scope");
  }
  EXPECT_EQ(timers.count("scope"), 1u);
  EXPECT_GE(timers.total("scope"), 0.0);
}

TEST(ScopedStepTimer, AlsoTargetReceivesTheSameSample) {
  StepTimers run_totals, iter_steps;
  {
    ScopedStepTimer t(run_totals, "step", &iter_steps);
  }
  EXPECT_EQ(run_totals.count("step"), 1u);
  EXPECT_EQ(iter_steps.count("step"), 1u);
  // One sample, recorded twice: both sides see the identical value.
  EXPECT_DOUBLE_EQ(run_totals.total("step"), iter_steps.total("step"));
}

}  // namespace
}  // namespace netalign
