#include "io/matching_io.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <sstream>
#include <stdexcept>
#include <string>

#include "helpers.hpp"
#include "matching/exact_mwm.hpp"
#include "matching/verify.hpp"

namespace netalign {
namespace {

using testing::own_weights;
using testing::random_bipartite;

TEST(MatchingIo, RoundTrips) {
  Xoshiro256 rng(1);
  const auto L = random_bipartite(20, 20, 100, rng);
  const auto w = own_weights(L);
  const auto m = max_weight_matching_exact(L, w);

  std::stringstream ss;
  write_matching(ss, m);
  const auto r = read_matching(ss, L);
  EXPECT_EQ(r.mate_a, m.mate_a);
  EXPECT_EQ(r.mate_b, m.mate_b);
  EXPECT_EQ(r.cardinality, m.cardinality);
  EXPECT_NEAR(r.weight, m.weight, 1e-9);
  EXPECT_TRUE(is_valid_matching(L, r));
}

TEST(MatchingIo, EmptyMatchingRoundTrips) {
  const BipartiteGraph L = BipartiteGraph::from_edges(3, 3, {});
  BipartiteMatching m;
  m.mate_a.assign(3, kInvalidVid);
  m.mate_b.assign(3, kInvalidVid);
  std::stringstream ss;
  write_matching(ss, m);
  const auto r = read_matching(ss, L);
  EXPECT_EQ(r.cardinality, 0);
}

TEST(MatchingIo, PartialMatchingRoundTrips) {
  // Some vertices matched, some not: the reader must restore kInvalidVid
  // slots exactly and not invent pairings for the unmatched remainder.
  const BipartiteGraph L = BipartiteGraph::from_edges(
      4, 4,
      std::vector<LEdge>{{0, 1, 2.0}, {1, 0, 1.0}, {2, 2, 3.0}, {3, 3, 1.0}});
  BipartiteMatching m;
  m.mate_a.assign(4, kInvalidVid);
  m.mate_b.assign(4, kInvalidVid);
  m.mate_a[0] = 1;
  m.mate_b[1] = 0;
  m.mate_a[2] = 2;
  m.mate_b[2] = 2;
  m.cardinality = 2;
  m.weight = 5.0;

  std::stringstream ss;
  write_matching(ss, m);
  const auto r = read_matching(ss, L);
  EXPECT_EQ(r.mate_a, m.mate_a);
  EXPECT_EQ(r.mate_b, m.mate_b);
  EXPECT_EQ(r.cardinality, 2);
  EXPECT_EQ(r.mate_a[1], kInvalidVid);
  EXPECT_EQ(r.mate_a[3], kInvalidVid);
  EXPECT_TRUE(is_valid_matching(L, r));
}

TEST(MatchingIo, RejectsBadHeader) {
  const BipartiteGraph L = BipartiteGraph::from_edges(1, 1, {});
  std::stringstream ss("WRONG 1\n0\n");
  EXPECT_THROW(read_matching(ss, L), std::runtime_error);
}

TEST(MatchingIo, RejectsNonEdgePairs) {
  const BipartiteGraph L = BipartiteGraph::from_edges(
      2, 2, std::vector<LEdge>{{0, 0, 1.0}});
  std::stringstream ss("NETALIGN-MATCHING 1\n1\n1 1\n");
  EXPECT_THROW(read_matching(ss, L), std::runtime_error);
}

TEST(MatchingIo, RejectsDoubleMatchedVertex) {
  const BipartiteGraph L = BipartiteGraph::from_edges(
      1, 2, std::vector<LEdge>{{0, 0, 1.0}, {0, 1, 1.0}});
  std::stringstream ss("NETALIGN-MATCHING 1\n2\n0 0\n0 1\n");
  EXPECT_THROW(read_matching(ss, L), std::runtime_error);
}

TEST(MatchingIo, RejectsTruncatedInput) {
  const BipartiteGraph L = BipartiteGraph::from_edges(
      1, 1, std::vector<LEdge>{{0, 0, 1.0}});
  std::stringstream ss("NETALIGN-MATCHING 1\n2\n0 0\n");
  EXPECT_THROW(read_matching(ss, L), std::runtime_error);
}

TEST(MatchingIo, RejectsOutOfRangePair) {
  const BipartiteGraph L = BipartiteGraph::from_edges(
      1, 1, std::vector<LEdge>{{0, 0, 1.0}});
  std::stringstream ss("NETALIGN-MATCHING 1\n1\n5 0\n");
  EXPECT_THROW(read_matching(ss, L), std::runtime_error);
}

TEST(MatchingIo, MissingFileThrows) {
  const BipartiteGraph L = BipartiteGraph::from_edges(1, 1, {});
  EXPECT_THROW(read_matching_file("/no/such/file.mat", L),
               std::runtime_error);
}

TEST(MatchingIo, RejectsNonNumericCount) {
  const BipartiteGraph L = BipartiteGraph::from_edges(1, 1, {});
  std::stringstream ss("NETALIGN-MATCHING 1\nmany\n");
  EXPECT_THROW(read_matching(ss, L), std::runtime_error);
}

TEST(MatchingIo, RejectsCountBeyondGraphCapacity) {
  // A 2x3 graph can match at most 2 pairs; a count of 3 is rejected up
  // front, before any pair is parsed.
  const BipartiteGraph L = BipartiteGraph::from_edges(
      2, 3, std::vector<LEdge>{{0, 0, 1.0}, {1, 1, 1.0}});
  std::stringstream ss("NETALIGN-MATCHING 1\n3\n0 0\n1 1\n0 1\n");
  try {
    read_matching(ss, L);
    FAIL() << "expected throw";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("outside [0, 2]"),
              std::string::npos)
        << e.what();
  }
}

TEST(MatchingIo, RejectsAllocationBombCount) {
  // Count within min(|A|, |B|) but far beyond the bytes present.
  std::vector<LEdge> edges;
  for (vid_t i = 0; i < 64; ++i) edges.push_back({i, i, 1.0});
  const BipartiteGraph L = BipartiteGraph::from_edges(64, 64, edges);
  std::stringstream ss("NETALIGN-MATCHING 1\n60\n0 0\n");
  try {
    read_matching(ss, L);
    FAIL() << "expected throw";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("cannot fit"), std::string::npos)
        << e.what();
  }
}

TEST(MatchingIo, TruncatedPairListReportsIndex) {
  // Trailing spaces keep the byte budget plausible so the count guard
  // passes and the failure is the real truncated read.
  const BipartiteGraph L = BipartiteGraph::from_edges(
      2, 2, std::vector<LEdge>{{0, 0, 1.0}, {1, 1, 1.0}});
  std::stringstream ss("NETALIGN-MATCHING 1\n2\n0 0\n          \n");
  try {
    read_matching(ss, L);
    FAIL() << "expected throw";
  } catch (const std::runtime_error& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("pair 1"), std::string::npos) << msg;
    EXPECT_NE(msg.find("(at byte"), std::string::npos) << msg;
  }
}

TEST(MatchingIo, RejectsDoubleMatchWithinCapacity) {
  // Unlike RejectsDoubleMatchedVertex above, the count here is legal for
  // the graph, so this exercises the per-pair duplicate check itself.
  const BipartiteGraph L = BipartiteGraph::from_edges(
      2, 2, std::vector<LEdge>{{0, 0, 1.0}, {0, 1, 1.0}, {1, 1, 1.0}});
  std::stringstream ss("NETALIGN-MATCHING 1\n2\n0 0\n0 1\n");
  try {
    read_matching(ss, L);
    FAIL() << "expected throw";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("matched twice"), std::string::npos)
        << e.what();
  }
}

TEST(MatchingIo, WriteFileToBadPathThrows) {
  BipartiteMatching m;
  EXPECT_THROW(write_matching_file("/nonexistent/dir/out.mat", m),
               std::runtime_error);
}

TEST(MatchingIo, FileRoundTrip) {
  Xoshiro256 rng(4);
  const auto L = random_bipartite(12, 12, 60, rng);
  const auto w = own_weights(L);
  const auto m = max_weight_matching_exact(L, w);
  const std::string path = ::testing::TempDir() + "roundtrip.mat";
  write_matching_file(path, m);
  const auto r = read_matching_file(path, L);
  EXPECT_EQ(r.mate_a, m.mate_a);
  EXPECT_EQ(r.cardinality, m.cardinality);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace netalign
