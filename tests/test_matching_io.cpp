#include "io/matching_io.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "helpers.hpp"
#include "matching/exact_mwm.hpp"
#include "matching/verify.hpp"

namespace netalign {
namespace {

using testing::own_weights;
using testing::random_bipartite;

TEST(MatchingIo, RoundTrips) {
  Xoshiro256 rng(1);
  const auto L = random_bipartite(20, 20, 100, rng);
  const auto w = own_weights(L);
  const auto m = max_weight_matching_exact(L, w);

  std::stringstream ss;
  write_matching(ss, m);
  const auto r = read_matching(ss, L);
  EXPECT_EQ(r.mate_a, m.mate_a);
  EXPECT_EQ(r.mate_b, m.mate_b);
  EXPECT_EQ(r.cardinality, m.cardinality);
  EXPECT_NEAR(r.weight, m.weight, 1e-9);
  EXPECT_TRUE(is_valid_matching(L, r));
}

TEST(MatchingIo, EmptyMatchingRoundTrips) {
  const BipartiteGraph L = BipartiteGraph::from_edges(3, 3, {});
  BipartiteMatching m;
  m.mate_a.assign(3, kInvalidVid);
  m.mate_b.assign(3, kInvalidVid);
  std::stringstream ss;
  write_matching(ss, m);
  const auto r = read_matching(ss, L);
  EXPECT_EQ(r.cardinality, 0);
}

TEST(MatchingIo, RejectsBadHeader) {
  const BipartiteGraph L = BipartiteGraph::from_edges(1, 1, {});
  std::stringstream ss("WRONG 1\n0\n");
  EXPECT_THROW(read_matching(ss, L), std::runtime_error);
}

TEST(MatchingIo, RejectsNonEdgePairs) {
  const BipartiteGraph L = BipartiteGraph::from_edges(
      2, 2, std::vector<LEdge>{{0, 0, 1.0}});
  std::stringstream ss("NETALIGN-MATCHING 1\n1\n1 1\n");
  EXPECT_THROW(read_matching(ss, L), std::runtime_error);
}

TEST(MatchingIo, RejectsDoubleMatchedVertex) {
  const BipartiteGraph L = BipartiteGraph::from_edges(
      1, 2, std::vector<LEdge>{{0, 0, 1.0}, {0, 1, 1.0}});
  std::stringstream ss("NETALIGN-MATCHING 1\n2\n0 0\n0 1\n");
  EXPECT_THROW(read_matching(ss, L), std::runtime_error);
}

TEST(MatchingIo, RejectsTruncatedInput) {
  const BipartiteGraph L = BipartiteGraph::from_edges(
      1, 1, std::vector<LEdge>{{0, 0, 1.0}});
  std::stringstream ss("NETALIGN-MATCHING 1\n2\n0 0\n");
  EXPECT_THROW(read_matching(ss, L), std::runtime_error);
}

TEST(MatchingIo, RejectsOutOfRangePair) {
  const BipartiteGraph L = BipartiteGraph::from_edges(
      1, 1, std::vector<LEdge>{{0, 0, 1.0}});
  std::stringstream ss("NETALIGN-MATCHING 1\n1\n5 0\n");
  EXPECT_THROW(read_matching(ss, L), std::runtime_error);
}

TEST(MatchingIo, MissingFileThrows) {
  const BipartiteGraph L = BipartiteGraph::from_edges(1, 1, {});
  EXPECT_THROW(read_matching_file("/no/such/file.mat", L),
               std::runtime_error);
}

}  // namespace
}  // namespace netalign
