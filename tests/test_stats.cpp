#include "util/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace netalign {
namespace {

TEST(Summarize, EmptyInputIsAllZero) {
  const Summary s = summarize({});
  EXPECT_EQ(s.n, 0u);
  EXPECT_EQ(s.mean, 0.0);
  EXPECT_EQ(s.stddev, 0.0);
}

TEST(Summarize, SingleValue) {
  const Summary s = summarize({4.0});
  EXPECT_EQ(s.n, 1u);
  EXPECT_EQ(s.min, 4.0);
  EXPECT_EQ(s.max, 4.0);
  EXPECT_EQ(s.mean, 4.0);
  EXPECT_EQ(s.stddev, 0.0);
  EXPECT_EQ(s.median, 4.0);
}

TEST(Summarize, KnownSample) {
  const Summary s = summarize({2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0});
  EXPECT_DOUBLE_EQ(s.mean, 5.0);
  EXPECT_EQ(s.min, 2.0);
  EXPECT_EQ(s.max, 9.0);
  // Sample stddev with n-1 denominator: sqrt(32/7).
  EXPECT_NEAR(s.stddev, std::sqrt(32.0 / 7.0), 1e-12);
}

TEST(Percentile, MedianOfOddSample) {
  EXPECT_DOUBLE_EQ(percentile({3.0, 1.0, 2.0}, 50.0), 2.0);
}

TEST(Percentile, InterpolatesBetweenOrderStatistics) {
  EXPECT_DOUBLE_EQ(percentile({0.0, 10.0}, 25.0), 2.5);
  EXPECT_DOUBLE_EQ(percentile({0.0, 10.0}, 75.0), 7.5);
}

TEST(Percentile, ExtremesReturnMinMax) {
  EXPECT_DOUBLE_EQ(percentile({5.0, 1.0, 9.0}, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile({5.0, 1.0, 9.0}, 100.0), 9.0);
}

TEST(Percentile, EmptyReturnsZero) {
  EXPECT_EQ(percentile({}, 50.0), 0.0);
}

TEST(GeometricMean, KnownValues) {
  EXPECT_NEAR(geometric_mean({1.0, 4.0}), 2.0, 1e-12);
  EXPECT_NEAR(geometric_mean({2.0, 2.0, 2.0}), 2.0, 1e-12);
}

TEST(GeometricMean, EmptyReturnsZero) {
  EXPECT_EQ(geometric_mean({}), 0.0);
}

}  // namespace
}  // namespace netalign
