#include "obs/bench_result.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "obs/counters.hpp"
#include "obs/json.hpp"
#include "util/timer.hpp"

namespace netalign::obs {
namespace {

/// A minimal valid result document built through the real writer, so the
/// round-trip tests exercise exactly what `--json-out` produces.
JsonValue make_result(const std::string& bench,
                      std::vector<std::pair<std::string, double>> metrics) {
  BenchResult r(bench);
  r.set_param("dataset", std::string("lcsh-wiki"));
  r.set_param("scale", 0.05);
  for (const auto& [name, value] : metrics) r.set_metric(name, value);
  return parse_json(r.to_json());
}

TEST(BenchResult, JsonRoundTrip) {
  BenchResult r("bench_kernels");
  r.set_param("dataset", std::string("lcsh-wiki"));
  r.set_param("scale", 0.05);
  r.set_param("scale", 0.1);  // overwrite in place, no duplicate key
  r.set_metric("squares_build_seconds", 0.648132);
  r.set_metric("squares_build_seconds", 0.089843);  // overwrite too
  r.set_metric("bp_objective", 71629.028410988831);
  Counters c;
  c.add("bp.roundings", 20);
  r.set_counters(c);

  const JsonValue doc = parse_json(r.to_json());
  EXPECT_TRUE(validate_bench_json(doc).empty());
  EXPECT_EQ(doc.find("schema")->as_string(), "netalign-bench-result-v1");
  EXPECT_EQ(doc.find("bench")->as_string(), "bench_kernels");
  EXPECT_NE(doc.find("env")->find("git_sha"), nullptr);

  const JsonValue& params = *doc.find("params");
  ASSERT_EQ(params.members().size(), 2u);
  EXPECT_EQ(params.find("dataset")->as_string(), "lcsh-wiki");
  EXPECT_DOUBLE_EQ(params.find("scale")->as_number(), 0.1);

  const JsonValue& metrics = *doc.find("metrics");
  ASSERT_EQ(metrics.members().size(), 2u);
  // %.17g serialization must round-trip doubles exactly.
  EXPECT_EQ(metrics.find("squares_build_seconds")->as_number(), 0.089843);
  EXPECT_EQ(metrics.find("bp_objective")->as_number(), 71629.028410988831);

  EXPECT_EQ(doc.find("counters")->find("bp.roundings")->as_number(), 20.0);
}

TEST(BenchResult, StepMetricsGetSecondsSuffix) {
  StepTimers timers;
  { ScopedStepTimer st(timers, "othermax"); }
  BenchResult r("bench_fig7_steps_bp");
  r.set_metric("anchor", 1.0);  // validate requires a non-empty metric map
  r.set_step_metrics("t1_step_", timers);
  const JsonValue doc = parse_json(r.to_json());
  EXPECT_TRUE(validate_bench_json(doc).empty());
  EXPECT_NE(doc.find("metrics")->find("t1_step_othermax_seconds"), nullptr);
}

TEST(BenchResult, ValidateRejectsBadDocuments) {
  // Unknown schema.
  EXPECT_FALSE(
      validate_bench_json(parse_json(R"({"schema": "nope"})")).empty());
  // Result without a bench name or env.
  EXPECT_FALSE(validate_bench_json(parse_json(
                   R"({"schema": "netalign-bench-result-v1",
                       "metrics": {"a_seconds": 1.0}})"))
                   .empty());
  // Empty metrics object.
  BenchResult empty("bench_x");
  EXPECT_FALSE(validate_bench_json(parse_json(empty.to_json())).empty());
  // Non-numeric metric value (the parser itself rejects out-of-range
  // literals like 1e999, so a wrong-typed value is the reachable case).
  EXPECT_FALSE(validate_bench_json(parse_json(
                   R"({"schema": "netalign-bench-sweep-v1",
                       "env": {"git_sha": "x"},
                       "metrics": {"a_seconds": "fast"}})"))
                   .empty());
  // Trajectory whose entry lacks a label.
  EXPECT_FALSE(validate_bench_json(parse_json(
                   R"({"schema": "netalign-bench-trajectory-v1",
                       "entries": [{"metrics": {"a_seconds": 1.0}}]})"))
                   .empty());
}

TEST(BenchResult, EnvEntriesAppearAndGateTruncatedRuns) {
  BenchResult r("bench_kernels");
  r.set_metric("a_seconds", 1.0);
  r.set_env("stopped_reason", std::string("completed"));
  r.set_env("iterations_completed", 10.0);
  const JsonValue ok = parse_json(r.to_json());
  EXPECT_TRUE(validate_bench_json(ok).empty());
  EXPECT_EQ(ok.find("env")->find("stopped_reason")->as_string(), "completed");
  EXPECT_EQ(ok.find("env")->find("iterations_completed")->as_number(), 10.0);

  // A deadline-cut run measured less work; the validator must refuse it so
  // it can never become a bench_compare baseline.
  r.set_env("stopped_reason", std::string("deadline"));
  const auto errors = validate_bench_json(parse_json(r.to_json()));
  ASSERT_EQ(errors.size(), 1u);
  EXPECT_NE(errors[0].find("deadline"), std::string::npos) << errors[0];
  // Absent stopped_reason stays valid: older result files predate the key.
  BenchResult legacy("bench_x");
  legacy.set_metric("a_seconds", 1.0);
  EXPECT_TRUE(validate_bench_json(parse_json(legacy.to_json())).empty());
}

TEST(BenchResult, MergePrefixesMetricsByBench) {
  const std::vector<JsonValue> results = {
      make_result("bench_kernels", {{"squares_build_seconds", 0.6}}),
      make_result("bench_fig6_steps_mr", {{"t1_total_seconds", 1.5}})};
  const JsonValue sweep = parse_json(merge_results_to_sweep(results));
  EXPECT_TRUE(validate_bench_json(sweep).empty());
  EXPECT_EQ(sweep.find("schema")->as_string(), "netalign-bench-sweep-v1");
  const JsonValue& metrics = *sweep.find("metrics");
  EXPECT_EQ(metrics.find("bench_kernels.squares_build_seconds")->as_number(),
            0.6);
  EXPECT_EQ(metrics.find("bench_fig6_steps_mr.t1_total_seconds")->as_number(),
            1.5);
}

TEST(BenchResult, MergeRejectsDuplicatesAndNonResults) {
  const std::vector<JsonValue> dup = {
      make_result("bench_kernels", {{"a_seconds", 1.0}}),
      make_result("bench_kernels", {{"a_seconds", 2.0}})};
  EXPECT_THROW(merge_results_to_sweep(dup), std::runtime_error);

  const JsonValue sweep = parse_json(merge_results_to_sweep(
      {make_result("bench_kernels", {{"a_seconds", 1.0}})}));
  EXPECT_THROW(merge_results_to_sweep({sweep}), std::runtime_error);
}

TEST(BenchResult, CollectMetricsFromAllThreeShapes) {
  const JsonValue result = make_result("bench_kernels", {{"a_seconds", 1.0}});
  auto m = collect_metrics(result);
  ASSERT_EQ(m.size(), 1u);
  EXPECT_EQ(m[0].first, "a_seconds");

  const JsonValue sweep = parse_json(merge_results_to_sweep({result}));
  m = collect_metrics(sweep);
  ASSERT_EQ(m.size(), 1u);
  EXPECT_EQ(m[0].first, "bench_kernels.a_seconds");

  // Trajectory: default picks the last entry, --entry picks by label.
  std::string traj = append_trajectory_entry({}, sweep, "baseline", "2026-08-05");
  const JsonValue sweep2 = parse_json(merge_results_to_sweep(
      {make_result("bench_kernels", {{"a_seconds", 0.5}})}));
  traj = append_trajectory_entry(traj, sweep2, "post", "2026-08-05");
  const JsonValue traj_doc = parse_json(traj);
  EXPECT_TRUE(validate_bench_json(traj_doc).empty());
  EXPECT_EQ(collect_metrics(traj_doc)[0].second, 0.5);
  EXPECT_EQ(collect_metrics(traj_doc, "baseline")[0].second, 1.0);
  EXPECT_THROW(collect_metrics(traj_doc, "nope"), std::runtime_error);
  EXPECT_THROW(collect_metrics(result, "baseline"), std::runtime_error);
}

TEST(BenchResult, AppendTrajectoryKeepsHistoryOrderAndSha) {
  const JsonValue sweep = parse_json(merge_results_to_sweep(
      {make_result("bench_kernels", {{"a_seconds", 1.0}})}));
  std::string traj = append_trajectory_entry({}, sweep, "baseline", "2026-08-04");
  traj = append_trajectory_entry(traj, sweep, "post", "2026-08-05");
  const JsonValue doc = parse_json(traj);
  const auto& entries = doc.find("entries")->items();
  ASSERT_EQ(entries.size(), 2u);
  EXPECT_EQ(entries[0].find("label")->as_string(), "baseline");
  EXPECT_EQ(entries[0].find("date")->as_string(), "2026-08-04");
  EXPECT_EQ(entries[1].find("label")->as_string(), "post");
  // git_sha is hoisted from the sweep's env into each entry.
  EXPECT_EQ(entries[1].find("git_sha")->as_string(),
            sweep.find("env")->find("git_sha")->as_string());
  // Appending onto a non-trajectory document is rejected.
  EXPECT_THROW(
      append_trajectory_entry(merge_results_to_sweep(
                                  {make_result("bench_x", {{"b", 1.0}})}),
                              sweep, "l", "2026-08-05"),
      std::runtime_error);
}

TEST(BenchResult, CompareGatesOnlySlowTimeMetrics) {
  const std::vector<std::pair<std::string, double>> base = {
      {"squares_build_seconds", 0.10},  // gated
      {"tiny_seconds", 0.01},           // below min_seconds: never gated
      {"objective", 100.0},             // not a time metric
      {"renamed_away_seconds", 1.0},    // missing on candidate: skipped
  };
  const std::vector<std::pair<std::string, double>> cand = {
      {"squares_build_seconds", 0.26},  // > 0.10 * 2.5: regression
      {"tiny_seconds", 10.0},           // huge, but under the floor
      {"objective", 50.0},              // info only
      {"brand_new_seconds", 5.0},       // missing on base: skipped
  };
  const auto deltas = compare_metrics(base, cand);  // threshold 1.5
  ASSERT_EQ(deltas.size(), 3u);  // both one-sided metrics dropped

  EXPECT_EQ(deltas[0].name, "squares_build_seconds");
  EXPECT_TRUE(deltas[0].gated);
  EXPECT_TRUE(deltas[0].regression);
  EXPECT_DOUBLE_EQ(deltas[0].ratio(), 2.6);

  EXPECT_EQ(deltas[1].name, "tiny_seconds");
  EXPECT_TRUE(deltas[1].is_time);
  EXPECT_FALSE(deltas[1].gated);
  EXPECT_FALSE(deltas[1].regression);

  EXPECT_EQ(deltas[2].name, "objective");
  EXPECT_FALSE(deltas[2].is_time);
  EXPECT_FALSE(deltas[2].regression);

  EXPECT_TRUE(has_regression(deltas));
}

TEST(BenchResult, CompareAcceptsNoiseWithinThreshold) {
  const std::vector<std::pair<std::string, double>> base = {
      {"a_seconds", 0.10}};
  // 2.4x is inside the deliberately loose 2.5x gate (one-core noise).
  const auto ok = compare_metrics(base, {{"a_seconds", 0.24}});
  ASSERT_EQ(ok.size(), 1u);
  EXPECT_FALSE(ok[0].regression);
  EXPECT_FALSE(has_regression(ok));
  // A tighter threshold flips the same delta into a regression.
  CompareOptions strict;
  strict.threshold = 0.5;
  EXPECT_TRUE(has_regression(compare_metrics(base, {{"a_seconds", 0.24}},
                                             strict)));
  // Speedups are never regressions.
  EXPECT_FALSE(has_regression(compare_metrics(base, {{"a_seconds", 0.01}})));
}

TEST(BenchResult, CompareLatencyPercentilesGetTheLooserGate) {
  EXPECT_TRUE(is_latency_metric("polite_contended_p99_seconds"));
  EXPECT_TRUE(is_latency_metric("x_p50_seconds"));
  EXPECT_TRUE(is_latency_metric("x_p95_seconds"));
  EXPECT_FALSE(is_latency_metric("squares_build_seconds"));
  EXPECT_FALSE(is_latency_metric("p99_seconds"));  // needs the _p99 infix
  EXPECT_FALSE(is_latency_metric("x_p99"));        // not a time metric

  const std::vector<std::pair<std::string, double>> base = {
      {"load.polite_p99_seconds", 0.10},  // latency: threshold 4.0
      {"load.sweep_seconds", 0.10},       // plain time: threshold 1.5
  };
  // 4x: past the plain 2.5x gate but inside the latency 5x gate -- tail
  // percentiles of a contended queueing system are noisier than kernels.
  const auto deltas = compare_metrics(
      base,
      {{"load.polite_p99_seconds", 0.40}, {"load.sweep_seconds", 0.40}});
  ASSERT_EQ(deltas.size(), 2u);
  EXPECT_TRUE(deltas[0].is_latency);
  EXPECT_TRUE(deltas[0].gated);
  EXPECT_FALSE(deltas[0].regression);
  EXPECT_FALSE(deltas[1].is_latency);
  EXPECT_TRUE(deltas[1].regression);
  // Past even the loose latency gate: a real tail regression still trips.
  EXPECT_TRUE(has_regression(
      compare_metrics(base, {{"load.polite_p99_seconds", 0.60}})));
}

}  // namespace
}  // namespace netalign::obs
