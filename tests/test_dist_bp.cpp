#include "dist/dist_bp.hpp"

#include <gtest/gtest.h>

#include "matching/verify.hpp"
#include "netalign/belief_prop.hpp"
#include "netalign/synthetic.hpp"

namespace netalign {
namespace {

using dist::DistBpOptions;
using dist::DistBpStats;
using dist::distributed_belief_prop_align;

SyntheticInstance make_instance(std::uint64_t seed, vid_t n = 60,
                                double dbar = 3.0) {
  PowerLawInstanceOptions opt;
  opt.n = n;
  opt.seed = seed;
  opt.expected_degree = dbar;
  return make_power_law_instance(opt);
}

TEST(DistBp, ProducesValidMatching) {
  const auto inst = make_instance(1);
  const auto S = SquaresMatrix::build(inst.problem);
  DistBpOptions opt;
  opt.max_iterations = 20;
  const auto r = distributed_belief_prop_align(inst.problem, S, opt);
  EXPECT_TRUE(is_valid_matching(inst.problem.L, r.matching));
  EXPECT_GT(r.value.objective, 0.0);
}

TEST(DistBp, MatchesSharedMemoryBpExactly) {
  // The distributed implementation computes the same iterates in the same
  // floating-point order (row sums in slot order, column merges in CSC
  // order), so with a deterministic matcher the entire objective history
  // must coincide with the shared-memory BP.
  const auto inst = make_instance(2, 70, 5.0);
  const auto S = SquaresMatrix::build(inst.problem);

  BeliefPropOptions shared;
  shared.max_iterations = 25;
  shared.matcher = MatcherKind::kGreedy;
  shared.final_exact_round = false;
  const auto rs = belief_prop_align(inst.problem, S, shared);

  for (int ranks : {1, 3, 8}) {
    DistBpOptions opt;
    opt.num_ranks = ranks;
    opt.max_iterations = 25;
    opt.matcher = MatcherKind::kGreedy;
    opt.final_exact_round = false;
    const auto rd = distributed_belief_prop_align(inst.problem, S, opt);
    ASSERT_EQ(rd.objective_history.size(), rs.objective_history.size())
        << "ranks=" << ranks;
    for (std::size_t i = 0; i < rs.objective_history.size(); ++i) {
      EXPECT_NEAR(rd.objective_history[i], rs.objective_history[i], 1e-9)
          << "ranks=" << ranks << " event " << i;
    }
    EXPECT_NEAR(rd.value.objective, rs.value.objective, 1e-9);
  }
}

TEST(DistBp, ResultIndependentOfRankCount) {
  const auto inst = make_instance(3);
  const auto S = SquaresMatrix::build(inst.problem);
  weight_t reference = 0.0;
  for (int ranks : {1, 2, 5, 13}) {
    DistBpOptions opt;
    opt.num_ranks = ranks;
    opt.max_iterations = 15;
    const auto r = distributed_belief_prop_align(inst.problem, S, opt);
    if (ranks == 1) {
      reference = r.value.objective;
    } else {
      EXPECT_NEAR(r.value.objective, reference, 1e-9) << "ranks=" << ranks;
    }
  }
}

TEST(DistBp, StatsAccountForCommunication) {
  const auto inst = make_instance(4);
  const auto S = SquaresMatrix::build(inst.problem);
  DistBpOptions opt;
  opt.num_ranks = 4;
  opt.max_iterations = 10;
  DistBpStats stats;
  const auto r = distributed_belief_prop_align(inst.problem, S, opt, &stats);
  EXPECT_TRUE(is_valid_matching(inst.problem.L, r.matching));
  // 3 mailbox deliveries per iteration plus the distributed matcher runs.
  EXPECT_GE(stats.bsp.supersteps, 30u);
  EXPECT_GT(stats.bsp.messages, 0u);
  // Two gathers per iteration (y and z).
  EXPECT_EQ(stats.gather_bytes,
            2u * 10u * static_cast<std::size_t>(inst.problem.L.num_edges()) *
                sizeof(weight_t));
}

TEST(DistBp, RemoteTrafficGrowsWithRanks) {
  const auto inst = make_instance(5, 80, 4.0);
  const auto S = SquaresMatrix::build(inst.problem);
  std::size_t remote_p2 = 0;
  for (int ranks : {2, 8}) {
    DistBpOptions opt;
    opt.num_ranks = ranks;
    opt.max_iterations = 5;
    DistBpStats stats;
    (void)distributed_belief_prop_align(inst.problem, S, opt, &stats);
    if (ranks == 2) {
      remote_p2 = stats.bsp.remote_messages;
    } else {
      EXPECT_GE(stats.bsp.remote_messages, remote_p2);
    }
  }
}

TEST(DistBp, RejectsBadOptions) {
  const auto inst = make_instance(6);
  const auto S = SquaresMatrix::build(inst.problem);
  DistBpOptions opt;
  opt.num_ranks = 0;
  EXPECT_THROW(distributed_belief_prop_align(inst.problem, S, opt),
               std::invalid_argument);
  opt.num_ranks = 2;
  opt.max_iterations = 0;
  EXPECT_THROW(distributed_belief_prop_align(inst.problem, S, opt),
               std::invalid_argument);
}

}  // namespace
}  // namespace netalign
