#include "matching/auction.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "helpers.hpp"
#include "matching/exact_mwm.hpp"
#include "matching/verify.hpp"

namespace netalign {
namespace {

using testing::own_weights;
using testing::random_bipartite;

TEST(Auction, EmptyGraph) {
  const BipartiteGraph g = BipartiteGraph::from_edges(3, 3, {});
  const auto m = auction_matching(g, own_weights(g));
  EXPECT_EQ(m.cardinality, 0);
  EXPECT_TRUE(is_valid_matching(g, m));
}

TEST(Auction, SingleEdge) {
  const std::vector<LEdge> edges = {{0, 1, 3.0}};
  const BipartiteGraph g = BipartiteGraph::from_edges(1, 2, edges);
  const auto m = auction_matching(g, own_weights(g));
  EXPECT_EQ(m.cardinality, 1);
  EXPECT_DOUBLE_EQ(m.weight, 3.0);
}

TEST(Auction, ResolvesBiddingConflict) {
  const std::vector<LEdge> edges = {{0, 0, 1.0}, {0, 1, 0.9}, {1, 0, 0.9}};
  const BipartiteGraph g = BipartiteGraph::from_edges(2, 2, edges);
  const auto m = auction_matching(g, own_weights(g));
  // The assignment-optimal answer uses both 0.9 edges.
  EXPECT_NEAR(m.weight, 1.8, 1e-6);
  EXPECT_EQ(m.cardinality, 2);
}

TEST(Auction, NearOptimalOnRandomGraphs) {
  Xoshiro256 rng(4242);
  for (int trial = 0; trial < 60; ++trial) {
    const auto g = random_bipartite(8, 8, 25, rng);
    const auto w = own_weights(g);
    const auto exact = max_weight_matching_exact(g, w);
    const auto m = auction_matching(g, w);
    ASSERT_TRUE(is_valid_matching(g, m)) << "trial " << trial;
    // The eps-complementary-slackness bound: within cardinality * eps of
    // optimal; the default final eps is ~1e-9 * max weight.
    EXPECT_NEAR(m.weight, exact.weight, 1e-6) << "trial " << trial;
  }
}

TEST(Auction, NearOptimalOnLargerGraph) {
  Xoshiro256 rng(555);
  const auto g = random_bipartite(200, 180, 2400, rng);
  const auto w = own_weights(g);
  const auto exact = max_weight_matching_exact(g, w);
  const auto m = auction_matching(g, w);
  EXPECT_TRUE(is_valid_matching(g, m));
  EXPECT_NEAR(m.weight, exact.weight, 1e-5 * exact.weight);
}

TEST(Auction, IgnoresNonPositiveEdges) {
  const std::vector<LEdge> edges = {{0, 0, -1.0}, {1, 1, 0.0}};
  const BipartiteGraph g = BipartiteGraph::from_edges(2, 2, edges);
  const auto m = auction_matching(g, own_weights(g));
  EXPECT_EQ(m.cardinality, 0);
}

TEST(Auction, StatsAreFilled) {
  Xoshiro256 rng(77);
  const auto g = random_bipartite(30, 30, 200, rng);
  AuctionStats stats;
  const auto m = auction_matching(g, own_weights(g), {}, &stats);
  EXPECT_TRUE(is_valid_matching(g, m));
  EXPECT_GE(stats.bids, 30);  // every person bids at least once
  EXPECT_GT(stats.epsilon, 0.0);
}

TEST(Auction, CoarseEpsilonDegradesGracefully) {
  Xoshiro256 rng(88);
  const auto g = random_bipartite(20, 20, 120, rng);
  const auto w = own_weights(g);
  const auto exact = max_weight_matching_exact(g, w);
  AuctionOptions coarse;
  coarse.epsilon_fraction = 0.01;  // deliberately imprecise
  const auto m = auction_matching(g, w, coarse);
  EXPECT_TRUE(is_valid_matching(g, m));
  // Error bound: cardinality * eps = card * 0.01 * max_w <= n * 0.01.
  EXPECT_GE(m.weight, exact.weight - 20 * 0.01 - 1e-9);
}

TEST(Auction, SurvivesHeavilyTiedWeights) {
  // Uniform weights are the auction's worst case (bid increments collapse
  // to eps); it must still terminate and return a perfect matching here.
  std::vector<LEdge> edges;
  for (vid_t a = 0; a < 8; ++a) {
    for (vid_t b = 0; b < 8; ++b) edges.push_back(LEdge{a, b, 1.0});
  }
  const BipartiteGraph g = BipartiteGraph::from_edges(8, 8, edges);
  const auto m = auction_matching(g, own_weights(g));
  EXPECT_EQ(m.cardinality, 8);
  EXPECT_DOUBLE_EQ(m.weight, 8.0);
}

TEST(Auction, WeightSizeMismatchThrows) {
  const BipartiteGraph g = BipartiteGraph::from_edges(2, 2, {});
  std::vector<weight_t> wrong(7, 1.0);
  EXPECT_THROW(auction_matching(g, wrong), std::invalid_argument);
}

}  // namespace
}  // namespace netalign
