#include "matching/greedy.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "helpers.hpp"
#include "matching/exact_mwm.hpp"
#include "matching/verify.hpp"

namespace netalign {
namespace {

using testing::own_weights;
using testing::random_bipartite;

TEST(Greedy, EmptyGraph) {
  const BipartiteGraph g = BipartiteGraph::from_edges(2, 2, {});
  const auto m = greedy_matching(g, own_weights(g));
  EXPECT_EQ(m.cardinality, 0);
  EXPECT_TRUE(is_valid_matching(g, m));
}

TEST(Greedy, TakesHeaviestFirst) {
  const std::vector<LEdge> edges = {{0, 0, 1.0}, {0, 1, 0.9}, {1, 0, 0.9}};
  const BipartiteGraph g = BipartiteGraph::from_edges(2, 2, edges);
  const auto m = greedy_matching(g, own_weights(g));
  // Greedy takes the 1.0 edge and blocks both 0.9 edges: the textbook
  // half-approximation behavior.
  EXPECT_DOUBLE_EQ(m.weight, 1.0);
  EXPECT_EQ(m.cardinality, 1);
  EXPECT_EQ(m.mate_a[0], 0);
}

TEST(Greedy, IgnoresNonPositiveEdges) {
  const std::vector<LEdge> edges = {{0, 0, -1.0}, {1, 1, 0.0}};
  const BipartiteGraph g = BipartiteGraph::from_edges(2, 2, edges);
  const auto m = greedy_matching(g, own_weights(g));
  EXPECT_EQ(m.cardinality, 0);
}

TEST(Greedy, IsHalfApproximate) {
  Xoshiro256 rng(909);
  for (int trial = 0; trial < 100; ++trial) {
    const auto g = random_bipartite(6, 6, 15, rng);
    const auto w = own_weights(g);
    const auto greedy = greedy_matching(g, w);
    const auto exact = max_weight_matching_exact(g, w);
    ASSERT_TRUE(is_valid_matching(g, greedy));
    EXPECT_TRUE(is_maximal_matching(g, w, greedy));
    EXPECT_LE(greedy.weight, exact.weight + 1e-9);
    EXPECT_GE(greedy.weight, 0.5 * exact.weight - 1e-9) << "trial " << trial;
    EXPECT_GE(greedy.cardinality * 2, exact.cardinality);
  }
}

TEST(Greedy, DeterministicTieBreakByEdgeId) {
  const std::vector<LEdge> edges = {{0, 0, 1.0}, {0, 1, 1.0}, {1, 0, 1.0}};
  const BipartiteGraph g = BipartiteGraph::from_edges(2, 2, edges);
  const auto m = greedy_matching(g, own_weights(g));
  // Edge id 0 is (0, 0); the tie breaks toward it, then (1, x) can't use
  // b0... edge (1,0) is blocked, leaving a0-b0 only plus nothing for a1?
  // No: after (0,0), edge (0,1) blocked by a0, (1,0) blocked by b0.
  EXPECT_EQ(m.mate_a[0], 0);
  EXPECT_EQ(m.cardinality, 1);
}

TEST(Greedy, WeightSizeMismatchThrows) {
  const BipartiteGraph g = BipartiteGraph::from_edges(2, 2, {});
  std::vector<weight_t> wrong(5, 1.0);
  EXPECT_THROW(greedy_matching(g, wrong), std::invalid_argument);
}

TEST(Greedy, ReportedWeightMatchesRecomputation) {
  Xoshiro256 rng(111);
  const auto g = random_bipartite(40, 40, 200, rng);
  const auto w = own_weights(g);
  const auto m = greedy_matching(g, w);
  EXPECT_NEAR(m.weight, matching_weight(g, w, m), 1e-9);
}

}  // namespace
}  // namespace netalign
