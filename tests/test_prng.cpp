#include "util/prng.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <vector>

namespace netalign {
namespace {

TEST(SplitMix64, IsDeterministic) {
  SplitMix64 a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(SplitMix64, DiffersAcrossSeeds) {
  SplitMix64 a(1), b(2);
  EXPECT_NE(a.next(), b.next());
}

TEST(Xoshiro256, IsDeterministicPerSeed) {
  Xoshiro256 a(999), b(999);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a(), b());
}

TEST(Xoshiro256, UniformInUnitInterval) {
  Xoshiro256 rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Xoshiro256, UniformRangeRespectsBounds) {
  Xoshiro256 rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(-3.0, 5.0);
    EXPECT_GE(u, -3.0);
    EXPECT_LT(u, 5.0);
  }
}

TEST(Xoshiro256, UniformMeanIsRoughlyHalf) {
  Xoshiro256 rng(11);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Xoshiro256, UniformIntStaysBelowBound) {
  Xoshiro256 rng(13);
  for (std::uint64_t n : {1ULL, 2ULL, 7ULL, 1000ULL}) {
    for (int i = 0; i < 1000; ++i) {
      EXPECT_LT(rng.uniform_int(n), n);
    }
  }
}

TEST(Xoshiro256, UniformIntZeroReturnsZero) {
  Xoshiro256 rng(13);
  EXPECT_EQ(rng.uniform_int(0), 0u);
}

TEST(Xoshiro256, UniformIntCoversSmallRangeUniformly) {
  Xoshiro256 rng(17);
  std::vector<int> counts(8, 0);
  const int n = 80000;
  for (int i = 0; i < n; ++i) counts[rng.uniform_int(8)]++;
  for (int c : counts) {
    EXPECT_NEAR(static_cast<double>(c), n / 8.0, 0.05 * n / 8.0);
  }
}

TEST(Xoshiro256, BernoulliMatchesProbability) {
  Xoshiro256 rng(19);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) hits += rng.bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(hits / static_cast<double>(n), 0.3, 0.01);
}

TEST(Xoshiro256, ForkProducesIndependentStream) {
  Xoshiro256 a(23);
  Xoshiro256 child = a.fork();
  bool any_diff = false;
  for (int i = 0; i < 10; ++i) {
    if (a() != child()) any_diff = true;
  }
  EXPECT_TRUE(any_diff);
}

TEST(Xoshiro256, SatisfiesUniformRandomBitGenerator) {
  static_assert(Xoshiro256::min() == 0);
  static_assert(Xoshiro256::max() == ~0ULL);
  Xoshiro256 rng(29);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 100; ++i) seen.insert(rng());
  // 100 draws from a 64-bit space should not collide.
  EXPECT_EQ(seen.size(), 100u);
}

}  // namespace
}  // namespace netalign
