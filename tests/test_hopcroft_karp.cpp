#include "matching/hopcroft_karp.hpp"

#include <gtest/gtest.h>

#include "helpers.hpp"
#include "matching/locally_dominant.hpp"
#include "matching/verify.hpp"

namespace netalign {
namespace {

using testing::own_weights;
using testing::random_bipartite;

/// Brute-force maximum cardinality by DFS over edge subsets (tiny only).
eid_t brute_force_cardinality(const BipartiteGraph& L) {
  std::vector<weight_t> unit(static_cast<std::size_t>(L.num_edges()), 1.0);
  // With unit weights, max weight == max cardinality.
  return static_cast<eid_t>(brute_force_mwm_value(L, unit) + 0.5);
}

TEST(HopcroftKarp, EmptyGraph) {
  const BipartiteGraph g = BipartiteGraph::from_edges(3, 5, {});
  const auto m = maximum_cardinality_matching(g);
  EXPECT_EQ(m.cardinality, 0);
  EXPECT_TRUE(is_valid_matching(g, m));
}

TEST(HopcroftKarp, PerfectMatchingOnDiagonal) {
  std::vector<LEdge> edges;
  for (vid_t i = 0; i < 40; ++i) edges.push_back(LEdge{i, i, 1.0});
  const BipartiteGraph g = BipartiteGraph::from_edges(40, 40, edges);
  EXPECT_EQ(maximum_cardinality_matching(g).cardinality, 40);
}

TEST(HopcroftKarp, AugmentingPathsAreFound) {
  // Greedy would match a0-b0 and strand a1; HK must find the size-2
  // matching via the augmenting path.
  const std::vector<LEdge> edges = {{0, 0, 1.0}, {0, 1, 1.0}, {1, 0, 1.0}};
  const BipartiteGraph g = BipartiteGraph::from_edges(2, 2, edges);
  EXPECT_EQ(maximum_cardinality_matching(g).cardinality, 2);
}

TEST(HopcroftKarp, MatchesBruteForceOnSmallGraphs) {
  Xoshiro256 rng(161);
  for (int trial = 0; trial < 100; ++trial) {
    const auto g = random_bipartite(5, 5, 10, rng);
    const auto m = maximum_cardinality_matching(g);
    ASSERT_TRUE(is_valid_matching(g, m));
    EXPECT_EQ(m.cardinality, brute_force_cardinality(g)) << "trial " << trial;
  }
}

TEST(HopcroftKarp, EligibleMaskRestrictsEdges) {
  const std::vector<LEdge> edges = {{0, 0, 1.0}, {1, 1, 1.0}};
  const BipartiteGraph g = BipartiteGraph::from_edges(2, 2, edges);
  const std::vector<std::uint8_t> mask = {1, 0};
  const auto m = maximum_cardinality_matching(g, mask);
  EXPECT_EQ(m.cardinality, 1);
  EXPECT_EQ(m.mate_a[0], 0);
  EXPECT_EQ(m.mate_a[1], kInvalidVid);
}

TEST(HopcroftKarp, EligibleMaskSizeMismatchThrows) {
  const BipartiteGraph g = BipartiteGraph::from_edges(
      1, 1, std::vector<LEdge>{{0, 0, 1.0}});
  const std::vector<std::uint8_t> wrong = {1, 1};
  EXPECT_THROW(maximum_cardinality_matching(g, wrong), std::invalid_argument);
}

TEST(HopcroftKarp, LocallyDominantCardinalityIsHalfOfMaximum) {
  // The full statement of the paper's Section V cardinality guarantee,
  // tested against the true maximum (not just the max-weight matching).
  Xoshiro256 rng(262);
  for (int trial = 0; trial < 50; ++trial) {
    const auto g = random_bipartite(12, 12, 30, rng);
    const auto w = own_weights(g);
    const auto ld = locally_dominant_matching(g, w);
    std::vector<std::uint8_t> positive(
        static_cast<std::size_t>(g.num_edges()));
    for (eid_t e = 0; e < g.num_edges(); ++e) positive[e] = w[e] > 0.0;
    const auto max_card = maximum_cardinality_matching(g, positive);
    EXPECT_GE(ld.cardinality * 2, max_card.cardinality) << "trial " << trial;
  }
}

TEST(HopcroftKarp, LargerRandomGraphIsConsistent) {
  Xoshiro256 rng(363);
  const auto g = random_bipartite(300, 300, 2000, rng);
  const auto m = maximum_cardinality_matching(g);
  EXPECT_TRUE(is_valid_matching(g, m));
  // Koenig bound sanity: cannot exceed either side.
  EXPECT_LE(m.cardinality, 300);
  // Random graphs this dense have near-perfect matchings.
  EXPECT_GE(m.cardinality, 280);
}

}  // namespace
}  // namespace netalign
