// Checkpoint container + kill-resume semantics (docs/FORMATS.md
// "Checkpoint format", docs/ARCHITECTURE.md "Preemption & recovery").
//
// Two halves: the container itself (CRC vectors, byte round-trips,
// corruption/truncation rejection, atomic rotation with .prev fallback)
// and in-process resume equivalence for every solver -- a run stopped at
// iteration k and resumed from its checkpoint must reproduce the
// uninterrupted run's matching, objective, and history bit-identically.
// The out-of-process SIGKILL version of the same claim lives in
// tools/check_recovery.sh.
#include "io/checkpoint.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <fstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "dist/dist_bp.hpp"
#include "dist/dist_mr.hpp"
#include "matching/verify.hpp"
#include "netalign/belief_prop.hpp"
#include "netalign/isorank.hpp"
#include "netalign/klau_mr.hpp"
#include "netalign/synthetic.hpp"

namespace netalign {
namespace {

std::string tmp_path(const std::string& name) {
  return ::testing::TempDir() + name;
}

void remove_generations(const std::string& path) {
  std::remove(path.c_str());
  std::remove((path + ".prev").c_str());
  std::remove((path + ".tmp").c_str());
}

// --- CRC32 -----------------------------------------------------------------

TEST(Crc32, KnownVectors) {
  // The IEEE 802.3 check value: crc32("123456789") == 0xCBF43926.
  const char digits[] = "123456789";
  EXPECT_EQ(io::crc32(digits, 9), 0xCBF43926u);
  EXPECT_EQ(io::crc32(nullptr, 0), 0u);
  const char a[] = "a";
  EXPECT_EQ(io::crc32(a, 1), 0xE8B7BE43u);
}

TEST(Crc32, SeedChainsIncrementally) {
  const char data[] = "123456789";
  const std::uint32_t whole = io::crc32(data, 9);
  const std::uint32_t part = io::crc32(data, 4);
  EXPECT_EQ(io::crc32(data + 4, 5, part), whole);
}

// --- ByteWriter / ByteReader ----------------------------------------------

TEST(ByteCodec, ScalarAndVectorRoundTrip) {
  io::ByteWriter w;
  w.u8(0xAB);
  w.u32(0xDEADBEEFu);
  w.u64(0x0123456789ABCDEFull);
  w.i32(-42);
  w.i64(-1234567890123ll);
  w.f64(0.1);  // not exactly representable: the round-trip must be bitwise
  w.str("hello");
  w.pod_vector(std::vector<double>{1.5, -2.25, 3.0});
  w.pod_vector(std::vector<std::int32_t>{});

  io::ByteReader r(w.bytes());
  EXPECT_EQ(r.u8(), 0xAB);
  EXPECT_EQ(r.u32(), 0xDEADBEEFu);
  EXPECT_EQ(r.u64(), 0x0123456789ABCDEFull);
  EXPECT_EQ(r.i32(), -42);
  EXPECT_EQ(r.i64(), -1234567890123ll);
  EXPECT_EQ(r.f64(), 0.1);
  EXPECT_EQ(r.str(), "hello");
  EXPECT_EQ(r.pod_vector<double>(), (std::vector<double>{1.5, -2.25, 3.0}));
  EXPECT_TRUE(r.pod_vector<std::int32_t>().empty());
  EXPECT_TRUE(r.exhausted());
}

TEST(ByteCodec, ReadPastEndThrows) {
  io::ByteWriter w;
  w.u32(7);
  io::ByteReader r(w.bytes());
  EXPECT_EQ(r.u32(), 7u);
  EXPECT_THROW(r.u8(), std::runtime_error);
}

TEST(ByteCodec, HostileVectorCountThrows) {
  // A length prefix far beyond the bytes present must throw, not allocate
  // (and must not wrap when multiplied by sizeof(T)).
  io::ByteWriter w;
  w.u64(~0ull / 2);
  io::ByteReader r(w.bytes());
  EXPECT_THROW(r.pod_vector<double>(), std::runtime_error);
}

// --- Checkpoint container --------------------------------------------------

io::Checkpoint sample_checkpoint() {
  io::Checkpoint c;
  c.solver = "bp";
  io::ByteWriter state;
  state.pod_vector(std::vector<double>{1.0, 2.5, -3.125});
  c.add("state").payload = state.take();
  io::ByteWriter progress;
  progress.i32(17);
  c.add("progress").payload = progress.take();
  return c;
}

TEST(Checkpoint, SerializeDeserializeRoundTrip) {
  const io::Checkpoint c = sample_checkpoint();
  const auto bytes = io::serialize_checkpoint(c);
  const io::Checkpoint back = io::deserialize_checkpoint(bytes);
  EXPECT_EQ(back.solver, "bp");
  ASSERT_EQ(back.sections.size(), 2u);
  EXPECT_EQ(back.sections[0].name, "state");
  EXPECT_EQ(back.sections[0].payload, c.sections[0].payload);
  io::ByteReader r(back.section("progress").payload);
  EXPECT_EQ(r.i32(), 17);
  EXPECT_EQ(back.find("nope"), nullptr);
  EXPECT_THROW((void)back.section("nope"), std::runtime_error);
}

TEST(Checkpoint, RejectsBadMagic) {
  auto bytes = io::serialize_checkpoint(sample_checkpoint());
  bytes[0] ^= 0xFF;
  try {
    (void)io::deserialize_checkpoint(bytes);
    FAIL() << "expected throw";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("magic"), std::string::npos)
        << e.what();
  }
}

TEST(Checkpoint, RejectsHeaderCorruption) {
  auto bytes = io::serialize_checkpoint(sample_checkpoint());
  // Flip a bit inside the solver-name region of the header.
  bytes[13] ^= 0x01;
  EXPECT_THROW((void)io::deserialize_checkpoint(bytes), std::runtime_error);
}

TEST(Checkpoint, RejectsSectionCorruption) {
  auto bytes = io::serialize_checkpoint(sample_checkpoint());
  // Flip the very last payload byte: only a section CRC can catch it.
  bytes[bytes.size() - 1] ^= 0x80;
  try {
    (void)io::deserialize_checkpoint(bytes);
    FAIL() << "expected throw";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("CRC"), std::string::npos)
        << e.what();
  }
}

TEST(Checkpoint, RejectsTruncation) {
  const auto bytes = io::serialize_checkpoint(sample_checkpoint());
  for (const std::size_t keep : {0u, 4u, 12u}) {
    const std::vector<std::uint8_t> cut(bytes.begin(),
                                        bytes.begin() + keep);
    EXPECT_THROW((void)io::deserialize_checkpoint(cut), std::runtime_error);
  }
  const std::vector<std::uint8_t> almost(bytes.begin(), bytes.end() - 1);
  EXPECT_THROW((void)io::deserialize_checkpoint(almost), std::runtime_error);
}

TEST(Checkpoint, RejectsTrailingGarbage) {
  auto bytes = io::serialize_checkpoint(sample_checkpoint());
  bytes.push_back(0);
  EXPECT_THROW((void)io::deserialize_checkpoint(bytes), std::runtime_error);
}

TEST(Checkpoint, FileRoundTripAndRotation) {
  const std::string path = tmp_path("rotation.ckpt");
  remove_generations(path);

  io::Checkpoint gen1 = sample_checkpoint();
  io::write_checkpoint_file(path, gen1);
  io::Checkpoint gen2 = sample_checkpoint();
  io::ByteWriter w;
  w.i32(99);
  gen2.add("extra").payload = w.take();
  io::write_checkpoint_file(path, gen2);

  // Newest generation at path, previous generation at .prev.
  EXPECT_EQ(io::read_checkpoint_file(path).sections.size(), 3u);
  EXPECT_EQ(io::read_checkpoint_file(path + ".prev").sections.size(), 2u);

  bool used_previous = true;
  const auto got = io::read_checkpoint_with_fallback(path, &used_previous);
  EXPECT_FALSE(used_previous);
  EXPECT_EQ(got.sections.size(), 3u);
  remove_generations(path);
}

TEST(Checkpoint, FallbackToPreviousGeneration) {
  const std::string path = tmp_path("fallback.ckpt");
  remove_generations(path);
  io::write_checkpoint_file(path, sample_checkpoint());
  io::write_checkpoint_file(path, sample_checkpoint());

  // Corrupt the newest generation in place (simulates a torn write that
  // somehow survived the atomic rename, e.g. media corruption).
  {
    std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
    f.seekp(-1, std::ios::end);
    f.put('\x7f');
  }
  bool used_previous = false;
  const auto got = io::read_checkpoint_with_fallback(path, &used_previous);
  EXPECT_TRUE(used_previous);
  EXPECT_EQ(got.solver, "bp");
  remove_generations(path);
}

TEST(Checkpoint, BothGenerationsUnusableThrows) {
  const std::string path = tmp_path("nogen.ckpt");
  remove_generations(path);
  try {
    (void)io::read_checkpoint_with_fallback(path);
    FAIL() << "expected throw";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("both generations"),
              std::string::npos)
        << e.what();
  }
}

// --- Budget edges ----------------------------------------------------------

TEST(SolveBudget, ValidatesSettings) {
  SolveBudget bad;
  bad.deadline_seconds = -1.0;
  EXPECT_THROW(bad.validate("test"), std::invalid_argument);
  SolveBudget orphan;
  orphan.checkpoint_every = 5;  // no checkpoint_path
  EXPECT_THROW(orphan.validate("test"), std::invalid_argument);
  SolveBudget ok;
  ok.checkpoint_every = 5;
  ok.checkpoint_path = "x.ckpt";
  ok.deadline_seconds = 1.0;
  EXPECT_NO_THROW(ok.validate("test"));
}

// --- Solver resume equivalence ---------------------------------------------

SyntheticInstance small_instance(std::uint64_t seed) {
  PowerLawInstanceOptions opt;
  opt.n = 48;
  opt.seed = seed;
  opt.expected_degree = 3.0;
  return make_power_law_instance(opt);
}

/// Bitwise result comparison: the resumed run must be indistinguishable
/// from the uninterrupted one.
void expect_identical(const AlignResult& a, const AlignResult& b) {
  EXPECT_EQ(a.matching.mate_a, b.matching.mate_a);
  EXPECT_EQ(a.matching.mate_b, b.matching.mate_b);
  EXPECT_EQ(a.value.objective, b.value.objective);
  EXPECT_EQ(a.value.weight, b.value.weight);
  EXPECT_EQ(a.value.overlap, b.value.overlap);
  EXPECT_EQ(a.best_iteration, b.best_iteration);
  EXPECT_EQ(a.objective_history, b.objective_history);
  EXPECT_EQ(a.upper_history, b.upper_history);
}

TEST(ResumeEquivalence, BeliefProp) {
  const auto inst = small_instance(11);
  const auto S = SquaresMatrix::build(inst.problem);
  const std::string path = tmp_path("bp.ckpt");
  remove_generations(path);

  BeliefPropOptions full;
  full.max_iterations = 12;
  full.batch_size = 3;  // exercise the rounding-batch flush at snapshot
  const auto uninterrupted = belief_prop_align(inst.problem, S, full);

  BeliefPropOptions part = full;
  part.max_iterations = 5;
  part.budget.checkpoint_path = path;
  part.budget.checkpoint_every = 1;
  (void)belief_prop_align(inst.problem, S, part);

  BeliefPropOptions rest = full;
  rest.budget.resume_path = path;
  const auto resumed = belief_prop_align(inst.problem, S, rest);
  EXPECT_EQ(resumed.resumed_from, 5);
  EXPECT_EQ(resumed.iterations_completed, 12);
  expect_identical(uninterrupted, resumed);
  remove_generations(path);
}

TEST(ResumeEquivalence, KlauMr) {
  const auto inst = small_instance(12);
  const auto S = SquaresMatrix::build(inst.problem);
  const std::string path = tmp_path("mr.ckpt");
  remove_generations(path);

  KlauMrOptions full;
  full.max_iterations = 10;
  const auto uninterrupted = klau_mr_align(inst.problem, S, full);

  KlauMrOptions part = full;
  part.max_iterations = 4;
  part.budget.checkpoint_path = path;
  part.budget.checkpoint_every = 2;
  (void)klau_mr_align(inst.problem, S, part);

  KlauMrOptions rest = full;
  rest.budget.resume_path = path;
  const auto resumed = klau_mr_align(inst.problem, S, rest);
  EXPECT_EQ(resumed.resumed_from, 4);
  expect_identical(uninterrupted, resumed);
  EXPECT_EQ(uninterrupted.best_upper_bound, resumed.best_upper_bound);
  remove_generations(path);
}

TEST(ResumeEquivalence, IsoRank) {
  const auto inst = small_instance(13);
  const auto S = SquaresMatrix::build(inst.problem);
  const std::string path = tmp_path("isorank.ckpt");
  remove_generations(path);

  IsoRankOptions full;
  full.max_iterations = 20;
  full.tolerance = 0.0;  // fixed iteration count on both sides
  const auto uninterrupted = isorank_align(inst.problem, S, full);

  IsoRankOptions part = full;
  part.max_iterations = 7;
  part.budget.checkpoint_path = path;
  part.budget.checkpoint_every = 1;
  (void)isorank_align(inst.problem, S, part);

  IsoRankOptions rest = full;
  rest.budget.resume_path = path;
  const auto resumed = isorank_align(inst.problem, S, rest);
  EXPECT_EQ(resumed.resumed_from, 7);
  expect_identical(uninterrupted, resumed);
  remove_generations(path);
}

TEST(ResumeEquivalence, DistBp) {
  const auto inst = small_instance(14);
  const auto S = SquaresMatrix::build(inst.problem);
  const std::string path = tmp_path("dist_bp.ckpt");
  remove_generations(path);

  dist::DistBpOptions full;
  full.num_ranks = 3;
  full.max_iterations = 8;
  dist::DistBpStats full_stats;
  const auto uninterrupted =
      dist::distributed_belief_prop_align(inst.problem, S, full, &full_stats);

  dist::DistBpOptions part = full;
  part.max_iterations = 3;
  part.budget.checkpoint_path = path;
  part.budget.checkpoint_every = 1;
  (void)dist::distributed_belief_prop_align(inst.problem, S, part);

  dist::DistBpOptions rest = full;
  rest.budget.resume_path = path;
  dist::DistBpStats resumed_stats;
  const auto resumed = dist::distributed_belief_prop_align(inst.problem, S,
                                                           rest,
                                                           &resumed_stats);
  EXPECT_EQ(resumed.resumed_from, 3);
  expect_identical(uninterrupted, resumed);
  // BSP traffic continues across the restart instead of restarting at 0.
  EXPECT_EQ(resumed_stats.bsp.messages, full_stats.bsp.messages);
  EXPECT_EQ(resumed_stats.gather_bytes, full_stats.gather_bytes);
  remove_generations(path);
}

TEST(ResumeEquivalence, DistMr) {
  const auto inst = small_instance(15);
  const auto S = SquaresMatrix::build(inst.problem);
  const std::string path = tmp_path("dist_mr.ckpt");
  remove_generations(path);

  dist::DistMrOptions full;
  full.num_ranks = 3;
  full.max_iterations = 8;
  dist::DistMrStats full_stats;
  const auto uninterrupted =
      dist::distributed_klau_mr_align(inst.problem, S, full, &full_stats);

  dist::DistMrOptions part = full;
  part.max_iterations = 5;
  part.budget.checkpoint_path = path;
  part.budget.checkpoint_every = 1;
  (void)dist::distributed_klau_mr_align(inst.problem, S, part);

  dist::DistMrOptions rest = full;
  rest.budget.resume_path = path;
  dist::DistMrStats resumed_stats;
  const auto resumed =
      dist::distributed_klau_mr_align(inst.problem, S, rest, &resumed_stats);
  EXPECT_EQ(resumed.resumed_from, 5);
  expect_identical(uninterrupted, resumed);
  EXPECT_EQ(uninterrupted.best_upper_bound, resumed.best_upper_bound);
  EXPECT_EQ(resumed_stats.bsp.messages, full_stats.bsp.messages);
  remove_generations(path);
}

TEST(ResumeEquivalence, RepeatedResumesStillMatch) {
  // Resume, run two more iterations, checkpoint again, resume again: the
  // chain of three processes must equal one uninterrupted run.
  const auto inst = small_instance(16);
  const auto S = SquaresMatrix::build(inst.problem);
  const std::string path = tmp_path("chain.ckpt");
  remove_generations(path);

  KlauMrOptions full;
  full.max_iterations = 9;
  const auto uninterrupted = klau_mr_align(inst.problem, S, full);

  KlauMrOptions stage = full;
  stage.max_iterations = 3;
  stage.budget.checkpoint_path = path;
  stage.budget.checkpoint_every = 1;
  (void)klau_mr_align(inst.problem, S, stage);
  stage.max_iterations = 6;
  stage.budget.resume_path = path;
  (void)klau_mr_align(inst.problem, S, stage);
  stage.max_iterations = 9;
  const auto resumed = klau_mr_align(inst.problem, S, stage);
  EXPECT_EQ(resumed.resumed_from, 6);
  expect_identical(uninterrupted, resumed);
  remove_generations(path);
}

// --- Budget-stop edges -----------------------------------------------------

TEST(BudgetStop, DeadlineBeforeFirstIteration) {
  const auto inst = small_instance(17);
  const auto S = SquaresMatrix::build(inst.problem);
  const std::string path = tmp_path("deadline.ckpt");
  remove_generations(path);

  BeliefPropOptions opt;
  opt.max_iterations = 50;
  opt.budget.deadline_seconds = 1e-9;  // trips before iteration 1
  opt.budget.checkpoint_path = path;
  const auto r = belief_prop_align(inst.problem, S, opt);
  EXPECT_EQ(r.stopped_reason, StopReason::kDeadline);
  EXPECT_EQ(r.iterations_completed, 0);
  // Empty-but-valid matching, and a valid checkpoint of iteration 0.
  EXPECT_TRUE(is_valid_matching(inst.problem.L, r.matching));
  EXPECT_EQ(r.matching.cardinality, 0);
  const auto c = io::read_checkpoint_file(path);
  EXPECT_EQ(c.solver, "bp");
  remove_generations(path);
}

TEST(BudgetStop, ResumeFromIterationZeroMatchesFreshRun) {
  const auto inst = small_instance(18);
  const auto S = SquaresMatrix::build(inst.problem);
  const std::string path = tmp_path("zero.ckpt");
  remove_generations(path);

  KlauMrOptions fresh;
  fresh.max_iterations = 6;
  const auto direct = klau_mr_align(inst.problem, S, fresh);

  KlauMrOptions stopped = fresh;
  stopped.budget.deadline_seconds = 1e-9;
  stopped.budget.checkpoint_path = path;
  const auto r0 = klau_mr_align(inst.problem, S, stopped);
  EXPECT_EQ(r0.stopped_reason, StopReason::kDeadline);
  EXPECT_EQ(r0.iterations_completed, 0);

  KlauMrOptions resumed = fresh;
  resumed.budget.resume_path = path;
  const auto r = klau_mr_align(inst.problem, S, resumed);
  EXPECT_EQ(r.resumed_from, 0);
  expect_identical(direct, r);
  remove_generations(path);
}

TEST(BudgetStop, ResumePastMaxIterationsCompletesWithRestoredBest) {
  // max_iterations already reached by the checkpoint: zero loop
  // iterations run, and the result is finalized purely from the restored
  // tracker (the SolveBudget max_iterations==0 edge in satellite terms --
  // the solvers themselves reject max_iterations < 1 up front).
  const auto inst = small_instance(19);
  const auto S = SquaresMatrix::build(inst.problem);
  const std::string path = tmp_path("past.ckpt");
  remove_generations(path);

  KlauMrOptions opt;
  opt.max_iterations = 5;
  opt.budget.checkpoint_path = path;
  opt.budget.checkpoint_every = 1;
  const auto first = klau_mr_align(inst.problem, S, opt);

  KlauMrOptions again = opt;
  again.budget.resume_path = path;
  const auto r = klau_mr_align(inst.problem, S, again);
  EXPECT_EQ(r.stopped_reason, StopReason::kCompleted);
  EXPECT_EQ(r.resumed_from, 5);
  EXPECT_EQ(r.iterations_completed, 5);
  expect_identical(first, r);
  remove_generations(path);
}

TEST(BudgetStop, StopLatchReturnsBestSoFar) {
  const auto inst = small_instance(20);
  const auto S = SquaresMatrix::build(inst.problem);
  std::atomic<bool> latch{true};  // already tripped, like a SIGTERM at t=0
  BeliefPropOptions opt;
  opt.max_iterations = 50;
  opt.budget.stop_flag = &latch;
  const auto r = belief_prop_align(inst.problem, S, opt);
  EXPECT_EQ(r.stopped_reason, StopReason::kSignal);
  EXPECT_EQ(r.iterations_completed, 0);
  EXPECT_TRUE(is_valid_matching(inst.problem.L, r.matching));
}

TEST(BudgetStop, MetaMismatchIsRejected) {
  const auto inst = small_instance(21);
  const auto other = small_instance(22);
  const auto S = SquaresMatrix::build(inst.problem);
  const auto So = SquaresMatrix::build(other.problem);
  const std::string path = tmp_path("meta.ckpt");
  remove_generations(path);

  KlauMrOptions opt;
  opt.max_iterations = 3;
  opt.budget.checkpoint_path = path;
  opt.budget.checkpoint_every = 1;
  (void)klau_mr_align(inst.problem, S, opt);

  // Wrong solver entirely.
  BeliefPropOptions bp;
  bp.max_iterations = 3;
  bp.budget.resume_path = path;
  EXPECT_THROW((void)belief_prop_align(inst.problem, S, bp),
               std::runtime_error);
  // Right solver, different problem.
  KlauMrOptions wrong;
  wrong.max_iterations = 3;
  wrong.budget.resume_path = path;
  EXPECT_THROW((void)klau_mr_align(other.problem, So, wrong),
               std::runtime_error);
  remove_generations(path);
}

TEST(BudgetStop, FaultedDistRunRefusesCheckpointing) {
  const auto inst = small_instance(23);
  const auto S = SquaresMatrix::build(inst.problem);
  dist::DistMrOptions opt;
  opt.max_iterations = 3;
  opt.faults.drop_rate = 0.1;
  opt.budget.checkpoint_path = tmp_path("refused.ckpt");
  EXPECT_THROW((void)dist::distributed_klau_mr_align(inst.problem, S, opt),
               std::invalid_argument);
  dist::DistBpOptions bp;
  bp.max_iterations = 3;
  bp.faults.stall_rate = 0.1;
  bp.budget.resume_path = tmp_path("refused.ckpt");
  EXPECT_THROW(
      (void)dist::distributed_belief_prop_align(inst.problem, S, bp),
      std::invalid_argument);
}

TEST(BudgetStop, DeadlineRunKeepsPartialHistory) {
  // A mid-run deadline keeps everything computed so far: history length
  // equals iterations_completed and the checkpoint stores that iteration.
  const auto inst = small_instance(24);
  const auto S = SquaresMatrix::build(inst.problem);
  const std::string path = tmp_path("midrun.ckpt");
  remove_generations(path);

  KlauMrOptions part;
  part.max_iterations = 7;
  part.budget.checkpoint_path = path;
  part.budget.checkpoint_every = 1;
  KlauMrOptions probe = part;
  probe.max_iterations = 3;
  const auto r = klau_mr_align(inst.problem, S, probe);
  EXPECT_EQ(r.stopped_reason, StopReason::kCompleted);
  EXPECT_EQ(static_cast<int>(r.objective_history.size()),
            r.iterations_completed);
  remove_generations(path);
}

}  // namespace
}  // namespace netalign
