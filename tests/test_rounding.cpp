#include "netalign/rounding.hpp"

#include <gtest/gtest.h>

#include <limits>

#include "netalign/synthetic.hpp"
#include "util/prng.hpp"

namespace netalign {
namespace {

SyntheticInstance make_instance(std::uint64_t seed) {
  PowerLawInstanceOptions opt;
  opt.n = 70;
  opt.seed = seed;
  opt.expected_degree = 3.0;
  return make_power_law_instance(opt);
}

TEST(MatcherKindNames, RoundTrip) {
  for (auto k : {MatcherKind::kExact, MatcherKind::kLocallyDominant,
                 MatcherKind::kGreedy, MatcherKind::kSuitor}) {
    EXPECT_EQ(matcher_from_string(to_string(k)), k);
  }
  EXPECT_EQ(matcher_from_string("ld"), MatcherKind::kLocallyDominant);
  EXPECT_EQ(matcher_from_string("locally-dominant"),
            MatcherKind::kLocallyDominant);
  EXPECT_THROW((void)matcher_from_string("bogus"),
               std::invalid_argument);
}

TEST(RoundHeuristic, ScoresAgainstProblemWeightsNotHeuristic) {
  // Rounding weights g differ from L's weights w: the objective must use w.
  const auto inst = make_instance(10);
  const auto& p = inst.problem;
  const auto S = SquaresMatrix::build(p);
  Xoshiro256 rng(1);
  std::vector<weight_t> g(static_cast<std::size_t>(p.L.num_edges()));
  for (auto& v : g) v = rng.uniform(0.0, 10.0);

  const auto out = round_heuristic(p, S, g, MatcherKind::kExact);
  // Matching weight term counts L's unit weights => equals cardinality.
  EXPECT_DOUBLE_EQ(out.value.weight,
                   static_cast<double>(out.matching.cardinality));
  EXPECT_DOUBLE_EQ(out.value.objective,
                   p.alpha * out.value.weight + p.beta * out.value.overlap);
}

TEST(RoundHeuristic, ExactBeatsOrTiesApproxOnHeuristicWeights) {
  const auto inst = make_instance(11);
  const auto& p = inst.problem;
  const auto S = SquaresMatrix::build(p);
  Xoshiro256 rng(2);
  std::vector<weight_t> g(static_cast<std::size_t>(p.L.num_edges()));
  for (auto& v : g) v = rng.uniform(0.0, 1.0);
  const auto exact = run_matcher(p.L, g, MatcherKind::kExact);
  const auto approx = run_matcher(p.L, g, MatcherKind::kLocallyDominant);
  // On the heuristic weights the exact matcher is optimal by definition.
  weight_t exact_g = 0.0, approx_g = 0.0;
  for (vid_t a = 0; a < p.L.num_a(); ++a) {
    if (exact.mate_a[a] != kInvalidVid) {
      exact_g += g[p.L.find_edge(a, exact.mate_a[a])];
    }
    if (approx.mate_a[a] != kInvalidVid) {
      approx_g += g[p.L.find_edge(a, approx.mate_a[a])];
    }
  }
  EXPECT_GE(exact_g, approx_g - 1e-9);
  EXPECT_GE(approx_g, 0.5 * exact_g - 1e-9);
}

TEST(RunMatcher, RejectsNonFiniteWeights) {
  const auto inst = make_instance(12);
  std::vector<weight_t> g(
      static_cast<std::size_t>(inst.problem.L.num_edges()), 1.0);
  g[0] = std::numeric_limits<weight_t>::quiet_NaN();
  EXPECT_THROW(run_matcher(inst.problem.L, g, MatcherKind::kExact),
               std::invalid_argument);
  g[0] = kPosInf;
  EXPECT_THROW(run_matcher(inst.problem.L, g, MatcherKind::kLocallyDominant),
               std::invalid_argument);
}

TEST(BestSolutionTracker, KeepsTheBestAndItsVector) {
  BestSolutionTracker tracker;
  EXPECT_FALSE(tracker.has_solution());

  RoundOutcome a;
  a.value.objective = 5.0;
  std::vector<weight_t> ga = {1.0, 2.0};
  EXPECT_TRUE(tracker.offer(a, ga, 1));
  EXPECT_TRUE(tracker.has_solution());
  EXPECT_EQ(tracker.best_iteration(), 1);

  RoundOutcome worse;
  worse.value.objective = 3.0;
  std::vector<weight_t> gw = {9.0, 9.0};
  EXPECT_FALSE(tracker.offer(worse, gw, 2));
  EXPECT_EQ(tracker.best_iteration(), 1);
  EXPECT_EQ(tracker.best_heuristic(), ga);

  RoundOutcome better;
  better.value.objective = 7.0;
  std::vector<weight_t> gb = {4.0};
  EXPECT_TRUE(tracker.offer(better, gb, 3));
  EXPECT_EQ(tracker.best_iteration(), 3);
  EXPECT_EQ(tracker.best().value.objective, 7.0);
  EXPECT_EQ(tracker.best_heuristic(), gb);
}

TEST(BestSolutionTracker, TiesKeepTheEarlierSolution) {
  BestSolutionTracker tracker;
  RoundOutcome a;
  a.value.objective = 5.0;
  std::vector<weight_t> g = {1.0};
  EXPECT_TRUE(tracker.offer(a, g, 1));
  EXPECT_FALSE(tracker.offer(a, g, 2));
  EXPECT_EQ(tracker.best_iteration(), 1);
}

}  // namespace
}  // namespace netalign
