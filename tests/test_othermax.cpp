#include "netalign/othermax.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "helpers.hpp"

namespace netalign {
namespace {

using testing::random_bipartite;

/// Brute-force reference: for edge e, the max of g over all other edges
/// sharing the chosen side's vertex, clamped at 0.
std::vector<weight_t> brute_othermax(const BipartiteGraph& L,
                                     std::span<const weight_t> g,
                                     bool by_row) {
  std::vector<weight_t> out(static_cast<std::size_t>(L.num_edges()));
  for (eid_t e = 0; e < L.num_edges(); ++e) {
    weight_t best = kNegInf;
    for (eid_t f = 0; f < L.num_edges(); ++f) {
      if (f == e) continue;
      const bool shares = by_row ? (L.edge_a(f) == L.edge_a(e))
                                 : (L.edge_b(f) == L.edge_b(e));
      if (shares) best = std::max(best, g[f]);
    }
    out[e] = std::max(best, 0.0);
  }
  return out;
}

TEST(Othermax, RowMatchesBruteForce) {
  Xoshiro256 rng(42);
  for (int trial = 0; trial < 50; ++trial) {
    const auto L = random_bipartite(7, 6, 20, rng);
    std::vector<weight_t> g(static_cast<std::size_t>(L.num_edges()));
    for (auto& v : g) v = rng.uniform(-2.0, 2.0);
    std::vector<weight_t> out(g.size());
    othermax_row(L, g, out);
    const auto expected = brute_othermax(L, g, /*by_row=*/true);
    for (eid_t e = 0; e < L.num_edges(); ++e) {
      EXPECT_DOUBLE_EQ(out[e], expected[e]) << "trial " << trial;
    }
  }
}

TEST(Othermax, ColMatchesBruteForce) {
  Xoshiro256 rng(43);
  for (int trial = 0; trial < 50; ++trial) {
    const auto L = random_bipartite(6, 7, 20, rng);
    std::vector<weight_t> g(static_cast<std::size_t>(L.num_edges()));
    for (auto& v : g) v = rng.uniform(-2.0, 2.0);
    std::vector<weight_t> out(g.size());
    othermax_col(L, g, out);
    const auto expected = brute_othermax(L, g, /*by_row=*/false);
    for (eid_t e = 0; e < L.num_edges(); ++e) {
      EXPECT_DOUBLE_EQ(out[e], expected[e]) << "trial " << trial;
    }
  }
}

TEST(Othermax, SingletonRowGivesZero) {
  // A row with one edge has an empty "other" set; bound_{0,inf} of an
  // empty max is 0.
  const std::vector<LEdge> edges = {{0, 0, 5.0}};
  const auto L = BipartiteGraph::from_edges(1, 1, edges);
  std::vector<weight_t> g = {5.0}, out(1);
  othermax_row(L, g, out);
  EXPECT_EQ(out[0], 0.0);
  othermax_col(L, g, out);
  EXPECT_EQ(out[0], 0.0);
}

TEST(Othermax, ArgmaxGetsSecondMax) {
  // Row of three edges with values 3, 7, 5: the 7-edge sees 5, others see 7.
  const std::vector<LEdge> edges = {{0, 0, 1.0}, {0, 1, 1.0}, {0, 2, 1.0}};
  const auto L = BipartiteGraph::from_edges(1, 3, edges);
  std::vector<weight_t> g = {3.0, 7.0, 5.0}, out(3);
  othermax_row(L, g, out);
  EXPECT_EQ(out[0], 7.0);
  EXPECT_EQ(out[1], 5.0);
  EXPECT_EQ(out[2], 7.0);
}

TEST(Othermax, TiedMaximaSeeEachOther) {
  const std::vector<LEdge> edges = {{0, 0, 1.0}, {0, 1, 1.0}};
  const auto L = BipartiteGraph::from_edges(1, 2, edges);
  std::vector<weight_t> g = {4.0, 4.0}, out(2);
  othermax_row(L, g, out);
  EXPECT_EQ(out[0], 4.0);
  EXPECT_EQ(out[1], 4.0);
}

TEST(Othermax, NegativeValuesClampToZero) {
  const std::vector<LEdge> edges = {{0, 0, 1.0}, {0, 1, 1.0}};
  const auto L = BipartiteGraph::from_edges(1, 2, edges);
  std::vector<weight_t> g = {-1.0, -2.0}, out(2);
  othermax_row(L, g, out);
  EXPECT_EQ(out[0], 0.0);  // max of others is -2, clamped to 0
  EXPECT_EQ(out[1], 0.0);
}

TEST(Othermax, SingletonRowSubReturnsDUnchanged) {
  // The fused subtraction on a single-entry row: othermax is 0 (empty
  // "other" set under bound_{0,inf}), so out = d - max(0, 0) = d exactly.
  const std::vector<LEdge> edges = {{0, 0, 5.0}};
  const auto L = BipartiteGraph::from_edges(1, 1, edges);
  std::vector<weight_t> g = {5.0}, d = {3.25}, out(1);
  othermax_row_sub(L, g, d, out);
  EXPECT_EQ(out[0], 3.25);
  othermax_col_sub(L, g, d, out);
  EXPECT_EQ(out[0], 3.25);
}

TEST(Othermax, SubVariantsBitIdenticalToUnfused) {
  // othermax_{row,col}_sub must equal othermax_{row,col} followed by
  // out = d - max(om, 0) bit-for-bit: BP's fused Step 3 relies on it
  // (test_dist_bp compares objective histories exactly).
  Xoshiro256 rng(44);
  for (int trial = 0; trial < 50; ++trial) {
    const auto L = random_bipartite(7, 6, 20, rng);
    const auto n = static_cast<std::size_t>(L.num_edges());
    std::vector<weight_t> g(n), d(n);
    for (auto& v : g) v = rng.uniform(-2.0, 2.0);
    for (auto& v : d) v = rng.uniform(-2.0, 2.0);
    std::vector<weight_t> om(n), expected(n), fused(n);
    for (const bool by_row : {true, false}) {
      by_row ? othermax_row(L, g, om) : othermax_col(L, g, om);
      for (std::size_t e = 0; e < n; ++e) {
        expected[e] = d[e] - std::max(om[e], 0.0);
      }
      by_row ? othermax_row_sub(L, g, d, fused)
             : othermax_col_sub(L, g, d, fused);
      for (std::size_t e = 0; e < n; ++e) {
        EXPECT_EQ(fused[e], expected[e]) << "trial " << trial;
      }
    }
  }
}

TEST(Othermax, SubSizeMismatchThrows) {
  const auto L = BipartiteGraph::from_edges(1, 1,
                                            std::vector<LEdge>{{0, 0, 1.0}});
  std::vector<weight_t> g = {1.0}, out(1);
  std::vector<weight_t> bad_d(2);
  EXPECT_THROW(othermax_row_sub(L, g, bad_d, out), std::invalid_argument);
  EXPECT_THROW(othermax_row_sub(L, g, g, g), std::invalid_argument);
}

TEST(Othermax, SizeMismatchThrows) {
  const auto L = BipartiteGraph::from_edges(1, 1,
                                            std::vector<LEdge>{{0, 0, 1.0}});
  std::vector<weight_t> g = {1.0};
  std::vector<weight_t> bad(2);
  EXPECT_THROW(othermax_row(L, g, bad), std::invalid_argument);
}

TEST(Othermax, InPlaceCallRejected) {
  const auto L = BipartiteGraph::from_edges(1, 1,
                                            std::vector<LEdge>{{0, 0, 1.0}});
  std::vector<weight_t> g = {1.0};
  EXPECT_THROW(othermax_row(L, g, g), std::invalid_argument);
}

}  // namespace
}  // namespace netalign
