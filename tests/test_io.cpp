#include <gtest/gtest.h>

#include <cstdio>
#include <limits>
#include <sstream>
#include <stdexcept>
#include <string>

#include "graph/generators.hpp"
#include "io/edge_list.hpp"
#include "io/problem_io.hpp"
#include "io/smat.hpp"
#include "io/validate.hpp"
#include "netalign/synthetic.hpp"
#include "util/prng.hpp"

namespace netalign {
namespace {

// Runs `fn` and returns the thrown runtime_error's message ("" if it did
// not throw), so tests can assert on the diagnostic text.
template <typename Fn>
std::string error_of(Fn&& fn) {
  try {
    fn();
  } catch (const std::runtime_error& e) {
    return e.what();
  }
  return "";
}

std::string temp_path(const char* name) {
  return ::testing::TempDir() + name;
}

TEST(Smat, RoundTripsThroughText) {
  const std::vector<CooEntry> entries = {
      {0, 1, 1.5}, {2, 0, -2.0}, {2, 2, 0.25}};
  const CsrMatrix m = CsrMatrix::from_coo(3, 3, entries);
  std::stringstream ss;
  write_smat(ss, m);
  const CsrMatrix r = read_smat(ss);
  EXPECT_EQ(r.num_rows(), 3);
  EXPECT_EQ(r.num_cols(), 3);
  ASSERT_EQ(r.num_nonzeros(), 3);
  for (vid_t row = 0; row < 3; ++row) {
    for (eid_t k = m.row_begin(row); k < m.row_end(row); ++k) {
      const eid_t k2 = r.find(row, m.col_idx()[k]);
      ASSERT_NE(k2, kInvalidEid);
      EXPECT_DOUBLE_EQ(r.values()[k2], m.values()[k]);
    }
  }
}

TEST(Smat, HeaderParses) {
  std::stringstream ss("2 3 1\n0 2 4.5\n");
  const CsrMatrix m = read_smat(ss);
  EXPECT_EQ(m.num_rows(), 2);
  EXPECT_EQ(m.num_cols(), 3);
  EXPECT_EQ(m.values()[0], 4.5);
}

TEST(Smat, TruncatedInputThrows) {
  std::stringstream ss("2 2 2\n0 0 1.0\n");
  EXPECT_THROW(read_smat(ss), std::runtime_error);
}

TEST(Smat, BadHeaderThrows) {
  std::stringstream ss("hello\n");
  EXPECT_THROW(read_smat(ss), std::runtime_error);
}

TEST(Smat, MissingFileThrows) {
  EXPECT_THROW(read_smat_file("/nonexistent/path.smat"), std::runtime_error);
}

TEST(EdgeList, RoundTripsThroughText) {
  Xoshiro256 rng(3);
  const Graph g = erdos_renyi(50, 0.1, rng);
  std::stringstream ss;
  write_edge_list(ss, g);
  const Graph r = read_edge_list(ss, 50);
  EXPECT_EQ(r.num_edges(), g.num_edges());
  for (const auto& [u, v] : g.edge_list()) EXPECT_TRUE(r.has_edge(u, v));
}

TEST(EdgeList, SkipsCommentsAndBlankLines) {
  std::stringstream ss("# comment\n\n0 1\n  # indented comment\n1 2\n");
  const Graph g = read_edge_list(ss);
  EXPECT_EQ(g.num_vertices(), 3);
  EXPECT_EQ(g.num_edges(), 2);
}

TEST(EdgeList, InfersVertexCount) {
  std::stringstream ss("0 7\n");
  const Graph g = read_edge_list(ss);
  EXPECT_EQ(g.num_vertices(), 8);
}

TEST(EdgeList, MalformedLineThrows) {
  std::stringstream ss("0 not-a-number\n");
  EXPECT_THROW(read_edge_list(ss), std::runtime_error);
}

TEST(EdgeList, NegativeIdThrows) {
  std::stringstream ss("0 -3\n");
  EXPECT_THROW(read_edge_list(ss), std::runtime_error);
}

TEST(ProblemIo, RoundTripsSyntheticInstance) {
  PowerLawInstanceOptions opt;
  opt.n = 60;
  opt.seed = 77;
  const auto inst = make_power_law_instance(opt);
  std::stringstream ss;
  write_problem(ss, inst.problem);
  const NetAlignProblem r = read_problem(ss);

  EXPECT_EQ(r.name, inst.problem.name);
  EXPECT_EQ(r.alpha, inst.problem.alpha);
  EXPECT_EQ(r.beta, inst.problem.beta);
  EXPECT_EQ(r.A.num_edges(), inst.problem.A.num_edges());
  EXPECT_EQ(r.B.num_edges(), inst.problem.B.num_edges());
  ASSERT_EQ(r.L.num_edges(), inst.problem.L.num_edges());
  for (eid_t e = 0; e < r.L.num_edges(); ++e) {
    EXPECT_EQ(r.L.edge_a(e), inst.problem.L.edge_a(e));
    EXPECT_EQ(r.L.edge_b(e), inst.problem.L.edge_b(e));
    EXPECT_DOUBLE_EQ(r.L.edge_weight(e), inst.problem.L.edge_weight(e));
  }
}

TEST(ProblemIo, RejectsWrongMagic) {
  std::stringstream ss("NOT-A-PROBLEM 1\n");
  EXPECT_THROW(read_problem(ss), std::runtime_error);
}

TEST(ProblemIo, RejectsWrongVersion) {
  std::stringstream ss("NETALIGN-PROBLEM 99\n");
  EXPECT_THROW(read_problem(ss), std::runtime_error);
}

TEST(ProblemIo, RejectsTruncatedBody) {
  std::stringstream ss("NETALIGN-PROBLEM 1\nname x\nalpha 1 beta 2\n"
                       "graphA 3 5\n0 1\n");
  EXPECT_THROW(read_problem(ss), std::runtime_error);
}

// --- validate.hpp helpers, exercised directly ---------------------------

TEST(IoValidate, AtByteReportsPositionEvenAfterFailedExtraction) {
  std::stringstream ss("12 oops");
  int v = 0;
  ss >> v;       // consumes "12"
  ss >> v;       // fails on "oops"
  ASSERT_TRUE(ss.fail());
  const std::string suffix = io::at_byte(ss);
  EXPECT_NE(suffix.find("(at byte"), std::string::npos) << suffix;
  EXPECT_TRUE(ss.fail()) << "at_byte must restore the stream state";
}

TEST(IoValidate, FailAppendsBytePosition) {
  std::stringstream ss("abcdef");
  std::string tok;
  ss >> tok;
  const std::string msg = error_of([&] { io::fail(ss, "loader: boom"); });
  EXPECT_NE(msg.find("loader: boom"), std::string::npos) << msg;
  EXPECT_NE(msg.find("(at byte 6)"), std::string::npos) << msg;
}

TEST(IoValidate, CheckRecordCountRejectsNegative) {
  std::stringstream ss("");
  const std::string msg =
      error_of([&] { io::check_record_count(ss, -3, 4, "loader"); });
  EXPECT_NE(msg.find("negative count -3"), std::string::npos) << msg;
}

TEST(IoValidate, CheckRecordCountRejectsAllocationBomb) {
  std::stringstream ss("0 0\n0 1\n");
  const std::string msg = error_of(
      [&] { io::check_record_count(ss, std::int64_t{1} << 60, 3, "loader"); });
  EXPECT_NE(msg.find("cannot fit"), std::string::npos) << msg;
}

TEST(IoValidate, CheckRecordCountAcceptsPlausibleCounts) {
  std::stringstream ss("0 0\n0 1\n");
  io::check_record_count(ss, 2, 3, "loader");
  // Position must be restored so record parsing resumes where it was.
  int a = -1, b = -1;
  ss >> a >> b;
  EXPECT_EQ(a, 0);
  EXPECT_EQ(b, 0);
}

TEST(IoValidate, RequireFiniteRejectsNanAndInf) {
  std::stringstream ss;
  EXPECT_THROW(io::require_finite(
                   ss, std::numeric_limits<double>::quiet_NaN(), "loader: w"),
               std::runtime_error);
  EXPECT_THROW(io::require_finite(
                   ss, std::numeric_limits<double>::infinity(), "loader: w"),
               std::runtime_error);
  io::require_finite(ss, 1.0, "loader: w");  // finite passes
}

// --- every loader throw path --------------------------------------------

TEST(Smat, NegativeDimensionThrows) {
  std::stringstream ss("-1 2 0\n");
  EXPECT_THROW(read_smat(ss), std::runtime_error);
}

TEST(Smat, NegativeNnzThrows) {
  std::stringstream ss("2 2 -1\n");
  const std::string msg = error_of([&] { read_smat(ss); });
  EXPECT_NE(msg.find("negative count"), std::string::npos) << msg;
}

TEST(Smat, AllocationBombHeaderThrows) {
  // 10^9 entries declared, a dozen bytes present: must be rejected before
  // the reserve, not by running out of input a gigabyte later.
  std::stringstream ss("2 2 1000000000\n0 0 1.0\n");
  const std::string msg = error_of([&] { read_smat(ss); });
  EXPECT_NE(msg.find("cannot fit"), std::string::npos) << msg;
}

TEST(Smat, TruncatedEntryReportsIndexAndByte) {
  // Trailing spaces keep the byte budget plausible so the failure is the
  // actual truncated read, not the count guard.
  std::stringstream ss("2 2 2\n0 0 1.0\n                \n");
  const std::string msg = error_of([&] { read_smat(ss); });
  EXPECT_NE(msg.find("entry 1"), std::string::npos) << msg;
  EXPECT_NE(msg.find("(at byte"), std::string::npos) << msg;
}

TEST(Smat, TextualNanValueThrows) {
  std::stringstream ss("1 1 1\n0 0 nan\n");
  EXPECT_THROW(read_smat(ss), std::runtime_error);
}

TEST(Smat, WriteFileToBadPathThrows) {
  const std::vector<CooEntry> none;
  EXPECT_THROW(write_smat_file("/nonexistent/dir/out.smat",
                               CsrMatrix::from_coo(1, 1, none)),
               std::runtime_error);
}

TEST(Smat, FileRoundTrip) {
  const std::vector<CooEntry> entries = {{0, 1, 1.5}, {1, 2, -0.5}};
  const CsrMatrix m = CsrMatrix::from_coo(2, 3, entries);
  const std::string path = temp_path("roundtrip.smat");
  write_smat_file(path, m);
  const CsrMatrix r = read_smat_file(path);
  EXPECT_EQ(r.num_rows(), 2);
  EXPECT_EQ(r.num_nonzeros(), 2);
  EXPECT_DOUBLE_EQ(r.values()[r.find(1, 2)], -0.5);
  std::remove(path.c_str());
}

TEST(EdgeList, MalformedLineQuotesContent) {
  std::stringstream ss("0 1\n0 not-a-number\n");
  const std::string msg = error_of([&] { read_edge_list(ss); });
  EXPECT_NE(msg.find("line 2"), std::string::npos) << msg;
  EXPECT_NE(msg.find("'0 not-a-number'"), std::string::npos) << msg;
}

TEST(EdgeList, MalformedLineContentIsTruncated) {
  std::stringstream ss("x" + std::string(300, 'y') + "\n");
  const std::string msg = error_of([&] { read_edge_list(ss); });
  EXPECT_NE(msg.find("...'"), std::string::npos) << msg;
  EXPECT_LT(msg.size(), 200u) << msg;
}

TEST(EdgeList, NegativeIdQuotesContent) {
  std::stringstream ss("0 -3\n");
  const std::string msg = error_of([&] { read_edge_list(ss); });
  EXPECT_NE(msg.find("'0 -3'"), std::string::npos) << msg;
}

TEST(EdgeList, MissingFileThrows) {
  EXPECT_THROW(read_edge_list_file("/nonexistent/path.txt"),
               std::runtime_error);
}

TEST(EdgeList, WriteFileToBadPathThrows) {
  EXPECT_THROW(write_edge_list_file("/nonexistent/dir/out.txt",
                                    Graph::from_edges(1, {})),
               std::runtime_error);
}

TEST(EdgeList, FileRoundTrip) {
  Xoshiro256 rng(9);
  const Graph g = erdos_renyi(20, 0.2, rng);
  const std::string path = temp_path("roundtrip.edges");
  write_edge_list_file(path, g);
  const Graph r = read_edge_list_file(path, 20);
  EXPECT_EQ(r.num_edges(), g.num_edges());
  std::remove(path.c_str());
}

TEST(ProblemIo, RejectsMissingToken) {
  std::stringstream ss("NETALIGN-PROBLEM 1\nname x\nalpha 1 gamma 2\n");
  const std::string msg = error_of([&] { read_problem(ss); });
  EXPECT_NE(msg.find("expected token 'beta'"), std::string::npos) << msg;
  EXPECT_NE(msg.find("(at byte"), std::string::npos) << msg;
}

TEST(ProblemIo, RejectsBadName) {
  std::stringstream ss("NETALIGN-PROBLEM 1\nname");
  EXPECT_THROW(read_problem(ss), std::runtime_error);
}

TEST(ProblemIo, RejectsNonNumericAlpha) {
  std::stringstream ss("NETALIGN-PROBLEM 1\nname x\nalpha huge beta 1\n");
  EXPECT_THROW(read_problem(ss), std::runtime_error);
}

TEST(ProblemIo, RejectsNonNumericBeta) {
  std::stringstream ss("NETALIGN-PROBLEM 1\nname x\nalpha 1 beta ?\n");
  EXPECT_THROW(read_problem(ss), std::runtime_error);
}

TEST(ProblemIo, RejectsBadGraphHeader) {
  std::stringstream ss("NETALIGN-PROBLEM 1\nname x\nalpha 1 beta 2\n"
                       "graphA three 5\n");
  const std::string msg = error_of([&] { read_problem(ss); });
  EXPECT_NE(msg.find("graphA header"), std::string::npos) << msg;
}

TEST(ProblemIo, RejectsNegativeGraphVertexCount) {
  std::stringstream ss("NETALIGN-PROBLEM 1\nname x\nalpha 1 beta 2\n"
                       "graphA -4 0\n");
  const std::string msg = error_of([&] { read_problem(ss); });
  EXPECT_NE(msg.find("negative graphA vertex count"), std::string::npos)
      << msg;
}

TEST(ProblemIo, RejectsGraphAllocationBombHeader) {
  std::stringstream ss("NETALIGN-PROBLEM 1\nname x\nalpha 1 beta 2\n"
                       "graphA 3 888888888\n0 1\n");
  const std::string msg = error_of([&] { read_problem(ss); });
  EXPECT_NE(msg.find("cannot fit"), std::string::npos) << msg;
}

TEST(ProblemIo, ReportsTruncatedGraphEdgeList) {
  std::stringstream ss("NETALIGN-PROBLEM 1\nname x\nalpha 1 beta 2\n"
                       "graphA 3 2\n0 1\n            \n");
  const std::string msg = error_of([&] { read_problem(ss); });
  EXPECT_NE(msg.find("graphA edge list at edge 1"), std::string::npos) << msg;
}

TEST(ProblemIo, RejectsBadLHeader) {
  std::stringstream ss("NETALIGN-PROBLEM 1\nname x\nalpha 1 beta 2\n"
                       "graphA 1 0\ngraphB 1 0\nL x 1 0\n");
  const std::string msg = error_of([&] { read_problem(ss); });
  EXPECT_NE(msg.find("bad L header"), std::string::npos) << msg;
}

TEST(ProblemIo, RejectsNegativeLDimension) {
  std::stringstream ss("NETALIGN-PROBLEM 1\nname x\nalpha 1 beta 2\n"
                       "graphA 1 0\ngraphB 1 0\nL -1 1 0\n");
  const std::string msg = error_of([&] { read_problem(ss); });
  EXPECT_NE(msg.find("negative L dimension"), std::string::npos) << msg;
}

TEST(ProblemIo, RejectsLAllocationBombHeader) {
  std::stringstream ss("NETALIGN-PROBLEM 1\nname x\nalpha 1 beta 2\n"
                       "graphA 1 0\ngraphB 1 0\nL 1 1 777777777\n0 0 1.0\n");
  const std::string msg = error_of([&] { read_problem(ss); });
  EXPECT_NE(msg.find("cannot fit"), std::string::npos) << msg;
}

TEST(ProblemIo, ReportsTruncatedLEdgeList) {
  std::stringstream ss("NETALIGN-PROBLEM 1\nname x\nalpha 1 beta 2\n"
                       "graphA 1 0\ngraphB 1 0\nL 1 1 2\n0 0 1.0\n"
                       "                \n");
  const std::string msg = error_of([&] { read_problem(ss); });
  EXPECT_NE(msg.find("L edge list at edge 1"), std::string::npos) << msg;
}

TEST(ProblemIo, RejectsTextualNanWeight) {
  std::stringstream ss("NETALIGN-PROBLEM 1\nname x\nalpha 1 beta 2\n"
                       "graphA 1 0\ngraphB 1 0\nL 1 1 1\n0 0 nan\n");
  EXPECT_THROW(read_problem(ss), std::runtime_error);
}

TEST(ProblemIo, RejectsInconsistentDimensions) {
  // L claims 3 A-side vertices while graphA has 2.
  std::stringstream ss("NETALIGN-PROBLEM 1\nname x\nalpha 1 beta 2\n"
                       "graphA 2 0\ngraphB 2 0\nL 3 2 0\n");
  const std::string msg = error_of([&] { read_problem(ss); });
  EXPECT_NE(msg.find("inconsistent dimensions"), std::string::npos) << msg;
}

TEST(ProblemIo, MissingFileThrows) {
  EXPECT_THROW(read_problem_file("/nonexistent/path.prob"),
               std::runtime_error);
}

TEST(ProblemIo, WriteFileToBadPathThrows) {
  EXPECT_THROW(write_problem_file("/nonexistent/dir/out.prob", {}),
               std::runtime_error);
}

TEST(ProblemIo, FileRoundTrip) {
  PowerLawInstanceOptions opt;
  opt.n = 30;
  opt.seed = 5;
  const auto inst = make_power_law_instance(opt);
  const std::string path = temp_path("roundtrip.prob");
  write_problem_file(path, inst.problem);
  const NetAlignProblem r = read_problem_file(path);
  EXPECT_EQ(r.L.num_edges(), inst.problem.L.num_edges());
  EXPECT_EQ(r.A.num_edges(), inst.problem.A.num_edges());
  EXPECT_EQ(r.B.num_edges(), inst.problem.B.num_edges());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace netalign
