#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>

#include "graph/generators.hpp"
#include "io/edge_list.hpp"
#include "io/problem_io.hpp"
#include "io/smat.hpp"
#include "netalign/synthetic.hpp"
#include "util/prng.hpp"

namespace netalign {
namespace {

TEST(Smat, RoundTripsThroughText) {
  const std::vector<CooEntry> entries = {
      {0, 1, 1.5}, {2, 0, -2.0}, {2, 2, 0.25}};
  const CsrMatrix m = CsrMatrix::from_coo(3, 3, entries);
  std::stringstream ss;
  write_smat(ss, m);
  const CsrMatrix r = read_smat(ss);
  EXPECT_EQ(r.num_rows(), 3);
  EXPECT_EQ(r.num_cols(), 3);
  ASSERT_EQ(r.num_nonzeros(), 3);
  for (vid_t row = 0; row < 3; ++row) {
    for (eid_t k = m.row_begin(row); k < m.row_end(row); ++k) {
      const eid_t k2 = r.find(row, m.col_idx()[k]);
      ASSERT_NE(k2, kInvalidEid);
      EXPECT_DOUBLE_EQ(r.values()[k2], m.values()[k]);
    }
  }
}

TEST(Smat, HeaderParses) {
  std::stringstream ss("2 3 1\n0 2 4.5\n");
  const CsrMatrix m = read_smat(ss);
  EXPECT_EQ(m.num_rows(), 2);
  EXPECT_EQ(m.num_cols(), 3);
  EXPECT_EQ(m.values()[0], 4.5);
}

TEST(Smat, TruncatedInputThrows) {
  std::stringstream ss("2 2 2\n0 0 1.0\n");
  EXPECT_THROW(read_smat(ss), std::runtime_error);
}

TEST(Smat, BadHeaderThrows) {
  std::stringstream ss("hello\n");
  EXPECT_THROW(read_smat(ss), std::runtime_error);
}

TEST(Smat, MissingFileThrows) {
  EXPECT_THROW(read_smat_file("/nonexistent/path.smat"), std::runtime_error);
}

TEST(EdgeList, RoundTripsThroughText) {
  Xoshiro256 rng(3);
  const Graph g = erdos_renyi(50, 0.1, rng);
  std::stringstream ss;
  write_edge_list(ss, g);
  const Graph r = read_edge_list(ss, 50);
  EXPECT_EQ(r.num_edges(), g.num_edges());
  for (const auto& [u, v] : g.edge_list()) EXPECT_TRUE(r.has_edge(u, v));
}

TEST(EdgeList, SkipsCommentsAndBlankLines) {
  std::stringstream ss("# comment\n\n0 1\n  # indented comment\n1 2\n");
  const Graph g = read_edge_list(ss);
  EXPECT_EQ(g.num_vertices(), 3);
  EXPECT_EQ(g.num_edges(), 2);
}

TEST(EdgeList, InfersVertexCount) {
  std::stringstream ss("0 7\n");
  const Graph g = read_edge_list(ss);
  EXPECT_EQ(g.num_vertices(), 8);
}

TEST(EdgeList, MalformedLineThrows) {
  std::stringstream ss("0 not-a-number\n");
  EXPECT_THROW(read_edge_list(ss), std::runtime_error);
}

TEST(EdgeList, NegativeIdThrows) {
  std::stringstream ss("0 -3\n");
  EXPECT_THROW(read_edge_list(ss), std::runtime_error);
}

TEST(ProblemIo, RoundTripsSyntheticInstance) {
  PowerLawInstanceOptions opt;
  opt.n = 60;
  opt.seed = 77;
  const auto inst = make_power_law_instance(opt);
  std::stringstream ss;
  write_problem(ss, inst.problem);
  const NetAlignProblem r = read_problem(ss);

  EXPECT_EQ(r.name, inst.problem.name);
  EXPECT_EQ(r.alpha, inst.problem.alpha);
  EXPECT_EQ(r.beta, inst.problem.beta);
  EXPECT_EQ(r.A.num_edges(), inst.problem.A.num_edges());
  EXPECT_EQ(r.B.num_edges(), inst.problem.B.num_edges());
  ASSERT_EQ(r.L.num_edges(), inst.problem.L.num_edges());
  for (eid_t e = 0; e < r.L.num_edges(); ++e) {
    EXPECT_EQ(r.L.edge_a(e), inst.problem.L.edge_a(e));
    EXPECT_EQ(r.L.edge_b(e), inst.problem.L.edge_b(e));
    EXPECT_DOUBLE_EQ(r.L.edge_weight(e), inst.problem.L.edge_weight(e));
  }
}

TEST(ProblemIo, RejectsWrongMagic) {
  std::stringstream ss("NOT-A-PROBLEM 1\n");
  EXPECT_THROW(read_problem(ss), std::runtime_error);
}

TEST(ProblemIo, RejectsWrongVersion) {
  std::stringstream ss("NETALIGN-PROBLEM 99\n");
  EXPECT_THROW(read_problem(ss), std::runtime_error);
}

TEST(ProblemIo, RejectsTruncatedBody) {
  std::stringstream ss("NETALIGN-PROBLEM 1\nname x\nalpha 1 beta 2\n"
                       "graphA 3 5\n0 1\n");
  EXPECT_THROW(read_problem(ss), std::runtime_error);
}

}  // namespace
}  // namespace netalign
