#include "graph/bipartite.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "util/prng.hpp"

namespace netalign {
namespace {

TEST(BipartiteGraph, EmptyGraph) {
  const BipartiteGraph g = BipartiteGraph::from_edges(3, 4, {});
  EXPECT_EQ(g.num_a(), 3);
  EXPECT_EQ(g.num_b(), 4);
  EXPECT_EQ(g.num_edges(), 0);
  EXPECT_EQ(g.find_edge(0, 0), kInvalidEid);
}

TEST(BipartiteGraph, EdgeIdsFollowRowMajorOrder) {
  const std::vector<LEdge> edges = {{1, 0, 0.5}, {0, 1, 0.25}, {0, 0, 1.0}};
  const BipartiteGraph g = BipartiteGraph::from_edges(2, 2, edges);
  ASSERT_EQ(g.num_edges(), 3);
  // Row 0 first (cols sorted), then row 1.
  EXPECT_EQ(g.edge_a(0), 0);
  EXPECT_EQ(g.edge_b(0), 0);
  EXPECT_EQ(g.edge_weight(0), 1.0);
  EXPECT_EQ(g.edge_a(1), 0);
  EXPECT_EQ(g.edge_b(1), 1);
  EXPECT_EQ(g.edge_a(2), 1);
  EXPECT_EQ(g.edge_b(2), 0);
}

TEST(BipartiteGraph, DuplicateEdgesKeepMaxWeight) {
  const std::vector<LEdge> edges = {{0, 0, 0.25}, {0, 0, 0.75}};
  const BipartiteGraph g = BipartiteGraph::from_edges(1, 1, edges);
  ASSERT_EQ(g.num_edges(), 1);
  EXPECT_EQ(g.edge_weight(0), 0.75);
}

TEST(BipartiteGraph, OutOfRangeEndpointThrows) {
  const std::vector<LEdge> edges = {{0, 9, 1.0}};
  EXPECT_THROW(BipartiteGraph::from_edges(2, 2, edges), std::out_of_range);
}

TEST(BipartiteGraph, FindEdgeLocatesAll) {
  const std::vector<LEdge> edges = {{0, 2, 1.0}, {1, 0, 1.0}, {1, 2, 1.0}};
  const BipartiteGraph g = BipartiteGraph::from_edges(2, 3, edges);
  for (eid_t e = 0; e < g.num_edges(); ++e) {
    EXPECT_EQ(g.find_edge(g.edge_a(e), g.edge_b(e)), e);
  }
  EXPECT_EQ(g.find_edge(0, 0), kInvalidEid);
}

TEST(BipartiteGraph, CscViewIsConsistentWithCsr) {
  Xoshiro256 rng(31);
  std::vector<LEdge> edges;
  for (int i = 0; i < 60; ++i) {
    edges.push_back(LEdge{static_cast<vid_t>(rng.uniform_int(8)),
                          static_cast<vid_t>(rng.uniform_int(9)),
                          rng.uniform(0.1, 1.0)});
  }
  const BipartiteGraph g = BipartiteGraph::from_edges(8, 9, edges);

  // Every CSC slot maps back to the CSR edge it mirrors.
  eid_t seen = 0;
  for (vid_t b = 0; b < g.num_b(); ++b) {
    for (eid_t k = g.col_begin(b); k < g.col_end(b); ++k) {
      const eid_t e = g.col_edge(k);
      EXPECT_EQ(g.edge_b(e), b);
      EXPECT_EQ(g.edge_a(e), g.col_a(k));
      ++seen;
    }
  }
  EXPECT_EQ(seen, g.num_edges());
}

TEST(BipartiteGraph, DegreesSumToEdgeCount) {
  const std::vector<LEdge> edges = {
      {0, 0, 1.0}, {0, 1, 1.0}, {1, 1, 1.0}, {2, 0, 1.0}};
  const BipartiteGraph g = BipartiteGraph::from_edges(3, 2, edges);
  eid_t sum_a = 0, sum_b = 0;
  for (vid_t a = 0; a < g.num_a(); ++a) sum_a += g.degree_a(a);
  for (vid_t b = 0; b < g.num_b(); ++b) sum_b += g.degree_b(b);
  EXPECT_EQ(sum_a, g.num_edges());
  EXPECT_EQ(sum_b, g.num_edges());
  EXPECT_EQ(g.degree_a(0), 2);
  EXPECT_EQ(g.degree_b(1), 2);
}

TEST(BipartiteGraph, EdgeListRoundTrips) {
  const std::vector<LEdge> edges = {{1, 1, 0.5}, {0, 0, 0.75}};
  const BipartiteGraph g = BipartiteGraph::from_edges(2, 2, edges);
  const auto out = g.edge_list();
  const BipartiteGraph g2 = BipartiteGraph::from_edges(2, 2, out);
  ASSERT_EQ(g2.num_edges(), g.num_edges());
  for (eid_t e = 0; e < g.num_edges(); ++e) {
    EXPECT_EQ(g2.edge_a(e), g.edge_a(e));
    EXPECT_EQ(g2.edge_b(e), g.edge_b(e));
    EXPECT_EQ(g2.edge_weight(e), g.edge_weight(e));
  }
}

TEST(BipartiteGraph, WeightsSpanMatchesEdgeWeight) {
  const std::vector<LEdge> edges = {{0, 0, 0.5}, {0, 1, 0.25}};
  const BipartiteGraph g = BipartiteGraph::from_edges(1, 2, edges);
  const auto w = g.weights();
  ASSERT_EQ(static_cast<eid_t>(w.size()), g.num_edges());
  for (eid_t e = 0; e < g.num_edges(); ++e) {
    EXPECT_EQ(w[e], g.edge_weight(e));
  }
}

}  // namespace
}  // namespace netalign
