// Tests for the observability subsystem (src/obs): the JSON helpers, the
// counter registry, and TraceWriter -- including the contract the docs
// promise: every emitted line is valid JSON, run_start precedes all
// iteration events, counter merge is associative, and a disabled trace
// emits nothing.
#include <gtest/gtest.h>
#include <omp.h>

#include <sstream>
#include <string>
#include <vector>

#include "netalign/belief_prop.hpp"
#include "netalign/klau_mr.hpp"
#include "netalign/squares.hpp"
#include "obs/counters.hpp"
#include "obs/json.hpp"
#include "obs/trace.hpp"

namespace netalign {
namespace {

using obs::Counters;
using obs::JsonValue;
using obs::parse_json;
using obs::TraceWriter;

// --- JSON ----------------------------------------------------------------

TEST(Json, ParsesScalars) {
  EXPECT_TRUE(parse_json("null").is_null());
  EXPECT_TRUE(parse_json("true").as_bool());
  EXPECT_FALSE(parse_json("false").as_bool());
  EXPECT_DOUBLE_EQ(parse_json("-12.5e2").as_number(), -1250.0);
  EXPECT_EQ(parse_json("\"hi\"").as_string(), "hi");
}

TEST(Json, ParsesNestedStructure) {
  const JsonValue v = parse_json(R"({"a":[1,2,{"b":"c"}],"d":{"e":null}})");
  ASSERT_TRUE(v.is_object());
  const JsonValue* a = v.find("a");
  ASSERT_NE(a, nullptr);
  ASSERT_EQ(a->items().size(), 3u);
  EXPECT_EQ(a->items()[2].find("b")->as_string(), "c");
  EXPECT_TRUE(v.find("d")->find("e")->is_null());
  EXPECT_EQ(v.find("missing"), nullptr);
}

TEST(Json, ObjectsPreserveKeyOrder) {
  const JsonValue v = parse_json(R"({"z":1,"a":2,"m":3})");
  ASSERT_EQ(v.members().size(), 3u);
  EXPECT_EQ(v.members()[0].first, "z");
  EXPECT_EQ(v.members()[1].first, "a");
  EXPECT_EQ(v.members()[2].first, "m");
}

TEST(Json, StringEscapesRoundTrip) {
  std::string line;
  obs::append_json_string(line, "quote\" back\\ tab\tnl\n ctrl\x01");
  const JsonValue v = parse_json(line);
  EXPECT_EQ(v.as_string(), "quote\" back\\ tab\tnl\n ctrl\x01");
}

TEST(Json, NonFiniteNumbersSerializeAsNull) {
  std::string line;
  obs::append_json_number(line, std::numeric_limits<double>::infinity());
  EXPECT_TRUE(parse_json(line).is_null());
}

TEST(Json, MalformedInputThrows) {
  EXPECT_THROW(parse_json(""), std::runtime_error);
  EXPECT_THROW(parse_json("{"), std::runtime_error);
  EXPECT_THROW(parse_json("{\"a\":}"), std::runtime_error);
  EXPECT_THROW(parse_json("[1,]"), std::runtime_error);
  EXPECT_THROW(parse_json("\"unterminated"), std::runtime_error);
  EXPECT_THROW(parse_json("{} trailing"), std::runtime_error);
  EXPECT_THROW(parse_json("nul"), std::runtime_error);
}

TEST(Json, TryParseReportsFailureWithoutThrowing) {
  JsonValue v;
  EXPECT_TRUE(try_parse_json("{\"a\": 1}", v));
  EXPECT_EQ(v.find("a")->as_number(), 1.0);
  // A line cut mid-object -- the shape a SIGKILLed TraceWriter leaves
  // behind -- must report false, not throw.
  EXPECT_FALSE(try_parse_json("{\"event\":\"iteration\",\"it", v));
  EXPECT_FALSE(try_parse_json("", v));
}

// --- Counters ------------------------------------------------------------

TEST(Counters, AccumulatesAndPreservesOrder) {
  Counters c;
  c.add("b", 2);
  c.add("a");
  c.add("b", 3);
  EXPECT_EQ(c.total("b"), 5);
  EXPECT_EQ(c.total("a"), 1);
  EXPECT_EQ(c.total("missing"), 0);
  ASSERT_EQ(c.names().size(), 2u);
  EXPECT_EQ(c.names()[0], "b");
  EXPECT_EQ(c.names()[1], "a");
}

TEST(Counters, MergeIsAssociative) {
  auto fill = [](Counters& c, std::int64_t base) {
    c.add("x", base);
    c.add("y", base * 2);
  };
  Counters a1, b1, c1;
  fill(a1, 1);
  fill(b1, 10);
  fill(c1, 100);
  a1.merge(b1);
  a1.merge(c1);  // (a + b) + c

  Counters a2, b2, c2;
  fill(a2, 1);
  fill(b2, 10);
  fill(c2, 100);
  b2.merge(c2);
  a2.merge(b2);  // a + (b + c)

  ASSERT_EQ(a1.names(), a2.names());
  for (const auto& name : a1.names()) {
    EXPECT_EQ(a1.total(name), a2.total(name));
  }
}

TEST(Counters, AddConcurrentSumsUnderThreads) {
  Counters c;
  constexpr int kPerThread = 1000;
#pragma omp parallel
  {
#pragma omp for
    for (int i = 0; i < 8 * kPerThread; ++i) {
      c.add_concurrent("hits");
    }
  }
  EXPECT_EQ(c.total("hits"), 8 * kPerThread);
}

TEST(Counters, ClearEmpties) {
  Counters c;
  c.add("a", 5);
  EXPECT_FALSE(c.empty());
  c.clear();
  EXPECT_TRUE(c.empty());
  EXPECT_EQ(c.total("a"), 0);
}

// --- TraceWriter ---------------------------------------------------------

/// Tiny 4-vertex problem (the quickstart instance) for solver traces.
NetAlignProblem tiny_problem() {
  NetAlignProblem p;
  const std::vector<std::pair<vid_t, vid_t>> ea = {{0, 1}, {1, 2}, {2, 3},
                                                   {3, 0}};
  const std::vector<std::pair<vid_t, vid_t>> eb = {{0, 1}, {1, 2}, {2, 3}};
  const std::vector<LEdge> el = {
      {0, 0, 1.0}, {1, 1, 1.0}, {2, 2, 1.0}, {3, 3, 1.0}, {0, 2, 1.5}};
  p.A = Graph::from_edges(4, ea);
  p.B = Graph::from_edges(4, eb);
  p.L = BipartiteGraph::from_edges(4, 4, el);
  p.alpha = 1.0;
  p.beta = 2.0;
  p.name = "tiny";
  return p;
}

std::vector<JsonValue> parse_lines(const std::string& text) {
  std::vector<JsonValue> out;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) {
    if (!line.empty()) out.push_back(parse_json(line));
  }
  return out;
}

TEST(TraceWriter, EveryLineParsesAndRunStartPrecedesIterations) {
  const NetAlignProblem p = tiny_problem();
  const SquaresMatrix S = SquaresMatrix::build(p);

  std::ostringstream sink;
  TraceWriter trace(&sink);
  ASSERT_TRUE(trace.enabled());

  trace.run_start("belief_prop", {{"problem", p.name}, {"iters", 5}});
  BeliefPropOptions opt;
  opt.max_iterations = 5;
  opt.trace = &trace;
  const AlignResult r = belief_prop_align(p, S, opt);
  trace.run_end(r.total_seconds, r.value.objective, r.best_iteration);

  const auto events = parse_lines(sink.str());
  ASSERT_GE(events.size(), 7u);  // run_start + 5 iterations + run_end

  std::int64_t run_start_seq = -1;
  std::vector<std::int64_t> iteration_seqs;
  int iterations = 0, rounds = 0, run_ends = 0;
  for (const auto& e : events) {
    ASSERT_TRUE(e.is_object());
    const std::string& kind = e.find("event")->as_string();
    const auto seq = static_cast<std::int64_t>(e.find("seq")->as_number());
    if (kind == "run_start") run_start_seq = seq;
    if (kind == "iteration") {
      ++iterations;
      iteration_seqs.push_back(seq);
      // Per-iteration step seconds are present and named.
      const JsonValue* steps = e.find("steps");
      ASSERT_NE(steps, nullptr);
      EXPECT_TRUE(steps->is_object());
      EXPECT_FALSE(steps->members().empty());
    }
    if (kind == "round") ++rounds;
    if (kind == "run_end") ++run_ends;
  }
  EXPECT_EQ(iterations, 5);
  EXPECT_EQ(rounds, 2 * 5);  // y and z each iteration at batch 1
  EXPECT_EQ(run_ends, 1);
  ASSERT_GE(run_start_seq, 0);
  for (const auto seq : iteration_seqs) EXPECT_GT(seq, run_start_seq);
}

TEST(TraceWriter, RunStartCarriesMetadata) {
  std::ostringstream sink;
  TraceWriter trace(&sink);
  trace.run_start("klau_mr");
  const auto events = parse_lines(sink.str());
  ASSERT_EQ(events.size(), 1u);
  const JsonValue& e = events[0];
  EXPECT_EQ(e.find("method")->as_string(), "klau_mr");
  EXPECT_GE(e.find("threads")->as_number(), 1.0);
  EXPECT_FALSE(e.find("omp_schedule")->as_string().empty());
  EXPECT_FALSE(e.find("git_sha")->as_string().empty());
}

TEST(TraceWriter, MrIterationsCarryObjectiveAndBound) {
  const NetAlignProblem p = tiny_problem();
  const SquaresMatrix S = SquaresMatrix::build(p);
  std::ostringstream sink;
  TraceWriter trace(&sink);
  KlauMrOptions opt;
  opt.max_iterations = 3;
  opt.trace = &trace;
  klau_mr_align(p, S, opt);
  int iterations = 0;
  for (const auto& e : parse_lines(sink.str())) {
    if (e.find("event")->as_string() != "iteration") continue;
    ++iterations;
    ASSERT_NE(e.find("objective"), nullptr);
    ASSERT_NE(e.find("upper_bound"), nullptr);
    // The relaxation's invariant: bound at or above the rounded objective.
    EXPECT_GE(e.find("upper_bound")->as_number(),
              e.find("objective")->as_number() - 1e-9);
  }
  EXPECT_EQ(iterations, 3);
}

TEST(TraceWriter, RunEndEmbedsCounters) {
  const NetAlignProblem p = tiny_problem();
  const SquaresMatrix S = SquaresMatrix::build(p);
  std::ostringstream sink;
  TraceWriter trace(&sink);
  Counters counters;
  BeliefPropOptions opt;
  opt.max_iterations = 2;
  opt.trace = &trace;
  opt.counters = &counters;
  const AlignResult r = belief_prop_align(p, S, opt);
  trace.run_end(r.total_seconds, r.value.objective, r.best_iteration,
                &counters);
  EXPECT_GT(counters.total("bp.message_updates"), 0);
  bool saw_counters = false;
  for (const auto& e : parse_lines(sink.str())) {
    if (e.find("event")->as_string() != "run_end") continue;
    const JsonValue* c = e.find("counters");
    ASSERT_NE(c, nullptr);
    EXPECT_EQ(static_cast<std::int64_t>(
                  c->find("bp.message_updates")->as_number()),
              counters.total("bp.message_updates"));
    saw_counters = true;
  }
  EXPECT_TRUE(saw_counters);
}

TEST(TraceWriter, RunEndCarriesExtraFields) {
  std::ostringstream sink;
  TraceWriter trace(&sink);
  trace.run_start("belief_prop");
  trace.run_end(1.5, 2.0, 3, nullptr,
                {{"stopped_reason", "deadline"}, {"iterations_completed", 7}});
  bool saw = false;
  for (const auto& e : parse_lines(sink.str())) {
    if (e.find("event")->as_string() != "run_end") continue;
    EXPECT_EQ(e.find("stopped_reason")->as_string(), "deadline");
    EXPECT_EQ(e.find("iterations_completed")->as_number(), 7.0);
    saw = true;
  }
  EXPECT_TRUE(saw);
}

TEST(TraceWriter, DisabledWriterEmitsNothing) {
  const NetAlignProblem p = tiny_problem();
  const SquaresMatrix S = SquaresMatrix::build(p);
  TraceWriter trace(static_cast<std::ostream*>(nullptr));
  EXPECT_FALSE(trace.enabled());
  trace.run_start("belief_prop");
  BeliefPropOptions opt;
  opt.max_iterations = 3;
  opt.trace = &trace;  // inert: every emit is a no-op
  const AlignResult r = belief_prop_align(p, S, opt);
  trace.run_end(r.total_seconds, r.value.objective, r.best_iteration);
  EXPECT_GT(r.value.objective, 0.0);
}

TEST(TraceWriter, TracedAndUntracedRunsAgree) {
  const NetAlignProblem p = tiny_problem();
  const SquaresMatrix S = SquaresMatrix::build(p);
  BeliefPropOptions opt;
  opt.max_iterations = 10;
  const AlignResult plain = belief_prop_align(p, S, opt);

  std::ostringstream sink;
  TraceWriter trace(&sink);
  opt.trace = &trace;
  const AlignResult traced = belief_prop_align(p, S, opt);
  EXPECT_DOUBLE_EQ(plain.value.objective, traced.value.objective);
  EXPECT_EQ(plain.matching.cardinality, traced.matching.cardinality);
}

TEST(TraceWriter, UnopenablePathThrows) {
  EXPECT_THROW(TraceWriter("/nonexistent-dir-xyz/trace.jsonl"),
               std::runtime_error);
}

TEST(RunMetadata, ReportsSaneEnvironment) {
  const obs::RunMetadata meta = obs::run_metadata();
  EXPECT_GE(meta.max_threads, 1);
  EXPECT_FALSE(meta.omp_schedule.empty());
  EXPECT_GT(meta.omp_version, 0);
  EXPECT_FALSE(meta.git_sha.empty());
}

}  // namespace
}  // namespace netalign
