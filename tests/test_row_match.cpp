#include "netalign/row_match.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <numeric>
#include <vector>

#include "util/prng.hpp"

namespace netalign {
namespace {

using Edge = GreedyRowMatcher::Edge;

/// The pre-refactor row greedy, kept as the behavioral reference: heaviest
/// edge first (ties toward the smaller input index), endpoint membership
/// tested by a linear scan over the already-chosen edges -- the O(r^2)
/// pattern GreedyRowMatcher's epoch stamps replace. Any divergence between
/// the two is a bug in the refactor, not a "both plausible" outcome.
weight_t reference_greedy(const std::vector<Edge>& edges,
                          std::vector<std::uint8_t>& chosen) {
  std::vector<std::size_t> order(edges.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(), [&](std::size_t x, std::size_t y) {
    return edges[x].w != edges[y].w ? edges[x].w > edges[y].w : x < y;
  });
  chosen.assign(edges.size(), 0);
  weight_t total = 0.0;
  for (const std::size_t i : order) {
    if (edges[i].w <= 0.0) break;
    bool taken = false;
    for (std::size_t j = 0; j < edges.size() && !taken; ++j) {
      if (chosen[j] &&
          (edges[j].a == edges[i].a || edges[j].b == edges[i].b)) {
        taken = true;
      }
    }
    if (taken) continue;
    chosen[i] = 1;
    total += edges[i].w;
  }
  return total;
}

TEST(GreedyRowMatcher, MatchesReferenceOnRandomTiedRows) {
  constexpr vid_t kNa = 12, kNb = 12;
  constexpr std::size_t kMaxRow = 30;
  GreedyRowMatcher matcher;
  matcher.reserve(kNa, kNb, kMaxRow);
  Xoshiro256 rng(20240805);
  std::vector<Edge> edges;
  std::vector<std::uint8_t> got(kMaxRow), want;
  for (int trial = 0; trial < 500; ++trial) {
    const auto len = static_cast<std::size_t>(rng.uniform_int(kMaxRow + 1));
    edges.clear();
    for (std::size_t i = 0; i < len; ++i) {
      // Discrete weights in {-0.5, 0, 0.5, 1, 1.5, 2}: heavy ties plus
      // non-positive entries, the cases the sort tie-break and the early
      // break must handle identically to the reference.
      const weight_t w = 0.5 * (rng.uniform_int(6) - 1);
      edges.push_back(Edge{static_cast<vid_t>(rng.uniform_int(kNa)),
                           static_cast<vid_t>(rng.uniform_int(kNb)), w});
    }
    const weight_t got_total =
        matcher.match(edges, std::span(got.data(), len));
    const weight_t want_total = reference_greedy(edges, want);
    ASSERT_DOUBLE_EQ(got_total, want_total) << "trial " << trial;
    for (std::size_t i = 0; i < len; ++i) {
      ASSERT_EQ(got[i], want[i]) << "trial " << trial << " edge " << i;
    }
  }
}

TEST(GreedyRowMatcher, TieBreaksTowardSmallerIndex) {
  GreedyRowMatcher matcher;
  matcher.reserve(2, 2, 3);
  const std::vector<Edge> edges = {{0, 0, 1.0}, {1, 1, 1.0}, {0, 1, 1.0}};
  std::vector<std::uint8_t> chosen(edges.size());
  const weight_t total = matcher.match(edges, chosen);
  EXPECT_DOUBLE_EQ(total, 2.0);
  EXPECT_EQ(chosen[0], 1);
  EXPECT_EQ(chosen[1], 1);
  EXPECT_EQ(chosen[2], 0);
}

TEST(GreedyRowMatcher, IgnoresNonPositiveWeights) {
  GreedyRowMatcher matcher;
  matcher.reserve(2, 2, 2);
  const std::vector<Edge> edges = {{0, 0, 0.0}, {1, 1, -2.0}};
  std::vector<std::uint8_t> chosen(edges.size());
  EXPECT_DOUBLE_EQ(matcher.match(edges, chosen), 0.0);
  EXPECT_EQ(chosen[0], 0);
  EXPECT_EQ(chosen[1], 0);
}

TEST(GreedyRowMatcher, EmptyRow) {
  GreedyRowMatcher matcher;
  matcher.reserve(1, 1, 0);
  EXPECT_DOUBLE_EQ(matcher.match({}, {}), 0.0);
}

TEST(GreedyRowMatcher, EpochReuseDoesNotLeakMarksAcrossCalls) {
  // The same endpoints must be free again on the next call without any
  // explicit clearing -- the point of the epoch stamps.
  GreedyRowMatcher matcher;
  matcher.reserve(4, 4, 2);
  std::vector<std::uint8_t> chosen(1);
  const std::vector<Edge> first = {{3, 3, 1.0}};
  EXPECT_DOUBLE_EQ(matcher.match(first, chosen), 1.0);
  EXPECT_EQ(chosen[0], 1);
  const std::vector<Edge> second = {{3, 3, 2.0}};
  EXPECT_DOUBLE_EQ(matcher.match(second, chosen), 2.0);
  EXPECT_EQ(chosen[0], 1);
}

TEST(GreedyRowMatcher, CountsCallsAndEdges) {
  GreedyRowMatcher matcher;
  matcher.reserve(4, 4, 3);
  std::vector<std::uint8_t> chosen(3);
  const std::vector<Edge> row = {{0, 0, 1.0}, {1, 1, 1.0}, {2, 2, 1.0}};
  matcher.match(row, chosen);
  matcher.match(row, chosen);
  EXPECT_EQ(matcher.calls(), 2);
  EXPECT_EQ(matcher.edges_seen(), 6);
}

}  // namespace
}  // namespace netalign
