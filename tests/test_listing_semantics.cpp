// Golden tests of the pseudo-code semantics (paper Listings 1 and 2) on a
// problem small enough to execute by hand.
//
// Problem: A and B are both the single edge (0, 1); L has the candidates
// (0,0'), (0,1'), (1,1') with unit weights (edge ids 0, 1, 2 in row-major
// order); alpha = 1, beta = 2. S has exactly the two symmetric nonzeros
// {(0,2), (2,0)} -- matching both diagonal pairs overlaps the one edge.
//
// Hand trace, BP iteration 1 (y = z = S^(k) = 0 initially):
//   F      = bound_{0,2}[2*S + 0]          = 2 at both nonzeros
//   d      = 1*w + F e                     = (3, 1, 3)
//   y      = d - othermaxcol(0)            = (3, 1, 3)
//   z      = d - othermaxrow(0)            = (3, 1, 3)
//   damped by gamma^1: proportional scaling, argmax unchanged
// Rounding y (or z) matches edges {0, 2} (weight 2.97 each vs 0.99), so
// the evaluated objective is 1*(1+1) + 2*1 = 4, and that is optimal.
//
// Hand trace, MR iteration 1 (U = 0):
//   Step 1: row 0 of S holds the single square with edge 2 at weight
//           beta/2 = 1 => d_0 = 1, S_L[0,2] = 1; symmetrically d_2 = 1;
//           row 1 is empty => d_1 = 0.
//   Step 2: wbar = alpha*w + d = (2, 1, 2)
//   Step 3: x matches edges {0, 2}
//   Step 4: obj = 1*2 + 2*1 = 4;  upper = wbar'x = 4
// Upper equals objective at iteration 1: MR certifies optimality here.
#include <gtest/gtest.h>

#include "netalign/belief_prop.hpp"
#include "netalign/klau_mr.hpp"

namespace netalign {
namespace {

NetAlignProblem tiny_problem() {
  NetAlignProblem p;
  const std::vector<std::pair<vid_t, vid_t>> ea = {{0, 1}};
  p.A = Graph::from_edges(2, ea);
  p.B = Graph::from_edges(2, ea);
  const std::vector<LEdge> el = {{0, 0, 1.0}, {0, 1, 1.0}, {1, 1, 1.0}};
  p.L = BipartiteGraph::from_edges(2, 2, el);
  p.alpha = 1.0;
  p.beta = 2.0;
  return p;
}

TEST(ListingSemantics, BpIterationOneMatchesHandTrace) {
  const auto p = tiny_problem();
  const auto S = SquaresMatrix::build(p);
  ASSERT_EQ(S.num_nonzeros(), 2);

  BeliefPropOptions opt;
  opt.max_iterations = 1;
  opt.matcher = MatcherKind::kExact;
  opt.final_exact_round = false;
  const auto r = belief_prop_align(p, S, opt);
  // Two rounding events (y and z), both scoring the optimal alignment.
  ASSERT_EQ(r.objective_history.size(), 2u);
  EXPECT_DOUBLE_EQ(r.objective_history[0], 4.0);
  EXPECT_DOUBLE_EQ(r.objective_history[1], 4.0);
  EXPECT_DOUBLE_EQ(r.value.objective, 4.0);
  EXPECT_DOUBLE_EQ(r.value.weight, 2.0);
  EXPECT_DOUBLE_EQ(r.value.overlap, 1.0);
  EXPECT_EQ(r.matching.mate_a[0], 0);
  EXPECT_EQ(r.matching.mate_a[1], 1);
}

TEST(ListingSemantics, MrIterationOneMatchesHandTrace) {
  const auto p = tiny_problem();
  const auto S = SquaresMatrix::build(p);

  KlauMrOptions opt;
  opt.max_iterations = 1;
  opt.matcher = MatcherKind::kExact;
  opt.final_exact_round = false;
  const auto r = klau_mr_align(p, S, opt);
  ASSERT_EQ(r.objective_history.size(), 1u);
  ASSERT_EQ(r.upper_history.size(), 1u);
  EXPECT_DOUBLE_EQ(r.objective_history[0], 4.0);
  EXPECT_DOUBLE_EQ(r.upper_history[0], 4.0);  // wbar'x = (2,1,2).(1,0,1)
  EXPECT_DOUBLE_EQ(r.best_upper_bound, 4.0);
  EXPECT_DOUBLE_EQ(r.value.objective, 4.0);
  // Upper bound == objective: an a-posteriori optimality certificate
  // (paper Section III-A: "this method can actually detect when it has
  // reached the optimal point").
  EXPECT_EQ(r.matching.mate_a[0], 0);
  EXPECT_EQ(r.matching.mate_a[1], 1);
}

TEST(ListingSemantics, BetaZeroReducesToPureMatching) {
  // With beta = 0 the overlap term vanishes: both methods reduce to
  // max-weight matching of alpha*w, and the decoys in this variant win.
  auto p = tiny_problem();
  p.beta = 0.0;
  const std::vector<LEdge> el = {
      {0, 0, 1.0}, {0, 1, 5.0}, {1, 1, 1.0}};  // heavy wrong pair
  p.L = BipartiteGraph::from_edges(2, 2, el);
  const auto S = SquaresMatrix::build(p);
  BeliefPropOptions opt;
  opt.max_iterations = 5;
  opt.matcher = MatcherKind::kExact;
  opt.final_exact_round = false;
  const auto r = belief_prop_align(p, S, opt);
  EXPECT_DOUBLE_EQ(r.value.objective, 5.0);
  EXPECT_EQ(r.matching.mate_a[0], 1);
}

TEST(ListingSemantics, AlphaZeroMaximizesOverlapOnly) {
  // alpha = 0, beta = 1: the maximum-common-edge-subgraph specialization
  // from Section II. The diagonal overlaps one edge => objective 1.
  auto p = tiny_problem();
  p.alpha = 0.0;
  p.beta = 1.0;
  const auto S = SquaresMatrix::build(p);
  BeliefPropOptions opt;
  opt.max_iterations = 10;
  opt.matcher = MatcherKind::kExact;
  opt.final_exact_round = false;
  const auto r = belief_prop_align(p, S, opt);
  EXPECT_DOUBLE_EQ(r.value.objective, 1.0);
  EXPECT_DOUBLE_EQ(r.value.overlap, 1.0);
}

}  // namespace
}  // namespace netalign
