#include "netalign/klau_mr.hpp"

#include <gtest/gtest.h>

#include "matching/verify.hpp"
#include "netalign/synthetic.hpp"

namespace netalign {
namespace {

SyntheticInstance easy_instance(std::uint64_t seed, vid_t n = 60,
                                double dbar = 2.0) {
  PowerLawInstanceOptions opt;
  opt.n = n;
  opt.seed = seed;
  opt.expected_degree = dbar;
  return make_power_law_instance(opt);
}

TEST(KlauMr, ProducesValidMatching) {
  const auto inst = easy_instance(1);
  const auto S = SquaresMatrix::build(inst.problem);
  KlauMrOptions opt;
  opt.max_iterations = 30;
  const auto result = klau_mr_align(inst.problem, S, opt);
  EXPECT_TRUE(is_valid_matching(inst.problem.L, result.matching));
  EXPECT_GT(result.value.objective, 0.0);
  EXPECT_GE(result.best_iteration, 1);
}

TEST(KlauMr, ObjectiveDecompositionIsConsistent) {
  const auto inst = easy_instance(2);
  const auto S = SquaresMatrix::build(inst.problem);
  KlauMrOptions opt;
  opt.max_iterations = 20;
  const auto result = klau_mr_align(inst.problem, S, opt);
  EXPECT_NEAR(result.value.objective,
              inst.problem.alpha * result.value.weight +
                  inst.problem.beta * result.value.overlap,
              1e-9);
}

TEST(KlauMr, UpperBoundDominatesObjectiveWithExactMatching) {
  // With exact row matches and exact global matching, every iteration's
  // upper bound is a genuine bound on the best objective.
  const auto inst = easy_instance(3);
  const auto S = SquaresMatrix::build(inst.problem);
  KlauMrOptions opt;
  opt.max_iterations = 25;
  opt.matcher = MatcherKind::kExact;
  const auto result = klau_mr_align(inst.problem, S, opt);
  ASSERT_EQ(result.objective_history.size(), 25u);
  ASSERT_EQ(result.upper_history.size(), 25u);
  for (std::size_t i = 0; i < result.upper_history.size(); ++i) {
    EXPECT_GE(result.upper_history[i] + 1e-9, result.objective_history[i])
        << "iteration " << i;
  }
  EXPECT_GE(result.best_upper_bound + 1e-9, result.value.objective);
}

TEST(KlauMr, RecoversIdentityOnEasyInstances) {
  // Figure 2 bottom: with exact rounding, MR finds the identity matching
  // on low-noise instances.
  const auto inst = easy_instance(4, 50, 2.0);
  const auto S = SquaresMatrix::build(inst.problem);
  KlauMrOptions opt;
  opt.max_iterations = 120;
  opt.matcher = MatcherKind::kExact;
  const auto result = klau_mr_align(inst.problem, S, opt);
  EXPECT_GE(fraction_correct(result.matching, inst.reference), 0.9);
}

TEST(KlauMr, ApproxMatcherStillProducesValidResults) {
  const auto inst = easy_instance(5);
  const auto S = SquaresMatrix::build(inst.problem);
  KlauMrOptions opt;
  opt.max_iterations = 30;
  opt.matcher = MatcherKind::kLocallyDominant;
  const auto result = klau_mr_align(inst.problem, S, opt);
  EXPECT_TRUE(is_valid_matching(inst.problem.L, result.matching));
  EXPECT_GT(result.value.objective, 0.0);
}

TEST(KlauMr, FinalExactRoundNeverHurts) {
  const auto inst = easy_instance(6);
  const auto S = SquaresMatrix::build(inst.problem);
  KlauMrOptions with, without;
  with.max_iterations = without.max_iterations = 25;
  with.matcher = without.matcher = MatcherKind::kLocallyDominant;
  with.final_exact_round = true;
  without.final_exact_round = false;
  const auto rw = klau_mr_align(inst.problem, S, with);
  const auto ro = klau_mr_align(inst.problem, S, without);
  EXPECT_GE(rw.value.objective, ro.value.objective - 1e-9);
}

TEST(KlauMr, StepTimersCoverAllSteps) {
  const auto inst = easy_instance(7);
  const auto S = SquaresMatrix::build(inst.problem);
  KlauMrOptions opt;
  opt.max_iterations = 5;
  const auto result = klau_mr_align(inst.problem, S, opt);
  for (const char* step :
       {"row_match", "daxpy", "match", "objective", "update_u"}) {
    EXPECT_EQ(result.timers.count(step), 5u) << step;
  }
  EXPECT_GT(result.total_seconds, 0.0);
}

TEST(KlauMr, HistoryCanBeDisabled) {
  const auto inst = easy_instance(8);
  const auto S = SquaresMatrix::build(inst.problem);
  KlauMrOptions opt;
  opt.max_iterations = 5;
  opt.record_history = false;
  const auto result = klau_mr_align(inst.problem, S, opt);
  EXPECT_TRUE(result.objective_history.empty());
  EXPECT_TRUE(result.upper_history.empty());
}

TEST(KlauMr, RejectsBadOptions) {
  const auto inst = easy_instance(9);
  const auto S = SquaresMatrix::build(inst.problem);
  KlauMrOptions opt;
  opt.max_iterations = 0;
  EXPECT_THROW(klau_mr_align(inst.problem, S, opt), std::invalid_argument);
  opt.max_iterations = 10;
  opt.gamma = 0.0;
  EXPECT_THROW(klau_mr_align(inst.problem, S, opt), std::invalid_argument);
  opt.gamma = 0.4;
  opt.mstep = 0;
  EXPECT_THROW(klau_mr_align(inst.problem, S, opt), std::invalid_argument);
}

TEST(KlauMr, GreedyRowMatcherStillProducesValidResults) {
  // The ablation of the paper's "always exact row matches" choice: the
  // greedy row matcher must stay correct (valid matchings, consistent
  // objective) even though the relaxation quality drops.
  const auto inst = easy_instance(11);
  const auto S = SquaresMatrix::build(inst.problem);
  KlauMrOptions opt;
  opt.max_iterations = 30;
  opt.row_matcher = RowMatcher::kGreedy;
  const auto r = klau_mr_align(inst.problem, S, opt);
  EXPECT_TRUE(is_valid_matching(inst.problem.L, r.matching));
  EXPECT_GT(r.value.objective, 0.0);
}

TEST(KlauMr, ExactRowsGiveTighterUpperBoundThanGreedyRows) {
  // Greedy row values under-estimate each row's matching value, so the
  // Lagrangian "upper bound" they imply is not larger than the exact one
  // at iteration 1 (U = 0: d_greedy <= d_exact elementwise).
  const auto inst = easy_instance(12, 80, 6.0);
  const auto S = SquaresMatrix::build(inst.problem);
  KlauMrOptions exact_rows, greedy_rows;
  exact_rows.max_iterations = greedy_rows.max_iterations = 1;
  greedy_rows.row_matcher = RowMatcher::kGreedy;
  const auto re = klau_mr_align(inst.problem, S, exact_rows);
  const auto rg = klau_mr_align(inst.problem, S, greedy_rows);
  ASSERT_EQ(re.upper_history.size(), 1u);
  ASSERT_EQ(rg.upper_history.size(), 1u);
  EXPECT_GE(re.upper_history[0], rg.upper_history[0] - 1e-9);
}

TEST(KlauMr, DeterministicAcrossRuns) {
  const auto inst = easy_instance(10);
  const auto S = SquaresMatrix::build(inst.problem);
  KlauMrOptions opt;
  opt.max_iterations = 15;
  const auto a = klau_mr_align(inst.problem, S, opt);
  const auto b = klau_mr_align(inst.problem, S, opt);
  EXPECT_EQ(a.value.objective, b.value.objective);
  EXPECT_EQ(a.objective_history, b.objective_history);
}

}  // namespace
}  // namespace netalign
