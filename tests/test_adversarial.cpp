// Adversarial matcher inputs: families engineered to sit exactly at the
// 1/2-approximation boundary, plus stress shapes (long augmenting chains,
// heavy hubs, near-tie weights) that historically break matching codes.
#include <gtest/gtest.h>

#include "helpers.hpp"
#include "matching/exact_mwm.hpp"
#include "matching/verify.hpp"
#include "netalign/rounding.hpp"

namespace netalign {
namespace {

/// The classic tight instance for locally-dominant/greedy matching: a path
/// a0-b0-a1-b1-...; the middle edges weigh 1+eps and block two edges of
/// weight 1 each. Greedy-style matchers collect every other edge; the
/// optimum takes the complement.
BipartiteGraph tight_chain(vid_t pairs, weight_t eps) {
  std::vector<LEdge> edges;
  for (vid_t i = 0; i < pairs; ++i) {
    edges.push_back(LEdge{i, i, 1.0});                    // light
    if (i + 1 < pairs) {
      edges.push_back(LEdge{i, i + 1, 1.0 + eps});        // heavy blocker
    }
  }
  return BipartiteGraph::from_edges(pairs, pairs, edges);
}

TEST(Adversarial, TightChainStaysAboveHalf) {
  const auto g = tight_chain(40, 1e-6);
  const std::vector<weight_t> w(g.weights().begin(), g.weights().end());
  const auto exact = max_weight_matching_exact(g, w);
  for (const MatcherKind kind :
       {MatcherKind::kLocallyDominant, MatcherKind::kGreedy,
        MatcherKind::kSuitor, MatcherKind::kPathGrowing}) {
    const auto m = run_matcher(g, w, kind);
    ASSERT_TRUE(is_valid_matching(g, m)) << to_string(kind);
    EXPECT_GE(m.weight, 0.5 * exact.weight - 1e-9) << to_string(kind);
  }
  // Exact must find all the light edges: weight ~= pairs.
  EXPECT_NEAR(exact.weight, 40.0, 1e-3);
}

TEST(Adversarial, LongAugmentingChainIsSolvedExactly) {
  // Exact solver needs a length-2k alternating path to reach optimality;
  // shallow solvers plateau. Weights increase along the chain so greedy
  // starts from the wrong end.
  const vid_t k = 60;
  std::vector<LEdge> edges;
  for (vid_t i = 0; i < k; ++i) {
    edges.push_back(LEdge{i, i, 1.0 + 0.01 * i});
    if (i + 1 < k) edges.push_back(LEdge{i + 1, i, 1.0 + 0.01 * i + 0.005});
  }
  const auto g = BipartiteGraph::from_edges(k, k, edges);
  const std::vector<weight_t> w(g.weights().begin(), g.weights().end());
  const auto exact = max_weight_matching_exact(g, w);
  // The diagonal is a perfect matching; the off-diagonal chain is not.
  weight_t diag = 0.0;
  for (vid_t i = 0; i < k; ++i) diag += 1.0 + 0.01 * i;
  EXPECT_GE(exact.weight, diag - 1e-9);
  EXPECT_EQ(exact.cardinality, k);
}

TEST(Adversarial, HeavyHubDoesNotStarveLeaves) {
  // One A-hub adjacent to every B vertex with large weights, plus leaf
  // A-vertices each with one light edge. Maximality must still match all
  // the leaves that remain feasible.
  const vid_t n = 30;
  std::vector<LEdge> edges;
  for (vid_t b = 0; b < n; ++b) edges.push_back(LEdge{0, b, 10.0});
  for (vid_t a = 1; a < n; ++a) edges.push_back(LEdge{a, a, 0.1});
  const auto g = BipartiteGraph::from_edges(n, n, edges);
  const std::vector<weight_t> w(g.weights().begin(), g.weights().end());
  for (const MatcherKind kind :
       {MatcherKind::kExact, MatcherKind::kLocallyDominant,
        MatcherKind::kSuitor}) {
    const auto m = run_matcher(g, w, kind);
    // Hub takes one b; every leaf a != 0 with b = a still free must match.
    EXPECT_GE(m.cardinality, n - 1) << to_string(kind);
  }
}

TEST(Adversarial, NearTieWeightsStayConsistent) {
  // Weights differing at the 1e-15 level: tie-breaking must stay
  // deterministic and results valid.
  Xoshiro256 rng(777);
  std::vector<LEdge> edges;
  for (int i = 0; i < 200; ++i) {
    edges.push_back(LEdge{static_cast<vid_t>(rng.uniform_int(20)),
                          static_cast<vid_t>(rng.uniform_int(20)),
                          1.0 + 1e-15 * static_cast<double>(i % 7)});
  }
  const auto g = BipartiteGraph::from_edges(20, 20, edges);
  const std::vector<weight_t> w(g.weights().begin(), g.weights().end());
  for (const MatcherKind kind :
       {MatcherKind::kExact, MatcherKind::kLocallyDominant,
        MatcherKind::kGreedy, MatcherKind::kSuitor,
        MatcherKind::kPathGrowing}) {
    const auto a = run_matcher(g, w, kind);
    const auto b = run_matcher(g, w, kind);
    ASSERT_TRUE(is_valid_matching(g, a)) << to_string(kind);
    EXPECT_EQ(a.mate_a, b.mate_a) << to_string(kind);
  }
}

TEST(Adversarial, LargeSparseSmoke) {
  // 300k-edge graph through the fast matchers: sanity at bench scale
  // inside the unit-test budget.
  Xoshiro256 rng(4242);
  const vid_t n = 30000;
  std::vector<LEdge> edges;
  edges.reserve(300000);
  for (int i = 0; i < 300000; ++i) {
    edges.push_back(LEdge{static_cast<vid_t>(rng.uniform_int(n)),
                          static_cast<vid_t>(rng.uniform_int(n)),
                          rng.uniform(0.01, 1.0)});
  }
  const auto g = BipartiteGraph::from_edges(n, n, edges);
  const std::vector<weight_t> w(g.weights().begin(), g.weights().end());
  const auto ld = run_matcher(g, w, MatcherKind::kLocallyDominant);
  const auto su = run_matcher(g, w, MatcherKind::kSuitor);
  ASSERT_TRUE(is_valid_matching(g, ld));
  ASSERT_TRUE(is_valid_matching(g, su));
  EXPECT_TRUE(is_maximal_matching(g, w, ld));
  // Both are 1/2-approximations of the same optimum; they can't differ by
  // more than 2x from each other.
  EXPECT_GE(ld.weight, 0.5 * su.weight);
  EXPECT_GE(su.weight, 0.5 * ld.weight);
}

}  // namespace
}  // namespace netalign
