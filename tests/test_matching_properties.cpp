// Parameterized property sweep over all matchers and a family of graph
// shapes: the invariants from DESIGN.md Section 6 must hold for every
// (matcher, shape, seed) combination.
#include <gtest/gtest.h>

#include <tuple>

#include "helpers.hpp"
#include "matching/exact_mwm.hpp"
#include "matching/verify.hpp"
#include "netalign/rounding.hpp"

namespace netalign {
namespace {

using testing::own_weights;
using testing::random_bipartite;

struct GraphShape {
  vid_t na;
  vid_t nb;
  int edges;
  const char* label;
};

class MatcherProperty
    : public ::testing::TestWithParam<
          std::tuple<MatcherKind, GraphShape, std::uint64_t>> {};

TEST_P(MatcherProperty, InvariantsHold) {
  const auto [kind, shape, seed] = GetParam();
  Xoshiro256 rng(seed);
  const auto g = random_bipartite(shape.na, shape.nb, shape.edges, rng);
  const auto w = own_weights(g);

  const auto m = run_matcher(g, w, kind);
  ASSERT_TRUE(is_valid_matching(g, m));
  EXPECT_NEAR(m.weight, matching_weight(g, w, m), 1e-9);

  const auto exact = max_weight_matching_exact(g, w);
  EXPECT_LE(m.weight, exact.weight + 1e-6);
  if (kind == MatcherKind::kExact) {
    EXPECT_NEAR(m.weight, exact.weight, 1e-9);
  } else if (kind == MatcherKind::kAuction) {
    // eps-optimal, not 1/2-approximate-by-design; eps is tiny by default.
    EXPECT_NEAR(m.weight, exact.weight, 1e-6);
  } else {
    // All other approximations in this library are 1/2-approximations in
    // weight.
    EXPECT_GE(m.weight, 0.5 * exact.weight - 1e-9);
    if (kind != MatcherKind::kPathGrowing) {
      // Locally-dominant, greedy and suitor additionally return *maximal*
      // matchings, which implies the 1/2 cardinality bound; path-growing
      // does not (a path's DP may skip an extendable edge).
      EXPECT_TRUE(is_maximal_matching(g, w, m));
      EXPECT_GE(m.cardinality * 2, exact.cardinality);
    }
  }
}

const GraphShape kShapes[] = {
    {6, 6, 12, "square_sparse"},
    {6, 6, 30, "square_dense"},
    {3, 12, 20, "wide"},
    {12, 3, 20, "tall"},
    {1, 8, 8, "star"},
    {20, 20, 60, "medium"},
};

INSTANTIATE_TEST_SUITE_P(
    AllMatchersAllShapes, MatcherProperty,
    ::testing::Combine(
        ::testing::Values(MatcherKind::kExact, MatcherKind::kLocallyDominant,
                          MatcherKind::kGreedy, MatcherKind::kSuitor,
                          MatcherKind::kAuction, MatcherKind::kPathGrowing),
        ::testing::ValuesIn(kShapes),
        ::testing::Values(11ULL, 222ULL, 3333ULL, 44444ULL)),
    [](const ::testing::TestParamInfo<MatcherProperty::ParamType>& pinfo) {
      return to_string(std::get<0>(pinfo.param)) + "_" +
             std::get<1>(pinfo.param).label + "_s" +
             std::to_string(std::get<2>(pinfo.param));
    });

// Degenerate inputs every matcher must survive.
class MatcherDegenerate : public ::testing::TestWithParam<MatcherKind> {};

TEST_P(MatcherDegenerate, EmptyGraph) {
  const BipartiteGraph g = BipartiteGraph::from_edges(4, 5, {});
  const auto m = run_matcher(g, own_weights(g), GetParam());
  EXPECT_EQ(m.cardinality, 0);
  EXPECT_EQ(m.weight, 0.0);
}

TEST_P(MatcherDegenerate, AllNonPositiveWeights) {
  const std::vector<LEdge> edges = {{0, 0, -1.0}, {1, 1, 0.0}, {0, 1, -0.5}};
  const BipartiteGraph g = BipartiteGraph::from_edges(2, 2, edges);
  const auto m = run_matcher(g, own_weights(g), GetParam());
  EXPECT_EQ(m.cardinality, 0);
}

TEST_P(MatcherDegenerate, UniformWeightsProduceMaximumCardinality) {
  // Complete 3x3 bipartite graph with equal weights: every maximal
  // matching is perfect.
  std::vector<LEdge> edges;
  for (vid_t a = 0; a < 3; ++a) {
    for (vid_t b = 0; b < 3; ++b) edges.push_back(LEdge{a, b, 1.0});
  }
  const BipartiteGraph g = BipartiteGraph::from_edges(3, 3, edges);
  const auto m = run_matcher(g, own_weights(g), GetParam());
  EXPECT_EQ(m.cardinality, 3);
  EXPECT_DOUBLE_EQ(m.weight, 3.0);
}

INSTANTIATE_TEST_SUITE_P(
    AllMatchers, MatcherDegenerate,
    ::testing::Values(MatcherKind::kExact, MatcherKind::kLocallyDominant,
                      MatcherKind::kGreedy, MatcherKind::kSuitor,
                      MatcherKind::kAuction, MatcherKind::kPathGrowing),
    [](const ::testing::TestParamInfo<MatcherKind>& pinfo) {
      return to_string(pinfo.param);
    });

}  // namespace
}  // namespace netalign
