#include "netalign/objective.hpp"

#include <gtest/gtest.h>

#include "matching/exact_mwm.hpp"
#include "netalign/synthetic.hpp"
#include "util/prng.hpp"

namespace netalign {
namespace {

SyntheticInstance make_instance(std::uint64_t seed, vid_t n = 60) {
  PowerLawInstanceOptions opt;
  opt.n = n;
  opt.seed = seed;
  opt.expected_degree = 3.0;
  return make_power_law_instance(opt);
}

TEST(Objective, EmptyIndicatorIsZero) {
  const auto inst = make_instance(1);
  const auto S = SquaresMatrix::build(inst.problem);
  std::vector<std::uint8_t> x(inst.problem.L.num_edges(), 0);
  const auto v = evaluate_objective(inst.problem, S, x);
  EXPECT_EQ(v.weight, 0.0);
  EXPECT_EQ(v.overlap, 0.0);
  EXPECT_EQ(v.objective, 0.0);
}

TEST(Objective, IdentityMatchingOverlapMatchesBruteForce) {
  const auto inst = make_instance(2);
  const auto& p = inst.problem;
  const auto S = SquaresMatrix::build(p);

  BipartiteMatching identity;
  identity.mate_a.resize(p.A.num_vertices());
  identity.mate_b.resize(p.B.num_vertices());
  for (vid_t i = 0; i < p.A.num_vertices(); ++i) {
    identity.mate_a[i] = i;
    identity.mate_b[i] = i;
  }
  identity.cardinality = p.A.num_vertices();

  const auto v = evaluate_objective(p, S, identity);
  EXPECT_DOUBLE_EQ(v.overlap, brute_force_overlap(p, identity));
  // The identity matches every vertex with unit weights.
  EXPECT_DOUBLE_EQ(v.weight, static_cast<double>(p.A.num_vertices()));
  EXPECT_DOUBLE_EQ(v.objective, p.alpha * v.weight + p.beta * v.overlap);
}

TEST(Objective, IdentityOverlapCountsSharedBaseEdges) {
  // The identity alignment overlaps exactly the edges common to A and B.
  const auto inst = make_instance(3);
  const auto& p = inst.problem;
  const auto S = SquaresMatrix::build(p);
  BipartiteMatching identity;
  identity.mate_a.resize(p.A.num_vertices());
  identity.mate_b.resize(p.B.num_vertices());
  for (vid_t i = 0; i < p.A.num_vertices(); ++i) {
    identity.mate_a[i] = i;
    identity.mate_b[i] = i;
  }
  identity.cardinality = p.A.num_vertices();
  eid_t shared = 0;
  for (const auto& [u, v] : p.A.edge_list()) {
    if (p.B.has_edge(u, v)) ++shared;
  }
  const auto v = evaluate_objective(p, S, identity);
  EXPECT_DOUBLE_EQ(v.overlap, static_cast<double>(shared));
}

TEST(Objective, ArbitraryMatchingAgreesWithBruteForce) {
  const auto inst = make_instance(4);
  const auto& p = inst.problem;
  const auto S = SquaresMatrix::build(p);
  const auto w = std::vector<weight_t>(p.L.weights().begin(),
                                       p.L.weights().end());
  const auto m = max_weight_matching_exact(p.L, w);
  const auto v = evaluate_objective(p, S, m);
  EXPECT_DOUBLE_EQ(v.overlap, brute_force_overlap(p, m));
  EXPECT_NEAR(v.weight, m.weight, 1e-9);
}

TEST(Objective, IndicatorSizeMismatchThrows) {
  const auto inst = make_instance(5);
  const auto S = SquaresMatrix::build(inst.problem);
  std::vector<std::uint8_t> wrong(3, 0);
  EXPECT_THROW(evaluate_objective(inst.problem, S, wrong),
               std::invalid_argument);
}

TEST(FractionCorrect, FullIdentityIsOne) {
  BipartiteMatching m;
  m.mate_a = {0, 1, 2};
  std::vector<vid_t> ref = {0, 1, 2};
  EXPECT_DOUBLE_EQ(fraction_correct(m, ref), 1.0);
}

TEST(FractionCorrect, PartialCredit) {
  BipartiteMatching m;
  m.mate_a = {0, 2, kInvalidVid, 3};
  std::vector<vid_t> ref = {0, 1, 2, 3};
  EXPECT_DOUBLE_EQ(fraction_correct(m, ref), 0.5);
}

TEST(FractionCorrect, IgnoresUnreferencedVertices) {
  BipartiteMatching m;
  m.mate_a = {0, 5};
  std::vector<vid_t> ref = {0, kInvalidVid};
  EXPECT_DOUBLE_EQ(fraction_correct(m, ref), 1.0);
}

TEST(FractionCorrect, EmptyReferenceIsZero) {
  BipartiteMatching m;
  EXPECT_DOUBLE_EQ(fraction_correct(m, {}), 0.0);
}

}  // namespace
}  // namespace netalign
