#include "netalign/belief_prop.hpp"

#include <gtest/gtest.h>

#include "matching/verify.hpp"
#include "netalign/synthetic.hpp"

namespace netalign {
namespace {

SyntheticInstance easy_instance(std::uint64_t seed, vid_t n = 60,
                                double dbar = 2.0) {
  PowerLawInstanceOptions opt;
  opt.n = n;
  opt.seed = seed;
  opt.expected_degree = dbar;
  return make_power_law_instance(opt);
}

TEST(BeliefProp, ProducesValidMatching) {
  const auto inst = easy_instance(1);
  const auto S = SquaresMatrix::build(inst.problem);
  BeliefPropOptions opt;
  opt.max_iterations = 30;
  const auto result = belief_prop_align(inst.problem, S, opt);
  EXPECT_TRUE(is_valid_matching(inst.problem.L, result.matching));
  EXPECT_GT(result.value.objective, 0.0);
}

TEST(BeliefProp, RecoversIdentityOnEasyInstances) {
  const auto inst = easy_instance(2, 50, 2.0);
  const auto& p = inst.problem;
  const auto S = SquaresMatrix::build(p);
  BeliefPropOptions opt;
  opt.max_iterations = 100;
  opt.matcher = MatcherKind::kExact;
  const auto result = belief_prop_align(p, S, opt);
  // The perturbations can make the planted identity slightly suboptimal
  // (the paper observes objectives above the identity's); require most of
  // the identity back AND an objective at least as good as the identity's.
  EXPECT_GE(fraction_correct(result.matching, inst.reference), 0.85);
  BipartiteMatching identity;
  identity.mate_a.resize(p.A.num_vertices());
  identity.mate_b.resize(p.B.num_vertices());
  for (vid_t i = 0; i < p.A.num_vertices(); ++i) {
    identity.mate_a[i] = i;
    identity.mate_b[i] = i;
  }
  identity.cardinality = p.A.num_vertices();
  const auto id_value = evaluate_objective(p, S, identity);
  EXPECT_GE(result.value.objective, id_value.objective - 1e-9);
}

TEST(BeliefProp, ApproxRoundingTracksExactRounding) {
  // The paper's core claim (Figure 2): BP with approximate rounding is
  // nearly indistinguishable from BP with exact rounding, because the
  // iterates don't depend on the rounding at all.
  const auto inst = easy_instance(3, 80, 4.0);
  const auto S = SquaresMatrix::build(inst.problem);
  BeliefPropOptions exact, approx;
  exact.max_iterations = approx.max_iterations = 60;
  exact.matcher = MatcherKind::kExact;
  approx.matcher = MatcherKind::kLocallyDominant;
  exact.final_exact_round = approx.final_exact_round = true;
  const auto re = belief_prop_align(inst.problem, S, exact);
  const auto ra = belief_prop_align(inst.problem, S, approx);
  EXPECT_GE(ra.value.objective, 0.8 * re.value.objective);
}

TEST(BeliefProp, BatchedRoundingMatchesUnbatchedScores) {
  // Batching only changes *when* matchings are computed, not the iterates:
  // the per-iteration objective sequences must be identical when the
  // matcher is deterministic.
  const auto inst = easy_instance(4);
  const auto S = SquaresMatrix::build(inst.problem);
  BeliefPropOptions b1, b10;
  b1.max_iterations = b10.max_iterations = 20;
  b1.matcher = b10.matcher = MatcherKind::kGreedy;  // deterministic
  b1.batch_size = 1;
  b10.batch_size = 10;
  const auto r1 = belief_prop_align(inst.problem, S, b1);
  const auto r10 = belief_prop_align(inst.problem, S, b10);
  ASSERT_EQ(r1.objective_history.size(), r10.objective_history.size());
  for (std::size_t i = 0; i < r1.objective_history.size(); ++i) {
    EXPECT_NEAR(r1.objective_history[i], r10.objective_history[i], 1e-9)
        << "rounding event " << i;
  }
  EXPECT_NEAR(r1.value.objective, r10.value.objective, 1e-9);
}

TEST(BeliefProp, PartialFinalBatchIsFlushed) {
  const auto inst = easy_instance(5);
  const auto S = SquaresMatrix::build(inst.problem);
  BeliefPropOptions opt;
  opt.max_iterations = 7;  // 14 rounding events, batch 4 => partial flush
  opt.batch_size = 4;
  const auto result = belief_prop_align(inst.problem, S, opt);
  EXPECT_EQ(result.objective_history.size(), 14u);
}

TEST(BeliefProp, HistoryRecordsTwoEventsPerIteration) {
  const auto inst = easy_instance(6);
  const auto S = SquaresMatrix::build(inst.problem);
  BeliefPropOptions opt;
  opt.max_iterations = 12;
  const auto result = belief_prop_align(inst.problem, S, opt);
  EXPECT_EQ(result.objective_history.size(), 24u);
}

TEST(BeliefProp, StepTimersCoverAllSteps) {
  const auto inst = easy_instance(7);
  const auto S = SquaresMatrix::build(inst.problem);
  BeliefPropOptions opt;
  opt.max_iterations = 5;
  const auto result = belief_prop_align(inst.problem, S, opt);
  for (const char* step : {"compute_Fd", "othermax", "update_S", "damping"}) {
    EXPECT_EQ(result.timers.count(step), 5u) << step;
  }
  EXPECT_GT(result.timers.count("matching"), 0u);
}

TEST(BeliefProp, DampingFreezesMessagesEventually) {
  // With a small gamma the damping factor gamma^k collapses quickly and
  // late iterations repeat the same matching score.
  const auto inst = easy_instance(8);
  const auto S = SquaresMatrix::build(inst.problem);
  BeliefPropOptions opt;
  opt.max_iterations = 40;
  opt.gamma = 0.5;
  opt.matcher = MatcherKind::kGreedy;
  const auto result = belief_prop_align(inst.problem, S, opt);
  const auto n = result.objective_history.size();
  ASSERT_GE(n, 4u);
  EXPECT_NEAR(result.objective_history[n - 1],
              result.objective_history[n - 3], 1e-9);
  EXPECT_NEAR(result.objective_history[n - 2],
              result.objective_history[n - 4], 1e-9);
}

TEST(BeliefProp, IndependentOthermaxTasksGiveIdenticalResults) {
  // The Section IX task decomposition only changes scheduling; the
  // iterates (and with a deterministic matcher, the whole history) must
  // be identical.
  const auto inst = easy_instance(11);
  const auto S = SquaresMatrix::build(inst.problem);
  BeliefPropOptions serial, tasks;
  serial.max_iterations = tasks.max_iterations = 20;
  serial.matcher = tasks.matcher = MatcherKind::kGreedy;
  tasks.independent_othermax_tasks = true;
  const auto a = belief_prop_align(inst.problem, S, serial);
  const auto b = belief_prop_align(inst.problem, S, tasks);
  ASSERT_EQ(a.objective_history.size(), b.objective_history.size());
  for (std::size_t i = 0; i < a.objective_history.size(); ++i) {
    EXPECT_EQ(a.objective_history[i], b.objective_history[i]);
  }
  EXPECT_EQ(a.value.objective, b.value.objective);
}

TEST(BeliefProp, RejectsBadOptions) {
  const auto inst = easy_instance(9);
  const auto S = SquaresMatrix::build(inst.problem);
  BeliefPropOptions opt;
  opt.max_iterations = 0;
  EXPECT_THROW(belief_prop_align(inst.problem, S, opt),
               std::invalid_argument);
  opt.max_iterations = 5;
  opt.batch_size = 0;
  EXPECT_THROW(belief_prop_align(inst.problem, S, opt),
               std::invalid_argument);
  opt.batch_size = 1;
  opt.gamma = 1.5;
  EXPECT_THROW(belief_prop_align(inst.problem, S, opt),
               std::invalid_argument);
}

TEST(BeliefProp, DeterministicAcrossRuns) {
  const auto inst = easy_instance(10);
  const auto S = SquaresMatrix::build(inst.problem);
  BeliefPropOptions opt;
  opt.max_iterations = 15;
  opt.matcher = MatcherKind::kGreedy;
  const auto a = belief_prop_align(inst.problem, S, opt);
  const auto b = belief_prop_align(inst.problem, S, opt);
  EXPECT_EQ(a.value.objective, b.value.objective);
  EXPECT_EQ(a.objective_history, b.objective_history);
}

}  // namespace
}  // namespace netalign
