// Contention stress for BP's batched rounding: the batch flush runs the
// roundings concurrently (one work item per thread), so these tests drive
// it with batch sizes that do NOT divide the total rounding count (2 per
// iteration), at forced thread counts, with the deterministic suitor
// matcher -- making the end-to-end result comparable bit-for-bit across
// every configuration. A trace-enabled run must match an untraced one
// (telemetry must never perturb the computation).
#include "netalign/belief_prop.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <vector>

#include "netalign/synthetic.hpp"
#include "obs/trace.hpp"
#include "util/parallel.hpp"

namespace netalign {
namespace {

constexpr int kMaxStressThreads = 8;

BeliefPropOptions base_options() {
  BeliefPropOptions opt;
  opt.max_iterations = 12;  // 24 roundings per run
  // Suitor is deterministic for any thread count (suitor.hpp), so the
  // whole BP pipeline becomes reproducible and the assertions below can
  // demand exact agreement of the rounded matchings.
  opt.matcher = MatcherKind::kSuitor;
  opt.final_exact_round = false;
  opt.record_history = true;
  return opt;
}

struct Instance {
  NetAlignProblem problem;
  SquaresMatrix squares;
};

Instance make_instance() {
  PowerLawInstanceOptions popt;
  popt.n = 120;
  popt.seed = 97;
  Instance inst{make_power_law_instance(popt).problem, {}};
  inst.squares = SquaresMatrix::build(inst.problem);
  return inst;
}

TEST(BpRoundingStress, BatchSizesAgreeIncludingNonDividing) {
  const Instance inst = make_instance();
  ThreadCountGuard guard(4);
  BeliefPropOptions opt = base_options();
  opt.batch_size = 1;
  const AlignResult ref = belief_prop_align(inst.problem, inst.squares, opt);
  // 1 divides 24; 3 leaves a final flush of partial batches mid-run; 7 and
  // 20 leave remainder flushes at the end-of-run drain. All must pick the
  // same best solution: batching only regroups the roundings, it must not
  // reorder or drop them.
  for (const int batch : {3, 7, 20}) {
    opt.batch_size = batch;
    const AlignResult got = belief_prop_align(inst.problem, inst.squares, opt);
    EXPECT_EQ(got.matching.mate_a, ref.matching.mate_a) << "batch " << batch;
    EXPECT_EQ(got.best_iteration, ref.best_iteration) << "batch " << batch;
    EXPECT_NEAR(got.value.objective, ref.value.objective, 1e-9)
        << "batch " << batch;
    ASSERT_EQ(got.objective_history.size(), ref.objective_history.size());
    for (std::size_t i = 0; i < ref.objective_history.size(); ++i) {
      EXPECT_NEAR(got.objective_history[i], ref.objective_history[i], 1e-9)
          << "batch " << batch << " rounding " << i;
    }
  }
}

TEST(BpRoundingStress, ThreadCountsAgree) {
  const Instance inst = make_instance();
  BeliefPropOptions opt = base_options();
  opt.batch_size = 7;
  AlignResult ref;
  {
    ThreadCountGuard guard(1);
    ref = belief_prop_align(inst.problem, inst.squares, opt);
  }
  for (const int threads : {2, 4, kMaxStressThreads}) {
    ThreadCountGuard guard(threads);
    const AlignResult got = belief_prop_align(inst.problem, inst.squares, opt);
    EXPECT_EQ(got.matching.mate_a, ref.matching.mate_a)
        << "threads " << threads;
    // The objective sums float partials in thread-count-dependent order
    // (instrumented atomic combine); agreement is to rounding error only.
    EXPECT_NEAR(got.value.objective, ref.value.objective, 1e-9)
        << "threads " << threads;
  }
}

TEST(BpRoundingStress, IndependentOthermaxSectionsAgree) {
  const Instance inst = make_instance();
  ThreadCountGuard guard(kMaxStressThreads);
  BeliefPropOptions opt = base_options();
  opt.batch_size = 3;
  opt.independent_othermax_tasks = false;
  const AlignResult seq = belief_prop_align(inst.problem, inst.squares, opt);
  opt.independent_othermax_tasks = true;
  const AlignResult par = belief_prop_align(inst.problem, inst.squares, opt);
  EXPECT_EQ(par.matching.mate_a, seq.matching.mate_a);
  EXPECT_NEAR(par.value.objective, seq.value.objective, 1e-9);
}

TEST(BpRoundingStress, TracedRunMatchesUntraced) {
  const Instance inst = make_instance();
  ThreadCountGuard guard(4);
  BeliefPropOptions opt = base_options();
  opt.batch_size = 7;
  const AlignResult plain = belief_prop_align(inst.problem, inst.squares, opt);
  std::ostringstream sink;
  obs::TraceWriter writer(&sink);
  opt.trace = &writer;
  const AlignResult traced = belief_prop_align(inst.problem, inst.squares, opt);
  EXPECT_EQ(traced.matching.mate_a, plain.matching.mate_a);
  EXPECT_EQ(traced.best_iteration, plain.best_iteration);
  EXPECT_NEAR(traced.value.objective, plain.value.objective, 1e-9);
  EXPECT_FALSE(sink.str().empty());
}

}  // namespace
}  // namespace netalign
