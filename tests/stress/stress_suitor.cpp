// Contention stress for suitor_matching: adversarial tie and displacement
// structures at forced thread counts. Under the ThreadSanitizer tree
// (ctest -L tsan) these tests are the race detectors for the proposal
// word; in any tree they assert the determinism guarantee of suitor.hpp:
// identical output for every thread count and every repeat.
//
// The machine running CI may expose few cores; thread counts are forced
// with ThreadCountGuard so the schedules (and, under TSan, the
// happens-before analysis) still exercise real multi-thread interleavings.
#include "matching/suitor.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "../helpers.hpp"
#include "matching/verify.hpp"
#include "util/parallel.hpp"
#include "util/prng.hpp"

namespace netalign {
namespace {

using testing::random_bipartite;

constexpr int kMaxStressThreads = 8;

TEST(SuitorStress, AllEqualWeightsDeterministicAcrossThreadsAndRepeats) {
  // Every beats() comparison ties: the matching is decided purely by the
  // lexicographic tie-break, so one torn or stale proposal read anywhere
  // changes the output. 12000 edges over 1500x1500 keeps displacement
  // chains long enough to overlap across threads.
  Xoshiro256 rng(11);
  const auto g = random_bipartite(1500, 1500, 12000, rng);
  const std::vector<weight_t> w(static_cast<std::size_t>(g.num_edges()), 1.0);
  ThreadCountGuard one(1);
  const auto ref = suitor_matching(g, w);
  ASSERT_TRUE(is_valid_matching(g, ref));
  ASSERT_TRUE(is_maximal_matching(g, w, ref));
  for (const int threads : {2, 4, kMaxStressThreads}) {
    ThreadCountGuard guard(threads);
    for (int repeat = 0; repeat < 3; ++repeat) {
      const auto m = suitor_matching(g, w);
      ASSERT_EQ(m.mate_a, ref.mate_a)
          << "threads " << threads << " repeat " << repeat;
      ASSERT_EQ(m.mate_b, ref.mate_b)
          << "threads " << threads << " repeat " << repeat;
      ASSERT_DOUBLE_EQ(m.weight, ref.weight);
    }
  }
}

TEST(SuitorStress, HubContentionSkewedDegrees) {
  // 2048 spokes all propose to 4 hubs with equal weights: every hub's
  // proposal word is hammered by hundreds of threads' worth of displaced
  // re-proposals, the worst case for the commit path's lock + store.
  constexpr vid_t kSpokes = 2048, kHubs = 4;
  std::vector<LEdge> edges;
  edges.reserve(static_cast<std::size_t>(kSpokes) * kHubs);
  for (vid_t a = 0; a < kSpokes; ++a) {
    for (vid_t b = 0; b < kHubs; ++b) edges.push_back({a, b, 1.0});
  }
  const BipartiteGraph g = BipartiteGraph::from_edges(kSpokes, kHubs, edges);
  const std::vector<weight_t> w(static_cast<std::size_t>(g.num_edges()), 1.0);
  ThreadCountGuard one(1);
  const auto ref = suitor_matching(g, w);
  ASSERT_TRUE(is_valid_matching(g, ref));
  EXPECT_EQ(ref.cardinality, static_cast<eid_t>(kHubs));
  // The lexicographic tie-break hands hub b to spoke b (smallest proposer).
  for (vid_t b = 0; b < kHubs; ++b) EXPECT_EQ(ref.mate_b[b], b);
  ThreadCountGuard guard(kMaxStressThreads);
  for (int repeat = 0; repeat < 5; ++repeat) {
    const auto m = suitor_matching(g, w);
    ASSERT_EQ(m.mate_a, ref.mate_a) << "repeat " << repeat;
    ASSERT_EQ(m.mate_b, ref.mate_b) << "repeat " << repeat;
  }
}

TEST(SuitorStress, DisplacementCascadeOnSharedTarget) {
  // All spokes want b0 with strictly increasing weights, so proposals to
  // b0 displace each other up the weight order while losers drain to
  // per-spoke fallback edges. The final state is forced: the heaviest
  // spoke holds b0, everyone else holds their fallback.
  constexpr vid_t kN = 4096;
  std::vector<LEdge> edges;
  edges.reserve(2 * static_cast<std::size_t>(kN));
  for (vid_t a = 0; a < kN; ++a) {
    edges.push_back({a, 0, 1.0 + 1e-4 * static_cast<double>(a)});
    edges.push_back({a, a + 1, 0.5});
  }
  const BipartiteGraph g = BipartiteGraph::from_edges(kN, kN + 1, edges);
  std::vector<weight_t> w;
  w.reserve(edges.size());
  for (eid_t e = 0; e < g.num_edges(); ++e) w.push_back(g.edge_weight(e));
  for (const int threads : {1, 2, kMaxStressThreads}) {
    ThreadCountGuard guard(threads);
    const auto m = suitor_matching(g, w);
    ASSERT_TRUE(is_valid_matching(g, m)) << "threads " << threads;
    EXPECT_EQ(m.cardinality, static_cast<eid_t>(kN));
    EXPECT_EQ(m.mate_b[0], kN - 1) << "threads " << threads;
    for (vid_t a = 0; a < kN - 1; ++a) {
      ASSERT_EQ(m.mate_a[a], a + 1) << "threads " << threads << " a " << a;
    }
  }
}

TEST(SuitorStress, RepeatedMaxThreadRunsStableWithCounters) {
  // Stats accumulate through concurrent adds; totals need not be equal
  // across runs (stale scans rescan), but the matching must be, and the
  // proposal count can never be below the number of matched edges.
  Xoshiro256 rng(23);
  const auto g = random_bipartite(800, 800, 6400, rng);
  std::vector<weight_t> w(static_cast<std::size_t>(g.num_edges()));
  for (auto& v : w) v = rng.uniform_int(2) == 0 ? 1.0 : 2.0;
  ThreadCountGuard one(1);
  const auto ref = suitor_matching(g, w);
  ThreadCountGuard guard(kMaxStressThreads);
  for (int repeat = 0; repeat < 10; ++repeat) {
    SuitorStats stats;
    const auto m = suitor_matching(g, w, &stats);
    ASSERT_EQ(m.mate_a, ref.mate_a) << "repeat " << repeat;
    EXPECT_GE(stats.proposals, m.cardinality);
    EXPECT_GE(stats.proposals, stats.displaced);
  }
}

}  // namespace
}  // namespace netalign
