// Contention stress for locally_dominant_matching. Unlike suitor, the
// multi-thread result is allowed to vary with scheduling (see
// locally_dominant.hpp), so these tests pin down what IS guaranteed under
// adversarial inputs at forced thread counts: a valid maximal matching
// with at least half the optimal weight, single-thread determinism, and
// agreement between the two-sided and one-sided initializations on those
// invariants. Under the TSan tree they drive the queue fetch-and-adds and
// the phase-1/phase-2 handoffs at max contention.
#include "matching/locally_dominant.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "../helpers.hpp"
#include "matching/exact_mwm.hpp"
#include "matching/verify.hpp"
#include "util/parallel.hpp"
#include "util/prng.hpp"

namespace netalign {
namespace {

using testing::own_weights;
using testing::random_bipartite;

constexpr int kMaxStressThreads = 8;

TEST(LocallyDominantStress, AllEqualWeightsInvariantsAcrossThreads) {
  // All-equal weights put every tie-break (vertex-id comparison) on the
  // hot path simultaneously.
  Xoshiro256 rng(31);
  const auto g = random_bipartite(400, 400, 3200, rng);
  const std::vector<weight_t> w(static_cast<std::size_t>(g.num_edges()), 1.0);
  const auto exact = max_weight_matching_exact(g, w);
  for (const LdInit init : {LdInit::kTwoSided, LdInit::kOneSided}) {
    for (const int threads : {1, 2, 4, kMaxStressThreads}) {
      ThreadCountGuard guard(threads);
      const auto m = locally_dominant_matching(g, w, {init});
      ASSERT_TRUE(is_valid_matching(g, m)) << "threads " << threads;
      ASSERT_TRUE(is_maximal_matching(g, w, m)) << "threads " << threads;
      EXPECT_GE(m.weight, 0.5 * exact.weight - 1e-9) << "threads " << threads;
      EXPECT_GE(2 * m.cardinality, exact.cardinality) << "threads " << threads;
    }
  }
}

TEST(LocallyDominantStress, HubContentionSkewedDegrees) {
  // A few hubs on the B side concentrate all phase-2 rework: every round,
  // hundreds of spokes recompute candidates pointing at the same hubs.
  constexpr vid_t kSpokes = 2048, kHubs = 4;
  std::vector<LEdge> edges;
  edges.reserve(static_cast<std::size_t>(kSpokes) * kHubs);
  for (vid_t a = 0; a < kSpokes; ++a) {
    for (vid_t b = 0; b < kHubs; ++b) {
      edges.push_back({a, b, 1.0 + 1e-4 * static_cast<double>(b)});
    }
  }
  const BipartiteGraph g = BipartiteGraph::from_edges(kSpokes, kHubs, edges);
  const auto w = own_weights(g);
  for (const int threads : {1, kMaxStressThreads}) {
    ThreadCountGuard guard(threads);
    LdStats stats;
    const auto m = locally_dominant_matching(g, w, {}, &stats);
    ASSERT_TRUE(is_valid_matching(g, m)) << "threads " << threads;
    ASSERT_TRUE(is_maximal_matching(g, w, m)) << "threads " << threads;
    // Only kHubs edges can be matched; maximality forces all of them.
    EXPECT_EQ(m.cardinality, static_cast<eid_t>(kHubs));
    EXPECT_GT(stats.findmate_calls, 0);
  }
}

TEST(LocallyDominantStress, SingleThreadRepeatsBitIdentical) {
  // The documented single-thread guarantee: candidate selection depends
  // only on weights and ids, so repeats must agree exactly.
  Xoshiro256 rng(37);
  const auto g = random_bipartite(600, 600, 4800, rng);
  std::vector<weight_t> w(static_cast<std::size_t>(g.num_edges()));
  for (auto& v : w) v = rng.uniform_int(2) == 0 ? 1.0 : 2.0;
  ThreadCountGuard guard(1);
  const auto ref = locally_dominant_matching(g, w);
  for (int repeat = 0; repeat < 5; ++repeat) {
    const auto m = locally_dominant_matching(g, w);
    ASSERT_EQ(m.mate_a, ref.mate_a) << "repeat " << repeat;
    ASSERT_EQ(m.mate_b, ref.mate_b) << "repeat " << repeat;
  }
}

TEST(LocallyDominantStress, RepeatedMaxThreadRunsKeepInvariants) {
  Xoshiro256 rng(41);
  const auto g = random_bipartite(800, 800, 6400, rng);
  const std::vector<weight_t> w(static_cast<std::size_t>(g.num_edges()), 1.0);
  ThreadCountGuard guard(kMaxStressThreads);
  for (int repeat = 0; repeat < 10; ++repeat) {
    const auto m = locally_dominant_matching(g, w);
    ASSERT_TRUE(is_valid_matching(g, m)) << "repeat " << repeat;
    ASSERT_TRUE(is_maximal_matching(g, w, m)) << "repeat " << repeat;
  }
}

}  // namespace
}  // namespace netalign
