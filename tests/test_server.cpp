// Alignment-server protocol and lifecycle tests (docs/SERVER.md).
//
// Four layers, mostly socket-free so failures stay attributable:
// protocol framing (the compatibility rules the header promises: unknown
// fields ignored, unknown methods rejected, wrong types are bad_request),
// the content-addressed LRU cache, the job manager's lifecycle (cancel of
// queued vs running jobs, admission control), and the tail-tolerant JSONL
// reader both progress streaming and trace_summary ride on. A final
// section drives a real Server end to end -- over its AF_UNIX socket and
// over authenticated loopback TCP -- including the request-size cap,
// per-byte frame splits, mid-frame resets, idle reaping, and the
// connection cap.
#include "server/protocol.hpp"

#include <gtest/gtest.h>
#include <sys/socket.h>
#include <sys/stat.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <thread>

#include "netalign/synthetic.hpp"
#include "io/problem_io.hpp"
#include "obs/jsonl_tail.hpp"
#include "server/cache.hpp"
#include "server/client.hpp"
#include "server/jobs.hpp"
#include "server/server.hpp"
#include "server/transport.hpp"

namespace netalign::server {
namespace {

/// Per-process scratch path: ctest runs each gtest case as its own
/// process, concurrently, so a bare TempDir() name would make the socket
/// tests bind over each other's daemons and deadlock.
std::string tmp_path(const std::string& name) {
  return ::testing::TempDir() + "na" + std::to_string(::getpid()) + "_" +
         name;
}

/// Canonical text of a small synthetic instance.
std::string problem_text(vid_t n = 60, std::uint64_t seed = 7) {
  PowerLawInstanceOptions opt;
  opt.n = n;
  opt.expected_degree = 4.0;
  opt.seed = seed;
  std::ostringstream out;
  write_problem(out, make_power_law_instance(opt).problem);
  return out.str();
}

/// Submit request JSON with an inline problem.
std::string submit_line(const std::string& text, std::int64_t iters) {
  std::string line = R"({"method":"submit","problem":)";
  obs::append_json_string(line, text);
  line += R"(,"solver":"bp","iters":)" + std::to_string(iters) + "}";
  return line;
}

Request parse_ok(const std::string& line) {
  Request req;
  ErrorCode code = ErrorCode::kInternal;
  std::string message;
  EXPECT_TRUE(parse_request(line, req, code, message)) << message;
  return req;
}

ErrorCode parse_fail(const std::string& line) {
  Request req;
  ErrorCode code = ErrorCode::kInternal;
  std::string message;
  EXPECT_FALSE(parse_request(line, req, code, message));
  EXPECT_FALSE(message.empty());
  return code;
}

// --- protocol framing ------------------------------------------------------

TEST(Protocol, MalformedJsonIsBadRequest) {
  EXPECT_EQ(parse_fail(R"({"method":"ping")"), ErrorCode::kBadRequest);
  EXPECT_EQ(parse_fail("not json at all"), ErrorCode::kBadRequest);
  EXPECT_EQ(parse_fail(R"([1, 2, 3])"), ErrorCode::kBadRequest);
  EXPECT_EQ(parse_fail(R"({"no_method": 1})"), ErrorCode::kBadRequest);
}

TEST(Protocol, UnknownMethodIsItsOwnError) {
  EXPECT_EQ(parse_fail(R"({"method":"align_all_the_things"})"),
            ErrorCode::kUnknownMethod);
}

TEST(Protocol, UnknownFieldsAreIgnored) {
  // Forward compatibility: a newer client may send fields this server
  // does not know. They must not be errors.
  const Request req = parse_ok(
      R"({"method":"status","job":3,"future_field":{"deep":[1,2]}})");
  EXPECT_EQ(req.method, Method::kStatus);
  EXPECT_EQ(req.job, 3);
}

TEST(Protocol, WrongFieldTypeIsBadRequest) {
  EXPECT_EQ(parse_fail(R"({"method":"status","job":"three"})"),
            ErrorCode::kBadRequest);
  EXPECT_EQ(parse_fail(R"({"method":"shutdown","now":1})"),
            ErrorCode::kBadRequest);
  EXPECT_EQ(parse_fail(R"({"method":"progress","job":1,"cursor":1.5})"),
            ErrorCode::kBadRequest);
}

TEST(Protocol, AuthParseRules) {
  const Request req = parse_ok(R"({"method":"auth","token":"s3cret"})");
  EXPECT_EQ(req.method, Method::kAuth);
  EXPECT_EQ(req.auth_token, "s3cret");
  EXPECT_EQ(parse_fail(R"({"method":"auth"})"), ErrorCode::kBadRequest);
  EXPECT_EQ(parse_fail(R"({"method":"auth","token":""})"),
            ErrorCode::kBadRequest);
  EXPECT_EQ(parse_fail(R"({"method":"auth","token":17})"),
            ErrorCode::kBadRequest);
  // The constant-time compare walks the whole candidate, so the parser
  // bounds how much work one line can demand.
  std::string oversized = R"({"method":"auth","token":")";
  oversized.append(5000, 'a');
  oversized += "\"}";
  EXPECT_EQ(parse_fail(oversized), ErrorCode::kBadRequest);
}

TEST(Protocol, ErrorTaxonomyIsClosed) {
  // Every emitted code round-trips through the taxonomy check the
  // fuzzer relies on; strings outside it are rejected.
  EXPECT_TRUE(known_error_code("bad_request"));
  EXPECT_TRUE(known_error_code("too_large"));
  EXPECT_TRUE(known_error_code("auth_required"));
  EXPECT_TRUE(known_error_code("auth_failed"));
  EXPECT_FALSE(known_error_code("?"));
  EXPECT_FALSE(known_error_code(""));
  EXPECT_FALSE(known_error_code("AUTH_FAILED"));
}

TEST(Protocol, SubmitNeedsExactlyOneProblemSource) {
  EXPECT_EQ(parse_fail(R"({"method":"submit"})"), ErrorCode::kBadRequest);
  EXPECT_EQ(parse_fail(
                R"({"method":"submit","problem":"x","problem_path":"y"})"),
            ErrorCode::kBadRequest);
}

TEST(Protocol, SubmitValidatesNamesAndRanges) {
  EXPECT_EQ(parse_fail(R"({"method":"submit","problem":"x","solver":"gpt"})"),
            ErrorCode::kBadRequest);
  EXPECT_EQ(
      parse_fail(R"({"method":"submit","problem":"x","matcher":"magic"})"),
      ErrorCode::kBadRequest);
  EXPECT_EQ(parse_fail(R"({"method":"submit","problem":"x","iters":-1})"),
            ErrorCode::kBadRequest);
  EXPECT_EQ(parse_fail(R"({"method":"submit","problem":"x","batch":0})"),
            ErrorCode::kBadRequest);
  // Upper bounds too: iters is the job's DRR scheduling cost and all
  // three feed solver `int` options, so absurd values must die here.
  EXPECT_EQ(parse_fail(
                R"({"method":"submit","problem":"x","iters":1000000000001})"),
            ErrorCode::kBadRequest);
  EXPECT_EQ(parse_fail(
                R"({"method":"submit","problem":"x","batch":2000000000})"),
            ErrorCode::kBadRequest);
  EXPECT_EQ(parse_fail(
                R"({"method":"submit","problem":"x","ranks":2000000000})"),
            ErrorCode::kBadRequest);
  EXPECT_EQ(parse_fail(
                R"({"method":"submit","problem":"x","deadline_seconds":-2})"),
            ErrorCode::kBadRequest);
}

TEST(Protocol, SubmitDefaultsMirrorTheCli) {
  const Request req = parse_ok(R"({"method":"submit","problem":"x"})");
  EXPECT_EQ(req.submit.solver, "bp");
  EXPECT_EQ(req.submit.matcher, "approx");
  EXPECT_EQ(req.submit.batch, 1);
  EXPECT_EQ(req.submit.deadline_seconds, 0.0);
  EXPECT_TRUE(req.submit.tenant.empty());  // resolved to "default" later
}

TEST(Protocol, TenantFieldParsesAndTypeChecks) {
  const Request req = parse_ok(
      R"({"method":"submit","problem":"x","tenant":"team-a"})");
  EXPECT_EQ(req.submit.tenant, "team-a");
  EXPECT_EQ(parse_fail(R"({"method":"submit","problem":"x","tenant":7})"),
            ErrorCode::kBadRequest);
}

TEST(Protocol, NewErrorCodesHaveStableNames) {
  EXPECT_STREQ(to_string(ErrorCode::kQuotaExceeded), "quota_exceeded");
  EXPECT_STREQ(to_string(ErrorCode::kExpired), "expired");
}

TEST(Protocol, IdIsEchoedEvenOnErrors) {
  Request req;
  ErrorCode code = ErrorCode::kInternal;
  std::string message;
  ASSERT_FALSE(
      parse_request(R"({"method":"nope","id":"req-17"})", req, code, message));
  EXPECT_EQ(req.id_json, R"("req-17")");
  const std::string resp = error_response(req.id_json, code, message);
  obs::JsonValue doc = obs::parse_json(resp);
  ASSERT_NE(doc.find("id"), nullptr);
  EXPECT_EQ(doc.find("id")->as_string(), "req-17");
  EXPECT_FALSE(doc.find("ok")->as_bool());
  EXPECT_EQ(doc.find("error")->find("code")->as_string(), "unknown_method");
}

TEST(Protocol, ResponseBuilderProducesParseableJson) {
  ResponseBuilder r(true, "42");
  r.field("name", "a \"quoted\" value");
  r.field("count", std::int64_t{7});
  r.field("ratio", 0.5);
  r.field("flag", true);
  r.field("literal", "drain");  // must not decay into the bool overload
  r.raw("list", "[1,2]");
  const obs::JsonValue doc = obs::parse_json(std::move(r).str());
  EXPECT_TRUE(doc.find("ok")->as_bool());
  EXPECT_EQ(doc.find("id")->as_number(), 42.0);
  EXPECT_EQ(doc.find("name")->as_string(), "a \"quoted\" value");
  EXPECT_EQ(doc.find("count")->as_number(), 7.0);
  EXPECT_EQ(doc.find("flag")->as_bool(), true);
  EXPECT_EQ(doc.find("literal")->as_string(), "drain");
  EXPECT_EQ(doc.find("list")->items().size(), 2u);
}

// --- content-addressed cache -----------------------------------------------

TEST(ProblemCache, KeyIsContentNotName) {
  const std::string a = problem_text(60, 7);
  const std::string b = problem_text(60, 8);
  EXPECT_EQ(content_key(a), content_key(a));
  EXPECT_NE(content_key(a), content_key(b));
  EXPECT_EQ(content_key(a).size(), 16u);
}

TEST(ProblemCache, RepeatSubmissionHits) {
  obs::Counters counters;
  ProblemCache cache(4, &counters);
  const std::string text = problem_text();
  bool hit = true;
  const auto first = cache.get(content_key(text), text, hit);
  EXPECT_FALSE(hit);
  const auto second = cache.get(content_key(text), text, hit);
  EXPECT_TRUE(hit);
  EXPECT_EQ(first.get(), second.get());  // same built entry, not a rebuild
  EXPECT_EQ(counters.total("server.cache_hit"), 1);
  EXPECT_EQ(counters.total("server.cache_miss"), 1);
  EXPECT_GT(first->squares.nnz, 0);
  EXPECT_FALSE(first->squares.is_implicit());  // default overload: explicit
}

TEST(ProblemCache, ModeIsASecondKeyDimension) {
  obs::Counters counters;
  ProblemCache cache(4, &counters);
  const std::string text = problem_text();
  const std::string key = content_key(text);
  bool hit = true;
  SquaresBackendOptions implicit_opts;
  implicit_opts.mode = SquaresMode::kImplicit;
  const auto exp = cache.get(key, text, hit);
  EXPECT_FALSE(hit);
  const auto imp = cache.get(key, text, implicit_opts, hit);
  EXPECT_FALSE(hit);  // same bytes, different backend: a distinct entry
  EXPECT_NE(exp.get(), imp.get());
  EXPECT_TRUE(imp->squares.is_implicit());
  EXPECT_EQ(exp->squares.nnz, imp->squares.nnz);
  const auto imp2 = cache.get(key, text, implicit_opts, hit);
  EXPECT_TRUE(hit);
  EXPECT_EQ(imp.get(), imp2.get());
  EXPECT_EQ(cache.size(), 2u);
}

TEST(ProblemCache, EvictsLeastRecentlyUsed) {
  obs::Counters counters;
  ProblemCache cache(2, &counters);
  const std::string a = problem_text(50, 1);
  const std::string b = problem_text(50, 2);
  const std::string c = problem_text(50, 3);
  bool hit = false;
  cache.get(content_key(a), a, hit);
  cache.get(content_key(b), b, hit);
  cache.get(content_key(a), a, hit);  // touch a; b is now LRU
  EXPECT_TRUE(hit);
  cache.get(content_key(c), c, hit);  // evicts b
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(counters.total("server.cache_evicted"), 1);
  cache.get(content_key(a), a, hit);
  EXPECT_TRUE(hit);
  cache.get(content_key(b), b, hit);
  EXPECT_FALSE(hit);  // b was the victim
}

TEST(ProblemCache, BuildFailureIsNotCached) {
  obs::Counters counters;
  ProblemCache cache(2, &counters);
  const std::string junk = "NETALIGN-PROBLEM 999\nnot a problem\n";
  bool hit = false;
  EXPECT_THROW(cache.get(content_key(junk), junk, hit), std::exception);
  EXPECT_EQ(cache.size(), 0u);
  // The same key again still *builds* (and fails) instead of replaying a
  // poisoned entry.
  EXPECT_THROW(cache.get(content_key(junk), junk, hit), std::exception);
  EXPECT_FALSE(hit);
}

// --- job lifecycle ---------------------------------------------------------

JobManagerOptions manager_options(int workers, std::size_t queue_cap,
                                  const std::string& dir) {
  JobManagerOptions opt;
  opt.workers = workers;
  opt.queue_cap = queue_cap;
  opt.work_dir = tmp_path(dir);
  // Journaling is on by default, so a re-run in the same process (e.g.
  // --gtest_repeat) would otherwise recover the previous iteration's
  // jobs and skew counts; start every manager from a clean slate.
  std::error_code ec;
  std::filesystem::remove_all(opt.work_dir, ec);
  return opt;
}

SubmitParams bp_job(const std::string& text, std::int64_t iters) {
  SubmitParams spec;
  spec.problem_text = text;
  spec.solver = "bp";
  spec.iters = iters;
  return spec;
}

/// Poll until the job leaves queued/running (bounded; test-fails on hang).
JobManager::JobResult wait_terminal(JobManager& jobs, std::int64_t id,
                                    int timeout_seconds = 60) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::seconds(timeout_seconds);
  for (;;) {
    const auto r = jobs.result(id);
    if (!r.has_value()) {
      ADD_FAILURE() << "job " << id << " vanished";
      return {};
    }
    if (r->state != JobState::kQueued && r->state != JobState::kRunning) {
      return *r;
    }
    if (std::chrono::steady_clock::now() > deadline) {
      ADD_FAILURE() << "job " << id << " did not finish in time";
      return *r;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
}

TEST(JobManager, RunsAJobToDone) {
  obs::Counters counters;
  ProblemCache cache(4, &counters);
  JobManager jobs(manager_options(1, 4, "jm_done"), cache, &counters);
  const auto out = jobs.submit(bp_job(problem_text(), 15));
  ASSERT_TRUE(out.accepted) << out.message;
  const auto result = wait_terminal(jobs, out.job);
  EXPECT_EQ(result.state, JobState::kDone);
  ASSERT_TRUE(result.has_result);
  EXPECT_EQ(result.stopped_reason, "completed");
  EXPECT_EQ(result.iterations_completed, 15);
  EXPECT_GT(result.cardinality, 0);
  EXPECT_EQ(static_cast<std::int64_t>(result.pairs.size()),
            result.cardinality);
  // Progress is the solver's own trace, re-served.
  const auto progress = jobs.progress(out.job, 0);
  ASSERT_TRUE(progress.has_value());
  EXPECT_GT(progress->next_cursor, 0);
  // A cursor past the end yields no events, not an error.
  const auto tail = jobs.progress(out.job, progress->next_cursor + 100);
  EXPECT_TRUE(tail->events.empty());
  const auto status = jobs.status(out.job);
  ASSERT_TRUE(status.has_value());
  EXPECT_EQ(status->state, JobState::kDone);
  EXPECT_GT(status->rounds, 0);
}

TEST(JobManager, FailedProblemReportsError) {
  obs::Counters counters;
  ProblemCache cache(4, &counters);
  JobManager jobs(manager_options(1, 4, "jm_fail"), cache, &counters);
  SubmitParams spec = bp_job("this is not a problem file\n", 5);
  const auto out = jobs.submit(spec);
  ASSERT_TRUE(out.accepted);
  const auto result = wait_terminal(jobs, out.job);
  EXPECT_EQ(result.state, JobState::kFailed);
  EXPECT_FALSE(result.has_result);
  EXPECT_FALSE(result.error.empty());
  EXPECT_EQ(counters.total("server.jobs_failed"), 1);
}

TEST(JobManager, UnknownJobIsEmpty) {
  obs::Counters counters;
  ProblemCache cache(2, &counters);
  JobManager jobs(manager_options(1, 2, "jm_unknown"), cache, &counters);
  EXPECT_FALSE(jobs.status(99).has_value());
  EXPECT_FALSE(jobs.result(99).has_value());
  EXPECT_FALSE(jobs.cancel(99).found);
}

TEST(JobManager, CancelQueuedVsRunning) {
  obs::Counters counters;
  ProblemCache cache(4, &counters);
  // One worker so the second submission is guaranteed to queue behind the
  // first. The running job gets an iteration count it could never finish
  // inside the test budget; cancellation is what ends it.
  JobManager jobs(manager_options(1, 8, "jm_cancel"), cache, &counters);
  const std::string text = problem_text();
  const auto running = jobs.submit(bp_job(text, 50'000'000));
  ASSERT_TRUE(running.accepted);
  // Wait until it actually occupies the worker.
  const auto spin_deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(30);
  while (jobs.status(running.job)->state == JobState::kQueued) {
    ASSERT_LT(std::chrono::steady_clock::now(), spin_deadline);
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  const auto queued = jobs.submit(bp_job(problem_text(60, 9), 10));
  ASSERT_TRUE(queued.accepted);

  // Cancelling a queued job is immediate: it never reaches a worker.
  const auto cancel_queued = jobs.cancel(queued.job);
  ASSERT_TRUE(cancel_queued.found);
  EXPECT_EQ(cancel_queued.state, JobState::kCancelled);
  const auto queued_result = jobs.result(queued.job);
  EXPECT_EQ(queued_result->state, JobState::kCancelled);
  EXPECT_FALSE(queued_result->has_result);

  // Cancelling a running job latches the budget flag; the solver stops at
  // the next iteration boundary with its best-so-far matching.
  const auto cancel_running = jobs.cancel(running.job);
  ASSERT_TRUE(cancel_running.found);
  const auto result = wait_terminal(jobs, running.job);
  EXPECT_EQ(result.state, JobState::kCancelled);
  ASSERT_TRUE(result.has_result);
  EXPECT_EQ(result.stopped_reason, "cancelled");
  EXPECT_LT(result.iterations_completed, 50'000'000);
  EXPECT_EQ(counters.total("server.jobs_cancelled"), 2);
}

/// Poll until the job occupies a worker (bounded; test-fails on hang).
void wait_running(JobManager& jobs, std::int64_t id) {
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(30);
  for (;;) {
    const auto st = jobs.status(id);
    ASSERT_TRUE(st.has_value()) << "job " << id << " vanished";
    if (st->state == JobState::kRunning) return;
    ASSERT_EQ(st->state, JobState::kQueued) << "job " << id
                                            << " finished prematurely";
    ASSERT_LT(std::chrono::steady_clock::now(), deadline);
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
}

SubmitParams tenant_job(const std::string& text, std::int64_t iters,
                        const std::string& tenant) {
  SubmitParams spec = bp_job(text, iters);
  spec.tenant = tenant;
  return spec;
}

TEST(JobManager, AdmissionControlRejectsWhenFull) {
  obs::Counters counters;
  ProblemCache cache(4, &counters);
  JobManager jobs(manager_options(1, 1, "jm_admission"), cache, &counters);
  const auto running = jobs.submit(bp_job(problem_text(), 50'000'000));
  ASSERT_TRUE(running.accepted);
  const auto spin_deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(30);
  while (jobs.status(running.job)->state == JobState::kQueued) {
    ASSERT_LT(std::chrono::steady_clock::now(), spin_deadline);
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  const auto queued = jobs.submit(bp_job(problem_text(), 10));
  ASSERT_TRUE(queued.accepted);  // fills the queue (cap 1)
  const auto rejected = jobs.submit(bp_job(problem_text(), 10));
  EXPECT_FALSE(rejected.accepted);
  EXPECT_EQ(rejected.code, ErrorCode::kRejected);
  EXPECT_EQ(counters.total("server.jobs_rejected"), 1);
  // Draining rejects even with queue space.
  jobs.begin_drain();
  const auto drained = jobs.submit(bp_job(problem_text(), 10));
  EXPECT_FALSE(drained.accepted);
  EXPECT_EQ(drained.code, ErrorCode::kShuttingDown);
  jobs.cancel(running.job);
  jobs.cancel(queued.job);
}

// --- fair scheduling, quotas, retention ------------------------------------

TEST(JobManager, DeficitRoundRobinLetsAPoliteTenantThrough) {
  obs::Counters counters;
  ProblemCache cache(4, &counters);
  JobManager jobs(manager_options(1, 16, "jm_drr"), cache, &counters);
  const std::string text = problem_text();
  // Occupy the single worker so everything below queues deterministically.
  const auto blocker = jobs.submit(bp_job(text, 50'000'000));
  ASSERT_TRUE(blocker.accepted);
  wait_running(jobs, blocker.job);
  // An aggressive tenant floods first, with enormous jobs...
  std::vector<std::int64_t> agg;
  for (int i = 0; i < 4; ++i) {
    const auto out = jobs.submit(tenant_job(text, 30'000'000, "aggressive"));
    ASSERT_TRUE(out.accepted) << out.message;
    agg.push_back(out.job);
  }
  // ...then a polite tenant asks for one small job.
  const auto polite =
      jobs.submit(tenant_job(problem_text(60, 9), 10, "polite"));
  ASSERT_TRUE(polite.accepted) << polite.message;

  jobs.cancel(blocker.job);
  const auto polite_result = wait_terminal(jobs, polite.job);
  EXPECT_EQ(polite_result.state, JobState::kDone);
  // FIFO would have run all four 30M-iteration jobs first. DRR charges
  // cost = the iteration budget, so the 10-iteration job's first quantum
  // covers it long before any aggressive job becomes affordable: at the
  // moment the polite job finishes, no aggressive job has.
  bool saw_aggressive = false;
  for (const auto& t : jobs.queue_stats().tenants) {
    if (t.tenant != "aggressive") continue;
    saw_aggressive = true;
    EXPECT_EQ(t.completed, 0);
    EXPECT_EQ(t.queued + t.running, 4);
  }
  EXPECT_TRUE(saw_aggressive);
  for (const auto id : agg) jobs.cancel(id);
  for (const auto id : agg) wait_terminal(jobs, id);
}

TEST(JobManager, TenantQueueQuotaIsIndependentOfOtherTenants) {
  obs::Counters counters;
  ProblemCache cache(4, &counters);
  JobManagerOptions opt = manager_options(1, 16, "jm_quota");
  opt.tenant_queue_cap = 2;
  JobManager jobs(opt, cache, &counters);
  const std::string text = problem_text();
  const auto blocker = jobs.submit(bp_job(text, 50'000'000));
  ASSERT_TRUE(blocker.accepted);
  wait_running(jobs, blocker.job);
  ASSERT_TRUE(jobs.submit(tenant_job(text, 10, "a")).accepted);
  ASSERT_TRUE(jobs.submit(tenant_job(text, 10, "a")).accepted);
  const auto over = jobs.submit(tenant_job(text, 10, "a"));
  EXPECT_FALSE(over.accepted);
  EXPECT_EQ(over.code, ErrorCode::kQuotaExceeded);
  EXPECT_EQ(counters.total("server.jobs_quota_exceeded"), 1);
  // One tenant sitting at its quota must not tax anyone else's admission:
  // the server-wide queue (cap 16) still has room.
  EXPECT_TRUE(jobs.submit(tenant_job(text, 10, "b")).accepted);
  jobs.cancel(blocker.job);
  // The destructor's shutdown(true) cancels the rest.
}

TEST(JobManager, TenantRunningCapLeavesWorkersForOthers) {
  obs::Counters counters;
  ProblemCache cache(4, &counters);
  JobManagerOptions opt = manager_options(2, 16, "jm_runcap");
  opt.tenant_running_cap = 1;
  JobManager jobs(opt, cache, &counters);
  const std::string text = problem_text();
  const auto a1 = jobs.submit(tenant_job(text, 50'000'000, "a"));
  const auto a2 = jobs.submit(tenant_job(text, 50'000'000, "a"));
  ASSERT_TRUE(a1.accepted);
  ASSERT_TRUE(a2.accepted);
  wait_running(jobs, a1.job);
  const auto b1 = jobs.submit(tenant_job(text, 50'000'000, "b"));
  ASSERT_TRUE(b1.accepted);
  // b reaches the second worker even though a2 queued first: tenant a is
  // at its running cap, so a2 cannot be the one occupying that worker.
  wait_running(jobs, b1.job);
  EXPECT_EQ(jobs.status(a2.job)->state, JobState::kQueued);
  // The cap frees as a1 stops, and only then does a2 run.
  jobs.cancel(a1.job);
  wait_running(jobs, a2.job);
  for (const auto id : {a2.job, b1.job}) jobs.cancel(id);
  for (const auto id : {a1.job, a2.job, b1.job}) wait_terminal(jobs, id);
}

TEST(JobManager, RetentionEvictsOldestTerminalJobsWithTheirTraces) {
  obs::Counters counters;
  ProblemCache cache(4, &counters);
  JobManagerOptions opt = manager_options(1, 16, "jm_retain");
  opt.retained_cap = 4;
  JobManager jobs(opt, cache, &counters);
  const std::string text = problem_text();
  std::vector<std::int64_t> ids;
  for (int i = 0; i < 10; ++i) {
    const auto out = jobs.submit(bp_job(text, 1));
    ASSERT_TRUE(out.accepted) << out.message;
    ids.push_back(out.job);
    wait_terminal(jobs, out.job);  // serialize: terminal order == id order
  }
  const auto stats = jobs.queue_stats();
  EXPECT_EQ(stats.retained, 4);
  EXPECT_EQ(stats.retained_cap, 4);
  EXPECT_EQ(stats.evicted, 6);
  EXPECT_EQ(counters.total("server.jobs_evicted"), 6);
  for (int i = 0; i < 6; ++i) {
    EXPECT_FALSE(jobs.status(ids[i]).has_value());
    EXPECT_FALSE(jobs.result(ids[i]).has_value());
    EXPECT_FALSE(jobs.cancel(ids[i]).found);
    EXPECT_TRUE(jobs.expired(ids[i]));  // evicted, not never-issued
  }
  for (int i = 6; i < 10; ++i) {
    ASSERT_TRUE(jobs.result(ids[i]).has_value());
    EXPECT_FALSE(jobs.expired(ids[i]));
  }
  EXPECT_FALSE(jobs.expired(0));
  EXPECT_FALSE(jobs.expired(ids.back() + 1));  // never issued
  // Eviction reclaims the on-disk trace too (the unlink happens just
  // after the terminal transition, off the lock: poll briefly).
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(30);
  std::size_t traces = 0;
  for (;;) {
    traces = 0;
    for (const auto& entry :
         std::filesystem::directory_iterator(opt.work_dir)) {
      // Count job traces only: the work dir also holds journal.jsonl now.
      const std::string name = entry.path().filename().string();
      traces += name.find(".trace.jsonl") != std::string::npos ? 1u : 0u;
    }
    if (traces == 4 || std::chrono::steady_clock::now() > deadline) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_EQ(traces, 4u);
}

TEST(JobManager, RetentionRefreshesRecencyOnAccess) {
  obs::Counters counters;
  ProblemCache cache(4, &counters);
  JobManagerOptions opt = manager_options(1, 16, "jm_lru");
  opt.retained_cap = 2;
  JobManager jobs(opt, cache, &counters);
  const std::string text = problem_text();
  const auto j1 = jobs.submit(bp_job(text, 1));
  wait_terminal(jobs, j1.job);
  const auto j2 = jobs.submit(bp_job(text, 1));
  wait_terminal(jobs, j2.job);
  // Reading j1 refreshes its recency: j2 is now the eviction candidate.
  ASSERT_TRUE(jobs.status(j1.job).has_value());
  const auto j3 = jobs.submit(bp_job(text, 1));
  wait_terminal(jobs, j3.job);
  EXPECT_TRUE(jobs.expired(j2.job));
  EXPECT_FALSE(jobs.status(j2.job).has_value());
  EXPECT_TRUE(jobs.status(j1.job).has_value());
  EXPECT_TRUE(jobs.status(j3.job).has_value());
}

TEST(JobManager, ProblemPathIsReadByTheWorkerAndRekeyedFromBytes) {
  obs::Counters counters;
  ProblemCache cache(4, &counters);
  JobManager jobs(manager_options(1, 4, "jm_path"), cache, &counters);
  const std::string text = problem_text();
  const std::string path = tmp_path("jm_path_problem.txt");
  std::ofstream(path, std::ios::trunc) << text << std::flush;
  SubmitParams spec;
  spec.problem_path = path;
  spec.solver = "bp";
  spec.iters = 5;
  const auto out = jobs.submit(spec);
  ASSERT_TRUE(out.accepted) << out.message;
  // At submit time only a provisional path+mtime key exists (the bytes
  // are deliberately unread), and the outcome says so...
  EXPECT_NE(out.key, content_key(text));
  EXPECT_TRUE(out.key_provisional);
  const auto done = wait_terminal(jobs, out.job);
  EXPECT_EQ(done.state, JobState::kDone);
  ASSERT_TRUE(done.has_result);
  // ...and the worker re-keys the job from the bytes it read, so a later
  // inline submission of the same content hits the cache.
  EXPECT_EQ(jobs.status(out.job)->key, content_key(text));
  const auto inline_out = jobs.submit(bp_job(text, 5));
  ASSERT_TRUE(inline_out.accepted);
  EXPECT_FALSE(inline_out.key_provisional);  // inline keys are final
  EXPECT_TRUE(wait_terminal(jobs, inline_out.job).cache_hit);
  // A missing path is still rejected up front.
  SubmitParams missing;
  missing.problem_path = tmp_path("definitely_absent.txt");
  missing.solver = "bp";
  const auto bad = jobs.submit(missing);
  EXPECT_FALSE(bad.accepted);
  EXPECT_EQ(bad.code, ErrorCode::kBadRequest);
  // ...and so is a path that exists but is not a regular file: a
  // writer-less FIFO would park a worker in open() forever, and a
  // directory makes no sense as a problem.
  SubmitParams dir;
  dir.problem_path = ::testing::TempDir();
  dir.solver = "bp";
  const auto not_file = jobs.submit(dir);
  EXPECT_FALSE(not_file.accepted);
  EXPECT_EQ(not_file.code, ErrorCode::kBadRequest);
  EXPECT_NE(not_file.message.find("regular file"), std::string::npos);
}

TEST(JobManager, ProblemPathReplacedByAFifoFailsTheJobNotTheWorker) {
  obs::Counters counters;
  ProblemCache cache(4, &counters);
  JobManager jobs(manager_options(1, 4, "jm_toctou"), cache, &counters);
  const std::string text = problem_text();
  // Park the single worker so the path submit stays queued.
  const auto blocker = jobs.submit(bp_job(text, 50'000'000));
  ASSERT_TRUE(blocker.accepted);
  wait_running(jobs, blocker.job);
  const std::string path = tmp_path("jm_toctou_problem.txt");
  std::ofstream(path, std::ios::trunc) << text << std::flush;
  SubmitParams spec;
  spec.problem_path = path;
  spec.solver = "bp";
  const auto out = jobs.submit(spec);
  ASSERT_TRUE(out.accepted) << out.message;
  // Race the worker deterministically: swap the regular file for a FIFO
  // while the job is still queued. The worker's pre-open re-check must
  // fail the job instead of blocking forever in open().
  ASSERT_EQ(::unlink(path.c_str()), 0);
  ASSERT_EQ(::mkfifo(path.c_str(), 0600), 0) << std::strerror(errno);
  jobs.cancel(blocker.job);
  const auto r = wait_terminal(jobs, out.job);
  EXPECT_EQ(r.state, JobState::kFailed);
  EXPECT_NE(r.error.find("regular file"), std::string::npos);
  ::unlink(path.c_str());
}

TEST(JobManager, OversizedProblemPathFailsTheJob) {
  obs::Counters counters;
  ProblemCache cache(4, &counters);
  JobManagerOptions opt = manager_options(1, 4, "jm_toolarge");
  opt.max_problem_bytes = 64;  // far below any real problem
  JobManager jobs(opt, cache, &counters);
  const std::string path = tmp_path("jm_toolarge_problem.txt");
  std::ofstream(path, std::ios::trunc) << problem_text() << std::flush;
  SubmitParams spec;
  spec.problem_path = path;
  spec.solver = "bp";
  const auto out = jobs.submit(spec);
  ASSERT_TRUE(out.accepted) << out.message;
  const auto r = wait_terminal(jobs, out.job);
  EXPECT_EQ(r.state, JobState::kFailed);
  EXPECT_NE(r.error.find("exceeds"), std::string::npos);
}

TEST(JobManager, MaxCostJobIsScheduledWithoutALockStall) {
  obs::Counters counters;
  ProblemCache cache(4, &counters);
  JobManager jobs(manager_options(1, 4, "jm_maxcost"), cache, &counters);
  // The largest cost the protocol admits. The quantum-at-a-time DRR loop
  // would have spun ~cost/quantum (10^7) passes under the job lock just
  // to pick this job; the closed-form pick must dispatch it immediately.
  SubmitParams spec = bp_job(problem_text(), 1'000'000'000);
  spec.deadline_seconds = 0.05;  // the budget stops the solve itself
  const auto out = jobs.submit(spec);
  ASSERT_TRUE(out.accepted) << out.message;
  const auto r = wait_terminal(jobs, out.job, /*timeout_seconds=*/30);
  EXPECT_EQ(r.state, JobState::kDone);
  EXPECT_EQ(r.stopped_reason, "deadline");
}

TEST(JobManager, CancelStormReachesQuiescence) {
  obs::Counters counters;
  ProblemCache cache(4, &counters);
  JobManagerOptions opt = manager_options(2, 32, "jm_storm");
  opt.tenant_queue_cap = 32;
  JobManager jobs(opt, cache, &counters);
  const std::string text = problem_text();
  std::vector<std::int64_t> ids;
  for (int i = 0; i < 24; ++i) {
    const auto out = jobs.submit(tenant_job(text, 3, "t" + std::to_string(i % 3)));
    ASSERT_TRUE(out.accepted) << out.message;
    ids.push_back(out.job);
  }
  // Two threads race the workers to every job: each cancel either wins
  // (dequeues the job or stops it mid-run) or loses to completion --
  // never hangs, never strands a queue slot or a tenant counter.
  std::thread even([&] {
    for (std::size_t i = 0; i < ids.size(); i += 2) jobs.cancel(ids[i]);
  });
  std::thread odd([&] {
    for (std::size_t i = 1; i < ids.size(); i += 2) jobs.cancel(ids[i]);
  });
  even.join();
  odd.join();
  std::int64_t terminal = 0;
  for (const auto id : ids) {
    const auto r = wait_terminal(jobs, id);
    if (r.state == JobState::kDone) {
      EXPECT_TRUE(r.has_result);
    } else {
      EXPECT_EQ(r.state, JobState::kCancelled);
    }
    ++terminal;
  }
  EXPECT_EQ(terminal, 24);
  const auto stats = jobs.queue_stats();
  EXPECT_EQ(stats.queued, 0);
  EXPECT_EQ(stats.running, 0);
  std::int64_t completed = 0;
  for (const auto& t : stats.tenants) completed += t.completed;
  EXPECT_EQ(completed, 24);
}

TEST(JobManager, DrainShutdownCompletesQueuedJobsButRejectsNew) {
  obs::Counters counters;
  ProblemCache cache(4, &counters);
  JobManager jobs(manager_options(1, 16, "jm_drain"), cache, &counters);
  const std::string text = problem_text();
  std::vector<std::int64_t> ids;
  for (int i = 0; i < 4; ++i) {
    const auto out = jobs.submit(bp_job(text, 5));
    ASSERT_TRUE(out.accepted) << out.message;
    ids.push_back(out.job);
  }
  jobs.begin_drain();
  const auto late = jobs.submit(bp_job(text, 5));
  EXPECT_FALSE(late.accepted);
  EXPECT_EQ(late.code, ErrorCode::kShuttingDown);
  jobs.shutdown(false);  // drain: joins only after the queue empties
  EXPECT_TRUE(jobs.idle());
  for (const auto id : ids) {
    const auto r = jobs.result(id);
    ASSERT_TRUE(r.has_value());
    EXPECT_EQ(r->state, JobState::kDone);
    EXPECT_TRUE(r->has_result);
  }
}

// --- tail-tolerant JSONL reader --------------------------------------------

TEST(JsonlTail, OnlyTerminatedLinesSurface) {
  const std::string path = tmp_path("tail_basic.jsonl");
  std::ofstream out(path, std::ios::trunc);
  out << R"({"event":"a"})" << "\n" << R"({"event":)" << std::flush;
  obs::JsonlTailReader reader(path);
  obs::JsonValue doc;
  EXPECT_EQ(reader.next(doc), obs::JsonlTailReader::Status::kEvent);
  EXPECT_EQ(doc.find("event")->as_string(), "a");
  // The second line has no newline yet: held back, not surfaced broken.
  EXPECT_EQ(reader.next(doc), obs::JsonlTailReader::Status::kPending);
  EXPECT_TRUE(reader.has_partial_tail());
  out << R"("b"})" << "\n" << std::flush;
  EXPECT_EQ(reader.next(doc), obs::JsonlTailReader::Status::kEvent);
  EXPECT_EQ(doc.find("event")->as_string(), "b");
  EXPECT_EQ(reader.next(doc), obs::JsonlTailReader::Status::kPending);
  EXPECT_FALSE(reader.has_partial_tail());
}

TEST(JsonlTail, MissingFileIsPendingUntilCreated) {
  const std::string path = tmp_path("tail_late.jsonl");
  std::remove(path.c_str());
  obs::JsonlTailReader reader(path);
  obs::JsonValue doc;
  EXPECT_EQ(reader.next(doc), obs::JsonlTailReader::Status::kPending);
  std::ofstream(path) << R"({"event":"late"})" << "\n" << std::flush;
  EXPECT_EQ(reader.next(doc), obs::JsonlTailReader::Status::kEvent);
  EXPECT_EQ(doc.find("event")->as_string(), "late");
}

TEST(JsonlTail, TerminatedGarbageAtEofIsTruncatedThenMalformed) {
  const std::string path = tmp_path("tail_garbage.jsonl");
  std::ofstream out(path, std::ios::trunc);
  out << R"({"event":"ok"})" << "\n" << R"({"event": <cut)" << "\n"
      << std::flush;
  obs::JsonlTailReader reader(path);
  obs::JsonValue doc;
  EXPECT_EQ(reader.next(doc), obs::JsonlTailReader::Status::kEvent);
  // A terminated-but-unparseable final line could be a crashed writer:
  // retryable, not fatal...
  EXPECT_EQ(reader.next(doc), obs::JsonlTailReader::Status::kTruncatedTail);
  EXPECT_EQ(reader.next(doc), obs::JsonlTailReader::Status::kTruncatedTail);
  // ...until later bytes prove the stream was corrupt mid-flight.
  out << R"({"event":"after"})" << "\n" << std::flush;
  EXPECT_EQ(reader.next(doc), obs::JsonlTailReader::Status::kMalformed);
  EXPECT_EQ(reader.next(doc), obs::JsonlTailReader::Status::kMalformed);
}

// --- the daemon over its socket --------------------------------------------

class ServerSocketTest : public ::testing::Test {
 protected:
  ServerOptions base_options() {
    ServerOptions options;
    options.socket_path = tmp_path("srv.sock");
    options.workers = 1;
    options.queue_cap = 4;
    options.cache_cap = 2;
    // Per-test work dir: with the journal on by default, a shared dir
    // would make later tests in a same-process run recover earlier
    // tests' jobs.
    options.work_dir =
        tmp_path(std::string("srv_jobs_") +
                 ::testing::UnitTest::GetInstance()->current_test_info()->name());
    return options;
  }

  void start(std::size_t max_request_bytes = kDefaultMaxRequestBytes) {
    ServerOptions options = base_options();
    options.max_request_bytes = max_request_bytes;
    start_with(options);
  }

  void start_with(const ServerOptions& options) {
    token_ = options.auth_token;
    server_ = std::make_unique<Server>(options);
    thread_ = std::thread([this] { rc_ = server_->run(); });
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(10);
    if (!options.listen.empty()) {
      // `tcp:host:0` binds an ephemeral port; only bound_address() knows
      // the real endpoint.
      while (server_->bound_address().empty()) {
        ASSERT_LT(std::chrono::steady_clock::now(), deadline)
            << "listener never came up";
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
      }
      target_ = server_->bound_address();
    } else {
      target_ = options.socket_path;
    }
    // The listener may not be bound yet; retry the connect briefly.
    for (;;) {
      try {
        client_ = std::make_unique<ServerClient>(target_, RetryPolicy{},
                                                 token_);
        break;
      } catch (const std::exception&) {
        ASSERT_LT(std::chrono::steady_clock::now(), deadline);
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
      }
    }
  }

  /// Shut the daemon down (fresh connection; client_ may be dead) and
  /// join its thread. Under --max-conns the fresh connection itself can
  /// be refused while a just-closed client still occupies a slot (the
  /// accept burst runs before dead-connection reaping within one poll
  /// cycle), so a `rejected` answer is retried rather than mistaken for
  /// a delivered shutdown.
  void stop() {
    if (!thread_.joinable()) return;
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(10);
    for (;;) {
      try {
        const obs::JsonValue resp =
            ServerClient(target_, RetryPolicy{}, token_)
                .call(R"({"method":"shutdown","now":true})");
        if (resp.find("ok")->as_bool()) break;
        if (resp.find("error")->find("code")->as_string() != "rejected") {
          break;  // e.g. shutting_down: the daemon is already exiting
        }
      } catch (const std::exception&) {
        break;  // connect failed: the daemon is already gone
      }
      if (std::chrono::steady_clock::now() > deadline) break;
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }
    thread_.join();
    EXPECT_EQ(rc_, 0);
    client_.reset();
    server_.reset();
  }

  void TearDown() override { stop(); }

  std::unique_ptr<Server> server_;
  std::unique_ptr<ServerClient> client_;
  std::thread thread_;
  std::string target_;  ///< endpoint spec the daemon is actually serving
  std::string token_;   ///< auth token (TCP daemons), "" otherwise
  int rc_ = -1;
};

TEST_F(ServerSocketTest, PingSubmitResultOverOneConnection) {
  start();
  const obs::JsonValue pong = client_->call(R"({"method":"ping","id":1})");
  EXPECT_TRUE(pong.find("ok")->as_bool());
  EXPECT_EQ(pong.find("protocol")->as_number(), kProtocolVersion);
  // Version stamps: wire schema and journal format, so clients can check
  // compatibility before submitting (docs/SERVER.md).
  EXPECT_EQ(pong.find("proto_version")->as_number(), kProtocolVersion);
  EXPECT_EQ(pong.find("journal_version")->as_number(),
            static_cast<double>(kJournalVersion));
  EXPECT_EQ(pong.find("id")->as_number(), 1.0);

  const obs::JsonValue accepted =
      client_->call(submit_line(problem_text(), 10));
  ASSERT_TRUE(accepted.find("ok")->as_bool());
  const auto job =
      static_cast<std::int64_t>(accepted.find("job")->as_number());
  const std::string result_line =
      R"({"method":"result","job":)" + std::to_string(job) + "}";
  for (;;) {
    const obs::JsonValue r = client_->call(result_line);
    if (r.find("ok")->as_bool()) {
      EXPECT_EQ(r.find("state")->as_string(), "done");
      EXPECT_GT(r.find("pairs")->items().size(), 0u);
      break;
    }
    ASSERT_EQ(r.find("error")->find("code")->as_string(), "not_ready");
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  // Same bytes again: the parse + squares build must be served from cache.
  const obs::JsonValue again = client_->call(submit_line(problem_text(), 10));
  ASSERT_TRUE(again.find("ok")->as_bool());
  const auto job2 = static_cast<std::int64_t>(again.find("job")->as_number());
  // The cache lookup happens when a worker picks the job up, so wait for
  // the job to finish before reading the counter.
  const std::string result2 =
      R"({"method":"result","job":)" + std::to_string(job2) + "}";
  while (!client_->call(result2).find("ok")->as_bool()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  const obs::JsonValue stats = client_->call(R"({"method":"stats"})");
  EXPECT_GE(stats.find("counters")->find("server.cache_hit")->as_number(),
            1.0);
}

TEST_F(ServerSocketTest, OversizedRequestLineIsRejected) {
  start(/*max_request_bytes=*/512);
  std::string huge = R"({"method":"submit","problem":")";
  huge.append(4096, 'x');
  // No closing newline needed: the cap triggers as soon as the unfinished
  // line exceeds it, so a streaming flood is cut off early.
  client_->send_raw(huge);
  const std::string line = client_->read_line();
  const obs::JsonValue doc = obs::parse_json(line);
  EXPECT_FALSE(doc.find("ok")->as_bool());
  EXPECT_EQ(doc.find("error")->find("code")->as_string(), "too_large");
  // The server hangs up on the flooding connection after responding.
  EXPECT_THROW(client_->read_line(), std::runtime_error);
  // A fresh, polite connection to the same daemon still works.
  ServerClient polite(tmp_path("srv.sock"));
  EXPECT_TRUE(polite.call(R"({"method":"ping"})").find("ok")->as_bool());
}

TEST_F(ServerSocketTest, ErrorTaxonomyOverTheWire) {
  start();
  const obs::JsonValue bad = client_->call("garbage");
  EXPECT_EQ(bad.find("error")->find("code")->as_string(), "bad_request");
  const obs::JsonValue unknown = client_->call(R"({"method":"frobnicate"})");
  EXPECT_EQ(unknown.find("error")->find("code")->as_string(),
            "unknown_method");
  const obs::JsonValue missing =
      client_->call(R"({"method":"result","job":123})");
  EXPECT_EQ(missing.find("error")->find("code")->as_string(), "not_found");
}

TEST_F(ServerSocketTest, ProblemPathIsReadOffTheIoLoopAndFifosAreRefused) {
  start();
  // A FIFO with no writer: opening it for read blocks indefinitely, so
  // it (like any non-regular file) is refused at submit time -- a worker
  // must never be parked in open() on one.
  const std::string fifo = tmp_path("srv_fifo_problem");
  ::unlink(fifo.c_str());
  ASSERT_EQ(::mkfifo(fifo.c_str(), 0600), 0) << std::strerror(errno);
  std::string fifo_line = R"({"method":"submit","problem_path":)";
  obs::append_json_string(fifo_line, fifo);
  fifo_line += R"(,"solver":"bp","iters":5})";
  const obs::JsonValue refused = client_->call(fifo_line);
  EXPECT_FALSE(refused.find("ok")->as_bool());
  EXPECT_EQ(refused.find("error")->find("code")->as_string(), "bad_request");
  ::unlink(fifo.c_str());

  // A regular file is accepted without being read in the I/O loop: the
  // submit response flags its key as provisional, a second connection's
  // ping answers promptly, and the worker re-keys the job to the true
  // content hash once it reads the bytes.
  const std::string path = tmp_path("srv_path_problem.txt");
  const std::string text = problem_text();
  std::ofstream(path, std::ios::trunc) << text << std::flush;
  std::string line = R"({"method":"submit","problem_path":)";
  obs::append_json_string(line, path);
  line += R"(,"solver":"bp","iters":5})";
  const obs::JsonValue accepted = client_->call(line);
  ASSERT_TRUE(accepted.find("ok")->as_bool());
  EXPECT_TRUE(accepted.find("key_provisional")->as_bool());
  EXPECT_NE(accepted.find("key")->as_string(), content_key(text));
  const auto job =
      static_cast<std::int64_t>(accepted.find("job")->as_number());
  ServerClient other(tmp_path("srv.sock"));
  EXPECT_TRUE(other.call(R"({"method":"ping"})").find("ok")->as_bool());
  const std::string result_line =
      R"({"method":"result","job":)" + std::to_string(job) + "}";
  for (;;) {
    const obs::JsonValue r = client_->call(result_line);
    if (r.find("ok")->as_bool()) {
      EXPECT_EQ(r.find("state")->as_string(), "done");
      break;
    }
    ASSERT_EQ(r.find("error")->find("code")->as_string(), "not_ready");
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  const std::string status_line =
      R"({"method":"status","job":)" + std::to_string(job) + "}";
  const obs::JsonValue status = client_->call(status_line);
  EXPECT_EQ(status.find("key")->as_string(), content_key(text));
  ::unlink(path.c_str());
}

TEST_F(ServerSocketTest, PipelinedRequestsAnswerInOrder) {
  start();
  // One write carrying eight requests: the server must consume its input
  // buffer line by line and answer strictly in order.
  std::string burst;
  for (int i = 1; i <= 8; ++i) {
    burst += R"({"method":"ping","id":)" + std::to_string(i) + "}\n";
  }
  client_->send_raw(burst);
  for (int i = 1; i <= 8; ++i) {
    const obs::JsonValue doc = obs::parse_json(client_->read_line());
    EXPECT_TRUE(doc.find("ok")->as_bool());
    EXPECT_EQ(doc.find("id")->as_number(), static_cast<double>(i));
  }
}

TEST_F(ServerSocketTest, EvictedJobsAnswerExpiredNotNotFound) {
  ServerOptions options = base_options();
  options.retained_cap = 1;
  start_with(options);
  std::vector<std::int64_t> ids;
  for (int i = 0; i < 2; ++i) {
    const obs::JsonValue accepted =
        client_->call(submit_line(problem_text(), 5));
    ASSERT_TRUE(accepted.find("ok")->as_bool());
    ids.push_back(static_cast<std::int64_t>(accepted.find("job")->as_number()));
    const std::string result_line =
        R"({"method":"result","job":)" + std::to_string(ids.back()) + "}";
    while (!client_->call(result_line).find("ok")->as_bool()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
  }
  // Retention (cap 1) evicted the first job when the second finished;
  // its id must answer `expired`, distinct from a never-issued id.
  const obs::JsonValue gone = client_->call(
      R"({"method":"result","job":)" + std::to_string(ids[0]) + "}");
  EXPECT_FALSE(gone.find("ok")->as_bool());
  EXPECT_EQ(gone.find("error")->find("code")->as_string(), "expired");
  const obs::JsonValue never =
      client_->call(R"({"method":"result","job":999})");
  EXPECT_EQ(never.find("error")->find("code")->as_string(), "not_found");
  const obs::JsonValue stats = client_->call(R"({"method":"stats"})");
  EXPECT_EQ(stats.find("retained")->as_number(), 1.0);
  EXPECT_GE(stats.find("evicted")->as_number(), 1.0);
  const obs::JsonValue* tenants = stats.find("tenants");
  ASSERT_NE(tenants, nullptr);
  ASSERT_NE(tenants->find("default"), nullptr);
  EXPECT_EQ(tenants->find("default")->find("completed")->as_number(), 2.0);
}

TEST_F(ServerSocketTest, SecondDaemonRefusesALiveSocket) {
  start();
  // A second daemon pointed at the same path must probe, find a live
  // server, and refuse to start -- NOT unlink the socket out from under
  // the incumbent (the old behavior).
  ServerOptions second = base_options();
  second.work_dir = tmp_path("srv_jobs2");
  Server other(second);
  EXPECT_EQ(other.run(), 1);
  // The probe did not disturb the incumbent.
  EXPECT_TRUE(client_->call(R"({"method":"ping"})").find("ok")->as_bool());
}

TEST_F(ServerSocketTest, SubmitWithRequestIdIsIdempotentOverTheWire) {
  start();
  std::string line = submit_line(problem_text(), 10);
  line.back() = ',';  // re-open the object to add the request_id
  line += R"("request_id":"wire-retry-1"})";
  const obs::JsonValue first = client_->call(line);
  ASSERT_TRUE(first.find("ok")->as_bool());
  EXPECT_EQ(first.find("duplicate"), nullptr);
  const auto job = static_cast<std::int64_t>(first.find("job")->as_number());
  // The retry (same line, byte for byte -- exactly what the client's
  // reconnect path re-sends) answers with the original job id.
  const obs::JsonValue again = client_->call(line);
  ASSERT_TRUE(again.find("ok")->as_bool());
  ASSERT_NE(again.find("duplicate"), nullptr);
  EXPECT_TRUE(again.find("duplicate")->as_bool());
  EXPECT_EQ(static_cast<std::int64_t>(again.find("job")->as_number()), job);
  const obs::JsonValue stats = client_->call(R"({"method":"stats"})");
  EXPECT_EQ(stats.find("counters")
                ->find("server.jobs_deduplicated")
                ->as_number(),
            1.0);
  // Stats carry the durability fields too.
  EXPECT_EQ(stats.find("journal_enabled")->as_bool(), true);
  EXPECT_GE(stats.find("journal_appends")->as_number(), 1.0);
  EXPECT_EQ(stats.find("recovered")->as_bool(), false);
  ASSERT_NE(stats.find("recovered_terminal"), nullptr);
  ASSERT_NE(stats.find("recovered_resumed"), nullptr);
}

TEST_F(ServerSocketTest, ClientRetryPolicySurvivesADaemonRestart) {
  start();
  // A client with a retry budget, pointed at a daemon we then replace.
  ServerClient retrying(tmp_path("srv.sock"),
                        RetryPolicy{/*retries=*/40, /*max_backoff_ms=*/100});
  EXPECT_TRUE(retrying.call(R"({"method":"ping"})").find("ok")->as_bool());
  stop();  // the daemon goes away entirely...
  ServerOptions options = base_options();
  options.work_dir = tmp_path("srv_jobs_restarted");
  start_with(options);  // ...and comes back on the same socket path
  // The next call rides the reconnect loop instead of throwing.
  const obs::JsonValue pong = retrying.call(R"({"method":"ping"})");
  EXPECT_TRUE(pong.find("ok")->as_bool());
}

TEST_F(ServerSocketTest, ZeroRetryClientStillFailsFast) {
  start();
  ServerClient fragile(tmp_path("srv.sock"));
  EXPECT_TRUE(fragile.call(R"({"method":"ping"})").find("ok")->as_bool());
  stop();
  EXPECT_THROW(fragile.call(R"({"method":"ping"})"), std::runtime_error);
}

TEST_F(ServerSocketTest, ClientThatStopsReadingIsDropped) {
  ServerOptions options = base_options();
  options.max_output_bytes = 32u << 10;
  start_with(options);
  // Big echoed ids make each response ~1KB; a client that never reads
  // lets the backlog grow past the cap once the kernel buffers fill.
  const std::string line =
      R"({"method":"ping","id":")" + std::string(1024, 'x') + "\"}\n";
  try {
    for (int i = 0; i < 4000; ++i) client_->send_raw(line);
  } catch (const std::exception&) {
    // The daemon hung up on us mid-flood: that is the point.
  }
  // Watch from a fresh, polite connection: the flooder gets dropped and
  // the daemon stays responsive (its memory no longer grows with us).
  ServerClient watcher(tmp_path("srv.sock"));
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(30);
  for (;;) {
    const obs::JsonValue stats = watcher.call(R"({"method":"stats"})");
    if (stats.find("counters")
            ->find("server.slow_clients_dropped")
            ->as_number() >= 1.0) {
      break;
    }
    ASSERT_LT(std::chrono::steady_clock::now(), deadline)
        << "slow client was never dropped";
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
}

// --- transports and network hardening --------------------------------------

TEST(Transport, EndpointGrammar) {
  Endpoint ep;
  std::string err;
  ASSERT_TRUE(parse_endpoint("unix:/tmp/x.sock", ep, err)) << err;
  EXPECT_EQ(ep.kind, Endpoint::Kind::kUnix);
  EXPECT_EQ(ep.path, "/tmp/x.sock");
  EXPECT_EQ(ep.str(), "unix:/tmp/x.sock");

  // A bare path is a unix socket -- back-compat with --socket.
  ASSERT_TRUE(parse_endpoint("/tmp/bare.sock", ep, err)) << err;
  EXPECT_EQ(ep.kind, Endpoint::Kind::kUnix);
  EXPECT_EQ(ep.path, "/tmp/bare.sock");

  ASSERT_TRUE(parse_endpoint("tcp:127.0.0.1:4455", ep, err)) << err;
  EXPECT_EQ(ep.kind, Endpoint::Kind::kTcp);
  EXPECT_EQ(ep.host, "127.0.0.1");
  EXPECT_EQ(ep.port, "4455");

  // Bracketed IPv6 literal; str() reproduces the brackets.
  ASSERT_TRUE(parse_endpoint("tcp:[::1]:0", ep, err)) << err;
  EXPECT_EQ(ep.host, "::1");
  EXPECT_EQ(ep.port, "0");
  EXPECT_EQ(ep.str(), "tcp:[::1]:0");

  EXPECT_FALSE(parse_endpoint("", ep, err));
  EXPECT_FALSE(parse_endpoint("unix:", ep, err));
  EXPECT_FALSE(parse_endpoint("tcp:nohost", ep, err));
  EXPECT_FALSE(parse_endpoint("tcp:host:notaport", ep, err));
  EXPECT_FALSE(parse_endpoint("tcp:host:99999", ep, err));
  EXPECT_FALSE(parse_endpoint("tcp::4455", ep, err));
  EXPECT_FALSE(parse_endpoint("tcp:[::1]4455", ep, err));
  // A scheme-looking spec that is neither unix: nor tcp: is a typo, not
  // a bare path.
  EXPECT_FALSE(parse_endpoint("udp:127.0.0.1:4455", ep, err));
  EXPECT_FALSE(parse_endpoint("localhost:4455", ep, err));
}

TEST(Transport, ConstantTimeTokenCompare) {
  EXPECT_TRUE(tokens_equal("s3cret", "s3cret"));
  EXPECT_FALSE(tokens_equal("s3cret", "s3creT"));
  EXPECT_FALSE(tokens_equal("s3cret", "s3cre"));
  EXPECT_FALSE(tokens_equal("s3cret", "s3crets"));
  EXPECT_FALSE(tokens_equal("s3cret", ""));
  EXPECT_FALSE(tokens_equal("", "guess"));
}

TEST_F(ServerSocketTest, PartialFramesAtEveryByteBoundary) {
  start();
  const std::string line = R"({"method":"ping","id":42})" "\n";
  // Worst case first: the whole frame one byte at a time, with pauses so
  // each byte is its own poll cycle server-side.
  for (const char b : line) {
    client_->send_raw(std::string_view(&b, 1));
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  obs::JsonValue doc = obs::parse_json(client_->read_line());
  EXPECT_TRUE(doc.find("ok")->as_bool());
  EXPECT_EQ(doc.find("id")->as_number(), 42.0);
  // Then every two-write split point of the same frame.
  for (std::size_t cut = 1; cut + 1 < line.size(); ++cut) {
    client_->send_raw(std::string_view(line).substr(0, cut));
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
    client_->send_raw(std::string_view(line).substr(cut));
    doc = obs::parse_json(client_->read_line());
    EXPECT_TRUE(doc.find("ok")->as_bool());
    EXPECT_EQ(doc.find("id")->as_number(), 42.0);
  }
}

TEST_F(ServerSocketTest, MidFrameResetIsSurvived) {
  ServerOptions options = base_options();
  options.listen = "tcp:127.0.0.1:0";
  options.auth_token = "reset-test-token";
  start_with(options);
  // A raw connection that dies with an RST halfway through a frame: the
  // daemon must reap the buffer and keep serving everyone else.
  Endpoint ep;
  std::string error;
  ASSERT_TRUE(parse_endpoint(target_, ep, error)) << error;
  for (int i = 0; i < 5; ++i) {
    const int fd = connect_endpoint(ep, error);
    ASSERT_GE(fd, 0) << error;
    const char partial[] = R"({"method":"submit","problem":"trunc)";
    ASSERT_GT(::send(fd, partial, sizeof(partial) - 1, MSG_NOSIGNAL), 0);
    // linger(on, 0): close() fires an RST instead of an orderly FIN.
    linger lg{};
    lg.l_onoff = 1;
    lg.l_linger = 0;
    ::setsockopt(fd, SOL_SOCKET, SO_LINGER, &lg, sizeof(lg));
    ::close(fd);
  }
  // The established, authed connection is unaffected.
  EXPECT_TRUE(client_->call(R"({"method":"ping"})").find("ok")->as_bool());
}

TEST_F(ServerSocketTest, IdleTimeoutReapsStalledConnections) {
  ServerOptions options = base_options();
  options.idle_timeout_ms = 300;
  start_with(options);
  // client_ now goes silent -- a slowloris holding a connection open.
  // Watch the reap from fresh short-lived connections (each active, so
  // never reaped themselves).
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(30);
  for (;;) {
    ServerClient watcher(target_);
    const obs::JsonValue stats = watcher.call(R"({"method":"stats"})");
    if (stats.find("counters")->find("server.idle_reaped")->as_number() >=
        1.0) {
      break;
    }
    ASSERT_LT(std::chrono::steady_clock::now(), deadline)
        << "stalled connection was never reaped";
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  // The reaper closed the longest-idle connection: ours. A zero-retry
  // call on it must fail.
  EXPECT_THROW(client_->call(R"({"method":"ping"})"), std::runtime_error);
}

TEST_F(ServerSocketTest, TcpEndToEndWithAuth) {
  ServerOptions options = base_options();
  options.listen = "tcp:127.0.0.1:0";
  options.auth_token = "tcp-e2e-token";
  start_with(options);
  // The fixture client authenticated in its constructor; real work runs.
  const obs::JsonValue accepted =
      client_->call(submit_line(problem_text(), 5));
  ASSERT_TRUE(accepted.find("ok")->as_bool());

  // Unauthenticated connections may ping (health checks stay tokenless)
  // but nothing else.
  ServerClient unauthed(target_);
  EXPECT_TRUE(unauthed.call(R"({"method":"ping"})").find("ok")->as_bool());
  const obs::JsonValue refused = unauthed.call(R"({"method":"stats"})");
  EXPECT_FALSE(refused.find("ok")->as_bool());
  EXPECT_EQ(refused.find("error")->find("code")->as_string(),
            "auth_required");

  // A wrong token is rejected at the handshake -- and, unlike a lost
  // connection, never retried.
  EXPECT_THROW(ServerClient(target_, RetryPolicy{}, "wrong-token"),
               std::runtime_error);
  const obs::JsonValue stats = client_->call(R"({"method":"stats"})");
  EXPECT_GE(
      stats.find("counters")->find("server.auth_failures")->as_number(),
      1.0);
  EXPECT_EQ(stats.find("auth_required")->as_bool(), true);
  EXPECT_EQ(stats.find("listen")->as_string(), target_);
}

TEST(ServerLifecycle, TcpWithoutTokenRefusesToStart) {
  ServerOptions options;
  options.listen = "tcp:127.0.0.1:0";
  options.work_dir = tmp_path("tcp_no_token_jobs");
  Server srv(options);
  // Serving a tokenless TCP port would hand the daemon to anyone who can
  // reach it; run() must refuse before binding anything.
  EXPECT_EQ(srv.run(), 2);
}

TEST_F(ServerSocketTest, MaxConnsRefusedGracefully) {
  ServerOptions options = base_options();
  options.max_conns = 2;
  start_with(options);
  // Connection 2 of 2 (client_ holds the first).
  ServerClient second(target_);
  EXPECT_TRUE(second.call(R"({"method":"ping"})").find("ok")->as_bool());
  // Connection 3 is over the cap: it gets one parseable `rejected` error
  // line, then the daemon hangs up.
  Endpoint ep;
  std::string error;
  ASSERT_TRUE(parse_endpoint(target_, ep, error)) << error;
  const int fd = connect_endpoint(ep, error);
  ASSERT_GE(fd, 0) << error;
  std::string refusal;
  char buf[512];
  for (;;) {
    const ssize_t n = ::read(fd, buf, sizeof(buf));
    if (n <= 0) break;  // EOF: the server closed after the refusal line
    refusal.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);
  ASSERT_NE(refusal.find('\n'), std::string::npos) << refusal;
  const obs::JsonValue doc =
      obs::parse_json(refusal.substr(0, refusal.find('\n')));
  EXPECT_FALSE(doc.find("ok")->as_bool());
  EXPECT_EQ(doc.find("error")->find("code")->as_string(), "rejected");
  // The in-cap connections are untouched, and the refusal is counted.
  const obs::JsonValue stats = client_->call(R"({"method":"stats"})");
  EXPECT_GE(
      stats.find("counters")->find("server.conns_rejected")->as_number(),
      1.0);
}

}  // namespace
}  // namespace netalign::server
