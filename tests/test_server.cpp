// Alignment-server protocol and lifecycle tests (docs/SERVER.md).
//
// Four layers, mostly socket-free so failures stay attributable:
// protocol framing (the compatibility rules the header promises: unknown
// fields ignored, unknown methods rejected, wrong types are bad_request),
// the content-addressed LRU cache, the job manager's lifecycle (cancel of
// queued vs running jobs, admission control), and the tail-tolerant JSONL
// reader both progress streaming and trace_summary ride on. A final
// section drives a real Server over its AF_UNIX socket end to end,
// including the request-size cap.
#include "server/protocol.hpp"

#include <gtest/gtest.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <thread>

#include "netalign/synthetic.hpp"
#include "io/problem_io.hpp"
#include "obs/jsonl_tail.hpp"
#include "server/cache.hpp"
#include "server/client.hpp"
#include "server/jobs.hpp"
#include "server/server.hpp"

namespace netalign::server {
namespace {

/// Per-process scratch path: ctest runs each gtest case as its own
/// process, concurrently, so a bare TempDir() name would make the socket
/// tests bind over each other's daemons and deadlock.
std::string tmp_path(const std::string& name) {
  return ::testing::TempDir() + "na" + std::to_string(::getpid()) + "_" +
         name;
}

/// Canonical text of a small synthetic instance.
std::string problem_text(vid_t n = 60, std::uint64_t seed = 7) {
  PowerLawInstanceOptions opt;
  opt.n = n;
  opt.expected_degree = 4.0;
  opt.seed = seed;
  std::ostringstream out;
  write_problem(out, make_power_law_instance(opt).problem);
  return out.str();
}

/// Submit request JSON with an inline problem.
std::string submit_line(const std::string& text, std::int64_t iters) {
  std::string line = R"({"method":"submit","problem":)";
  obs::append_json_string(line, text);
  line += R"(,"solver":"bp","iters":)" + std::to_string(iters) + "}";
  return line;
}

Request parse_ok(const std::string& line) {
  Request req;
  ErrorCode code = ErrorCode::kInternal;
  std::string message;
  EXPECT_TRUE(parse_request(line, req, code, message)) << message;
  return req;
}

ErrorCode parse_fail(const std::string& line) {
  Request req;
  ErrorCode code = ErrorCode::kInternal;
  std::string message;
  EXPECT_FALSE(parse_request(line, req, code, message));
  EXPECT_FALSE(message.empty());
  return code;
}

// --- protocol framing ------------------------------------------------------

TEST(Protocol, MalformedJsonIsBadRequest) {
  EXPECT_EQ(parse_fail(R"({"method":"ping")"), ErrorCode::kBadRequest);
  EXPECT_EQ(parse_fail("not json at all"), ErrorCode::kBadRequest);
  EXPECT_EQ(parse_fail(R"([1, 2, 3])"), ErrorCode::kBadRequest);
  EXPECT_EQ(parse_fail(R"({"no_method": 1})"), ErrorCode::kBadRequest);
}

TEST(Protocol, UnknownMethodIsItsOwnError) {
  EXPECT_EQ(parse_fail(R"({"method":"align_all_the_things"})"),
            ErrorCode::kUnknownMethod);
}

TEST(Protocol, UnknownFieldsAreIgnored) {
  // Forward compatibility: a newer client may send fields this server
  // does not know. They must not be errors.
  const Request req = parse_ok(
      R"({"method":"status","job":3,"future_field":{"deep":[1,2]}})");
  EXPECT_EQ(req.method, Method::kStatus);
  EXPECT_EQ(req.job, 3);
}

TEST(Protocol, WrongFieldTypeIsBadRequest) {
  EXPECT_EQ(parse_fail(R"({"method":"status","job":"three"})"),
            ErrorCode::kBadRequest);
  EXPECT_EQ(parse_fail(R"({"method":"shutdown","now":1})"),
            ErrorCode::kBadRequest);
  EXPECT_EQ(parse_fail(R"({"method":"progress","job":1,"cursor":1.5})"),
            ErrorCode::kBadRequest);
}

TEST(Protocol, SubmitNeedsExactlyOneProblemSource) {
  EXPECT_EQ(parse_fail(R"({"method":"submit"})"), ErrorCode::kBadRequest);
  EXPECT_EQ(parse_fail(
                R"({"method":"submit","problem":"x","problem_path":"y"})"),
            ErrorCode::kBadRequest);
}

TEST(Protocol, SubmitValidatesNamesAndRanges) {
  EXPECT_EQ(parse_fail(R"({"method":"submit","problem":"x","solver":"gpt"})"),
            ErrorCode::kBadRequest);
  EXPECT_EQ(
      parse_fail(R"({"method":"submit","problem":"x","matcher":"magic"})"),
      ErrorCode::kBadRequest);
  EXPECT_EQ(parse_fail(R"({"method":"submit","problem":"x","iters":-1})"),
            ErrorCode::kBadRequest);
  EXPECT_EQ(parse_fail(R"({"method":"submit","problem":"x","batch":0})"),
            ErrorCode::kBadRequest);
  EXPECT_EQ(parse_fail(
                R"({"method":"submit","problem":"x","deadline_seconds":-2})"),
            ErrorCode::kBadRequest);
}

TEST(Protocol, SubmitDefaultsMirrorTheCli) {
  const Request req = parse_ok(R"({"method":"submit","problem":"x"})");
  EXPECT_EQ(req.submit.solver, "bp");
  EXPECT_EQ(req.submit.matcher, "approx");
  EXPECT_EQ(req.submit.batch, 1);
  EXPECT_EQ(req.submit.deadline_seconds, 0.0);
}

TEST(Protocol, IdIsEchoedEvenOnErrors) {
  Request req;
  ErrorCode code = ErrorCode::kInternal;
  std::string message;
  ASSERT_FALSE(
      parse_request(R"({"method":"nope","id":"req-17"})", req, code, message));
  EXPECT_EQ(req.id_json, R"("req-17")");
  const std::string resp = error_response(req.id_json, code, message);
  obs::JsonValue doc = obs::parse_json(resp);
  ASSERT_NE(doc.find("id"), nullptr);
  EXPECT_EQ(doc.find("id")->as_string(), "req-17");
  EXPECT_FALSE(doc.find("ok")->as_bool());
  EXPECT_EQ(doc.find("error")->find("code")->as_string(), "unknown_method");
}

TEST(Protocol, ResponseBuilderProducesParseableJson) {
  ResponseBuilder r(true, "42");
  r.field("name", "a \"quoted\" value");
  r.field("count", std::int64_t{7});
  r.field("ratio", 0.5);
  r.field("flag", true);
  r.field("literal", "drain");  // must not decay into the bool overload
  r.raw("list", "[1,2]");
  const obs::JsonValue doc = obs::parse_json(std::move(r).str());
  EXPECT_TRUE(doc.find("ok")->as_bool());
  EXPECT_EQ(doc.find("id")->as_number(), 42.0);
  EXPECT_EQ(doc.find("name")->as_string(), "a \"quoted\" value");
  EXPECT_EQ(doc.find("count")->as_number(), 7.0);
  EXPECT_EQ(doc.find("flag")->as_bool(), true);
  EXPECT_EQ(doc.find("literal")->as_string(), "drain");
  EXPECT_EQ(doc.find("list")->items().size(), 2u);
}

// --- content-addressed cache -----------------------------------------------

TEST(ProblemCache, KeyIsContentNotName) {
  const std::string a = problem_text(60, 7);
  const std::string b = problem_text(60, 8);
  EXPECT_EQ(content_key(a), content_key(a));
  EXPECT_NE(content_key(a), content_key(b));
  EXPECT_EQ(content_key(a).size(), 16u);
}

TEST(ProblemCache, RepeatSubmissionHits) {
  obs::Counters counters;
  ProblemCache cache(4, &counters);
  const std::string text = problem_text();
  bool hit = true;
  const auto first = cache.get(content_key(text), text, hit);
  EXPECT_FALSE(hit);
  const auto second = cache.get(content_key(text), text, hit);
  EXPECT_TRUE(hit);
  EXPECT_EQ(first.get(), second.get());  // same built entry, not a rebuild
  EXPECT_EQ(counters.total("server.cache_hit"), 1);
  EXPECT_EQ(counters.total("server.cache_miss"), 1);
  EXPECT_GT(first->S.num_nonzeros(), 0);
}

TEST(ProblemCache, EvictsLeastRecentlyUsed) {
  obs::Counters counters;
  ProblemCache cache(2, &counters);
  const std::string a = problem_text(50, 1);
  const std::string b = problem_text(50, 2);
  const std::string c = problem_text(50, 3);
  bool hit = false;
  cache.get(content_key(a), a, hit);
  cache.get(content_key(b), b, hit);
  cache.get(content_key(a), a, hit);  // touch a; b is now LRU
  EXPECT_TRUE(hit);
  cache.get(content_key(c), c, hit);  // evicts b
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(counters.total("server.cache_evicted"), 1);
  cache.get(content_key(a), a, hit);
  EXPECT_TRUE(hit);
  cache.get(content_key(b), b, hit);
  EXPECT_FALSE(hit);  // b was the victim
}

TEST(ProblemCache, BuildFailureIsNotCached) {
  obs::Counters counters;
  ProblemCache cache(2, &counters);
  const std::string junk = "NETALIGN-PROBLEM 999\nnot a problem\n";
  bool hit = false;
  EXPECT_THROW(cache.get(content_key(junk), junk, hit), std::exception);
  EXPECT_EQ(cache.size(), 0u);
  // The same key again still *builds* (and fails) instead of replaying a
  // poisoned entry.
  EXPECT_THROW(cache.get(content_key(junk), junk, hit), std::exception);
  EXPECT_FALSE(hit);
}

// --- job lifecycle ---------------------------------------------------------

JobManagerOptions manager_options(int workers, std::size_t queue_cap,
                                  const std::string& dir) {
  JobManagerOptions opt;
  opt.workers = workers;
  opt.queue_cap = queue_cap;
  opt.work_dir = tmp_path(dir);
  return opt;
}

SubmitParams bp_job(const std::string& text, std::int64_t iters) {
  SubmitParams spec;
  spec.problem_text = text;
  spec.solver = "bp";
  spec.iters = iters;
  return spec;
}

/// Poll until the job leaves queued/running (bounded; test-fails on hang).
JobManager::JobResult wait_terminal(JobManager& jobs, std::int64_t id,
                                    int timeout_seconds = 60) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::seconds(timeout_seconds);
  for (;;) {
    const auto r = jobs.result(id);
    if (!r.has_value()) {
      ADD_FAILURE() << "job " << id << " vanished";
      return {};
    }
    if (r->state != JobState::kQueued && r->state != JobState::kRunning) {
      return *r;
    }
    if (std::chrono::steady_clock::now() > deadline) {
      ADD_FAILURE() << "job " << id << " did not finish in time";
      return *r;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
}

TEST(JobManager, RunsAJobToDone) {
  obs::Counters counters;
  ProblemCache cache(4, &counters);
  JobManager jobs(manager_options(1, 4, "jm_done"), cache, &counters);
  const auto out = jobs.submit(bp_job(problem_text(), 15));
  ASSERT_TRUE(out.accepted) << out.message;
  const auto result = wait_terminal(jobs, out.job);
  EXPECT_EQ(result.state, JobState::kDone);
  ASSERT_TRUE(result.has_result);
  EXPECT_EQ(result.stopped_reason, "completed");
  EXPECT_EQ(result.iterations_completed, 15);
  EXPECT_GT(result.cardinality, 0);
  EXPECT_EQ(static_cast<std::int64_t>(result.pairs.size()),
            result.cardinality);
  // Progress is the solver's own trace, re-served.
  const auto progress = jobs.progress(out.job, 0);
  ASSERT_TRUE(progress.has_value());
  EXPECT_GT(progress->next_cursor, 0);
  // A cursor past the end yields no events, not an error.
  const auto tail = jobs.progress(out.job, progress->next_cursor + 100);
  EXPECT_TRUE(tail->events.empty());
  const auto status = jobs.status(out.job);
  ASSERT_TRUE(status.has_value());
  EXPECT_EQ(status->state, JobState::kDone);
  EXPECT_GT(status->rounds, 0);
}

TEST(JobManager, FailedProblemReportsError) {
  obs::Counters counters;
  ProblemCache cache(4, &counters);
  JobManager jobs(manager_options(1, 4, "jm_fail"), cache, &counters);
  SubmitParams spec = bp_job("this is not a problem file\n", 5);
  const auto out = jobs.submit(spec);
  ASSERT_TRUE(out.accepted);
  const auto result = wait_terminal(jobs, out.job);
  EXPECT_EQ(result.state, JobState::kFailed);
  EXPECT_FALSE(result.has_result);
  EXPECT_FALSE(result.error.empty());
  EXPECT_EQ(counters.total("server.jobs_failed"), 1);
}

TEST(JobManager, UnknownJobIsEmpty) {
  obs::Counters counters;
  ProblemCache cache(2, &counters);
  JobManager jobs(manager_options(1, 2, "jm_unknown"), cache, &counters);
  EXPECT_FALSE(jobs.status(99).has_value());
  EXPECT_FALSE(jobs.result(99).has_value());
  EXPECT_FALSE(jobs.cancel(99).found);
}

TEST(JobManager, CancelQueuedVsRunning) {
  obs::Counters counters;
  ProblemCache cache(4, &counters);
  // One worker so the second submission is guaranteed to queue behind the
  // first. The running job gets an iteration count it could never finish
  // inside the test budget; cancellation is what ends it.
  JobManager jobs(manager_options(1, 8, "jm_cancel"), cache, &counters);
  const std::string text = problem_text();
  const auto running = jobs.submit(bp_job(text, 50'000'000));
  ASSERT_TRUE(running.accepted);
  // Wait until it actually occupies the worker.
  const auto spin_deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(30);
  while (jobs.status(running.job)->state == JobState::kQueued) {
    ASSERT_LT(std::chrono::steady_clock::now(), spin_deadline);
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  const auto queued = jobs.submit(bp_job(problem_text(60, 9), 10));
  ASSERT_TRUE(queued.accepted);

  // Cancelling a queued job is immediate: it never reaches a worker.
  const auto cancel_queued = jobs.cancel(queued.job);
  ASSERT_TRUE(cancel_queued.found);
  EXPECT_EQ(cancel_queued.state, JobState::kCancelled);
  const auto queued_result = jobs.result(queued.job);
  EXPECT_EQ(queued_result->state, JobState::kCancelled);
  EXPECT_FALSE(queued_result->has_result);

  // Cancelling a running job latches the budget flag; the solver stops at
  // the next iteration boundary with its best-so-far matching.
  const auto cancel_running = jobs.cancel(running.job);
  ASSERT_TRUE(cancel_running.found);
  const auto result = wait_terminal(jobs, running.job);
  EXPECT_EQ(result.state, JobState::kCancelled);
  ASSERT_TRUE(result.has_result);
  EXPECT_EQ(result.stopped_reason, "cancelled");
  EXPECT_LT(result.iterations_completed, 50'000'000);
  EXPECT_EQ(counters.total("server.jobs_cancelled"), 2);
}

TEST(JobManager, AdmissionControlRejectsWhenFull) {
  obs::Counters counters;
  ProblemCache cache(4, &counters);
  JobManager jobs(manager_options(1, 1, "jm_admission"), cache, &counters);
  const auto running = jobs.submit(bp_job(problem_text(), 50'000'000));
  ASSERT_TRUE(running.accepted);
  const auto spin_deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(30);
  while (jobs.status(running.job)->state == JobState::kQueued) {
    ASSERT_LT(std::chrono::steady_clock::now(), spin_deadline);
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  const auto queued = jobs.submit(bp_job(problem_text(), 10));
  ASSERT_TRUE(queued.accepted);  // fills the queue (cap 1)
  const auto rejected = jobs.submit(bp_job(problem_text(), 10));
  EXPECT_FALSE(rejected.accepted);
  EXPECT_EQ(rejected.code, ErrorCode::kRejected);
  EXPECT_EQ(counters.total("server.jobs_rejected"), 1);
  // Draining rejects even with queue space.
  jobs.begin_drain();
  const auto drained = jobs.submit(bp_job(problem_text(), 10));
  EXPECT_FALSE(drained.accepted);
  EXPECT_EQ(drained.code, ErrorCode::kShuttingDown);
  jobs.cancel(running.job);
  jobs.cancel(queued.job);
}

// --- tail-tolerant JSONL reader --------------------------------------------

TEST(JsonlTail, OnlyTerminatedLinesSurface) {
  const std::string path = tmp_path("tail_basic.jsonl");
  std::ofstream out(path, std::ios::trunc);
  out << R"({"event":"a"})" << "\n" << R"({"event":)" << std::flush;
  obs::JsonlTailReader reader(path);
  obs::JsonValue doc;
  EXPECT_EQ(reader.next(doc), obs::JsonlTailReader::Status::kEvent);
  EXPECT_EQ(doc.find("event")->as_string(), "a");
  // The second line has no newline yet: held back, not surfaced broken.
  EXPECT_EQ(reader.next(doc), obs::JsonlTailReader::Status::kPending);
  EXPECT_TRUE(reader.has_partial_tail());
  out << R"("b"})" << "\n" << std::flush;
  EXPECT_EQ(reader.next(doc), obs::JsonlTailReader::Status::kEvent);
  EXPECT_EQ(doc.find("event")->as_string(), "b");
  EXPECT_EQ(reader.next(doc), obs::JsonlTailReader::Status::kPending);
  EXPECT_FALSE(reader.has_partial_tail());
}

TEST(JsonlTail, MissingFileIsPendingUntilCreated) {
  const std::string path = tmp_path("tail_late.jsonl");
  std::remove(path.c_str());
  obs::JsonlTailReader reader(path);
  obs::JsonValue doc;
  EXPECT_EQ(reader.next(doc), obs::JsonlTailReader::Status::kPending);
  std::ofstream(path) << R"({"event":"late"})" << "\n" << std::flush;
  EXPECT_EQ(reader.next(doc), obs::JsonlTailReader::Status::kEvent);
  EXPECT_EQ(doc.find("event")->as_string(), "late");
}

TEST(JsonlTail, TerminatedGarbageAtEofIsTruncatedThenMalformed) {
  const std::string path = tmp_path("tail_garbage.jsonl");
  std::ofstream out(path, std::ios::trunc);
  out << R"({"event":"ok"})" << "\n" << R"({"event": <cut)" << "\n"
      << std::flush;
  obs::JsonlTailReader reader(path);
  obs::JsonValue doc;
  EXPECT_EQ(reader.next(doc), obs::JsonlTailReader::Status::kEvent);
  // A terminated-but-unparseable final line could be a crashed writer:
  // retryable, not fatal...
  EXPECT_EQ(reader.next(doc), obs::JsonlTailReader::Status::kTruncatedTail);
  EXPECT_EQ(reader.next(doc), obs::JsonlTailReader::Status::kTruncatedTail);
  // ...until later bytes prove the stream was corrupt mid-flight.
  out << R"({"event":"after"})" << "\n" << std::flush;
  EXPECT_EQ(reader.next(doc), obs::JsonlTailReader::Status::kMalformed);
  EXPECT_EQ(reader.next(doc), obs::JsonlTailReader::Status::kMalformed);
}

// --- the daemon over its socket --------------------------------------------

class ServerSocketTest : public ::testing::Test {
 protected:
  void start(std::size_t max_request_bytes = kDefaultMaxRequestBytes) {
    ServerOptions options;
    options.socket_path = tmp_path("srv.sock");
    options.workers = 1;
    options.queue_cap = 4;
    options.cache_cap = 2;
    options.max_request_bytes = max_request_bytes;
    options.work_dir = tmp_path("srv_jobs");
    server_ = std::make_unique<Server>(options);
    thread_ = std::thread([this] { rc_ = server_->run(); });
    // The listener may not be bound yet; retry the connect briefly.
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(10);
    for (;;) {
      try {
        client_ = std::make_unique<ServerClient>(options.socket_path);
        break;
      } catch (const std::exception&) {
        ASSERT_LT(std::chrono::steady_clock::now(), deadline);
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
      }
    }
  }

  /// Shut the daemon down (fresh connection; client_ may be dead) and
  /// join its thread.
  void stop() {
    if (!thread_.joinable()) return;
    try {
      ServerClient(tmp_path("srv.sock"))
          .call(R"({"method":"shutdown","now":true})");
    } catch (const std::exception&) {
    }
    thread_.join();
    EXPECT_EQ(rc_, 0);
    client_.reset();
    server_.reset();
  }

  void TearDown() override { stop(); }

  std::unique_ptr<Server> server_;
  std::unique_ptr<ServerClient> client_;
  std::thread thread_;
  int rc_ = -1;
};

TEST_F(ServerSocketTest, PingSubmitResultOverOneConnection) {
  start();
  const obs::JsonValue pong = client_->call(R"({"method":"ping","id":1})");
  EXPECT_TRUE(pong.find("ok")->as_bool());
  EXPECT_EQ(pong.find("protocol")->as_number(), kProtocolVersion);
  EXPECT_EQ(pong.find("id")->as_number(), 1.0);

  const obs::JsonValue accepted =
      client_->call(submit_line(problem_text(), 10));
  ASSERT_TRUE(accepted.find("ok")->as_bool());
  const auto job =
      static_cast<std::int64_t>(accepted.find("job")->as_number());
  const std::string result_line =
      R"({"method":"result","job":)" + std::to_string(job) + "}";
  for (;;) {
    const obs::JsonValue r = client_->call(result_line);
    if (r.find("ok")->as_bool()) {
      EXPECT_EQ(r.find("state")->as_string(), "done");
      EXPECT_GT(r.find("pairs")->items().size(), 0u);
      break;
    }
    ASSERT_EQ(r.find("error")->find("code")->as_string(), "not_ready");
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  // Same bytes again: the parse + squares build must be served from cache.
  const obs::JsonValue again = client_->call(submit_line(problem_text(), 10));
  ASSERT_TRUE(again.find("ok")->as_bool());
  const auto job2 = static_cast<std::int64_t>(again.find("job")->as_number());
  // The cache lookup happens when a worker picks the job up, so wait for
  // the job to finish before reading the counter.
  const std::string result2 =
      R"({"method":"result","job":)" + std::to_string(job2) + "}";
  while (!client_->call(result2).find("ok")->as_bool()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  const obs::JsonValue stats = client_->call(R"({"method":"stats"})");
  EXPECT_GE(stats.find("counters")->find("server.cache_hit")->as_number(),
            1.0);
}

TEST_F(ServerSocketTest, OversizedRequestLineIsRejected) {
  start(/*max_request_bytes=*/512);
  std::string huge = R"({"method":"submit","problem":")";
  huge.append(4096, 'x');
  // No closing newline needed: the cap triggers as soon as the unfinished
  // line exceeds it, so a streaming flood is cut off early.
  client_->send_raw(huge);
  const std::string line = client_->read_line();
  const obs::JsonValue doc = obs::parse_json(line);
  EXPECT_FALSE(doc.find("ok")->as_bool());
  EXPECT_EQ(doc.find("error")->find("code")->as_string(), "too_large");
  // The server hangs up on the flooding connection after responding.
  EXPECT_THROW(client_->read_line(), std::runtime_error);
  // A fresh, polite connection to the same daemon still works.
  ServerClient polite(tmp_path("srv.sock"));
  EXPECT_TRUE(polite.call(R"({"method":"ping"})").find("ok")->as_bool());
}

TEST_F(ServerSocketTest, ErrorTaxonomyOverTheWire) {
  start();
  const obs::JsonValue bad = client_->call("garbage");
  EXPECT_EQ(bad.find("error")->find("code")->as_string(), "bad_request");
  const obs::JsonValue unknown = client_->call(R"({"method":"frobnicate"})");
  EXPECT_EQ(unknown.find("error")->find("code")->as_string(),
            "unknown_method");
  const obs::JsonValue missing =
      client_->call(R"({"method":"result","job":123})");
  EXPECT_EQ(missing.find("error")->find("code")->as_string(), "not_found");
}

}  // namespace
}  // namespace netalign::server
