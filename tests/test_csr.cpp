#include "graph/csr.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "util/prng.hpp"

namespace netalign {
namespace {

std::vector<CooEntry> random_entries(vid_t n, int count, Xoshiro256& rng,
                                     bool allow_dups = false) {
  std::vector<CooEntry> entries;
  std::vector<std::vector<bool>> used(n, std::vector<bool>(n, false));
  while (static_cast<int>(entries.size()) < count) {
    const auto r = static_cast<vid_t>(rng.uniform_int(n));
    const auto c = static_cast<vid_t>(rng.uniform_int(n));
    if (!allow_dups && used[r][c]) continue;
    used[r][c] = true;
    entries.push_back(CooEntry{r, c, rng.uniform(0.1, 1.0)});
  }
  return entries;
}

TEST(CsrMatrix, EmptyMatrix) {
  const CsrMatrix m = CsrMatrix::from_coo(3, 4, {});
  EXPECT_EQ(m.num_rows(), 3);
  EXPECT_EQ(m.num_cols(), 4);
  EXPECT_EQ(m.num_nonzeros(), 0);
  EXPECT_EQ(m.find(0, 0), kInvalidEid);
}

TEST(CsrMatrix, FromCooSortsColumnsWithinRows) {
  const std::vector<CooEntry> entries = {
      {0, 2, 1.0}, {0, 0, 2.0}, {1, 1, 3.0}, {0, 1, 4.0}};
  const CsrMatrix m = CsrMatrix::from_coo(2, 3, entries);
  ASSERT_EQ(m.num_nonzeros(), 4);
  const auto col = m.col_idx();
  EXPECT_EQ(col[0], 0);
  EXPECT_EQ(col[1], 1);
  EXPECT_EQ(col[2], 2);
  EXPECT_EQ(m.values()[0], 2.0);
  EXPECT_EQ(m.values()[1], 4.0);
  EXPECT_EQ(m.values()[2], 1.0);
}

TEST(CsrMatrix, DuplicateSumPolicy) {
  const std::vector<CooEntry> entries = {{0, 1, 2.0}, {0, 1, 3.0}};
  const CsrMatrix m =
      CsrMatrix::from_coo(1, 2, entries, DuplicatePolicy::kSum);
  ASSERT_EQ(m.num_nonzeros(), 1);
  EXPECT_EQ(m.values()[0], 5.0);
}

TEST(CsrMatrix, DuplicateMaxPolicy) {
  const std::vector<CooEntry> entries = {{0, 1, 2.0}, {0, 1, 3.0}};
  const CsrMatrix m =
      CsrMatrix::from_coo(1, 2, entries, DuplicatePolicy::kMax);
  ASSERT_EQ(m.num_nonzeros(), 1);
  EXPECT_EQ(m.values()[0], 3.0);
}

TEST(CsrMatrix, DuplicateErrorPolicyThrows) {
  const std::vector<CooEntry> entries = {{0, 1, 2.0}, {0, 1, 3.0}};
  EXPECT_THROW(CsrMatrix::from_coo(1, 2, entries, DuplicatePolicy::kError),
               std::invalid_argument);
}

TEST(CsrMatrix, OutOfRangeEntryThrows) {
  const std::vector<CooEntry> bad = {{0, 5, 1.0}};
  EXPECT_THROW(CsrMatrix::from_coo(2, 2, bad), std::out_of_range);
}

TEST(CsrMatrix, FindLocatesEntries) {
  const std::vector<CooEntry> entries = {{0, 2, 1.0}, {1, 0, 2.0}};
  const CsrMatrix m = CsrMatrix::from_coo(2, 3, entries);
  EXPECT_NE(m.find(0, 2), kInvalidEid);
  EXPECT_NE(m.find(1, 0), kInvalidEid);
  EXPECT_EQ(m.find(0, 0), kInvalidEid);
  EXPECT_EQ(m.find(1, 2), kInvalidEid);
}

TEST(CsrMatrix, StructuralFromCooSetsOnes) {
  const std::vector<CooEntry> entries = {{0, 1, 9.0}, {1, 0, -4.0}};
  const CsrMatrix m = CsrMatrix::structural_from_coo(2, 2, entries);
  for (const auto v : m.values()) EXPECT_EQ(v, 1.0);
}

TEST(CsrMatrix, TransposeMatchesDense) {
  Xoshiro256 rng(5);
  const auto entries = random_entries(6, 14, rng);
  const CsrMatrix m = CsrMatrix::from_coo(6, 6, entries);
  const CsrMatrix t = m.transpose();
  const auto dm = m.to_dense();
  const auto dt = t.to_dense();
  for (vid_t r = 0; r < 6; ++r) {
    for (vid_t c = 0; c < 6; ++c) {
      EXPECT_EQ(dm[r][c], dt[c][r]);
    }
  }
}

TEST(CsrMatrix, StructuralSymmetryDetection) {
  const std::vector<CooEntry> sym = {{0, 1, 1.0}, {1, 0, 5.0}, {2, 2, 1.0}};
  EXPECT_TRUE(CsrMatrix::from_coo(3, 3, sym).is_structurally_symmetric());
  const std::vector<CooEntry> asym = {{0, 1, 1.0}};
  EXPECT_FALSE(CsrMatrix::from_coo(3, 3, asym).is_structurally_symmetric());
  // Non-square is never symmetric.
  EXPECT_FALSE(CsrMatrix::from_coo(2, 3, {}).is_structurally_symmetric());
}

TEST(CsrMatrix, SymmetricTransposePermutationGathersTranspose) {
  // Random symmetric pattern with asymmetric values: the permutation must
  // reproduce the explicitly computed transpose values (the paper's
  // permutation trick, Section IV-A).
  Xoshiro256 rng(17);
  std::vector<CooEntry> entries;
  for (int i = 0; i < 30; ++i) {
    const auto r = static_cast<vid_t>(rng.uniform_int(8));
    const auto c = static_cast<vid_t>(rng.uniform_int(8));
    entries.push_back(CooEntry{r, c, rng.uniform(0.0, 1.0)});
    entries.push_back(CooEntry{c, r, rng.uniform(0.0, 1.0)});
  }
  const CsrMatrix m = CsrMatrix::from_coo(8, 8, entries);
  ASSERT_TRUE(m.is_structurally_symmetric());
  const auto perm = m.symmetric_transpose_permutation();
  const CsrMatrix t = m.transpose();
  ASSERT_EQ(t.num_nonzeros(), m.num_nonzeros());
  for (eid_t k = 0; k < m.num_nonzeros(); ++k) {
    EXPECT_EQ(m.values()[perm[k]], t.values()[k]);
  }
}

TEST(CsrMatrix, SymmetricPermutationRejectsAsymmetric) {
  const std::vector<CooEntry> asym = {{0, 1, 1.0}};
  const CsrMatrix m = CsrMatrix::from_coo(2, 2, asym);
  EXPECT_THROW(m.symmetric_transpose_permutation(), std::logic_error);
}

TEST(CsrMatrix, MultiplyMatchesDense) {
  Xoshiro256 rng(23);
  const auto entries = random_entries(7, 20, rng);
  const CsrMatrix m = CsrMatrix::from_coo(7, 7, entries);
  std::vector<weight_t> x(7), y(7);
  for (auto& v : x) v = rng.uniform(-1.0, 1.0);
  m.multiply(x, y);
  const auto dense = m.to_dense();
  for (vid_t r = 0; r < 7; ++r) {
    weight_t expected = 0.0;
    for (vid_t c = 0; c < 7; ++c) expected += dense[r][c] * x[c];
    EXPECT_NEAR(y[r], expected, 1e-12);
  }
}

TEST(CsrMatrix, MultiplySizeMismatchThrows) {
  const CsrMatrix m = CsrMatrix::from_coo(2, 3, {});
  std::vector<weight_t> x(2), y(2);
  EXPECT_THROW(m.multiply(x, y), std::invalid_argument);
}

TEST(CsrMatrix, RowSums) {
  const std::vector<CooEntry> entries = {{0, 0, 1.0}, {0, 1, 2.0}, {2, 0, 4.0}};
  const CsrMatrix m = CsrMatrix::from_coo(3, 2, entries);
  std::vector<weight_t> y(3);
  m.row_sums(y);
  EXPECT_EQ(y[0], 3.0);
  EXPECT_EQ(y[1], 0.0);
  EXPECT_EQ(y[2], 4.0);
}

TEST(CsrMatrix, FromCsrArraysRoundTrip) {
  std::vector<eid_t> ptr = {0, 2, 3};
  std::vector<vid_t> col = {0, 2, 1};
  std::vector<weight_t> val = {1.0, 2.0, 3.0};
  const CsrMatrix m = CsrMatrix::from_csr_arrays(2, 3, ptr, col, val);
  EXPECT_EQ(m.num_nonzeros(), 3);
  EXPECT_NE(m.find(0, 2), kInvalidEid);
}

TEST(CsrMatrix, FromCsrArraysEmptyValBecomesOnes) {
  std::vector<eid_t> ptr = {0, 1};
  std::vector<vid_t> col = {0};
  const CsrMatrix m = CsrMatrix::from_csr_arrays(1, 1, ptr, col, {});
  EXPECT_EQ(m.values()[0], 1.0);
}

TEST(CsrMatrix, FromCsrArraysValidatesInput) {
  EXPECT_THROW(
      CsrMatrix::from_csr_arrays(2, 2, {0, 1}, {0}, {}),  // short ptr
      std::invalid_argument);
  EXPECT_THROW(
      CsrMatrix::from_csr_arrays(1, 2, {0, 2}, {1, 0}, {}),  // unsorted
      std::invalid_argument);
  EXPECT_THROW(
      CsrMatrix::from_csr_arrays(1, 1, {0, 1}, {3}, {}),  // out of range
      std::invalid_argument);
}

}  // namespace
}  // namespace netalign
