// Shared helpers for the matching and alignment tests.
#pragma once

#include <vector>

#include "graph/bipartite.hpp"
#include "util/prng.hpp"
#include "util/types.hpp"

namespace netalign::testing {

/// Random bipartite graph with `count` distinct edges and weights in
/// (lo, hi). Duplicate (a, b) draws collapse, so the edge count may come
/// out slightly lower than requested.
inline BipartiteGraph random_bipartite(vid_t na, vid_t nb, int count,
                                       Xoshiro256& rng, double lo = 0.05,
                                       double hi = 1.0) {
  std::vector<LEdge> edges;
  edges.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) {
    edges.push_back(LEdge{static_cast<vid_t>(rng.uniform_int(na)),
                          static_cast<vid_t>(rng.uniform_int(nb)),
                          rng.uniform(lo, hi)});
  }
  return BipartiteGraph::from_edges(na, nb, edges);
}

/// The graph's own weights as a plain vector (the matchers take external
/// weight spans).
inline std::vector<weight_t> own_weights(const BipartiteGraph& g) {
  return {g.weights().begin(), g.weights().end()};
}

}  // namespace netalign::testing
