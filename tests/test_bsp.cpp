#include "dist/bsp.hpp"

#include <gtest/gtest.h>

#include <numeric>
#include <stdexcept>
#include <string>

namespace netalign::dist {
namespace {

/// Each rank sends its id to rank 0 once, then halts; rank 0 sums.
class SumProgram : public RankProgram {
 public:
  explicit SumProgram(int* result) : result_(result) {}

  void step(RankContext& ctx) override {
    if (!sent_) {
      ctx.send(0, ctx.rank());
      sent_ = true;
      return;
    }
    if (ctx.rank() == 0 && result_) {
      for (const Message& msg : ctx.inbox()) {
        *result_ += RankContext::decode<int>(msg);
      }
    }
    ctx.vote_halt();
  }

 private:
  int* result_;
  bool sent_ = false;
};

TEST(Bsp, GatherSumsRankIds) {
  int result = 0;
  std::vector<std::unique_ptr<RankProgram>> programs;
  const int p = 5;
  for (int r = 0; r < p; ++r) {
    programs.push_back(std::make_unique<SumProgram>(r == 0 ? &result : nullptr));
  }
  BspRuntime runtime;
  const BspStats stats = runtime.run(programs);
  EXPECT_EQ(result, 0 + 1 + 2 + 3 + 4);
  EXPECT_GE(stats.supersteps, 2u);
  EXPECT_EQ(stats.messages, 5u);
  EXPECT_EQ(stats.bytes, 5 * sizeof(int));
}

/// Token ring: rank r forwards an incrementing counter to r+1; stops
/// after `laps` full laps.
class RingProgram : public RankProgram {
 public:
  RingProgram(int laps, int* final_value)
      : laps_(laps), final_value_(final_value) {}

  void step(RankContext& ctx) override {
    const int p = ctx.num_ranks();
    if (ctx.rank() == 0 && !started_) {
      started_ = true;
      ctx.send(1 % p, 1);
      return;
    }
    for (const Message& msg : ctx.inbox()) {
      const int value = RankContext::decode<int>(msg);
      if (ctx.rank() == 0 && value >= laps_ * p) {
        if (final_value_) *final_value_ = value;
        break;  // stop forwarding: ring drains
      }
      ctx.send((ctx.rank() + 1) % p, value + 1);
    }
    // Always vote; a send in this superstep revokes the vote, so the run
    // continues exactly while the token is still circulating.
    ctx.vote_halt();
  }

 private:
  int laps_;
  int* final_value_;
  bool started_ = false;
};

TEST(Bsp, TokenRingCirculates) {
  int final_value = 0;
  std::vector<std::unique_ptr<RankProgram>> programs;
  const int p = 4;
  for (int r = 0; r < p; ++r) {
    programs.push_back(
        std::make_unique<RingProgram>(3, r == 0 ? &final_value : nullptr));
  }
  BspRuntime runtime;
  const BspStats stats = runtime.run(programs);
  EXPECT_GE(final_value, 3 * p);
  // One message per superstep while the token circulates.
  EXPECT_EQ(stats.max_h_relation, 1u);
}

/// A program that never halts: the superstep guard must fire.
class Livelock : public RankProgram {
 public:
  void step(RankContext& ctx) override { ctx.send(ctx.rank(), 1); }
};

TEST(Bsp, SuperstepLimitGuardsAgainstLivelock) {
  std::vector<std::unique_ptr<RankProgram>> programs;
  programs.push_back(std::make_unique<Livelock>());
  BspRuntime runtime;
  EXPECT_THROW(runtime.run(programs, 50), std::runtime_error);
}

TEST(Bsp, DeadlockGuardReportsVotesAndQueueDepths) {
  // Rank 0 livelocks (self-send every step), ranks 1 and 2 halt
  // immediately; the guard's message must name the halted ranks and the
  // queue state so a stuck distributed run is diagnosable from the throw.
  class Halter : public RankProgram {
   public:
    void step(RankContext& ctx) override { ctx.vote_halt(); }
  };
  std::vector<std::unique_ptr<RankProgram>> programs;
  programs.push_back(std::make_unique<Livelock>());
  programs.push_back(std::make_unique<Halter>());
  programs.push_back(std::make_unique<Halter>());
  BspRuntime runtime;
  try {
    runtime.run(programs, 20);
    FAIL() << "expected the superstep guard to fire";
  } catch (const std::runtime_error& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("superstep limit exceeded (20 supersteps, 3 ranks)"),
              std::string::npos)
        << msg;
    EXPECT_NE(msg.find("2/3 ranks voted halt (ranks 1,2)"), std::string::npos)
        << msg;
    EXPECT_NE(msg.find("in-flight messages: 1"), std::string::npos) << msg;
    EXPECT_NE(msg.find("delayed messages: 0"), std::string::npos) << msg;
    EXPECT_NE(msg.find("per-rank inbox sizes: r0=1 r1=0 r2=0"),
              std::string::npos)
        << msg;
  }
}

TEST(Bsp, EmptyProgramListIsNoOp) {
  std::vector<std::unique_ptr<RankProgram>> programs;
  BspRuntime runtime;
  const BspStats stats = runtime.run(programs);
  EXPECT_EQ(stats.supersteps, 0u);
}

TEST(Bsp, DecodeRejectsWrongSize) {
  Message msg;
  msg.payload.resize(3);
  EXPECT_THROW(RankContext::decode<int>(msg), std::runtime_error);
}

TEST(Bsp, SendToInvalidRankThrows) {
  class BadSender : public RankProgram {
   public:
    void step(RankContext& ctx) override {
      ctx.send(99, 1);
      ctx.vote_halt();
    }
  };
  std::vector<std::unique_ptr<RankProgram>> programs;
  programs.push_back(std::make_unique<BadSender>());
  BspRuntime runtime;
  EXPECT_THROW(runtime.run(programs), std::out_of_range);
}

}  // namespace
}  // namespace netalign::dist
