#include "graph/algorithms.hpp"

#include <gtest/gtest.h>

#include "graph/generators.hpp"
#include "util/prng.hpp"

namespace netalign {
namespace {

using Edges = std::vector<std::pair<vid_t, vid_t>>;

TEST(ConnectedComponents, EmptyGraphIsAllSingletons) {
  const Graph g = Graph::from_edges(4, {});
  const auto cc = connected_components(g);
  EXPECT_EQ(cc.count, 4);
  EXPECT_EQ(cc.largest(), 1);
}

TEST(ConnectedComponents, TwoComponents) {
  const Edges edges = {{0, 1}, {1, 2}, {3, 4}};
  const Graph g = Graph::from_edges(5, edges);
  const auto cc = connected_components(g);
  EXPECT_EQ(cc.count, 2);
  EXPECT_EQ(cc.comp[0], cc.comp[1]);
  EXPECT_EQ(cc.comp[1], cc.comp[2]);
  EXPECT_EQ(cc.comp[3], cc.comp[4]);
  EXPECT_NE(cc.comp[0], cc.comp[3]);
  EXPECT_EQ(cc.largest(), 3);
  EXPECT_EQ(cc.sizes[cc.comp[0]], 3);
}

TEST(ConnectedComponents, SizesSumToVertexCount) {
  Xoshiro256 rng(5);
  const Graph g = erdos_renyi(200, 0.008, rng);
  const auto cc = connected_components(g);
  vid_t total = 0;
  for (const vid_t s : cc.sizes) total += s;
  EXPECT_EQ(total, 200);
}

TEST(BfsDistances, PathGraph) {
  const Edges edges = {{0, 1}, {1, 2}, {2, 3}};
  const Graph g = Graph::from_edges(4, edges);
  const auto d = bfs_distances(g, 0);
  EXPECT_EQ(d[0], 0);
  EXPECT_EQ(d[1], 1);
  EXPECT_EQ(d[2], 2);
  EXPECT_EQ(d[3], 3);
}

TEST(BfsDistances, UnreachableIsMinusOne) {
  const Edges edges = {{0, 1}};
  const Graph g = Graph::from_edges(3, edges);
  const auto d = bfs_distances(g, 0);
  EXPECT_EQ(d[2], -1);
}

TEST(BfsDistances, OutOfRangeSourceThrows) {
  const Graph g = Graph::from_edges(2, {});
  EXPECT_THROW(bfs_distances(g, 7), std::out_of_range);
}

TEST(BfsDistances, TriangleInequalityOnRandomGraph) {
  Xoshiro256 rng(9);
  const Graph g = erdos_renyi(100, 0.05, rng);
  const auto d = bfs_distances(g, 0);
  for (vid_t v = 0; v < 100; ++v) {
    if (d[v] < 0) continue;
    for (const vid_t u : g.neighbors(v)) {
      ASSERT_GE(d[u], 0);  // neighbors of reachable vertices are reachable
      EXPECT_LE(std::abs(d[u] - d[v]), 1);
    }
  }
}

TEST(DegreeHistogram, CountsMatch) {
  const Edges edges = {{0, 1}, {0, 2}, {0, 3}};
  const Graph g = Graph::from_edges(5, edges);
  const auto hist = degree_histogram(g);
  ASSERT_EQ(hist.size(), 4u);  // max degree 3
  EXPECT_EQ(hist[0], 1);       // vertex 4
  EXPECT_EQ(hist[1], 3);       // vertices 1, 2, 3
  EXPECT_EQ(hist[3], 1);       // vertex 0
}

TEST(DegreeStats, KnownGraph) {
  const Edges edges = {{0, 1}, {0, 2}};
  const Graph g = Graph::from_edges(4, edges);
  const auto s = degree_stats(g);
  EXPECT_DOUBLE_EQ(s.mean, 1.0);                     // degrees 2,1,1,0
  EXPECT_DOUBLE_EQ(s.second_moment, 6.0 / 4.0);      // 4+1+1+0 over 4
  EXPECT_EQ(s.max, 2);
  EXPECT_EQ(s.isolated, 1);
}

TEST(DegreeStats, EmptyGraph) {
  const Graph g = Graph::from_edges(0, {});
  const auto s = degree_stats(g);
  EXPECT_EQ(s.mean, 0.0);
  EXPECT_EQ(s.max, 0);
}

TEST(DegreeStats, PowerLawHasHighSecondMoment) {
  Xoshiro256 rng(11);
  const Graph g = random_power_law_graph(2000, 2.2, 1.5, rng);
  const auto s = degree_stats(g);
  // Heavy tails: second moment well above mean^2.
  EXPECT_GT(s.second_moment, 3.0 * s.mean * s.mean);
}

}  // namespace
}  // namespace netalign
