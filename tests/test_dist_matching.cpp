#include "dist/dist_matching.hpp"

#include <gtest/gtest.h>

#include "helpers.hpp"
#include "matching/exact_mwm.hpp"
#include "matching/locally_dominant.hpp"
#include "matching/verify.hpp"

namespace netalign {
namespace {

using dist::DistMatchOptions;
using dist::DistMatchStats;
using dist::distributed_locally_dominant_matching;
using testing::own_weights;
using testing::random_bipartite;

TEST(DistMatching, EmptyGraph) {
  const BipartiteGraph g = BipartiteGraph::from_edges(4, 4, {});
  const auto m = distributed_locally_dominant_matching(g, own_weights(g));
  EXPECT_EQ(m.cardinality, 0);
  EXPECT_TRUE(is_valid_matching(g, m));
}

TEST(DistMatching, SingleEdgeAcrossRanks) {
  // With 4 ranks on a 1+2-vertex graph the endpoints live on different
  // ranks; the proposal round-trip must still match them.
  const std::vector<LEdge> edges = {{0, 1, 2.0}};
  const BipartiteGraph g = BipartiteGraph::from_edges(1, 2, edges);
  DistMatchOptions opt;
  opt.num_ranks = 3;
  const auto m = distributed_locally_dominant_matching(g, own_weights(g), opt);
  EXPECT_EQ(m.cardinality, 1);
  EXPECT_DOUBLE_EQ(m.weight, 2.0);
}

TEST(DistMatching, HalfApproximationAndMaximality) {
  Xoshiro256 rng(1212);
  for (int trial = 0; trial < 40; ++trial) {
    const auto g = random_bipartite(10, 10, 32, rng);
    const auto w = own_weights(g);
    DistMatchOptions opt;
    opt.num_ranks = 4;
    const auto m = distributed_locally_dominant_matching(g, w, opt);
    const auto exact = max_weight_matching_exact(g, w);
    ASSERT_TRUE(is_valid_matching(g, m)) << "trial " << trial;
    EXPECT_TRUE(is_maximal_matching(g, w, m)) << "trial " << trial;
    EXPECT_LE(m.weight, exact.weight + 1e-9);
    EXPECT_GE(m.weight, 0.5 * exact.weight - 1e-9) << "trial " << trial;
  }
}

TEST(DistMatching, ResultIndependentOfRankCount) {
  Xoshiro256 rng(3434);
  const auto g = random_bipartite(40, 40, 240, rng);
  const auto w = own_weights(g);
  DistMatchOptions one;
  one.num_ranks = 1;
  const auto reference = distributed_locally_dominant_matching(g, w, one);
  for (int ranks : {2, 3, 7, 16}) {
    DistMatchOptions opt;
    opt.num_ranks = ranks;
    const auto m = distributed_locally_dominant_matching(g, w, opt);
    EXPECT_EQ(m.mate_a, reference.mate_a) << "ranks=" << ranks;
    EXPECT_NEAR(m.weight, reference.weight, 1e-12) << "ranks=" << ranks;
  }
}

TEST(DistMatching, AgreesWithSharedMemoryMatcherOnDistinctWeights) {
  // Distinct weights => the locally-dominant matching is unique, so the
  // distributed and shared-memory algorithms must return the same edges.
  Xoshiro256 rng(5656);
  for (int trial = 0; trial < 20; ++trial) {
    const auto g = random_bipartite(15, 15, 70, rng);
    const auto w = own_weights(g);
    DistMatchOptions opt;
    opt.num_ranks = 4;
    const auto md = distributed_locally_dominant_matching(g, w, opt);
    const auto ms = locally_dominant_matching(g, w);
    EXPECT_EQ(md.mate_a, ms.mate_a) << "trial " << trial;
  }
}

TEST(DistMatching, StatsReportCommunication) {
  Xoshiro256 rng(7878);
  const auto g = random_bipartite(50, 50, 400, rng);
  const auto w = own_weights(g);
  DistMatchOptions opt;
  opt.num_ranks = 8;
  DistMatchStats stats;
  const auto m = distributed_locally_dominant_matching(g, w, opt, &stats);
  EXPECT_TRUE(is_valid_matching(g, m));
  EXPECT_GT(stats.bsp.supersteps, 1u);
  EXPECT_GT(stats.proposals, 0);
  EXPECT_GT(stats.notices, 0);
  EXPECT_EQ(stats.bsp.messages,
            static_cast<std::size_t>(stats.proposals + stats.notices));
}

TEST(DistMatching, IgnoresNonPositiveEdges) {
  const std::vector<LEdge> edges = {{0, 0, -1.0}, {1, 1, 0.0}, {0, 1, 3.0}};
  const BipartiteGraph g = BipartiteGraph::from_edges(2, 2, edges);
  const auto m = distributed_locally_dominant_matching(g, own_weights(g));
  EXPECT_EQ(m.cardinality, 1);
  EXPECT_EQ(m.mate_a[0], 1);
}

TEST(DistMatching, RejectsBadArguments) {
  const BipartiteGraph g = BipartiteGraph::from_edges(2, 2, {});
  std::vector<weight_t> wrong(5, 1.0);
  EXPECT_THROW(distributed_locally_dominant_matching(g, wrong),
               std::invalid_argument);
  DistMatchOptions opt;
  opt.num_ranks = 0;
  EXPECT_THROW(
      distributed_locally_dominant_matching(g, own_weights(g), opt),
      std::invalid_argument);
}

TEST(DistMatching, MoreRanksThanVerticesStillWorks) {
  const std::vector<LEdge> edges = {{0, 0, 1.0}};
  const BipartiteGraph g = BipartiteGraph::from_edges(1, 1, edges);
  DistMatchOptions opt;
  opt.num_ranks = 50;
  const auto m = distributed_locally_dominant_matching(g, own_weights(g), opt);
  EXPECT_EQ(m.cardinality, 1);
}

}  // namespace
}  // namespace netalign
