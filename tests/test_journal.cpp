// Write-ahead journal and crash-recovery tests (docs/SERVER.md
// "Durability & recovery", record schema in docs/FORMATS.md).
//
// Three layers:
//   - replay_journal_file / JobJournal round trips: every record kind,
//     idempotent re-application, eviction, version refusal, compaction
//     equivalence.
//   - the torn-write sweep: a journal truncated at *every byte offset*
//     of its final record must replay without crashing and apply that
//     record atomically -- fully or not at all -- mirroring the
//     checkpoint corruption sweep in test_checkpoint.cpp.
//   - JobManager restarts over the same work dir: terminal results stay
//     queryable (bit-identical pairs), queued jobs are re-enqueued and
//     run, lost problem spills degrade to a failed job instead of a
//     crash, orphaned work-dir files are swept, and request_id dedupe
//     survives the restart.
//
// The SIGKILL path itself (a daemon killed mid-load, restarted, and
// checked for zero lost jobs and checkpoint-resumed byte-identical
// matchings) lives in tools/check_durability.sh, which drives the real
// binaries; these tests keep the mechanism attributable per-module.
#include "server/journal.hpp"

#include <gtest/gtest.h>

#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "io/problem_io.hpp"
#include "netalign/synthetic.hpp"
#include "server/cache.hpp"
#include "server/jobs.hpp"

namespace netalign::server {
namespace {

namespace fs = std::filesystem;

/// Per-process scratch path (ctest runs cases as concurrent processes).
std::string tmp_path(const std::string& name) {
  return ::testing::TempDir() + "jn" + std::to_string(::getpid()) + "_" +
         name;
}

std::string problem_text(vid_t n = 60, std::uint64_t seed = 7) {
  PowerLawInstanceOptions opt;
  opt.n = n;
  opt.expected_degree = 4.0;
  opt.seed = seed;
  std::ostringstream out;
  write_problem(out, make_power_law_instance(opt).problem);
  return out.str();
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

JournalJob sample_job(std::int64_t id, const std::string& tenant = "default") {
  JournalJob j;
  j.id = id;
  j.tenant = tenant;
  j.key = "0123456789abcdef";
  j.problem_file = "job-" + std::to_string(id) + ".nap";
  j.spec.solver = "bp";
  j.spec.iters = 3;
  j.spec.tenant = tenant;
  return j;
}

JournalResult done_result() {
  JournalResult r;
  r.state = "done";
  r.has_result = true;
  r.stopped_reason = "completed";
  r.objective = 12.5;
  r.weight = 4.0;
  r.overlap = 8.5;
  r.cardinality = 2;
  r.best_iteration = 1;
  r.iterations_completed = 3;
  r.total_seconds = 0.01;
  r.problem_name = "tiny";
  r.num_a = 4;
  r.num_b = 4;
  r.pairs = {{0, 1}, {2, 3}};
  return r;
}

// --- record round trips ------------------------------------------------------

TEST(JournalReplayTest, MissingFileReplaysEmpty) {
  const auto r = replay_journal_file(tmp_path("absent.jsonl"));
  EXPECT_TRUE(r.jobs.empty());
  EXPECT_EQ(r.next_id, 1);
  EXPECT_FALSE(r.torn_tail);
  EXPECT_FALSE(r.malformed);
}

TEST(JournalReplayTest, FullLifecycleRoundTrips) {
  const std::string path = tmp_path("roundtrip.jsonl");
  std::remove(path.c_str());
  {
    JobJournal j(path, /*fsync_all=*/false);
    j.submit(sample_job(1, "team-a"));
    j.start(1, "feedfeedfeedfeed", "job-1.nap");
    j.terminal(1, done_result());
    EXPECT_EQ(j.appends_total(), 4);  // header + submit + start + terminal
    EXPECT_GE(j.fsyncs_total(), 1);   // terminal records always fsync
  }
  const auto r = replay_journal_file(path);
  EXPECT_FALSE(r.torn_tail);
  EXPECT_FALSE(r.malformed);
  EXPECT_EQ(r.ignored_events, 0);
  EXPECT_EQ(r.next_id, 2);
  ASSERT_EQ(r.jobs.size(), 1u);
  const JournalJob& job = r.jobs[0];
  EXPECT_EQ(job.id, 1);
  EXPECT_EQ(job.tenant, "team-a");
  EXPECT_TRUE(job.started);
  EXPECT_EQ(job.key, "feedfeedfeedfeed");  // start finalizes the key
  EXPECT_EQ(job.problem_file, "job-1.nap");
  ASSERT_TRUE(job.terminal);
  EXPECT_EQ(job.result.state, "done");
  EXPECT_TRUE(job.result.has_result);
  EXPECT_EQ(job.result.stopped_reason, "completed");
  EXPECT_DOUBLE_EQ(job.result.objective, 12.5);
  EXPECT_EQ(job.result.cardinality, 2);
  ASSERT_EQ(job.result.pairs.size(), 2u);
  EXPECT_EQ(job.result.pairs[0], (std::pair<std::int64_t, std::int64_t>{0, 1}));
  EXPECT_EQ(job.result.pairs[1], (std::pair<std::int64_t, std::int64_t>{2, 3}));
}

TEST(JournalReplayTest, ReappliedRecordsAreIgnoredNotDoubleApplied) {
  const std::string path = tmp_path("reapply.jsonl");
  std::remove(path.c_str());
  {
    JobJournal j(path, false);
    j.submit(sample_job(1));
    j.submit(sample_job(1));  // duplicate submit (compaction race shape)
    j.terminal(1, done_result());
    JournalResult second = done_result();
    second.state = "failed";
    j.terminal(1, second);  // late terminal: first one wins
    j.start(1, "x", "y");   // start after terminal: ignored
  }
  const auto r = replay_journal_file(path);
  ASSERT_EQ(r.jobs.size(), 1u);
  EXPECT_EQ(r.ignored_events, 3);
  EXPECT_EQ(r.jobs[0].result.state, "done");
  EXPECT_FALSE(r.jobs[0].started);
}

TEST(JournalReplayTest, EvictedJobsStayDead) {
  const std::string path = tmp_path("evict.jsonl");
  std::remove(path.c_str());
  {
    JobJournal j(path, false);
    j.submit(sample_job(1));
    j.submit(sample_job(2));
    j.terminal(1, done_result());
    j.evict(1);
    // A stale record for the evicted id must not resurrect it.
    j.terminal(1, done_result());
  }
  const auto r = replay_journal_file(path);
  ASSERT_EQ(r.jobs.size(), 1u);
  EXPECT_EQ(r.jobs[0].id, 2);
  EXPECT_EQ(r.ignored_events, 1);
  // Ids are never reused even when the highest id was evicted earlier.
  EXPECT_EQ(r.next_id, 3);
}

TEST(JournalReplayTest, NewerVersionIsRefusedLoudly) {
  const std::string path = tmp_path("future.jsonl");
  std::ofstream(path, std::ios::trunc)
      << R"({"event":"journal","version":99,"proto":1,"next_id":7})" << "\n";
  try {
    const auto r = replay_journal_file(path);
    FAIL() << "a newer journal version must be refused, not misread (got "
           << r.jobs.size() << " jobs)";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("version 99"), std::string::npos)
        << e.what();
    EXPECT_NE(std::string(e.what()).find("refusing"), std::string::npos);
  }
}

TEST(JournalReplayTest, HeaderNextIdIsAFloorNotAnOverride) {
  const std::string path = tmp_path("nextid.jsonl");
  std::remove(path.c_str());
  {
    JobJournal j(path, false);
    j.compact({}, /*next_id=*/41);  // header now carries 41
    j.submit(sample_job(50));
  }
  EXPECT_EQ(replay_journal_file(path).next_id, 51);
  {
    JobJournal j(path, false);
    j.compact({}, /*next_id=*/80);
  }
  EXPECT_EQ(replay_journal_file(path).next_id, 80);
}

TEST(JournalReplayTest, MalformedMidStreamKeepsTheCleanPrefix) {
  const std::string path = tmp_path("midstream.jsonl");
  std::remove(path.c_str());
  {
    JobJournal j(path, false);
    j.submit(sample_job(1));
  }
  std::ofstream(path, std::ios::app)
      << "{\"event\": <smashed by bitrot>\n"
      << R"({"event":"submit","job":2,"tenant":"default"})" << "\n";
  const auto r = replay_journal_file(path);
  EXPECT_TRUE(r.malformed);
  ASSERT_EQ(r.jobs.size(), 1u);  // job 2 is after the damage: not applied
  EXPECT_EQ(r.jobs[0].id, 1);
}

TEST(JournalReplayTest, UnknownEventTypesAreForwardCompatible) {
  const std::string path = tmp_path("unknown.jsonl");
  std::remove(path.c_str());
  {
    JobJournal j(path, false);
    j.submit(sample_job(1));
  }
  std::ofstream(path, std::ios::app)
      << R"({"event":"rebalance","job":1,"shard":3})" << "\n";
  const auto r = replay_journal_file(path);
  EXPECT_FALSE(r.malformed);
  ASSERT_EQ(r.jobs.size(), 1u);
}

TEST(JournalCompactTest, CompactionPreservesReplayedState) {
  const std::string path = tmp_path("compact.jsonl");
  std::remove(path.c_str());
  {
    JobJournal j(path, false);
    for (int i = 1; i <= 5; ++i) j.submit(sample_job(i));
    j.start(2, "aaaaaaaaaaaaaaaa", "job-2.nap");
    j.terminal(3, done_result());
    j.terminal(4, done_result());
    j.evict(4);
    EXPECT_EQ(j.appends_since_compact(), 10);  // header + 9 records
    const auto before = replay_journal_file(path);
    j.compact(before.jobs, before.next_id);
    EXPECT_EQ(j.appends_since_compact(), 0);
    EXPECT_EQ(j.compactions_total(), 1);
    // Appends keep landing in the new file through the swapped fd.
    j.submit(sample_job(6));
  }
  const auto after = replay_journal_file(path);
  EXPECT_EQ(after.next_id, 7);
  EXPECT_EQ(after.ignored_events, 0);  // compaction left no dead history
  ASSERT_EQ(after.jobs.size(), 5u);    // 1,2,3,5 survived + 6 appended
  EXPECT_EQ(after.jobs[0].id, 1);
  EXPECT_TRUE(after.jobs[1].started);
  EXPECT_EQ(after.jobs[1].start_seq, 0);
  EXPECT_TRUE(after.jobs[2].terminal);
  EXPECT_EQ(after.jobs[3].id, 5);
  EXPECT_EQ(after.jobs[4].id, 6);
  EXPECT_FALSE(fs::exists(path + ".tmp"));  // renamed, not left behind
}

// --- the torn-write sweep ----------------------------------------------------

TEST(JournalTornWriteTest, TruncationAtEveryByteOfTheFinalRecordIsAtomic) {
  const std::string path = tmp_path("torn_src.jsonl");
  std::remove(path.c_str());
  {
    JobJournal j(path, false);
    j.submit(sample_job(1));
    j.start(1, "feedfeedfeedfeed", "job-1.nap");
    j.terminal(1, done_result());
  }
  const std::string bytes = read_file(path);
  ASSERT_FALSE(bytes.empty());
  ASSERT_EQ(bytes.back(), '\n');
  // Offset where the final (terminal) record begins.
  const std::size_t last =
      bytes.rfind('\n', bytes.size() - 2) + 1;
  ASSERT_GT(last, 0u);
  const std::string torn = tmp_path("torn_cut.jsonl");
  for (std::size_t cut = last; cut <= bytes.size(); ++cut) {
    std::ofstream(torn, std::ios::trunc | std::ios::binary)
        << bytes.substr(0, cut) << std::flush;
    JournalReplay r;
    ASSERT_NO_THROW(r = replay_journal_file(torn)) << "cut at " << cut;
    ASSERT_EQ(r.jobs.size(), 1u) << "cut at " << cut;
    EXPECT_FALSE(r.malformed) << "cut at " << cut;
    if (cut == bytes.size()) {
      // The whole record survived: applied exactly once.
      EXPECT_TRUE(r.jobs[0].terminal);
      EXPECT_FALSE(r.torn_tail);
      EXPECT_EQ(r.jobs[0].result.pairs.size(), 2u);
    } else {
      // Any shorter prefix: the terminal record is dropped whole -- the
      // job replays as started-but-unfinished, never as a half-applied
      // result.
      EXPECT_FALSE(r.jobs[0].terminal) << "cut at " << cut;
      EXPECT_TRUE(r.jobs[0].started) << "cut at " << cut;
      if (cut > last) {
        EXPECT_TRUE(r.torn_tail) << "cut at " << cut;
      }
    }
  }
  std::remove(torn.c_str());
}

// --- JobManager restarts over one work dir -----------------------------------

JobManagerOptions recovery_options(const std::string& dir) {
  JobManagerOptions opt;
  opt.workers = 1;
  opt.queue_cap = 16;
  opt.work_dir = dir;
  opt.checkpoint_every = 2;
  return opt;
}

JobManager::JobResult wait_terminal(JobManager& jobs, std::int64_t id) {
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(60);
  for (;;) {
    const auto r = jobs.result(id);
    if (!r.has_value()) {
      ADD_FAILURE() << "job " << id << " vanished";
      return {};
    }
    if (r->state != JobState::kQueued && r->state != JobState::kRunning) {
      return *r;
    }
    if (std::chrono::steady_clock::now() > deadline) {
      ADD_FAILURE() << "job " << id << " did not finish in time";
      return *r;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
}

SubmitParams bp_job(const std::string& text, std::int64_t iters) {
  SubmitParams spec;
  spec.problem_text = text;
  spec.solver = "bp";
  spec.iters = iters;
  return spec;
}

TEST(RecoveryTest, TerminalResultsSurviveARestartBitIdentically) {
  const std::string dir = tmp_path("rec_terminal");
  fs::remove_all(dir);
  obs::Counters counters;
  ProblemCache cache(4, &counters);
  JobManager::JobResult before;
  std::int64_t id = -1;
  {
    JobManager jobs(recovery_options(dir), cache, &counters);
    const auto out = jobs.submit(bp_job(problem_text(), 10));
    ASSERT_TRUE(out.accepted) << out.message;
    id = out.job;
    before = wait_terminal(jobs, id);
    ASSERT_EQ(before.state, JobState::kDone);
  }
  // "Restart": a fresh manager over the same work dir.
  JobManager jobs(recovery_options(dir), cache, &counters);
  EXPECT_TRUE(jobs.recovery().performed);
  EXPECT_EQ(jobs.recovery().terminal_restored, 1);
  EXPECT_EQ(jobs.recovery().requeued, 0);
  const auto after = jobs.result(id);
  ASSERT_TRUE(after.has_value());
  EXPECT_EQ(after->state, JobState::kDone);
  EXPECT_EQ(after->stopped_reason, before.stopped_reason);
  EXPECT_DOUBLE_EQ(after->objective, before.objective);
  EXPECT_EQ(after->iterations_completed, before.iterations_completed);
  EXPECT_EQ(after->pairs, before.pairs);  // the matching itself, verbatim
  // The restarted manager must not reuse the id space.
  const auto fresh = jobs.submit(bp_job(problem_text(), 5));
  ASSERT_TRUE(fresh.accepted);
  EXPECT_GT(fresh.job, id);
}

TEST(RecoveryTest, QueuedJobsAreReenqueuedInOrderAndRun) {
  const std::string dir = tmp_path("rec_requeue");
  fs::remove_all(dir);
  fs::create_directories(dir);
  const std::string text = problem_text();
  // Fabricate a crashed daemon's work dir by hand: journal with two
  // acknowledged-but-unrun submits, plus their problem spills. (An
  // in-process manager cannot SIGKILL itself; its destructor would
  // journal cancellations instead.)
  std::ofstream(dir + "/job-1.nap", std::ios::binary) << text << std::flush;
  std::ofstream(dir + "/job-2.nap", std::ios::binary) << text << std::flush;
  {
    JobJournal j(dir + "/journal.jsonl", false);
    JournalJob one = sample_job(1);
    one.key = content_key(text);
    JournalJob two = sample_job(2);
    two.key = content_key(text);
    j.submit(one);
    j.submit(two);
  }
  obs::Counters counters;
  ProblemCache cache(4, &counters);
  JobManager jobs(recovery_options(dir), cache, &counters);
  EXPECT_EQ(jobs.recovery().requeued, 2);
  EXPECT_EQ(jobs.recovery().rerun, 0);
  const auto r1 = wait_terminal(jobs, 1);
  const auto r2 = wait_terminal(jobs, 2);
  EXPECT_EQ(r1.state, JobState::kDone);
  EXPECT_EQ(r2.state, JobState::kDone);
  EXPECT_GT(r1.cardinality, 0);
  EXPECT_EQ(r1.pairs, r2.pairs);  // same problem, same deterministic solve
  EXPECT_EQ(counters.total("server.recovery.requeued"), 2);
}

TEST(RecoveryTest, FormerlyRunningJobIsRerunToCompletion) {
  const std::string dir = tmp_path("rec_rerun");
  fs::remove_all(dir);
  fs::create_directories(dir);
  const std::string text = problem_text();
  std::ofstream(dir + "/job-1.nap", std::ios::binary) << text << std::flush;
  {
    JobJournal j(dir + "/journal.jsonl", false);
    JournalJob one = sample_job(1);
    one.key = content_key(text);
    j.submit(one);
    j.start(1, content_key(text), "job-1.nap");
    // No terminal record: the daemon died mid-run.
  }
  obs::Counters counters;
  ProblemCache cache(4, &counters);
  JobManager jobs(recovery_options(dir), cache, &counters);
  EXPECT_EQ(jobs.recovery().rerun, 1);
  EXPECT_EQ(jobs.recovery().resumed, 0);  // no checkpoint was on disk
  const auto r = wait_terminal(jobs, 1);
  EXPECT_EQ(r.state, JobState::kDone);
  EXPECT_EQ(r.iterations_completed, 3);
}

TEST(RecoveryTest, LostProblemSpillDegradesToAFailedJob) {
  const std::string dir = tmp_path("rec_lost");
  fs::remove_all(dir);
  fs::create_directories(dir);
  {
    JobJournal j(dir + "/journal.jsonl", false);
    JournalJob one = sample_job(1);
    one.problem_file.clear();  // the spill write failed before the crash
    j.submit(one);
  }
  obs::Counters counters;
  ProblemCache cache(4, &counters);
  JobManager jobs(recovery_options(dir), cache, &counters);
  const auto r = jobs.result(1);
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->state, JobState::kFailed);
  EXPECT_NE(r->error.find("lost"), std::string::npos) << r->error;
}

TEST(RecoveryTest, TornFinalRecordIsReportedAndSurvivable) {
  const std::string dir = tmp_path("rec_torn");
  fs::remove_all(dir);
  obs::Counters counters;
  ProblemCache cache(4, &counters);
  std::int64_t id = -1;
  {
    JobManager jobs(recovery_options(dir), cache, &counters);
    const auto out = jobs.submit(bp_job(problem_text(), 5));
    ASSERT_TRUE(out.accepted);
    id = out.job;
    wait_terminal(jobs, id);
  }
  // Tear the tail the way a SIGKILL mid-append would: a new submit
  // record cut partway through, no trailing newline. (A *terminal*
  // record can only be torn while the job's spill still exists -- the
  // unlink happens strictly after the append -- so the torn-terminal
  // case is the chaos harness's to exercise with real kills.)
  const std::string jpath = dir + "/journal.jsonl";
  std::ofstream(jpath, std::ios::app | std::ios::binary)
      << R"({"event":"submit","job":99,"tenant":"def)" << std::flush;
  JobManager jobs(recovery_options(dir), cache, &counters);
  EXPECT_TRUE(jobs.recovery().performed);
  EXPECT_TRUE(jobs.recovery().torn_tail);
  // Exactly the torn record is dropped: the completed job is intact...
  const auto r = jobs.result(id);
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->state, JobState::kDone);
  // ...and the half-written job 99 never existed (it was never acked).
  EXPECT_FALSE(jobs.status(99).has_value());
}

TEST(RecoveryTest, OrphanedWorkDirFilesAreSweptUnknownFilesKept) {
  const std::string dir = tmp_path("rec_orphans");
  fs::remove_all(dir);
  fs::create_directories(dir);
  std::ofstream(dir + "/job-97.trace.jsonl") << "{}\n";
  std::ofstream(dir + "/job-98.ckpt.tmp") << "half a checkpoint";
  std::ofstream(dir + "/job-99.ckpt") << "checkpoint of an unknown job";
  std::ofstream(dir + "/job-96.nap") << "spill of an unknown job";
  std::ofstream(dir + "/notes.txt") << "operator scratch file";
  obs::Counters counters;
  ProblemCache cache(4, &counters);
  JobManager jobs(recovery_options(dir), cache, &counters);
  EXPECT_EQ(jobs.recovery().orphans_removed, 4);
  EXPECT_FALSE(fs::exists(dir + "/job-97.trace.jsonl"));
  EXPECT_FALSE(fs::exists(dir + "/job-98.ckpt.tmp"));
  EXPECT_FALSE(fs::exists(dir + "/job-99.ckpt"));
  EXPECT_FALSE(fs::exists(dir + "/job-96.nap"));
  // Files the manager did not create are never touched.
  EXPECT_TRUE(fs::exists(dir + "/notes.txt"));
}

TEST(RecoveryTest, RequestIdDedupeWorksLiveAndAcrossRestart) {
  const std::string dir = tmp_path("rec_dedupe");
  fs::remove_all(dir);
  obs::Counters counters;
  ProblemCache cache(4, &counters);
  std::int64_t original = -1;
  {
    JobManager jobs(recovery_options(dir), cache, &counters);
    SubmitParams spec = bp_job(problem_text(), 5);
    spec.request_id = "retry-abc-1";
    const auto first = jobs.submit(spec);
    ASSERT_TRUE(first.accepted);
    EXPECT_FALSE(first.duplicate);
    original = first.job;
    // A blind retry of the same request must not enqueue a second run.
    const auto again = jobs.submit(spec);
    ASSERT_TRUE(again.accepted);
    EXPECT_TRUE(again.duplicate);
    EXPECT_EQ(again.job, original);
    EXPECT_EQ(counters.total("server.jobs_deduplicated"), 1);
    wait_terminal(jobs, original);
  }
  // The dedupe window survives the restart: the request_id rides the
  // journal's submit record.
  JobManager jobs(recovery_options(dir), cache, &counters);
  SubmitParams spec = bp_job(problem_text(), 5);
  spec.request_id = "retry-abc-1";
  const auto replayed = jobs.submit(spec);
  ASSERT_TRUE(replayed.accepted);
  EXPECT_TRUE(replayed.duplicate);
  EXPECT_EQ(replayed.job, original);
}

TEST(RecoveryTest, RequestIdDedupeIsScopedPerTenant) {
  const std::string dir = tmp_path("rec_dedupe_tenant");
  fs::remove_all(dir);
  obs::Counters counters;
  ProblemCache cache(4, &counters);
  JobManager jobs(recovery_options(dir), cache, &counters);
  SubmitParams a = bp_job(problem_text(), 5);
  a.tenant = "team-a";
  a.request_id = "token-1";
  const auto first = jobs.submit(a);
  ASSERT_TRUE(first.accepted);
  EXPECT_FALSE(first.duplicate);
  // The same token from another tenant is a fresh job -- never answered
  // with team-a's job id and content key.
  SubmitParams b = bp_job(problem_text(50, 5), 5);
  b.tenant = "team-b";
  b.request_id = "token-1";
  const auto other = jobs.submit(b);
  ASSERT_TRUE(other.accepted);
  EXPECT_FALSE(other.duplicate);
  EXPECT_NE(other.job, first.job);
  EXPECT_NE(other.key, first.key);
  // A genuine retry within the tenant still dedupes.
  const auto retry = jobs.submit(a);
  ASSERT_TRUE(retry.accepted);
  EXPECT_TRUE(retry.duplicate);
  EXPECT_EQ(retry.job, first.job);
  wait_terminal(jobs, first.job);
  wait_terminal(jobs, other.job);
}

TEST(JournalWriteErrorTest, FailedAppendsAreCountedNotFatal) {
  // /dev/full fails every write(2) with ENOSPC: the journal must stay
  // usable (no throw, no partial-record bookkeeping) and report the
  // losses through write_errors_total().
  if (!fs::exists("/dev/full")) GTEST_SKIP() << "no /dev/full here";
  JobJournal j("/dev/full", /*fsync_all=*/false);
  EXPECT_EQ(j.appends_total(), 0);  // the header append already failed
  EXPECT_GE(j.write_errors_total(), 1);
  j.submit(sample_job(1));
  j.terminal(1, done_result());
  EXPECT_EQ(j.appends_total(), 0);
  EXPECT_GE(j.write_errors_total(), 3);
}

TEST(RecoveryTest, NewerJournalRefusesToStartTheManager) {
  const std::string dir = tmp_path("rec_future");
  fs::remove_all(dir);
  fs::create_directories(dir);
  std::ofstream(dir + "/journal.jsonl")
      << R"({"event":"journal","version":99,"proto":1,"next_id":1})" << "\n";
  obs::Counters counters;
  ProblemCache cache(4, &counters);
  EXPECT_THROW(JobManager(recovery_options(dir), cache, &counters),
               std::runtime_error);
}

TEST(RecoveryTest, NoRecoverDiscardsThePriorJournal) {
  const std::string dir = tmp_path("rec_norecover");
  fs::remove_all(dir);
  obs::Counters counters;
  ProblemCache cache(4, &counters);
  std::int64_t id = -1;
  {
    JobManager jobs(recovery_options(dir), cache, &counters);
    const auto out = jobs.submit(bp_job(problem_text(), 5));
    ASSERT_TRUE(out.accepted);
    id = out.job;
    wait_terminal(jobs, id);
  }
  JobManagerOptions opt = recovery_options(dir);
  opt.recover = false;
  JobManager jobs(opt, cache, &counters);
  EXPECT_FALSE(jobs.recovery().performed);
  EXPECT_FALSE(jobs.result(id).has_value());  // prior state discarded
}

TEST(RecoveryTest, JournalOffMeansVolatileJobsAndNoJournalFile) {
  const std::string dir = tmp_path("rec_off");
  fs::remove_all(dir);
  obs::Counters counters;
  ProblemCache cache(4, &counters);
  JobManagerOptions opt = recovery_options(dir);
  opt.journal = false;
  JobManager jobs(opt, cache, &counters);
  EXPECT_FALSE(jobs.journal_stats().enabled);
  const auto out = jobs.submit(bp_job(problem_text(), 5));
  ASSERT_TRUE(out.accepted);
  wait_terminal(jobs, out.job);
  EXPECT_FALSE(fs::exists(dir + "/journal.jsonl"));
}

}  // namespace
}  // namespace netalign::server
