// Fault-injection suite (CTest labels: tier1, fault): the distributed
// solvers must keep their guarantees on an adversarial-but-reproducible
// fabric. Three properties anchor the tests (docs/ARCHITECTURE.md "Fault
// model & reliable delivery"):
//  - survival: with any plan that allows eventual delivery (drop_rate < 1)
//    dist_matching terminates and still produces a valid, maximal,
//    half-approximate matching; dist_mr / dist_bp terminate under rank
//    stalls and report the staleness they absorbed;
//  - determinism: the same (plan, program) pair replays bit-identically,
//    matchings and fault tallies alike;
//  - zero-cost default: an all-zero plan is byte-identical in behavior and
//    BspStats to the pre-fault substrate.
#include "dist/fault.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>
#include <string>

#include "dist/dist_bp.hpp"
#include "dist/dist_matching.hpp"
#include "dist/dist_mr.hpp"
#include "helpers.hpp"
#include "matching/exact_mwm.hpp"
#include "matching/verify.hpp"
#include "netalign/synthetic.hpp"
#include "obs/counters.hpp"
#include "obs/json.hpp"
#include "obs/trace.hpp"

namespace netalign {
namespace {

using dist::DistMatchOptions;
using dist::DistMatchStats;
using dist::distributed_belief_prop_align;
using dist::distributed_klau_mr_align;
using dist::distributed_locally_dominant_matching;
using dist::FaultInjector;
using dist::FaultPlan;
using dist::FaultStats;
using testing::own_weights;
using testing::random_bipartite;

FaultPlan lossy_plan(std::uint64_t seed, double drop) {
  FaultPlan plan;
  plan.seed = seed;
  plan.drop_rate = drop;
  return plan;
}

SyntheticInstance small_instance(std::uint64_t seed) {
  PowerLawInstanceOptions opt;
  opt.n = 40;
  opt.seed = seed;
  opt.expected_degree = 3.0;
  return make_power_law_instance(opt);
}

TEST(FaultPlan, ValidateRejectsBadRatesAndBounds) {
  FaultPlan plan;
  plan.drop_rate = -0.1;
  EXPECT_THROW(plan.validate(), std::invalid_argument);
  plan.drop_rate = 1.5;
  EXPECT_THROW(plan.validate(), std::invalid_argument);
  plan = {};
  plan.delay_rate = 0.5;
  plan.max_delay = 0;
  EXPECT_THROW(plan.validate(), std::invalid_argument);
  plan = {};
  plan.stall_rate = 0.5;
  plan.max_stall = 0;
  EXPECT_THROW(plan.validate(), std::invalid_argument);
  plan = {};
  plan.duplicate_rate = 2.0;
  EXPECT_THROW(plan.validate(), std::invalid_argument);
  plan = {};
  plan.reorder_rate = -1.0;
  EXPECT_THROW(plan.validate(), std::invalid_argument);
}

TEST(FaultPlan, DefaultPlanIsPerfectFabric) {
  FaultPlan plan;
  EXPECT_FALSE(plan.any());
  plan.validate();  // must not throw
  plan.drop_rate = 0.01;
  EXPECT_TRUE(plan.any());
}

TEST(FaultPlan, SolversRejectInvalidPlans) {
  const BipartiteGraph g =
      BipartiteGraph::from_edges(2, 2, std::vector<LEdge>{{0, 0, 1.0}});
  DistMatchOptions opt;
  opt.faults.drop_rate = 7.0;
  EXPECT_THROW(distributed_locally_dominant_matching(g, own_weights(g), opt),
               std::invalid_argument);
}

TEST(FaultMatching, SurvivesMessageLossWithGuarantees) {
  Xoshiro256 rng(91);
  for (int trial = 0; trial < 12; ++trial) {
    const auto g = random_bipartite(10, 10, 32, rng);
    const auto w = own_weights(g);
    DistMatchOptions opt;
    opt.num_ranks = 4;
    opt.faults = lossy_plan(1000 + static_cast<std::uint64_t>(trial), 0.2);
    DistMatchStats stats;
    const auto m = distributed_locally_dominant_matching(g, w, opt, &stats);
    const auto exact = max_weight_matching_exact(g, w);
    ASSERT_TRUE(is_valid_matching(g, m)) << "trial " << trial;
    EXPECT_TRUE(is_maximal_matching(g, w, m)) << "trial " << trial;
    EXPECT_GE(m.weight, 0.5 * exact.weight - 1e-9) << "trial " << trial;
    EXPECT_LE(m.weight, exact.weight + 1e-9) << "trial " << trial;
  }
}

TEST(FaultMatching, SurvivesEveryFaultKindAtOnce) {
  Xoshiro256 rng(92);
  std::size_t dropped = 0, duplicated = 0, delayed = 0, reordered = 0,
              stalls = 0;
  for (int trial = 0; trial < 10; ++trial) {
    const auto g = random_bipartite(12, 12, 40, rng);
    const auto w = own_weights(g);
    DistMatchOptions opt;
    opt.num_ranks = 4;
    opt.faults.seed = 5000 + static_cast<std::uint64_t>(trial);
    opt.faults.drop_rate = 0.1;
    opt.faults.duplicate_rate = 0.1;
    opt.faults.delay_rate = 0.1;
    opt.faults.max_delay = 3;
    opt.faults.reorder_rate = 0.3;
    opt.faults.stall_rate = 0.05;
    opt.faults.max_stall = 2;
    DistMatchStats stats;
    const auto m = distributed_locally_dominant_matching(g, w, opt, &stats);
    const auto exact = max_weight_matching_exact(g, w);
    ASSERT_TRUE(is_valid_matching(g, m)) << "trial " << trial;
    EXPECT_TRUE(is_maximal_matching(g, w, m)) << "trial " << trial;
    EXPECT_GE(m.weight, 0.5 * exact.weight - 1e-9) << "trial " << trial;
    dropped += stats.faults.dropped;
    duplicated += stats.faults.duplicated;
    delayed += stats.faults.delayed;
    reordered += stats.faults.reordered;
    stalls += stats.faults.stalls;
  }
  // Across ten trials every fault kind must actually have fired, or the
  // suite is vacuously green.
  EXPECT_GT(dropped, 0u);
  EXPECT_GT(duplicated, 0u);
  EXPECT_GT(delayed, 0u);
  EXPECT_GT(reordered, 0u);
  EXPECT_GT(stalls, 0u);
}

TEST(FaultMatching, ReliableShimReactsToLossAndDuplication) {
  Xoshiro256 rng(93);
  const auto g = random_bipartite(20, 20, 120, rng);
  const auto w = own_weights(g);
  DistMatchOptions opt;
  opt.num_ranks = 6;
  opt.faults.seed = 77;
  opt.faults.drop_rate = 0.25;
  opt.faults.duplicate_rate = 0.25;
  opt.faults.delay_rate = 0.15;
  DistMatchStats stats;
  const auto m = distributed_locally_dominant_matching(g, w, opt, &stats);
  EXPECT_TRUE(is_valid_matching(g, m));
  // Lost messages force retransmits; network duplicates (and retransmits
  // of messages that did arrive) are suppressed by sequence numbers;
  // delays force out-of-order buffering; quiet receivers emit pure acks.
  EXPECT_GT(stats.faults.retransmits, 0u);
  EXPECT_GT(stats.faults.duplicates_suppressed, 0u);
  EXPECT_GT(stats.faults.out_of_order_buffered, 0u);
  EXPECT_GT(stats.faults.acks, 0u);
}

TEST(FaultMatching, DeterministicReplayForSameSeed) {
  Xoshiro256 rng(94);
  const auto g = random_bipartite(15, 15, 60, rng);
  const auto w = own_weights(g);
  DistMatchOptions opt;
  opt.num_ranks = 4;
  opt.faults.seed = 4242;
  opt.faults.drop_rate = 0.2;
  opt.faults.duplicate_rate = 0.1;
  opt.faults.delay_rate = 0.1;
  opt.faults.reorder_rate = 0.2;
  opt.faults.stall_rate = 0.05;

  DistMatchStats s1, s2;
  const auto m1 = distributed_locally_dominant_matching(g, w, opt, &s1);
  const auto m2 = distributed_locally_dominant_matching(g, w, opt, &s2);
  EXPECT_EQ(m1.mate_a, m2.mate_a);
  EXPECT_EQ(m1.mate_b, m2.mate_b);
  EXPECT_EQ(s1.bsp.supersteps, s2.bsp.supersteps);
  EXPECT_EQ(s1.bsp.messages, s2.bsp.messages);
  EXPECT_EQ(s1.bsp.bytes, s2.bsp.bytes);
  EXPECT_EQ(s1.faults.dropped, s2.faults.dropped);
  EXPECT_EQ(s1.faults.duplicated, s2.faults.duplicated);
  EXPECT_EQ(s1.faults.delayed, s2.faults.delayed);
  EXPECT_EQ(s1.faults.reordered, s2.faults.reordered);
  EXPECT_EQ(s1.faults.stalls, s2.faults.stalls);
  EXPECT_EQ(s1.faults.retransmits, s2.faults.retransmits);
  EXPECT_EQ(s1.faults.duplicates_suppressed, s2.faults.duplicates_suppressed);
  EXPECT_EQ(s1.faults.out_of_order_buffered, s2.faults.out_of_order_buffered);
  EXPECT_EQ(s1.faults.acks, s2.faults.acks);
}

TEST(FaultMatching, ZeroRatePlanMatchesFaultFreeRunExactly) {
  Xoshiro256 rng(95);
  const auto g = random_bipartite(20, 20, 100, rng);
  const auto w = own_weights(g);

  DistMatchOptions plain;
  plain.num_ranks = 5;
  DistMatchStats sp;
  const auto mp = distributed_locally_dominant_matching(g, w, plain, &sp);

  DistMatchOptions zeroed;
  zeroed.num_ranks = 5;
  zeroed.faults.seed = 999;  // seed alone must not change anything
  DistMatchStats sz;
  const auto mz = distributed_locally_dominant_matching(g, w, zeroed, &sz);

  EXPECT_EQ(mp.mate_a, mz.mate_a);
  EXPECT_EQ(sp.bsp.supersteps, sz.bsp.supersteps);
  EXPECT_EQ(sp.bsp.messages, sz.bsp.messages);
  EXPECT_EQ(sp.bsp.bytes, sz.bsp.bytes);
  EXPECT_EQ(sp.proposals, sz.proposals);
  EXPECT_EQ(sp.notices, sz.notices);
  EXPECT_EQ(sz.faults.dropped, 0u);
  EXPECT_EQ(sz.faults.retransmits, 0u);
}

TEST(FaultMatching, CountersAndTraceRecordInjectedFaults) {
  Xoshiro256 rng(96);
  const auto g = random_bipartite(12, 12, 50, rng);
  const auto w = own_weights(g);
  std::ostringstream trace_out;
  obs::TraceWriter trace(&trace_out);
  obs::Counters counters;
  DistMatchOptions opt;
  opt.num_ranks = 4;
  opt.counters = &counters;
  opt.trace = &trace;
  opt.faults.seed = 31;
  opt.faults.drop_rate = 0.2;
  opt.faults.stall_rate = 0.05;
  DistMatchStats stats;
  const auto m = distributed_locally_dominant_matching(g, w, opt, &stats);
  EXPECT_TRUE(is_valid_matching(g, m));

  // Counter registry mirrors the injector tallies exactly.
  EXPECT_EQ(counters.total("fault.drop"),
            static_cast<std::int64_t>(stats.faults.dropped));
  EXPECT_EQ(counters.total("fault.stall"),
            static_cast<std::int64_t>(stats.faults.stalls));
  EXPECT_EQ(counters.total("rel.retransmits"),
            static_cast<std::int64_t>(stats.faults.retransmits));
  EXPECT_GT(counters.total("fault.drop"), 0);

  // Each fault is a parseable JSONL `fault` event with kind/from/to.
  std::istringstream lines(trace_out.str());
  std::string line;
  std::size_t fault_events = 0;
  while (std::getline(lines, line)) {
    const obs::JsonValue v = obs::parse_json(line);
    const obs::JsonValue* type = v.find("event");
    ASSERT_NE(type, nullptr) << line;
    if (type->as_string() != "fault") continue;
    fault_events += 1;
    ASSERT_NE(v.find("kind"), nullptr) << line;
    const std::string kind = v.find("kind")->as_string();
    EXPECT_TRUE(kind == "drop" || kind == "duplicate" || kind == "delay" ||
                kind == "reorder" || kind == "stall")
        << kind;
    EXPECT_NE(v.find("from"), nullptr) << line;
    EXPECT_NE(v.find("to"), nullptr) << line;
    EXPECT_NE(v.find("amount"), nullptr) << line;
  }
  EXPECT_EQ(fault_events,
            stats.faults.dropped + stats.faults.duplicated +
                stats.faults.delayed + stats.faults.reordered +
                stats.faults.stalls);
}

TEST(FaultMr, TerminatesUnderStallsAndReportsStaleness) {
  const auto inst = small_instance(11);
  const auto S = SquaresMatrix::build(inst.problem);
  dist::DistMrOptions opt;
  opt.num_ranks = 4;
  opt.max_iterations = 12;
  opt.faults.seed = 88;
  opt.faults.stall_rate = 0.3;
  opt.faults.max_stall = 2;
  dist::DistMrStats stats;
  const auto r = distributed_klau_mr_align(inst.problem, S, opt, &stats);
  EXPECT_TRUE(is_valid_matching(inst.problem.L, r.matching));
  EXPECT_GT(stats.stalled_iterations, 0u);
  EXPECT_GE(stats.max_staleness, 1u);
  EXPECT_GT(stats.fault_stats.stalls, 0u);
}

TEST(FaultMr, SurvivesMessageFaults) {
  const auto inst = small_instance(12);
  const auto S = SquaresMatrix::build(inst.problem);
  dist::DistMrOptions opt;
  opt.num_ranks = 4;
  opt.max_iterations = 10;
  opt.faults.seed = 13;
  opt.faults.drop_rate = 0.15;
  opt.faults.duplicate_rate = 0.1;
  opt.faults.delay_rate = 0.1;
  dist::DistMrStats stats;
  const auto r = distributed_klau_mr_align(inst.problem, S, opt, &stats);
  EXPECT_TRUE(is_valid_matching(inst.problem.L, r.matching));
  EXPECT_GT(stats.fault_stats.dropped, 0u);
  EXPECT_GT(r.value.objective, 0.0);
}

TEST(FaultMr, DeterministicReplayForSameSeed) {
  const auto inst = small_instance(13);
  const auto S = SquaresMatrix::build(inst.problem);
  dist::DistMrOptions opt;
  opt.num_ranks = 4;
  opt.max_iterations = 10;
  opt.faults.seed = 321;
  opt.faults.drop_rate = 0.1;
  opt.faults.stall_rate = 0.2;
  dist::DistMrStats s1, s2;
  const auto r1 = distributed_klau_mr_align(inst.problem, S, opt, &s1);
  const auto r2 = distributed_klau_mr_align(inst.problem, S, opt, &s2);
  EXPECT_EQ(r1.matching.mate_a, r2.matching.mate_a);
  EXPECT_DOUBLE_EQ(r1.value.objective, r2.value.objective);
  EXPECT_EQ(s1.fault_stats.dropped, s2.fault_stats.dropped);
  EXPECT_EQ(s1.fault_stats.stalls, s2.fault_stats.stalls);
  EXPECT_EQ(s1.stalled_iterations, s2.stalled_iterations);
  EXPECT_EQ(s1.max_staleness, s2.max_staleness);
  EXPECT_EQ(s1.bsp.messages, s2.bsp.messages);
}

TEST(FaultMr, ZeroRatePlanMatchesFaultFreeRunExactly) {
  const auto inst = small_instance(14);
  const auto S = SquaresMatrix::build(inst.problem);
  dist::DistMrOptions plain;
  plain.num_ranks = 3;
  plain.max_iterations = 8;
  dist::DistMrStats sp;
  const auto rp = distributed_klau_mr_align(inst.problem, S, plain, &sp);

  dist::DistMrOptions zeroed = plain;
  zeroed.faults.seed = 555;
  dist::DistMrStats sz;
  const auto rz = distributed_klau_mr_align(inst.problem, S, zeroed, &sz);

  EXPECT_EQ(rp.matching.mate_a, rz.matching.mate_a);
  EXPECT_DOUBLE_EQ(rp.value.objective, rz.value.objective);
  EXPECT_EQ(sp.bsp.supersteps, sz.bsp.supersteps);
  EXPECT_EQ(sp.bsp.messages, sz.bsp.messages);
  EXPECT_EQ(sp.bsp.bytes, sz.bsp.bytes);
  EXPECT_EQ(sz.stalled_iterations, 0u);
  EXPECT_EQ(sz.fault_stats.dropped, 0u);
}

TEST(FaultBp, TerminatesUnderStallsAndMessageLoss) {
  std::size_t stale_columns = 0;
  for (std::uint64_t seed : {21u, 22u, 23u}) {
    const auto inst = small_instance(seed);
    const auto S = SquaresMatrix::build(inst.problem);
    dist::DistBpOptions opt;
    opt.num_ranks = 4;
    opt.max_iterations = 12;
    opt.faults.seed = seed;
    opt.faults.drop_rate = 0.25;
    opt.faults.stall_rate = 0.2;
    opt.faults.max_stall = 2;
    dist::DistBpStats stats;
    const auto r = distributed_belief_prop_align(inst.problem, S, opt, &stats);
    ASSERT_TRUE(is_valid_matching(inst.problem.L, r.matching))
        << "seed " << seed;
    EXPECT_GT(stats.stalled_iterations + stats.fault_stats.dropped, 0u);
    stale_columns += stats.stale_columns;
  }
  // Lost othermax replies must surface as stale-column events somewhere in
  // three seeded runs, or the degradation path is untested.
  EXPECT_GT(stale_columns, 0u);
}

TEST(FaultBp, DeterministicReplayForSameSeed) {
  const auto inst = small_instance(31);
  const auto S = SquaresMatrix::build(inst.problem);
  dist::DistBpOptions opt;
  opt.num_ranks = 4;
  opt.max_iterations = 10;
  opt.faults.seed = 606;
  opt.faults.drop_rate = 0.2;
  opt.faults.stall_rate = 0.15;
  dist::DistBpStats s1, s2;
  const auto r1 = distributed_belief_prop_align(inst.problem, S, opt, &s1);
  const auto r2 = distributed_belief_prop_align(inst.problem, S, opt, &s2);
  EXPECT_EQ(r1.matching.mate_a, r2.matching.mate_a);
  EXPECT_DOUBLE_EQ(r1.value.objective, r2.value.objective);
  EXPECT_EQ(s1.fault_stats.dropped, s2.fault_stats.dropped);
  EXPECT_EQ(s1.stale_columns, s2.stale_columns);
  EXPECT_EQ(s1.stalled_iterations, s2.stalled_iterations);
  EXPECT_EQ(s1.bsp.messages, s2.bsp.messages);
}

TEST(FaultBp, ZeroRatePlanMatchesFaultFreeRunExactly) {
  const auto inst = small_instance(32);
  const auto S = SquaresMatrix::build(inst.problem);
  dist::DistBpOptions plain;
  plain.num_ranks = 3;
  plain.max_iterations = 8;
  dist::DistBpStats sp;
  const auto rp = distributed_belief_prop_align(inst.problem, S, plain, &sp);

  dist::DistBpOptions zeroed = plain;
  zeroed.faults.seed = 777;
  dist::DistBpStats sz;
  const auto rz = distributed_belief_prop_align(inst.problem, S, zeroed, &sz);

  EXPECT_EQ(rp.matching.mate_a, rz.matching.mate_a);
  EXPECT_DOUBLE_EQ(rp.value.objective, rz.value.objective);
  EXPECT_EQ(sp.bsp.supersteps, sz.bsp.supersteps);
  EXPECT_EQ(sp.bsp.messages, sz.bsp.messages);
  EXPECT_EQ(sp.bsp.bytes, sz.bsp.bytes);
  EXPECT_EQ(sz.stale_columns, 0u);
  EXPECT_EQ(sz.stalled_iterations, 0u);
}

}  // namespace
}  // namespace netalign
