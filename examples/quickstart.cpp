// Quickstart: align two tiny hand-built graphs.
//
// Builds the guiding example of the paper's Figure 1 in a few lines: two
// small graphs A and B, a bipartite candidate graph L with similarity
// weights, and a run of both alignment methods. Start here to learn the
// API; the other examples show realistic scales.
//
//   ./quickstart
//   ./quickstart --trace-out quickstart.jsonl --counters
#include <cstdio>
#include <memory>

#include "netalign/belief_prop.hpp"
#include "netalign/klau_mr.hpp"
#include "netalign/squares.hpp"
#include "obs/counters.hpp"
#include "obs/trace.hpp"
#include "util/cli.hpp"

using namespace netalign;

int main(int argc, char** argv) {
  CliParser cli("Quickstart: align two tiny hand-built graphs.");
  const ObsFlags obs_flags = add_obs_flags(cli);
  if (!cli.parse(argc, argv)) return 0;
  // Graph A: a 4-cycle 0-1-2-3. Graph B: a path 0-1-2-3 (one edge
  // missing). The best alignment maps each i to i and overlaps the three
  // path edges.
  NetAlignProblem problem;
  const std::vector<std::pair<vid_t, vid_t>> ea = {{0, 1}, {1, 2}, {2, 3},
                                                   {3, 0}};
  const std::vector<std::pair<vid_t, vid_t>> eb = {{0, 1}, {1, 2}, {2, 3}};
  problem.A = Graph::from_edges(4, ea);
  problem.B = Graph::from_edges(4, eb);

  // L: candidate pairs with similarity weights. The diagonal is the right
  // answer but we also offer tempting wrong pairs.
  const std::vector<LEdge> el = {
      {0, 0, 1.0}, {1, 1, 1.0}, {2, 2, 1.0}, {3, 3, 1.0},
      {0, 2, 1.5}, {1, 3, 1.5},  // heavier decoys with no edge overlap
  };
  problem.L = BipartiteGraph::from_edges(4, 4, el);
  problem.alpha = 1.0;  // weight of the similarity term
  problem.beta = 2.0;   // weight of each overlapped edge
  problem.name = "quickstart";

  // The squares matrix S encodes which L-edge pairs overlap an edge of A
  // with an edge of B. Build it once per problem.
  const SquaresMatrix S = SquaresMatrix::build(problem);
  std::printf("problem: |V_A|=%d |V_B|=%d |E_L|=%lld squares=%lld\n",
              problem.A.num_vertices(), problem.B.num_vertices(),
              static_cast<long long>(problem.L.num_edges()),
              static_cast<long long>(S.num_squares()));

  // Optional telemetry: --trace-out streams both runs into one JSONL file,
  // --counters collects the shared counter registry.
  std::unique_ptr<obs::TraceWriter> trace;
  if (!obs_flags.trace_out.empty()) {
    trace = std::make_unique<obs::TraceWriter>(obs_flags.trace_out);
  }
  obs::Counters counters;
  obs::Counters* const counters_ptr = obs_flags.counters ? &counters : nullptr;

  // Belief propagation with the parallel approximate rounding (the paper's
  // recommended configuration).
  BeliefPropOptions bp;
  bp.max_iterations = 50;
  bp.matcher = MatcherKind::kLocallyDominant;
  bp.trace = trace.get();
  bp.counters = counters_ptr;
  if (trace) {
    trace->run_start("belief_prop",
                     {{"problem", "quickstart"}, {"iters", bp.max_iterations}});
  }
  const AlignResult bp_result = belief_prop_align(problem, S, bp);
  if (trace) {
    trace->run_end(bp_result.total_seconds, bp_result.value.objective,
                   bp_result.best_iteration, counters_ptr);
  }

  // Klau's matching relaxation with exact rounding for comparison.
  KlauMrOptions mr;
  mr.max_iterations = 50;
  mr.matcher = MatcherKind::kExact;
  mr.trace = trace.get();
  mr.counters = counters_ptr;
  if (trace) {
    trace->run_start("klau_mr",
                     {{"problem", "quickstart"}, {"iters", mr.max_iterations}});
  }
  const AlignResult mr_result = klau_mr_align(problem, S, mr);
  if (trace) {
    trace->run_end(mr_result.total_seconds, mr_result.value.objective,
                   mr_result.best_iteration, counters_ptr);
  }

  auto report = [&](const char* name, const AlignResult& r) {
    std::printf("%s: objective=%.2f (weight=%.2f, overlap=%.0f), found at "
                "iteration %d\n",
                name, r.value.objective, r.value.weight, r.value.overlap,
                r.best_iteration);
    std::printf("  matching:");
    for (vid_t a = 0; a < problem.A.num_vertices(); ++a) {
      if (r.matching.mate_a[a] != kInvalidVid) {
        std::printf(" %d->%d", a, r.matching.mate_a[a]);
      }
    }
    std::printf("\n");
  };
  report("BP (approx rounding)", bp_result);
  report("MR (exact rounding) ", mr_result);
  if (obs_flags.counters) {
    std::printf("counters:\n");
    for (const auto& name : counters.names()) {
      std::printf("  %-24s %lld\n", name.c_str(),
                  static_cast<long long>(counters.total(name)));
    }
  }

  // With beta = 2 the three overlapped edges are worth more than the two
  // heavy decoy pairs, so both methods should return the diagonal.
  const bool diagonal =
      bp_result.matching.mate_a[0] == 0 && bp_result.matching.mate_a[1] == 1 &&
      bp_result.matching.mate_a[2] == 2 && bp_result.matching.mate_a[3] == 3;
  std::printf("BP recovered the planted alignment: %s\n",
              diagonal ? "yes" : "no");
  return diagonal ? 0 : 1;
}
