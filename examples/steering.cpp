// Computational steering (paper Section IX).
//
// The paper argues the ~36-second runtime makes alignment fast enough for
// a human-in-the-loop workflow: "given the result of a network alignment
// problem, users may want to fix certain problematic alignments by
// removing potential matches from L and recompute". This example plays
// one round of that loop automatically:
//
//  1. align with BP and report the solution;
//  2. flag "problematic" matched pairs -- matched edges that contribute
//     no overlap and carry low similarity (the ones a human would veto);
//  3. remove them from L and re-align;
//  4. report how the solution changed.
//
//   ./steering [--scale 0.3] [--iters 50] [--veto-weight 0.65]
#include <cstdio>
#include <exception>
#include <vector>

#include "netalign/belief_prop.hpp"
#include "netalign/synthetic.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

using namespace netalign;

namespace {

AlignResult align(const NetAlignProblem& p, const SquaresMatrix& S,
                  int iters) {
  BeliefPropOptions opt;
  opt.max_iterations = iters;
  opt.matcher = MatcherKind::kLocallyDominant;
  return belief_prop_align(p, S, opt);
}

/// Matched edges with zero overlap contribution: no square partner of the
/// edge is also matched.
std::vector<eid_t> zero_overlap_matches(const NetAlignProblem& p,
                                        const SquaresMatrix& S,
                                        const AlignResult& r) {
  const auto x = r.matching.indicator(p.L);
  std::vector<eid_t> flagged;
  for (const eid_t e : r.matching.matched_edges(p.L)) {
    bool any_overlap = false;
    for (eid_t k = S.row_begin(static_cast<vid_t>(e));
         k < S.row_end(static_cast<vid_t>(e)); ++k) {
      if (x[S.col(k)]) {
        any_overlap = true;
        break;
      }
    }
    if (!any_overlap) flagged.push_back(e);
  }
  return flagged;
}

}  // namespace

int main(int argc, char** argv) try {
  CliParser cli("Human-in-the-loop alignment steering demo.");
  auto& scale = cli.add_double("scale", 0.3, "dmela-scere stand-in scale");
  auto& iters = cli.add_int("iters", 50, "BP iterations per round");
  auto& veto_weight = cli.add_double(
      "veto-weight", 0.65, "veto matched pairs with weight below this and "
                          "no overlap");
  auto& seed = cli.add_int("seed", 33, "generator seed");
  if (!cli.parse(argc, argv)) return 0;

  StandInSpec spec;
  for (const auto& s : paper_table2_specs()) {
    if (s.name == "dmela-scere") spec = s;
  }
  spec.seed = static_cast<std::uint64_t>(seed);
  NetAlignProblem problem = make_standin_problem(spec, scale);
  SquaresMatrix S = SquaresMatrix::build(problem);

  std::printf("round 1: aligning %s (|E_L|=%lld)\n", problem.name.c_str(),
              static_cast<long long>(problem.L.num_edges()));
  const AlignResult first = align(problem, S, static_cast<int>(iters));

  // A human reviewer would veto low-confidence pairs; we flag matched
  // pairs with no structural support and weak similarity.
  const auto flagged = zero_overlap_matches(problem, S, first);
  std::vector<eid_t> vetoed;
  for (const eid_t e : flagged) {
    if (problem.L.edge_weight(e) < veto_weight) vetoed.push_back(e);
  }
  std::printf("flagged %zu zero-overlap matches, vetoing the %zu with "
              "weight < %.2f\n",
              flagged.size(), vetoed.size(), static_cast<double>(veto_weight));

  // Rebuild L without the vetoed candidate pairs and re-align.
  std::vector<std::uint8_t> drop(static_cast<std::size_t>(
                                     problem.L.num_edges()),
                                 0);
  for (const eid_t e : vetoed) drop[e] = 1;
  std::vector<LEdge> kept;
  kept.reserve(static_cast<std::size_t>(problem.L.num_edges()));
  for (eid_t e = 0; e < problem.L.num_edges(); ++e) {
    if (!drop[e]) {
      kept.push_back(LEdge{problem.L.edge_a(e), problem.L.edge_b(e),
                           problem.L.edge_weight(e)});
    }
  }
  problem.L =
      BipartiteGraph::from_edges(problem.L.num_a(), problem.L.num_b(), kept);
  S = SquaresMatrix::build(problem);

  std::printf("round 2: re-aligning with %lld candidates\n",
              static_cast<long long>(problem.L.num_edges()));
  const AlignResult second = align(problem, S, static_cast<int>(iters));

  TextTable table({"round", "objective", "weight", "overlap", "matches",
                   "seconds"});
  auto add = [&](const char* name, const AlignResult& r) {
    table.add_row({name, TextTable::fixed(r.value.objective, 1),
                   TextTable::fixed(r.value.weight, 1),
                   TextTable::fixed(r.value.overlap, 0),
                   TextTable::num(r.matching.cardinality),
                   TextTable::fixed(r.total_seconds, 2)});
  };
  add("1 (initial)", first);
  add("2 (after veto)", second);
  table.print();
  std::printf("\nThe vetoed pairs were pure-similarity matches; the round-2\n"
              "solution redirects those vertices (or leaves them unmatched)\n"
              "without giving up the overlapped core.\n");
  return 0;
} catch (const std::exception& e) {
  std::fprintf(stderr, "error: %s\n", e.what());
  return 1;
}
