// Distributed-memory alignment walkthrough (paper Section IX, simulated).
//
// Runs the distributed BP and distributed MR implementations side by side
// with their shared-memory counterparts on the same instance, confirming
// the results agree, and reports the communication profile a real MPI
// deployment would pay at each rank count.
//
//   ./dist_alignment [--n 300] [--dbar 6] [--iters 30]
#include <cstdio>
#include <exception>

#include "dist/dist_bp.hpp"
#include "dist/dist_mr.hpp"
#include "netalign/belief_prop.hpp"
#include "netalign/klau_mr.hpp"
#include "netalign/synthetic.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

using namespace netalign;

int main(int argc, char** argv) try {
  CliParser cli("Distributed alignment demo (simulated BSP ranks).");
  auto& n = cli.add_int("n", 300, "instance size");
  auto& dbar = cli.add_double("dbar", 6.0, "expected random L-degree");
  auto& iters = cli.add_int("iters", 30, "iterations");
  auto& seed = cli.add_int("seed", 77, "generator seed");
  if (!cli.parse(argc, argv)) return 0;

  PowerLawInstanceOptions opt;
  opt.n = static_cast<vid_t>(n);
  opt.expected_degree = dbar;
  opt.seed = static_cast<std::uint64_t>(seed);
  const auto inst = make_power_law_instance(opt);
  const auto S = SquaresMatrix::build(inst.problem);
  std::printf("instance: |V|=%lld per side, |E_L|=%lld, nnz(S)=%lld\n",
              static_cast<long long>(n),
              static_cast<long long>(inst.problem.L.num_edges()),
              static_cast<long long>(S.num_nonzeros()));

  // Shared-memory references.
  BeliefPropOptions bp;
  bp.max_iterations = static_cast<int>(iters);
  const auto ref_bp = belief_prop_align(inst.problem, S, bp);
  KlauMrOptions mr;
  mr.max_iterations = static_cast<int>(iters);
  mr.matcher = MatcherKind::kLocallyDominant;
  const auto ref_mr = klau_mr_align(inst.problem, S, mr);

  TextTable table({"method", "ranks", "objective", "matches shared?",
                   "supersteps", "remote msgs", "bytes"});
  for (const int ranks : {1, 4, 16}) {
    {
      dist::DistBpOptions dopt;
      dopt.num_ranks = ranks;
      dopt.max_iterations = static_cast<int>(iters);
      dist::DistBpStats stats;
      const auto r =
          dist::distributed_belief_prop_align(inst.problem, S, dopt, &stats);
      table.add_row(
          {"dist-BP", TextTable::num(ranks),
           TextTable::fixed(r.value.objective, 1),
           std::abs(r.value.objective - ref_bp.value.objective) < 1e-6
               ? "yes"
               : "NO",
           TextTable::num(static_cast<int64_t>(stats.bsp.supersteps)),
           TextTable::num(static_cast<int64_t>(stats.bsp.remote_messages)),
           TextTable::num(static_cast<int64_t>(stats.bsp.bytes))});
    }
    {
      dist::DistMrOptions dopt;
      dopt.num_ranks = ranks;
      dopt.max_iterations = static_cast<int>(iters);
      dist::DistMrStats stats;
      const auto r =
          dist::distributed_klau_mr_align(inst.problem, S, dopt, &stats);
      table.add_row(
          {"dist-MR", TextTable::num(ranks),
           TextTable::fixed(r.value.objective, 1),
           std::abs(r.value.objective - ref_mr.value.objective) < 1e-6
               ? "yes"
               : "NO",
           TextTable::num(static_cast<int64_t>(stats.bsp.supersteps)),
           TextTable::num(static_cast<int64_t>(stats.bsp.remote_messages)),
           TextTable::num(static_cast<int64_t>(stats.bsp.bytes))});
    }
  }
  table.print();
  std::printf("\nshared-memory references: BP objective %.1f, MR objective "
              "%.1f\n",
              ref_bp.value.objective, ref_mr.value.objective);
  return 0;
} catch (const std::exception& e) {
  std::fprintf(stderr, "error: %s\n", e.what());
  return 1;
}
