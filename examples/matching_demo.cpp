// Approximate max-weight bipartite matching, standalone.
//
// The matching library is useful on its own: this example compares the
// exact solver against the three 1/2-approximations on a random weighted
// bipartite graph, and prints the queue-size decay of the locally-dominant
// algorithm (paper Section V observes the queue roughly halves each round,
// giving the O(log |V|) parallel depth).
//
//   ./matching_demo [--na 20000] [--nb 20000] [--edges 200000] [--seed 5]
#include <cstdio>
#include <exception>
#include <vector>

#include "matching/auction.hpp"
#include "matching/exact_mwm.hpp"
#include "matching/greedy.hpp"
#include "matching/locally_dominant.hpp"
#include "matching/path_growing.hpp"
#include "matching/suitor.hpp"
#include "matching/verify.hpp"
#include "util/cli.hpp"
#include "util/prng.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

using namespace netalign;

int main(int argc, char** argv) try {
  CliParser cli("Compare exact and 1/2-approximate bipartite matching.");
  auto& na = cli.add_int("na", 20000, "A-side vertices");
  auto& nb = cli.add_int("nb", 20000, "B-side vertices");
  auto& num_edges = cli.add_int("edges", 200000, "edges to sample");
  auto& seed = cli.add_int("seed", 5, "random seed");
  if (!cli.parse(argc, argv)) return 0;

  Xoshiro256 rng(static_cast<std::uint64_t>(seed));
  std::vector<LEdge> edges;
  edges.reserve(static_cast<std::size_t>(num_edges));
  for (int64_t i = 0; i < num_edges; ++i) {
    edges.push_back(
        LEdge{static_cast<vid_t>(rng.uniform_int(static_cast<std::uint64_t>(na))),
              static_cast<vid_t>(rng.uniform_int(static_cast<std::uint64_t>(nb))),
              rng.uniform(0.01, 1.0)});
  }
  const BipartiteGraph L =
      BipartiteGraph::from_edges(static_cast<vid_t>(na),
                                 static_cast<vid_t>(nb), edges);
  const std::vector<weight_t> w(L.weights().begin(), L.weights().end());
  std::printf("graph: %lld x %lld, %lld edges\n",
              static_cast<long long>(na), static_cast<long long>(nb),
              static_cast<long long>(L.num_edges()));

  TextTable table(
      {"algorithm", "weight", "cardinality", "vs exact", "seconds"});
  weight_t exact_weight = 0.0;

  auto run = [&](const char* name, auto&& solve) {
    WallTimer t;
    const BipartiteMatching m = solve();
    const double secs = t.seconds();
    if (exact_weight == 0.0) exact_weight = m.weight;
    table.add_row({name, TextTable::fixed(m.weight, 1),
                   TextTable::num(m.cardinality),
                   TextTable::pct(m.weight / exact_weight),
                   TextTable::fixed(secs, 3)});
    return m;
  };

  run("exact (Hungarian)", [&] { return max_weight_matching_exact(L, w); });
  LdStats stats;
  run("locally-dominant",
      [&] { return locally_dominant_matching(L, w, {}, &stats); });
  LdOptions one_sided;
  one_sided.init = LdInit::kOneSided;
  run("locally-dominant (1-sided init)",
      [&] { return locally_dominant_matching(L, w, one_sided); });
  run("greedy (sorted)", [&] { return greedy_matching(L, w); });
  run("suitor", [&] { return suitor_matching(L, w); });
  run("path-growing (DP)", [&] { return path_growing_matching(L, w); });
  run("auction (eps=1e-7)", [&] { return auction_matching(L, w); });
  table.print();

  std::printf("\nlocally-dominant phase-2 queue sizes (expect roughly "
              "halving):\n  ");
  for (const eid_t q : stats.queue_sizes) {
    std::printf("%lld ", static_cast<long long>(q));
  }
  std::printf("\n(%d rounds, %lld neighborhood scans)\n", stats.rounds,
              static_cast<long long>(stats.findmate_calls));
  return 0;
} catch (const std::exception& e) {
  std::fprintf(stderr, "error: %s\n", e.what());
  return 1;
}
