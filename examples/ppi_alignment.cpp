// Protein-protein interaction network alignment, at the scale of the
// paper's bioinformatics problems (Table II: dmela-scere and homo-musm).
//
// Without the original PPI data files this example generates a stand-in
// with the same statistics (see DESIGN.md, "Data substitutions"); pass
// --problem <file> to run on your own data in the NETALIGN-PROBLEM format
// (see src/io/problem_io.hpp).
//
//   ./ppi_alignment [--dataset dmela-scere|homo-musm] [--scale 1.0]
//                   [--iters 100] [--matcher approx|exact|greedy|suitor]
//                   [--problem file]
#include <cstdio>
#include <exception>

#include "io/problem_io.hpp"
#include "netalign/belief_prop.hpp"
#include "netalign/klau_mr.hpp"
#include "netalign/synthetic.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

using namespace netalign;

int main(int argc, char** argv) try {
  CliParser cli(
      "PPI alignment example: BP and MR on a bioinformatics-scale problem.");
  auto& dataset = cli.add_string("dataset", "dmela-scere",
                                 "stand-in dataset: dmela-scere | homo-musm");
  auto& scale = cli.add_double("scale", 1.0, "problem size scale (0, 1]");
  auto& iters = cli.add_int("iters", 100, "iterations per method");
  auto& matcher_name =
      cli.add_string("matcher", "approx", "rounding matcher for BP");
  auto& problem_file =
      cli.add_string("problem", "", "optional NETALIGN-PROBLEM file");
  auto& seed = cli.add_int("seed", 7, "generator seed");
  if (!cli.parse(argc, argv)) return 0;

  NetAlignProblem problem;
  if (!problem_file.empty()) {
    problem = read_problem_file(problem_file);
  } else {
    StandInSpec spec;
    bool found = false;
    for (const auto& s : paper_table2_specs()) {
      if (s.name == dataset) {
        spec = s;
        found = true;
        break;
      }
    }
    if (!found) {
      std::fprintf(stderr, "unknown dataset %s\n", dataset.c_str());
      return 1;
    }
    spec.seed = static_cast<std::uint64_t>(seed);
    problem = make_standin_problem(spec, scale);
  }

  std::printf("aligning %s: |V_A|=%d |V_B|=%d |E_L|=%lld\n",
              problem.name.c_str(), problem.A.num_vertices(),
              problem.B.num_vertices(),
              static_cast<long long>(problem.L.num_edges()));
  const SquaresMatrix S = SquaresMatrix::build(problem);
  std::printf("squares matrix: nnz(S)=%lld\n",
              static_cast<long long>(S.num_nonzeros()));

  const MatcherKind matcher = matcher_from_string(matcher_name);

  BeliefPropOptions bp;
  bp.max_iterations = static_cast<int>(iters);
  bp.matcher = matcher;
  const AlignResult r_bp = belief_prop_align(problem, S, bp);

  KlauMrOptions mr;
  mr.max_iterations = static_cast<int>(iters);
  mr.matcher = matcher;
  const AlignResult r_mr = klau_mr_align(problem, S, mr);

  TextTable table({"method", "objective", "weight", "overlap", "best iter",
                   "seconds"});
  auto add = [&](const char* name, const AlignResult& r) {
    table.add_row({name, TextTable::fixed(r.value.objective, 2),
                   TextTable::fixed(r.value.weight, 2),
                   TextTable::fixed(r.value.overlap, 0),
                   TextTable::num(r.best_iteration),
                   TextTable::fixed(r.total_seconds, 2)});
  };
  add("BP", r_bp);
  add("MR", r_mr);
  table.print();
  return 0;
} catch (const std::exception& e) {
  std::fprintf(stderr, "error: %s\n", e.what());
  return 1;
}
