// Ontology alignment at (scaled) lcsh-wiki size, showing the production
// configuration from the paper's scaling study: BP with batched rounding
// and the parallel approximate matcher, plus the per-step time breakdown
// the paper reports in Figure 7.
//
//   ./ontology_alignment [--scale 0.05] [--iters 40] [--batch 10]
//                        [--threads N]
#include <cstdio>
#include <exception>

#include "netalign/belief_prop.hpp"
#include "netalign/prune.hpp"
#include "netalign/synthetic.hpp"
#include "util/cli.hpp"
#include "util/parallel.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

using namespace netalign;

int main(int argc, char** argv) try {
  CliParser cli("Ontology alignment example (lcsh-wiki stand-in).");
  auto& scale = cli.add_double(
      "scale", 0.05, "fraction of the real lcsh-wiki size (0, 1]");
  auto& iters = cli.add_int("iters", 40, "BP iterations");
  auto& batch = cli.add_int("batch", 10, "rounding batch size");
  auto& threads = cli.add_int("threads", 0, "OpenMP threads (0 = default)");
  auto& seed = cli.add_int("seed", 13, "generator seed");
  auto& topk = cli.add_int(
      "topk", 0, "prune L to the top-k candidates per vertex (0 = off)");
  if (!cli.parse(argc, argv)) return 0;
  if (threads > 0) set_threads(static_cast<int>(threads));

  StandInSpec spec = paper_table2_specs()[2];  // lcsh-wiki
  spec.seed = static_cast<std::uint64_t>(seed);

  WallTimer gen_timer;
  NetAlignProblem problem = make_standin_problem(spec, scale);
  std::printf("generated %s in %.1fs: |V_A|=%d |V_B|=%d |E_L|=%lld\n",
              problem.name.c_str(), gen_timer.seconds(),
              problem.A.num_vertices(), problem.B.num_vertices(),
              static_cast<long long>(problem.L.num_edges()));

  if (topk > 0) {
    // Candidate pruning, as ontology pipelines do before solving: keep
    // each vertex's strongest text matches.
    const eid_t before = problem.L.num_edges();
    problem.L = prune_top_k(problem.L, static_cast<vid_t>(topk));
    std::printf("pruned L to top-%lld per vertex: %lld -> %lld edges\n",
                static_cast<long long>(topk), static_cast<long long>(before),
                static_cast<long long>(problem.L.num_edges()));
  }

  WallTimer sq_timer;
  const SquaresMatrix S = SquaresMatrix::build(problem);
  std::printf("built S in %.1fs: nnz(S)=%lld (%lld squares)\n",
              sq_timer.seconds(), static_cast<long long>(S.num_nonzeros()),
              static_cast<long long>(S.num_squares()));

  BeliefPropOptions bp;
  bp.max_iterations = static_cast<int>(iters);
  bp.batch_size = static_cast<int>(batch);
  bp.matcher = MatcherKind::kLocallyDominant;
  const AlignResult r = belief_prop_align(problem, S, bp);

  std::printf(
      "BP(batch=%lld) on %d threads: objective=%.1f (weight=%.1f, "
      "overlap=%.0f) in %.1fs\n",
      static_cast<long long>(batch), max_threads(), r.value.objective,
      r.value.weight, r.value.overlap, r.total_seconds);

  // Per-step breakdown (the paper's Figure 7 reports these fractions).
  TextTable table({"step", "seconds", "fraction"});
  for (const auto& step : r.timers.names()) {
    table.add_row({step, TextTable::fixed(r.timers.total(step), 3),
                   TextTable::pct(r.timers.fraction(step))});
  }
  table.print();
  return 0;
} catch (const std::exception& e) {
  std::fprintf(stderr, "error: %s\n", e.what());
  return 1;
}
