// Shared validation helpers for the text loaders in io/. Two hazards are
// handled centrally so every format gets the same treatment (see
// docs/FORMATS.md "Error taxonomy"):
//
//  - allocation bombs: a corrupt or hostile header can declare a record
//    count far beyond what the stream could possibly hold, turning a
//    `reserve()` into a multi-gigabyte allocation before the first record
//    is even read. check_record_count() bounds the count by the bytes
//    remaining in the stream (skipped for non-seekable sources, where the
//    per-record reads fail fast anyway);
//  - poisoned numerics: NaN/Inf weights pass `operator>>` silently and
//    then wreck every comparison-based matcher downstream.
//    require_finite() rejects them at the boundary.
//
// Errors carry the stream byte offset so a bad record in a large file is
// findable without bisection.
#pragma once

#include <cmath>
#include <cstddef>
#include <istream>
#include <stdexcept>
#include <string>

namespace netalign::io {

/// " (at byte N)" suffix for loader errors, or "" when the stream cannot
/// report a position. Works even after a failed extraction: the fail bit
/// is cleared just long enough to ask, then restored.
inline std::string at_byte(std::istream& in) {
  const auto state = in.rdstate();
  in.clear(state & ~(std::ios::failbit | std::ios::eofbit));
  const auto pos = in.tellg();
  in.clear(state);
  if (pos < 0) return "";
  return " (at byte " + std::to_string(static_cast<long long>(pos)) + ")";
}

/// Throws std::runtime_error with the stream position appended.
[[noreturn]] inline void fail(std::istream& in, const std::string& msg) {
  throw std::runtime_error(msg + at_byte(in));
}

/// Validates a header-declared record count before it reaches `reserve`:
/// rejects negative counts, and counts whose records (at least
/// `min_record_bytes` each, counting separators) could not fit in the
/// bytes remaining in the stream. Non-seekable streams skip the size
/// bound; the count's sign is still checked.
template <typename Count>
void check_record_count(std::istream& in, Count count,
                        std::size_t min_record_bytes,
                        const std::string& what) {
  if (count < 0) {
    fail(in, what + ": negative count " + std::to_string(count));
  }
  if (count == 0) return;
  const auto here = in.tellg();
  if (here < 0) return;
  in.seekg(0, std::ios::end);
  const auto end = in.tellg();
  in.seekg(here);
  if (end < 0 || end < here) return;
  const auto remaining =
      static_cast<unsigned long long>(end) - static_cast<unsigned long long>(here);
  // Division instead of multiplication: count * min_record_bytes could
  // itself overflow for a hostile 64-bit count.
  if (static_cast<unsigned long long>(count) > remaining / min_record_bytes) {
    fail(in, what + ": declared count " + std::to_string(count) +
                 " cannot fit in the " + std::to_string(remaining) +
                 " bytes remaining in the stream");
  }
}

/// Rejects NaN and +/-Inf values read from a stream.
template <typename T>
void require_finite(std::istream& in, T v, const std::string& what) {
  if (!std::isfinite(static_cast<double>(v))) {
    fail(in, what + ": non-finite value");
  }
}

}  // namespace netalign::io
