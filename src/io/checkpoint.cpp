#include "io/checkpoint.hpp"

#include <array>
#include <cstdio>
#include <fstream>

namespace netalign::io {

namespace {

/// 8-byte magic; the trailing newline makes an accidental `cat` of the
/// binary file visibly stop after the tag.
constexpr std::array<std::uint8_t, 8> kMagic = {'N', 'A', 'C', 'K',
                                                'P', 'T', '1', '\n'};

/// Cap on the section count and on any single declared length, against
/// allocation bombs from corrupt headers that happen to pass the magic
/// check (same stance as io/validate.hpp's count rejection).
constexpr std::uint64_t kMaxSections = 1024;
constexpr std::uint64_t kMaxSectionBytes = std::uint64_t{1} << 40;

const std::array<std::uint32_t, 256>& crc_table() {
  static const std::array<std::uint32_t, 256> table = [] {
    std::array<std::uint32_t, 256> t{};
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1u) != 0 ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      }
      t[i] = c;
    }
    return t;
  }();
  return table;
}

[[noreturn]] void fail(const std::string& what) {
  throw std::runtime_error("checkpoint: " + what);
}

}  // namespace

std::uint32_t crc32(const void* data, std::size_t len, std::uint32_t seed) {
  const auto& table = crc_table();
  const auto* p = static_cast<const std::uint8_t*>(data);
  std::uint32_t c = seed ^ 0xFFFFFFFFu;
  for (std::size_t i = 0; i < len; ++i) {
    c = table[(c ^ p[i]) & 0xFFu] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

CheckpointSection& Checkpoint::add(std::string name) {
  sections.push_back(CheckpointSection{std::move(name), {}});
  return sections.back();
}

const CheckpointSection* Checkpoint::find(std::string_view name) const {
  for (const CheckpointSection& s : sections) {
    if (s.name == name) return &s;
  }
  return nullptr;
}

const CheckpointSection& Checkpoint::section(std::string_view name) const {
  const CheckpointSection* s = find(name);
  if (s == nullptr) fail("missing section '" + std::string(name) + "'");
  return *s;
}

std::vector<std::uint8_t> serialize_checkpoint(const Checkpoint& c) {
  ByteWriter header;
  for (const std::uint8_t b : kMagic) header.u8(b);
  header.u32(kCheckpointVersion);
  header.str(c.solver);
  header.u32(static_cast<std::uint32_t>(c.sections.size()));
  std::vector<std::uint8_t> out = header.take();
  {
    // Header CRC covers everything serialized so far.
    const std::uint32_t crc = crc32(out.data(), out.size());
    ByteWriter w;
    w.u32(crc);
    const auto& b = w.bytes();
    out.insert(out.end(), b.begin(), b.end());
  }
  for (const CheckpointSection& s : c.sections) {
    ByteWriter w;
    w.str(s.name);
    w.u64(s.payload.size());
    w.u32(crc32(s.payload.data(), s.payload.size()));
    auto b = w.take();
    out.insert(out.end(), b.begin(), b.end());
    out.insert(out.end(), s.payload.begin(), s.payload.end());
  }
  return out;
}

Checkpoint deserialize_checkpoint(std::span<const std::uint8_t> bytes) {
  ByteReader r(bytes);
  for (const std::uint8_t want : kMagic) {
    if (r.u8() != want) fail("bad magic (not a checkpoint file)");
  }
  const std::uint32_t version = r.u32();
  if (version != kCheckpointVersion) {
    fail("unsupported version " + std::to_string(version) + " (expected " +
         std::to_string(kCheckpointVersion) + ")");
  }
  Checkpoint c;
  c.solver = r.str();
  const std::uint32_t nsect = r.u32();
  if (nsect > kMaxSections) fail("implausible section count");
  {
    // Recompute the header CRC over the exact bytes consumed so far.
    const std::size_t header_len =
        kMagic.size() + sizeof(std::uint32_t)      // version
        + sizeof(std::uint64_t) + c.solver.size()  // solver string
        + sizeof(std::uint32_t);                   // section count
    const std::uint32_t want = r.u32();
    const std::uint32_t got = crc32(bytes.data(), header_len);
    if (got != want) fail("header CRC mismatch (corrupt or torn write)");
  }
  for (std::uint32_t i = 0; i < nsect; ++i) {
    CheckpointSection s;
    s.name = r.str();
    const std::uint64_t len = r.u64();
    if (len > kMaxSectionBytes) {
      fail("implausible section length in '" + s.name + "'");
    }
    const std::uint32_t want = r.u32();
    s.payload = r.raw_bytes(len);
    const std::uint32_t got = crc32(s.payload.data(), s.payload.size());
    if (got != want) {
      fail("section '" + s.name + "' CRC mismatch (corrupt data)");
    }
    c.sections.push_back(std::move(s));
  }
  if (!r.exhausted()) fail("trailing bytes after last section");
  return c;
}

void write_checkpoint_bytes(const std::string& path,
                            std::span<const std::uint8_t> bytes) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) fail("cannot open '" + tmp + "' for writing");
    out.write(reinterpret_cast<const char*>(bytes.data()),
              static_cast<std::streamsize>(bytes.size()));
    out.flush();
    if (!out) fail("short write to '" + tmp + "'");
  }
  // Rotate generations. A crash between the two renames leaves only the
  // .prev generation, which the fallback reader handles.
  if (std::ifstream(path).good()) {
    if (std::rename(path.c_str(), (path + ".prev").c_str()) != 0) {
      fail("cannot rotate '" + path + "' to previous generation");
    }
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    fail("cannot rename '" + tmp + "' into place");
  }
}

Checkpoint read_checkpoint_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) fail("cannot open '" + path + "'");
  std::vector<std::uint8_t> bytes(
      (std::istreambuf_iterator<char>(in)), std::istreambuf_iterator<char>());
  return deserialize_checkpoint(bytes);
}

Checkpoint read_checkpoint_with_fallback(const std::string& path,
                                         bool* used_previous) {
  std::string first_error;
  try {
    Checkpoint c = read_checkpoint_file(path);
    if (used_previous != nullptr) *used_previous = false;
    return c;
  } catch (const std::exception& e) {
    first_error = e.what();
  }
  try {
    Checkpoint c = read_checkpoint_file(path + ".prev");
    if (used_previous != nullptr) *used_previous = true;
    return c;
  } catch (const std::exception& e) {
    fail("both generations unusable: [" + first_error + "] and [" +
         std::string(e.what()) + "]");
  }
}

}  // namespace netalign::io
