#include "io/matching_io.hpp"

#include <algorithm>
#include <fstream>
#include <stdexcept>

#include "io/validate.hpp"

namespace netalign {

void write_matching(std::ostream& out, const BipartiteMatching& m) {
  out << "NETALIGN-MATCHING 1\n";
  out << m.cardinality << '\n';
  for (std::size_t a = 0; a < m.mate_a.size(); ++a) {
    if (m.mate_a[a] != kInvalidVid) {
      out << a << ' ' << m.mate_a[a] << '\n';
    }
  }
}

void write_matching_file(const std::string& path,
                         const BipartiteMatching& m) {
  std::ofstream out(path);
  if (!out) {
    throw std::runtime_error("write_matching_file: cannot open " + path);
  }
  write_matching(out, m);
}

BipartiteMatching read_matching(std::istream& in, const BipartiteGraph& L) {
  std::string magic;
  int version = 0;
  if (!(in >> magic >> version) || magic != "NETALIGN-MATCHING" ||
      version != 1) {
    io::fail(in, "read_matching: bad header");
  }
  eid_t count = 0;
  if (!(in >> count)) {
    io::fail(in, "read_matching: bad count");
  }
  // No valid matching exceeds min(|A|, |B|) pairs; rejecting here also
  // caps the mate-array scans below.
  const auto limit =
      static_cast<eid_t>(std::min(L.num_a(), L.num_b()));
  if (count < 0 || count > limit) {
    io::fail(in, "read_matching: count " + std::to_string(count) +
                     " outside [0, " + std::to_string(limit) +
                     "] for this graph");
  }
  // Minimal pair record "0 0" is 3 bytes.
  io::check_record_count(in, count, 3, "read_matching");
  BipartiteMatching m;
  m.mate_a.assign(static_cast<std::size_t>(L.num_a()), kInvalidVid);
  m.mate_b.assign(static_cast<std::size_t>(L.num_b()), kInvalidVid);
  for (eid_t i = 0; i < count; ++i) {
    vid_t a = 0, b = 0;
    if (!(in >> a >> b)) {
      io::fail(in, "read_matching: truncated pair list at pair " +
                       std::to_string(i));
    }
    if (a < 0 || a >= L.num_a() || b < 0 || b >= L.num_b()) {
      io::fail(in, "read_matching: pair (" + std::to_string(a) + ", " +
                       std::to_string(b) + ") out of range");
    }
    const eid_t e = L.find_edge(a, b);
    if (e == kInvalidEid) {
      io::fail(in, "read_matching: pair (" + std::to_string(a) + ", " +
                       std::to_string(b) + ") is not an edge of L");
    }
    if (m.mate_a[a] != kInvalidVid || m.mate_b[b] != kInvalidVid) {
      io::fail(in, "read_matching: vertex matched twice in pair (" +
                       std::to_string(a) + ", " + std::to_string(b) + ")");
    }
    m.mate_a[a] = b;
    m.mate_b[b] = a;
    m.cardinality += 1;
    m.weight += L.edge_weight(e);
  }
  return m;
}

BipartiteMatching read_matching_file(const std::string& path,
                                     const BipartiteGraph& L) {
  std::ifstream in(path);
  if (!in) {
    throw std::runtime_error("read_matching_file: cannot open " + path);
  }
  return read_matching(in, L);
}

}  // namespace netalign
