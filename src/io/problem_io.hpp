// Whole-problem serialization, so benches can generate a stand-in instance
// once and reload it across sweeps, and so users can feed their own data.
//
// Text format (version 1):
//   NETALIGN-PROBLEM 1
//   name <string without spaces>
//   alpha <a> beta <b>
//   graphA <n> <m>         followed by m "u v" lines
//   graphB <n> <m>         followed by m "u v" lines
//   L <na> <nb> <mL>       followed by mL "a b w" lines
#pragma once

#include <iosfwd>
#include <string>

#include "netalign/problem.hpp"

namespace netalign {

void write_problem(std::ostream& out, const NetAlignProblem& p);
void write_problem_file(const std::string& path, const NetAlignProblem& p);

NetAlignProblem read_problem(std::istream& in);
NetAlignProblem read_problem_file(const std::string& path);

}  // namespace netalign
