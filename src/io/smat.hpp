// SMAT sparse matrix text format (the format used by the netalign codes
// the paper published): a header line "nrows ncols nnz" followed by one
// "row col value" triplet per line, zero-based indices.
#pragma once

#include <iosfwd>
#include <string>

#include "graph/csr.hpp"

namespace netalign {

/// Parse an SMAT stream. Throws std::runtime_error on malformed input.
CsrMatrix read_smat(std::istream& in);
CsrMatrix read_smat_file(const std::string& path);

void write_smat(std::ostream& out, const CsrMatrix& m);
void write_smat_file(const std::string& path, const CsrMatrix& m);

}  // namespace netalign
