// Serialization of alignment results: one "a b" pair per matched edge,
// with a small header. Lets the steering workflow (paper Section IX) hand
// a solution to a human reviewer and reload the approved subset.
#pragma once

#include <iosfwd>
#include <string>

#include "graph/bipartite.hpp"
#include "matching/matching.hpp"

namespace netalign {

void write_matching(std::ostream& out, const BipartiteMatching& m);
void write_matching_file(const std::string& path, const BipartiteMatching& m);

/// Read a matching and validate it against L (pairs must be L-edges and
/// form a matching); weight is recomputed from L. Throws
/// std::runtime_error on malformed input or invalid pairs.
BipartiteMatching read_matching(std::istream& in, const BipartiteGraph& L);
BipartiteMatching read_matching_file(const std::string& path,
                                     const BipartiteGraph& L);

}  // namespace netalign
