// Plain edge-list I/O for graphs: one "u v" pair per line, zero-based,
// '#' comment lines and blank lines skipped -- the format of most public
// network repositories (SNAP et al.).
#pragma once

#include <iosfwd>
#include <string>

#include "graph/graph.hpp"

namespace netalign {

/// Read an undirected edge list. If `num_vertices` < 0 the vertex count is
/// 1 + the largest id seen.
Graph read_edge_list(std::istream& in, vid_t num_vertices = -1);
Graph read_edge_list_file(const std::string& path, vid_t num_vertices = -1);

void write_edge_list(std::ostream& out, const Graph& g);
void write_edge_list_file(const std::string& path, const Graph& g);

}  // namespace netalign
