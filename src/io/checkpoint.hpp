// Versioned binary checkpoint container (docs/FORMATS.md "Checkpoint
// format").
//
// A checkpoint is a small set of named binary sections behind an 8-byte
// magic and a schema version. Every section carries a CRC32 of its
// payload and the header carries a CRC32 of itself, so a torn write, a
// truncated file, or a flipped byte is detected at read time instead of
// resuming a solver from garbage. Files are written via temp-file +
// atomic rename, and the previous generation is kept as `<path>.prev`:
// a reader that finds the newest generation corrupt falls back to the
// previous one (read_checkpoint_with_fallback), so a crash *during*
// checkpointing never loses the run.
//
// The payload encoding is deliberately dumb: native-endian fixed-width
// scalars and length-prefixed arrays through ByteWriter/ByteReader.
// Checkpoints are same-machine restart artifacts (the kill-resume
// harness), not an interchange format; FORMATS.md documents the layout.
#pragma once

#include <cstdint>
#include <cstring>
#include <span>
#include <stdexcept>
#include <string>
#include <string_view>
#include <type_traits>
#include <vector>

namespace netalign::io {

/// CRC-32 (IEEE 802.3, polynomial 0xEDB88320), the same checksum zlib
/// uses. `seed` chains incremental computations.
[[nodiscard]] std::uint32_t crc32(const void* data, std::size_t len,
                                  std::uint32_t seed = 0);

/// Append-only little buffer builder for checkpoint payloads.
class ByteWriter {
 public:
  void u8(std::uint8_t v) { raw(&v, sizeof(v)); }
  void u32(std::uint32_t v) { raw(&v, sizeof(v)); }
  void u64(std::uint64_t v) { raw(&v, sizeof(v)); }
  void i32(std::int32_t v) { raw(&v, sizeof(v)); }
  void i64(std::int64_t v) { raw(&v, sizeof(v)); }
  /// Raw 8-byte doubles: the round-trip is bit-exact, which is what makes
  /// resumed solver runs reproduce the uninterrupted run exactly.
  void f64(double v) { raw(&v, sizeof(v)); }
  void str(std::string_view s) {
    u64(s.size());
    raw(s.data(), s.size());
  }
  /// Element count followed by the raw element bytes.
  template <typename T>
  void pod_vector(const std::vector<T>& v) {
    static_assert(std::is_trivially_copyable_v<T>);
    u64(v.size());
    raw(v.data(), v.size() * sizeof(T));
  }

  [[nodiscard]] const std::vector<std::uint8_t>& bytes() const {
    return buf_;
  }
  [[nodiscard]] std::vector<std::uint8_t> take() { return std::move(buf_); }

 private:
  void raw(const void* p, std::size_t n) {
    if (n == 0) return;  // an empty vector's data() may be null
    const auto* b = static_cast<const std::uint8_t*>(p);
    buf_.insert(buf_.end(), b, b + n);
  }
  std::vector<std::uint8_t> buf_;
};

/// Bounds-checked reader over a checkpoint payload. Any read past the end
/// throws std::runtime_error -- a CRC-valid section can still disagree
/// with what the consumer expects (e.g. a hand-edited file), and the
/// reader must never walk off the buffer.
class ByteReader {
 public:
  explicit ByteReader(std::span<const std::uint8_t> data) : data_(data) {}
  explicit ByteReader(const std::vector<std::uint8_t>& data)
      : data_(data.data(), data.size()) {}

  std::uint8_t u8() { return scalar<std::uint8_t>(); }
  std::uint32_t u32() { return scalar<std::uint32_t>(); }
  std::uint64_t u64() { return scalar<std::uint64_t>(); }
  std::int32_t i32() { return scalar<std::int32_t>(); }
  std::int64_t i64() { return scalar<std::int64_t>(); }
  double f64() { return scalar<double>(); }
  std::string str() {
    const std::uint64_t n = u64();
    need(n);
    std::string s;
    if (n != 0) {
      s.assign(reinterpret_cast<const char*>(data_.data() + pos_),
               static_cast<std::size_t>(n));
    }
    pos_ += static_cast<std::size_t>(n);
    return s;
  }
  /// Exactly `n` raw bytes (for payloads whose length is declared
  /// elsewhere, e.g. the section table).
  std::vector<std::uint8_t> raw_bytes(std::uint64_t n) {
    need(n);
    std::vector<std::uint8_t> v(data_.begin() + static_cast<std::ptrdiff_t>(pos_),
                                data_.begin() + static_cast<std::ptrdiff_t>(
                                                    pos_ + n));
    pos_ += static_cast<std::size_t>(n);
    return v;
  }
  template <typename T>
  std::vector<T> pod_vector() {
    static_assert(std::is_trivially_copyable_v<T>);
    const std::uint64_t n = u64();
    // Divide instead of multiplying so a hostile count cannot overflow.
    if (n > (data_.size() - pos_) / sizeof(T)) {
      throw std::runtime_error("checkpoint: payload truncated");
    }
    std::vector<T> v(static_cast<std::size_t>(n));
    if (n != 0) {  // memcpy is declared nonnull; an empty vector's data()
                   // may be null, which UBSan rejects even for length 0
      std::memcpy(v.data(), data_.data() + pos_,
                  static_cast<std::size_t>(n) * sizeof(T));
    }
    pos_ += static_cast<std::size_t>(n) * sizeof(T);
    return v;
  }

  [[nodiscard]] bool exhausted() const { return pos_ == data_.size(); }

 private:
  template <typename T>
  T scalar() {
    need(sizeof(T));
    T v;
    std::memcpy(&v, data_.data() + pos_, sizeof(T));
    pos_ += sizeof(T);
    return v;
  }
  void need(std::uint64_t n) const {
    if (n > data_.size() - pos_) {
      throw std::runtime_error("checkpoint: payload truncated");
    }
  }
  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
};

struct CheckpointSection {
  std::string name;
  std::vector<std::uint8_t> payload;
};

/// File layout version; bump on any incompatible payload change. Readers
/// reject versions they do not know.
inline constexpr std::uint32_t kCheckpointVersion = 1;

struct Checkpoint {
  std::string solver;  ///< producing solver tag ("bp", "mr", ...)
  std::vector<CheckpointSection> sections;

  CheckpointSection& add(std::string name);
  /// nullptr when absent.
  [[nodiscard]] const CheckpointSection* find(std::string_view name) const;
  /// Throws std::runtime_error naming the missing section.
  [[nodiscard]] const CheckpointSection& section(std::string_view name) const;
};

/// Render the full file image (header + CRC-protected sections).
[[nodiscard]] std::vector<std::uint8_t> serialize_checkpoint(
    const Checkpoint& c);

/// Parse and validate a file image: magic, version, header CRC, section
/// count/length sanity, and every section CRC. Throws std::runtime_error
/// describing the first violation.
[[nodiscard]] Checkpoint deserialize_checkpoint(
    std::span<const std::uint8_t> bytes);

/// Atomically replace `path` with `bytes`: write `<path>.tmp`, flush, then
/// rename any existing `path` to `<path>.prev` and the temp file to
/// `path`. After every successful call the previous generation survives
/// at `<path>.prev`.
void write_checkpoint_bytes(const std::string& path,
                            std::span<const std::uint8_t> bytes);

inline void write_checkpoint_file(const std::string& path,
                                  const Checkpoint& c) {
  const std::vector<std::uint8_t> bytes = serialize_checkpoint(c);
  write_checkpoint_bytes(path, bytes);
}

/// Read + validate one generation. Throws on missing or corrupt files.
[[nodiscard]] Checkpoint read_checkpoint_file(const std::string& path);

/// Read `path`; when it is missing or fails validation, fall back to
/// `<path>.prev`. `used_previous` (optional) reports which generation
/// loaded. Throws only when both generations are unusable, with both
/// failure messages.
[[nodiscard]] Checkpoint read_checkpoint_with_fallback(
    const std::string& path, bool* used_previous = nullptr);

}  // namespace netalign::io
