#include "io/edge_list.hpp"

#include <algorithm>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <vector>

namespace netalign {

namespace {

// Offending line content for parse errors, truncated so a binary blob fed
// to the loader cannot explode the message.
std::string quote_line(const std::string& line) {
  constexpr std::size_t kMax = 80;
  if (line.size() <= kMax) return "'" + line + "'";
  return "'" + line.substr(0, kMax) + "...'";
}

}  // namespace

Graph read_edge_list(std::istream& in, vid_t num_vertices) {
  std::vector<std::pair<vid_t, vid_t>> edges;
  vid_t max_id = -1;
  std::string line;
  std::size_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    const auto first = line.find_first_not_of(" \t\r");
    if (first == std::string::npos || line[first] == '#') continue;
    std::istringstream ls(line);
    vid_t u, v;
    if (!(ls >> u >> v)) {
      throw std::runtime_error("read_edge_list: malformed line " +
                               std::to_string(lineno) + ": " +
                               quote_line(line));
    }
    if (u < 0 || v < 0) {
      throw std::runtime_error("read_edge_list: negative id on line " +
                               std::to_string(lineno) + ": " +
                               quote_line(line));
    }
    edges.emplace_back(u, v);
    max_id = std::max({max_id, u, v});
  }
  const vid_t n = num_vertices >= 0 ? num_vertices : max_id + 1;
  return Graph::from_edges(n, edges);
}

Graph read_edge_list_file(const std::string& path, vid_t num_vertices) {
  std::ifstream in(path);
  if (!in) {
    throw std::runtime_error("read_edge_list_file: cannot open " + path);
  }
  return read_edge_list(in, num_vertices);
}

void write_edge_list(std::ostream& out, const Graph& g) {
  out << "# vertices " << g.num_vertices() << " edges " << g.num_edges()
      << '\n';
  for (const auto& [u, v] : g.edge_list()) {
    out << u << ' ' << v << '\n';
  }
}

void write_edge_list_file(const std::string& path, const Graph& g) {
  std::ofstream out(path);
  if (!out) {
    throw std::runtime_error("write_edge_list_file: cannot open " + path);
  }
  write_edge_list(out, g);
}

}  // namespace netalign
