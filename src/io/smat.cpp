#include "io/smat.hpp"

#include <fstream>
#include <sstream>
#include <stdexcept>
#include <vector>

#include "io/validate.hpp"

namespace netalign {

CsrMatrix read_smat(std::istream& in) {
  vid_t nrows = 0, ncols = 0;
  eid_t nnz = 0;
  if (!(in >> nrows >> ncols >> nnz)) {
    io::fail(in, "read_smat: bad header");
  }
  if (nrows < 0 || ncols < 0) {
    io::fail(in, "read_smat: negative header field");
  }
  // Minimal entry record "0 0 0" is 5 bytes; bounds reserve() against an
  // allocation-bomb header.
  io::check_record_count(in, nnz, 5, "read_smat");
  std::vector<CooEntry> entries;
  entries.reserve(static_cast<std::size_t>(nnz));
  for (eid_t i = 0; i < nnz; ++i) {
    CooEntry e;
    if (!(in >> e.row >> e.col >> e.value)) {
      io::fail(in, "read_smat: truncated entry list at entry " +
                       std::to_string(i));
    }
    io::require_finite(in, e.value,
                       "read_smat: entry " + std::to_string(i) + " value");
    entries.push_back(e);
  }
  return CsrMatrix::from_coo(nrows, ncols, entries, DuplicatePolicy::kError);
}

CsrMatrix read_smat_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("read_smat_file: cannot open " + path);
  return read_smat(in);
}

void write_smat(std::ostream& out, const CsrMatrix& m) {
  out << m.num_rows() << ' ' << m.num_cols() << ' ' << m.num_nonzeros()
      << '\n';
  const auto col = m.col_idx();
  const auto val = m.values();
  for (vid_t r = 0; r < m.num_rows(); ++r) {
    for (eid_t k = m.row_begin(r); k < m.row_end(r); ++k) {
      out << r << ' ' << col[k] << ' ' << val[k] << '\n';
    }
  }
}

void write_smat_file(const std::string& path, const CsrMatrix& m) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("write_smat_file: cannot open " + path);
  write_smat(out, m);
}

}  // namespace netalign
