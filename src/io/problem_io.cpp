#include "io/problem_io.hpp"

#include <fstream>
#include <stdexcept>
#include <vector>

#include "io/validate.hpp"

namespace netalign {

namespace {

void expect_token(std::istream& in, const std::string& expected) {
  std::string tok;
  if (!(in >> tok) || tok != expected) {
    io::fail(in, "read_problem: expected token '" + expected + "', got '" +
                     tok + "'");
  }
}

void write_graph(std::ostream& out, const char* tag, const Graph& g) {
  out << tag << ' ' << g.num_vertices() << ' ' << g.num_edges() << '\n';
  for (const auto& [u, v] : g.edge_list()) out << u << ' ' << v << '\n';
}

Graph read_graph(std::istream& in, const char* tag) {
  expect_token(in, tag);
  vid_t n = 0;
  eid_t m = 0;
  if (!(in >> n >> m)) {
    io::fail(in, std::string("read_problem: bad ") + tag + " header");
  }
  if (n < 0) {
    io::fail(in, std::string("read_problem: negative ") + tag +
                     " vertex count " + std::to_string(n));
  }
  // Minimal edge record "0 0" is 3 bytes; bounds reserve() against a
  // header declaring more edges than the file could hold.
  io::check_record_count(in, m, 3, std::string("read_problem: ") + tag);
  std::vector<std::pair<vid_t, vid_t>> edges;
  edges.reserve(static_cast<std::size_t>(m));
  for (eid_t i = 0; i < m; ++i) {
    vid_t u, v;
    if (!(in >> u >> v)) {
      io::fail(in, std::string("read_problem: truncated ") + tag +
                       " edge list at edge " + std::to_string(i));
    }
    edges.emplace_back(u, v);
  }
  return Graph::from_edges(n, edges);
}

}  // namespace

void write_problem(std::ostream& out, const NetAlignProblem& p) {
  out << "NETALIGN-PROBLEM 1\n";
  out << "name " << (p.name.empty() ? "unnamed" : p.name) << '\n';
  out << "alpha " << p.alpha << " beta " << p.beta << '\n';
  write_graph(out, "graphA", p.A);
  write_graph(out, "graphB", p.B);
  out << "L " << p.L.num_a() << ' ' << p.L.num_b() << ' ' << p.L.num_edges()
      << '\n';
  for (eid_t e = 0; e < p.L.num_edges(); ++e) {
    out << p.L.edge_a(e) << ' ' << p.L.edge_b(e) << ' ' << p.L.edge_weight(e)
        << '\n';
  }
}

void write_problem_file(const std::string& path, const NetAlignProblem& p) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("write_problem_file: cannot open " + path);
  write_problem(out, p);
}

NetAlignProblem read_problem(std::istream& in) {
  expect_token(in, "NETALIGN-PROBLEM");
  int version = 0;
  if (!(in >> version) || version != 1) {
    io::fail(in, "read_problem: unsupported version");
  }
  NetAlignProblem p;
  expect_token(in, "name");
  if (!(in >> p.name)) io::fail(in, "read_problem: bad name");
  expect_token(in, "alpha");
  if (!(in >> p.alpha)) io::fail(in, "read_problem: bad alpha");
  io::require_finite(in, p.alpha, "read_problem: alpha");
  expect_token(in, "beta");
  if (!(in >> p.beta)) io::fail(in, "read_problem: bad beta");
  io::require_finite(in, p.beta, "read_problem: beta");
  p.A = read_graph(in, "graphA");
  p.B = read_graph(in, "graphB");
  expect_token(in, "L");
  vid_t na = 0, nb = 0;
  eid_t ml = 0;
  if (!(in >> na >> nb >> ml)) io::fail(in, "read_problem: bad L header");
  if (na < 0 || nb < 0) {
    io::fail(in, "read_problem: negative L dimension");
  }
  // Minimal L record "0 0 0" is 5 bytes.
  io::check_record_count(in, ml, 5, "read_problem: L");
  std::vector<LEdge> edges;
  edges.reserve(static_cast<std::size_t>(ml));
  for (eid_t i = 0; i < ml; ++i) {
    LEdge e;
    if (!(in >> e.a >> e.b >> e.w)) {
      io::fail(in, "read_problem: truncated L edge list at edge " +
                       std::to_string(i));
    }
    io::require_finite(in, e.w,
                       "read_problem: L edge " + std::to_string(i) + " weight");
    edges.push_back(e);
  }
  p.L = BipartiteGraph::from_edges(na, nb, edges);
  if (!p.is_consistent()) {
    throw std::runtime_error("read_problem: inconsistent dimensions");
  }
  return p;
}

NetAlignProblem read_problem_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("read_problem_file: cannot open " + path);
  return read_problem(in);
}

}  // namespace netalign
