// Reliable-delivery shim over the unreliable BSP substrate.
//
// When a FaultPlan lets the network drop, duplicate, delay, or reorder
// messages, a protocol that needs exactly-once in-order delivery (the
// distributed matcher's proposals and matched notices) layers this channel
// over RankContext, the way MPI layers reliability over a lossy fabric:
//
//  - every payload to a peer carries a per-(sender, receiver) sequence
//    number and a piggybacked cumulative ack ("I have delivered all your
//    seqs below this");
//  - unacked payloads are retransmitted with superstep-exponential backoff
//    (first retry after 2 supersteps -- the minimum ack round trip --
//    doubling to a cap, so a burst of losses does not congest the inbox);
//  - receivers deliver in sequence order exactly once: stale duplicates
//    are suppressed (and re-acked, since their ack may itself have been
//    lost), out-of-order arrivals are buffered until the gap fills;
//  - acks piggyback on data whenever possible; a boundary that received
//    new data but sent none emits one pure-ack message (never acked
//    itself, so ack traffic cannot ping-pong forever).
//
// Under any fault plan with drop_rate < 1 every payload is eventually
// delivered exactly once (each retransmission is an independent Bernoulli
// trial), so a protocol that is correct over a perfect network stays
// correct over this channel -- it just pays more supersteps and messages.
// The channel is idle() when every sent payload has been acked; programs
// vote to halt only then, which makes BSP quiescence imply protocol
// quiescence.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <deque>
#include <map>
#include <type_traits>
#include <vector>

#include "dist/bsp.hpp"
#include "dist/fault.hpp"

namespace netalign::dist {

/// Wire header prepended to every reliable payload.
struct RelHeader {
  static constexpr std::int64_t kAckOnly = -1;
  std::int64_t seq = 0;  ///< 0-based per-(sender, receiver), or kAckOnly
  std::int64_t ack = 0;  ///< cumulative: every seq < ack was delivered
};

class ReliableChannel {
 public:
  /// First retransmission waits kMinBackoff supersteps (the ack round
  /// trip); the wait doubles per retry up to kMaxBackoff.
  static constexpr std::size_t kMinBackoff = 2;
  static constexpr std::size_t kMaxBackoff = 16;

  ReliableChannel(int num_ranks, FaultInjector* injector)
      : injector_(injector),
        peers_(static_cast<std::size_t>(num_ranks)) {}

  /// Sequence, frame, and transmit one record to `to`.
  template <typename T>
  void send(RankContext& ctx, int to, const T& record) {
    static_assert(std::is_trivially_copyable_v<T>);
    Peer& peer = peers_[to];
    RelHeader header{peer.next_seq, peer.deliver_next};
    peer.next_seq += 1;
    std::vector<std::byte> bytes(sizeof(RelHeader) + sizeof(T));
    std::memcpy(bytes.data(), &header, sizeof(RelHeader));
    std::memcpy(bytes.data() + sizeof(RelHeader), &record, sizeof(T));
    peer.pending.push_back(Pending{header.seq, bytes, step_, kMinBackoff});
    peer.data_sent = true;
    ctx.send_bytes(to, std::move(bytes));
  }

  /// Drain the superstep's inbox: apply acks, suppress duplicates, buffer
  /// out-of-order arrivals, and return the payloads that became deliverable,
  /// in per-peer sequence order. Call once per step(), before any send.
  std::vector<Message> receive(RankContext& ctx) {
    step_ += 1;
    for (Peer& peer : peers_) peer.data_sent = false;
    std::vector<Message> out;
    for (const Message& msg : ctx.inbox()) {
      if (msg.payload.size() < sizeof(RelHeader)) {
        throw std::runtime_error("ReliableChannel: runt message");
      }
      RelHeader header;
      std::memcpy(&header, msg.payload.data(), sizeof(RelHeader));
      Peer& peer = peers_[msg.from];
      // Cumulative ack: retire everything below it from the retransmit
      // buffer (pending is kept in ascending seq order).
      if (header.ack > peer.acked) {
        peer.acked = header.ack;
        while (!peer.pending.empty() &&
               peer.pending.front().seq < peer.acked) {
          peer.pending.pop_front();
        }
      }
      if (header.seq == RelHeader::kAckOnly) continue;
      if (header.seq < peer.deliver_next) {
        // Already delivered: our ack was lost or outrun by a duplicate --
        // suppress, but schedule a re-ack so the sender stops retrying.
        if (injector_ != nullptr) injector_->note_duplicate_suppressed();
        peer.ack_due = true;
        continue;
      }
      if (header.seq == peer.deliver_next) {
        out.push_back(strip(msg));
        peer.deliver_next += 1;
        // The gap may have closed over buffered successors.
        auto it = peer.buffered.find(peer.deliver_next);
        while (it != peer.buffered.end()) {
          out.push_back(Message{msg.from, std::move(it->second)});
          peer.buffered.erase(it);
          peer.deliver_next += 1;
          it = peer.buffered.find(peer.deliver_next);
        }
      } else if (peer.buffered.emplace(header.seq, payload_of(msg)).second) {
        if (injector_ != nullptr) injector_->note_out_of_order_buffered();
      } else {
        if (injector_ != nullptr) injector_->note_duplicate_suppressed();
      }
      peer.ack_due = true;
    }
    return out;
  }

  /// Retransmit overdue unacked payloads and emit pure acks where nothing
  /// piggybacked them. Call once per step(), after all sends.
  void flush(RankContext& ctx) {
    for (int to = 0; to < static_cast<int>(peers_.size()); ++to) {
      Peer& peer = peers_[to];
      for (Pending& p : peer.pending) {
        if (step_ < p.last_sent + p.backoff) continue;
        // Refresh the piggybacked ack before re-sending.
        RelHeader header{p.seq, peer.deliver_next};
        std::memcpy(p.bytes.data(), &header, sizeof(RelHeader));
        ctx.send_bytes(to, p.bytes);
        p.last_sent = step_;
        p.backoff = std::min(p.backoff * 2, kMaxBackoff);
        peer.data_sent = true;
        if (injector_ != nullptr) injector_->note_retransmit();
      }
      if (peer.ack_due && !peer.data_sent) {
        RelHeader header{RelHeader::kAckOnly, peer.deliver_next};
        std::vector<std::byte> bytes(sizeof(RelHeader));
        std::memcpy(bytes.data(), &header, sizeof(RelHeader));
        ctx.send_bytes(to, std::move(bytes));
        if (injector_ != nullptr) injector_->note_ack();
      }
      peer.ack_due = false;
    }
  }

  /// True when every payload this rank ever sent has been acked.
  [[nodiscard]] bool idle() const {
    for (const Peer& peer : peers_) {
      if (!peer.pending.empty()) return false;
    }
    return true;
  }

 private:
  struct Pending {
    std::int64_t seq = 0;
    std::vector<std::byte> bytes;  ///< full frame, header included
    std::size_t last_sent = 0;
    std::size_t backoff = kMinBackoff;
  };

  struct Peer {
    std::int64_t next_seq = 0;      ///< next seq for payloads TO this peer
    std::int64_t acked = 0;         ///< peer has delivered our seqs < acked
    std::int64_t deliver_next = 0;  ///< next in-order seq FROM this peer
    bool ack_due = false;
    bool data_sent = false;
    std::deque<Pending> pending;
    std::map<std::int64_t, std::vector<std::byte>> buffered;
  };

  static std::vector<std::byte> payload_of(const Message& msg) {
    return std::vector<std::byte>(msg.payload.begin() + sizeof(RelHeader),
                                  msg.payload.end());
  }
  static Message strip(const Message& msg) {
    return Message{msg.from, payload_of(msg)};
  }

  FaultInjector* injector_;
  std::vector<Peer> peers_;
  std::size_t step_ = 0;  ///< local superstep counter (receive() calls)
};

}  // namespace netalign::dist
