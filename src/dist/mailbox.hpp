// Typed phase-exchange helper for straight-line BSP-style algorithms.
//
// The generic BspRuntime (bsp.hpp) drives RankProgram state machines; for
// algorithms with many heterogeneous phases per iteration (distributed BP
// has four), writing the phases as straight-line code with explicit
// mailboxes is clearer and equally faithful: ranks only read their own
// state plus messages delivered at the previous phase boundary, and the
// same BspStats (supersteps, messages, remote share, bytes, h-relation)
// are accumulated.
#pragma once

#include <algorithm>
#include <vector>

#include "dist/bsp.hpp"

namespace netalign::dist {

template <typename T>
class Mailbox {
 public:
  explicit Mailbox(int num_ranks)
      : num_ranks_(num_ranks),
        inbox_(static_cast<std::size_t>(num_ranks)),
        outbox_(static_cast<std::size_t>(num_ranks)),
        sent_(static_cast<std::size_t>(num_ranks), 0) {}

  void send(int from, int to, const T& msg) {
    outbox_[to].push_back(msg);
    sent_[from] += 1;
    messages_ += 1;
    if (from != to) remote_ += 1;
  }

  /// Phase boundary: everything sent becomes visible, one superstep is
  /// charged to `stats`.
  void deliver(BspStats& stats) {
    stats.supersteps += 1;
    stats.messages += messages_;
    stats.remote_messages += remote_;
    stats.bytes += messages_ * sizeof(T);
    stats.max_h_relation = std::max(
        stats.max_h_relation, *std::max_element(sent_.begin(), sent_.end()));
    for (int r = 0; r < num_ranks_; ++r) {
      inbox_[r] = std::move(outbox_[r]);
      outbox_[r].clear();
    }
    std::fill(sent_.begin(), sent_.end(), std::size_t{0});
    messages_ = 0;
    remote_ = 0;
  }

  [[nodiscard]] const std::vector<T>& inbox(int rank) const {
    return inbox_[rank];
  }

 private:
  int num_ranks_;
  std::vector<std::vector<T>> inbox_;
  std::vector<std::vector<T>> outbox_;
  std::vector<std::size_t> sent_;
  std::size_t messages_ = 0;
  std::size_t remote_ = 0;
};

}  // namespace netalign::dist
