// Typed phase-exchange helper for straight-line BSP-style algorithms.
//
// The generic BspRuntime (bsp.hpp) drives RankProgram state machines; for
// algorithms with many heterogeneous phases per iteration (distributed BP
// has four), writing the phases as straight-line code with explicit
// mailboxes is clearer and equally faithful: ranks only read their own
// state plus messages delivered at the previous phase boundary, and the
// same BspStats (supersteps, messages, remote share, bytes, h-relation)
// are accumulated.
//
// Fault injection (fault.hpp): constructed with a FaultInjector, a mailbox
// can drop or duplicate a send, hold it for k delivery boundaries, or
// shuffle an inbox at a boundary. Dropped messages are still charged to
// the stats (the sender paid for them); injected duplicates are not. Rank
// stalls are not a mailbox concern -- straight-line solvers implement them
// by skipping a rank's sends and reads at the phase boundary (dist_mr.cpp,
// dist_bp.cpp). A null injector is byte-identical to the fault-free
// mailbox.
#pragma once

#include <algorithm>
#include <vector>

#include "dist/bsp.hpp"
#include "dist/fault.hpp"

namespace netalign::dist {

template <typename T>
class Mailbox {
 public:
  explicit Mailbox(int num_ranks, FaultInjector* faults = nullptr)
      : num_ranks_(num_ranks),
        faults_(faults),
        inbox_(static_cast<std::size_t>(num_ranks)),
        outbox_(static_cast<std::size_t>(num_ranks)),
        sent_(static_cast<std::size_t>(num_ranks), 0) {}

  void send(int from, int to, const T& msg) {
    sent_[from] += 1;
    messages_ += 1;
    if (from != to) remote_ += 1;
    if (faults_ != nullptr) {
      if (faults_->roll_drop(from, to)) return;
      if (faults_->roll_duplicate(from, to)) outbox_[to].push_back(msg);
      if (const int k = faults_->roll_delay(from, to); k > 0) {
        delayed_.push_back(
            Delayed{delivers_ + 1 + static_cast<std::size_t>(k), to, msg});
        return;
      }
    }
    outbox_[to].push_back(msg);
  }

  /// Phase boundary: everything sent becomes visible, one superstep is
  /// charged to `stats`.
  void deliver(BspStats& stats) {
    stats.supersteps += 1;
    stats.messages += messages_;
    stats.remote_messages += remote_;
    stats.bytes += messages_ * sizeof(T);
    stats.max_h_relation = std::max(
        stats.max_h_relation, *std::max_element(sent_.begin(), sent_.end()));
    for (int r = 0; r < num_ranks_; ++r) {
      inbox_[r] = std::move(outbox_[r]);
      outbox_[r].clear();
    }
    std::fill(sent_.begin(), sent_.end(), std::size_t{0});
    messages_ = 0;
    remote_ = 0;
    delivers_ += 1;
    if (faults_ != nullptr) {
      std::size_t kept = 0;
      for (std::size_t i = 0; i < delayed_.size(); ++i) {
        Delayed& d = delayed_[i];
        if (d.release_at <= delivers_) {
          inbox_[d.to].push_back(std::move(d.msg));
        } else {
          // Guard the self-move (a moved-onto-itself msg of a non-trivial
          // T would be emptied).
          if (kept != i) delayed_[kept] = std::move(d);
          kept += 1;
        }
      }
      delayed_.resize(kept);
      for (int r = 0; r < num_ranks_; ++r) {
        if (faults_->roll_reorder(r, inbox_[r].size())) {
          faults_->shuffle(inbox_[r]);
        }
      }
    }
  }

  [[nodiscard]] const std::vector<T>& inbox(int rank) const {
    return inbox_[rank];
  }

  /// Messages still held back by delay faults (a solver must keep
  /// iterating -- or accept their loss -- while this is nonzero).
  [[nodiscard]] std::size_t delayed_count() const { return delayed_.size(); }

 private:
  struct Delayed {
    std::size_t release_at = 0;  ///< visible once delivers_ reaches this
    int to = 0;
    T msg;
  };

  int num_ranks_;
  FaultInjector* faults_;
  std::vector<std::vector<T>> inbox_;
  std::vector<std::vector<T>> outbox_;
  std::vector<std::size_t> sent_;
  std::vector<Delayed> delayed_;
  std::size_t messages_ = 0;
  std::size_t remote_ = 0;
  std::size_t delivers_ = 0;
};

}  // namespace netalign::dist
