// Seeded, deterministic fault injection for the simulated BSP substrate.
//
// The BSP simulator (bsp.hpp, mailbox.hpp) assumes a perfect fabric:
// in-order, exactly-once delivery and ranks that never pause. A real
// MPI/RDMA deployment exhibits none of those guarantees under pressure, so
// this layer lets any distributed run face an adversarial-but-reproducible
// network: per-message drop / duplicate / delay probabilities, per-inbox
// reordering at delivery boundaries, and per-rank stalls lasting several
// supersteps.
//
// Determinism: every decision is drawn from one xoshiro256** stream seeded
// from the plan, and the substrate consults the injector in a fixed
// program order (stall rolls per rank at superstep start, message rolls in
// send order, reorder rolls per inbox at delivery). The same (plan,
// program) pair therefore replays bit-identically -- the property
// tools/check_robustness.sh asserts across repeated runs.
//
// Accounting: the substrate charges dropped messages to BspStats exactly
// like delivered ones (the sender paid for them); duplicates injected by
// the "network" are not charged to the sender. Every injected fault is
// tallied in FaultStats, mirrored into an obs::Counters registry under
// `fault.*` / `rel.*`, and emitted as a JSONL `fault` trace event when
// those sinks are attached (docs/OBSERVABILITY.md).
#pragma once

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "util/prng.hpp"

namespace netalign::obs {
class Counters;
class TraceWriter;
}  // namespace netalign::obs

namespace netalign::dist {

/// What the simulated network is allowed to do to a run. All rates are
/// probabilities in [0, 1]; a default-constructed plan is a perfect fabric
/// (`any()` is false) and the substrate skips the injector entirely.
struct FaultPlan {
  std::uint64_t seed = 0;      ///< seeds every fault decision
  double drop_rate = 0.0;      ///< P(message silently lost)
  double duplicate_rate = 0.0; ///< P(message delivered twice)
  double delay_rate = 0.0;     ///< P(message held 1..max_delay boundaries)
  int max_delay = 3;           ///< delays drawn uniformly from [1, max_delay]
  double reorder_rate = 0.0;   ///< P(an inbox is shuffled at delivery)
  double stall_rate = 0.0;     ///< P(a rank stalls at a superstep start)
  int max_stall = 2;           ///< stalls drawn uniformly from [1, max_stall]

  [[nodiscard]] bool any() const {
    return drop_rate > 0.0 || duplicate_rate > 0.0 || delay_rate > 0.0 ||
           reorder_rate > 0.0 || stall_rate > 0.0;
  }
  /// Throws std::invalid_argument on out-of-range rates or bounds.
  void validate() const;
};

/// Tally of injected faults plus the reliable-delivery shim's reactions
/// (reliable.hpp); one registry so a run's whole fault story reads in one
/// place.
struct FaultStats {
  std::size_t dropped = 0;
  std::size_t duplicated = 0;
  std::size_t delayed = 0;
  std::size_t reordered = 0;    ///< inboxes shuffled, not messages
  std::size_t stalls = 0;       ///< stall events
  std::size_t stall_steps = 0;  ///< supersteps lost to stalls
  // ReliableChannel reactions:
  std::size_t retransmits = 0;
  std::size_t duplicates_suppressed = 0;
  std::size_t out_of_order_buffered = 0;
  std::size_t acks = 0;  ///< pure (non-piggybacked) ack messages
};

/// Draws all fault decisions for one run. Not thread-safe (the BSP
/// simulator is sequential); share one injector across nested runs (e.g.
/// dist_mr's per-iteration matching) so the stream never restarts.
class FaultInjector {
 public:
  explicit FaultInjector(const FaultPlan& plan,
                         obs::Counters* counters = nullptr,
                         obs::TraceWriter* trace = nullptr);

  [[nodiscard]] const FaultPlan& plan() const { return plan_; }
  [[nodiscard]] const FaultStats& stats() const { return stats_; }

  /// Message-level rolls, consulted by the substrate in send order.
  bool roll_drop(int from, int to);
  bool roll_duplicate(int from, int to);
  /// 0 = deliver on time, k > 0 = hold for k extra boundaries.
  int roll_delay(int from, int to);
  /// Whether to shuffle `inbox_size` messages arriving at `rank`.
  bool roll_reorder(int rank, std::size_t inbox_size);
  /// 0 = run this superstep, k > 0 = stall for k supersteps.
  int roll_stall(int rank);

  /// Fisher-Yates off the injector's stream (used for reorder faults).
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      using std::swap;
      swap(v[i - 1], v[rng_.uniform_int(i)]);
    }
  }

  /// Reliable-delivery shim accounting (counted, not rolled).
  void note_retransmit();
  void note_duplicate_suppressed();
  void note_out_of_order_buffered();
  void note_ack();

 private:
  void record(const char* kind, int from, int to, std::int64_t amount);

  FaultPlan plan_;
  FaultStats stats_;
  Xoshiro256 rng_;
  obs::Counters* counters_;
  obs::TraceWriter* trace_;
};

}  // namespace netalign::dist
