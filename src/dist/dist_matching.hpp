// Distributed-memory locally-dominant 1/2-approximate matching over the
// simulated BSP substrate (dist/bsp.hpp).
//
// This realizes the paper's Section IX outlook -- "a distributed
// half-approximation matching algorithm [29]" (Catalyurek, Dobrian,
// Gebremedhin, Halappanavar, Pothen) -- in the message-passing style that
// a real MPI deployment would use:
//
//  - vertices (both sides of L, in the same global id space as the
//    shared-memory matcher) are block-partitioned across ranks, each rank
//    owning its vertices' adjacency;
//  - over a perfect network, supersteps alternate between a PROPOSE phase
//    (recompute candidates against the rank's view of who is matched, send
//    a proposal to the owner of the chosen neighbor) and a RESOLVE phase
//    (mutual proposals = a locally dominant edge: match it and notify the
//    owners of all neighbors so their views update);
//  - a rank votes to halt when none of its unmatched vertices has an
//    eligible neighbor; the run ends at global quiescence.
//
// Under an active FaultPlan (fault.hpp) the synchronous protocol is wrong
// -- a dropped notice livelocks it, a delayed proposal desynchronizes the
// two phase-locked owners -- so the run switches to the asynchronous
// event-driven variant of the same algorithm (Hoepman / Manne-Bisseling
// style) over the reliable-delivery channel (reliable.hpp): proposals are
// sent once per candidate change, received proposals are remembered per
// owned vertex, and an edge is matched exactly when each endpoint's
// candidate is the other AND the crossing proposal has arrived. Exactly-
// once in-order delivery restores the invariants the synchronous proof
// needs, so the matching at quiescence is the same locally-dominant
// matching -- valid, maximal, and >= 1/2 of the optimal weight -- which
// the driver re-verifies via matching/verify on every faulted run.
//
// Determinism: the BSP simulator executes ranks sequentially and all fault
// decisions come from the plan's seeded stream, so any (plan, input) pair
// replays bit-identically. Over a perfect network the result is also
// independent of the rank count -- a property the tests check, along with
// maximality and the 1/2 weight bound. The BSP statistics (supersteps,
// message and byte volumes, max h-relation) are the machine-independent
// communication costs a real cluster run would pay.
#pragma once

#include <cstddef>
#include <span>

#include "dist/bsp.hpp"
#include "dist/fault.hpp"
#include "matching/matching.hpp"

namespace netalign::dist {

struct DistMatchOptions {
  int num_ranks = 4;
  /// Simulated network faults. A plan with any() true routes the run
  /// through the reliable asynchronous protocol; the default (perfect
  /// fabric) keeps the synchronous propose/resolve path byte-identical to
  /// the fault-free substrate.
  FaultPlan faults;
  /// Share a caller-owned injector (its PRNG stream and tallies continue
  /// across nested runs, as in dist_mr's per-iteration matchings). Null =
  /// construct one from `faults` when faults.any(). A non-null injector
  /// implies the faulted protocol regardless of `faults`.
  FaultInjector* injector = nullptr;
  /// Deadlock guard forwarded to BspRuntime::run.
  std::size_t max_supersteps = 1000000;
  /// Telemetry sinks for a locally constructed injector (`fault.*` /
  /// `rel.*` counters, `fault` trace events). Ignored when `injector` is
  /// supplied -- the owner already wired its sinks. Null = disabled.
  obs::Counters* counters = nullptr;
  obs::TraceWriter* trace = nullptr;
};

struct DistMatchStats {
  BspStats bsp;
  eid_t proposals = 0;  ///< proposal messages sent (first transmissions)
  eid_t notices = 0;    ///< matched-notification messages sent (ditto)
  /// Snapshot of the injector's tallies after the run. For a shared
  /// injector this accumulates over everything the owner ran through it.
  FaultStats faults;
};

/// Distributed locally-dominant matching on L under external weights
/// (w <= 0 edges ignored), simulated with `num_ranks` ranks.
BipartiteMatching distributed_locally_dominant_matching(
    const BipartiteGraph& L, std::span<const weight_t> w,
    const DistMatchOptions& options = {}, DistMatchStats* stats = nullptr);

}  // namespace netalign::dist
