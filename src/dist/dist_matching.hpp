// Distributed-memory locally-dominant 1/2-approximate matching over the
// simulated BSP substrate (dist/bsp.hpp).
//
// This realizes the paper's Section IX outlook -- "a distributed
// half-approximation matching algorithm [29]" (Catalyurek, Dobrian,
// Gebremedhin, Halappanavar, Pothen) -- in the message-passing style that
// a real MPI deployment would use:
//
//  - vertices (both sides of L, in the same global id space as the
//    shared-memory matcher) are block-partitioned across ranks, each rank
//    owning its vertices' adjacency;
//  - supersteps alternate between a PROPOSE phase (recompute candidates
//    against the rank's view of who is matched, send a proposal to the
//    owner of the chosen neighbor) and a RESOLVE phase (mutual proposals
//    = a locally dominant edge: match it and notify the owners of all
//    neighbors so their views update);
//  - a rank votes to halt when none of its unmatched vertices has an
//    eligible neighbor; the run ends at global quiescence.
//
// Determinism: the BSP simulator executes ranks sequentially, and all
// decisions depend only on (weights, ids, phase), so the result is
// independent of the rank count -- a property the tests check, along with
// maximality and the 1/2 weight bound. The BSP statistics (supersteps,
// message and byte volumes, max h-relation) are the machine-independent
// communication costs a real cluster run would pay.
#pragma once

#include <span>

#include "dist/bsp.hpp"
#include "matching/matching.hpp"

namespace netalign::dist {

struct DistMatchOptions {
  int num_ranks = 4;
};

struct DistMatchStats {
  BspStats bsp;
  eid_t proposals = 0;  ///< proposal messages sent
  eid_t notices = 0;    ///< matched-notification messages sent
};

/// Distributed locally-dominant matching on L under external weights
/// (w <= 0 edges ignored), simulated with `num_ranks` ranks.
BipartiteMatching distributed_locally_dominant_matching(
    const BipartiteGraph& L, std::span<const weight_t> w,
    const DistMatchOptions& options = {}, DistMatchStats* stats = nullptr);

}  // namespace netalign::dist
