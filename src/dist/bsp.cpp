#include "dist/bsp.hpp"

#include <algorithm>
#include <string>

#include "dist/fault.hpp"

namespace netalign::dist {

int RankContext::num_ranks() const noexcept { return runtime_.num_ranks_; }

const std::vector<Message>& RankContext::inbox() const {
  return runtime_.current_inbox_[rank_];
}

void RankContext::vote_halt() { runtime_.halted_[rank_] = 1; }

void RankContext::send_bytes(int to, std::vector<std::byte> bytes) {
  if (to < 0 || to >= runtime_.num_ranks_) {
    throw std::out_of_range("RankContext::send: bad destination rank");
  }
  // The sender pays for the message whether or not the network loses it.
  runtime_.stats_.messages += 1;
  if (to != rank_) runtime_.stats_.remote_messages += 1;
  runtime_.stats_.bytes += bytes.size();
  runtime_.sent_this_step_[rank_] += 1;
  // A rank that communicates implicitly revokes its halt vote.
  runtime_.halted_[rank_] = 0;

  if (runtime_.faults_ != nullptr) {
    FaultInjector& faults = *runtime_.faults_;
    if (faults.roll_drop(rank_, to)) return;
    if (faults.roll_duplicate(rank_, to)) {
      runtime_.inflight_ += 1;
      runtime_.next_inbox_[to].push_back(Message{rank_, bytes});
    }
    if (const int k = faults.roll_delay(rank_, to); k > 0) {
      // Normal delivery at boundary S makes the message visible in
      // superstep S+1; a delay of k postpones release to boundary S+k.
      runtime_.delayed_.push_back(BspRuntime::DelayedMessage{
          runtime_.stats_.supersteps + static_cast<std::size_t>(k), to,
          Message{rank_, std::move(bytes)}});
      return;
    }
  }
  runtime_.inflight_ += 1;
  runtime_.next_inbox_[to].push_back(Message{rank_, std::move(bytes)});
}

void BspRuntime::throw_deadlock(std::size_t max_supersteps) const {
  std::string msg = "BspRuntime: superstep limit exceeded (" +
                    std::to_string(max_supersteps) + " supersteps, " +
                    std::to_string(num_ranks_) + " ranks). ";
  std::size_t halted = 0;
  std::string voters;
  for (int r = 0; r < num_ranks_; ++r) {
    if (halted_[r] == 0) continue;
    halted += 1;
    if (halted <= 8) {
      if (!voters.empty()) voters += ",";
      voters += std::to_string(r);
    }
  }
  msg += std::to_string(halted) + "/" + std::to_string(num_ranks_) +
         " ranks voted halt";
  if (halted > 0) {
    msg += " (ranks " + voters + (halted > 8 ? ",..." : "") + ")";
  }
  msg += "; in-flight messages: " + std::to_string(inflight_) +
         "; delayed messages: " + std::to_string(delayed_.size()) +
         "; per-rank inbox sizes:";
  for (int r = 0; r < num_ranks_ && r < 8; ++r) {
    msg += " r" + std::to_string(r) + "=" +
           std::to_string(current_inbox_[r].size());
  }
  if (num_ranks_ > 8) msg += " ...";
  throw std::runtime_error(msg);
}

BspStats BspRuntime::run(std::vector<std::unique_ptr<RankProgram>>& programs,
                         std::size_t max_supersteps) {
  num_ranks_ = static_cast<int>(programs.size());
  if (num_ranks_ == 0) return {};
  current_inbox_.assign(num_ranks_, {});
  next_inbox_.assign(num_ranks_, {});
  sent_this_step_.assign(num_ranks_, 0);
  halted_.assign(num_ranks_, 0);
  inflight_ = 0;
  stats_ = {};
  delayed_.clear();
  stall_remaining_.assign(num_ranks_, 0);

  while (true) {
    if (stats_.supersteps >= max_supersteps) {
      throw_deadlock(max_supersteps);
    }
    stats_.supersteps += 1;
    std::fill(sent_this_step_.begin(), sent_this_step_.end(), 0);
    inflight_ = 0;
    for (int r = 0; r < num_ranks_; ++r) {
      // Default: a rank that neither sends nor explicitly revokes stays
      // halted only if it votes again; require an explicit vote each step.
      halted_[r] = 0;
      if (faults_ != nullptr) {
        // A stalled rank skips step() entirely: its inbox stays queued for
        // the superstep in which it resumes, and its missing halt vote
        // keeps the run alive.
        if (stall_remaining_[r] > 0) {
          stall_remaining_[r] -= 1;
          continue;
        }
        if (const int k = faults_->roll_stall(r); k > 0) {
          stall_remaining_[r] = k - 1;
          continue;
        }
      }
      RankContext ctx(*this, r);
      programs[r]->step(ctx);
    }
    stats_.max_h_relation = std::max(
        stats_.max_h_relation,
        *std::max_element(sent_this_step_.begin(), sent_this_step_.end()));
    // Deliver. Stalled ranks keep their current inbox: they have not
    // observed it yet, so new arrivals are appended behind it. (Sends were
    // already counted into inflight_, and a stalled rank's missing halt
    // vote keeps the run alive until it drains the backlog.)
    for (int r = 0; r < num_ranks_; ++r) {
      if (faults_ != nullptr && stall_remaining_[r] > 0) {
        std::move(next_inbox_[r].begin(), next_inbox_[r].end(),
                  std::back_inserter(current_inbox_[r]));
      } else {
        current_inbox_[r] = std::move(next_inbox_[r]);
      }
      next_inbox_[r].clear();
    }
    if (faults_ != nullptr) {
      // Release delayed messages whose boundary has arrived. A released
      // message is as unobserved as a fresh send, so it re-enters the
      // in-flight count to keep quiescence honest.
      std::size_t kept = 0;
      for (std::size_t i = 0; i < delayed_.size(); ++i) {
        DelayedMessage& dm = delayed_[i];
        if (dm.release_at <= stats_.supersteps) {
          current_inbox_[dm.to].push_back(std::move(dm.msg));
          inflight_ += 1;
        } else {
          // Guard the self-move: moving delayed_[i] onto itself would
          // empty the payload.
          if (kept != i) delayed_[kept] = std::move(dm);
          kept += 1;
        }
      }
      delayed_.resize(kept);
      for (int r = 0; r < num_ranks_; ++r) {
        if (faults_->roll_reorder(r, current_inbox_[r].size())) {
          faults_->shuffle(current_inbox_[r]);
        }
      }
    }
    const bool all_halted =
        std::all_of(halted_.begin(), halted_.end(),
                    [](std::uint8_t h) { return h != 0; });
    if (all_halted && inflight_ == 0 && delayed_.empty()) break;
  }
  return stats_;
}

}  // namespace netalign::dist
