#include "dist/bsp.hpp"

#include <algorithm>

namespace netalign::dist {

int RankContext::num_ranks() const noexcept { return runtime_.num_ranks_; }

const std::vector<Message>& RankContext::inbox() const {
  return runtime_.current_inbox_[rank_];
}

void RankContext::vote_halt() { runtime_.halted_[rank_] = 1; }

void RankContext::send_bytes(int to, std::vector<std::byte> bytes) {
  if (to < 0 || to >= runtime_.num_ranks_) {
    throw std::out_of_range("RankContext::send: bad destination rank");
  }
  runtime_.stats_.messages += 1;
  if (to != rank_) runtime_.stats_.remote_messages += 1;
  runtime_.stats_.bytes += bytes.size();
  runtime_.sent_this_step_[rank_] += 1;
  runtime_.inflight_ += 1;
  runtime_.next_inbox_[to].push_back(Message{rank_, std::move(bytes)});
  // A rank that communicates implicitly revokes its halt vote.
  runtime_.halted_[rank_] = 0;
}

BspStats BspRuntime::run(std::vector<std::unique_ptr<RankProgram>>& programs,
                         std::size_t max_supersteps) {
  num_ranks_ = static_cast<int>(programs.size());
  if (num_ranks_ == 0) return {};
  current_inbox_.assign(num_ranks_, {});
  next_inbox_.assign(num_ranks_, {});
  sent_this_step_.assign(num_ranks_, 0);
  halted_.assign(num_ranks_, 0);
  inflight_ = 0;
  stats_ = {};

  while (true) {
    if (stats_.supersteps >= max_supersteps) {
      throw std::runtime_error("BspRuntime: superstep limit exceeded");
    }
    stats_.supersteps += 1;
    std::fill(sent_this_step_.begin(), sent_this_step_.end(), 0);
    inflight_ = 0;
    for (int r = 0; r < num_ranks_; ++r) {
      // Default: a rank that neither sends nor explicitly revokes stays
      // halted only if it votes again; require an explicit vote each step.
      halted_[r] = 0;
      RankContext ctx(*this, r);
      programs[r]->step(ctx);
    }
    stats_.max_h_relation = std::max(
        stats_.max_h_relation,
        *std::max_element(sent_this_step_.begin(), sent_this_step_.end()));
    // Deliver.
    for (int r = 0; r < num_ranks_; ++r) {
      current_inbox_[r] = std::move(next_inbox_[r]);
      next_inbox_[r].clear();
    }
    const bool all_halted =
        std::all_of(halted_.begin(), halted_.end(),
                    [](std::uint8_t h) { return h != 0; });
    if (all_halted && inflight_ == 0) break;
  }
  return stats_;
}

}  // namespace netalign::dist
