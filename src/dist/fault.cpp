#include "dist/fault.hpp"

#include <stdexcept>
#include <string>

#include "obs/counters.hpp"
#include "obs/trace.hpp"

namespace netalign::dist {

namespace {

void check_rate(double rate, const char* name) {
  if (!(rate >= 0.0 && rate <= 1.0)) {
    throw std::invalid_argument(std::string("FaultPlan: ") + name +
                                " must be in [0, 1]");
  }
}

}  // namespace

void FaultPlan::validate() const {
  check_rate(drop_rate, "drop_rate");
  check_rate(duplicate_rate, "duplicate_rate");
  check_rate(delay_rate, "delay_rate");
  check_rate(reorder_rate, "reorder_rate");
  check_rate(stall_rate, "stall_rate");
  if (delay_rate > 0.0 && max_delay < 1) {
    throw std::invalid_argument("FaultPlan: max_delay must be >= 1");
  }
  if (stall_rate > 0.0 && max_stall < 1) {
    throw std::invalid_argument("FaultPlan: max_stall must be >= 1");
  }
}

FaultInjector::FaultInjector(const FaultPlan& plan, obs::Counters* counters,
                             obs::TraceWriter* trace)
    : plan_(plan), rng_(plan.seed), counters_(counters), trace_(trace) {
  plan_.validate();
}

void FaultInjector::record(const char* kind, int from, int to,
                           std::int64_t amount) {
  if (counters_ != nullptr) {
    counters_->add(std::string("fault.") + kind, 1);
  }
  if (trace_ != nullptr && trace_->enabled()) {
    trace_->event("fault", {{"kind", kind},
                            {"from", from},
                            {"to", to},
                            {"amount", amount}});
  }
}

bool FaultInjector::roll_drop(int from, int to) {
  if (plan_.drop_rate <= 0.0) return false;
  if (!rng_.bernoulli(plan_.drop_rate)) return false;
  stats_.dropped += 1;
  record("drop", from, to, 1);
  return true;
}

bool FaultInjector::roll_duplicate(int from, int to) {
  if (plan_.duplicate_rate <= 0.0) return false;
  if (!rng_.bernoulli(plan_.duplicate_rate)) return false;
  stats_.duplicated += 1;
  record("duplicate", from, to, 1);
  return true;
}

int FaultInjector::roll_delay(int from, int to) {
  if (plan_.delay_rate <= 0.0) return 0;
  if (!rng_.bernoulli(plan_.delay_rate)) return 0;
  const int k = 1 + static_cast<int>(rng_.uniform_int(
                        static_cast<std::uint64_t>(plan_.max_delay)));
  stats_.delayed += 1;
  record("delay", from, to, k);
  return k;
}

bool FaultInjector::roll_reorder(int rank, std::size_t inbox_size) {
  if (plan_.reorder_rate <= 0.0 || inbox_size < 2) return false;
  if (!rng_.bernoulli(plan_.reorder_rate)) return false;
  stats_.reordered += 1;
  record("reorder", rank, rank, static_cast<std::int64_t>(inbox_size));
  return true;
}

int FaultInjector::roll_stall(int rank) {
  if (plan_.stall_rate <= 0.0) return 0;
  if (!rng_.bernoulli(plan_.stall_rate)) return 0;
  const int k = 1 + static_cast<int>(rng_.uniform_int(
                        static_cast<std::uint64_t>(plan_.max_stall)));
  stats_.stalls += 1;
  stats_.stall_steps += static_cast<std::size_t>(k);
  record("stall", rank, rank, k);
  return k;
}

void FaultInjector::note_retransmit() {
  stats_.retransmits += 1;
  if (counters_ != nullptr) counters_->add("rel.retransmits", 1);
}

void FaultInjector::note_duplicate_suppressed() {
  stats_.duplicates_suppressed += 1;
  if (counters_ != nullptr) counters_->add("rel.duplicates_suppressed", 1);
}

void FaultInjector::note_out_of_order_buffered() {
  stats_.out_of_order_buffered += 1;
  if (counters_ != nullptr) counters_->add("rel.out_of_order_buffered", 1);
}

void FaultInjector::note_ack() {
  stats_.acks += 1;
  if (counters_ != nullptr) counters_->add("rel.acks", 1);
}

}  // namespace netalign::dist
