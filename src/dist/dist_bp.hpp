// Distributed-memory belief propagation for network alignment, over the
// simulated BSP substrate.
//
// The paper's Section IX sketches this: "the algorithms could also be
// implemented in a distributed setting using primitives from the
// Combinatorial BLAS library for the matrix computations and a
// distributed half-approximation matching algorithm". This module is that
// sketch made concrete, with the data distribution a 1-D Combinatorial-
// BLAS-style implementation would use:
//
//  - A vertices are block-partitioned; a rank owns all L-edges of its A
//    rows (edge ids are row-major, so each rank's edges are contiguous)
//    and all squares-matrix rows/nonzeros of those edges;
//  - B vertices are independently block-partitioned for column ownership.
//
// Per iteration the communication is exactly the nonlocal structure of
// Listing 2:
//  1. the transpose gather for F = bound[beta S + S^(k)T]: the owner of
//     nonzero s ships sk[s] to the owner of perm[s] (a static pattern,
//     precomputed once -- the message-passing version of the paper's
//     transpose-permutation trick);
//  2. othermax over columns: per-column (max, argmax, second-max)
//     partials flow to the column's owner, the combined triple flows back
//     to every contributing rank. Rows need no communication.
//  Steps d, y, z, S^(k), damping are embarrassingly local.
//
// Rounding allgathers the heuristic vector (cost charged to the stats)
// and uses the distributed locally-dominant matcher (or any library
// matcher on the gathered vector for cross-checking against the
// shared-memory BP).
#pragma once

#include "dist/bsp.hpp"
#include "dist/fault.hpp"
#include "netalign/belief_prop.hpp"
#include "netalign/result.hpp"
#include "netalign/squares.hpp"

namespace netalign::dist {

struct DistBpOptions {
  int num_ranks = 4;
  int max_iterations = 100;
  weight_t gamma = 0.99;
  MatcherKind matcher = MatcherKind::kLocallyDominant;
  bool final_exact_round = true;
  bool record_history = true;
  /// Optional telemetry (docs/OBSERVABILITY.md): one `iteration` event per
  /// BP iteration with the per-iteration BSP message/byte deltas as extra
  /// fields, one `round` event per rounding. Null = disabled.
  obs::TraceWriter* trace = nullptr;
  /// Optional counter registry for BSP traffic and matcher-internal
  /// counts. Null = disabled.
  obs::Counters* counters = nullptr;
  /// Simulated network faults (fault.hpp). Message faults act on the
  /// transpose and othermax exchanges and inside the rounding matcher; an
  /// edge whose column got no (or a lost) reply keeps its last-known
  /// othermax value -- BP's damping absorbs the staleness -- and a stalled
  /// rank sits out whole iterations instead of deadlocking a phase
  /// boundary. The default plan is byte-identical to the fault-free
  /// solver.
  FaultPlan faults;
  /// Deadline / checkpoint / resume / stop-latch controls (budget.hpp).
  /// The checkpoint stores the concatenation of every rank's damped
  /// iterates (the partitions are contiguous) plus the cumulative BSP
  /// traffic, so resumed traffic counters continue rather than restart.
  /// Refused (std::invalid_argument) when combined with fault injection:
  /// a degraded fabric replays from one RNG stream, which a mid-run
  /// restart cannot reproduce.
  SolveBudget budget;
};

struct DistBpStats {
  BspStats bsp;              ///< iteration communication
  std::size_t gather_bytes = 0;  ///< allgather volume for rounding
  /// Degradation accounting (all zero on a perfect fabric).
  FaultStats fault_stats;
  std::size_t stalled_iterations = 0;  ///< sum over ranks of iterations sat out
  std::size_t max_staleness = 0;  ///< longest consecutive stall streak (iters)
  std::size_t stale_columns = 0;  ///< othermax-col updates skipped (no reply)
};

AlignResult distributed_belief_prop_align(const NetAlignProblem& p,
                                          const SquaresMatrix& S,
                                          const DistBpOptions& options = {},
                                          DistBpStats* stats = nullptr);

}  // namespace netalign::dist
