#include "dist/dist_bp.hpp"

#include <algorithm>
#include <cmath>
#include <memory>
#include <stdexcept>
#include <unordered_map>

#include "dist/dist_matching.hpp"
#include "dist/mailbox.hpp"
#include "matching/verify.hpp"
#include "netalign/rounding.hpp"
#include "netalign/solver_ckpt.hpp"
#include "obs/counters.hpp"
#include "obs/trace.hpp"

namespace netalign::dist {

namespace {

/// Transpose-gather message: the value of one squares-matrix nonzero,
/// addressed to the (global) slot that reads it through the permutation.
struct TransMsg {
  eid_t dest_slot;
  weight_t value;
};

/// Per-column (max, argmax, second-max) partial / combined triple.
struct ColTriple {
  vid_t b;
  weight_t m1;
  eid_t a1;
  weight_t m2;
  std::int32_t from_rank;  ///< partials: contributor; results: unused
};

/// Merge a partial into an accumulator, preserving the global CSC scan
/// semantics (strict improvement keeps the earliest argmax; an equal
/// maximum becomes the second maximum).
void merge_triple(weight_t m1, eid_t a1, weight_t m2, weight_t& acc_m1,
                  eid_t& acc_a1, weight_t& acc_m2) {
  if (m1 > acc_m1) {
    acc_m2 = std::max(acc_m1, m2);
    acc_m1 = m1;
    acc_a1 = a1;
  } else {
    acc_m2 = std::max(acc_m2, m1);
  }
}

struct RankState {
  vid_t alo = 0, ahi = 0;   // owned A vertices
  eid_t elo = 0, ehi = 0;   // owned L edges (contiguous, row-major)
  eid_t slo = 0, shi = 0;   // owned squares-matrix nonzeros

  // Edge-indexed state (local offset elo).
  std::vector<weight_t> y, z, y_prev, z_prev, d, om_row, om_col;
  // Nonzero-indexed state (local offset slo).
  std::vector<weight_t> sk, sk_prev, F, trans_vals;

  // othermax-col scratch: per-B-vertex accumulators plus touched lists.
  std::vector<weight_t> col_m1, col_m2;
  std::vector<eid_t> col_a1;
  std::vector<vid_t> touched;
  // Degraded fabric only: which columns got a reply this iteration. An
  // edge whose column is not fresh keeps its last-known om_col.
  std::vector<std::uint8_t> col_fresh;
};

}  // namespace

AlignResult distributed_belief_prop_align(const NetAlignProblem& p,
                                          const SquaresMatrix& S,
                                          const DistBpOptions& options,
                                          DistBpStats* stats) {
  if (!p.is_consistent()) {
    throw std::invalid_argument("distributed_belief_prop_align: problem");
  }
  if (options.num_ranks < 1 || options.max_iterations < 1 ||
      options.gamma <= 0.0 || options.gamma > 1.0) {
    throw std::invalid_argument("distributed_belief_prop_align: options");
  }
  options.faults.validate();
  options.budget.validate("distributed_belief_prop_align");
  if (options.faults.any() && (!options.budget.checkpoint_path.empty() ||
                               !options.budget.resume_path.empty())) {
    // A degraded fabric replays from one RNG stream; a mid-run restart
    // cannot reproduce that stream, so the combination is refused rather
    // than silently nondeterministic.
    throw std::invalid_argument(
        "distributed_belief_prop_align: checkpoint/resume requires a "
        "fault-free fabric");
  }
  if (stats) *stats = DistBpStats{};

  const BipartiteGraph& L = p.L;
  const eid_t m = L.num_edges();
  const eid_t nnz = S.num_nonzeros();
  const vid_t na = L.num_a();
  const vid_t nb = L.num_b();
  const int P = options.num_ranks;
  const auto sptr = S.pattern().row_ptr();
  const auto scol = S.pattern().col_idx();
  const auto perm = S.trans_perm();
  const auto w = L.weights();

  // 1-D partitions.
  const vid_t ablock = std::max<vid_t>(1, (na + P - 1) / P);
  const vid_t bblock = std::max<vid_t>(1, (nb + P - 1) / P);
  auto owner_a = [&](vid_t a) { return static_cast<int>(a / ablock); };
  auto owner_b = [&](vid_t b) { return static_cast<int>(b / bblock); };
  auto owner_edge = [&](eid_t e) { return owner_a(L.edge_a(e)); };

  std::vector<RankState> ranks(static_cast<std::size_t>(P));
  for (int r = 0; r < P; ++r) {
    RankState& st = ranks[r];
    st.alo = std::min<vid_t>(na, static_cast<vid_t>(r) * ablock);
    st.ahi = std::min<vid_t>(na, static_cast<vid_t>(r + 1) * ablock);
    st.elo = st.alo < na ? L.row_begin(st.alo) : m;
    st.ehi = st.ahi < na ? L.row_begin(st.ahi) : m;
    st.slo = sptr[st.elo];
    st.shi = sptr[st.ehi];
    const auto ne = static_cast<std::size_t>(st.ehi - st.elo);
    const auto ns = static_cast<std::size_t>(st.shi - st.slo);
    st.y.assign(ne, 0.0);
    st.z.assign(ne, 0.0);
    st.y_prev.assign(ne, 0.0);
    st.z_prev.assign(ne, 0.0);
    st.d.assign(ne, 0.0);
    st.om_row.assign(ne, 0.0);
    st.om_col.assign(ne, 0.0);
    st.sk.assign(ns, 0.0);
    st.sk_prev.assign(ns, 0.0);
    st.F.assign(ns, 0.0);
    st.trans_vals.assign(ns, 0.0);
    st.col_m1.assign(static_cast<std::size_t>(nb), kNegInf);
    st.col_m2.assign(static_cast<std::size_t>(nb), kNegInf);
    st.col_a1.assign(static_cast<std::size_t>(nb), kInvalidEid);
  }

  // Degraded-fabric state. A stalled rank sits out whole iterations; its
  // messages, y/z/sk and om values stay as the last completed iteration
  // left them (BP's damping absorbs the staleness).
  std::unique_ptr<FaultInjector> injector;
  if (options.faults.any()) {
    injector = std::make_unique<FaultInjector>(
        options.faults, options.counters, options.trace);
    for (RankState& st : ranks) {
      st.col_fresh.assign(static_cast<std::size_t>(nb), 0);
    }
  }
  std::vector<std::uint8_t> stalled(static_cast<std::size_t>(P), 0);
  std::vector<int> stall_left(static_cast<std::size_t>(P), 0);
  std::vector<std::size_t> stale_streak(static_cast<std::size_t>(P), 0);
  std::size_t stalled_iterations = 0;
  std::size_t max_staleness = 0;
  std::size_t stale_columns = 0;

  BspStats bsp;
  Mailbox<TransMsg> trans_mail(P, injector.get());
  Mailbox<ColTriple> col_mail(P, injector.get());
  // Column owners remember who contributed to each column this iteration.
  std::vector<std::unordered_map<vid_t, std::vector<std::int32_t>>>
      contributors(static_cast<std::size_t>(P));

  WallTimer total_timer;
  AlignResult result;
  BestSolutionTracker tracker;
  std::vector<weight_t> gathered(static_cast<std::size_t>(m), 0.0);
  obs::TraceWriter* trace = options.trace;
  obs::Counters* counters = options.counters;
  // The simulated substrate has no per-step timers; iteration events carry
  // the BSP traffic deltas as extra fields instead.
  const StepTimers no_steps;

  // Allgather volume for rounding, accounted from the gathers that actually
  // ran (a deadline- or signal-stopped run gathers less than a full one).
  std::size_t gather_bytes = 0;

  // Round a gathered heuristic vector; uses the distributed matcher when
  // the configured matcher is the locally-dominant one.
  auto round_gathered = [&](int iter) {
    gather_bytes += static_cast<std::size_t>(m) * sizeof(weight_t);
    RoundOutcome outcome;
    if (options.matcher == MatcherKind::kLocallyDominant) {
      DistMatchOptions mopt;
      mopt.num_ranks = P;
      // Share this run's injector (and its stream) with the nested
      // matcher so the whole run replays from one seed.
      mopt.injector = injector.get();
      DistMatchStats mstats;
      outcome.matching = distributed_locally_dominant_matching(
          L, gathered, mopt, &mstats);
      bsp.supersteps += mstats.bsp.supersteps;
      bsp.messages += mstats.bsp.messages;
      bsp.remote_messages += mstats.bsp.remote_messages;
      bsp.bytes += mstats.bsp.bytes;
      bsp.max_h_relation =
          std::max(bsp.max_h_relation, mstats.bsp.max_h_relation);
    } else {
      outcome.matching = run_matcher(L, gathered, options.matcher, counters);
    }
    outcome.value = evaluate_objective(p, S, outcome.matching);
    tracker.offer(outcome, gathered, iter);
    if (options.record_history) {
      result.objective_history.push_back(outcome.value.objective);
    }
    if (trace != nullptr) {
      trace->round(iter, to_string(options.matcher),
                   outcome.matching.cardinality, outcome.value.weight,
                   outcome.value.overlap, outcome.value.objective);
    }
  };

  // --- Checkpoint/resume hooks. Rank partitions are contiguous (elo..ehi,
  // slo..shi), so the concatenation of the per-rank damped iterates is the
  // same global array the shared-memory solver would hold; the checkpoint
  // stores that concatenation plus the cumulative BSP traffic.
  const SolveBudget& budget = options.budget;
  int start_iter = 1;
  if (!budget.resume_path.empty()) {
    const ckpt::ResumeState rs = ckpt::load_for_resume(
        budget.resume_path, "dist_bp", m, nnz, P,
        "distributed_belief_prop_align", tracker, result, trace, counters);
    io::ByteReader r(rs.checkpoint.section("dist.bp.state").payload);
    const auto gy = r.pod_vector<weight_t>();
    const auto gz = r.pod_vector<weight_t>();
    const auto gs = r.pod_vector<weight_t>();
    if (gy.size() != static_cast<std::size_t>(m) ||
        gz.size() != static_cast<std::size_t>(m) ||
        gs.size() != static_cast<std::size_t>(nnz)) {
      throw std::runtime_error(
          "distributed_belief_prop_align: dist.bp.state size mismatch");
    }
    for (RankState& st : ranks) {
      std::copy(gy.begin() + st.elo, gy.begin() + st.ehi, st.y_prev.begin());
      std::copy(gz.begin() + st.elo, gz.begin() + st.ehi, st.z_prev.begin());
      std::copy(gs.begin() + st.slo, gs.begin() + st.shi,
                st.sk_prev.begin());
      st.y = st.y_prev;
      st.z = st.z_prev;
      st.sk = st.sk_prev;
    }
    bsp.supersteps = r.u64();
    bsp.messages = r.u64();
    bsp.remote_messages = r.u64();
    bsp.bytes = r.u64();
    bsp.max_h_relation = r.u64();
    gather_bytes = r.u64();
    start_iter = rs.iter + 1;
    result.resumed_from = rs.iter;
    if (!options.record_history) result.objective_history.clear();
  }
  result.iterations_completed = start_iter - 1;

  int last_snapshot_iter = -1;
  auto snapshot = [&](int iter) {
    if (budget.checkpoint_path.empty() || iter == last_snapshot_iter) return;
    io::Checkpoint c;
    c.solver = "dist_bp";
    ckpt::write_meta(c, "dist_bp", m, nnz, P);
    ckpt::write_progress(c, iter, tracker, result);
    std::vector<weight_t> gy(static_cast<std::size_t>(m));
    std::vector<weight_t> gz(static_cast<std::size_t>(m));
    std::vector<weight_t> gs(static_cast<std::size_t>(nnz));
    for (const RankState& st : ranks) {
      std::copy(st.y_prev.begin(), st.y_prev.end(), gy.begin() + st.elo);
      std::copy(st.z_prev.begin(), st.z_prev.end(), gz.begin() + st.elo);
      std::copy(st.sk_prev.begin(), st.sk_prev.end(), gs.begin() + st.slo);
    }
    io::ByteWriter w;
    w.pod_vector(gy);
    w.pod_vector(gz);
    w.pod_vector(gs);
    w.u64(bsp.supersteps);
    w.u64(bsp.messages);
    w.u64(bsp.remote_messages);
    w.u64(bsp.bytes);
    w.u64(bsp.max_h_relation);
    w.u64(gather_bytes);
    c.add("dist.bp.state").payload = w.take();
    ckpt::commit_checkpoint(c, budget.checkpoint_path, iter, trace, counters);
    last_snapshot_iter = iter;
  };

  for (int iter = start_iter; iter <= options.max_iterations; ++iter) {
    if (const StopReason why = budget.interruption(total_timer.seconds());
        why != StopReason::kCompleted) {
      result.stopped_reason = why;
      break;
    }
    const BspStats bsp_before = bsp;
    int stalled_now = 0;
    if (injector) {
      // One stall roll per rank per iteration: a stall of k covers k whole
      // iterations (every phase boundary inside them times out on the
      // rank and proceeds with last-known values).
      for (int r = 0; r < P; ++r) {
        if (stall_left[r] > 0) {
          stall_left[r] -= 1;
          stalled[r] = 1;
        } else if (const int k = injector->roll_stall(r); k > 0) {
          stall_left[r] = k - 1;
          stalled[r] = 1;
        } else {
          stalled[r] = 0;
        }
        if (stalled[r]) {
          stalled_iterations += 1;
          stale_streak[r] += 1;
          max_staleness = std::max(max_staleness, stale_streak[r]);
          stalled_now += 1;
        } else {
          stale_streak[r] = 0;
        }
      }
    }
    // --- Phase 1: transpose gather for F --------------------------------
    // Owner of nonzero s ships sk_prev[s] to the owner of perm[s], which
    // lives in the row of s's column edge.
    for (int r = 0; r < P; ++r) {
      if (stalled[r]) continue;
      RankState& st = ranks[r];
      for (eid_t s = st.slo; s < st.shi; ++s) {
        trans_mail.send(r, owner_edge(scol[s]),
                        TransMsg{perm[s], st.sk_prev[s - st.slo]});
      }
    }
    trans_mail.deliver(bsp);
    for (int r = 0; r < P; ++r) {
      if (stalled[r]) continue;  // F, d, om_row keep last-known values
      RankState& st = ranks[r];
      for (const TransMsg& msg : trans_mail.inbox(r)) {
        st.trans_vals[msg.dest_slot - st.slo] = msg.value;
      }
      // F, d and the row othermax are local to the rank.
      for (eid_t e = st.elo; e < st.ehi; ++e) {
        weight_t sum = 0.0;
        for (eid_t s = sptr[e]; s < sptr[e + 1]; ++s) {
          const weight_t f =
              std::clamp(p.beta + st.trans_vals[s - st.slo], 0.0, p.beta);
          st.F[s - st.slo] = f;
          sum += f;
        }
        st.d[e - st.elo] = p.alpha * w[e] + sum;
      }
      for (vid_t a = st.alo; a < st.ahi; ++a) {
        weight_t max1 = kNegInf, max2 = kNegInf;
        eid_t arg1 = kInvalidEid;
        for (eid_t e = L.row_begin(a); e < L.row_end(a); ++e) {
          const weight_t v = st.y_prev[e - st.elo];
          if (v > max1) {
            max2 = max1;
            max1 = v;
            arg1 = e;
          } else if (v > max2) {
            max2 = v;
          }
        }
        for (eid_t e = L.row_begin(a); e < L.row_end(a); ++e) {
          st.om_row[e - st.elo] = std::max(e == arg1 ? max2 : max1, 0.0);
        }
      }
    }

    // --- Phase 2: column partials to the column owners ------------------
    for (int r = 0; r < P; ++r) {
      if (stalled[r]) continue;
      RankState& st = ranks[r];
      st.touched.clear();
      for (eid_t e = st.elo; e < st.ehi; ++e) {
        const vid_t b = L.edge_b(e);
        const weight_t v = st.z_prev[e - st.elo];
        if (st.col_a1[b] == kInvalidEid && st.col_m1[b] == kNegInf) {
          st.touched.push_back(b);
        }
        if (v > st.col_m1[b]) {
          st.col_m2[b] = st.col_m1[b];
          st.col_m1[b] = v;
          st.col_a1[b] = e;
        } else if (v > st.col_m2[b]) {
          st.col_m2[b] = v;
        }
      }
      for (const vid_t b : st.touched) {
        col_mail.send(r, owner_b(b),
                      ColTriple{b, st.col_m1[b], st.col_a1[b], st.col_m2[b],
                                static_cast<std::int32_t>(r)});
        st.col_m1[b] = kNegInf;
        st.col_m2[b] = kNegInf;
        st.col_a1[b] = kInvalidEid;
      }
    }
    col_mail.deliver(bsp);

    // --- Phase 3: combine per column, reply to contributors -------------
    for (int r = 0; r < P; ++r) {
      // A stalled column owner sends no replies this iteration; its
      // contributors keep their last-known othermax (freshness filter in
      // phase 4). The unread partials are gone at the next boundary.
      if (stalled[r]) continue;
      RankState& st = ranks[r];
      auto& contrib = contributors[r];
      contrib.clear();
      st.touched.clear();
      for (const ColTriple& t : col_mail.inbox(r)) {
        // A delay fault can push a phase-4 reply into this boundary; its
        // from_rank tag (-1) keeps it out of the partial merge.
        if (injector && t.from_rank < 0) continue;
        if (st.col_a1[t.b] == kInvalidEid && st.col_m1[t.b] == kNegInf) {
          st.touched.push_back(t.b);
        }
        merge_triple(t.m1, t.a1, t.m2, st.col_m1[t.b], st.col_a1[t.b],
                     st.col_m2[t.b]);
        contrib[t.b].push_back(t.from_rank);
      }
      for (const vid_t b : st.touched) {
        for (const std::int32_t dest : contrib[b]) {
          col_mail.send(r, dest,
                        ColTriple{b, st.col_m1[b], st.col_a1[b],
                                  st.col_m2[b], -1});
        }
        st.col_m1[b] = kNegInf;
        st.col_m2[b] = kNegInf;
        st.col_a1[b] = kInvalidEid;
      }
    }
    col_mail.deliver(bsp);

    // --- Phase 4: finish othermax-col, update messages, damp ------------
    const weight_t g = std::pow(options.gamma, iter);
    const weight_t omg = 1.0 - g;
    for (int r = 0; r < P; ++r) {
      if (stalled[r]) continue;  // messages stay damped at last values
      RankState& st = ranks[r];
      st.touched.clear();
      for (const ColTriple& t : col_mail.inbox(r)) {
        // A delayed phase-2 partial (from_rank >= 0) is not a reply.
        if (injector && t.from_rank >= 0) continue;
        st.col_m1[t.b] = t.m1;
        st.col_a1[t.b] = t.a1;
        st.col_m2[t.b] = t.m2;
        st.touched.push_back(t.b);
        if (injector) st.col_fresh[t.b] = 1;
      }
      for (eid_t e = st.elo; e < st.ehi; ++e) {
        const vid_t b = L.edge_b(e);
        if (injector && !st.col_fresh[b]) {
          // Reply lost (or its owner stalled): keep last-known om_col.
          stale_columns += 1;
          continue;
        }
        const weight_t other =
            e == st.col_a1[b] ? st.col_m2[b] : st.col_m1[b];
        st.om_col[e - st.elo] = std::max(other, 0.0);
      }
      for (const vid_t b : st.touched) {
        st.col_m1[b] = kNegInf;
        st.col_m2[b] = kNegInf;
        st.col_a1[b] = kInvalidEid;
        if (injector) st.col_fresh[b] = 0;
      }
      for (eid_t e = st.elo; e < st.ehi; ++e) {
        const eid_t i = e - st.elo;
        st.y[i] = st.d[i] - st.om_col[i];
        st.z[i] = st.d[i] - st.om_row[i];
      }
      for (eid_t e = st.elo; e < st.ehi; ++e) {
        const eid_t i = e - st.elo;
        const weight_t scale = st.y[i] + st.z[i] - st.d[i];
        for (eid_t s = sptr[e]; s < sptr[e + 1]; ++s) {
          st.sk[s - st.slo] = scale - st.F[s - st.slo];
        }
      }
      for (eid_t i = 0; i < st.ehi - st.elo; ++i) {
        st.y[i] = g * st.y[i] + omg * st.y_prev[i];
        st.z[i] = g * st.z[i] + omg * st.z_prev[i];
        st.y_prev[i] = st.y[i];
        st.z_prev[i] = st.z[i];
      }
      for (eid_t i = 0; i < st.shi - st.slo; ++i) {
        st.sk[i] = g * st.sk[i] + omg * st.sk_prev[i];
        st.sk_prev[i] = st.sk[i];
      }
    }

    // --- Rounding (allgather + distributed matcher) ----------------------
    // A stalled rank contributes its last-gathered segment (its local
    // y/z are unchanged anyway, so skipping the copy is the same values).
    for (int r = 0; r < P; ++r) {
      if (stalled[r]) continue;
      const RankState& st = ranks[r];
      std::copy(st.y.begin(), st.y.end(), gathered.begin() + st.elo);
    }
    round_gathered(iter);
    for (int r = 0; r < P; ++r) {
      if (stalled[r]) continue;
      const RankState& st = ranks[r];
      std::copy(st.z.begin(), st.z.end(), gathered.begin() + st.elo);
    }
    round_gathered(iter);

    if (trace != nullptr) {
      obs::TraceWriter::Fields fields{
          {"supersteps", static_cast<std::int64_t>(bsp.supersteps -
                                                   bsp_before.supersteps)},
          {"messages",
           static_cast<std::int64_t>(bsp.messages - bsp_before.messages)},
          {"remote_messages",
           static_cast<std::int64_t>(bsp.remote_messages -
                                     bsp_before.remote_messages)},
          {"bytes", static_cast<std::int64_t>(bsp.bytes - bsp_before.bytes)}};
      if (injector) fields.emplace_back("stalled_ranks", stalled_now);
      if (tracker.has_solution()) {
        fields.emplace_back("best_objective", tracker.best().value.objective);
        fields.emplace_back("best_iteration", tracker.best_iteration());
      }
      trace->iteration(iter, g, no_steps, fields);
    }
    result.iterations_completed = iter;
    if (budget.checkpoint_due(iter)) snapshot(iter);
  }
  snapshot(result.iterations_completed);

  if (counters != nullptr) {
    counters->add("dist.supersteps",
                  static_cast<std::int64_t>(bsp.supersteps));
    counters->add("dist.messages", static_cast<std::int64_t>(bsp.messages));
    counters->add("dist.remote_messages",
                  static_cast<std::int64_t>(bsp.remote_messages));
    counters->add("dist.bytes", static_cast<std::int64_t>(bsp.bytes));
    counters->add("dist.gather_bytes",
                  static_cast<std::int64_t>(gather_bytes));
    if (injector) {
      counters->add("dist.stalled_iterations",
                    static_cast<std::int64_t>(stalled_iterations));
      counters->add("dist.max_staleness",
                    static_cast<std::int64_t>(max_staleness));
      counters->add("dist.stale_columns",
                    static_cast<std::int64_t>(stale_columns));
    }
  }

  finalize_best(p, S, tracker, options.matcher, options.final_exact_round,
                counters, result);
  result.total_seconds = total_timer.seconds();
  if (injector) {
    // Degraded substrate => never hand back an unchecked solution.
    if (!is_valid_matching(L, result.matching)) {
      throw std::runtime_error(
          "distributed_belief_prop_align: faulted run produced an invalid "
          "matching");
    }
    if (stats) {
      stats->fault_stats = injector->stats();
      stats->stalled_iterations = stalled_iterations;
      stats->max_staleness = max_staleness;
      stats->stale_columns = stale_columns;
    }
  }
  if (stats) {
    stats->bsp = bsp;
    stats->gather_bytes = gather_bytes;
  }
  return result;
}

}  // namespace netalign::dist
