#include "dist/dist_mr.hpp"

#include <algorithm>
#include <stdexcept>

#include <memory>

#include "dist/dist_matching.hpp"
#include "dist/mailbox.hpp"
#include "matching/small_mwm.hpp"
#include "matching/verify.hpp"
#include "netalign/rounding.hpp"
#include "netalign/solver_ckpt.hpp"
#include "obs/counters.hpp"
#include "obs/trace.hpp"

namespace netalign::dist {

namespace {

/// Transpose exchange payload: a value addressed to a global S slot.
struct SlotMsg {
  eid_t dest_slot;
  weight_t value;
};

struct MrRankState {
  vid_t alo = 0, ahi = 0;
  eid_t elo = 0, ehi = 0;
  eid_t slo = 0, shi = 0;

  std::vector<weight_t> u;          // owned slots (upper triangle nonzero)
  std::vector<weight_t> u_trans;    // gathered U^T values per owned slot
  std::vector<std::uint8_t> sl;     // owned row-matching indicators
  std::vector<weight_t> sl_trans;   // gathered S_L^T flags per owned slot
  std::vector<weight_t> d;          // owned edges
  std::vector<weight_t> wbar;       // owned edges

  SmallMwmSolver solver;
  std::vector<SmallMwmSolver::Edge> row_edges;
  std::vector<std::uint8_t> row_chosen;
};

}  // namespace

AlignResult distributed_klau_mr_align(const NetAlignProblem& p,
                                      const SquaresMatrix& S,
                                      const DistMrOptions& options,
                                      DistMrStats* stats) {
  if (!p.is_consistent()) {
    throw std::invalid_argument("distributed_klau_mr_align: problem");
  }
  if (options.num_ranks < 1 || options.max_iterations < 1 ||
      options.gamma <= 0.0 || options.mstep < 1) {
    throw std::invalid_argument("distributed_klau_mr_align: options");
  }
  options.faults.validate();
  options.budget.validate("distributed_klau_mr_align");
  if (options.faults.any() && (!options.budget.checkpoint_path.empty() ||
                               !options.budget.resume_path.empty())) {
    // Same refusal as distributed BP: the fault stream is not resumable.
    throw std::invalid_argument(
        "distributed_klau_mr_align: checkpoint/resume requires a fault-free "
        "fabric");
  }
  if (stats) *stats = DistMrStats{};

  const BipartiteGraph& L = p.L;
  const eid_t m = L.num_edges();
  const eid_t nnz = S.num_nonzeros();
  const vid_t na = L.num_a();
  const int P = options.num_ranks;
  const auto sptr = S.pattern().row_ptr();
  const auto scol = S.pattern().col_idx();
  const auto perm = S.trans_perm();
  const auto w = L.weights();
  const weight_t half_beta = p.beta / 2.0;
  const weight_t u_bound = options.bound_scale * half_beta;

  const vid_t ablock = std::max<vid_t>(1, (na + P - 1) / P);
  auto owner_a = [&](vid_t a) { return static_cast<int>(a / ablock); };
  auto owner_edge = [&](eid_t e) { return owner_a(L.edge_a(e)); };

  std::vector<MrRankState> ranks(static_cast<std::size_t>(P));
  for (int r = 0; r < P; ++r) {
    MrRankState& st = ranks[r];
    st.alo = std::min<vid_t>(na, static_cast<vid_t>(r) * ablock);
    st.ahi = std::min<vid_t>(na, static_cast<vid_t>(r + 1) * ablock);
    st.elo = st.alo < na ? L.row_begin(st.alo) : m;
    st.ehi = st.ahi < na ? L.row_begin(st.ahi) : m;
    st.slo = sptr[st.elo];
    st.shi = sptr[st.ehi];
    st.u.assign(static_cast<std::size_t>(st.shi - st.slo), 0.0);
    st.u_trans.assign(st.u.size(), 0.0);
    st.sl.assign(st.u.size(), 0);
    st.sl_trans.assign(st.u.size(), 0.0);
    st.d.assign(static_cast<std::size_t>(st.ehi - st.elo), 0.0);
    st.wbar.assign(st.d.size(), 0.0);
    eid_t max_row = 0;
    for (eid_t e = st.elo; e < st.ehi; ++e) {
      max_row = std::max(max_row, sptr[e + 1] - sptr[e]);
    }
    st.row_edges.reserve(static_cast<std::size_t>(max_row));
    st.row_chosen.resize(static_cast<std::size_t>(max_row));
  }

  // Degraded-fabric state. A stalled rank sits out whole iterations: it
  // neither sends, reads, nor updates -- its multipliers, d, and wbar stay
  // exactly as the last completed iteration left them, which is the
  // stale-value semantics the subgradient iteration tolerates.
  std::unique_ptr<FaultInjector> injector;
  if (options.faults.any()) {
    injector = std::make_unique<FaultInjector>(
        options.faults, options.counters, options.trace);
  }
  std::vector<std::uint8_t> stalled(static_cast<std::size_t>(P), 0);
  std::vector<int> stall_left(static_cast<std::size_t>(P), 0);
  std::vector<std::size_t> stale_streak(static_cast<std::size_t>(P), 0);
  std::size_t stalled_iterations = 0;
  std::size_t max_staleness = 0;

  BspStats bsp;
  // One mailbox per exchange: a delay fault may carry a message across
  // phase boundaries, and separate channels keep a late U value from ever
  // being parsed as an S_L flag.
  Mailbox<SlotMsg> u_mail(P, injector.get());
  Mailbox<SlotMsg> sl_mail(P, injector.get());
  auto transpose_exchange = [&](Mailbox<SlotMsg>& mail, auto get_value,
                                auto set_value) {
    for (int r = 0; r < P; ++r) {
      if (stalled[r]) continue;
      MrRankState& st = ranks[r];
      for (eid_t s = st.slo; s < st.shi; ++s) {
        mail.send(r, owner_edge(scol[s]),
                  SlotMsg{perm[s], get_value(st, s - st.slo)});
      }
    }
    mail.deliver(bsp);
    for (int r = 0; r < P; ++r) {
      if (stalled[r]) continue;
      MrRankState& st = ranks[r];
      for (const SlotMsg& msg : mail.inbox(r)) {
        set_value(st, msg.dest_slot - st.slo, msg.value);
      }
    }
  };

  WallTimer total_timer;
  AlignResult result;
  BestSolutionTracker tracker;
  std::vector<weight_t> gathered(static_cast<std::size_t>(m), 0.0);
  std::vector<std::uint8_t> x(static_cast<std::size_t>(m), 0);
  weight_t gamma = options.gamma;
  weight_t best_upper = kPosInf;
  int since_upper_improved = 0;
  obs::TraceWriter* trace = options.trace;
  obs::Counters* counters = options.counters;
  // The simulated substrate has no per-step timers; iteration events carry
  // the BSP traffic deltas as extra fields instead.
  const StepTimers no_steps;
  // Allgather + indicator-broadcast volume, accounted from the exchanges
  // that actually ran.
  std::size_t gather_bytes = 0;

  // --- Checkpoint/resume hooks. Slot partitions are contiguous
  // (slo..shi), so the concatenated per-rank multipliers are the global U
  // the shared-memory solver would hold; everything else in MrRankState is
  // recomputed from U each iteration on a fault-free fabric.
  const SolveBudget& budget = options.budget;
  int start_iter = 1;
  if (!budget.resume_path.empty()) {
    const ckpt::ResumeState rs = ckpt::load_for_resume(
        budget.resume_path, "dist_mr", m, nnz, P,
        "distributed_klau_mr_align", tracker, result, trace, counters);
    io::ByteReader r(rs.checkpoint.section("dist.mr.state").payload);
    const auto gu = r.pod_vector<weight_t>();
    if (gu.size() != static_cast<std::size_t>(nnz)) {
      throw std::runtime_error(
          "distributed_klau_mr_align: dist.mr.state size mismatch");
    }
    for (MrRankState& st : ranks) {
      std::copy(gu.begin() + st.slo, gu.begin() + st.shi, st.u.begin());
    }
    gamma = r.f64();
    best_upper = r.f64();
    since_upper_improved = r.i32();
    bsp.supersteps = r.u64();
    bsp.messages = r.u64();
    bsp.remote_messages = r.u64();
    bsp.bytes = r.u64();
    bsp.max_h_relation = r.u64();
    gather_bytes = r.u64();
    start_iter = rs.iter + 1;
    result.resumed_from = rs.iter;
    if (!options.record_history) {
      result.objective_history.clear();
      result.upper_history.clear();
    }
  }
  result.iterations_completed = start_iter - 1;

  int last_snapshot_iter = -1;
  auto snapshot = [&](int iter) {
    if (budget.checkpoint_path.empty() || iter == last_snapshot_iter) return;
    io::Checkpoint c;
    c.solver = "dist_mr";
    ckpt::write_meta(c, "dist_mr", m, nnz, P);
    ckpt::write_progress(c, iter, tracker, result);
    std::vector<weight_t> gu(static_cast<std::size_t>(nnz));
    for (const MrRankState& st : ranks) {
      std::copy(st.u.begin(), st.u.end(), gu.begin() + st.slo);
    }
    io::ByteWriter w;
    w.pod_vector(gu);
    w.f64(gamma);
    w.f64(best_upper);
    w.i32(since_upper_improved);
    w.u64(bsp.supersteps);
    w.u64(bsp.messages);
    w.u64(bsp.remote_messages);
    w.u64(bsp.bytes);
    w.u64(bsp.max_h_relation);
    w.u64(gather_bytes);
    c.add("dist.mr.state").payload = w.take();
    ckpt::commit_checkpoint(c, budget.checkpoint_path, iter, trace, counters);
    last_snapshot_iter = iter;
  };

  for (int iter = start_iter; iter <= options.max_iterations; ++iter) {
    if (const StopReason why = budget.interruption(total_timer.seconds());
        why != StopReason::kCompleted) {
      result.stopped_reason = why;
      break;
    }
    const BspStats bsp_before = bsp;
    int stalled_now = 0;
    if (injector) {
      // One stall roll per rank per iteration: a stall of k covers k whole
      // iterations (every phase boundary inside them times out on the
      // rank and proceeds with stale values).
      for (int r = 0; r < P; ++r) {
        if (stall_left[r] > 0) {
          stall_left[r] -= 1;
          stalled[r] = 1;
        } else if (const int k = injector->roll_stall(r); k > 0) {
          stall_left[r] = k - 1;
          stalled[r] = 1;
        } else {
          stalled[r] = 0;
        }
        if (stalled[r]) {
          stalled_iterations += 1;
          stale_streak[r] += 1;
          max_staleness = std::max(max_staleness, stale_streak[r]);
          stalled_now += 1;
        } else {
          stale_streak[r] = 0;
        }
      }
    }
    // --- Step 1: transpose-gather U, then local exact row matchings -----
    transpose_exchange(
        u_mail, [](const MrRankState& st, eid_t i) { return st.u[i]; },
        [](MrRankState& st, eid_t i, weight_t v) { st.u_trans[i] = v; });
    for (int r = 0; r < P; ++r) {
      if (stalled[r]) continue;  // d, wbar, gathered keep stale values
      MrRankState& st = ranks[r];
      for (eid_t e = st.elo; e < st.ehi; ++e) {
        const eid_t lo = sptr[e], hi = sptr[e + 1];
        if (lo == hi) {
          st.d[e - st.elo] = 0.0;
          continue;
        }
        st.row_edges.clear();
        for (eid_t s = lo; s < hi; ++s) {
          const eid_t f = scol[s];
          st.row_edges.push_back(SmallMwmSolver::Edge{
              L.edge_a(f), L.edge_b(f),
              half_beta + st.u[s - st.slo] - st.u_trans[s - st.slo]});
        }
        const std::size_t len = st.row_edges.size();
        st.d[e - st.elo] = st.solver.solve(
            st.row_edges, std::span(st.row_chosen.data(), len));
        for (eid_t s = lo; s < hi; ++s) {
          st.sl[s - st.slo] = st.row_chosen[s - lo];
        }
      }
      // --- Step 2: wbar, local ------------------------------------------
      for (eid_t e = st.elo; e < st.ehi; ++e) {
        st.wbar[e - st.elo] = p.alpha * w[e] + st.d[e - st.elo];
      }
      std::copy(st.wbar.begin(), st.wbar.end(), gathered.begin() + st.elo);
    }

    // --- Step 3: global matching on the distributed matcher -------------
    // w-bar allgather plus the indicator broadcast back.
    gather_bytes += static_cast<std::size_t>(m) * (sizeof(weight_t) + 1);
    DistMatchOptions mopt;
    mopt.num_ranks = P;
    // Share the iteration's injector (and its stream) with the nested
    // matcher so the whole run replays from one seed.
    mopt.injector = injector.get();
    DistMatchStats mstats;
    const BipartiteMatching matching =
        distributed_locally_dominant_matching(L, gathered, mopt, &mstats);
    bsp.supersteps += mstats.bsp.supersteps;
    bsp.messages += mstats.bsp.messages;
    bsp.remote_messages += mstats.bsp.remote_messages;
    bsp.bytes += mstats.bsp.bytes;
    bsp.max_h_relation =
        std::max(bsp.max_h_relation, mstats.bsp.max_h_relation);
    std::fill(x.begin(), x.end(), std::uint8_t{0});
    for (vid_t a = 0; a < na; ++a) {
      if (matching.mate_a[a] != kInvalidVid) {
        x[L.find_edge(a, matching.mate_a[a])] = 1;
      }
    }

    // --- Step 4: objective and upper bound (sum reduction) --------------
    RoundOutcome outcome;
    outcome.matching = matching;
    outcome.value = evaluate_objective(p, S, x);
    weight_t upper = 0.0;
    for (int r = 0; r < P; ++r) {
      const MrRankState& st = ranks[r];
      for (eid_t e = st.elo; e < st.ehi; ++e) {
        if (x[e]) upper += st.wbar[e - st.elo];
      }
    }
    tracker.offer(outcome, gathered, iter);
    if (options.record_history) {
      result.objective_history.push_back(outcome.value.objective);
      result.upper_history.push_back(upper);
    }
    if (upper < best_upper - 1e-12) {
      best_upper = upper;
      since_upper_improved = 0;
    } else {
      ++since_upper_improved;
    }

    // --- Step 5: transpose-gather S_L, local multiplier update ----------
    const weight_t step_gamma = gamma;
    transpose_exchange(
        sl_mail,
        [](const MrRankState& st, eid_t i) {
          return static_cast<weight_t>(st.sl[i]);
        },
        [](MrRankState& st, eid_t i, weight_t v) { st.sl_trans[i] = v; });
    for (int r = 0; r < P; ++r) {
      if (stalled[r]) continue;  // multipliers stay stale for the streak
      MrRankState& st = ranks[r];
      for (eid_t e = st.elo; e < st.ehi; ++e) {
        for (eid_t s = sptr[e]; s < sptr[e + 1]; ++s) {
          const vid_t f = scol[s];
          if (static_cast<eid_t>(e) >= static_cast<eid_t>(f)) continue;
          weight_t u = st.u[s - st.slo];
          if (x[e] && st.sl[s - st.slo]) u -= gamma;
          if (x[f] && st.sl_trans[s - st.slo] > 0.5) u += gamma;
          st.u[s - st.slo] = std::clamp(u, -u_bound, u_bound);
        }
      }
    }
    if (since_upper_improved >= options.mstep) {
      gamma /= 2.0;
      since_upper_improved = 0;
    }

    if (trace != nullptr) {
      trace->round(iter, to_string(MatcherKind::kLocallyDominant),
                   outcome.matching.cardinality, outcome.value.weight,
                   outcome.value.overlap, outcome.value.objective);
      obs::TraceWriter::Fields fields{
          {"objective", outcome.value.objective},
          {"upper_bound", upper},
          {"best_upper_bound", best_upper},
          {"supersteps", static_cast<std::int64_t>(bsp.supersteps -
                                                   bsp_before.supersteps)},
          {"messages",
           static_cast<std::int64_t>(bsp.messages - bsp_before.messages)},
          {"bytes", static_cast<std::int64_t>(bsp.bytes - bsp_before.bytes)}};
      if (injector) fields.emplace_back("stalled_ranks", stalled_now);
      if (tracker.has_solution()) {
        fields.emplace_back("best_objective", tracker.best().value.objective);
        fields.emplace_back("best_iteration", tracker.best_iteration());
      }
      trace->iteration(iter, step_gamma, no_steps, fields);
    }
    result.iterations_completed = iter;
    if (budget.checkpoint_due(iter)) snapshot(iter);
  }
  snapshot(result.iterations_completed);

  if (counters != nullptr) {
    counters->add("dist.supersteps",
                  static_cast<std::int64_t>(bsp.supersteps));
    counters->add("dist.messages", static_cast<std::int64_t>(bsp.messages));
    counters->add("dist.remote_messages",
                  static_cast<std::int64_t>(bsp.remote_messages));
    counters->add("dist.bytes", static_cast<std::int64_t>(bsp.bytes));
    counters->add("dist.gather_bytes",
                  static_cast<std::int64_t>(gather_bytes));
    for (const auto& st : ranks) {
      counters->add("mr.small_mwm_calls", st.solver.solve_calls());
      counters->add("mr.small_mwm_edges", st.solver.edges_seen());
    }
    if (injector) {
      counters->add("dist.stalled_iterations",
                    static_cast<std::int64_t>(stalled_iterations));
      counters->add("dist.max_staleness",
                    static_cast<std::int64_t>(max_staleness));
    }
  }

  result.best_upper_bound = best_upper;
  finalize_best(p, S, tracker, MatcherKind::kLocallyDominant,
                options.final_exact_round, counters, result);
  result.total_seconds = total_timer.seconds();
  if (injector) {
    // Degraded substrate => never hand back an unchecked solution.
    if (!is_valid_matching(L, result.matching)) {
      throw std::runtime_error(
          "distributed_klau_mr_align: faulted run produced an invalid "
          "matching");
    }
    if (stats) {
      stats->fault_stats = injector->stats();
      stats->stalled_iterations = stalled_iterations;
      stats->max_staleness = max_staleness;
    }
  }
  if (stats) {
    stats->bsp = bsp;
    stats->gather_bytes = gather_bytes;
  }
  return result;
}

}  // namespace netalign::dist
