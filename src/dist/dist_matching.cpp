#include "dist/dist_matching.hpp"

#include <algorithm>
#include <stdexcept>

#include "dist/reliable.hpp"
#include "matching/verify.hpp"

namespace netalign::dist {

namespace {

/// Wire format: one record type for both message kinds (MPI would use a
/// tag; the BSP simulator just carries the discriminator inline).
struct Wire {
  enum Kind : std::int32_t { kProposal = 0, kMatchedNotice = 1 };
  std::int32_t kind = 0;
  vid_t a = kInvalidVid;  ///< proposal: proposer; notice: matched vertex
  vid_t b = kInvalidVid;  ///< proposal: target; notice: the vertex's mate
};

/// Block partition of [0, n): owner(v) = v / block, block = ceil(n / P).
struct Partition {
  vid_t n = 0;
  vid_t block = 1;
  [[nodiscard]] int owner(vid_t v) const { return static_cast<int>(v / block); }
  [[nodiscard]] vid_t lo(int rank) const {
    return std::min<vid_t>(n, static_cast<vid_t>(rank) * block);
  }
  [[nodiscard]] vid_t hi(int rank) const {
    return std::min<vid_t>(n, static_cast<vid_t>(rank + 1) * block);
  }
};

/// Owned adjacency plus the matched view and mate map -- everything both
/// protocol variants share. A real implementation would hold only ghost
/// flags for remote neighbors; the simulation keeps a full-size matched
/// bitmap per rank for simplicity (it is still updated exclusively by
/// messages).
class MatchRankBase : public RankProgram {
 public:
  MatchRankBase(const BipartiteGraph& L, std::span<const weight_t> w,
                Partition part, int rank, DistMatchStats* stats)
      : part_(part), rank_(rank), stats_(stats) {
    const vid_t na = L.num_a();
    lo_ = part_.lo(rank);
    hi_ = part_.hi(rank);
    adj_ptr_.assign(static_cast<std::size_t>(hi_ - lo_) + 1, 0);
    for (vid_t v = lo_; v < hi_; ++v) {
      adj_ptr_[v - lo_ + 1] =
          adj_ptr_[v - lo_] +
          (v < na ? L.row_end(v) - L.row_begin(v)
                  : L.col_end(v - na) - L.col_begin(v - na));
    }
    adj_nbr_.resize(static_cast<std::size_t>(adj_ptr_.back()));
    adj_w_.resize(static_cast<std::size_t>(adj_ptr_.back()));
    for (vid_t v = lo_; v < hi_; ++v) {
      eid_t pos = adj_ptr_[v - lo_];
      if (v < na) {
        for (eid_t e = L.row_begin(v); e < L.row_end(v); ++e) {
          adj_nbr_[pos] = static_cast<vid_t>(na + L.edge_b(e));
          adj_w_[pos] = w[e];
          ++pos;
        }
      } else {
        for (eid_t k = L.col_begin(v - na); k < L.col_end(v - na); ++k) {
          adj_nbr_[pos] = L.col_a(k);
          adj_w_[pos] = w[L.col_edge(k)];
          ++pos;
        }
      }
    }
    matched_view_.assign(static_cast<std::size_t>(part_.n), 0);
    mate_.assign(static_cast<std::size_t>(hi_ - lo_), kInvalidVid);
    candidate_.assign(static_cast<std::size_t>(hi_ - lo_), kInvalidVid);
  }

  [[nodiscard]] vid_t lo() const { return lo_; }
  [[nodiscard]] vid_t hi() const { return hi_; }
  [[nodiscard]] const std::vector<vid_t>& mates() const { return mate_; }

 protected:
  /// FINDMATE against this rank's view: heaviest neighbor not known to be
  /// matched, ties toward the smaller id (identical to the shared-memory
  /// matcher, so results agree under any partitioning).
  [[nodiscard]] vid_t findmate(vid_t v) const {
    const vid_t i = v - lo_;
    weight_t max_wt = 0.0;
    vid_t max_id = kInvalidVid;
    for (eid_t k = adj_ptr_[i]; k < adj_ptr_[i + 1]; ++k) {
      const weight_t wt = adj_w_[k];
      if (wt <= 0.0) continue;
      const vid_t t = adj_nbr_[k];
      if (matched_view_[t]) continue;
      if (wt > max_wt ||
          (wt == max_wt && (max_id == kInvalidVid || t < max_id))) {
        max_wt = wt;
        max_id = t;
      }
    }
    return max_id;
  }

  Partition part_;
  int rank_;
  DistMatchStats* stats_;
  vid_t lo_ = 0, hi_ = 0;
  std::vector<eid_t> adj_ptr_;
  std::vector<vid_t> adj_nbr_;
  std::vector<weight_t> adj_w_;
  std::vector<std::uint8_t> matched_view_;
  std::vector<vid_t> mate_;       ///< owned vertices only
  std::vector<vid_t> candidate_;  ///< owned vertices only
};

/// One simulated rank of the synchronous (perfect-network) matcher.
class MatchRank : public MatchRankBase {
 public:
  using MatchRankBase::MatchRankBase;

  void step(RankContext& ctx) override {
    if (phase_ == 0) {
      propose(ctx);
    } else {
      resolve(ctx);
    }
    phase_ ^= 1;
  }

 private:
  /// PROPOSE: fold in matched notices, recompute candidates against the
  /// updated view, and propose to each candidate's owner.
  void propose(RankContext& ctx) {
    for (const Message& msg : ctx.inbox()) {
      const Wire wire = RankContext::decode<Wire>(msg);
      if (wire.kind == Wire::kMatchedNotice) {
        matched_view_[wire.a] = 1;
      }
    }
    bool any_candidate = false;
    for (vid_t v = lo_; v < hi_; ++v) {
      const vid_t i = v - lo_;
      if (mate_[i] != kInvalidVid) {
        candidate_[i] = kInvalidVid;
        continue;
      }
      candidate_[i] = findmate(v);
      if (candidate_[i] != kInvalidVid) {
        any_candidate = true;
        ctx.send(part_.owner(candidate_[i]),
                 Wire{Wire::kProposal, v, candidate_[i]});
        if (stats_) stats_->proposals += 1;
      }
    }
    if (!any_candidate) ctx.vote_halt();
  }

  /// RESOLVE: mutual proposals identify locally dominant edges. Both
  /// endpoint owners see the crossing proposal (each endpoint proposed in
  /// the same PROPOSE phase), so they decide consistently without an
  /// extra confirmation round.
  void resolve(RankContext& ctx) {
    for (const Message& msg : ctx.inbox()) {
      const Wire wire = RankContext::decode<Wire>(msg);
      if (wire.kind != Wire::kProposal) continue;
      const vid_t target = wire.b;  // owned by this rank
      const vid_t proposer = wire.a;
      const vid_t i = target - lo_;
      if (mate_[i] != kInvalidVid) continue;
      if (candidate_[i] == proposer) {
        mate_[i] = proposer;
        matched_view_[target] = 1;
        matched_view_[proposer] = 1;
        notify_neighbors(ctx, target);
      }
    }
    // Halting is decided in PROPOSE phases; RESOLVE never votes (a match
    // here generates notices that must be folded in first).
  }

  /// Tell the owner of every neighbor of v that v is now matched, so
  /// their candidate recomputation skips it. One notice per (neighbor
  /// owner, neighbor) pair; duplicates across neighbors on the same rank
  /// are filtered by the receiver's idempotent bitmap update.
  void notify_neighbors(RankContext& ctx, vid_t v) {
    const vid_t i = v - lo_;
    for (eid_t k = adj_ptr_[i]; k < adj_ptr_[i + 1]; ++k) {
      const int dest = part_.owner(adj_nbr_[k]);
      ctx.send(dest, Wire{Wire::kMatchedNotice, v, mate_[i]});
      if (stats_) stats_->notices += 1;
    }
  }

  int phase_ = 0;
};

/// One simulated rank of the asynchronous matcher used under faults,
/// running over the reliable channel. Event-driven (Hoepman-style): a
/// proposal is sent once per candidate change; an owned vertex matches its
/// candidate exactly when the candidate's crossing proposal has arrived;
/// a match broadcasts (vertex, mate) notices so courting vertices either
/// mirror the match (when they are the mate) or move on.
class ReliableMatchRank : public MatchRankBase {
 public:
  ReliableMatchRank(const BipartiteGraph& L, std::span<const weight_t> w,
                    Partition part, int rank, int num_ranks,
                    DistMatchStats* stats, FaultInjector* injector)
      : MatchRankBase(L, w, part, rank, stats),
        chan_(num_ranks, injector),
        pending_(mate_.size()) {}

  void step(RankContext& ctx) override {
    const std::vector<Message> msgs = chan_.receive(ctx);
    if (!started_) {
      started_ = true;
      for (vid_t v = lo_; v < hi_; ++v) {
        candidate_[v - lo_] = findmate(v);
        if (candidate_[v - lo_] != kInvalidVid) propose(ctx, v);
      }
    }
    for (const Message& msg : msgs) {
      const Wire wire = RankContext::decode<Wire>(msg);
      if (wire.kind == Wire::kProposal) {
        on_proposal(ctx, wire.a, wire.b);
      } else {
        on_notice(ctx, wire.a, wire.b);
      }
    }
    chan_.flush(ctx);
    // Protocol quiescence: nothing unacked. New events can only arrive as
    // messages, which revoke the vote through the runtime.
    if (chan_.idle()) ctx.vote_halt();
  }

 private:
  /// Send v's standing proposal; complete the match at once when the
  /// candidate's own proposal already arrived.
  void propose(RankContext& ctx, vid_t v) {
    const vid_t i = v - lo_;
    const vid_t u = candidate_[i];
    chan_.send(ctx, part_.owner(u), Wire{Wire::kProposal, v, u});
    if (stats_) stats_->proposals += 1;
    if (std::find(pending_[i].begin(), pending_[i].end(), u) !=
        pending_[i].end()) {
      match(ctx, v, u);
    }
  }

  void on_proposal(RankContext& ctx, vid_t proposer, vid_t target) {
    const vid_t i = target - lo_;
    // A proposal to an already-matched vertex is stale: the proposer will
    // move on when our (earlier-sent, reliably delivered) notice lands.
    if (mate_[i] != kInvalidVid) return;
    if (candidate_[i] == proposer) {
      match(ctx, target, proposer);
    } else {
      pending_[i].push_back(proposer);
    }
  }

  /// `x` is matched to `mx` somewhere. Courting vertices mirror the match
  /// when they are the mate, otherwise recompute and re-propose.
  void on_notice(RankContext& ctx, vid_t x, vid_t mx) {
    if (matched_view_[x]) return;
    matched_view_[x] = 1;
    for (vid_t v = lo_; v < hi_; ++v) {
      const vid_t i = v - lo_;
      if (mate_[i] != kInvalidVid || candidate_[i] != x) continue;
      if (mx == v) {
        match(ctx, v, x);
      } else {
        candidate_[i] = findmate(v);
        if (candidate_[i] != kInvalidVid) propose(ctx, v);
      }
    }
  }

  void match(RankContext& ctx, vid_t v, vid_t u) {
    const vid_t i = v - lo_;
    mate_[i] = u;
    pending_[i].clear();
    // Notices about v go to every neighbor's owner (our own copy of the
    // fact is applied locally below and the self-notice is idempotent).
    for (eid_t k = adj_ptr_[i]; k < adj_ptr_[i + 1]; ++k) {
      chan_.send(ctx, part_.owner(adj_nbr_[k]),
                 Wire{Wire::kMatchedNotice, v, u});
      if (stats_) stats_->notices += 1;
    }
    on_notice(ctx, v, u);
    // The mate's owner announces u's neighbors itself; locally we only
    // fold the fact in so our candidates stop courting u.
    on_notice(ctx, u, v);
  }

  ReliableChannel chan_;
  std::vector<std::vector<vid_t>> pending_;  ///< received proposers per owned
  bool started_ = false;
};

}  // namespace

BipartiteMatching distributed_locally_dominant_matching(
    const BipartiteGraph& L, std::span<const weight_t> w,
    const DistMatchOptions& options, DistMatchStats* stats) {
  if (static_cast<eid_t>(w.size()) != L.num_edges()) {
    throw std::invalid_argument(
        "distributed_locally_dominant_matching: weight size mismatch");
  }
  if (options.num_ranks < 1) {
    throw std::invalid_argument(
        "distributed_locally_dominant_matching: need >= 1 rank");
  }
  options.faults.validate();
  if (stats) *stats = DistMatchStats{};

  std::unique_ptr<FaultInjector> owned_injector;
  FaultInjector* injector = options.injector;
  if (injector == nullptr && options.faults.any()) {
    owned_injector = std::make_unique<FaultInjector>(
        options.faults, options.counters, options.trace);
    injector = owned_injector.get();
  }

  const vid_t n = L.num_a() + L.num_b();
  Partition part;
  part.n = n;
  part.block = std::max<vid_t>(
      1, (n + options.num_ranks - 1) / options.num_ranks);
  // With block rounding, fewer ranks than requested may own vertices.
  const int ranks = n == 0 ? 1 : part.owner(n - 1) + 1;

  std::vector<std::unique_ptr<RankProgram>> programs;
  std::vector<MatchRankBase*> typed;
  programs.reserve(static_cast<std::size_t>(ranks));
  for (int r = 0; r < ranks; ++r) {
    std::unique_ptr<MatchRankBase> p;
    if (injector != nullptr) {
      p = std::make_unique<ReliableMatchRank>(L, w, part, r, ranks, stats,
                                              injector);
    } else {
      p = std::make_unique<MatchRank>(L, w, part, r, stats);
    }
    typed.push_back(p.get());
    programs.push_back(std::move(p));
  }
  BspRuntime runtime;
  if (injector != nullptr) runtime.set_faults(injector);
  const BspStats bsp = runtime.run(programs, options.max_supersteps);
  if (stats) stats->bsp = bsp;

  // Gather the owned mate maps back into a BipartiteMatching.
  BipartiteMatching m;
  m.mate_a.assign(static_cast<std::size_t>(L.num_a()), kInvalidVid);
  m.mate_b.assign(static_cast<std::size_t>(L.num_b()), kInvalidVid);
  const vid_t na = L.num_a();
  for (const MatchRankBase* rank : typed) {
    for (vid_t v = rank->lo(); v < rank->hi(); ++v) {
      if (v >= na) continue;  // read each pair once, from its A side
      const vid_t g = rank->mates()[v - rank->lo()];
      if (g == kInvalidVid) continue;
      const vid_t b = g - na;
      m.mate_a[v] = b;
      m.mate_b[b] = v;
      m.cardinality += 1;
      m.weight += w[L.find_edge(v, b)];
    }
  }
  if (injector != nullptr) {
    // Degraded substrate => do not trust the protocol: re-verify the
    // locally-dominant guarantees on the gathered result.
    if (!is_valid_matching(L, m) || !is_maximal_matching(L, w, m)) {
      throw std::runtime_error(
          "distributed_locally_dominant_matching: faulted run produced an "
          "invalid or non-maximal matching");
    }
    if (stats) stats->faults = injector->stats();
  }
  return m;
}

}  // namespace netalign::dist
