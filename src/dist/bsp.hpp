// Simulated distributed-memory substrate (BSP model).
//
// The paper's Section IX sketches a distributed implementation: matrix
// primitives a la Combinatorial BLAS plus the distributed-memory
// half-approximate matching of Catalyurek et al. [29], over MPI. This
// container has no MPI, so -- per DESIGN.md's substitution policy -- we
// build the closest synthetic equivalent that exercises the same code
// structure: a bulk-synchronous-parallel simulator where P ranks own
// disjoint state and interact ONLY through messages delivered at
// superstep boundaries.
//
// The simulation executes ranks sequentially inside each superstep, which
// makes every run deterministic and lets the benches report the
// machine-independent costs a real deployment would pay: supersteps
// (latency), messages and bytes (bandwidth), and per-rank imbalance.
//
// Usage: derive from RankProgram, implement step(), send typed messages
// through the context; run_bsp() loops supersteps until every rank votes
// to halt.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <memory>
#include <type_traits>
#include <stdexcept>
#include <vector>

namespace netalign::dist {

/// One untyped message; payload is a plain byte copy of a trivially
/// copyable record (mirroring MPI's typed buffers).
struct Message {
  int from = 0;
  std::vector<std::byte> payload;
};

/// Communication statistics accumulated over a run.
struct BspStats {
  std::size_t supersteps = 0;
  std::size_t messages = 0;        ///< all messages, including rank-local
  std::size_t remote_messages = 0; ///< messages crossing rank boundaries
  std::size_t bytes = 0;
  /// Maximum messages sent by any single rank in any superstep -- the
  /// h-relation that bounds a BSP superstep's communication time.
  std::size_t max_h_relation = 0;
};

class BspRuntime;

/// Per-rank view handed to RankProgram::step.
class RankContext {
 public:
  RankContext(BspRuntime& runtime, int rank) : runtime_(runtime), rank_(rank) {}

  [[nodiscard]] int rank() const noexcept { return rank_; }
  [[nodiscard]] int num_ranks() const noexcept;

  /// Send a trivially copyable record to `to`, delivered next superstep.
  template <typename T>
  void send(int to, const T& record) {
    static_assert(std::is_trivially_copyable_v<T>);
    std::vector<std::byte> bytes(sizeof(T));
    std::memcpy(bytes.data(), &record, sizeof(T));
    send_bytes(to, std::move(bytes));
  }

  /// Messages delivered to this rank for the current superstep.
  [[nodiscard]] const std::vector<Message>& inbox() const;

  /// Decode a message's payload (size-checked).
  template <typename T>
  static T decode(const Message& msg) {
    static_assert(std::is_trivially_copyable_v<T>);
    if (msg.payload.size() != sizeof(T)) {
      throw std::runtime_error("RankContext::decode: size mismatch");
    }
    T out;
    std::memcpy(&out, msg.payload.data(), sizeof(T));
    return out;
  }

  /// Vote to halt; the run ends after a superstep in which every rank
  /// voted to halt and no messages are in flight (or delayed).
  void vote_halt();

  /// Send a raw byte payload (used by protocol layers that frame their
  /// own headers, e.g. the reliable-delivery shim in reliable.hpp).
  void send_bytes(int to, std::vector<std::byte> bytes);

 private:
  BspRuntime& runtime_;
  int rank_;
};

/// A rank's program: step() is called once per superstep.
class RankProgram {
 public:
  virtual ~RankProgram() = default;
  virtual void step(RankContext& ctx) = 0;
};

class FaultInjector;

class BspRuntime {
 public:
  /// Attach a fault injector (not owned; may be null). The injector is
  /// consulted once per send (drop / duplicate / delay), once per rank per
  /// superstep (stall), and once per non-trivial inbox at delivery
  /// (reorder). With no injector every code path below is byte-identical
  /// to the fault-free substrate.
  void set_faults(FaultInjector* faults) { faults_ = faults; }

  /// Run the programs (one per rank) until quiescence or `max_supersteps`
  /// (throws std::runtime_error on exceeding it -- a deadlock guard whose
  /// message reports halt votes, inbox sizes, and in-flight counts).
  BspStats run(std::vector<std::unique_ptr<RankProgram>>& programs,
               std::size_t max_supersteps = 1000000);

 private:
  friend class RankContext;

  [[noreturn]] void throw_deadlock(std::size_t max_supersteps) const;

  /// A message held back by a delay fault; released into its destination
  /// inbox at the delivery boundary of superstep `release_at`.
  struct DelayedMessage {
    std::size_t release_at = 0;
    int to = 0;
    Message msg;
  };

  int num_ranks_ = 0;
  std::vector<std::vector<Message>> current_inbox_;
  std::vector<std::vector<Message>> next_inbox_;
  std::vector<std::size_t> sent_this_step_;
  std::vector<std::uint8_t> halted_;
  std::size_t inflight_ = 0;
  BspStats stats_;
  FaultInjector* faults_ = nullptr;
  std::vector<DelayedMessage> delayed_;
  std::vector<int> stall_remaining_;
};

}  // namespace netalign::dist
