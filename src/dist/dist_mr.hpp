// Distributed-memory Klau matching relaxation over the simulated BSP
// substrate -- the MR half of the paper's Section IX distributed outlook
// (dist_bp.hpp is the BP half; both share the 1-D data distribution).
//
// Listing 1's nonlocal structure per iteration:
//  1. the Step-1 row weights beta/2 S + U - U^T read the multipliers
//     through the transpose permutation: the owner of nonzero s ships
//     U[s] to the owner of perm[s] (the same static exchange pattern as
//     distributed BP's F step); the tiny exact row matchings themselves
//     are embarrassingly local, exactly as the paper parallelizes them
//     over threads;
//  2. Step 3's global matching runs on the distributed locally-dominant
//     matcher after an allgather of w-bar (volume charged to the stats);
//     the resulting indicator is broadcast back (also charged);
//  3. Step 5's multiplier update reads x[f] (known from the broadcast
//     indicator) and the row-matching indicators S_L through the
//     transpose, requiring a second static exchange of S_L flags.
// Steps 2 and 4 are local (the upper bound is a sum reduction).
#pragma once

#include "dist/bsp.hpp"
#include "dist/fault.hpp"
#include "netalign/klau_mr.hpp"
#include "netalign/result.hpp"
#include "netalign/squares.hpp"

namespace netalign::dist {

struct DistMrOptions {
  int num_ranks = 4;
  int max_iterations = 100;
  weight_t gamma = 0.4;
  int mstep = 10;
  weight_t bound_scale = 0.5;
  bool final_exact_round = true;
  bool record_history = true;
  /// Optional telemetry (docs/OBSERVABILITY.md): one `iteration` event per
  /// MR iteration with objective / bound and the per-iteration BSP traffic
  /// deltas, one `round` event per Step-3 matching. Null = disabled.
  obs::TraceWriter* trace = nullptr;
  /// Optional counter registry for BSP traffic and small-MWM row-matching
  /// volume. Null = disabled.
  obs::Counters* counters = nullptr;
  /// Simulated network faults (fault.hpp). Message faults act on the
  /// transpose exchanges and inside the Step-3 matcher; a stalled rank
  /// sits out whole iterations with stale multipliers instead of
  /// deadlocking the phase boundary (the subgradient iteration tolerates
  /// staleness -- see docs/ARCHITECTURE.md "Fault model"). The default
  /// plan is byte-identical to the fault-free solver.
  FaultPlan faults;
  /// Deadline / checkpoint / resume / stop-latch controls (budget.hpp).
  /// The checkpoint stores the concatenated per-rank multipliers (the slot
  /// partitions are contiguous), the subgradient step state, and the
  /// cumulative BSP traffic. Refused (std::invalid_argument) together with
  /// fault injection -- a degraded fabric replays from one RNG stream a
  /// mid-run restart cannot reproduce.
  SolveBudget budget;
};

struct DistMrStats {
  BspStats bsp;
  std::size_t gather_bytes = 0;  ///< w-bar allgather + indicator broadcast
  /// Degradation accounting (all zero on a perfect fabric).
  FaultStats fault_stats;
  std::size_t stalled_iterations = 0;  ///< sum over ranks of iterations sat out
  std::size_t max_staleness = 0;  ///< longest consecutive stall streak (iters)
};

AlignResult distributed_klau_mr_align(const NetAlignProblem& p,
                                      const SquaresMatrix& S,
                                      const DistMrOptions& options = {},
                                      DistMrStats* stats = nullptr);

}  // namespace netalign::dist
