// Job queue, worker pool, and job lifecycle for the alignment server.
//
// Admission control is explicit: submit either enqueues (bounded pending
// queue) or answers `rejected` immediately -- the daemon never buffers
// unbounded work. Each accepted job runs on one of a fixed pool of worker
// threads under a per-job SolveBudget: the client's deadline maps onto
// `deadline_seconds`, and cancellation maps onto the budget's
// `cancel_flag`, so a running job stops at its next iteration boundary
// and still yields its best-so-far matching (state machine in
// docs/SERVER.md).
//
// Every job writes its own JSONL trace (obs::TraceWriter) into the work
// directory; status/progress queries tail that file through the
// tail-tolerant reader (obs/jsonl_tail.hpp), so "streaming" progress is
// just re-serving the solver's existing telemetry -- the server adds no
// second progress channel to keep consistent.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "netalign/result.hpp"
#include "obs/counters.hpp"
#include "obs/jsonl_tail.hpp"
#include "server/cache.hpp"
#include "server/protocol.hpp"
#include "util/types.hpp"

namespace netalign::server {

/// Job lifecycle: queued -> running -> {done | failed | cancelled};
/// queued -> cancelled directly when cancel beats the worker to it.
enum class JobState { kQueued, kRunning, kDone, kFailed, kCancelled };

[[nodiscard]] const char* to_string(JobState s);

struct JobManagerOptions {
  int workers = 2;            ///< solver worker threads
  std::size_t queue_cap = 16; ///< max *queued* jobs; beyond it: rejected
  std::string work_dir;       ///< per-job trace files live here (required)
};

class JobManager {
 public:
  JobManager(const JobManagerOptions& options, ProblemCache& cache,
             obs::Counters* counters);
  ~JobManager();  ///< shutdown(true)

  JobManager(const JobManager&) = delete;
  JobManager& operator=(const JobManager&) = delete;

  struct SubmitOutcome {
    bool accepted = false;
    std::int64_t job = -1;
    std::string key;     ///< problem content hash
    ErrorCode code = ErrorCode::kInternal;  ///< when !accepted
    std::string message;                    ///< when !accepted
  };
  /// Validate, hash, and enqueue. Reads problem_path (if used) here so
  /// the content hash and any read error surface at submit time.
  SubmitOutcome submit(SubmitParams spec);

  struct JobStatus {
    std::int64_t id = -1;
    JobState state = JobState::kQueued;
    std::string tag;
    std::string key;
    std::string solver;
    bool cache_hit = false;          ///< meaningful once running
    std::int64_t queue_position = -1;  ///< 0-based; -1 once dequeued
    std::int64_t iterations = 0;     ///< iteration events tailed so far
    std::int64_t rounds = 0;         ///< rounding events tailed so far
    double last_objective = 0.0;     ///< 0 until the first round event
    std::string error;               ///< kFailed only
  };
  std::optional<JobStatus> status(std::int64_t id);

  struct JobProgress {
    JobState state = JobState::kQueued;
    std::int64_t next_cursor = 0;
    /// Serialized trace events [cursor, next_cursor), compact JSON each.
    std::vector<std::string> events;
  };
  std::optional<JobProgress> progress(std::int64_t id, std::int64_t cursor);

  struct JobResult {
    JobState state = JobState::kQueued;
    bool has_result = false;  ///< done, or cancelled after it ran
    std::string error;
    std::string stopped_reason;
    double objective = 0.0;
    double weight = 0.0;
    double overlap = 0.0;
    std::int64_t cardinality = 0;
    std::int64_t best_iteration = -1;
    std::int64_t iterations_completed = 0;
    double total_seconds = 0.0;
    bool cache_hit = false;
    std::string problem_name;
    std::int64_t num_a = 0;  ///< |V_A|, for client-side matching rebuild
    std::int64_t num_b = 0;
    std::vector<std::pair<vid_t, vid_t>> pairs;  ///< matched (a, b)
  };
  std::optional<JobResult> result(std::int64_t id);

  struct CancelOutcome {
    bool found = false;
    JobState state = JobState::kQueued;  ///< state after the cancel
  };
  CancelOutcome cancel(std::int64_t id);

  struct QueueStats {
    std::int64_t queued = 0;
    std::int64_t running = 0;
    std::int64_t total_jobs = 0;
    std::int64_t workers = 0;
    std::int64_t queue_cap = 0;
  };
  QueueStats queue_stats() const;

  /// Reject all future submits with kShuttingDown.
  void begin_drain();
  [[nodiscard]] bool draining() const;
  /// True when no job is queued or running.
  [[nodiscard]] bool idle() const;
  /// Stop workers. `cancel_running` latches every live job's cancel flag
  /// and drops the queue; false = drain the queue first. Idempotent.
  void shutdown(bool cancel_running);

 private:
  struct Job {
    std::int64_t id = 0;
    SubmitParams spec;
    std::string key;
    std::string trace_path;
    std::atomic<bool> cancel{false};

    // Guarded by JobManager::mutex_.
    JobState state = JobState::kQueued;
    bool cache_hit = false;
    bool has_result = false;
    std::string error;
    JobResult result;  // filled when the run finishes

    // Progress tailing, guarded by tail_mutex (file IO kept off the
    // manager-wide lock).
    std::mutex tail_mutex;
    std::unique_ptr<obs::JsonlTailReader> tail;
    std::vector<std::string> events;
    std::int64_t iterations_seen = 0;
    std::int64_t rounds_seen = 0;
    double last_objective = 0.0;
  };

  void worker_loop();
  void run_job(Job& job);
  /// Drain new trace events into job.events / progress counters.
  void drain_tail(Job& job);
  Job* find(std::int64_t id);

  JobManagerOptions options_;
  ProblemCache& cache_;
  obs::Counters* counters_;

  mutable std::mutex mutex_;
  std::condition_variable work_available_;
  std::condition_variable job_finished_;
  std::deque<std::int64_t> pending_;
  std::map<std::int64_t, std::unique_ptr<Job>> jobs_;
  std::int64_t next_id_ = 1;
  std::int64_t running_ = 0;
  bool draining_ = false;
  bool stopping_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace netalign::server
