// Job queue, worker pool, and job lifecycle for the alignment server.
//
// Admission control is explicit and two-level: submit either enqueues or
// answers immediately -- `rejected` when the server-wide queue bound is
// hit, `quota_exceeded` when the submitting *tenant* is at its own
// queued-jobs quota -- so the daemon never buffers unbounded work and no
// tenant can monopolize the buffer. Queued jobs live in per-tenant FIFO
// queues drained by deficit-round-robin: each scheduling pass grants
// every eligible tenant `drr_quantum` iteration-credits and runs the
// first tenant whose accumulated deficit covers its head job's cost
// (cost = the job's iteration budget), so tenants share worker time
// proportionally regardless of how fast any one of them submits. A
// per-tenant running cap bounds how many workers one tenant may occupy
// at once.
//
// Terminal jobs (done/failed/cancelled) are retained up to
// `retained_cap` and then evicted least-recently-*accessed* first; an
// eviction reclaims the state-map entry, the buffered progress events,
// and the on-disk trace file together. Jobs are held by shared_ptr so a
// status/progress reader that grabbed a job just before its eviction
// still reads coherent state. Evicted ids are distinguishable from
// never-issued ids (`expired()`), so clients get `expired`, not a
// confusing `not_found`.
//
// Each accepted job runs on one of a fixed pool of worker threads under
// a per-job SolveBudget: the client's deadline maps onto
// `deadline_seconds`, and cancellation maps onto the budget's
// `cancel_flag`, so a running job stops at its next iteration boundary
// and still yields its best-so-far matching (state machine in
// docs/SERVER.md). A `problem_path` submission is *not* read at submit
// time (that would block the single-threaded I/O loop behind disk I/O);
// the worker reads it in run_job and re-keys the job from the bytes.
//
// Every job writes its own JSONL trace (obs::TraceWriter) into the work
// directory; status/progress queries tail that file through the
// tail-tolerant reader (obs/jsonl_tail.hpp), so "streaming" progress is
// just re-serving the solver's existing telemetry -- the server adds no
// second progress channel to keep consistent.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "netalign/result.hpp"
#include "obs/counters.hpp"
#include "obs/jsonl_tail.hpp"
#include "server/cache.hpp"
#include "server/journal.hpp"
#include "server/protocol.hpp"
#include "util/types.hpp"

namespace netalign::server {

/// Job lifecycle: queued -> running -> {done | failed | cancelled};
/// queued -> cancelled directly when cancel beats the worker to it.
enum class JobState { kQueued, kRunning, kDone, kFailed, kCancelled };

[[nodiscard]] const char* to_string(JobState s);

/// The scheduling bucket of a submit without an explicit tenant.
inline constexpr const char* kDefaultTenant = "default";

struct JobManagerOptions {
  int workers = 2;            ///< solver worker threads
  std::size_t queue_cap = 16; ///< max *queued* jobs server-wide; beyond it: rejected
  /// Max queued jobs for one tenant; beyond it: quota_exceeded. Clamped
  /// to queue_cap.
  std::size_t tenant_queue_cap = 8;
  /// Max concurrently *running* jobs for one tenant; 0 = no per-tenant
  /// cap (bounded by `workers` alone).
  int tenant_running_cap = 0;
  /// Iteration-credits granted per tenant per deficit-round-robin pass.
  std::int64_t drr_quantum = 100;
  /// Terminal jobs retained before LRU eviction reclaims them.
  std::size_t retained_cap = 256;
  /// Byte cap on a problem_path file (inline problems are already
  /// bounded by the request-line cap); the worker's chunked read fails
  /// the job once it would exceed this.
  std::size_t max_problem_bytes = 1u << 30;
  std::string work_dir;       ///< per-job trace files live here (required)
  /// Durability (docs/SERVER.md "Durability & recovery"): with the
  /// journal on, an accepted submit is appended to
  /// `work_dir/journal.jsonl` before it is acknowledged, terminal
  /// transitions are fsync'd, and running jobs checkpoint their solver
  /// state every `checkpoint_every` iterations, so a SIGKILL loses no
  /// acknowledged job.
  bool journal = true;
  /// fsync every journal append, not just terminal records: submit acks
  /// then survive a machine crash too, at a per-submit fsync cost.
  bool journal_fsync = false;
  /// Replay the journal at construction: restore terminal results,
  /// re-enqueue queued jobs, resume formerly-running jobs from their
  /// checkpoints. Off = discard any prior journal and start fresh.
  bool recover = true;
  /// Solver-iteration cadence of per-job checkpoints (job-<id>.ckpt);
  /// 0 = no periodic checkpoints. Only meaningful with the journal on,
  /// since recovery is the only reader.
  std::int64_t checkpoint_every = 25;
  /// Default squares backend for submits without a `squares_mode` field:
  /// "explicit" | "implicit" | "auto". Dist-* solvers always run
  /// explicit regardless.
  std::string squares_mode = "explicit";
  /// `auto` threshold in MiB: a problem whose explicit squares structure
  /// would exceed this is built implicit instead.
  std::uint64_t squares_max_mb = 2048;
};

class JobManager {
 public:
  JobManager(const JobManagerOptions& options, ProblemCache& cache,
             obs::Counters* counters);
  ~JobManager();  ///< shutdown(true)

  JobManager(const JobManager&) = delete;
  JobManager& operator=(const JobManager&) = delete;

  struct SubmitOutcome {
    bool accepted = false;
    std::int64_t job = -1;
    std::string key;     ///< problem content hash (provisional for paths)
    /// True for problem_path submissions: `key` is a path+mtime hash
    /// that the worker replaces with the content hash once it reads the
    /// bytes, so clients must not use it for dedupe or correlation.
    bool key_provisional = false;
    /// True when `request_id` matched a known submission: `job` is the
    /// original id and nothing new was enqueued.
    bool duplicate = false;
    ErrorCode code = ErrorCode::kInternal;  ///< when !accepted
    std::string message;                    ///< when !accepted
  };
  /// Validate and enqueue. Inline problems are hashed here; a
  /// problem_path submission is only stat'ed (regular-file check +
  /// mtime) -- the worker reads the bytes in run_job and re-keys the
  /// job, so a large or slow file never stalls the caller (the server's
  /// I/O loop).
  SubmitOutcome submit(SubmitParams spec);

  struct JobStatus {
    std::int64_t id = -1;
    JobState state = JobState::kQueued;
    std::string tag;
    std::string tenant;
    std::string key;
    std::string solver;
    bool cache_hit = false;          ///< meaningful once running
    std::int64_t queue_position = -1;  ///< 0-based within the tenant queue
    std::int64_t iterations = 0;     ///< iteration events tailed so far
    std::int64_t rounds = 0;         ///< rounding events tailed so far
    double last_objective = 0.0;     ///< 0 until the first round event
    std::string error;               ///< kFailed only
  };
  std::optional<JobStatus> status(std::int64_t id);

  struct JobProgress {
    JobState state = JobState::kQueued;
    std::int64_t next_cursor = 0;
    /// Serialized trace events [cursor, next_cursor), compact JSON each.
    std::vector<std::string> events;
  };
  std::optional<JobProgress> progress(std::int64_t id, std::int64_t cursor);

  struct JobResult {
    JobState state = JobState::kQueued;
    bool has_result = false;  ///< done, or cancelled after it ran
    std::string error;
    std::string stopped_reason;
    double objective = 0.0;
    double weight = 0.0;
    double overlap = 0.0;
    std::int64_t cardinality = 0;
    std::int64_t best_iteration = -1;
    std::int64_t iterations_completed = 0;
    double total_seconds = 0.0;
    bool cache_hit = false;
    std::string problem_name;
    std::int64_t num_a = 0;  ///< |V_A|, for client-side matching rebuild
    std::int64_t num_b = 0;
    std::vector<std::pair<vid_t, vid_t>> pairs;  ///< matched (a, b)
  };
  std::optional<JobResult> result(std::int64_t id);

  /// True iff `id` was issued by this manager and its job has since been
  /// evicted by the retention cap (ids are never reused). Lets lookup
  /// misses answer `expired` instead of `not_found`.
  [[nodiscard]] bool expired(std::int64_t id) const;

  struct CancelOutcome {
    bool found = false;
    JobState state = JobState::kQueued;  ///< state after the cancel
  };
  CancelOutcome cancel(std::int64_t id);

  struct TenantStats {
    std::string tenant;
    std::int64_t queued = 0;
    std::int64_t running = 0;
    std::int64_t completed = 0;  ///< jobs that reached a terminal state
  };
  struct QueueStats {
    std::int64_t queued = 0;
    std::int64_t running = 0;
    std::int64_t total_jobs = 0;
    std::int64_t workers = 0;
    std::int64_t queue_cap = 0;
    std::int64_t tenant_queue_cap = 0;
    std::int64_t tenant_running_cap = 0;
    std::int64_t retained = 0;   ///< terminal jobs currently held
    std::int64_t retained_cap = 0;
    std::int64_t evicted = 0;    ///< terminal jobs reclaimed so far
    std::vector<TenantStats> tenants;  ///< tenants with live jobs, by name
  };
  QueueStats queue_stats() const;

  /// What the startup recovery pass did (all zero when `recover` was off
  /// or there was no journal). Immutable after construction.
  struct RecoveryStats {
    bool performed = false;        ///< a journal was replayed
    std::int64_t terminal_restored = 0;  ///< results queryable again
    std::int64_t requeued = 0;     ///< formerly-queued jobs re-enqueued
    std::int64_t rerun = 0;        ///< formerly-running jobs re-enqueued
    std::int64_t resumed = 0;      ///< of `rerun`, with a checkpoint to resume
    std::int64_t orphans_removed = 0;  ///< stale work-dir files deleted
    std::int64_t ignored_events = 0;   ///< journal records that did not apply
    bool torn_tail = false;        ///< the final record was cut mid-write
  };
  [[nodiscard]] const RecoveryStats& recovery() const { return recovery_; }

  struct JournalStats {
    bool enabled = false;
    std::int64_t appends = 0;
    std::int64_t fsyncs = 0;
    std::int64_t compactions = 0;
    /// Failed (rolled-back) appends: nonzero means some acknowledged
    /// jobs are not crash-durable (e.g. the disk filled up).
    std::int64_t write_errors = 0;
  };
  [[nodiscard]] JournalStats journal_stats() const;

  /// Reject all future submits with kShuttingDown.
  void begin_drain();
  [[nodiscard]] bool draining() const;
  /// True when no job is queued or running.
  [[nodiscard]] bool idle() const;
  /// Stop workers. `cancel_running` latches every live job's cancel flag
  /// and drops the queue; false = drain the queue first. Idempotent.
  void shutdown(bool cancel_running);

 private:
  struct Job {
    std::int64_t id = 0;
    SubmitParams spec;
    std::string tenant;  ///< resolved (never empty)
    std::string key;
    std::string trace_path;
    /// Basename of the job's problem spill in the work dir
    /// ("job-<id>.nap"); what recovery re-reads the bytes from. Empty
    /// for a path submission a worker has not picked up yet (recovery
    /// re-reads the original problem_path instead), or when the journal
    /// is off.
    std::string problem_file;
    /// Set by recovery on a formerly-running job: run_job points the
    /// budget's resume_path at job-<id>.ckpt (bit-identical resume).
    bool resume = false;
    std::atomic<bool> cancel{false};

    // Guarded by JobManager::mutex_.
    JobState state = JobState::kQueued;
    /// The job's final state is decided and its terminal journal record
    /// is being (or about to be) appended off-lock, but `state` is not
    /// published yet. to_journal_locked snapshots such a job as terminal
    /// so a concurrent compaction cannot rewrite the journal without the
    /// record the appender just fsync'd. Cleared when `state` flips.
    bool terminal_pending = false;
    JobState pending_state = JobState::kQueued;  ///< valid iff terminal_pending
    bool cache_hit = false;
    bool has_result = false;
    std::string error;
    JobResult result;  // filled when the run finishes
    bool in_lru = false;
    std::list<std::int64_t>::iterator lru_pos;  // valid iff in_lru

    // Progress tailing, guarded by tail_mutex (file IO kept off the
    // manager-wide lock).
    std::mutex tail_mutex;
    std::unique_ptr<obs::JsonlTailReader> tail;
    std::vector<std::string> events;
    std::int64_t iterations_seen = 0;
    std::int64_t rounds_seen = 0;
    double last_objective = 0.0;
  };

  /// One tenant's scheduling bucket.
  struct Tenant {
    std::deque<std::int64_t> queue;  ///< queued job ids, FIFO
    std::int64_t deficit = 0;        ///< DRR credit (reset when queue empties)
    std::int64_t running = 0;
    std::int64_t completed = 0;
  };

  void worker_loop();
  /// Execute `job` and return its final state WITHOUT publishing it:
  /// worker_loop journals the terminal record first and only then flips
  /// job.state under mutex_, atomically with the running_/completed
  /// bookkeeping. No client can observe a terminal state that is not
  /// yet durable, and stats never show "all terminal but still running".
  [[nodiscard]] JobState run_job(Job& job);
  /// work_dir/job-<id>.ckpt (periodic solver checkpoints, io/checkpoint).
  [[nodiscard]] std::string ckpt_path(std::int64_t id) const;
  /// work_dir/<basename> for a problem spill file.
  [[nodiscard]] std::string spill_path(const std::string& file) const;
  /// Write `bytes` to the job's problem spill ("job-<id>.nap", tmp +
  /// atomic rename). Returns the basename, or "" on I/O failure (the
  /// job then survives only as long as the process).
  std::string spill_problem(std::int64_t id, const std::string& bytes);
  /// Snapshot `job` for a journal submit/compact record. Requires mutex_.
  [[nodiscard]] JournalJob to_journal_locked(const Job& job) const;
  /// Terminal-record payload for a job ending in `state`; the job's
  /// result fields must already be final (immutable from then on, so no
  /// lock is needed — job.state itself may not be published yet).
  [[nodiscard]] static JournalResult to_journal_result(const Job& job,
                                                      JobState state);
  /// Append the terminal record (fsync'd) and bump journal counters.
  void journal_terminal(const Job& job, JobState state);
  /// Rewrite the journal as a snapshot of live jobs when enough appends
  /// accumulated since the last compaction. Requires mutex_.
  void maybe_compact_locked();
  /// Replay work_dir/journal.jsonl into jobs_/tenants_/request_ids_.
  /// Runs in the constructor, before any worker starts. Throws on a
  /// journal with a newer version than this build.
  void recover_from_journal();
  /// Delete stale work-dir files (orphaned traces/checkpoints/spills and
  /// half-written temporaries) that no live job owns. Requires the
  /// recovery pass (when any) to have run.
  void clean_work_dir();
  /// Drain new trace events into job.events / progress counters.
  void drain_tail(Job& job);
  std::shared_ptr<Job> find(std::int64_t id);

  /// Deficit-round-robin pick: the next runnable job id, or -1. Pops it
  /// from its tenant queue and charges the tenant's deficit. Requires
  /// mutex_.
  std::int64_t pop_next_locked();
  [[nodiscard]] bool has_eligible_locked() const;
  /// Record a terminal transition: retention bookkeeping + counters.
  /// Requires mutex_; eviction of over-cap jobs happens here too (their
  /// trace files are unlinked after mutex_ is released, via the returned
  /// paths).
  [[nodiscard]] std::vector<std::string> mark_terminal_locked(Job& job);
  /// Refresh a terminal job's retention recency. Requires mutex_.
  void touch_locked(Job& job);

  JobManagerOptions options_;
  ProblemCache& cache_;
  obs::Counters* counters_;
  /// Null when options_.journal is off. Lock order: mutex_ before the
  /// journal's internal mutex, never the reverse.
  std::unique_ptr<JobJournal> journal_;
  RecoveryStats recovery_;

  mutable std::mutex mutex_;
  std::condition_variable work_available_;
  std::condition_variable job_finished_;
  std::map<std::string, Tenant> tenants_;
  /// Tenants with queued jobs, in round-robin visit order.
  std::deque<std::string> active_tenants_;
  std::size_t queued_total_ = 0;
  std::map<std::int64_t, std::shared_ptr<Job>> jobs_;
  /// (tenant, request_id) -> job id for idempotent submits; entries live
  /// exactly as long as their job (erased on eviction), so the dedupe
  /// window is the retention window. Keyed per tenant: a request_id that
  /// happens to collide across tenants must enqueue a fresh job, never
  /// answer with (and thereby disclose) another tenant's job id and
  /// content key.
  std::map<std::pair<std::string, std::string>, std::int64_t> request_ids_;
  std::list<std::int64_t> retained_lru_;  ///< terminal jobs, LRU at front
  std::int64_t evicted_ = 0;
  std::int64_t next_id_ = 1;
  std::int64_t running_ = 0;
  bool draining_ = false;
  bool stopping_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace netalign::server
