// Write-ahead job journal for the alignment daemon (docs/SERVER.md
// "Durability & recovery", record schema in docs/FORMATS.md).
//
// The journal is the daemon's source of truth for job *existence*: a
// submit is acknowledged only after its record reached the kernel via
// write(2), so a SIGKILL at any instant loses no acknowledged job. Each
// job contributes at most four append-only JSONL records over its life:
//
//   submit    id, tenant, request_id, solver params, content-hash key,
//             and the name of the spilled problem file
//   start     a worker picked the job up (final key after a path re-key)
//   terminal  done/failed/cancelled, with the full result payload so a
//             restart can serve `result` without re-running anything
//   evict     the retention cap reclaimed a terminal job
//
// Terminal records are fsync'd (the transition a client paid for must
// survive a machine crash, not just a process kill); `fsync_all` extends
// that to every append for callers who want submit acks machine-crash
// durable too. The file is rewritten in place -- write temp, fsync,
// rename -- by compact(), which drops evicted jobs and dead history so
// the journal stays proportional to live state, not uptime.
//
// replay_journal_file() is the pure read side: it applies records in
// order through the same tail-tolerant reader the progress stream uses
// (obs/jsonl_tail.hpp), so a torn final line -- the record the dying
// daemon was mid-write -- is dropped, never misparsed, and a record is
// never applied twice (re-applied ids are counted and ignored). A
// journal stamped with a *newer* version than this build understands is
// refused with a thrown error rather than misread.
#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "server/protocol.hpp"

namespace netalign::server {

/// Journal file schema version; bumped on any record-layout change a
/// replayer could misread. Reported by `ping`/`stats` and refused by
/// recovery when a journal claims a newer one.
inline constexpr std::int64_t kJournalVersion = 1;

/// Payload of a terminal record: everything `result` serves, so a
/// restarted daemon answers result queries for pre-crash jobs without
/// re-running them (mirrors JobManager::JobResult, which lives above
/// this module).
struct JournalResult {
  std::string state;  ///< "done" | "failed" | "cancelled"
  bool has_result = false;
  std::string error;
  std::string stopped_reason;
  double objective = 0.0;
  double weight = 0.0;
  double overlap = 0.0;
  std::int64_t cardinality = 0;
  std::int64_t best_iteration = -1;
  std::int64_t iterations_completed = 0;
  double total_seconds = 0.0;
  bool cache_hit = false;
  std::string problem_name;
  std::int64_t num_a = 0;
  std::int64_t num_b = 0;
  std::vector<std::pair<std::int64_t, std::int64_t>> pairs;
};

/// One job's replayed state: the submit record plus whatever later
/// records applied. Also the unit compact() snapshots live jobs as.
struct JournalJob {
  std::int64_t id = 0;
  SubmitParams spec;  ///< problem bytes spilled, not journaled (see below)
  std::string tenant;
  std::string key;
  bool key_provisional = false;
  /// Basename of the job's problem spill in the work dir
  /// ("job-<id>.nap"); empty for a path submission that never started
  /// (the worker re-reads spec.problem_path instead).
  std::string problem_file;
  bool started = false;
  std::int64_t start_seq = -1;  ///< order workers picked jobs up, for replay
  bool terminal = false;
  JournalResult result;  ///< valid iff terminal
};

/// Everything replay_journal_file() learned from one journal.
struct JournalReplay {
  std::int64_t version = kJournalVersion;
  /// Smallest id the restarted manager may issue: max(header next_id,
  /// highest id seen + 1). Ids are never reused across restarts, which
  /// is what keeps `expired` answers truthful.
  std::int64_t next_id = 1;
  std::vector<JournalJob> jobs;  ///< live (non-evicted) jobs, submit order
  std::int64_t records_applied = 0;
  /// Records that could not apply (a re-submitted id, a start/terminal
  /// for an unknown or already-terminal job): ignored, never
  /// double-applied. Normally zero for a journal this module wrote; a
  /// compaction that races a terminal append can legitimately leave one
  /// duplicate terminal record (the snapshot already carries it), which
  /// replay counts here and ignores.
  std::int64_t ignored_events = 0;
  /// True when the final line was cut mid-write (SIGKILL mid-append);
  /// exactly that one record is dropped.
  bool torn_tail = false;
  /// True when an unparseable line had records *after* it (real
  /// corruption, not a torn tail); replay stops there and keeps the
  /// clean prefix.
  bool malformed = false;
};

/// Replay `path` record by record. A missing file replays as empty.
/// Throws std::runtime_error only for a journal whose header claims a
/// version newer than kJournalVersion; every other defect degrades to
/// torn_tail/malformed/ignored_events.
[[nodiscard]] JournalReplay replay_journal_file(const std::string& path);

class JobJournal {
 public:
  /// Open (or create) `path` for appending. A new or empty file gets the
  /// header record immediately. `fsync_all` extends the terminal-record
  /// fsync to every append. Throws std::runtime_error when the file
  /// cannot be opened.
  JobJournal(std::string path, bool fsync_all);
  ~JobJournal();

  JobJournal(const JobJournal&) = delete;
  JobJournal& operator=(const JobJournal&) = delete;

  void submit(const JournalJob& job);
  void start(std::int64_t job, const std::string& key,
             const std::string& problem_file);
  void terminal(std::int64_t job, const JournalResult& result);
  void evict(std::int64_t job);

  /// Rewrite the journal as a clean snapshot of `live` (header carrying
  /// `next_id`, then submit/start/terminal records per job): write
  /// `<path>.tmp`, fsync, rename, and swap the append fd so concurrent
  /// appends land in the new file. Drops evicted jobs and superseded
  /// history; resets appends_since_compact().
  void compact(const std::vector<JournalJob>& live, std::int64_t next_id);

  /// Appends since the last compact (or open), the compaction trigger.
  [[nodiscard]] std::int64_t appends_since_compact() const;

  [[nodiscard]] const std::string& path() const { return path_; }

  /// Lifetime totals for the server.journal.* counters.
  [[nodiscard]] std::int64_t appends_total() const;
  [[nodiscard]] std::int64_t fsyncs_total() const;
  [[nodiscard]] std::int64_t compactions_total() const;
  /// Appends that failed (ENOSPC etc.) and were rolled back; nonzero
  /// means some acknowledged jobs are not crash-durable.
  [[nodiscard]] std::int64_t write_errors_total() const;

 private:
  void append_line(const std::string& line, bool fsync_now);

  std::string path_;
  bool fsync_all_ = false;
  mutable std::mutex mutex_;
  int fd_ = -1;
  std::int64_t appends_since_compact_ = 0;
  std::int64_t appends_total_ = 0;
  std::int64_t fsyncs_total_ = 0;
  std::int64_t compactions_total_ = 0;
  std::int64_t write_errors_ = 0;
  /// A failed append left a partial record that ftruncate could not trim
  /// (valid bytes end at torn_offset_). Until the trim succeeds -- or a
  /// compaction rewrites the file -- further appends are refused: bytes
  /// written after the damage would be unreachable to replay anyway, and
  /// burying a torn record mid-file is what turns one lost job into
  /// losing every job journaled after it.
  bool tail_torn_ = false;
  std::int64_t torn_offset_ = 0;
};

}  // namespace netalign::server
