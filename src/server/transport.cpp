#include "server/transport.hpp"

#include <errno.h>
#include <fcntl.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cstring>
#include <stdexcept>

#include <fstream>

namespace netalign::server {

namespace {

bool valid_port(const std::string& s) {
  if (s.empty() || s.size() > 5) return false;
  long value = 0;
  for (const char c : s) {
    if (c < '0' || c > '9') return false;
    value = value * 10 + (c - '0');
  }
  return value <= 65535;
}

/// getaddrinfo for a tcp endpoint; `passive` asks for a bindable
/// address. The caller owns the returned list (freeaddrinfo).
addrinfo* resolve_tcp(const Endpoint& ep, bool passive, std::string& error) {
  addrinfo hints{};
  hints.ai_family = AF_UNSPEC;
  hints.ai_socktype = SOCK_STREAM;
  hints.ai_flags = passive ? AI_PASSIVE : 0;
  addrinfo* result = nullptr;
  const int rc =
      ::getaddrinfo(ep.host.c_str(), ep.port.c_str(), &hints, &result);
  if (rc != 0) {
    error = "cannot resolve " + ep.str() + ": " + ::gai_strerror(rc);
    errno = 0;  // resolution failures carry no classifiable errno
    return nullptr;
  }
  return result;
}

bool fill_unix_addr(const Endpoint& ep, sockaddr_un& addr,
                    std::string& error) {
  addr = {};
  addr.sun_family = AF_UNIX;
  if (ep.path.size() >= sizeof(addr.sun_path)) {
    error = "unix socket path too long (" + std::to_string(ep.path.size()) +
            " bytes): " + ep.path;
    return false;
  }
  std::memcpy(addr.sun_path, ep.path.c_str(), ep.path.size() + 1);
  return true;
}

}  // namespace

std::string Endpoint::str() const {
  if (kind == Kind::kUnix) return "unix:" + path;
  const bool v6 = host.find(':') != std::string::npos;
  return "tcp:" + (v6 ? "[" + host + "]" : host) + ":" + port;
}

bool parse_endpoint(const std::string& spec, Endpoint& out,
                    std::string& error) {
  if (spec.rfind("unix:", 0) == 0) {
    out.kind = Endpoint::Kind::kUnix;
    out.path = spec.substr(5);
    if (out.path.empty()) {
      error = "unix endpoint needs a path (unix:<path>)";
      return false;
    }
    return true;
  }
  if (spec.rfind("tcp:", 0) == 0) {
    out.kind = Endpoint::Kind::kTcp;
    std::string rest = spec.substr(4);
    if (!rest.empty() && rest.front() == '[') {
      // Bracketed IPv6 literal: tcp:[::1]:4455.
      const std::size_t close = rest.find(']');
      if (close == std::string::npos || close + 1 >= rest.size() ||
          rest[close + 1] != ':') {
        error = "malformed tcp endpoint '" + spec +
                "' (expected tcp:[v6addr]:port)";
        return false;
      }
      out.host = rest.substr(1, close - 1);
      out.port = rest.substr(close + 2);
    } else {
      const std::size_t colon = rest.rfind(':');
      if (colon == std::string::npos) {
        error = "tcp endpoint needs a port (tcp:<host>:<port>)";
        return false;
      }
      out.host = rest.substr(0, colon);
      out.port = rest.substr(colon + 1);
    }
    if (out.host.empty() || !valid_port(out.port)) {
      error = "malformed tcp endpoint '" + spec +
              "' (expected tcp:<host>:<port>, port 0-65535)";
      return false;
    }
    return true;
  }
  if (spec.empty()) {
    error = "empty endpoint spec";
    return false;
  }
  if (spec.find(':') != std::string::npos &&
      spec.find('/') == std::string::npos) {
    // "host:4455" or "udp:..." -- almost certainly a scheme typo, not a
    // relative unix path with a colon in it.
    error = "unknown endpoint scheme in '" + spec +
            "' (use unix:<path> or tcp:<host>:<port>)";
    return false;
  }
  out.kind = Endpoint::Kind::kUnix;  // bare path, the historical --socket
  out.path = spec;
  return true;
}

int connect_endpoint(const Endpoint& ep, std::string& error) {
  if (ep.kind == Endpoint::Kind::kUnix) {
    sockaddr_un addr{};
    if (!fill_unix_addr(ep, addr, error)) {
      errno = EINVAL;
      return -1;
    }
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) {
      error = "cannot create socket: " + std::string(std::strerror(errno));
      return -1;
    }
    if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                  sizeof(addr)) != 0) {
      const int err = errno;
      ::close(fd);
      error = "cannot connect to " + ep.str() + ": " + std::strerror(err);
      errno = err;
      return -1;
    }
    return fd;
  }

  addrinfo* addrs = resolve_tcp(ep, /*passive=*/false, error);
  if (addrs == nullptr) return -1;
  int last_errno = ECONNREFUSED;
  for (const addrinfo* ai = addrs; ai != nullptr; ai = ai->ai_next) {
    const int fd = ::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol);
    if (fd < 0) {
      last_errno = errno;
      continue;
    }
    if (::connect(fd, ai->ai_addr, ai->ai_addrlen) == 0) {
      // One request line is one packet-worth of latency budget; never
      // let Nagle hold a submit behind a previous response's ACK.
      const int one = 1;
      ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
      ::freeaddrinfo(addrs);
      return fd;
    }
    last_errno = errno;
    ::close(fd);
  }
  ::freeaddrinfo(addrs);
  error = "cannot connect to " + ep.str() + ": " +
          std::strerror(last_errno);
  errno = last_errno;
  return -1;
}

bool set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  return flags >= 0 && ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0;
}

bool server_alive_at(const Endpoint& ep) {
  std::string error;
  const int fd = connect_endpoint(ep, error);
  if (fd < 0) return false;  // nobody listening (or a stale unix file)
  const char ping[] = "{\"method\":\"ping\"}\n";
  bool alive = false;
  if (::send(fd, ping, sizeof(ping) - 1, MSG_NOSIGNAL) ==
      static_cast<ssize_t>(sizeof(ping) - 1)) {
    pollfd p{fd, POLLIN, 0};
    alive = ::poll(&p, 1, /*timeout_ms=*/500) > 0 && (p.revents & POLLIN) != 0;
  }
  ::close(fd);
  return alive;
}

bool Listener::open(const Endpoint& ep, std::string& error) {
  close();
  bound_ = ep;
  if (ep.kind == Endpoint::Kind::kUnix) {
    sockaddr_un addr{};
    if (!fill_unix_addr(ep, addr, error)) return false;
    // A socket file may be a *live* server, not leftovers: probe it
    // before unlinking, or a second daemon would silently hijack the
    // first one's socket (clients would reconnect here while the old
    // server still holds every job they submitted).
    if (server_alive_at(ep)) {
      error = "a server is already answering ping on " + ep.str() +
              "; refusing to start";
      return false;
    }
    fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd_ < 0) {
      error = "socket: " + std::string(std::strerror(errno));
      return false;
    }
    ::unlink(ep.path.c_str());  // stale socket from a past run
    if (::bind(fd_, reinterpret_cast<const sockaddr*>(&addr),
               sizeof(addr)) != 0) {
      error = "bind " + ep.str() + ": " + std::strerror(errno);
      ::close(fd_);
      fd_ = -1;
      return false;
    }
  } else {
    addrinfo* addrs = resolve_tcp(ep, /*passive=*/true, error);
    if (addrs == nullptr) return false;
    int last_errno = EADDRNOTAVAIL;
    for (const addrinfo* ai = addrs; ai != nullptr; ai = ai->ai_next) {
      fd_ = ::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol);
      if (fd_ < 0) {
        last_errno = errno;
        continue;
      }
      const int one = 1;
      ::setsockopt(fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
      if (::bind(fd_, ai->ai_addr, ai->ai_addrlen) == 0) break;
      last_errno = errno;
      ::close(fd_);
      fd_ = -1;
    }
    ::freeaddrinfo(addrs);
    if (fd_ < 0) {
      error = "bind " + ep.str() + ": " + std::strerror(last_errno);
      return false;
    }
    // Read back the kernel-assigned port so `tcp:host:0` reports a
    // connectable endpoint.
    sockaddr_storage ss{};
    socklen_t len = sizeof(ss);
    if (::getsockname(fd_, reinterpret_cast<sockaddr*>(&ss), &len) == 0) {
      std::uint16_t port = 0;
      if (ss.ss_family == AF_INET) {
        port = ntohs(reinterpret_cast<const sockaddr_in&>(ss).sin_port);
      } else if (ss.ss_family == AF_INET6) {
        port = ntohs(reinterpret_cast<const sockaddr_in6&>(ss).sin6_port);
      }
      if (port != 0) bound_.port = std::to_string(port);
    }
  }
  if (::listen(fd_, 64) != 0 || !set_nonblocking(fd_)) {
    error = "listen " + ep.str() + ": " + std::strerror(errno);
    close();
    return false;
  }
  return true;
}

void Listener::close() {
  if (fd_ < 0) return;
  ::close(fd_);
  fd_ = -1;
  if (bound_.kind == Endpoint::Kind::kUnix) ::unlink(bound_.path.c_str());
}

std::string load_auth_token(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw std::runtime_error("cannot read auth token file: " + path);
  }
  std::string token;
  std::getline(in, token);
  while (!token.empty() &&
         (token.back() == '\r' || token.back() == ' ' ||
          token.back() == '\t')) {
    token.pop_back();
  }
  if (token.empty()) {
    throw std::runtime_error("auth token file is empty: " + path);
  }
  return token;
}

bool tokens_equal(std::string_view secret, std::string_view candidate) {
  // Fold the length difference into the accumulator instead of early-
  // returning: the loop always walks the full candidate, so timing
  // reveals nothing about where a guess diverged from the secret.
  unsigned diff = secret.size() == candidate.size() ? 0u : 1u;
  for (std::size_t i = 0; i < candidate.size(); ++i) {
    const char s = secret.empty() ? '\0' : secret[i % secret.size()];
    diff |= static_cast<unsigned>(static_cast<unsigned char>(s) ^
                                  static_cast<unsigned char>(candidate[i]));
  }
  return diff == 0;
}

}  // namespace netalign::server
