// Minimal blocking client for the alignment daemon: one AF_UNIX stream
// connection, one JSON line out per request, one JSON line back per
// response (protocol in docs/SERVER.md). Used by the `netalign client`
// subcommand and by tests/test_server.cpp; the connection is persistent,
// so several requests can share one socket.
#pragma once

#include <string>
#include <string_view>

#include "obs/json.hpp"

namespace netalign::server {

class ServerClient {
 public:
  /// Connect to the daemon at `socket_path`. Throws std::runtime_error if
  /// the socket cannot be reached.
  explicit ServerClient(const std::string& socket_path);
  ~ServerClient();

  ServerClient(const ServerClient&) = delete;
  ServerClient& operator=(const ServerClient&) = delete;

  /// Send one request line (newline appended here) and block for the
  /// matching response line. Throws std::runtime_error if the server
  /// hangs up mid-exchange.
  std::string exchange(std::string_view request_line);

  /// exchange() + parse. Throws std::runtime_error if the response is not
  /// valid JSON (a server bug by protocol contract).
  obs::JsonValue call(std::string_view request_line);

  /// Push raw bytes without framing (for tests that split a request
  /// across writes or send garbage).
  void send_raw(std::string_view bytes);

  /// Block for the next newline-terminated line. Throws on EOF.
  std::string read_line();

 private:
  int fd_ = -1;
  std::string buffer_;  ///< bytes read past the last returned line
};

}  // namespace netalign::server
