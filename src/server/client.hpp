// Minimal blocking client for the alignment daemon: one stream
// connection (AF_UNIX or TCP, server/transport.*), one JSON line out per
// request, one JSON line back per response (protocol in docs/SERVER.md).
// Used by the `netalign client` subcommand and by tests/test_server.cpp;
// the connection is persistent, so several requests can share one socket.
//
// The target is an endpoint spec -- `unix:<path>`, `tcp:<host>:<port>`,
// or a bare path (treated as a unix socket, back-compat with --socket).
// For TCP daemons, pass the auth token: every (re)connect replays the
// `auth` handshake before the caller's request, so reconnects stay
// transparent.
//
// With a RetryPolicy, a connection lost mid-exchange (the daemon was
// SIGKILLed, restarted, or is still coming back up) is retried with
// bounded exponential backoff + jitter instead of surfacing as an
// error. A retried request is re-sent verbatim, so retries are only
// safe for idempotent requests: reads always are, and `submit` is once
// it carries a `request_id` (the server answers a replay with the
// original job id). The `netalign client` subcommand stamps one
// automatically whenever retries are enabled.
#pragma once

#include <stdexcept>
#include <string>
#include <string_view>

#include "obs/json.hpp"
#include "server/transport.hpp"

namespace netalign::server {

/// Reconnect behavior for a lost daemon connection (`--retry N`,
/// `--retry-max-ms` on the CLI). The default (0 retries) preserves the
/// historical fail-fast behavior.
struct RetryPolicy {
  int retries = 0;          ///< reconnect attempts after a lost connection
  int max_backoff_ms = 2000;  ///< cap on the exponential backoff step
};

/// A connection-level failure that a RetryPolicy may transparently
/// retry: connect refused while the daemon restarts, EPIPE/ECONNRESET
/// on write, EOF or reset on read. Derives from std::runtime_error so
/// callers without a retry budget see exactly the historical errors.
class ConnectionLost : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

class ServerClient {
 public:
  /// Connect to the daemon at `target` (endpoint spec or bare unix
  /// path). `auth_token` (when nonempty) is presented via the `auth`
  /// method on every connect. Throws std::runtime_error if the endpoint
  /// cannot be reached within the retry budget, or on a rejected token
  /// (never retried -- a wrong token stays wrong).
  explicit ServerClient(const std::string& target, RetryPolicy retry = {},
                        std::string auth_token = {});
  ~ServerClient();

  ServerClient(const ServerClient&) = delete;
  ServerClient& operator=(const ServerClient&) = delete;

  /// Send one request line (newline appended here) and block for the
  /// matching response line. A lost connection is retried per the
  /// RetryPolicy (reconnect, re-auth, re-send the same line); once the
  /// budget is spent it throws std::runtime_error.
  std::string exchange(std::string_view request_line);

  /// exchange() + parse. Throws std::runtime_error if the response is not
  /// valid JSON (a server bug by protocol contract).
  obs::JsonValue call(std::string_view request_line);

  /// Push raw bytes without framing (for tests that split a request
  /// across writes or send garbage). Never retries.
  void send_raw(std::string_view bytes);

  /// Block for the next newline-terminated line. Throws on EOF. Never
  /// retries.
  std::string read_line();

 private:
  /// (Re)connect fd_ to the endpoint and run the auth handshake when a
  /// token is set. Throws ConnectionLost on a retryable failure,
  /// std::runtime_error otherwise (unreachable host, rejected token).
  void connect_now();
  /// Close fd_ and drop any buffered partial response.
  void drop_connection();

  Endpoint endpoint_;
  std::string target_;  ///< the spec as given, for error messages
  std::string auth_token_;
  RetryPolicy retry_;
  int fd_ = -1;
  std::string buffer_;  ///< bytes read past the last returned line
};

}  // namespace netalign::server
