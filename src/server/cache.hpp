// Content-addressed LRU cache of parsed problems and their squares
// backends -- the server-side answer to the dominant setup cost of every
// solve. A one-shot CLI run pays parse + squares construction (the
// |E_L|^2 candidate-pair enumeration) before the first iteration; the
// daemon pays it once per distinct (problem, squares mode) pair and
// serves every repeat job from memory.
//
// Keying is by content hash (FNV-1a 64 over the canonical .nap text), not
// by path or name: two submissions are the same problem iff their bytes
// are, which also makes the cache safe against a client rewriting a file
// between jobs. The squares mode is a *second* key dimension, appended
// internally as "<key>#<mode>": an implicit-mode entry caches only the
// parsed adjacency plus the row-pointer/cursor tables (rows re-enumerate
// per sweep), while an explicit entry caches the full CSR, so the two are
// different objects with very different footprints and must not alias.
// The journal/dedupe job key stays the pure content hash -- the mode is
// a solve parameter, not problem identity.
//
// Entries are immutable once built (`shared_ptr<const ...>`), so a job
// keeps its problem alive even if the LRU evicts the entry mid-run.
// Concurrent submitters of the same composite key share one build
// through a shared_future; different keys build concurrently.
#pragma once

#include <cstdint>
#include <future>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>

#include "netalign/problem.hpp"
#include "netalign/squares_view.hpp"
#include "obs/counters.hpp"

namespace netalign::server {

/// FNV-1a 64-bit over `bytes`.
[[nodiscard]] std::uint64_t fnv1a64(std::string_view bytes);

/// The cache key for a problem's canonical text: 16 lowercase hex chars.
[[nodiscard]] std::string content_key(std::string_view problem_text);

/// One cached problem: parsed instance + built squares backend. The
/// backend is always built with transpose support (the entry is shared
/// across solvers, and BP/MR need transposed reads even though IsoRank
/// does not).
struct CachedProblem {
  std::string key;   ///< content hash (no mode suffix)
  std::string mode;  ///< requested squares mode (explicit|implicit|auto)
  NetAlignProblem problem;
  SquaresBackend squares;
};

class ProblemCache {
 public:
  /// `capacity` >= 1 entries; the least-recently-used entry beyond it is
  /// evicted. `counters` (nullable) receives server.cache_hit /
  /// server.cache_miss / server.cache_evicted via add_concurrent.
  ProblemCache(std::size_t capacity, obs::Counters* counters);

  /// Entry for `key` under squares backend `options`, built from `text`
  /// (parse + squares) on a miss. `options.mode` may be kAuto: the
  /// resolution (by estimated explicit bytes vs the budget) is a
  /// deterministic function of the problem, so every waiter on the
  /// shared build sees the same backend. `hit` reports whether the setup
  /// cost was skipped (sharing an in-flight build counts as a hit).
  /// Thread-safe; rethrows the build error on a malformed problem, in
  /// which case nothing is cached.
  std::shared_ptr<const CachedProblem> get(const std::string& key,
                                           const std::string& text,
                                           const SquaresBackendOptions& options,
                                           bool& hit);

  /// Explicit-mode convenience overload (the pre-implicit behavior).
  std::shared_ptr<const CachedProblem> get(const std::string& key,
                                           const std::string& text, bool& hit);

  [[nodiscard]] std::size_t size() const;
  [[nodiscard]] std::size_t capacity() const { return capacity_; }

 private:
  using Future = std::shared_future<std::shared_ptr<const CachedProblem>>;
  struct Entry {
    Future future;
    std::list<std::string>::iterator pos;  // position in lru_
  };

  mutable std::mutex mutex_;
  std::size_t capacity_;
  obs::Counters* counters_;
  std::list<std::string> lru_;  // front = most recently used
  std::unordered_map<std::string, Entry> map_;
};

}  // namespace netalign::server
