// Content-addressed LRU cache of parsed problems and their squares
// matrices -- the server-side answer to the dominant setup cost of every
// solve. A one-shot CLI run pays parse + SquaresMatrix::build (the |E_L|^2
// candidate-pair enumeration) before the first iteration; the daemon pays
// it once per distinct problem and serves every repeat job from memory.
//
// Keying is by content hash (FNV-1a 64 over the canonical .nap text), not
// by path or name: two submissions are the same problem iff their bytes
// are, which also makes the cache safe against a client rewriting a file
// between jobs. Entries are immutable once built (`shared_ptr<const ...>`),
// so a job keeps its problem alive even if the LRU evicts the entry
// mid-run. Concurrent submitters of the same key share one build through
// a shared_future; different keys build concurrently.
#pragma once

#include <cstdint>
#include <future>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>

#include "netalign/problem.hpp"
#include "netalign/squares.hpp"
#include "obs/counters.hpp"

namespace netalign::server {

/// FNV-1a 64-bit over `bytes`.
[[nodiscard]] std::uint64_t fnv1a64(std::string_view bytes);

/// The cache key for a problem's canonical text: 16 lowercase hex chars.
[[nodiscard]] std::string content_key(std::string_view problem_text);

/// One cached problem: parsed instance + built squares matrix.
struct CachedProblem {
  std::string key;
  NetAlignProblem problem;
  SquaresMatrix S;
};

class ProblemCache {
 public:
  /// `capacity` >= 1 entries; the least-recently-used entry beyond it is
  /// evicted. `counters` (nullable) receives server.cache_hit /
  /// server.cache_miss / server.cache_evicted via add_concurrent.
  ProblemCache(std::size_t capacity, obs::Counters* counters);

  /// Entry for `key`, built from `text` (parse + squares) on a miss.
  /// `hit` reports whether the setup cost was skipped (sharing an
  /// in-flight build counts as a hit). Thread-safe; rethrows the build
  /// error on a malformed problem, in which case nothing is cached.
  std::shared_ptr<const CachedProblem> get(const std::string& key,
                                           const std::string& text,
                                           bool& hit);

  [[nodiscard]] std::size_t size() const;
  [[nodiscard]] std::size_t capacity() const { return capacity_; }

 private:
  using Future = std::shared_future<std::shared_ptr<const CachedProblem>>;
  struct Entry {
    Future future;
    std::list<std::string>::iterator pos;  // position in lru_
  };

  mutable std::mutex mutex_;
  std::size_t capacity_;
  obs::Counters* counters_;
  std::list<std::string> lru_;  // front = most recently used
  std::unordered_map<std::string, Entry> map_;
};

}  // namespace netalign::server
