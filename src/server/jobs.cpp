#include "server/jobs.hpp"

#include <algorithm>
#include <exception>
#include <filesystem>
#include <fstream>
#include <stdexcept>
#include <utility>

#include "dist/dist_bp.hpp"
#include "dist/dist_mr.hpp"
#include "netalign/belief_prop.hpp"
#include "netalign/isorank.hpp"
#include "netalign/klau_mr.hpp"
#include "netalign/rounding.hpp"
#include "obs/trace.hpp"

namespace netalign::server {

const char* to_string(JobState s) {
  switch (s) {
    case JobState::kQueued:
      return "queued";
    case JobState::kRunning:
      return "running";
    case JobState::kDone:
      return "done";
    case JobState::kFailed:
      return "failed";
    case JobState::kCancelled:
      return "cancelled";
  }
  return "?";
}

namespace {

/// DRR cost of a job: its iteration budget, the best a priori proxy for
/// worker time the scheduler has before the solve runs.
std::int64_t job_cost(const SubmitParams& spec) {
  return std::max<std::int64_t>(1, spec.iters);
}

}  // namespace

JobManager::JobManager(const JobManagerOptions& options, ProblemCache& cache,
                       obs::Counters* counters)
    : options_(options), cache_(cache), counters_(counters) {
  if (options_.workers < 1) {
    throw std::invalid_argument("JobManager: workers must be >= 1");
  }
  if (options_.work_dir.empty()) {
    throw std::invalid_argument("JobManager: work_dir is required");
  }
  if (options_.drr_quantum < 1) {
    throw std::invalid_argument("JobManager: drr_quantum must be >= 1");
  }
  if (options_.retained_cap < 1) {
    throw std::invalid_argument("JobManager: retained_cap must be >= 1");
  }
  options_.tenant_queue_cap =
      std::min(options_.tenant_queue_cap, options_.queue_cap);
  if (options_.tenant_queue_cap < 1) {
    throw std::invalid_argument("JobManager: tenant_queue_cap must be >= 1");
  }
  std::filesystem::create_directories(options_.work_dir);
  workers_.reserve(static_cast<std::size_t>(options_.workers));
  for (int i = 0; i < options_.workers; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

JobManager::~JobManager() { shutdown(true); }

JobManager::SubmitOutcome JobManager::submit(SubmitParams spec) {
  SubmitOutcome out;
  if (!spec.problem_path.empty()) {
    // Only *stat* the path here: submit runs on the server's single
    // I/O thread, and reading an arbitrarily large (or slow) file would
    // stall every connection. The worker reads the bytes in run_job and
    // re-keys the job from the content; until then the key is a
    // provisional path+mtime hash. The stat itself can still block on a
    // pathological mount, so docs/SERVER.md requires problem_path to
    // live on responsive local storage.
    std::error_code ec;
    const auto status = std::filesystem::status(spec.problem_path, ec);
    if (ec || !std::filesystem::exists(status)) {
      out.code = ErrorCode::kBadRequest;
      out.message = "cannot open problem_path " + spec.problem_path;
      return out;
    }
    if (!std::filesystem::is_regular_file(status)) {
      // A FIFO would block the worker at open (possibly forever, with
      // no writer); a directory or device makes no sense either.
      out.code = ErrorCode::kBadRequest;
      out.message =
          "problem_path " + spec.problem_path + " is not a regular file";
      return out;
    }
    const auto mtime = std::filesystem::last_write_time(spec.problem_path, ec);
    const auto ticks = ec ? 0 : mtime.time_since_epoch().count();
    out.key = content_key(spec.problem_path + "\n" + std::to_string(ticks));
    out.key_provisional = true;
  } else {
    out.key = content_key(spec.problem_text);
  }

  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (draining_ || stopping_) {
      out.code = ErrorCode::kShuttingDown;
      out.message = "server is shutting down";
      return out;
    }
    if (queued_total_ >= options_.queue_cap) {
      out.code = ErrorCode::kRejected;
      out.message = "job queue at capacity (" +
                    std::to_string(options_.queue_cap) + " queued)";
      if (counters_ != nullptr) {
        counters_->add_concurrent("server.jobs_rejected");
      }
      return out;
    }
    const std::string tenant =
        spec.tenant.empty() ? kDefaultTenant : spec.tenant;
    Tenant& bucket = tenants_[tenant];
    if (bucket.queue.size() >= options_.tenant_queue_cap) {
      out.code = ErrorCode::kQuotaExceeded;
      out.message = "tenant '" + tenant + "' at its queued-jobs quota (" +
                    std::to_string(options_.tenant_queue_cap) + ")";
      if (counters_ != nullptr) {
        counters_->add_concurrent("server.jobs_quota_exceeded");
      }
      return out;
    }
    auto job = std::make_shared<Job>();
    job->id = next_id_++;
    job->spec = std::move(spec);
    job->tenant = tenant;
    job->key = out.key;
    job->trace_path = options_.work_dir + "/job-" + std::to_string(job->id) +
                      ".trace.jsonl";
    job->tail = std::make_unique<obs::JsonlTailReader>(job->trace_path);
    out.accepted = true;
    out.job = job->id;
    if (bucket.queue.empty()) active_tenants_.push_back(tenant);
    bucket.queue.push_back(job->id);
    ++queued_total_;
    jobs_.emplace(job->id, std::move(job));
    if (counters_ != nullptr) {
      counters_->add_concurrent("server.jobs_accepted");
    }
  }
  work_available_.notify_one();
  return out;
}

bool JobManager::has_eligible_locked() const {
  for (const std::string& name : active_tenants_) {
    const Tenant& t = tenants_.at(name);
    if (options_.tenant_running_cap <= 0 ||
        t.running < options_.tenant_running_cap) {
      return true;
    }
  }
  return false;
}

std::int64_t JobManager::pop_next_locked() {
  // Conceptually each DRR pass grants every eligible tenant one quantum
  // and runs the first tenant whose deficit covers its head job's cost.
  // Iterating that literally would spin ceil(cost / quantum) passes
  // under mutex_ with a client-controlled cost, so compute the winning
  // pass in closed form: per tenant, the number of whole passes until
  // its deficit would cover its head job, then jump straight there.
  const std::int64_t quantum = options_.drr_quantum;
  const std::size_t none = active_tenants_.size();
  std::size_t winner = none;
  std::int64_t win_passes = 0;
  for (std::size_t i = 0; i < active_tenants_.size(); ++i) {
    const Tenant& t = tenants_.at(active_tenants_[i]);
    if (options_.tenant_running_cap > 0 &&
        t.running >= options_.tenant_running_cap) {
      continue;  // at its running cap: not part of this scheduling round
    }
    const std::int64_t cost = job_cost(jobs_.at(t.queue.front())->spec);
    // Every pass adds the quantum *before* the deficit >= cost test, so
    // even an already-covered tenant needs one pass.
    const std::int64_t need = cost - t.deficit;
    const std::int64_t passes =
        need <= 0 ? 1 : (need + quantum - 1) / quantum;
    if (winner == none || passes < win_passes) {
      winner = i;  // ties go to the earlier rotation position
      win_passes = passes;
    }
  }
  if (winner == none) return -1;
  // Replay the grants those passes imply: tenants at or before the
  // winner's rotation position saw the final pass, later ones did not.
  for (std::size_t i = 0; i < active_tenants_.size(); ++i) {
    Tenant& t = tenants_.at(active_tenants_[i]);
    if (options_.tenant_running_cap > 0 &&
        t.running >= options_.tenant_running_cap) {
      continue;
    }
    t.deficit += (i <= winner ? win_passes : win_passes - 1) * quantum;
  }
  const std::string name = active_tenants_[winner];
  Tenant& t = tenants_.at(name);
  const std::int64_t id = t.queue.front();
  t.deficit -= job_cost(jobs_.at(id)->spec);
  t.queue.pop_front();
  --queued_total_;
  ++t.running;
  active_tenants_.erase(active_tenants_.begin() +
                        static_cast<std::ptrdiff_t>(winner));
  if (t.queue.empty()) {
    t.deficit = 0;  // classic DRR: no hoarding credit while idle
  } else {
    active_tenants_.push_back(name);  // to the back of the rotation
  }
  return id;
}

void JobManager::worker_loop() {
  for (;;) {
    std::shared_ptr<Job> job;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      // During a drain shutdown (stopping_ with jobs still queued) a
      // worker keeps draining; it exits only once the queue is empty.
      work_available_.wait(lock, [this] {
        return (stopping_ && queued_total_ == 0) || has_eligible_locked();
      });
      if (stopping_ && queued_total_ == 0) return;
      const std::int64_t id = pop_next_locked();
      if (id < 0) continue;  // lost the race for the job that woke us
      job = jobs_.at(id);
      job->state = JobState::kRunning;
      ++running_;
    }
    run_job(*job);
    std::vector<std::string> doomed;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      --running_;
      --tenants_.at(job->tenant).running;
      doomed = mark_terminal_locked(*job);
    }
    for (const std::string& path : doomed) {
      std::error_code ec;
      std::filesystem::remove(path, ec);
    }
    // A tenant blocked on its running cap may be runnable now.
    work_available_.notify_all();
    job_finished_.notify_all();
  }
}

namespace {

/// Run the solver named by `spec` exactly as the one-shot CLI would, so
/// server answers are bit-identical to `netalign align` (check_server.sh
/// byte-compares the two).
AlignResult run_solver(const SubmitParams& spec, const CachedProblem& cp,
                       const SolveBudget& budget, obs::TraceWriter* trace,
                       obs::Counters* counters) {
  const MatcherKind matcher = matcher_from_string(spec.matcher);
  const int iters = static_cast<int>(spec.iters);
  if (spec.solver == "bp") {
    BeliefPropOptions opt;
    opt.max_iterations = iters;
    opt.matcher = matcher;
    opt.batch_size = static_cast<int>(spec.batch);
    if (spec.gamma > 0.0) opt.gamma = spec.gamma;
    opt.trace = trace;
    opt.counters = counters;
    opt.budget = budget;
    return belief_prop_align(cp.problem, cp.S, opt);
  }
  if (spec.solver == "mr") {
    KlauMrOptions opt;
    opt.max_iterations = iters;
    opt.matcher = matcher;
    if (spec.gamma > 0.0) opt.gamma = spec.gamma;
    opt.trace = trace;
    opt.counters = counters;
    opt.budget = budget;
    return klau_mr_align(cp.problem, cp.S, opt);
  }
  if (spec.solver == "isorank") {
    IsoRankOptions opt;
    opt.max_iterations = iters;
    opt.matcher = matcher;
    if (spec.gamma > 0.0) opt.gamma = spec.gamma;
    opt.trace = trace;
    opt.counters = counters;
    opt.budget = budget;
    return isorank_align(cp.problem, cp.S, opt);
  }
  if (spec.solver == "dist-bp") {
    dist::DistBpOptions opt;
    opt.num_ranks = static_cast<int>(spec.ranks);
    opt.max_iterations = iters;
    opt.matcher = matcher;
    if (spec.gamma > 0.0) opt.gamma = spec.gamma;
    opt.trace = trace;
    opt.counters = counters;
    opt.budget = budget;
    return dist::distributed_belief_prop_align(cp.problem, cp.S, opt);
  }
  if (spec.solver == "dist-mr") {
    dist::DistMrOptions opt;
    opt.num_ranks = static_cast<int>(spec.ranks);
    opt.max_iterations = iters;
    if (spec.gamma > 0.0) opt.gamma = spec.gamma;
    opt.trace = trace;
    opt.counters = counters;
    opt.budget = budget;
    return dist::distributed_klau_mr_align(cp.problem, cp.S, opt);
  }
  throw std::invalid_argument("unknown solver '" + spec.solver + "'");
}

}  // namespace

void JobManager::run_job(Job& job) {
  auto fail = [&](const std::string& why) {
    std::lock_guard<std::mutex> lock(mutex_);
    job.state = JobState::kFailed;
    job.error = why;
    if (counters_ != nullptr) {
      counters_->add_concurrent("server.jobs_failed");
    }
  };

  if (!job.spec.problem_path.empty()) {
    // Deferred from submit: this is a worker thread, where a slow read
    // stalls nothing but this job. Re-check the file type right before
    // opening (the submit-time check races with replacement, and opening
    // a writer-less FIFO would block forever), then read in chunks so a
    // cancel interrupts a read off slow storage and the byte cap holds
    // even if the file grows underneath us.
    std::error_code ec;
    if (!std::filesystem::is_regular_file(job.spec.problem_path, ec)) {
      fail("problem_path " + job.spec.problem_path +
           " is not a regular file");
      return;
    }
    std::ifstream in(job.spec.problem_path, std::ios::binary);
    if (!in) {
      fail("cannot open problem_path " + job.spec.problem_path);
      return;
    }
    std::string bytes;
    char buf[1u << 16];
    for (;;) {
      if (job.cancel.load(std::memory_order_relaxed)) {
        std::lock_guard<std::mutex> lock(mutex_);
        job.state = JobState::kCancelled;
        if (counters_ != nullptr) {
          counters_->add_concurrent("server.jobs_cancelled");
        }
        return;
      }
      in.read(buf, sizeof(buf));
      const auto n = static_cast<std::size_t>(in.gcount());
      if (bytes.size() + n > options_.max_problem_bytes) {
        fail("problem_path " + job.spec.problem_path + " exceeds " +
             std::to_string(options_.max_problem_bytes) + " bytes");
        return;
      }
      bytes.append(buf, n);
      if (in.eof()) break;
      if (!in) {
        fail("read error on problem_path " + job.spec.problem_path);
        return;
      }
    }
    const std::string key = content_key(bytes);
    std::lock_guard<std::mutex> lock(mutex_);
    job.spec.problem_text = std::move(bytes);
    job.spec.problem_path.clear();
    job.key = key;  // re-key from bytes: path submissions dedupe with inline
  }

  std::shared_ptr<const CachedProblem> cp;
  bool hit = false;
  try {
    cp = cache_.get(job.key, job.spec.problem_text, hit);
  } catch (const std::exception& e) {
    fail(std::string("problem rejected: ") + e.what());
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    job.cache_hit = hit;
  }

  try {
    obs::TraceWriter trace(job.trace_path);
    obs::Counters run_counters;
    trace.run_start(job.spec.solver, {{"problem", cp->problem.name},
                                      {"matcher", job.spec.matcher},
                                      {"iters", job.spec.iters},
                                      {"job", job.id},
                                      {"tenant", job.tenant},
                                      {"cache", hit ? "hit" : "miss"}});
    SolveBudget budget;
    budget.deadline_seconds = job.spec.deadline_seconds;
    budget.cancel_flag = &job.cancel;
    const AlignResult r =
        run_solver(job.spec, *cp, budget, &trace, &run_counters);
    trace.run_end(r.total_seconds, r.value.objective, r.best_iteration,
                  &run_counters,
                  {{"stopped_reason", to_string(r.stopped_reason)},
                   {"iterations_completed", r.iterations_completed}});

    JobResult jr;
    jr.has_result = true;
    jr.stopped_reason = to_string(r.stopped_reason);
    jr.objective = r.value.objective;
    jr.weight = r.value.weight;
    jr.overlap = r.value.overlap;
    jr.cardinality = r.matching.cardinality;
    jr.best_iteration = r.best_iteration;
    jr.iterations_completed = r.iterations_completed;
    jr.total_seconds = r.total_seconds;
    jr.cache_hit = hit;
    jr.problem_name = cp->problem.name;
    jr.num_a = static_cast<std::int64_t>(r.matching.mate_a.size());
    jr.num_b = static_cast<std::int64_t>(r.matching.mate_b.size());
    jr.pairs.reserve(static_cast<std::size_t>(r.matching.cardinality));
    for (std::size_t a = 0; a < r.matching.mate_a.size(); ++a) {
      if (r.matching.mate_a[a] != kInvalidVid) {
        jr.pairs.emplace_back(static_cast<vid_t>(a), r.matching.mate_a[a]);
      }
    }

    std::lock_guard<std::mutex> lock(mutex_);
    const bool cancelled = r.stopped_reason == StopReason::kCancelled;
    job.state = cancelled ? JobState::kCancelled : JobState::kDone;
    job.has_result = true;
    jr.state = job.state;
    job.result = std::move(jr);
    if (counters_ != nullptr) {
      counters_->add_concurrent(cancelled ? "server.jobs_cancelled"
                                          : "server.jobs_completed");
    }
  } catch (const std::exception& e) {
    fail(std::string("solve failed: ") + e.what());
  }
}

std::vector<std::string> JobManager::mark_terminal_locked(Job& job) {
  ++tenants_[job.tenant].completed;
  if (!job.in_lru) {
    retained_lru_.push_back(job.id);
    job.lru_pos = std::prev(retained_lru_.end());
    job.in_lru = true;
  }
  // LRU eviction beyond the retention cap: the state-map entry, the
  // buffered events, and the on-disk trace are reclaimed together. The
  // unlink itself happens after mutex_ is released (callers own that).
  std::vector<std::string> doomed;
  while (retained_lru_.size() > options_.retained_cap) {
    const std::int64_t victim = retained_lru_.front();
    retained_lru_.pop_front();
    const auto it = jobs_.find(victim);
    if (it != jobs_.end()) {
      doomed.push_back(it->second->trace_path);
      it->second->in_lru = false;
      jobs_.erase(it);
    }
    ++evicted_;
    if (counters_ != nullptr) {
      counters_->add_concurrent("server.jobs_evicted");
    }
  }
  return doomed;
}

void JobManager::touch_locked(Job& job) {
  if (!job.in_lru) return;
  retained_lru_.splice(retained_lru_.end(), retained_lru_, job.lru_pos);
  job.lru_pos = std::prev(retained_lru_.end());
}

void JobManager::drain_tail(Job& job) {
  std::lock_guard<std::mutex> guard(job.tail_mutex);
  if (!job.tail) return;
  obs::JsonValue event;
  while (job.tail->next(event) == obs::JsonlTailReader::Status::kEvent) {
    std::string compact;
    obs::write_json(compact, event);
    job.events.push_back(std::move(compact));
    const obs::JsonValue* type = event.find("event");
    if (type == nullptr || !type->is_string()) continue;
    if (type->as_string() == "iteration") {
      ++job.iterations_seen;
    } else if (type->as_string() == "round") {
      ++job.rounds_seen;
      if (const obs::JsonValue* obj = event.find("objective");
          obj != nullptr && obj->is_number()) {
        job.last_objective = obj->as_number();
      }
    }
  }
  // kPending / kTruncatedTail: the writer is mid-line; poll again later.
  // kMalformed cannot happen for a file this process is writing.
}

std::shared_ptr<JobManager::Job> JobManager::find(std::int64_t id) {
  const auto it = jobs_.find(id);
  return it == jobs_.end() ? nullptr : it->second;
}

bool JobManager::expired(std::int64_t id) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return id >= 1 && id < next_id_ && jobs_.find(id) == jobs_.end();
}

std::optional<JobManager::JobStatus> JobManager::status(std::int64_t id) {
  std::shared_ptr<Job> job;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    job = find(id);
    if (job) touch_locked(*job);
  }
  if (job == nullptr) return std::nullopt;
  drain_tail(*job);

  std::lock_guard<std::mutex> lock(mutex_);
  JobStatus s;
  s.id = job->id;
  s.state = job->state;
  s.tag = job->spec.tag;
  s.tenant = job->tenant;
  s.key = job->key;
  s.solver = job->spec.solver;
  s.cache_hit = job->cache_hit;
  if (job->state == JobState::kQueued) {
    const auto it = tenants_.find(job->tenant);
    if (it != tenants_.end()) {
      const auto& queue = it->second.queue;
      for (std::size_t i = 0; i < queue.size(); ++i) {
        if (queue[i] == id) {
          s.queue_position = static_cast<std::int64_t>(i);
          break;
        }
      }
    }
  }
  {
    std::lock_guard<std::mutex> guard(job->tail_mutex);
    s.iterations = job->iterations_seen;
    s.rounds = job->rounds_seen;
    s.last_objective = job->last_objective;
  }
  s.error = job->error;
  return s;
}

std::optional<JobManager::JobProgress> JobManager::progress(
    std::int64_t id, std::int64_t cursor) {
  std::shared_ptr<Job> job;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    job = find(id);
    if (job) touch_locked(*job);
  }
  if (job == nullptr) return std::nullopt;
  drain_tail(*job);

  JobProgress p;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    p.state = job->state;
  }
  std::lock_guard<std::mutex> guard(job->tail_mutex);
  const auto total = static_cast<std::int64_t>(job->events.size());
  const std::int64_t from = std::min(cursor, total);
  p.events.assign(job->events.begin() + from, job->events.end());
  p.next_cursor = total;
  return p;
}

std::optional<JobManager::JobResult> JobManager::result(std::int64_t id) {
  std::lock_guard<std::mutex> lock(mutex_);
  const std::shared_ptr<Job> job = find(id);
  if (job == nullptr) return std::nullopt;
  touch_locked(*job);
  if (job->has_result) {
    return job->result;  // copy; jobs are immutable once terminal
  }
  JobResult r;
  r.state = job->state;
  r.has_result = false;
  r.error = job->error;
  r.cache_hit = job->cache_hit;
  return r;
}

JobManager::CancelOutcome JobManager::cancel(std::int64_t id) {
  std::vector<std::string> doomed;
  CancelOutcome out;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    const std::shared_ptr<Job> job = find(id);
    if (job == nullptr) return {};
    out.found = true;
    if (job->state == JobState::kQueued) {
      Tenant& t = tenants_.at(job->tenant);
      const auto it = std::find(t.queue.begin(), t.queue.end(), id);
      if (it != t.queue.end()) {
        t.queue.erase(it);
        --queued_total_;
        if (t.queue.empty()) {
          t.deficit = 0;
          std::erase(active_tenants_, job->tenant);
        }
      }
      job->state = JobState::kCancelled;
      if (counters_ != nullptr) {
        counters_->add_concurrent("server.jobs_cancelled");
      }
      doomed = mark_terminal_locked(*job);
    } else if (job->state == JobState::kRunning) {
      // Latch the budget's cancel flag; the solver stops at its next
      // iteration boundary and the job finishes as kCancelled with its
      // best-so-far matching. Until then the state honestly stays running.
      job->cancel.store(true, std::memory_order_relaxed);
    }
    out.state = job->state;
  }
  for (const std::string& path : doomed) {
    std::error_code ec;
    std::filesystem::remove(path, ec);
  }
  return out;
}

JobManager::QueueStats JobManager::queue_stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  QueueStats s;
  s.queued = static_cast<std::int64_t>(queued_total_);
  s.running = running_;
  s.total_jobs = next_id_ - 1;
  s.workers = options_.workers;
  s.queue_cap = static_cast<std::int64_t>(options_.queue_cap);
  s.tenant_queue_cap = static_cast<std::int64_t>(options_.tenant_queue_cap);
  s.tenant_running_cap = options_.tenant_running_cap;
  s.retained = static_cast<std::int64_t>(retained_lru_.size());
  s.retained_cap = static_cast<std::int64_t>(options_.retained_cap);
  s.evicted = evicted_;
  for (const auto& [name, t] : tenants_) {
    if (t.queue.empty() && t.running == 0 && t.completed == 0) continue;
    TenantStats ts;
    ts.tenant = name;
    ts.queued = static_cast<std::int64_t>(t.queue.size());
    ts.running = t.running;
    ts.completed = t.completed;
    s.tenants.push_back(std::move(ts));
  }
  return s;
}

void JobManager::begin_drain() {
  std::lock_guard<std::mutex> lock(mutex_);
  draining_ = true;
}

bool JobManager::draining() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return draining_ || stopping_;
}

bool JobManager::idle() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return queued_total_ == 0 && running_ == 0;
}

void JobManager::shutdown(bool cancel_running) {
  std::vector<std::string> doomed;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    draining_ = true;
    stopping_ = true;
    if (cancel_running) {
      for (auto& [name, t] : tenants_) {
        for (const std::int64_t id : t.queue) {
          Job& job = *jobs_.at(id);
          job.state = JobState::kCancelled;
          if (counters_ != nullptr) {
            counters_->add_concurrent("server.jobs_cancelled");
          }
          auto paths = mark_terminal_locked(job);
          doomed.insert(doomed.end(), paths.begin(), paths.end());
        }
        t.queue.clear();
        t.deficit = 0;
      }
      queued_total_ = 0;
      active_tenants_.clear();
      for (auto& [id, job] : jobs_) {
        if (job->state == JobState::kRunning) {
          job->cancel.store(true, std::memory_order_relaxed);
        }
      }
    }
  }
  for (const std::string& path : doomed) {
    std::error_code ec;
    std::filesystem::remove(path, ec);
  }
  work_available_.notify_all();
  for (auto& w : workers_) {
    if (w.joinable()) w.join();
  }
  workers_.clear();
}

}  // namespace netalign::server
