#include "server/jobs.hpp"

#include <exception>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "dist/dist_bp.hpp"
#include "dist/dist_mr.hpp"
#include "netalign/belief_prop.hpp"
#include "netalign/isorank.hpp"
#include "netalign/klau_mr.hpp"
#include "netalign/rounding.hpp"
#include "obs/trace.hpp"

namespace netalign::server {

const char* to_string(JobState s) {
  switch (s) {
    case JobState::kQueued:
      return "queued";
    case JobState::kRunning:
      return "running";
    case JobState::kDone:
      return "done";
    case JobState::kFailed:
      return "failed";
    case JobState::kCancelled:
      return "cancelled";
  }
  return "?";
}

JobManager::JobManager(const JobManagerOptions& options, ProblemCache& cache,
                       obs::Counters* counters)
    : options_(options), cache_(cache), counters_(counters) {
  if (options_.workers < 1) {
    throw std::invalid_argument("JobManager: workers must be >= 1");
  }
  if (options_.work_dir.empty()) {
    throw std::invalid_argument("JobManager: work_dir is required");
  }
  std::filesystem::create_directories(options_.work_dir);
  workers_.reserve(static_cast<std::size_t>(options_.workers));
  for (int i = 0; i < options_.workers; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

JobManager::~JobManager() { shutdown(true); }

JobManager::SubmitOutcome JobManager::submit(SubmitParams spec) {
  SubmitOutcome out;
  if (!spec.problem_path.empty()) {
    std::ifstream in(spec.problem_path, std::ios::binary);
    if (!in) {
      out.code = ErrorCode::kBadRequest;
      out.message = "cannot open problem_path " + spec.problem_path;
      return out;
    }
    std::ostringstream ss;
    ss << in.rdbuf();
    spec.problem_text = ss.str();
    spec.problem_path.clear();
  }
  out.key = content_key(spec.problem_text);

  std::lock_guard<std::mutex> lock(mutex_);
  if (draining_ || stopping_) {
    out.code = ErrorCode::kShuttingDown;
    out.message = "server is shutting down";
    return out;
  }
  if (pending_.size() >= options_.queue_cap) {
    out.code = ErrorCode::kRejected;
    out.message = "job queue at capacity (" +
                  std::to_string(options_.queue_cap) + " queued)";
    if (counters_ != nullptr) {
      counters_->add_concurrent("server.jobs_rejected");
    }
    return out;
  }
  auto job = std::make_unique<Job>();
  job->id = next_id_++;
  job->spec = std::move(spec);
  job->key = out.key;
  job->trace_path = options_.work_dir + "/job-" + std::to_string(job->id) +
                    ".trace.jsonl";
  job->tail = std::make_unique<obs::JsonlTailReader>(job->trace_path);
  out.accepted = true;
  out.job = job->id;
  pending_.push_back(job->id);
  jobs_.emplace(job->id, std::move(job));
  if (counters_ != nullptr) {
    counters_->add_concurrent("server.jobs_accepted");
  }
  work_available_.notify_one();
  return out;
}

void JobManager::worker_loop() {
  for (;;) {
    Job* job = nullptr;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_available_.wait(lock,
                           [this] { return stopping_ || !pending_.empty(); });
      if (pending_.empty()) return;  // stopping_, queue drained
      const std::int64_t id = pending_.front();
      pending_.pop_front();
      job = jobs_.at(id).get();
      job->state = JobState::kRunning;
      ++running_;
    }
    run_job(*job);
    {
      std::lock_guard<std::mutex> lock(mutex_);
      --running_;
    }
    job_finished_.notify_all();
  }
}

namespace {

/// Run the solver named by `spec` exactly as the one-shot CLI would, so
/// server answers are bit-identical to `netalign align` (check_server.sh
/// byte-compares the two).
AlignResult run_solver(const SubmitParams& spec, const CachedProblem& cp,
                       const SolveBudget& budget, obs::TraceWriter* trace,
                       obs::Counters* counters) {
  const MatcherKind matcher = matcher_from_string(spec.matcher);
  const int iters = static_cast<int>(spec.iters);
  if (spec.solver == "bp") {
    BeliefPropOptions opt;
    opt.max_iterations = iters;
    opt.matcher = matcher;
    opt.batch_size = static_cast<int>(spec.batch);
    if (spec.gamma > 0.0) opt.gamma = spec.gamma;
    opt.trace = trace;
    opt.counters = counters;
    opt.budget = budget;
    return belief_prop_align(cp.problem, cp.S, opt);
  }
  if (spec.solver == "mr") {
    KlauMrOptions opt;
    opt.max_iterations = iters;
    opt.matcher = matcher;
    if (spec.gamma > 0.0) opt.gamma = spec.gamma;
    opt.trace = trace;
    opt.counters = counters;
    opt.budget = budget;
    return klau_mr_align(cp.problem, cp.S, opt);
  }
  if (spec.solver == "isorank") {
    IsoRankOptions opt;
    opt.max_iterations = iters;
    opt.matcher = matcher;
    if (spec.gamma > 0.0) opt.gamma = spec.gamma;
    opt.trace = trace;
    opt.counters = counters;
    opt.budget = budget;
    return isorank_align(cp.problem, cp.S, opt);
  }
  if (spec.solver == "dist-bp") {
    dist::DistBpOptions opt;
    opt.num_ranks = static_cast<int>(spec.ranks);
    opt.max_iterations = iters;
    opt.matcher = matcher;
    if (spec.gamma > 0.0) opt.gamma = spec.gamma;
    opt.trace = trace;
    opt.counters = counters;
    opt.budget = budget;
    return dist::distributed_belief_prop_align(cp.problem, cp.S, opt);
  }
  if (spec.solver == "dist-mr") {
    dist::DistMrOptions opt;
    opt.num_ranks = static_cast<int>(spec.ranks);
    opt.max_iterations = iters;
    if (spec.gamma > 0.0) opt.gamma = spec.gamma;
    opt.trace = trace;
    opt.counters = counters;
    opt.budget = budget;
    return dist::distributed_klau_mr_align(cp.problem, cp.S, opt);
  }
  throw std::invalid_argument("unknown solver '" + spec.solver + "'");
}

}  // namespace

void JobManager::run_job(Job& job) {
  auto fail = [&](const std::string& why) {
    std::lock_guard<std::mutex> lock(mutex_);
    job.state = JobState::kFailed;
    job.error = why;
    if (counters_ != nullptr) {
      counters_->add_concurrent("server.jobs_failed");
    }
  };

  std::shared_ptr<const CachedProblem> cp;
  bool hit = false;
  try {
    cp = cache_.get(job.key, job.spec.problem_text, hit);
  } catch (const std::exception& e) {
    fail(std::string("problem rejected: ") + e.what());
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    job.cache_hit = hit;
  }

  try {
    obs::TraceWriter trace(job.trace_path);
    obs::Counters run_counters;
    trace.run_start(job.spec.solver, {{"problem", cp->problem.name},
                                      {"matcher", job.spec.matcher},
                                      {"iters", job.spec.iters},
                                      {"job", job.id},
                                      {"cache", hit ? "hit" : "miss"}});
    SolveBudget budget;
    budget.deadline_seconds = job.spec.deadline_seconds;
    budget.cancel_flag = &job.cancel;
    const AlignResult r =
        run_solver(job.spec, *cp, budget, &trace, &run_counters);
    trace.run_end(r.total_seconds, r.value.objective, r.best_iteration,
                  &run_counters,
                  {{"stopped_reason", to_string(r.stopped_reason)},
                   {"iterations_completed", r.iterations_completed}});

    JobResult jr;
    jr.has_result = true;
    jr.stopped_reason = to_string(r.stopped_reason);
    jr.objective = r.value.objective;
    jr.weight = r.value.weight;
    jr.overlap = r.value.overlap;
    jr.cardinality = r.matching.cardinality;
    jr.best_iteration = r.best_iteration;
    jr.iterations_completed = r.iterations_completed;
    jr.total_seconds = r.total_seconds;
    jr.cache_hit = hit;
    jr.problem_name = cp->problem.name;
    jr.num_a = static_cast<std::int64_t>(r.matching.mate_a.size());
    jr.num_b = static_cast<std::int64_t>(r.matching.mate_b.size());
    jr.pairs.reserve(static_cast<std::size_t>(r.matching.cardinality));
    for (std::size_t a = 0; a < r.matching.mate_a.size(); ++a) {
      if (r.matching.mate_a[a] != kInvalidVid) {
        jr.pairs.emplace_back(static_cast<vid_t>(a), r.matching.mate_a[a]);
      }
    }

    std::lock_guard<std::mutex> lock(mutex_);
    const bool cancelled = r.stopped_reason == StopReason::kCancelled;
    job.state = cancelled ? JobState::kCancelled : JobState::kDone;
    job.has_result = true;
    jr.state = job.state;
    job.result = std::move(jr);
    if (counters_ != nullptr) {
      counters_->add_concurrent(cancelled ? "server.jobs_cancelled"
                                          : "server.jobs_completed");
    }
  } catch (const std::exception& e) {
    fail(std::string("solve failed: ") + e.what());
  }
}

void JobManager::drain_tail(Job& job) {
  std::lock_guard<std::mutex> guard(job.tail_mutex);
  if (!job.tail) return;
  obs::JsonValue event;
  while (job.tail->next(event) == obs::JsonlTailReader::Status::kEvent) {
    std::string compact;
    obs::write_json(compact, event);
    job.events.push_back(std::move(compact));
    const obs::JsonValue* type = event.find("event");
    if (type == nullptr || !type->is_string()) continue;
    if (type->as_string() == "iteration") {
      ++job.iterations_seen;
    } else if (type->as_string() == "round") {
      ++job.rounds_seen;
      if (const obs::JsonValue* obj = event.find("objective");
          obj != nullptr && obj->is_number()) {
        job.last_objective = obj->as_number();
      }
    }
  }
  // kPending / kTruncatedTail: the writer is mid-line; poll again later.
  // kMalformed cannot happen for a file this process is writing.
}

JobManager::Job* JobManager::find(std::int64_t id) {
  const auto it = jobs_.find(id);
  return it == jobs_.end() ? nullptr : it->second.get();
}

std::optional<JobManager::JobStatus> JobManager::status(std::int64_t id) {
  Job* job = nullptr;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    job = find(id);
  }
  if (job == nullptr) return std::nullopt;
  drain_tail(*job);

  std::lock_guard<std::mutex> lock(mutex_);
  JobStatus s;
  s.id = job->id;
  s.state = job->state;
  s.tag = job->spec.tag;
  s.key = job->key;
  s.solver = job->spec.solver;
  s.cache_hit = job->cache_hit;
  if (job->state == JobState::kQueued) {
    for (std::size_t i = 0; i < pending_.size(); ++i) {
      if (pending_[i] == id) {
        s.queue_position = static_cast<std::int64_t>(i);
        break;
      }
    }
  }
  {
    std::lock_guard<std::mutex> guard(job->tail_mutex);
    s.iterations = job->iterations_seen;
    s.rounds = job->rounds_seen;
    s.last_objective = job->last_objective;
  }
  s.error = job->error;
  return s;
}

std::optional<JobManager::JobProgress> JobManager::progress(
    std::int64_t id, std::int64_t cursor) {
  Job* job = nullptr;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    job = find(id);
  }
  if (job == nullptr) return std::nullopt;
  drain_tail(*job);

  JobProgress p;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    p.state = job->state;
  }
  std::lock_guard<std::mutex> guard(job->tail_mutex);
  const auto total = static_cast<std::int64_t>(job->events.size());
  const std::int64_t from = std::min(cursor, total);
  p.events.assign(job->events.begin() + from, job->events.end());
  p.next_cursor = total;
  return p;
}

std::optional<JobManager::JobResult> JobManager::result(std::int64_t id) {
  std::lock_guard<std::mutex> lock(mutex_);
  Job* job = find(id);
  if (job == nullptr) return std::nullopt;
  if (job->has_result) {
    return job->result;  // copy; jobs are immutable once terminal
  }
  JobResult r;
  r.state = job->state;
  r.has_result = false;
  r.error = job->error;
  r.cache_hit = job->cache_hit;
  return r;
}

JobManager::CancelOutcome JobManager::cancel(std::int64_t id) {
  std::lock_guard<std::mutex> lock(mutex_);
  Job* job = find(id);
  if (job == nullptr) return {};
  CancelOutcome out;
  out.found = true;
  if (job->state == JobState::kQueued) {
    std::erase(pending_, id);
    job->state = JobState::kCancelled;
    if (counters_ != nullptr) {
      counters_->add_concurrent("server.jobs_cancelled");
    }
  } else if (job->state == JobState::kRunning) {
    // Latch the budget's cancel flag; the solver stops at its next
    // iteration boundary and the job finishes as kCancelled with its
    // best-so-far result. Until then the state honestly stays running.
    job->cancel.store(true, std::memory_order_relaxed);
  }
  out.state = job->state;
  return out;
}

JobManager::QueueStats JobManager::queue_stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  QueueStats s;
  s.queued = static_cast<std::int64_t>(pending_.size());
  s.running = running_;
  s.total_jobs = next_id_ - 1;
  s.workers = options_.workers;
  s.queue_cap = static_cast<std::int64_t>(options_.queue_cap);
  return s;
}

void JobManager::begin_drain() {
  std::lock_guard<std::mutex> lock(mutex_);
  draining_ = true;
}

bool JobManager::draining() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return draining_ || stopping_;
}

bool JobManager::idle() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return pending_.empty() && running_ == 0;
}

void JobManager::shutdown(bool cancel_running) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    draining_ = true;
    stopping_ = true;
    if (cancel_running) {
      for (const std::int64_t id : pending_) {
        Job* job = jobs_.at(id).get();
        job->state = JobState::kCancelled;
        if (counters_ != nullptr) {
          counters_->add_concurrent("server.jobs_cancelled");
        }
      }
      pending_.clear();
      for (auto& [id, job] : jobs_) {
        if (job->state == JobState::kRunning) {
          job->cancel.store(true, std::memory_order_relaxed);
        }
      }
    }
  }
  work_available_.notify_all();
  for (auto& w : workers_) {
    if (w.joinable()) w.join();
  }
  workers_.clear();
}

}  // namespace netalign::server
