#include "server/jobs.hpp"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <exception>
#include <filesystem>
#include <fstream>
#include <stdexcept>
#include <utility>

#include "dist/dist_bp.hpp"
#include "dist/dist_mr.hpp"
#include "netalign/belief_prop.hpp"
#include "netalign/isorank.hpp"
#include "netalign/klau_mr.hpp"
#include "netalign/rounding.hpp"
#include "obs/trace.hpp"

namespace netalign::server {

const char* to_string(JobState s) {
  switch (s) {
    case JobState::kQueued:
      return "queued";
    case JobState::kRunning:
      return "running";
    case JobState::kDone:
      return "done";
    case JobState::kFailed:
      return "failed";
    case JobState::kCancelled:
      return "cancelled";
  }
  return "?";
}

namespace {

/// DRR cost of a job: its iteration budget, the best a priori proxy for
/// worker time the scheduler has before the solve runs.
std::int64_t job_cost(const SubmitParams& spec) {
  return std::max<std::int64_t>(1, spec.iters);
}

JobState state_from_journal(const std::string& s) {
  if (s == "done") return JobState::kDone;
  if (s == "cancelled") return JobState::kCancelled;
  return JobState::kFailed;
}

}  // namespace

JobManager::JobManager(const JobManagerOptions& options, ProblemCache& cache,
                       obs::Counters* counters)
    : options_(options), cache_(cache), counters_(counters) {
  if (options_.workers < 1) {
    throw std::invalid_argument("JobManager: workers must be >= 1");
  }
  if (options_.work_dir.empty()) {
    throw std::invalid_argument("JobManager: work_dir is required");
  }
  if (options_.drr_quantum < 1) {
    throw std::invalid_argument("JobManager: drr_quantum must be >= 1");
  }
  if (options_.retained_cap < 1) {
    throw std::invalid_argument("JobManager: retained_cap must be >= 1");
  }
  options_.tenant_queue_cap =
      std::min(options_.tenant_queue_cap, options_.queue_cap);
  if (options_.tenant_queue_cap < 1) {
    throw std::invalid_argument("JobManager: tenant_queue_cap must be >= 1");
  }
  if (options_.checkpoint_every < 0) {
    throw std::invalid_argument("JobManager: checkpoint_every must be >= 0");
  }
  std::filesystem::create_directories(options_.work_dir);
  if (options_.journal) {
    const std::string jpath = options_.work_dir + "/journal.jsonl";
    if (options_.recover) {
      // Throws on a newer-version journal; the daemon refuses to start
      // rather than misread it.
      recover_from_journal();
    } else {
      std::error_code ec;
      std::filesystem::remove(jpath, ec);  // discard prior state on request
    }
    journal_ = std::make_unique<JobJournal>(jpath, options_.journal_fsync);
    if (recovery_.performed) {
      // Rewrite a clean snapshot immediately: drops the torn tail (if
      // any) and persists the recovered next_id so ids stay unique even
      // if this run crashes before its first natural compaction.
      std::vector<JournalJob> live;
      live.reserve(jobs_.size());
      for (const auto& [id, job] : jobs_) {
        live.push_back(to_journal_locked(*job));
      }
      journal_->compact(live, next_id_);
    }
  }
  clean_work_dir();
  workers_.reserve(static_cast<std::size_t>(options_.workers));
  for (int i = 0; i < options_.workers; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

std::string JobManager::ckpt_path(std::int64_t id) const {
  return options_.work_dir + "/job-" + std::to_string(id) + ".ckpt";
}

std::string JobManager::spill_path(const std::string& file) const {
  return options_.work_dir + "/" + file;
}

std::string JobManager::spill_problem(std::int64_t id,
                                      const std::string& bytes) {
  const std::string file = "job-" + std::to_string(id) + ".nap";
  const std::string path = spill_path(file);
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
    if (!out) {
      std::error_code ec;
      std::filesystem::remove(tmp, ec);
      return {};
    }
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::error_code ec;
    std::filesystem::remove(tmp, ec);
    return {};
  }
  return file;
}

JournalJob JobManager::to_journal_locked(const Job& job) const {
  JournalJob j;
  j.id = job.id;
  // Everything but problem_text (spilled to disk, never journaled).
  j.spec.problem_path = job.spec.problem_path;
  j.spec.solver = job.spec.solver;
  j.spec.matcher = job.spec.matcher;
  j.spec.iters = job.spec.iters;
  j.spec.batch = job.spec.batch;
  j.spec.ranks = job.spec.ranks;
  j.spec.gamma = job.spec.gamma;
  j.spec.deadline_seconds = job.spec.deadline_seconds;
  j.spec.tag = job.spec.tag;
  j.spec.tenant = job.tenant;
  j.spec.request_id = job.spec.request_id;
  j.tenant = job.tenant;
  j.key = job.key;
  j.key_provisional =
      job.problem_file.empty() && !job.spec.problem_path.empty();
  j.problem_file = job.problem_file;
  // `resume` marks a recovered formerly-running job that has not been
  // picked up again yet; snapshotting it as started keeps its
  // checkpoint-resume eligibility across a second crash.
  j.started = job.state == JobState::kRunning || job.resume;
  // A pending-terminal job (final state latched, fsync'd append in
  // flight off-lock, state not published yet) snapshots as terminal:
  // otherwise a compaction in that window would rewrite the journal
  // without the terminal record the appender just made durable, and a
  // later crash would re-run a job whose result clients already saw.
  const JobState state =
      job.terminal_pending ? job.pending_state : job.state;
  j.terminal = state == JobState::kDone || state == JobState::kFailed ||
               state == JobState::kCancelled;
  if (j.terminal) j.result = to_journal_result(job, state);
  return j;
}

JournalResult JobManager::to_journal_result(const Job& job, JobState state) {
  JournalResult r;
  r.state = to_string(state);
  r.has_result = job.has_result;
  r.error = job.error;
  r.cache_hit = job.cache_hit;
  if (job.has_result) {
    const JobResult& jr = job.result;
    r.stopped_reason = jr.stopped_reason;
    r.objective = jr.objective;
    r.weight = jr.weight;
    r.overlap = jr.overlap;
    r.cardinality = jr.cardinality;
    r.best_iteration = jr.best_iteration;
    r.iterations_completed = jr.iterations_completed;
    r.total_seconds = jr.total_seconds;
    r.problem_name = jr.problem_name;
    r.num_a = jr.num_a;
    r.num_b = jr.num_b;
    r.pairs.reserve(jr.pairs.size());
    for (const auto& [a, b] : jr.pairs) {
      r.pairs.emplace_back(static_cast<std::int64_t>(a),
                           static_cast<std::int64_t>(b));
    }
  }
  return r;
}

void JobManager::journal_terminal(const Job& job, JobState state) {
  // Called without mutex_ on purpose: the terminal fsync must not stall
  // the manager lock. Safe because a job's result fields are immutable
  // once the run finished, and only the caller publishes `state`. The
  // caller must have latched job.terminal_pending under mutex_ first, so
  // a concurrent compaction snapshots the job as terminal instead of
  // rewriting the journal without this record. (A compaction in that
  // window makes this append a duplicate terminal record -- benign:
  // replay applies the first and ignores the rest.)
  journal_->terminal(job.id, to_journal_result(job, state));
  if (counters_ != nullptr) {
    counters_->add_concurrent("server.journal.appends");
    counters_->add_concurrent("server.journal.fsyncs");
  }
}

void JobManager::maybe_compact_locked() {
  if (journal_ == nullptr) return;
  // Proportional trigger: a journal in steady state holds at most
  // retained_cap + queue_cap + workers live jobs at <= 3 records each;
  // once the append count clears that by a healthy factor, most records
  // are dead history (evicted jobs) and a rewrite shrinks the file.
  const auto threshold =
      4 * static_cast<std::int64_t>(options_.retained_cap +
                                    options_.queue_cap) +
      64;
  if (journal_->appends_since_compact() <= threshold) return;
  std::vector<JournalJob> live;
  live.reserve(jobs_.size());
  for (const auto& [id, job] : jobs_) {
    live.push_back(to_journal_locked(*job));
  }
  journal_->compact(live, next_id_);
  if (counters_ != nullptr) {
    counters_->add_concurrent("server.journal.compactions");
  }
}

void JobManager::recover_from_journal() {
  const std::string jpath = options_.work_dir + "/journal.jsonl";
  {
    std::error_code ec;
    if (!std::filesystem::exists(jpath, ec)) return;  // nothing to replay
  }
  const JournalReplay rep = replay_journal_file(jpath);
  recovery_.performed = true;
  recovery_.ignored_events = rep.ignored_events;
  recovery_.torn_tail = rep.torn_tail;
  next_id_ = rep.next_id;

  // Pass 1: rebuild every live job's in-memory state, in submit order.
  for (const JournalJob& jj : rep.jobs) {
    auto job = std::make_shared<Job>();
    job->id = jj.id;
    job->spec = jj.spec;
    job->tenant = jj.tenant;
    job->key = jj.key;
    job->problem_file = jj.problem_file;
    job->trace_path = options_.work_dir + "/job-" + std::to_string(jj.id) +
                      ".trace.jsonl";
    if (!jj.spec.request_id.empty()) {
      request_ids_.emplace(std::make_pair(jj.tenant, jj.spec.request_id),
                           jj.id);
    }
    if (jj.terminal) {
      job->state = state_from_journal(jj.result.state);
      job->has_result = jj.result.has_result;
      job->error = jj.result.error;
      job->cache_hit = jj.result.cache_hit;
      if (jj.result.has_result) {
        JobResult jr;
        jr.state = job->state;
        jr.has_result = true;
        jr.stopped_reason = jj.result.stopped_reason;
        jr.objective = jj.result.objective;
        jr.weight = jj.result.weight;
        jr.overlap = jj.result.overlap;
        jr.cardinality = jj.result.cardinality;
        jr.best_iteration = jj.result.best_iteration;
        jr.iterations_completed = jj.result.iterations_completed;
        jr.total_seconds = jj.result.total_seconds;
        jr.cache_hit = jj.result.cache_hit;
        jr.problem_name = jj.result.problem_name;
        jr.num_a = jj.result.num_a;
        jr.num_b = jj.result.num_b;
        jr.pairs.reserve(jj.result.pairs.size());
        for (const auto& [a, b] : jj.result.pairs) {
          jr.pairs.emplace_back(static_cast<vid_t>(a),
                                static_cast<vid_t>(b));
        }
        job->result = std::move(jr);
      }
      ++tenants_[job->tenant].completed;
      retained_lru_.push_back(job->id);
      job->lru_pos = std::prev(retained_lru_.end());
      job->in_lru = true;
      ++recovery_.terminal_restored;
      // The pre-crash trace survives, so progress/status keep serving
      // the full event stream for restored results.
      job->tail = std::make_unique<obs::JsonlTailReader>(job->trace_path);
    } else if (jj.problem_file.empty() && jj.spec.problem_path.empty()) {
      // The submit was journaled but its problem spill never made it to
      // disk (spill I/O failure before the crash). The job cannot be
      // re-run; fail it visibly instead of dropping it.
      job->state = JobState::kFailed;
      job->error = "problem bytes were lost in a crash before the job ran";
      ++tenants_[job->tenant].completed;
      retained_lru_.push_back(job->id);
      job->lru_pos = std::prev(retained_lru_.end());
      job->in_lru = true;
      ++recovery_.terminal_restored;
      job->tail = std::make_unique<obs::JsonlTailReader>(job->trace_path);
    } else {
      job->state = JobState::kQueued;
      if (!jj.problem_file.empty()) {
        // Re-read the spilled bytes through the worker's existing
        // problem_path machinery; re-keying reproduces the same content
        // hash.
        job->spec.problem_path = spill_path(jj.problem_file);
        job->spec.problem_text.clear();
      }
      job->resume = jj.started;
      // The old trace is from the interrupted attempt; the re-run
      // rewrites it from scratch (with a `resume` event when resuming).
      std::error_code ec;
      std::filesystem::remove(job->trace_path, ec);
      job->tail = std::make_unique<obs::JsonlTailReader>(job->trace_path);
    }
    jobs_.emplace(jj.id, std::move(job));
  }

  // Pass 2: re-enqueue non-terminal jobs -- formerly-running first, in
  // the order workers originally picked them up, then still-queued jobs
  // in submit order. Within a tenant both orders coincide with FIFO.
  std::vector<const JournalJob*> started;
  for (const JournalJob& jj : rep.jobs) {
    if (!jj.terminal && jj.started) started.push_back(&jj);
  }
  std::sort(started.begin(), started.end(),
            [](const JournalJob* a, const JournalJob* b) {
              return a->start_seq < b->start_seq;
            });
  auto enqueue = [this](std::int64_t id, const std::string& tenant) {
    Tenant& bucket = tenants_[tenant];
    if (bucket.queue.empty()) active_tenants_.push_back(tenant);
    bucket.queue.push_back(id);
    ++queued_total_;
  };
  for (const JournalJob* jj : started) {
    const auto it = jobs_.find(jj->id);
    if (it == jobs_.end() || it->second->state != JobState::kQueued) continue;
    enqueue(jj->id, jj->tenant);
    ++recovery_.rerun;
    std::error_code ec;
    if (std::filesystem::exists(ckpt_path(jj->id), ec) ||
        std::filesystem::exists(ckpt_path(jj->id) + ".prev", ec)) {
      ++recovery_.resumed;
    }
  }
  for (const JournalJob& jj : rep.jobs) {
    if (jj.terminal || jj.started) continue;
    const auto it = jobs_.find(jj.id);
    if (it == jobs_.end() || it->second->state != JobState::kQueued) continue;
    enqueue(jj.id, jj.tenant);
    ++recovery_.requeued;
  }

  // Retention may have shrunk between runs: enforce the cap on restored
  // terminal jobs the same way mark_terminal_locked does. The files of
  // anything evicted here are swept by clean_work_dir right after.
  while (retained_lru_.size() > options_.retained_cap) {
    const std::int64_t victim = retained_lru_.front();
    retained_lru_.pop_front();
    const auto it = jobs_.find(victim);
    if (it != jobs_.end()) {
      if (!it->second->spec.request_id.empty()) {
        const auto rid = request_ids_.find(
            {it->second->tenant, it->second->spec.request_id});
        if (rid != request_ids_.end() && rid->second == victim) {
          request_ids_.erase(rid);
        }
      }
      it->second->in_lru = false;
      jobs_.erase(it);
    }
    ++evicted_;
  }

  if (counters_ != nullptr) {
    counters_->add_concurrent("server.recovery.terminal_restored",
                              recovery_.terminal_restored);
    counters_->add_concurrent("server.recovery.requeued",
                              recovery_.requeued);
    counters_->add_concurrent("server.recovery.rerun", recovery_.rerun);
    counters_->add_concurrent("server.recovery.resumed", recovery_.resumed);
    counters_->add_concurrent("server.recovery.ignored_events",
                              recovery_.ignored_events);
  }
}

namespace {

/// Parse "job-<digits><suffix>" out of a work-dir filename; returns -1
/// when `name` does not have that shape.
std::int64_t job_file_id(const std::string& name, const char* suffix) {
  const std::string_view prefix = "job-";
  const std::string_view suf = suffix;
  if (name.size() <= prefix.size() + suf.size()) return -1;
  if (name.compare(0, prefix.size(), prefix) != 0) return -1;
  if (name.compare(name.size() - suf.size(), suf.size(), suf) != 0) {
    return -1;
  }
  std::int64_t id = 0;
  for (std::size_t i = prefix.size(); i < name.size() - suf.size(); ++i) {
    if (std::isdigit(static_cast<unsigned char>(name[i])) == 0) return -1;
    id = id * 10 + (name[i] - '0');
    if (id > 1'000'000'000'000) return -1;
  }
  return id;
}

}  // namespace

void JobManager::clean_work_dir() {
  // Reclaim files this manager's naming scheme owns and no live job
  // references: traces of evicted/unknown jobs, checkpoints nothing will
  // resume, spills of jobs that reached a terminal state, and
  // half-written temporaries from an interrupted atomic rename. Files
  // outside the job-*/journal naming scheme are never touched.
  std::int64_t removed = 0;
  std::error_code ec;
  for (const auto& entry :
       std::filesystem::directory_iterator(options_.work_dir, ec)) {
    if (!entry.is_regular_file(ec)) continue;
    const std::string name = entry.path().filename().string();
    bool doomed = false;
    if (name == "journal.jsonl") {
      doomed = journal_ == nullptr;  // journal off = fresh start
    } else if (name == "journal.jsonl.tmp" ||
               (name.size() > 4 && name.compare(0, 4, "job-") == 0 &&
                name.compare(name.size() - 4, 4, ".tmp") == 0)) {
      doomed = true;  // interrupted tmp -> rename
    } else if (const auto id = job_file_id(name, ".trace.jsonl"); id >= 0) {
      // Keep only terminal jobs' traces; requeued jobs already had
      // theirs reset during recovery.
      const auto it = jobs_.find(id);
      doomed = it == jobs_.end() || it->second->state == JobState::kQueued;
    } else if (const auto cid = job_file_id(name, ".ckpt"); cid >= 0) {
      const auto it = jobs_.find(cid);
      doomed = it == jobs_.end() || !it->second->resume;
    } else if (const auto pid = job_file_id(name, ".ckpt.prev"); pid >= 0) {
      const auto it = jobs_.find(pid);
      doomed = it == jobs_.end() || !it->second->resume;
    } else if (const auto nid = job_file_id(name, ".nap"); nid >= 0) {
      const auto it = jobs_.find(nid);
      doomed = it == jobs_.end() || it->second->state != JobState::kQueued;
    }
    if (doomed && std::filesystem::remove(entry.path(), ec)) ++removed;
  }
  recovery_.orphans_removed = removed;
  if (counters_ != nullptr) {
    counters_->add_concurrent("server.recovery.orphans_removed", removed);
  }
}

JobManager::JournalStats JobManager::journal_stats() const {
  JournalStats s;
  if (journal_ != nullptr) {
    s.enabled = true;
    s.appends = journal_->appends_total();
    s.fsyncs = journal_->fsyncs_total();
    s.compactions = journal_->compactions_total();
    s.write_errors = journal_->write_errors_total();
  }
  return s;
}

JobManager::~JobManager() { shutdown(true); }

JobManager::SubmitOutcome JobManager::submit(SubmitParams spec) {
  SubmitOutcome out;
  if (!spec.problem_path.empty()) {
    // Only *stat* the path here: submit runs on the server's single
    // I/O thread, and reading an arbitrarily large (or slow) file would
    // stall every connection. The worker reads the bytes in run_job and
    // re-keys the job from the content; until then the key is a
    // provisional path+mtime hash. The stat itself can still block on a
    // pathological mount, so docs/SERVER.md requires problem_path to
    // live on responsive local storage.
    std::error_code ec;
    const auto status = std::filesystem::status(spec.problem_path, ec);
    if (ec || !std::filesystem::exists(status)) {
      out.code = ErrorCode::kBadRequest;
      out.message = "cannot open problem_path " + spec.problem_path;
      return out;
    }
    if (!std::filesystem::is_regular_file(status)) {
      // A FIFO would block the worker at open (possibly forever, with
      // no writer); a directory or device makes no sense either.
      out.code = ErrorCode::kBadRequest;
      out.message =
          "problem_path " + spec.problem_path + " is not a regular file";
      return out;
    }
    const auto mtime = std::filesystem::last_write_time(spec.problem_path, ec);
    const auto ticks = ec ? 0 : mtime.time_since_epoch().count();
    out.key = content_key(spec.problem_path + "\n" + std::to_string(ticks));
    out.key_provisional = true;
  } else {
    out.key = content_key(spec.problem_text);
  }

  {
    std::lock_guard<std::mutex> lock(mutex_);
    const std::string tenant =
        spec.tenant.empty() ? kDefaultTenant : spec.tenant;
    if (!spec.request_id.empty()) {
      // Idempotent retry: the same (tenant, request_id) answers with the
      // original job instead of enqueueing a second run. Checked before
      // the drain/capacity gates on purpose -- the original was already
      // admitted, so its retry must not bounce off a now-full queue.
      // Keyed per tenant so a request_id that happens to collide across
      // tenants enqueues a fresh job instead of answering with (and
      // disclosing) another tenant's job id and content key.
      const auto it = request_ids_.find({tenant, spec.request_id});
      if (it != request_ids_.end()) {
        out.accepted = true;
        out.duplicate = true;
        out.job = it->second;
        if (const std::shared_ptr<Job> orig = find(it->second)) {
          out.key = orig->key;
          out.key_provisional =
              orig->problem_file.empty() && !orig->spec.problem_path.empty();
        }
        if (counters_ != nullptr) {
          counters_->add_concurrent("server.jobs_deduplicated");
        }
        return out;
      }
    }
    if (draining_ || stopping_) {
      out.code = ErrorCode::kShuttingDown;
      out.message = "server is shutting down";
      return out;
    }
    if (queued_total_ >= options_.queue_cap) {
      out.code = ErrorCode::kRejected;
      out.message = "job queue at capacity (" +
                    std::to_string(options_.queue_cap) + " queued)";
      if (counters_ != nullptr) {
        counters_->add_concurrent("server.jobs_rejected");
      }
      return out;
    }
    Tenant& bucket = tenants_[tenant];
    if (bucket.queue.size() >= options_.tenant_queue_cap) {
      out.code = ErrorCode::kQuotaExceeded;
      out.message = "tenant '" + tenant + "' at its queued-jobs quota (" +
                    std::to_string(options_.tenant_queue_cap) + ")";
      if (counters_ != nullptr) {
        counters_->add_concurrent("server.jobs_quota_exceeded");
      }
      return out;
    }
    auto job = std::make_shared<Job>();
    job->id = next_id_++;
    job->spec = std::move(spec);
    job->tenant = tenant;
    job->key = out.key;
    job->trace_path = options_.work_dir + "/job-" + std::to_string(job->id) +
                      ".trace.jsonl";
    job->tail = std::make_unique<obs::JsonlTailReader>(job->trace_path);
    out.accepted = true;
    out.job = job->id;
    if (!job->spec.request_id.empty()) {
      request_ids_.emplace(std::make_pair(tenant, job->spec.request_id),
                           job->id);
    }
    if (journal_ != nullptr) {
      // Durability before acknowledgement: spill inline problem bytes,
      // then append the submit record. Both reach the kernel before the
      // caller sees the job id, so a SIGKILL at any later instant cannot
      // lose this job.
      if (!job->spec.problem_text.empty()) {
        job->problem_file = spill_problem(job->id, job->spec.problem_text);
      }
      journal_->submit(to_journal_locked(*job));
      if (counters_ != nullptr) {
        counters_->add_concurrent("server.journal.appends");
        if (options_.journal_fsync) {
          counters_->add_concurrent("server.journal.fsyncs");
        }
      }
      maybe_compact_locked();
    }
    if (bucket.queue.empty()) active_tenants_.push_back(tenant);
    bucket.queue.push_back(job->id);
    ++queued_total_;
    jobs_.emplace(job->id, std::move(job));
    if (counters_ != nullptr) {
      counters_->add_concurrent("server.jobs_accepted");
    }
  }
  work_available_.notify_one();
  return out;
}

bool JobManager::has_eligible_locked() const {
  for (const std::string& name : active_tenants_) {
    const Tenant& t = tenants_.at(name);
    if (options_.tenant_running_cap <= 0 ||
        t.running < options_.tenant_running_cap) {
      return true;
    }
  }
  return false;
}

std::int64_t JobManager::pop_next_locked() {
  // Conceptually each DRR pass grants every eligible tenant one quantum
  // and runs the first tenant whose deficit covers its head job's cost.
  // Iterating that literally would spin ceil(cost / quantum) passes
  // under mutex_ with a client-controlled cost, so compute the winning
  // pass in closed form: per tenant, the number of whole passes until
  // its deficit would cover its head job, then jump straight there.
  const std::int64_t quantum = options_.drr_quantum;
  const std::size_t none = active_tenants_.size();
  std::size_t winner = none;
  std::int64_t win_passes = 0;
  for (std::size_t i = 0; i < active_tenants_.size(); ++i) {
    const Tenant& t = tenants_.at(active_tenants_[i]);
    if (options_.tenant_running_cap > 0 &&
        t.running >= options_.tenant_running_cap) {
      continue;  // at its running cap: not part of this scheduling round
    }
    const std::int64_t cost = job_cost(jobs_.at(t.queue.front())->spec);
    // Every pass adds the quantum *before* the deficit >= cost test, so
    // even an already-covered tenant needs one pass.
    const std::int64_t need = cost - t.deficit;
    const std::int64_t passes =
        need <= 0 ? 1 : (need + quantum - 1) / quantum;
    if (winner == none || passes < win_passes) {
      winner = i;  // ties go to the earlier rotation position
      win_passes = passes;
    }
  }
  if (winner == none) return -1;
  // Replay the grants those passes imply: tenants at or before the
  // winner's rotation position saw the final pass, later ones did not.
  for (std::size_t i = 0; i < active_tenants_.size(); ++i) {
    Tenant& t = tenants_.at(active_tenants_[i]);
    if (options_.tenant_running_cap > 0 &&
        t.running >= options_.tenant_running_cap) {
      continue;
    }
    t.deficit += (i <= winner ? win_passes : win_passes - 1) * quantum;
  }
  const std::string name = active_tenants_[winner];
  Tenant& t = tenants_.at(name);
  const std::int64_t id = t.queue.front();
  t.deficit -= job_cost(jobs_.at(id)->spec);
  t.queue.pop_front();
  --queued_total_;
  ++t.running;
  active_tenants_.erase(active_tenants_.begin() +
                        static_cast<std::ptrdiff_t>(winner));
  if (t.queue.empty()) {
    t.deficit = 0;  // classic DRR: no hoarding credit while idle
  } else {
    active_tenants_.push_back(name);  // to the back of the rotation
  }
  return id;
}

void JobManager::worker_loop() {
  for (;;) {
    std::shared_ptr<Job> job;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      // During a drain shutdown (stopping_ with jobs still queued) a
      // worker keeps draining; it exits only once the queue is empty.
      work_available_.wait(lock, [this] {
        return (stopping_ && queued_total_ == 0) || has_eligible_locked();
      });
      if (stopping_ && queued_total_ == 0) return;
      const std::int64_t id = pop_next_locked();
      if (id < 0) continue;  // lost the race for the job that woke us
      job = jobs_.at(id);
      job->state = JobState::kRunning;
      ++running_;
    }
    const JobState final_state = run_job(*job);
    // The fsync'd terminal record goes to the journal *before* the
    // terminal state is published (and off the manager lock): run_job
    // filled in the result but left job->state at kRunning, so no client
    // can observe a terminal state that is not yet durable, and the job
    // cannot have been evicted yet (eviction requires the LRU entry
    // mark_terminal_locked creates below). Latching terminal_pending
    // under mutex_ first closes the compaction race: a snapshot taken
    // while the append is in flight still records the job as terminal.
    if (journal_ != nullptr) {
      {
        std::lock_guard<std::mutex> lock(mutex_);
        job->terminal_pending = true;
        job->pending_state = final_state;
      }
      journal_terminal(*job, final_state);
    }
    std::vector<std::string> doomed;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      // Publish the terminal state atomically with the bookkeeping, so
      // stats can never show every job terminal while running_ > 0.
      job->state = final_state;
      job->terminal_pending = false;
      if (job->has_result) job->result.state = final_state;
      --running_;
      --tenants_.at(job->tenant).running;
      doomed = mark_terminal_locked(*job);
      // The run is over and its end is durable: the checkpoint and the
      // problem spill have nothing left to recover.
      doomed.push_back(ckpt_path(job->id));
      doomed.push_back(ckpt_path(job->id) + ".prev");
      doomed.push_back(ckpt_path(job->id) + ".tmp");
      if (!job->problem_file.empty()) {
        doomed.push_back(spill_path(job->problem_file));
      }
      maybe_compact_locked();
    }
    for (const std::string& path : doomed) {
      std::error_code ec;
      std::filesystem::remove(path, ec);
    }
    // A tenant blocked on its running cap may be runnable now.
    work_available_.notify_all();
    job_finished_.notify_all();
  }
}

namespace {

/// Run the solver named by `spec` exactly as the one-shot CLI would, so
/// server answers are bit-identical to `netalign align` (check_server.sh
/// byte-compares the two).
AlignResult run_solver(const SubmitParams& spec, const CachedProblem& cp,
                       const SolveBudget& budget, obs::TraceWriter* trace,
                       obs::Counters* counters) {
  const MatcherKind matcher = matcher_from_string(spec.matcher);
  const int iters = static_cast<int>(spec.iters);
  if (spec.solver == "bp") {
    BeliefPropOptions opt;
    opt.max_iterations = iters;
    opt.matcher = matcher;
    opt.batch_size = static_cast<int>(spec.batch);
    if (spec.gamma > 0.0) opt.gamma = spec.gamma;
    opt.trace = trace;
    opt.counters = counters;
    opt.budget = budget;
    return belief_prop_align(cp.problem, cp.squares.view(), opt);
  }
  if (spec.solver == "mr") {
    KlauMrOptions opt;
    opt.max_iterations = iters;
    opt.matcher = matcher;
    if (spec.gamma > 0.0) opt.gamma = spec.gamma;
    opt.trace = trace;
    opt.counters = counters;
    opt.budget = budget;
    return klau_mr_align(cp.problem, cp.squares.view(), opt);
  }
  if (spec.solver == "isorank") {
    IsoRankOptions opt;
    opt.max_iterations = iters;
    opt.matcher = matcher;
    if (spec.gamma > 0.0) opt.gamma = spec.gamma;
    opt.trace = trace;
    opt.counters = counters;
    opt.budget = budget;
    return isorank_align(cp.problem, cp.squares.view(), opt);
  }
  if (spec.solver == "dist-bp") {
    dist::DistBpOptions opt;
    opt.num_ranks = static_cast<int>(spec.ranks);
    opt.max_iterations = iters;
    opt.matcher = matcher;
    if (spec.gamma > 0.0) opt.gamma = spec.gamma;
    opt.trace = trace;
    opt.counters = counters;
    opt.budget = budget;
    // Dist solvers need the materialized CSR for their edge-cut
    // partitioning; run_job forces explicit mode for them, so the
    // backend's matrix is always populated here.
    return dist::distributed_belief_prop_align(cp.problem, *cp.squares.matrix,
                                               opt);
  }
  if (spec.solver == "dist-mr") {
    dist::DistMrOptions opt;
    opt.num_ranks = static_cast<int>(spec.ranks);
    opt.max_iterations = iters;
    if (spec.gamma > 0.0) opt.gamma = spec.gamma;
    opt.trace = trace;
    opt.counters = counters;
    opt.budget = budget;
    return dist::distributed_klau_mr_align(cp.problem, *cp.squares.matrix,
                                           opt);
  }
  throw std::invalid_argument("unknown solver '" + spec.solver + "'");
}

}  // namespace

JobState JobManager::run_job(Job& job) {
  // Record the failure but do NOT flip job.state: worker_loop publishes
  // the returned state only after the journal append is durable.
  auto fail = [&](const std::string& why) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      job.error = why;
    }
    if (counters_ != nullptr) {
      counters_->add_concurrent("server.jobs_failed");
    }
    return JobState::kFailed;
  };

  if (!job.spec.problem_path.empty()) {
    // Deferred from submit: this is a worker thread, where a slow read
    // stalls nothing but this job. Re-check the file type right before
    // opening (the submit-time check races with replacement, and opening
    // a writer-less FIFO would block forever), then read in chunks so a
    // cancel interrupts a read off slow storage and the byte cap holds
    // even if the file grows underneath us.
    std::error_code ec;
    if (!std::filesystem::is_regular_file(job.spec.problem_path, ec)) {
      return fail("problem_path " + job.spec.problem_path +
                  " is not a regular file");
    }
    std::ifstream in(job.spec.problem_path, std::ios::binary);
    if (!in) {
      return fail("cannot open problem_path " + job.spec.problem_path);
    }
    std::string bytes;
    char buf[1u << 16];
    for (;;) {
      if (job.cancel.load(std::memory_order_relaxed)) {
        if (counters_ != nullptr) {
          counters_->add_concurrent("server.jobs_cancelled");
        }
        return JobState::kCancelled;
      }
      in.read(buf, sizeof(buf));
      const auto n = static_cast<std::size_t>(in.gcount());
      if (bytes.size() + n > options_.max_problem_bytes) {
        return fail("problem_path " + job.spec.problem_path + " exceeds " +
                    std::to_string(options_.max_problem_bytes) + " bytes");
      }
      bytes.append(buf, n);
      if (in.eof()) break;
      if (!in) {
        return fail("read error on problem_path " + job.spec.problem_path);
      }
    }
    const std::string key = content_key(bytes);
    std::lock_guard<std::mutex> lock(mutex_);
    job.spec.problem_text = std::move(bytes);
    job.spec.problem_path.clear();
    job.key = key;  // re-key from bytes: path submissions dedupe with inline
  }

  if (journal_ != nullptr) {
    // Path submissions (and recovered jobs re-reading their spill) only
    // have their bytes now: persist them so the job survives a crash
    // from here on, then journal the pickup with the final content key.
    if (job.problem_file.empty()) {
      const std::string file = spill_problem(job.id, job.spec.problem_text);
      if (!file.empty()) {
        std::lock_guard<std::mutex> lock(mutex_);
        job.problem_file = file;
      }
    }
    journal_->start(job.id, job.key, job.problem_file);
    if (counters_ != nullptr) {
      counters_->add_concurrent("server.journal.appends");
      if (options_.journal_fsync) {
        counters_->add_concurrent("server.journal.fsyncs");
      }
    }
  }

  // Resolve the squares backend before cache keying: the per-job field
  // wins over the server default, and dist-* solvers always force
  // explicit (their partitioners need the materialized CSR; an implicit
  // request for them was already rejected at parse time, but the server
  // default or `auto` could still point them at the wrong backend).
  SquaresBackendOptions squares_opts;
  squares_opts.budget_bytes = std::uint64_t{options_.squares_max_mb} << 20;
  try {
    const std::string& mode_name = job.spec.squares_mode.empty()
                                       ? options_.squares_mode
                                       : job.spec.squares_mode;
    squares_opts.mode = squares_mode_from_string(mode_name);
  } catch (const std::exception& e) {
    return fail(std::string("bad squares_mode: ") + e.what());
  }
  if (job.spec.solver.rfind("dist-", 0) == 0) {
    squares_opts.mode = SquaresMode::kExplicit;
  }

  std::shared_ptr<const CachedProblem> cp;
  bool hit = false;
  try {
    cp = cache_.get(job.key, job.spec.problem_text, squares_opts, hit);
  } catch (const std::exception& e) {
    return fail(std::string("problem rejected: ") + e.what());
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    job.cache_hit = hit;
  }

  try {
    obs::TraceWriter trace(job.trace_path);
    obs::Counters run_counters;
    trace.run_start(job.spec.solver, {{"problem", cp->problem.name},
                                      {"matcher", job.spec.matcher},
                                      {"iters", job.spec.iters},
                                      {"job", job.id},
                                      {"tenant", job.tenant},
                                      {"cache", hit ? "hit" : "miss"},
                                      {"squares_mode",
                                       cp->squares.mode_name()}});
    SolveBudget budget;
    budget.deadline_seconds = job.spec.deadline_seconds;
    budget.cancel_flag = &job.cancel;
    if (journal_ != nullptr && options_.checkpoint_every > 0) {
      // Periodic solver checkpoints (io/checkpoint.hpp: atomic
      // tmp -> rename, previous generation kept at .prev) are what let
      // recovery resume this job instead of rerunning it from scratch.
      budget.checkpoint_every = static_cast<int>(options_.checkpoint_every);
      budget.checkpoint_path = ckpt_path(job.id);
    }
    if (job.resume) {
      std::error_code ec;
      if (std::filesystem::exists(ckpt_path(job.id), ec) ||
          std::filesystem::exists(ckpt_path(job.id) + ".prev", ec)) {
        // PR 5's deterministic resume: the finished matching is
        // bit-identical to an uninterrupted run, which is what the
        // durability gate byte-compares.
        budget.resume_path = ckpt_path(job.id);
      }
    }
    const AlignResult r =
        run_solver(job.spec, *cp, budget, &trace, &run_counters);
    trace.run_end(r.total_seconds, r.value.objective, r.best_iteration,
                  &run_counters,
                  {{"stopped_reason", to_string(r.stopped_reason)},
                   {"iterations_completed", r.iterations_completed}});

    JobResult jr;
    jr.has_result = true;
    jr.stopped_reason = to_string(r.stopped_reason);
    jr.objective = r.value.objective;
    jr.weight = r.value.weight;
    jr.overlap = r.value.overlap;
    jr.cardinality = r.matching.cardinality;
    jr.best_iteration = r.best_iteration;
    jr.iterations_completed = r.iterations_completed;
    jr.total_seconds = r.total_seconds;
    jr.cache_hit = hit;
    jr.problem_name = cp->problem.name;
    jr.num_a = static_cast<std::int64_t>(r.matching.mate_a.size());
    jr.num_b = static_cast<std::int64_t>(r.matching.mate_b.size());
    jr.pairs.reserve(static_cast<std::size_t>(r.matching.cardinality));
    for (std::size_t a = 0; a < r.matching.mate_a.size(); ++a) {
      if (r.matching.mate_a[a] != kInvalidVid) {
        jr.pairs.emplace_back(static_cast<vid_t>(a), r.matching.mate_a[a]);
      }
    }

    const bool cancelled = r.stopped_reason == StopReason::kCancelled;
    const JobState final_state =
        cancelled ? JobState::kCancelled : JobState::kDone;
    jr.state = final_state;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      job.has_result = true;
      job.result = std::move(jr);
    }
    if (counters_ != nullptr) {
      counters_->add_concurrent(cancelled ? "server.jobs_cancelled"
                                          : "server.jobs_completed");
    }
    return final_state;
  } catch (const std::exception& e) {
    return fail(std::string("solve failed: ") + e.what());
  }
}

std::vector<std::string> JobManager::mark_terminal_locked(Job& job) {
  ++tenants_[job.tenant].completed;
  if (!job.in_lru) {
    retained_lru_.push_back(job.id);
    job.lru_pos = std::prev(retained_lru_.end());
    job.in_lru = true;
  }
  // LRU eviction beyond the retention cap: the state-map entry, the
  // buffered events, and the on-disk trace are reclaimed together. The
  // unlink itself happens after mutex_ is released (callers own that).
  std::vector<std::string> doomed;
  while (retained_lru_.size() > options_.retained_cap) {
    const std::int64_t victim = retained_lru_.front();
    retained_lru_.pop_front();
    const auto it = jobs_.find(victim);
    if (it != jobs_.end()) {
      Job& gone = *it->second;
      doomed.push_back(gone.trace_path);
      // Normally reclaimed at the victim's own terminal transition;
      // harmless to re-doom (remove() of a missing file is a no-op).
      doomed.push_back(ckpt_path(victim));
      doomed.push_back(ckpt_path(victim) + ".prev");
      if (!gone.problem_file.empty()) {
        doomed.push_back(spill_path(gone.problem_file));
      }
      if (!gone.spec.request_id.empty()) {
        // The dedupe window is the retention window: a retry after this
        // point enqueues a fresh run instead of resolving to the victim.
        const auto rid =
            request_ids_.find({gone.tenant, gone.spec.request_id});
        if (rid != request_ids_.end() && rid->second == victim) {
          request_ids_.erase(rid);
        }
      }
      gone.in_lru = false;
      jobs_.erase(it);
    }
    if (journal_ != nullptr) {
      journal_->evict(victim);
      if (counters_ != nullptr) {
        counters_->add_concurrent("server.journal.appends");
        if (options_.journal_fsync) {
          counters_->add_concurrent("server.journal.fsyncs");
        }
      }
    }
    ++evicted_;
    if (counters_ != nullptr) {
      counters_->add_concurrent("server.jobs_evicted");
    }
  }
  return doomed;
}

void JobManager::touch_locked(Job& job) {
  if (!job.in_lru) return;
  retained_lru_.splice(retained_lru_.end(), retained_lru_, job.lru_pos);
  job.lru_pos = std::prev(retained_lru_.end());
}

void JobManager::drain_tail(Job& job) {
  std::lock_guard<std::mutex> guard(job.tail_mutex);
  if (!job.tail) return;
  obs::JsonValue event;
  while (job.tail->next(event) == obs::JsonlTailReader::Status::kEvent) {
    std::string compact;
    obs::write_json(compact, event);
    job.events.push_back(std::move(compact));
    const obs::JsonValue* type = event.find("event");
    if (type == nullptr || !type->is_string()) continue;
    if (type->as_string() == "iteration") {
      ++job.iterations_seen;
    } else if (type->as_string() == "round") {
      ++job.rounds_seen;
      if (const obs::JsonValue* obj = event.find("objective");
          obj != nullptr && obj->is_number()) {
        job.last_objective = obj->as_number();
      }
    }
  }
  // kPending / kTruncatedTail: the writer is mid-line; poll again later.
  // kMalformed cannot happen for a file this process is writing.
}

std::shared_ptr<JobManager::Job> JobManager::find(std::int64_t id) {
  const auto it = jobs_.find(id);
  return it == jobs_.end() ? nullptr : it->second;
}

bool JobManager::expired(std::int64_t id) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return id >= 1 && id < next_id_ && jobs_.find(id) == jobs_.end();
}

std::optional<JobManager::JobStatus> JobManager::status(std::int64_t id) {
  std::shared_ptr<Job> job;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    job = find(id);
    if (job) touch_locked(*job);
  }
  if (job == nullptr) return std::nullopt;
  drain_tail(*job);

  std::lock_guard<std::mutex> lock(mutex_);
  JobStatus s;
  s.id = job->id;
  s.state = job->state;
  s.tag = job->spec.tag;
  s.tenant = job->tenant;
  s.key = job->key;
  s.solver = job->spec.solver;
  s.cache_hit = job->cache_hit;
  if (job->state == JobState::kQueued) {
    const auto it = tenants_.find(job->tenant);
    if (it != tenants_.end()) {
      const auto& queue = it->second.queue;
      for (std::size_t i = 0; i < queue.size(); ++i) {
        if (queue[i] == id) {
          s.queue_position = static_cast<std::int64_t>(i);
          break;
        }
      }
    }
  }
  {
    std::lock_guard<std::mutex> guard(job->tail_mutex);
    s.iterations = job->iterations_seen;
    s.rounds = job->rounds_seen;
    s.last_objective = job->last_objective;
  }
  s.error = job->error;
  return s;
}

std::optional<JobManager::JobProgress> JobManager::progress(
    std::int64_t id, std::int64_t cursor) {
  std::shared_ptr<Job> job;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    job = find(id);
    if (job) touch_locked(*job);
  }
  if (job == nullptr) return std::nullopt;
  drain_tail(*job);

  JobProgress p;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    p.state = job->state;
  }
  std::lock_guard<std::mutex> guard(job->tail_mutex);
  const auto total = static_cast<std::int64_t>(job->events.size());
  const std::int64_t from = std::min(cursor, total);
  p.events.assign(job->events.begin() + from, job->events.end());
  p.next_cursor = total;
  return p;
}

std::optional<JobManager::JobResult> JobManager::result(std::int64_t id) {
  std::lock_guard<std::mutex> lock(mutex_);
  const std::shared_ptr<Job> job = find(id);
  if (job == nullptr) return std::nullopt;
  touch_locked(*job);
  const bool terminal = job->state == JobState::kDone ||
                        job->state == JobState::kFailed ||
                        job->state == JobState::kCancelled;
  if (job->has_result && terminal) {
    // Copy; jobs are immutable once terminal. The `terminal` guard
    // matters: a worker fills job->result before the journal fsync and
    // before worker_loop publishes the terminal state, and in that
    // window the job must still look running.
    return job->result;
  }
  JobResult r;
  r.state = job->state;
  r.has_result = false;
  r.error = job->error;
  r.cache_hit = job->cache_hit;
  return r;
}

JobManager::CancelOutcome JobManager::cancel(std::int64_t id) {
  std::vector<std::string> doomed;
  CancelOutcome out;
  std::shared_ptr<Job> pulled;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    const std::shared_ptr<Job> job = find(id);
    if (job == nullptr) return {};
    out.found = true;
    if (job->state == JobState::kQueued && !job->terminal_pending) {
      // Pull the job from its queue so no worker can pick it up, and
      // latch the pending cancellation -- but do NOT publish kCancelled
      // yet: the fsync'd terminal record must land first, mirroring
      // worker_loop's durable-before-observable ordering. (Publishing
      // first would let a crash in between recover the job as
      // still-queued and run it after the client was told it was
      // cancelled.) A concurrent cancel of the same id in this window
      // sees terminal_pending and reports the still-queued state.
      pulled = job;
      Tenant& t = tenants_.at(job->tenant);
      const auto it = std::find(t.queue.begin(), t.queue.end(), id);
      if (it != t.queue.end()) {
        t.queue.erase(it);
        --queued_total_;
        if (t.queue.empty()) {
          t.deficit = 0;
          std::erase(active_tenants_, job->tenant);
        }
      }
      job->terminal_pending = true;
      job->pending_state = JobState::kCancelled;
    } else if (job->state == JobState::kRunning) {
      // Latch the budget's cancel flag; the solver stops at its next
      // iteration boundary and the job finishes as kCancelled with its
      // best-so-far matching. Until then the state honestly stays running.
      job->cancel.store(true, std::memory_order_relaxed);
    }
    out.state = job->state;
  }
  if (pulled != nullptr) {
    if (journal_ != nullptr) journal_terminal(*pulled, JobState::kCancelled);
    {
      std::lock_guard<std::mutex> lock(mutex_);
      pulled->state = JobState::kCancelled;
      pulled->terminal_pending = false;
      if (counters_ != nullptr) {
        counters_->add_concurrent("server.jobs_cancelled");
      }
      doomed = mark_terminal_locked(*pulled);
    }
    out.state = JobState::kCancelled;
  }
  for (const std::string& path : doomed) {
    std::error_code ec;
    std::filesystem::remove(path, ec);
  }
  return out;
}

JobManager::QueueStats JobManager::queue_stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  QueueStats s;
  s.queued = static_cast<std::int64_t>(queued_total_);
  s.running = running_;
  s.total_jobs = next_id_ - 1;
  s.workers = options_.workers;
  s.queue_cap = static_cast<std::int64_t>(options_.queue_cap);
  s.tenant_queue_cap = static_cast<std::int64_t>(options_.tenant_queue_cap);
  s.tenant_running_cap = options_.tenant_running_cap;
  s.retained = static_cast<std::int64_t>(retained_lru_.size());
  s.retained_cap = static_cast<std::int64_t>(options_.retained_cap);
  s.evicted = evicted_;
  for (const auto& [name, t] : tenants_) {
    if (t.queue.empty() && t.running == 0 && t.completed == 0) continue;
    TenantStats ts;
    ts.tenant = name;
    ts.queued = static_cast<std::int64_t>(t.queue.size());
    ts.running = t.running;
    ts.completed = t.completed;
    s.tenants.push_back(std::move(ts));
  }
  return s;
}

void JobManager::begin_drain() {
  std::lock_guard<std::mutex> lock(mutex_);
  draining_ = true;
}

bool JobManager::draining() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return draining_ || stopping_;
}

bool JobManager::idle() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return queued_total_ == 0 && running_ == 0;
}

void JobManager::shutdown(bool cancel_running) {
  std::vector<std::string> doomed;
  std::vector<std::shared_ptr<Job>> cancelled;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    draining_ = true;
    stopping_ = true;
    if (cancel_running) {
      for (auto& [name, t] : tenants_) {
        for (const std::int64_t id : t.queue) {
          const std::shared_ptr<Job> job = jobs_.at(id);
          // Latch, don't publish: the cancelled records are journaled
          // below (off-lock) before the state flips, mirroring
          // worker_loop's durable-before-observable ordering.
          job->terminal_pending = true;
          job->pending_state = JobState::kCancelled;
          cancelled.push_back(job);
        }
        t.queue.clear();
        t.deficit = 0;
      }
      queued_total_ = 0;
      active_tenants_.clear();
      for (auto& [id, job] : jobs_) {
        if (job->state == JobState::kRunning) {
          job->cancel.store(true, std::memory_order_relaxed);
        }
      }
    }
  }
  if (journal_ != nullptr) {
    for (const std::shared_ptr<Job>& job : cancelled) {
      // A `shutdown now` is still an orderly transition: the cancelled
      // queued jobs are journaled terminal so a restart reports them as
      // cancelled instead of re-running them.
      journal_terminal(*job, JobState::kCancelled);
    }
  }
  if (!cancelled.empty()) {
    std::lock_guard<std::mutex> lock(mutex_);
    for (const std::shared_ptr<Job>& job : cancelled) {
      job->state = JobState::kCancelled;
      job->terminal_pending = false;
      if (counters_ != nullptr) {
        counters_->add_concurrent("server.jobs_cancelled");
      }
      auto paths = mark_terminal_locked(*job);
      doomed.insert(doomed.end(), paths.begin(), paths.end());
    }
  }
  for (const std::string& path : doomed) {
    std::error_code ec;
    std::filesystem::remove(path, ec);
  }
  work_available_.notify_all();
  for (auto& w : workers_) {
    if (w.joinable()) w.join();
  }
  workers_.clear();
}

}  // namespace netalign::server
