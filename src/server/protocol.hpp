// Wire protocol of the netalign alignment server (docs/SERVER.md).
//
// Newline-delimited JSON: each request and each response is exactly one
// JSON object on one LF-terminated line. This module is the single place
// that knows the request schema -- parsing, validation, the error-code
// taxonomy, and the builder responses are serialized with -- so the
// server loop, the client, and the protocol tests all share one
// definition and cannot drift apart.
//
// Compatibility rules (tested in tests/test_server.cpp):
//   - unknown *fields* in a request are ignored (the schema may grow);
//   - unknown *methods* are rejected with error code "unknown_method";
//   - a field with the wrong JSON type is "bad_request", never a crash;
//   - a request line at or above the server's size cap is "too_large".
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "obs/json.hpp"

namespace netalign::server {

/// Bumped when a change would break an existing client; echoed by `ping`.
inline constexpr std::int64_t kProtocolVersion = 1;

/// Default cap on one request line (daemon flag --max-request-bytes).
/// Inline problems ride inside the submit request, so this bounds the
/// largest submittable instance as well as the damage a garbage client
/// can do to server memory.
inline constexpr std::size_t kDefaultMaxRequestBytes = 8u << 20;

/// Upper bound on submit's iters/batch/ranks. All three feed solver
/// `int` options, and iters doubles as the job's DRR scheduling cost,
/// so an absurd value must die as bad_request at parse time -- not as
/// an int overflow in the solver or a scheduler stall under the job
/// lock.
inline constexpr std::int64_t kMaxSubmitInt = 1'000'000'000;

/// Error taxonomy (the `error.code` field of a failure response).
enum class ErrorCode {
  kTooLarge,       ///< request line exceeded the server's byte cap
  kBadRequest,     ///< malformed JSON, missing field, or wrong type
  kUnknownMethod,  ///< well-formed request naming no known method
  kRejected,       ///< admission control: job queue at capacity
  kQuotaExceeded,  ///< this tenant's queued/running quota is full
  kShuttingDown,   ///< submit after shutdown began
  kNotFound,       ///< no job with the given id
  kExpired,        ///< job existed but was evicted by the retention cap
  kNotReady,       ///< result requested before the job reached a result
  kNoResult,       ///< job was cancelled before it ever ran
  kJobFailed,      ///< job ran and failed; message carries the cause
  kInternal,       ///< unexpected server-side exception
  kAuthRequired,   ///< TCP connection not yet authenticated (send `auth`)
  kAuthFailed,     ///< `auth` carried a wrong token; connection closes
};

[[nodiscard]] const char* to_string(ErrorCode code);

/// True when `code` is one of the taxonomy strings above -- what the
/// wire fuzzer asserts about every error response.
[[nodiscard]] bool known_error_code(std::string_view code);

enum class Method {
  kPing,
  kAuth,  ///< TCP connection handshake: {"method":"auth","token":"..."}
  kSubmit,
  kStatus,
  kProgress,
  kResult,
  kCancel,
  kStats,
  kShutdown,
};

[[nodiscard]] const char* to_string(Method m);

/// Everything `submit` accepts. Defaults mirror `netalign align`.
struct SubmitParams {
  std::string problem_text;  ///< inline .nap content (`problem` field)
  std::string problem_path;  ///< server-local path (`problem_path` field)
  std::string solver = "bp";  ///< bp | mr | isorank | dist-bp | dist-mr
  std::string matcher = "approx";
  std::int64_t iters = 100;
  std::int64_t batch = 1;      ///< BP rounding batch size
  std::int64_t ranks = 4;      ///< dist-* simulated ranks
  double gamma = 0.0;          ///< 0 = solver default
  double deadline_seconds = 0.0;
  std::string tag;             ///< client label echoed by status/result
  /// Fair-scheduling bucket: jobs queue per tenant and are drained by
  /// deficit-round-robin, with per-tenant quotas (docs/SERVER.md).
  /// Empty = the "default" tenant.
  std::string tenant;
  /// Client-chosen idempotency token. While the original job is
  /// retained, a re-submit carrying the same request_id returns that
  /// job's id (flagged `duplicate`) instead of enqueueing a second run,
  /// which is what makes blind client retries across a daemon restart
  /// safe. Empty = no dedupe.
  std::string request_id;
  /// Squares backend: "explicit" | "implicit" | "auto", or empty for the
  /// server-wide default (ServerOptions::squares_mode). Not part of the
  /// job's content key; the cache keys (problem, resolved mode) pairs.
  /// Rejected at parse time for dist-* solvers, which need the explicit
  /// CSR for their edge-cut partitioning.
  std::string squares_mode;
};

/// One parsed request. `id` is the client's correlation value echoed
/// verbatim into the response (any scalar; stored re-serialized).
struct Request {
  Method method = Method::kPing;
  std::string id_json;        ///< empty = no id field
  std::int64_t job = -1;      ///< status / progress / result / cancel
  std::int64_t cursor = 0;    ///< progress: events already consumed
  bool shutdown_now = false;  ///< shutdown: cancel instead of drain
  std::string auth_token;     ///< auth: the presented token
  SubmitParams submit;
};

/// Parse and validate one request line. Returns true and fills `out`;
/// on failure returns false with `code`/`message` describing the error
/// (the id, when recoverable from the line, is still echoed via
/// `out.id_json`).
bool parse_request(std::string_view line, Request& out, ErrorCode& code,
                   std::string& message);

/// Incremental builder for one response object; keeps serialization in
/// one style (compact, key order = insertion order, obs/json escaping).
class ResponseBuilder {
 public:
  /// Start a success or failure envelope: {"ok":true,...} /
  /// {"ok":false,...}. `id_json` (when non-empty) is echoed as `id`.
  ResponseBuilder(bool ok, const std::string& id_json);

  ResponseBuilder& field(std::string_view key, std::string_view value);
  /// Without this overload a string literal would prefer the bool
  /// conversion (pointer -> bool is a standard conversion; pointer ->
  /// string_view is user-defined) and serialize as `true`.
  ResponseBuilder& field(std::string_view key, const char* value) {
    return field(key, std::string_view(value));
  }
  ResponseBuilder& field(std::string_view key, std::int64_t value);
  ResponseBuilder& field(std::string_view key, double value);
  ResponseBuilder& field(std::string_view key, bool value);
  /// Append `key` with pre-serialized JSON (an object/array built by the
  /// caller, e.g. the progress event list).
  ResponseBuilder& raw(std::string_view key, std::string_view json);

  /// Finish and return the line (no trailing newline).
  [[nodiscard]] std::string str() &&;

 private:
  std::string buf_;
};

/// The standard failure response for `code`/`message`.
[[nodiscard]] std::string error_response(const std::string& id_json,
                                         ErrorCode code,
                                         std::string_view message);

}  // namespace netalign::server
