#include "server/protocol.hpp"

#include <cmath>
#include <stdexcept>

namespace netalign::server {

const char* to_string(ErrorCode code) {
  switch (code) {
    case ErrorCode::kTooLarge:
      return "too_large";
    case ErrorCode::kBadRequest:
      return "bad_request";
    case ErrorCode::kUnknownMethod:
      return "unknown_method";
    case ErrorCode::kRejected:
      return "rejected";
    case ErrorCode::kQuotaExceeded:
      return "quota_exceeded";
    case ErrorCode::kShuttingDown:
      return "shutting_down";
    case ErrorCode::kNotFound:
      return "not_found";
    case ErrorCode::kExpired:
      return "expired";
    case ErrorCode::kNotReady:
      return "not_ready";
    case ErrorCode::kNoResult:
      return "no_result";
    case ErrorCode::kJobFailed:
      return "job_failed";
    case ErrorCode::kInternal:
      return "internal";
    case ErrorCode::kAuthRequired:
      return "auth_required";
    case ErrorCode::kAuthFailed:
      return "auth_failed";
  }
  return "?";
}

bool known_error_code(std::string_view code) {
  for (const ErrorCode c :
       {ErrorCode::kTooLarge, ErrorCode::kBadRequest,
        ErrorCode::kUnknownMethod, ErrorCode::kRejected,
        ErrorCode::kQuotaExceeded, ErrorCode::kShuttingDown,
        ErrorCode::kNotFound, ErrorCode::kExpired, ErrorCode::kNotReady,
        ErrorCode::kNoResult, ErrorCode::kJobFailed, ErrorCode::kInternal,
        ErrorCode::kAuthRequired, ErrorCode::kAuthFailed}) {
    if (code == to_string(c)) return true;
  }
  return false;
}

const char* to_string(Method m) {
  switch (m) {
    case Method::kPing:
      return "ping";
    case Method::kAuth:
      return "auth";
    case Method::kSubmit:
      return "submit";
    case Method::kStatus:
      return "status";
    case Method::kProgress:
      return "progress";
    case Method::kResult:
      return "result";
    case Method::kCancel:
      return "cancel";
    case Method::kStats:
      return "stats";
    case Method::kShutdown:
      return "shutdown";
  }
  return "?";
}

namespace {

/// Validation failure inside the field getters; caught by parse_request
/// and turned into a bad_request response.
struct FieldError {
  std::string message;
};

/// Typed member access with unknown-field tolerance: absent fields keep
/// the caller's default, present fields must have the right JSON type.
std::string get_string(const obs::JsonValue& doc, std::string_view key,
                       std::string fallback) {
  const obs::JsonValue* v = doc.find(key);
  if (v == nullptr) return fallback;
  if (!v->is_string()) {
    throw FieldError{std::string(key) + " must be a string"};
  }
  return v->as_string();
}

std::int64_t get_int(const obs::JsonValue& doc, std::string_view key,
                     std::int64_t fallback) {
  const obs::JsonValue* v = doc.find(key);
  if (v == nullptr) return fallback;
  if (!v->is_number()) {
    throw FieldError{std::string(key) + " must be a number"};
  }
  const double d = v->as_number();
  if (d != std::floor(d)) {
    throw FieldError{std::string(key) + " must be an integer"};
  }
  return static_cast<std::int64_t>(d);
}

double get_double(const obs::JsonValue& doc, std::string_view key,
                  double fallback) {
  const obs::JsonValue* v = doc.find(key);
  if (v == nullptr) return fallback;
  if (!v->is_number()) {
    throw FieldError{std::string(key) + " must be a number"};
  }
  return v->as_number();
}

bool get_bool(const obs::JsonValue& doc, std::string_view key,
              bool fallback) {
  const obs::JsonValue* v = doc.find(key);
  if (v == nullptr) return fallback;
  if (v->type() != obs::JsonValue::Type::kBool) {
    throw FieldError{std::string(key) + " must be a bool"};
  }
  return v->as_bool();
}

std::int64_t require_job(const obs::JsonValue& doc) {
  const std::int64_t job = get_int(doc, "job", -1);
  if (job < 0) throw FieldError{"job (a nonnegative integer) is required"};
  return job;
}

bool known_solver(const std::string& s) {
  return s == "bp" || s == "mr" || s == "isorank" || s == "dist-bp" ||
         s == "dist-mr";
}

bool known_matcher(const std::string& s) {
  return s == "exact" || s == "approx" || s == "greedy" || s == "suitor" ||
         s == "auction" || s == "pga";
}

}  // namespace

bool parse_request(std::string_view line, Request& out, ErrorCode& code,
                   std::string& message) {
  obs::JsonValue doc;
  if (!obs::try_parse_json(line, doc)) {
    code = ErrorCode::kBadRequest;
    message = "request is not valid JSON";
    return false;
  }
  if (!doc.is_object()) {
    code = ErrorCode::kBadRequest;
    message = "request must be a JSON object";
    return false;
  }
  // Echo the client's correlation id even on failure paths below.
  if (const obs::JsonValue* id = doc.find("id")) {
    out.id_json.clear();
    obs::write_json(out.id_json, *id);
  }
  try {
    const obs::JsonValue* method = doc.find("method");
    if (method == nullptr || !method->is_string()) {
      throw FieldError{"method (a string) is required"};
    }
    const std::string& name = method->as_string();
    if (name == "ping") {
      out.method = Method::kPing;
    } else if (name == "auth") {
      out.method = Method::kAuth;
      out.auth_token = get_string(doc, "token", "");
      if (out.auth_token.empty()) {
        throw FieldError{"auth needs a token (a nonempty string)"};
      }
      if (out.auth_token.size() > 4096) {
        // The compare walks the whole candidate; bound the work a
        // garbage client can demand per line.
        throw FieldError{"token must be at most 4096 bytes"};
      }
    } else if (name == "submit") {
      out.method = Method::kSubmit;
      SubmitParams& p = out.submit;
      p.problem_text = get_string(doc, "problem", "");
      p.problem_path = get_string(doc, "problem_path", "");
      if (p.problem_text.empty() == p.problem_path.empty()) {
        throw FieldError{
            "submit needs exactly one of problem (inline text) or "
            "problem_path (server-local file)"};
      }
      p.solver = get_string(doc, "solver", p.solver);
      if (!known_solver(p.solver)) {
        throw FieldError{"unknown solver '" + p.solver +
                         "' (bp | mr | isorank | dist-bp | dist-mr)"};
      }
      p.matcher = get_string(doc, "matcher", p.matcher);
      if (!known_matcher(p.matcher)) {
        throw FieldError{"unknown matcher '" + p.matcher +
                         "' (exact | approx | greedy | suitor | auction | "
                         "pga)"};
      }
      p.iters = get_int(doc, "iters", p.iters);
      p.batch = get_int(doc, "batch", p.batch);
      p.ranks = get_int(doc, "ranks", p.ranks);
      p.gamma = get_double(doc, "gamma", p.gamma);
      p.deadline_seconds = get_double(doc, "deadline_seconds", 0.0);
      p.tag = get_string(doc, "tag", "");
      p.tenant = get_string(doc, "tenant", "");
      p.squares_mode = get_string(doc, "squares_mode", "");
      if (!p.squares_mode.empty() && p.squares_mode != "explicit" &&
          p.squares_mode != "implicit" && p.squares_mode != "auto") {
        throw FieldError{"unknown squares_mode '" + p.squares_mode +
                         "' (explicit | implicit | auto)"};
      }
      if (p.squares_mode == "implicit" &&
          p.solver.rfind("dist-", 0) == 0) {
        // The dist-* solvers partition the explicit CSR by edge cut;
        // there is no implicit path for them.
        throw FieldError{
            "squares_mode=implicit is not supported for dist-* solvers"};
      }
      p.request_id = get_string(doc, "request_id", "");
      if (p.request_id.size() > 200) {
        // The token is journaled with every submit and indexed forever
        // while the job is retained; an unbounded one is a memory lever.
        throw FieldError{"request_id must be at most 200 bytes"};
      }
      if (p.iters < 0 || p.iters > kMaxSubmitInt || p.batch < 1 ||
          p.batch > kMaxSubmitInt || p.ranks < 1 || p.ranks > kMaxSubmitInt ||
          p.gamma < 0.0 || p.deadline_seconds < 0.0 ||
          !std::isfinite(p.gamma) || !std::isfinite(p.deadline_seconds)) {
        throw FieldError{"submit parameter out of range"};
      }
    } else if (name == "status") {
      out.method = Method::kStatus;
      out.job = require_job(doc);
    } else if (name == "progress") {
      out.method = Method::kProgress;
      out.job = require_job(doc);
      out.cursor = get_int(doc, "cursor", 0);
      if (out.cursor < 0) throw FieldError{"cursor must be >= 0"};
    } else if (name == "result") {
      out.method = Method::kResult;
      out.job = require_job(doc);
    } else if (name == "cancel") {
      out.method = Method::kCancel;
      out.job = require_job(doc);
    } else if (name == "stats") {
      out.method = Method::kStats;
    } else if (name == "shutdown") {
      out.method = Method::kShutdown;
      out.shutdown_now = get_bool(doc, "now", false);
    } else {
      code = ErrorCode::kUnknownMethod;
      message = "unknown method '" + name + "'";
      return false;
    }
  } catch (const FieldError& e) {
    code = ErrorCode::kBadRequest;
    message = e.message;
    return false;
  }
  return true;
}

ResponseBuilder::ResponseBuilder(bool ok, const std::string& id_json) {
  buf_ = ok ? R"({"ok":true)" : R"({"ok":false)";
  if (!id_json.empty()) {
    buf_ += ",\"id\":";
    buf_ += id_json;
  }
}

ResponseBuilder& ResponseBuilder::field(std::string_view key,
                                        std::string_view value) {
  buf_.push_back(',');
  obs::append_json_string(buf_, key);
  buf_.push_back(':');
  obs::append_json_string(buf_, value);
  return *this;
}

ResponseBuilder& ResponseBuilder::field(std::string_view key,
                                        std::int64_t value) {
  buf_.push_back(',');
  obs::append_json_string(buf_, key);
  buf_.push_back(':');
  obs::append_json_number(buf_, value);
  return *this;
}

ResponseBuilder& ResponseBuilder::field(std::string_view key, double value) {
  buf_.push_back(',');
  obs::append_json_string(buf_, key);
  buf_.push_back(':');
  obs::append_json_number(buf_, value);
  return *this;
}

ResponseBuilder& ResponseBuilder::field(std::string_view key, bool value) {
  buf_.push_back(',');
  obs::append_json_string(buf_, key);
  buf_ += value ? ":true" : ":false";
  return *this;
}

ResponseBuilder& ResponseBuilder::raw(std::string_view key,
                                      std::string_view json) {
  buf_.push_back(',');
  obs::append_json_string(buf_, key);
  buf_.push_back(':');
  buf_ += json;
  return *this;
}

std::string ResponseBuilder::str() && {
  buf_.push_back('}');
  return std::move(buf_);
}

std::string error_response(const std::string& id_json, ErrorCode code,
                           std::string_view message) {
  ResponseBuilder r(false, id_json);
  std::string error = "{\"code\":";
  obs::append_json_string(error, to_string(code));
  error += ",\"message\":";
  obs::append_json_string(error, message);
  error.push_back('}');
  r.raw("error", error);
  return std::move(r).str();
}

}  // namespace netalign::server
