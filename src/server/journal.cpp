#include "server/journal.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <stdexcept>
#include <unordered_map>
#include <unordered_set>

#include "obs/json.hpp"
#include "obs/jsonl_tail.hpp"
#include "server/jobs.hpp"  // kDefaultTenant

namespace netalign::server {

namespace {

void kv_string(std::string& out, const char* key, std::string_view value) {
  out.push_back(',');
  out.push_back('"');
  out += key;
  out += "\":";
  obs::append_json_string(out, value);
}

void kv_int(std::string& out, const char* key, std::int64_t value) {
  out.push_back(',');
  out.push_back('"');
  out += key;
  out += "\":";
  obs::append_json_number(out, value);
}

void kv_double(std::string& out, const char* key, double value) {
  out.push_back(',');
  out.push_back('"');
  out += key;
  out += "\":";
  obs::append_json_number(out, value);
}

void kv_bool(std::string& out, const char* key, bool value) {
  out.push_back(',');
  out.push_back('"');
  out += key;
  out += value ? "\":true" : "\":false";
}

std::string header_record(std::int64_t next_id) {
  std::string s = "{\"event\":\"journal\"";
  kv_int(s, "version", kJournalVersion);
  kv_int(s, "proto", kProtocolVersion);
  kv_int(s, "next_id", next_id);
  s.push_back('}');
  return s;
}

std::string submit_record(const JournalJob& j) {
  std::string s = "{\"event\":\"submit\"";
  kv_int(s, "job", j.id);
  kv_string(s, "tenant", j.tenant);
  kv_string(s, "key", j.key);
  kv_bool(s, "key_provisional", j.key_provisional);
  kv_string(s, "request_id", j.spec.request_id);
  kv_string(s, "solver", j.spec.solver);
  kv_string(s, "matcher", j.spec.matcher);
  kv_int(s, "iters", j.spec.iters);
  kv_int(s, "batch", j.spec.batch);
  kv_int(s, "ranks", j.spec.ranks);
  kv_double(s, "gamma", j.spec.gamma);
  kv_double(s, "deadline_seconds", j.spec.deadline_seconds);
  kv_string(s, "tag", j.spec.tag);
  kv_string(s, "squares_mode", j.spec.squares_mode);
  kv_string(s, "problem_path", j.spec.problem_path);
  kv_string(s, "problem_file", j.problem_file);
  s.push_back('}');
  return s;
}

std::string start_record(std::int64_t job, const std::string& key,
                         const std::string& problem_file) {
  std::string s = "{\"event\":\"start\"";
  kv_int(s, "job", job);
  kv_string(s, "key", key);
  kv_string(s, "problem_file", problem_file);
  s.push_back('}');
  return s;
}

std::string terminal_record(std::int64_t job, const JournalResult& r) {
  std::string s = "{\"event\":\"terminal\"";
  kv_int(s, "job", job);
  kv_string(s, "state", r.state);
  kv_bool(s, "has_result", r.has_result);
  kv_string(s, "error", r.error);
  kv_string(s, "stopped_reason", r.stopped_reason);
  kv_double(s, "objective", r.objective);
  kv_double(s, "weight", r.weight);
  kv_double(s, "overlap", r.overlap);
  kv_int(s, "cardinality", r.cardinality);
  kv_int(s, "best_iteration", r.best_iteration);
  kv_int(s, "iterations_completed", r.iterations_completed);
  kv_double(s, "total_seconds", r.total_seconds);
  kv_bool(s, "cache_hit", r.cache_hit);
  kv_string(s, "problem", r.problem_name);
  kv_int(s, "num_a", r.num_a);
  kv_int(s, "num_b", r.num_b);
  s += ",\"pairs\":[";
  for (std::size_t i = 0; i < r.pairs.size(); ++i) {
    if (i > 0) s.push_back(',');
    s.push_back('[');
    obs::append_json_number(s, r.pairs[i].first);
    s.push_back(',');
    obs::append_json_number(s, r.pairs[i].second);
    s.push_back(']');
  }
  s += "]}";
  return s;
}

std::string evict_record(std::int64_t job) {
  std::string s = "{\"event\":\"evict\"";
  kv_int(s, "job", job);
  s.push_back('}');
  return s;
}

// Tolerant typed readers for replay: a missing or mistyped field keeps
// the default instead of aborting recovery -- replay must degrade, not
// crash, on anything short of a newer schema version.
std::string rep_string(const obs::JsonValue& doc, std::string_view key,
                       std::string fallback = {}) {
  const obs::JsonValue* v = doc.find(key);
  return v != nullptr && v->is_string() ? v->as_string()
                                        : std::move(fallback);
}

std::int64_t rep_int(const obs::JsonValue& doc, std::string_view key,
                     std::int64_t fallback = 0) {
  const obs::JsonValue* v = doc.find(key);
  return v != nullptr && v->is_number()
             ? static_cast<std::int64_t>(v->as_number())
             : fallback;
}

double rep_double(const obs::JsonValue& doc, std::string_view key,
                  double fallback = 0.0) {
  const obs::JsonValue* v = doc.find(key);
  return v != nullptr && v->is_number() ? v->as_number() : fallback;
}

bool rep_bool(const obs::JsonValue& doc, std::string_view key,
              bool fallback = false) {
  const obs::JsonValue* v = doc.find(key);
  return v != nullptr && v->type() == obs::JsonValue::Type::kBool
             ? v->as_bool()
             : fallback;
}

}  // namespace

JournalReplay replay_journal_file(const std::string& path) {
  JournalReplay out;
  obs::JsonlTailReader reader(path);
  // Index into out.jobs by id; evicted ids stay in `seen` so a stale
  // record for them is recognized as a re-apply, not a new job.
  std::unordered_map<std::int64_t, std::size_t> index;
  std::unordered_set<std::int64_t> seen;
  std::int64_t start_seq = 0;
  std::int64_t max_id = 0;
  obs::JsonValue event;
  for (;;) {
    const auto status = reader.next(event);
    if (status == obs::JsonlTailReader::Status::kPending) {
      // Clean EOF, or an unterminated final line a dying writer left.
      out.torn_tail = reader.has_partial_tail();
      break;
    }
    if (status == obs::JsonlTailReader::Status::kTruncatedTail) {
      out.torn_tail = true;  // terminated-but-unparseable final line
      break;
    }
    if (status == obs::JsonlTailReader::Status::kMalformed) {
      out.malformed = true;  // damage mid-stream; keep the clean prefix
      break;
    }
    const std::string type = rep_string(event, "event");
    if (type == "journal") {
      const std::int64_t version = rep_int(event, "version", 1);
      if (version > kJournalVersion) {
        throw std::runtime_error(
            "journal " + path + " has version " + std::to_string(version) +
            ", newer than this build supports (" +
            std::to_string(kJournalVersion) +
            "); refusing to recover from it");
      }
      out.version = version;
      out.next_id = std::max(out.next_id, rep_int(event, "next_id", 1));
      ++out.records_applied;
      continue;
    }
    const std::int64_t id = rep_int(event, "job", -1);
    if (id < 1) {
      ++out.ignored_events;  // record without a usable job id
      continue;
    }
    max_id = std::max(max_id, id);
    if (type == "submit") {
      if (!seen.insert(id).second) {
        ++out.ignored_events;  // ids are never reused: a re-apply
        continue;
      }
      JournalJob j;
      j.id = id;
      j.tenant = rep_string(event, "tenant", kDefaultTenant);
      j.key = rep_string(event, "key");
      j.key_provisional = rep_bool(event, "key_provisional");
      j.spec.request_id = rep_string(event, "request_id");
      j.spec.solver = rep_string(event, "solver", "bp");
      j.spec.matcher = rep_string(event, "matcher", "approx");
      j.spec.iters = rep_int(event, "iters", 100);
      j.spec.batch = rep_int(event, "batch", 1);
      j.spec.ranks = rep_int(event, "ranks", 4);
      j.spec.gamma = rep_double(event, "gamma");
      j.spec.deadline_seconds = rep_double(event, "deadline_seconds");
      j.spec.tag = rep_string(event, "tag");
      j.spec.squares_mode = rep_string(event, "squares_mode");
      j.spec.tenant = j.tenant;
      j.spec.problem_path = rep_string(event, "problem_path");
      j.problem_file = rep_string(event, "problem_file");
      index.emplace(id, out.jobs.size());
      out.jobs.push_back(std::move(j));
      ++out.records_applied;
    } else if (type == "start") {
      const auto it = index.find(id);
      if (it == index.end() || out.jobs[it->second].started ||
          out.jobs[it->second].terminal) {
        ++out.ignored_events;
        continue;
      }
      JournalJob& j = out.jobs[it->second];
      j.started = true;
      j.start_seq = start_seq++;
      const std::string key = rep_string(event, "key");
      if (!key.empty()) {
        j.key = key;
        j.key_provisional = false;
      }
      const std::string file = rep_string(event, "problem_file");
      if (!file.empty()) j.problem_file = file;
      ++out.records_applied;
    } else if (type == "terminal") {
      const auto it = index.find(id);
      if (it == index.end() || out.jobs[it->second].terminal) {
        ++out.ignored_events;  // double terminal: first one wins
        continue;
      }
      JournalJob& j = out.jobs[it->second];
      j.terminal = true;
      JournalResult& r = j.result;
      r.state = rep_string(event, "state", "failed");
      r.has_result = rep_bool(event, "has_result");
      r.error = rep_string(event, "error");
      r.stopped_reason = rep_string(event, "stopped_reason");
      r.objective = rep_double(event, "objective");
      r.weight = rep_double(event, "weight");
      r.overlap = rep_double(event, "overlap");
      r.cardinality = rep_int(event, "cardinality");
      r.best_iteration = rep_int(event, "best_iteration", -1);
      r.iterations_completed = rep_int(event, "iterations_completed");
      r.total_seconds = rep_double(event, "total_seconds");
      r.cache_hit = rep_bool(event, "cache_hit");
      r.problem_name = rep_string(event, "problem");
      r.num_a = rep_int(event, "num_a");
      r.num_b = rep_int(event, "num_b");
      if (const obs::JsonValue* pairs = event.find("pairs");
          pairs != nullptr && pairs->is_array()) {
        r.pairs.reserve(pairs->items().size());
        for (const obs::JsonValue& pair : pairs->items()) {
          if (!pair.is_array() || pair.items().size() != 2 ||
              !pair.items()[0].is_number() || !pair.items()[1].is_number()) {
            continue;
          }
          r.pairs.emplace_back(
              static_cast<std::int64_t>(pair.items()[0].as_number()),
              static_cast<std::int64_t>(pair.items()[1].as_number()));
        }
      }
      ++out.records_applied;
    } else if (type == "evict") {
      const auto it = index.find(id);
      if (it == index.end()) {
        ++out.ignored_events;
        continue;
      }
      // Drop the job but keep the id in `seen`: evicted ids answer
      // `expired`, and a stale record for one must not resurrect it.
      const std::size_t pos = it->second;
      index.erase(it);
      out.jobs.erase(out.jobs.begin() + static_cast<std::ptrdiff_t>(pos));
      for (auto& [jid, jpos] : index) {
        if (jpos > pos) --jpos;
      }
      ++out.records_applied;
    } else {
      ++out.ignored_events;  // unknown record type: the schema may grow
    }
  }
  out.next_id = std::max(out.next_id, max_id + 1);
  return out;
}

JobJournal::JobJournal(std::string path, bool fsync_all)
    : path_(std::move(path)), fsync_all_(fsync_all) {
  fd_ = ::open(path_.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
  if (fd_ < 0) {
    throw std::runtime_error("cannot open journal " + path_ + ": " +
                             std::strerror(errno));
  }
  const off_t size = ::lseek(fd_, 0, SEEK_END);
  if (size == 0) {
    append_line(header_record(1), /*fsync_now=*/true);
  }
}

JobJournal::~JobJournal() {
  if (fd_ >= 0) ::close(fd_);
}

void JobJournal::append_line(const std::string& line, bool fsync_now) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (tail_torn_) {
    // A prior append died mid-record and the trim failed; retry it
    // before writing anything, so replay never meets the damage
    // mid-stream (which would drop every record journaled after it).
    if (::ftruncate(fd_, static_cast<off_t>(torn_offset_)) != 0) {
      ++write_errors_;
      return;
    }
    tail_torn_ = false;
  }
  const off_t pre = ::lseek(fd_, 0, SEEK_END);
  if (pre < 0) {
    ++write_errors_;
    std::fprintf(stderr, "netalign_server: journal seek failed: %s\n",
                 std::strerror(errno));
    return;
  }
  std::string framed = line;
  framed.push_back('\n');
  std::size_t off = 0;
  while (off < framed.size()) {
    const ssize_t n =
        ::write(fd_, framed.data() + off, framed.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      // A full disk must not take the daemon down with it; the job
      // simply will not survive a crash. But a *partially written*
      // record with no newline would stop replay at the damage, so trim
      // the file back to where this append started: losing exactly one
      // record, never the records appended after it.
      std::fprintf(stderr, "netalign_server: journal write failed: %s\n",
                   std::strerror(errno));
      ++write_errors_;
      if (off > 0 && ::ftruncate(fd_, pre) != 0) {
        tail_torn_ = true;
        torn_offset_ = static_cast<std::int64_t>(pre);
        std::fprintf(stderr,
                     "netalign_server: journal tail could not be trimmed; "
                     "suspending appends until the trim succeeds\n");
      }
      return;
    }
    off += static_cast<std::size_t>(n);
  }
  ++appends_since_compact_;
  ++appends_total_;
  if (fsync_now || fsync_all_) {
    if (::fsync(fd_) == 0) ++fsyncs_total_;
  }
}

void JobJournal::submit(const JournalJob& job) {
  append_line(submit_record(job), /*fsync_now=*/false);
}

void JobJournal::start(std::int64_t job, const std::string& key,
                       const std::string& problem_file) {
  append_line(start_record(job, key, problem_file), /*fsync_now=*/false);
}

void JobJournal::terminal(std::int64_t job, const JournalResult& result) {
  // The one transition a client pays for: fsync'd regardless of mode.
  append_line(terminal_record(job, result), /*fsync_now=*/true);
}

void JobJournal::evict(std::int64_t job) {
  append_line(evict_record(job), /*fsync_now=*/false);
}

void JobJournal::compact(const std::vector<JournalJob>& live,
                         std::int64_t next_id) {
  std::string snapshot = header_record(next_id);
  snapshot.push_back('\n');
  for (const JournalJob& j : live) {
    snapshot += submit_record(j);
    snapshot.push_back('\n');
    if (j.started) {
      snapshot += start_record(j.id, j.key, j.problem_file);
      snapshot.push_back('\n');
    }
    if (j.terminal) {
      snapshot += terminal_record(j.id, j.result);
      snapshot.push_back('\n');
    }
  }

  std::lock_guard<std::mutex> lock(mutex_);
  const std::string tmp = path_ + ".tmp";
  const int tfd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (tfd < 0) {
    std::fprintf(stderr, "netalign_server: journal compact failed: %s\n",
                 std::strerror(errno));
    return;
  }
  std::size_t off = 0;
  bool ok = true;
  while (off < snapshot.size()) {
    const ssize_t n =
        ::write(tfd, snapshot.data() + off, snapshot.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      ok = false;
      break;
    }
    off += static_cast<std::size_t>(n);
  }
  if (ok && ::fsync(tfd) == 0) ++fsyncs_total_;
  ::close(tfd);
  if (!ok) {
    std::fprintf(stderr, "netalign_server: journal compact failed: %s\n",
                 std::strerror(errno));
    ::unlink(tmp.c_str());
    return;  // the old journal is intact; appends continue into it
  }
  // Open the replacement append fd on the tmp file *before* the rename:
  // if this open fails the compaction is abandoned with the old journal
  // (and fd_) fully usable, instead of discovering after the rename that
  // fd_ points at an unlinked inode and silently appending to a deleted
  // file.
  const int nfd = ::open(tmp.c_str(), O_WRONLY | O_APPEND);
  if (nfd < 0) {
    std::fprintf(stderr,
                 "netalign_server: journal compact failed: cannot reopen "
                 "%s: %s\n",
                 tmp.c_str(), std::strerror(errno));
    ::unlink(tmp.c_str());
    return;
  }
  if (::rename(tmp.c_str(), path_.c_str()) != 0) {
    std::fprintf(stderr, "netalign_server: journal compact failed: %s\n",
                 std::strerror(errno));
    ::close(nfd);
    ::unlink(tmp.c_str());
    return;
  }
  // Swap the append fd to the new file so an append that was blocked on
  // mutex_ during the rewrite lands in the snapshot, not the old inode.
  ::close(fd_);
  fd_ = nfd;
  tail_torn_ = false;  // the rewrite replaced any damaged tail
  appends_since_compact_ = 0;
  ++compactions_total_;
}

std::int64_t JobJournal::appends_since_compact() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return appends_since_compact_;
}

std::int64_t JobJournal::appends_total() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return appends_total_;
}

std::int64_t JobJournal::fsyncs_total() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return fsyncs_total_;
}

std::int64_t JobJournal::compactions_total() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return compactions_total_;
}

std::int64_t JobJournal::write_errors_total() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return write_errors_;
}

}  // namespace netalign::server
