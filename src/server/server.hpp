// The alignment daemon's front end: an AF_UNIX or TCP stream listener
// (server/transport.*) speaking the newline-delimited JSON protocol of
// docs/SERVER.md, one request per line, one response line per request.
//
// The socket loop is single-threaded (poll over listener + connections);
// all heavy work happens on the JobManager's worker pool, so a request is
// never blocked behind a solve. Connections are independent: any client
// may poll any job id, which is what lets `netalign client submit` and a
// later `netalign client result` be separate processes.
//
// Network hardening (docs/SERVER.md "Transports & network hardening"):
// TCP listeners require an auth token (connection-level `auth` method,
// constant-time compare); `idle_timeout_ms` reaps connections stalled
// mid-frame; `max_conns` refuses the overflow with a `rejected` error
// line instead of letting accept backlog grow unbounded.
#pragma once

#include <atomic>
#include <cstddef>
#include <mutex>
#include <string>

#include "obs/counters.hpp"
#include "server/cache.hpp"
#include "server/jobs.hpp"

namespace netalign::server {

struct ServerOptions {
  /// Endpoint spec: `unix:<path>` or `tcp:<host>:<port>` (a TCP port of
  /// 0 binds an ephemeral port; `bound_address()` reports the real one).
  /// Empty falls back to `unix:` + socket_path.
  std::string listen;
  std::string socket_path;            ///< legacy --socket AF_UNIX path
  /// Required for TCP listeners (a TCP daemon without one refuses to
  /// start); unix connections are pre-authenticated by filesystem
  /// permissions. Compared constant-time against the `auth` method.
  std::string auth_token;
  /// Reap a connection with no socket activity for this long -- the
  /// slowloris defense (a peer parked mid-frame holds buffer memory
  /// forever otherwise). 0 = never reap.
  std::int64_t idle_timeout_ms = 0;
  /// Max simultaneous connections; the overflow connection is answered
  /// with a `rejected` error line and closed (server.conns_rejected).
  /// 0 = unlimited.
  std::size_t max_conns = 0;
  int workers = 2;                    ///< solver worker threads
  std::size_t queue_cap = 16;         ///< admission-control bound
  std::size_t tenant_queue_cap = 8;   ///< per-tenant queued-jobs quota
  int tenant_running_cap = 0;         ///< per-tenant running cap (0 = none)
  std::int64_t drr_quantum = 100;     ///< DRR iteration-credits per pass
  std::size_t retained_cap = 256;     ///< terminal jobs kept before eviction
  std::size_t cache_cap = 8;          ///< LRU problem/squares entries
  std::size_t max_request_bytes = kDefaultMaxRequestBytes;
  /// Cap on one connection's unread response backlog; a client that
  /// stops reading past it is dropped (server.slow_clients_dropped).
  std::size_t max_output_bytes = 16u << 20;
  /// Byte cap on a problem_path file read by a worker.
  std::size_t max_problem_bytes = 1u << 30;
  std::string work_dir;               ///< job trace files (required)
  bool journal = true;                ///< write-ahead job journal in work_dir
  bool journal_fsync = false;         ///< fsync every append, not just terminals
  bool recover = true;                ///< replay the journal at startup
  std::int64_t checkpoint_every = 25; ///< solver-checkpoint cadence (0 = off)
  /// Default squares backend for submits without a `squares_mode` field:
  /// "explicit" | "implicit" | "auto" (docs/SERVER.md "Memory model").
  std::string squares_mode = "explicit";
  /// `auto` threshold in MiB on the explicit squares-structure estimate.
  std::uint64_t squares_max_mb = 2048;
  /// External stop latch (SIGTERM/SIGINT); treated as `shutdown now=false`
  /// (drain) when it fires. Nullable.
  const std::atomic<bool>* stop_flag = nullptr;
};

class Server {
 public:
  explicit Server(const ServerOptions& options);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Bind the socket and serve until a shutdown request (or the stop
  /// latch) and, for drain shutdowns, until queued/running jobs finish.
  /// Returns 0 on clean exit, nonzero on a socket-layer error.
  int run();

  [[nodiscard]] const obs::Counters& counters() const { return counters_; }

  /// The endpoint spec actually bound ("tcp:127.0.0.1:45123"), or empty
  /// before the listener is up. Safe to call from other threads while
  /// run() is executing -- tests and in-process daemons use it to learn
  /// the kernel-assigned port after `tcp:host:0`.
  [[nodiscard]] std::string bound_address() const;

 private:
  /// One response line (no trailing newline) for one request line.
  /// `authed` is the connection's auth state (an `auth` line with the
  /// right token flips it; unauthenticated requests other than ping/auth
  /// are refused); `close_conn` asks the loop to hang up after flushing
  /// (wrong token).
  std::string handle_line(std::string_view line, bool& authed,
                          bool& close_conn);

  /// `expired` for an evicted id, `not_found` for a never-issued one.
  std::string not_found_response(const std::string& id_json,
                                 std::int64_t job);

  std::string handle(const Request& req);
  std::string handle_submit(const Request& req);
  std::string handle_status(const Request& req);
  std::string handle_progress(const Request& req);
  std::string handle_result(const Request& req);
  std::string handle_cancel(const Request& req);
  std::string handle_stats(const Request& req);
  std::string handle_shutdown(const Request& req);

  ServerOptions options_;
  obs::Counters counters_;
  ProblemCache cache_;
  JobManager jobs_;
  bool shutdown_requested_ = false;
  bool shutdown_now_ = false;
  mutable std::mutex bound_mu_;
  std::string bound_;  ///< set once the listener is up (bound_address())
};

}  // namespace netalign::server
