#include "server/client.hpp"

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cstring>
#include <stdexcept>

namespace netalign::server {

ServerClient::ServerClient(const std::string& socket_path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (socket_path.size() >= sizeof(addr.sun_path)) {
    throw std::runtime_error("socket path too long: " + socket_path);
  }
  std::memcpy(addr.sun_path, socket_path.c_str(), socket_path.size() + 1);
  fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd_ < 0) {
    throw std::runtime_error("cannot create socket: " +
                             std::string(std::strerror(errno)));
  }
  if (::connect(fd_, reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    const std::string why = std::strerror(errno);
    ::close(fd_);
    fd_ = -1;
    throw std::runtime_error("cannot connect to " + socket_path + ": " + why);
  }
}

ServerClient::~ServerClient() {
  if (fd_ >= 0) ::close(fd_);
}

void ServerClient::send_raw(std::string_view bytes) {
  std::size_t off = 0;
  while (off < bytes.size()) {
    // MSG_NOSIGNAL: a daemon that hung up must be a thrown error, not a
    // SIGPIPE that kills the whole client process.
    const ssize_t n =
        ::send(fd_, bytes.data() + off, bytes.size() - off, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw std::runtime_error("write to server failed: " +
                               std::string(std::strerror(errno)));
    }
    off += static_cast<std::size_t>(n);
  }
}

std::string ServerClient::read_line() {
  for (;;) {
    const std::size_t eol = buffer_.find('\n');
    if (eol != std::string::npos) {
      std::string line = buffer_.substr(0, eol);
      buffer_.erase(0, eol + 1);
      return line;
    }
    char chunk[65536];
    const ssize_t n = ::read(fd_, chunk, sizeof(chunk));
    if (n < 0) {
      if (errno == EINTR) continue;
      throw std::runtime_error("read from server failed: " +
                               std::string(std::strerror(errno)));
    }
    if (n == 0) {
      throw std::runtime_error("server closed the connection");
    }
    buffer_.append(chunk, static_cast<std::size_t>(n));
  }
}

std::string ServerClient::exchange(std::string_view request_line) {
  std::string framed(request_line);
  framed.push_back('\n');
  send_raw(framed);
  return read_line();
}

obs::JsonValue ServerClient::call(std::string_view request_line) {
  const std::string line = exchange(request_line);
  obs::JsonValue doc;
  if (!obs::try_parse_json(line, doc)) {
    throw std::runtime_error("server sent a non-JSON response: " + line);
  }
  return doc;
}

}  // namespace netalign::server
