#include "server/client.hpp"

#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstring>
#include <stdexcept>
#include <thread>

namespace netalign::server {

namespace {

bool retryable_connect_errno(int err) {
  // ECONNREFUSED: socket/port exists, nobody listening (daemon mid-
  // restart). ENOENT: the restarting daemon has not re-bound yet.
  // ECONNRESET/EAGAIN: backlog churn under load. ETIMEDOUT: a TCP peer
  // (or a chaos proxy) black-holed the handshake.
  return err == ECONNREFUSED || err == ENOENT || err == ECONNRESET ||
         err == EAGAIN || err == ETIMEDOUT;
}

/// Deterministic-free jitter for backoff desynchronization; quality is
/// irrelevant, distinctness across processes is the point.
std::uint64_t jitter_state() {
  auto seed = static_cast<std::uint64_t>(
      std::chrono::steady_clock::now().time_since_epoch().count());
  seed ^= static_cast<std::uint64_t>(::getpid()) << 32;
  return seed | 1;
}

int with_jitter(int base_ms) {
  static thread_local std::uint64_t state = jitter_state();
  state ^= state << 13;
  state ^= state >> 7;
  state ^= state << 17;
  // Uniform-ish in [base/2, base]: never longer than the cap the caller
  // computed, never so short the backoff stops being one.
  if (base_ms <= 1) return base_ms;
  return base_ms / 2 + static_cast<int>(state % static_cast<std::uint64_t>(
                                            base_ms / 2 + 1));
}

}  // namespace

void ServerClient::connect_now() {
  std::string error;
  fd_ = connect_endpoint(endpoint_, error);
  if (fd_ < 0) {
    if (retryable_connect_errno(errno)) throw ConnectionLost(error);
    throw std::runtime_error(error);
  }
  if (auth_token_.empty()) return;
  // TCP handshake: one auth line before anything else on this
  // connection. A lost connection mid-handshake is retryable (the
  // daemon restarted under us); a rejected token is not -- it stays
  // wrong no matter how often we replay it.
  std::string line = R"({"method":"auth","token":)";
  obs::append_json_string(line, auth_token_);
  line += "}\n";
  send_raw(line);
  const std::string response = read_line();
  obs::JsonValue doc;
  if (!obs::try_parse_json(response, doc) || doc.find("ok") == nullptr) {
    drop_connection();
    throw std::runtime_error("malformed auth response: " + response);
  }
  if (!doc.find("ok")->as_bool()) {
    drop_connection();
    throw std::runtime_error("server rejected the auth token for " +
                             target_);
  }
}

void ServerClient::drop_connection() {
  if (fd_ >= 0) ::close(fd_);
  fd_ = -1;
  buffer_.clear();  // a partial response from the dead connection
}

ServerClient::ServerClient(const std::string& target, RetryPolicy retry,
                           std::string auth_token)
    : target_(target), auth_token_(std::move(auth_token)), retry_(retry) {
  std::string error;
  if (!parse_endpoint(target, endpoint_, error)) {
    throw std::runtime_error(error);
  }
  for (int attempt = 0;; ++attempt) {
    try {
      connect_now();
      return;
    } catch (const ConnectionLost&) {
      if (attempt >= retry_.retries) throw;
      const int backoff =
          std::min(retry_.max_backoff_ms, 50 << std::min(attempt, 20));
      std::this_thread::sleep_for(
          std::chrono::milliseconds(with_jitter(backoff)));
    }
  }
}

ServerClient::~ServerClient() {
  if (fd_ >= 0) ::close(fd_);
}

void ServerClient::send_raw(std::string_view bytes) {
  std::size_t off = 0;
  while (off < bytes.size()) {
    // MSG_NOSIGNAL: a daemon that hung up must be a thrown error, not a
    // SIGPIPE that kills the whole client process.
    const ssize_t n =
        ::send(fd_, bytes.data() + off, bytes.size() - off, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      const int err = errno;
      const std::string message =
          "write to server failed: " + std::string(std::strerror(err));
      if (err == EPIPE || err == ECONNRESET) throw ConnectionLost(message);
      throw std::runtime_error(message);
    }
    off += static_cast<std::size_t>(n);
  }
}

std::string ServerClient::read_line() {
  for (;;) {
    const std::size_t eol = buffer_.find('\n');
    if (eol != std::string::npos) {
      std::string line = buffer_.substr(0, eol);
      buffer_.erase(0, eol + 1);
      return line;
    }
    char chunk[65536];
    const ssize_t n = ::read(fd_, chunk, sizeof(chunk));
    if (n < 0) {
      if (errno == EINTR) continue;
      const int err = errno;
      const std::string message =
          "read from server failed: " + std::string(std::strerror(err));
      if (err == ECONNRESET) throw ConnectionLost(message);
      throw std::runtime_error(message);
    }
    if (n == 0) {
      throw ConnectionLost("server closed the connection");
    }
    buffer_.append(chunk, static_cast<std::size_t>(n));
  }
}

std::string ServerClient::exchange(std::string_view request_line) {
  std::string framed(request_line);
  framed.push_back('\n');
  for (int attempt = 0;; ++attempt) {
    try {
      if (fd_ < 0) connect_now();
      send_raw(framed);
      return read_line();
    } catch (const ConnectionLost&) {
      // The daemon died under us (or is still restarting). Reconnect
      // and re-send the same line -- idempotent for reads, and for
      // submits that carry a request_id.
      drop_connection();
      if (attempt >= retry_.retries) throw;
      const int backoff =
          std::min(retry_.max_backoff_ms, 50 << std::min(attempt, 20));
      std::this_thread::sleep_for(
          std::chrono::milliseconds(with_jitter(backoff)));
    }
  }
}

obs::JsonValue ServerClient::call(std::string_view request_line) {
  const std::string line = exchange(request_line);
  obs::JsonValue doc;
  if (!obs::try_parse_json(line, doc)) {
    throw std::runtime_error("server sent a non-JSON response: " + line);
  }
  return doc;
}

}  // namespace netalign::server
