#include "server/cache.hpp"

#include <sstream>
#include <stdexcept>
#include <utility>

#include "io/problem_io.hpp"

namespace netalign::server {

std::uint64_t fnv1a64(std::string_view bytes) {
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (const char c : bytes) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ull;
  }
  return h;
}

std::string content_key(std::string_view problem_text) {
  static const char* hex = "0123456789abcdef";
  std::uint64_t h = fnv1a64(problem_text);
  std::string out(16, '0');
  for (int i = 15; i >= 0; --i) {
    out[static_cast<std::size_t>(i)] = hex[h & 0xF];
    h >>= 4;
  }
  return out;
}

ProblemCache::ProblemCache(std::size_t capacity, obs::Counters* counters)
    : capacity_(capacity), counters_(counters) {
  if (capacity_ == 0) {
    throw std::invalid_argument("ProblemCache: capacity must be >= 1");
  }
}

std::shared_ptr<const CachedProblem> ProblemCache::get(const std::string& key,
                                                       const std::string& text,
                                                       bool& hit) {
  return get(key, text, SquaresBackendOptions{}, hit);
}

std::shared_ptr<const CachedProblem> ProblemCache::get(
    const std::string& key, const std::string& text,
    const SquaresBackendOptions& options, bool& hit) {
  // The mode is a second key dimension: an implicit and an explicit
  // build of the same bytes are different cached objects. The composite
  // stays internal -- job keys and journal records carry only `key`.
  const std::string mode = to_string(options.mode);
  const std::string composite = key + "#" + mode;
  std::promise<std::shared_ptr<const CachedProblem>> promise;
  Future future;
  bool builder = false;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (auto it = map_.find(composite); it != map_.end()) {
      hit = true;
      if (counters_ != nullptr) counters_->add_concurrent("server.cache_hit");
      lru_.splice(lru_.begin(), lru_, it->second.pos);  // touch
      future = it->second.future;
    } else {
      hit = false;
      builder = true;
      if (counters_ != nullptr) {
        counters_->add_concurrent("server.cache_miss");
      }
      future = promise.get_future().share();
      lru_.push_front(composite);
      map_.emplace(composite, Entry{future, lru_.begin()});
      while (map_.size() > capacity_) {
        // The new entry is at the front and capacity >= 1, so the back is
        // always some other, least-recently-used key.
        const std::string victim = lru_.back();
        lru_.pop_back();
        map_.erase(victim);
        if (counters_ != nullptr) {
          counters_->add_concurrent("server.cache_evicted");
        }
      }
    }
  }
  if (builder) {
    // Parse + squares build happen outside the lock so distinct problems
    // build concurrently; same-key requests block on the shared future.
    try {
      auto built = std::make_shared<CachedProblem>();
      built->key = key;
      built->mode = mode;
      std::istringstream in(text);
      built->problem = read_problem(in);
      // The problem is in its final location (inside the shared_ptr-owned
      // struct) before the backend is built: an implicit backend pins the
      // problem by pointer, so it must not move afterwards.
      built->squares = build_squares_backend(built->problem, options);
      promise.set_value(std::move(built));
    } catch (...) {
      promise.set_exception(std::current_exception());
      // Do not cache failures: drop the entry so a corrected resubmission
      // with a colliding key is not poisoned.
      std::lock_guard<std::mutex> lock(mutex_);
      if (auto it = map_.find(composite); it != map_.end()) {
        lru_.erase(it->second.pos);
        map_.erase(it);
      }
    }
  }
  return future.get();  // rethrows the build error for every waiter
}

std::size_t ProblemCache::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return map_.size();
}

}  // namespace netalign::server
