// Stream transports for the alignment daemon and its clients.
//
// One endpoint grammar serves both sides of the wire:
//
//   unix:<path>            AF_UNIX stream socket (the historical default;
//                          a spec with no scheme is treated as a bare path)
//   tcp:<host>:<port>      TCP over IPv4 or IPv6; bracket a literal v6
//                          address (tcp:[::1]:4455); port 0 asks the
//                          kernel for an ephemeral port, and the bound
//                          endpoint reports the real one.
//
// The transport layer knows nothing about the protocol above it beyond
// the one fact the unix liveness probe needs (a live daemon answers
// `ping`); framing, parsing, and the error taxonomy all stay in
// server/protocol.*. The Server's poll loop and the ServerClient both
// sit on these primitives, which is what makes `--listen` / `--connect`
// symmetric.
#pragma once

#include <string>
#include <string_view>

namespace netalign::server {

/// A parsed `--listen` / `--connect` spec.
struct Endpoint {
  enum class Kind { kUnix, kTcp };
  Kind kind = Kind::kUnix;
  std::string path;  ///< kUnix: filesystem path
  std::string host;  ///< kTcp: numeric address or name
  std::string port;  ///< kTcp: decimal port ("0" = kernel-assigned)

  /// Canonical spec string ("unix:/run/na.sock", "tcp:[::1]:4455").
  [[nodiscard]] std::string str() const;
};

/// Parse `spec` into `out`. A spec without a scheme is a unix path
/// (back-compat with `--socket`). Returns false with `error` set on an
/// empty path, a missing/garbage port, or an unknown scheme.
bool parse_endpoint(const std::string& spec, Endpoint& out,
                    std::string& error);

/// Blocking connect to `ep`. Returns the connected fd, or -1 with
/// `error` describing the failure and errno preserved from the failing
/// call (so callers can classify retryable cases). Name resolution
/// failures report with errno = 0.
int connect_endpoint(const Endpoint& ep, std::string& error);

bool set_nonblocking(int fd);

/// True when a live daemon answers `ping` at `ep` within 500 ms -- the
/// guard that keeps a second daemon from unlinking a running server's
/// unix socket out from under it.
bool server_alive_at(const Endpoint& ep);

/// A bound, listening, nonblocking server socket for either transport.
/// For unix endpoints, open() probes for a live incumbent before
/// unlinking a stale socket file; close() removes the path again. For
/// TCP, open() resolves the host (v4 or v6), sets SO_REUSEADDR, and
/// reads back the kernel-assigned port so bound().str() names the real
/// endpoint even after `tcp:host:0`.
class Listener {
 public:
  Listener() = default;
  ~Listener() { close(); }

  Listener(const Listener&) = delete;
  Listener& operator=(const Listener&) = delete;

  /// Bind + listen + set nonblocking. Returns false with `error` set
  /// (and nothing left open) on any failure, including a live incumbent
  /// on a unix path.
  bool open(const Endpoint& ep, std::string& error);

  [[nodiscard]] int fd() const { return fd_; }
  /// The endpoint actually bound (TCP port resolved). Valid after open().
  [[nodiscard]] const Endpoint& bound() const { return bound_; }

  /// Close the socket; unlink the path for unix endpoints.
  void close();

 private:
  int fd_ = -1;
  Endpoint bound_;
};

/// Read an auth token from `path`: the first line, trailing whitespace
/// stripped. Throws std::runtime_error on an unreadable file or an
/// empty token.
std::string load_auth_token(const std::string& path);

/// Constant-time token comparison: the scan length depends only on the
/// attacker-supplied candidate, never on how much of the secret matched.
bool tokens_equal(std::string_view secret, std::string_view candidate);

}  // namespace netalign::server
