#include "server/server.hpp"

#include <errno.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <cstring>
#include <stdexcept>
#include <vector>

#include "obs/json.hpp"
#include "server/transport.hpp"

namespace netalign::server {

namespace {

using Clock = std::chrono::steady_clock;

/// One client connection: line-buffered input, queued output. Both
/// buffers are consumed via offsets (`in_off`/`out_off`) so pipelined
/// requests and partial writes cost O(bytes), not O(bytes^2) of
/// per-line front erases; the consumed prefix is reclaimed once per
/// poll cycle.
struct Conn {
  int fd = -1;
  std::string in;
  std::size_t in_off = 0;      ///< bytes of `in` already parsed
  std::string out;
  std::size_t out_off = 0;     ///< bytes of `out` already written
  bool close_after_flush = false;
  bool dead = false;
  bool authed = false;         ///< auth handshake done (always on unix)
  Clock::time_point last_activity;  ///< for idle_timeout_ms reaping
};

}  // namespace

Server::Server(const ServerOptions& options)
    : options_(options),
      cache_(options.cache_cap, &counters_),
      jobs_(JobManagerOptions{options.workers, options.queue_cap,
                              options.tenant_queue_cap,
                              options.tenant_running_cap, options.drr_quantum,
                              options.retained_cap, options.max_problem_bytes,
                              options.work_dir, options.journal,
                              options.journal_fsync, options.recover,
                              options.checkpoint_every, options.squares_mode,
                              options.squares_max_mb},
            cache_, &counters_) {
  // Pre-register the server counters so `stats` reports them in a stable
  // order (and as explicit zeros) from the first request on. The
  // recovery counters already carry the startup pass's totals here;
  // adding zero only pins their snapshot presence.
  for (const char* name :
       {"server.requests", "server.jobs_accepted", "server.jobs_rejected",
        "server.jobs_quota_exceeded", "server.jobs_deduplicated",
        "server.jobs_completed", "server.jobs_failed",
        "server.jobs_cancelled", "server.jobs_evicted", "server.cache_hit",
        "server.cache_miss", "server.cache_evicted", "server.bad_requests",
        "server.slow_clients_dropped", "server.conns_accepted",
        "server.conns_rejected", "server.accept_errors",
        "server.idle_reaped", "server.auth_failures",
        "server.journal.appends",
        "server.journal.fsyncs", "server.journal.compactions",
        "server.recovery.terminal_restored", "server.recovery.requeued",
        "server.recovery.rerun", "server.recovery.resumed",
        "server.recovery.ignored_events",
        "server.recovery.orphans_removed"}) {
    counters_.add_concurrent(name, 0);
  }
}

Server::~Server() = default;

std::string Server::bound_address() const {
  const std::lock_guard<std::mutex> lock(bound_mu_);
  return bound_;
}

int Server::run() {
  std::string spec = options_.listen;
  if (spec.empty() && !options_.socket_path.empty()) {
    spec = "unix:" + options_.socket_path;  // legacy --socket
  }
  if (spec.empty()) {
    std::fprintf(stderr, "netalign_server: --listen (or --socket) is "
                         "required\n");
    return 2;
  }
  Endpoint ep;
  std::string error;
  if (!parse_endpoint(spec, ep, error)) {
    std::fprintf(stderr, "netalign_server: %s\n", error.c_str());
    return 2;
  }
  if (ep.kind == Endpoint::Kind::kTcp && options_.auth_token.empty()) {
    // A tokenless TCP listener would serve whoever can reach the port.
    // Refusing to start is the only safe default; unix sockets stay
    // tokenless because filesystem permissions already gate them.
    std::fprintf(stderr,
                 "netalign_server: a tcp listener requires "
                 "--auth-token-file; refusing to start\n");
    return 2;
  }

  Listener listener;
  if (!listener.open(ep, error)) {
    std::fprintf(stderr, "netalign_server: %s\n", error.c_str());
    return 1;
  }
  {
    const std::lock_guard<std::mutex> lock(bound_mu_);
    bound_ = listener.bound().str();
  }
  // The authoritative "where am I serving" line: with `tcp:host:0` only
  // the bound endpoint knows the real port, so scripts parse this.
  std::printf("netalign_server: serving on %s\n",
              listener.bound().str().c_str());
  std::fflush(stdout);

  const auto idle_timeout =
      std::chrono::milliseconds(options_.idle_timeout_ms);
  bool accept_error_logged = false;
  Clock::time_point accept_backoff_until{};
  std::vector<Conn> conns;
  for (;;) {
    if (options_.stop_flag != nullptr &&
        options_.stop_flag->load(std::memory_order_relaxed) &&
        !shutdown_requested_) {
      shutdown_requested_ = true;  // SIGTERM/SIGINT == drain shutdown
      jobs_.begin_drain();
    }

    const Clock::time_point now = Clock::now();
    // After an accept() failure (EMFILE and friends) the listener stays
    // readable forever; masking POLLIN for a beat turns a would-be busy
    // loop into a paced retry that lets fds drain.
    const bool accept_paused = now < accept_backoff_until;
    std::vector<pollfd> fds;
    fds.reserve(conns.size() + 1);
    fds.push_back({listener.fd(),
                   (shutdown_requested_ || accept_paused) ? short{0}
                                                          : short{POLLIN},
                   0});
    for (const Conn& c : conns) {
      short events = POLLIN;
      if (c.out_off < c.out.size()) events |= POLLOUT;
      fds.push_back({c.fd, events, 0});
    }
    // Finite timeout: the stop latch, drain-idle condition, accept
    // backoff, and idle reaper are all polled at this granularity.
    if (::poll(fds.data(), fds.size(), 100) < 0 && errno != EINTR) {
      std::perror("netalign_server: poll");
      break;
    }

    // Entries of `fds` beyond index 0 correspond to the first `polled`
    // connections; anything accepted below joins the next poll cycle.
    const std::size_t polled = conns.size();
    if ((fds[0].revents & POLLIN) != 0) {
      for (;;) {
        const int fd = ::accept(listener.fd(), nullptr, nullptr);
        if (fd < 0) {
          if (errno == EAGAIN || errno == EWOULDBLOCK) break;
          if (errno == EINTR || errno == ECONNABORTED) continue;
          // EMFILE/ENFILE/ENOMEM...: count it, log the first one, and
          // back off instead of silently abandoning the accept path.
          counters_.add_concurrent("server.accept_errors");
          if (!accept_error_logged) {
            accept_error_logged = true;
            std::fprintf(stderr,
                         "netalign_server: accept failed (%s); backing off "
                         "(counted in server.accept_errors)\n",
                         std::strerror(errno));
          }
          accept_backoff_until = Clock::now() +
                                 std::chrono::milliseconds(100);
          break;
        }
        if (options_.max_conns > 0 && conns.size() >= options_.max_conns) {
          // Graceful refusal: one error line the client can parse, then
          // hang up. Best-effort -- the fd is blocking-fresh but the
          // line is tiny, and a peer that cannot take it was not going
          // to read a response either.
          counters_.add_concurrent("server.conns_rejected");
          std::string refusal = error_response(
              "", ErrorCode::kRejected,
              "connection limit reached (" +
                  std::to_string(options_.max_conns) + ")");
          refusal.push_back('\n');
          (void)::send(fd, refusal.data(), refusal.size(),
                       MSG_NOSIGNAL | MSG_DONTWAIT);
          ::close(fd);
          continue;
        }
        if (!set_nonblocking(fd)) {
          ::close(fd);
          continue;
        }
        counters_.add_concurrent("server.conns_accepted");
        Conn c;
        c.fd = fd;
        c.authed = options_.auth_token.empty();
        c.last_activity = now;
        conns.push_back(std::move(c));
      }
    }

    for (std::size_t i = 0; i < polled; ++i) {
      Conn& c = conns[i];
      const short revents = fds[i + 1].revents;
      if ((revents & (POLLERR | POLLNVAL)) != 0) {
        c.dead = true;
        continue;
      }
      if ((revents & (POLLIN | POLLHUP)) != 0) {
        char buf[65536];
        for (;;) {
          const ssize_t n = ::read(c.fd, buf, sizeof(buf));
          if (n > 0) {
            c.in.append(buf, static_cast<std::size_t>(n));
            c.last_activity = now;
            continue;
          }
          if (n == 0) {
            c.close_after_flush = true;  // peer sent EOF; flush and close
          }
          break;  // n < 0: EAGAIN (drained) or error (next poll reports it)
        }
        for (;;) {
          const std::size_t eol = c.in.find('\n', c.in_off);
          if (eol == std::string::npos) {
            if (c.in.size() - c.in_off > options_.max_request_bytes) {
              counters_.add_concurrent("server.bad_requests");
              c.out += error_response(
                  "", ErrorCode::kTooLarge,
                  "request line exceeds " +
                      std::to_string(options_.max_request_bytes) + " bytes");
              c.out.push_back('\n');
              c.close_after_flush = true;
              c.in.clear();
              c.in_off = 0;
            }
            break;
          }
          const std::string_view line(c.in.data() + c.in_off, eol - c.in_off);
          c.in_off = eol + 1;
          if (line.empty()) continue;  // blank keep-alive lines are fine
          bool close_conn = false;
          c.out += handle_line(line, c.authed, close_conn);
          c.out.push_back('\n');
          if (close_conn) {
            c.close_after_flush = true;
            break;  // do not parse what a failed-auth peer pipelined
          }
        }
        // Reclaim the parsed prefix once per cycle -- an offset plus one
        // amortized erase, not a per-line erase(0, eol) that makes a
        // pipelined burst of n requests cost O(n^2) byte moves.
        if (c.in_off == c.in.size()) {
          c.in.clear();
          c.in_off = 0;
        } else if (c.in_off > 0) {
          c.in.erase(0, c.in_off);
          c.in_off = 0;
        }
      }
      while (c.out_off < c.out.size()) {
        // MSG_NOSIGNAL: a peer that hangs up mid-response must surface as
        // EPIPE on this connection, not SIGPIPE for the whole daemon.
        const ssize_t n = ::send(c.fd, c.out.data() + c.out_off,
                                 c.out.size() - c.out_off, MSG_NOSIGNAL);
        if (n < 0 && errno == EPIPE) {
          c.dead = true;
          break;
        }
        if (n <= 0) break;  // EAGAIN or error; retry at next poll
        c.out_off += static_cast<std::size_t>(n);
        c.last_activity = now;
      }
      if (c.dead) continue;
      if (c.out_off >= c.out.size()) {
        c.out.clear();
        c.out_off = 0;
        if (c.close_after_flush) c.dead = true;
      } else if (c.out.size() - c.out_off > options_.max_output_bytes) {
        // A reader this far behind (a stalled `progress` subscriber, a
        // peer that stopped draining) would otherwise grow `out` without
        // bound; shed it rather than let one connection eat the heap.
        counters_.add_concurrent("server.slow_clients_dropped");
        c.dead = true;
      } else if (c.out_off > (64u << 10)) {
        c.out.erase(0, c.out_off);  // bound the flushed prefix too
        c.out_off = 0;
      }
    }
    if (options_.idle_timeout_ms > 0) {
      // Slowloris defense: a peer parked mid-frame (or simply silent)
      // past the timeout is reaped. Active clients are safe -- any read
      // or write progress above refreshed last_activity.
      for (Conn& c : conns) {
        if (!c.dead && now - c.last_activity > idle_timeout) {
          counters_.add_concurrent("server.idle_reaped");
          c.dead = true;
        }
      }
    }
    for (std::size_t i = conns.size(); i-- > 0;) {
      if (conns[i].dead) {
        ::close(conns[i].fd);
        conns.erase(conns.begin() + static_cast<std::ptrdiff_t>(i));
      }
    }

    if (shutdown_requested_) {
      bool flushed = true;
      for (const Conn& c : conns) {
        if (c.out_off < c.out.size()) flushed = false;
      }
      if (flushed && (shutdown_now_ || jobs_.idle())) break;
    }
  }

  jobs_.shutdown(shutdown_now_);
  for (const Conn& c : conns) ::close(c.fd);
  listener.close();  // unlinks the path for unix endpoints
  return 0;
}

std::string Server::handle_line(std::string_view line, bool& authed,
                                bool& close_conn) {
  counters_.add_concurrent("server.requests");
  Request req;
  ErrorCode code = ErrorCode::kBadRequest;
  std::string message;
  if (!parse_request(line, req, code, message)) {
    counters_.add_concurrent("server.bad_requests");
    return error_response(req.id_json, code, message);
  }
  if (req.method == Method::kAuth) {
    if (tokens_equal(options_.auth_token, req.auth_token)) {
      authed = true;
      ResponseBuilder r(true, req.id_json);
      r.field("authed", true);
      return std::move(r).str();
    }
    // Wrong token: answer once, then hang up -- no free oracle for
    // guessing, and the constant-time compare above leaks no prefix.
    counters_.add_concurrent("server.auth_failures");
    close_conn = true;
    return error_response(req.id_json, ErrorCode::kAuthFailed,
                          "auth token mismatch");
  }
  if (!authed && req.method != Method::kPing) {
    // Ping stays open for health checks; everything else needs the
    // handshake first.
    return error_response(req.id_json, ErrorCode::kAuthRequired,
                          "authenticate first: "
                          "{\"method\":\"auth\",\"token\":\"...\"}");
  }
  return handle(req);
}

std::string Server::handle(const Request& req) {
  switch (req.method) {
    case Method::kAuth:
      // Connection-level; intercepted in handle_line. Unreachable.
      return error_response(req.id_json, ErrorCode::kInternal,
                            "auth is handled per connection");
    case Method::kPing: {
      ResponseBuilder r(true, req.id_json);
      r.field("protocol", std::int64_t{kProtocolVersion});
      // Version stamps (satellites of the durability work): clients can
      // tell before submitting whether this daemon's journal format and
      // wire schema match what they expect.
      r.field("proto_version", std::int64_t{kProtocolVersion});
      r.field("journal_version", std::int64_t{kJournalVersion});
      return std::move(r).str();
    }
    case Method::kSubmit:
      return handle_submit(req);
    case Method::kStatus:
      return handle_status(req);
    case Method::kProgress:
      return handle_progress(req);
    case Method::kResult:
      return handle_result(req);
    case Method::kCancel:
      return handle_cancel(req);
    case Method::kStats:
      return handle_stats(req);
    case Method::kShutdown:
      return handle_shutdown(req);
  }
  return error_response(req.id_json, ErrorCode::kInternal,
                        "unhandled method");
}

std::string Server::not_found_response(const std::string& id_json,
                                       std::int64_t job) {
  if (jobs_.expired(job)) {
    return error_response(id_json, ErrorCode::kExpired,
                          "job " + std::to_string(job) +
                              " expired (evicted by the retention policy)");
  }
  return error_response(id_json, ErrorCode::kNotFound,
                        "no job " + std::to_string(job));
}

std::string Server::handle_submit(const Request& req) {
  const JobManager::SubmitOutcome out = jobs_.submit(req.submit);
  if (!out.accepted) {
    return error_response(req.id_json, out.code, out.message);
  }
  ResponseBuilder r(true, req.id_json);
  r.field("job", out.job);
  r.field("key", out.key);
  // Path submits are re-keyed from the bytes once a worker reads them;
  // warn clients off storing the submit-time key for dedupe.
  if (out.key_provisional) r.field("key_provisional", true);
  if (out.duplicate) {
    // request_id matched an earlier submit: `job` is the original id
    // and nothing new was enqueued. The job may be in any state by now,
    // so no `state` field -- clients should poll `status`.
    r.field("duplicate", true);
    return std::move(r).str();
  }
  r.field("tenant",
          req.submit.tenant.empty() ? kDefaultTenant
                                    : req.submit.tenant.c_str());
  r.field("state", to_string(JobState::kQueued));
  return std::move(r).str();
}

std::string Server::handle_status(const Request& req) {
  const auto s = jobs_.status(req.job);
  if (!s) {
    return not_found_response(req.id_json, req.job);
  }
  ResponseBuilder r(true, req.id_json);
  r.field("job", s->id);
  r.field("state", to_string(s->state));
  if (!s->tag.empty()) r.field("tag", s->tag);
  r.field("tenant", s->tenant);
  r.field("key", s->key);
  r.field("solver", s->solver);
  r.field("cache_hit", s->cache_hit);
  if (s->queue_position >= 0) r.field("queue_position", s->queue_position);
  r.field("iterations", s->iterations);
  r.field("rounds", s->rounds);
  if (s->rounds > 0) r.field("last_objective", s->last_objective);
  if (!s->error.empty()) r.field("error_message", s->error);
  return std::move(r).str();
}

std::string Server::handle_progress(const Request& req) {
  const auto p = jobs_.progress(req.job, req.cursor);
  if (!p) {
    return not_found_response(req.id_json, req.job);
  }
  ResponseBuilder r(true, req.id_json);
  r.field("job", req.job);
  r.field("state", to_string(p->state));
  r.field("next_cursor", p->next_cursor);
  std::string events = "[";
  for (std::size_t i = 0; i < p->events.size(); ++i) {
    if (i > 0) events.push_back(',');
    events += p->events[i];
  }
  events.push_back(']');
  r.raw("events", events);
  return std::move(r).str();
}

std::string Server::handle_result(const Request& req) {
  const auto res = jobs_.result(req.job);
  if (!res) {
    return not_found_response(req.id_json, req.job);
  }
  if (res->state == JobState::kQueued || res->state == JobState::kRunning) {
    return error_response(
        req.id_json, ErrorCode::kNotReady,
        "job " + std::to_string(req.job) + " is still " +
            to_string(res->state));
  }
  if (res->state == JobState::kFailed) {
    return error_response(req.id_json, ErrorCode::kJobFailed, res->error);
  }
  if (!res->has_result) {  // cancelled before it ever ran
    return error_response(req.id_json, ErrorCode::kNoResult,
                          "job " + std::to_string(req.job) +
                              " was cancelled while queued");
  }
  ResponseBuilder r(true, req.id_json);
  r.field("job", req.job);
  r.field("state", to_string(res->state));
  r.field("stopped_reason", res->stopped_reason);
  r.field("objective", res->objective);
  r.field("weight", res->weight);
  r.field("overlap", res->overlap);
  r.field("cardinality", res->cardinality);
  r.field("best_iteration", res->best_iteration);
  r.field("iterations_completed", res->iterations_completed);
  r.field("total_seconds", res->total_seconds);
  r.field("cache_hit", res->cache_hit);
  r.field("problem", res->problem_name);
  r.field("num_a", res->num_a);
  r.field("num_b", res->num_b);
  std::string pairs = "[";
  for (std::size_t i = 0; i < res->pairs.size(); ++i) {
    if (i > 0) pairs.push_back(',');
    pairs.push_back('[');
    obs::append_json_number(pairs, std::int64_t{res->pairs[i].first});
    pairs.push_back(',');
    obs::append_json_number(pairs, std::int64_t{res->pairs[i].second});
    pairs.push_back(']');
  }
  pairs.push_back(']');
  r.raw("pairs", pairs);
  return std::move(r).str();
}

std::string Server::handle_cancel(const Request& req) {
  const JobManager::CancelOutcome out = jobs_.cancel(req.job);
  if (!out.found) {
    return not_found_response(req.id_json, req.job);
  }
  ResponseBuilder r(true, req.id_json);
  r.field("job", req.job);
  r.field("state", to_string(out.state));
  return std::move(r).str();
}

std::string Server::handle_stats(const Request& req) {
  const JobManager::QueueStats q = jobs_.queue_stats();
  ResponseBuilder r(true, req.id_json);
  r.field("queued", q.queued);
  r.field("running", q.running);
  r.field("total_jobs", q.total_jobs);
  r.field("workers", q.workers);
  r.field("queue_cap", q.queue_cap);
  r.field("tenant_queue_cap", q.tenant_queue_cap);
  r.field("tenant_running_cap", q.tenant_running_cap);
  r.field("retained", q.retained);
  r.field("retained_cap", q.retained_cap);
  r.field("evicted", q.evicted);
  r.field("cache_size", static_cast<std::int64_t>(cache_.size()));
  r.field("cache_cap", static_cast<std::int64_t>(cache_.capacity()));
  r.field("squares_mode", options_.squares_mode);
  r.field("squares_max_mb",
          static_cast<std::int64_t>(options_.squares_max_mb));
  r.field("listen", bound_address());
  r.field("auth_required", !options_.auth_token.empty());
  r.field("idle_timeout_ms", options_.idle_timeout_ms);
  r.field("max_conns", static_cast<std::int64_t>(options_.max_conns));
  r.field("draining", jobs_.draining());
  r.field("proto_version", std::int64_t{kProtocolVersion});
  r.field("journal_version", std::int64_t{kJournalVersion});
  const JobManager::JournalStats js = jobs_.journal_stats();
  r.field("journal_enabled", js.enabled);
  r.field("journal_appends", js.appends);
  r.field("journal_fsyncs", js.fsyncs);
  r.field("journal_compactions", js.compactions);
  r.field("journal_write_errors", js.write_errors);
  const JobManager::RecoveryStats& rec = jobs_.recovery();
  r.field("recovered", rec.performed);
  r.field("recovered_terminal", rec.terminal_restored);
  r.field("recovered_queued", rec.requeued);
  r.field("recovered_running", rec.rerun);
  r.field("recovered_resumed", rec.resumed);
  r.field("recovered_orphans_removed", rec.orphans_removed);
  r.field("recovered_ignored_events", rec.ignored_events);
  r.field("recovered_torn_tail", rec.torn_tail);
  std::string tenants = "{";
  for (std::size_t i = 0; i < q.tenants.size(); ++i) {
    if (i > 0) tenants.push_back(',');
    obs::append_json_string(tenants, q.tenants[i].tenant);
    tenants += ":{\"queued\":";
    obs::append_json_number(tenants, q.tenants[i].queued);
    tenants += ",\"running\":";
    obs::append_json_number(tenants, q.tenants[i].running);
    tenants += ",\"completed\":";
    obs::append_json_number(tenants, q.tenants[i].completed);
    tenants.push_back('}');
  }
  tenants.push_back('}');
  r.raw("tenants", tenants);
  std::string counters = "{";
  bool first = true;
  for (const auto& [name, value] : counters_.snapshot()) {
    if (!first) counters.push_back(',');
    first = false;
    obs::append_json_string(counters, name);
    counters.push_back(':');
    obs::append_json_number(counters, value);
  }
  counters.push_back('}');
  r.raw("counters", counters);
  return std::move(r).str();
}

std::string Server::handle_shutdown(const Request& req) {
  shutdown_requested_ = true;
  if (req.shutdown_now) shutdown_now_ = true;
  jobs_.begin_drain();
  ResponseBuilder r(true, req.id_json);
  r.field("mode", req.shutdown_now ? "now" : "drain");
  return std::move(r).str();
}

}  // namespace netalign::server
