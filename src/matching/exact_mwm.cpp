#include "matching/exact_mwm.hpp"

#include <algorithm>
#include <stdexcept>

namespace netalign {

void MwmWorkspace::resize(vid_t num_left, vid_t num_right) {
  // Right-side arrays cover the real right vertices plus one dummy per
  // left vertex (dummy of left l has id num_right + l).
  const std::size_t nr = static_cast<std::size_t>(num_right) +
                         static_cast<std::size_t>(num_left);
  pot_left.assign(static_cast<std::size_t>(num_left), 0.0);
  pot_right.assign(nr, 0.0);
  dist.assign(nr, kPosInf);
  prev_left.assign(nr, kInvalidVid);
  done.assign(nr, 0);
  touched.clear();
  touched.reserve(nr);
  heap.clear();
  mate_r_ext.assign(nr, kInvalidVid);
}

namespace detail {

weight_t solve_mwm_csr(vid_t num_left, vid_t num_right,
                       std::span<const eid_t> ptr, std::span<const vid_t> col,
                       std::span<const weight_t> w, MwmWorkspace& ws,
                       std::span<vid_t> mate_left,
                       std::span<vid_t> mate_right) {
  ws.resize(num_left, num_right);
  std::fill(mate_left.begin(), mate_left.end(), kInvalidVid);
  std::fill(mate_right.begin(), mate_right.end(), kInvalidVid);
  // mate over the extended right side (real + dummies); dummies are
  // tracked here and dropped when writing mate_right back.
  std::vector<vid_t>& prev = ws.prev_left;
  auto dummy_of = [&](vid_t l) { return num_right + l; };

  // Working min-cost convention: cost of a real edge is -w (only w > 0
  // edges participate), dummy edges cost 0. Potentials keep all reduced
  // costs c - pot_left[l] - pot_right[r] nonnegative.
  auto edge_cost = [&](eid_t e) { return -w[e]; };

  // Extended mate map for the right side including dummies.
  std::vector<vid_t>& mate_r_ext = ws.mate_r_ext;

  // Initialize left potentials to the tightest feasible value and greedily
  // match tight edges -- this removes most Dijkstra phases in practice
  // (the "heuristic initialization" matching codes rely on, cf. Langguth
  // et al., which the paper cites as critical for performance).
  for (vid_t l = 0; l < num_left; ++l) {
    weight_t best = 0.0;  // dummy edge cost 0 => pot_left <= 0
    vid_t best_r = dummy_of(l);
    for (eid_t e = ptr[l]; e < ptr[l + 1]; ++e) {
      if (w[e] <= 0.0) continue;
      if (-w[e] < best) {
        best = -w[e];
        best_r = col[e];
      }
    }
    ws.pot_left[l] = best;
    if (mate_r_ext[best_r] == kInvalidVid) {
      mate_r_ext[best_r] = l;
      mate_left[l] = best_r;
    }
  }

  auto& dist = ws.dist;
  auto& done = ws.done;
  auto& heap = ws.heap;
  const auto heap_greater = [](const std::pair<weight_t, vid_t>& a,
                               const std::pair<weight_t, vid_t>& b) {
    return a.first > b.first;
  };

  for (vid_t s = 0; s < num_left; ++s) {
    if (mate_left[s] != kInvalidVid) continue;

    // Dijkstra over right vertices in the reduced-cost graph.
    heap.clear();
    ws.touched.clear();
    auto relax = [&](vid_t from_l, vid_t r, weight_t cost, weight_t base) {
      const weight_t rc = cost - ws.pot_left[from_l] - ws.pot_right[r];
      const weight_t nd = base + rc;
      if (nd < dist[r]) {
        if (dist[r] == kPosInf) ws.touched.push_back(r);
        dist[r] = nd;
        prev[r] = from_l;
        heap.emplace_back(nd, r);
        std::push_heap(heap.begin(), heap.end(), heap_greater);
      }
    };
    auto scan_left = [&](vid_t l, weight_t base) {
      for (eid_t e = ptr[l]; e < ptr[l + 1]; ++e) {
        if (w[e] <= 0.0) continue;
        if (!done[col[e]]) relax(l, col[e], edge_cost(e), base);
      }
      if (!done[dummy_of(l)]) relax(l, dummy_of(l), 0.0, base);
    };
    scan_left(s, 0.0);

    vid_t sink = kInvalidVid;
    weight_t sink_dist = kPosInf;
    while (!heap.empty()) {
      std::pop_heap(heap.begin(), heap.end(), heap_greater);
      const auto [d, r] = heap.back();
      heap.pop_back();
      if (done[r] || d > dist[r]) continue;
      done[r] = 1;
      if (mate_r_ext[r] == kInvalidVid) {
        sink = r;
        sink_dist = d;
        break;
      }
      scan_left(mate_r_ext[r], d);
    }
    if (sink == kInvalidVid) {
      throw std::logic_error("solve_mwm_csr: no augmenting path (dummies "
                             "should make this impossible)");
    }

    // Dual update keeps reduced costs nonnegative and makes the found
    // path tight.
    ws.pot_left[s] += sink_dist;
    for (vid_t r : ws.touched) {
      if (done[r] && r != sink) {
        ws.pot_right[r] += dist[r] - sink_dist;
        const vid_t l = mate_r_ext[r];
        if (l != kInvalidVid) ws.pot_left[l] += sink_dist - dist[r];
      }
    }

    // Augment along the predecessor chain.
    vid_t r = sink;
    while (true) {
      const vid_t l = prev[r];
      const vid_t next_r = mate_left[l];
      mate_r_ext[r] = l;
      mate_left[l] = r;
      if (l == s) break;
      r = next_r;
    }

    // Reset per-phase state (only what was touched).
    for (vid_t t : ws.touched) {
      dist[t] = kPosInf;
      done[t] = 0;
      prev[t] = kInvalidVid;
    }
  }

  // Strip dummies and accumulate the matched weight.
  weight_t total = 0.0;
  for (vid_t l = 0; l < num_left; ++l) {
    const vid_t r = mate_left[l];
    if (r >= num_right) {
      mate_left[l] = kInvalidVid;  // matched to its dummy => unmatched
      continue;
    }
    mate_right[r] = l;
    // Find the edge weight by scanning the row (runs once per matched
    // vertex). Duplicate (l, r) slots may exist in caller-built CSRs; the
    // solver effectively used the heaviest one, so take the max.
    weight_t best = kNegInf;
    for (eid_t e = ptr[l]; e < ptr[l + 1]; ++e) {
      if (col[e] == r) best = std::max(best, w[e]);
    }
    if (best != kNegInf) total += best;
  }
  return total;
}

}  // namespace detail

BipartiteMatching max_weight_matching_exact(const BipartiteGraph& L,
                                            std::span<const weight_t> w,
                                            MwmWorkspace& ws) {
  if (static_cast<eid_t>(w.size()) != L.num_edges()) {
    throw std::invalid_argument("max_weight_matching_exact: weight size");
  }
  BipartiteMatching m;
  m.mate_a.assign(static_cast<std::size_t>(L.num_a()), kInvalidVid);
  m.mate_b.assign(static_cast<std::size_t>(L.num_b()), kInvalidVid);
  m.weight = detail::solve_mwm_csr(L.num_a(), L.num_b(), L.row_ptr(),
                                   L.b_cols(), w, ws, m.mate_a, m.mate_b);
  m.cardinality = 0;
  for (vid_t b : m.mate_a) {
    if (b != kInvalidVid) ++m.cardinality;
  }
  return m;
}

BipartiteMatching max_weight_matching_exact(const BipartiteGraph& L,
                                            std::span<const weight_t> w) {
  MwmWorkspace ws;
  return max_weight_matching_exact(L, w, ws);
}

}  // namespace netalign
