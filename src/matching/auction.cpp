#include "matching/auction.hpp"

#include <algorithm>
#include <stdexcept>
#include <vector>

namespace netalign {

BipartiteMatching auction_matching(const BipartiteGraph& L,
                                   std::span<const weight_t> w,
                                   const AuctionOptions& options,
                                   AuctionStats* stats) {
  if (static_cast<eid_t>(w.size()) != L.num_edges()) {
    throw std::invalid_argument("auction_matching: weight size mismatch");
  }
  const vid_t na = L.num_a();
  const vid_t nb = L.num_b();

  weight_t max_w = 0.0;
  for (eid_t e = 0; e < L.num_edges(); ++e) max_w = std::max(max_w, w[e]);

  BipartiteMatching m;
  m.mate_a.assign(static_cast<std::size_t>(na), kInvalidVid);
  m.mate_b.assign(static_cast<std::size_t>(nb), kInvalidVid);
  if (max_w <= 0.0) return m;  // no positive edges: empty matching

  // Reduction to a left-perfect assignment: every person a has a private
  // zero-weight dummy object (id nb + a); holding the dummy means staying
  // unmatched. Every person can therefore always place a bid and the
  // forward auction terminates with all persons assigned.
  const std::size_t num_objects =
      static_cast<std::size_t>(nb) + static_cast<std::size_t>(na);
  std::vector<weight_t> price(num_objects, 0.0);
  std::vector<vid_t> owner(num_objects, kInvalidVid);
  std::vector<vid_t> assigned(static_cast<std::size_t>(na), kInvalidVid);
  std::vector<vid_t> queue;
  queue.reserve(static_cast<std::size_t>(na));
  for (vid_t a = 0; a < na; ++a) queue.push_back(a);

  const double eps = std::max(options.epsilon_fraction * max_w, 1e-300);
  eid_t total_bids = 0;

  while (!queue.empty()) {
    const vid_t a = queue.back();
    queue.pop_back();
    // Best and second-best object values among real positive edges and
    // the private dummy (value -price[dummy]).
    vid_t best_obj = static_cast<vid_t>(nb + a);
    weight_t best_v = -price[best_obj];
    weight_t second_v = kNegInf;
    for (eid_t e = L.row_begin(a); e < L.row_end(a); ++e) {
      if (w[e] <= 0.0) continue;
      const vid_t b = L.edge_b(e);
      const weight_t v = w[e] - price[b];
      if (v > best_v) {
        second_v = best_v;
        best_v = v;
        best_obj = b;
      } else if (v > second_v) {
        second_v = v;
      }
    }
    // Bid: raise the target's price to indifference plus eps. With no
    // competing option (second_v = -inf) a minimal raise suffices.
    const weight_t raise =
        (second_v == kNegInf ? 0.0 : best_v - second_v) + eps;
    price[best_obj] += raise;
    ++total_bids;
    const vid_t evicted = owner[best_obj];
    owner[best_obj] = a;
    assigned[a] = best_obj;
    if (evicted != kInvalidVid) {
      assigned[evicted] = kInvalidVid;
      queue.push_back(evicted);
    }
  }

  for (vid_t a = 0; a < na; ++a) {
    const vid_t b = assigned[a];
    if (b == kInvalidVid || b >= nb) continue;  // dummy => unmatched
    m.mate_a[a] = b;
    m.mate_b[b] = a;
    m.cardinality += 1;
    m.weight += w[L.find_edge(a, b)];
  }
  if (stats) {
    stats->bids = total_bids;
    stats->epsilon = eps;
  }
  return m;
}

}  // namespace netalign
