#include "matching/small_mwm.hpp"

#include <algorithm>

namespace netalign {

weight_t SmallMwmSolver::solve(std::span<const Edge> edges,
                               std::span<std::uint8_t> chosen) {
  std::fill(chosen.begin(), chosen.end(), std::uint8_t{0});
  solve_calls_ += 1;
  edges_seen_ += static_cast<std::int64_t>(edges.size());
  if (edges.empty()) return 0.0;

  // Compress endpoint ids to dense local ranges.
  uniq_a_.clear();
  uniq_b_.clear();
  for (const auto& e : edges) {
    uniq_a_.push_back(e.a);
    uniq_b_.push_back(e.b);
  }
  std::sort(uniq_a_.begin(), uniq_a_.end());
  uniq_a_.erase(std::unique(uniq_a_.begin(), uniq_a_.end()), uniq_a_.end());
  std::sort(uniq_b_.begin(), uniq_b_.end());
  uniq_b_.erase(std::unique(uniq_b_.begin(), uniq_b_.end()), uniq_b_.end());
  const vid_t nl = static_cast<vid_t>(uniq_a_.size());
  const vid_t nr = static_cast<vid_t>(uniq_b_.size());

  local_a_.resize(edges.size());
  local_b_.resize(edges.size());
  for (std::size_t k = 0; k < edges.size(); ++k) {
    local_a_[k] = static_cast<vid_t>(
        std::lower_bound(uniq_a_.begin(), uniq_a_.end(), edges[k].a) -
        uniq_a_.begin());
    local_b_[k] = static_cast<vid_t>(
        std::lower_bound(uniq_b_.begin(), uniq_b_.end(), edges[k].b) -
        uniq_b_.begin());
  }

  // Tiny CSR, rows sorted by (a, b); remember which input edge each slot is.
  order_.resize(edges.size());
  for (std::size_t k = 0; k < edges.size(); ++k) {
    order_[k] = static_cast<eid_t>(k);
  }
  std::sort(order_.begin(), order_.end(), [&](eid_t x, eid_t y) {
    return local_a_[x] != local_a_[y] ? local_a_[x] < local_a_[y]
                                      : local_b_[x] < local_b_[y];
  });
  ptr_.assign(static_cast<std::size_t>(nl) + 1, 0);
  for (std::size_t k = 0; k < edges.size(); ++k) ptr_[local_a_[k] + 1]++;
  for (vid_t l = 0; l < nl; ++l) ptr_[l + 1] += ptr_[l];
  col_.resize(edges.size());
  wgt_.resize(edges.size());
  edge_of_slot_.resize(edges.size());
  for (std::size_t slot = 0; slot < order_.size(); ++slot) {
    const eid_t k = order_[slot];
    col_[slot] = local_b_[k];
    wgt_[slot] = edges[k].w;
    edge_of_slot_[slot] = k;
  }

  mate_l_.assign(static_cast<std::size_t>(nl), kInvalidVid);
  mate_r_.assign(static_cast<std::size_t>(nr), kInvalidVid);
  const weight_t value = detail::solve_mwm_csr(nl, nr, ptr_, col_, wgt_, ws_,
                                               mate_l_, mate_r_);

  // Report the chosen slots back in input-edge indexing. Duplicate (a, b)
  // pairs can reach here (distinct squares can share an L-edge pair); mark
  // only the heaviest duplicate as chosen, matching what the solver used.
  for (vid_t l = 0; l < nl; ++l) {
    const vid_t r = mate_l_[l];
    if (r == kInvalidVid) continue;
    eid_t best_slot = kInvalidEid;
    for (eid_t slot = ptr_[l]; slot < ptr_[l + 1]; ++slot) {
      if (col_[slot] == r &&
          (best_slot == kInvalidEid || wgt_[slot] > wgt_[best_slot])) {
        best_slot = slot;
      }
    }
    if (best_slot != kInvalidEid) {
      chosen[edge_of_slot_[best_slot]] = 1;
    }
  }
  return value;
}

}  // namespace netalign
