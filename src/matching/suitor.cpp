#include "matching/suitor.hpp"

#include <atomic>
#include <stdexcept>
#include <vector>

#include "obs/counters.hpp"
#include "util/parallel.hpp"

namespace netalign {

namespace {

/// Proposal by u with weight wu beats the standing proposal (ws, s) at a
/// vertex when it is strictly heavier, or equally heavy from a smaller id.
/// The strict lexicographic order is what makes displacement chains finite.
bool beats(weight_t wu, vid_t u, weight_t ws, vid_t s) {
  return wu > ws || (wu == ws && (s == kInvalidVid || u < s));
}

}  // namespace

BipartiteMatching suitor_matching(const BipartiteGraph& L,
                                  std::span<const weight_t> w,
                                  SuitorStats* stats,
                                  obs::Counters* counters) {
  if (static_cast<eid_t>(w.size()) != L.num_edges()) {
    throw std::invalid_argument("suitor_matching: weight size mismatch");
  }
  const vid_t na = L.num_a();
  const vid_t n = na + L.num_b();

  std::vector<std::atomic<vid_t>> suitor(static_cast<std::size_t>(n));
  std::vector<weight_t> suitor_w(static_cast<std::size_t>(n), 0.0);
  std::vector<std::atomic_flag> lock(static_cast<std::size_t>(n));
  for (vid_t v = 0; v < n; ++v) {
    suitor[v].store(kInvalidVid, std::memory_order_relaxed);
    lock[v].clear(std::memory_order_relaxed);
  }
  std::atomic<eid_t> proposals{0};
  std::atomic<eid_t> displaced{0};
  const bool count = stats != nullptr || counters != nullptr;

  auto for_neighbors = [&](vid_t v, auto&& f) {
    if (v < na) {
      for (eid_t e = L.row_begin(v); e < L.row_end(v); ++e) {
        f(static_cast<vid_t>(na + L.edge_b(e)), w[e]);
      }
    } else {
      const vid_t b = v - na;
      for (eid_t k = L.col_begin(b); k < L.col_end(b); ++k) {
        f(L.col_a(k), w[L.col_edge(k)]);
      }
    }
  };

#pragma omp parallel for schedule(dynamic, kDynamicChunk)
  for (vid_t start = 0; start < n; ++start) {
    vid_t current = start;
    while (current != kInvalidVid) {
      // Pick the heaviest neighbor whose standing proposal we can beat.
      vid_t target = kInvalidVid;
      weight_t target_w = 0.0;
      for_neighbors(current, [&](vid_t t, weight_t wt) {
        if (wt <= 0.0) return;
        if (!beats(wt, current, suitor_w[t],
                   suitor[t].load(std::memory_order_acquire))) {
          return;
        }
        if (wt > target_w ||
            (wt == target_w && (target == kInvalidVid || t < target))) {
          target = t;
          target_w = wt;
        }
      });
      if (target == kInvalidVid) break;

      // Commit under the target's lock; the standing proposal may have
      // improved since the scan, in which case rescan from `current`.
      vid_t next = current;
      while (lock[target].test_and_set(std::memory_order_acquire)) {
      }
      const vid_t standing = suitor[target].load(std::memory_order_relaxed);
      if (beats(target_w, current, suitor_w[target], standing)) {
        suitor[target].store(current, std::memory_order_relaxed);
        suitor_w[target] = target_w;
        next = standing;  // displaced suitor re-proposes (or kInvalidVid)
        if (count) {
          proposals.fetch_add(1, std::memory_order_relaxed);
          if (standing != kInvalidVid) {
            displaced.fetch_add(1, std::memory_order_relaxed);
          }
        }
      }
      lock[target].clear(std::memory_order_release);
      current = next;
    }
  }

  BipartiteMatching m;
  m.mate_a.assign(static_cast<std::size_t>(L.num_a()), kInvalidVid);
  m.mate_b.assign(static_cast<std::size_t>(L.num_b()), kInvalidVid);
  for (vid_t a = 0; a < na; ++a) {
    const vid_t g = suitor[a].load(std::memory_order_relaxed);
    if (g == kInvalidVid) continue;
    if (suitor[g].load(std::memory_order_relaxed) != a) continue;
    const vid_t b = g - na;
    m.mate_a[a] = b;
    m.mate_b[b] = a;
    m.cardinality += 1;
    m.weight += w[L.find_edge(a, b)];
  }
  if (stats) {
    stats->proposals = proposals.load(std::memory_order_relaxed);
    stats->displaced = displaced.load(std::memory_order_relaxed);
  }
  if (counters) {
    counters->add_concurrent("suitor.calls");
    counters->add_concurrent("suitor.proposals",
                             proposals.load(std::memory_order_relaxed));
    counters->add_concurrent("suitor.displaced",
                             displaced.load(std::memory_order_relaxed));
  }
  return m;
}

}  // namespace netalign
