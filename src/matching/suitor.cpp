#include "matching/suitor.hpp"

#include <atomic>
#include <stdexcept>
#include <vector>

#include "obs/counters.hpp"
#include "util/parallel.hpp"

namespace netalign {

namespace {

/// Proposal by u with weight wu beats the standing proposal (ws, s) at a
/// vertex when it is strictly heavier, or equally heavy from a smaller id.
/// The strict lexicographic order is what makes displacement chains finite.
bool beats(weight_t wu, vid_t u, weight_t ws, vid_t s) {
  return wu > ws || (wu == ws && (s == kInvalidVid || u < s));
}

}  // namespace

BipartiteMatching suitor_matching(const BipartiteGraph& L,
                                  std::span<const weight_t> w,
                                  SuitorStats* stats,
                                  obs::Counters* counters) {
  if (static_cast<eid_t>(w.size()) != L.num_edges()) {
    throw std::invalid_argument("suitor_matching: weight size mismatch");
  }
  const vid_t na = L.num_a();
  const vid_t n = na + L.num_b();

  // Standing proposal per vertex, packed as the single CSR edge id of the
  // proposing edge (kInvalidEid = no proposal yet). The (weight, suitor)
  // pair decodes from the id against immutable arrays, so the lock-free
  // scan can never observe a torn pair -- see "Memory model" in suitor.hpp.
  std::vector<std::atomic<eid_t>> proposal(static_cast<std::size_t>(n));
  std::vector<std::atomic_flag> lock(static_cast<std::size_t>(n));
  for (vid_t v = 0; v < n; ++v) {
    proposal[v].store(kInvalidEid, std::memory_order_relaxed);
    lock[v].clear(std::memory_order_relaxed);
  }
  std::atomic<eid_t> proposals{0};
  std::atomic<eid_t> displaced{0};
  const bool count = stats != nullptr || counters != nullptr;

  // Global id of the vertex that proposed to t via edge e (t's opposite
  // endpoint on e).
  auto proposer_of = [&](vid_t t, eid_t e) {
    return t < na ? static_cast<vid_t>(na + L.edge_b(e)) : L.edge_a(e);
  };

  auto for_neighbors = [&](vid_t v, auto&& f) {
    if (v < na) {
      for (eid_t e = L.row_begin(v); e < L.row_end(v); ++e) {
        f(static_cast<vid_t>(na + L.edge_b(e)), w[e], e);
      }
    } else {
      const vid_t b = v - na;
      for (eid_t k = L.col_begin(b); k < L.col_end(b); ++k) {
        const eid_t e = L.col_edge(k);
        f(L.col_a(k), w[e], e);
      }
    }
  };

  fenced_parallel([&] {
#pragma omp for schedule(dynamic, kDynamicChunk) nowait
    for (vid_t start = 0; start < n; ++start) {
      vid_t current = start;
      while (current != kInvalidVid) {
        // Pick the heaviest neighbor whose standing proposal we can beat.
        vid_t target = kInvalidVid;
        weight_t target_w = 0.0;
        eid_t target_e = kInvalidEid;
        for_neighbors(current, [&](vid_t t, weight_t wt, eid_t e) {
          if (wt <= 0.0) return;
          const eid_t se = proposal[t].load(std::memory_order_acquire);
          const weight_t ws = se == kInvalidEid ? 0.0 : w[se];
          const vid_t s = se == kInvalidEid ? kInvalidVid : proposer_of(t, se);
          if (!beats(wt, current, ws, s)) return;
          if (wt > target_w ||
              (wt == target_w && (target == kInvalidVid || t < target))) {
            target = t;
            target_w = wt;
            target_e = e;
          }
        });
        if (target == kInvalidVid) break;

        // Commit under the target's lock; the standing proposal may have
        // improved since the scan, in which case rescan from `current`.
        vid_t next = current;
        while (lock[target].test_and_set(std::memory_order_acquire)) {
        }
        const eid_t se = proposal[target].load(std::memory_order_relaxed);
        const weight_t ws = se == kInvalidEid ? 0.0 : w[se];
        const vid_t standing =
            se == kInvalidEid ? kInvalidVid : proposer_of(target, se);
        if (beats(target_w, current, ws, standing)) {
          proposal[target].store(target_e, std::memory_order_release);
          next = standing;  // displaced suitor re-proposes (or kInvalidVid)
          if (count) {
            proposals.fetch_add(1, std::memory_order_relaxed);
            if (standing != kInvalidVid) {
              displaced.fetch_add(1, std::memory_order_relaxed);
            }
          }
        }
        lock[target].clear(std::memory_order_release);
        current = next;
      }
    }
  });

  // A pair is matched when its proposals are mutual; both sides then hold
  // the same CSR edge id, which also supplies the weight directly.
  BipartiteMatching m;
  m.mate_a.assign(static_cast<std::size_t>(L.num_a()), kInvalidVid);
  m.mate_b.assign(static_cast<std::size_t>(L.num_b()), kInvalidVid);
  for (vid_t a = 0; a < na; ++a) {
    const eid_t e = proposal[a].load(std::memory_order_relaxed);
    if (e == kInvalidEid) continue;
    const vid_t b = L.edge_b(e);
    if (proposal[na + b].load(std::memory_order_relaxed) != e) continue;
    m.mate_a[a] = b;
    m.mate_b[b] = a;
    m.cardinality += 1;
    m.weight += w[e];
  }
  if (stats) {
    stats->proposals = proposals.load(std::memory_order_relaxed);
    stats->displaced = displaced.load(std::memory_order_relaxed);
  }
  if (counters) {
    counters->add_concurrent("suitor.calls");
    counters->add_concurrent("suitor.proposals",
                             proposals.load(std::memory_order_relaxed));
    counters->add_concurrent("suitor.displaced",
                             displaced.load(std::memory_order_relaxed));
  }
  return m;
}

}  // namespace netalign
