// Parallel locally-dominant 1/2-approximate max-weight matching.
//
// This is the paper's Section V algorithm (PARALLELMATCH with FINDMATE and
// MATCHVERTEX): the multicore adaptation, due to Halappanavar et al., of
// the Preis / Manne-Bisseling locally-dominant algorithm. An edge is
// locally dominant when it is the heaviest edge incident on both of its
// endpoints (ties broken by vertex id); repeatedly matching locally
// dominant edges yields a *maximal* matching whose weight is at least half
// of the maximum -- and at least half the maximum cardinality too.
//
// Structure, following the paper exactly:
//  - Phase 1: every vertex computes its candidate (heaviest unmatched
//    neighbor) in parallel, then locally-dominant pairs are matched and the
//    matched vertices enter the current queue Q_C.
//  - Phase 2: while Q_C is non-empty, every matched vertex u in Q_C scans
//    its neighborhood; any unmatched neighbor v whose candidate was u picks
//    a new candidate and is matched if the new pairing is locally dominant.
//    Newly matched vertices enter Q_N; the queues swap at a barrier.
//
// Queue appends use an atomic fetch-and-add on the queue length -- the
// paper uses the __sync_fetch_and_add intrinsic; we use the equivalent
// std::atomic operation. The bipartite graph L is presented to the
// algorithm as a general graph: vertices of V_A are ids [0, num_a) and
// vertices of V_B are ids [num_a, num_a + num_b), exactly as the paper
// describes ("by not making a distinction between the two sets").
//
// The per-round queue sizes are recorded: the paper observes they shrink
// roughly by half per round, giving the expected O(log |V|) parallel depth,
// and bench_matching reproduces that series.
#pragma once

#include <atomic>
#include <span>
#include <vector>

#include "matching/matching.hpp"

namespace netalign {

/// Initialization strategy (paper Section V, last paragraph): the default
/// spawns work from both vertex sets; the bipartite-aware variant spawns
/// only from V_A and checks dominance through V_B's adjacency, which the
/// paper found "noticeably improved the speed".
enum class LdInit {
  kTwoSided,
  kOneSided,
};

struct LdOptions {
  LdInit init = LdInit::kTwoSided;
};

/// Observability for the scaling analysis.
struct LdStats {
  std::vector<eid_t> queue_sizes;  ///< |Q_C| at the start of each round
  int rounds = 0;                  ///< iterations of the phase-2 while loop
  eid_t findmate_calls = 0;        ///< total neighborhood scans
};

/// Reusable allocation block for the solver's per-vertex state (five
/// |V_A|+|V_B|-sized vectors). Batched callers -- BP rounds up to
/// 2 * batch_size matchings per flush -- pass one workspace per concurrent
/// call so repeated matchings stop paying an allocation plus first-touch
/// page faults each time; values are reinitialized on every call, so a
/// workspace carries no state between calls and may be reused across
/// different graphs (it grows to the largest |V| seen). Not shareable
/// between concurrent calls.
struct LdWorkspace {
  std::vector<std::atomic<vid_t>> mate;
  std::vector<std::atomic<vid_t>> candidate;
  std::vector<std::atomic_flag> lock;
  std::vector<vid_t> queue_current;
  std::vector<vid_t> queue_next;
};

/// Locally-dominant matching on L under external weights w (w <= 0 edges
/// ignored). With one thread the result is fully deterministic (candidate
/// selection depends only on weights and ids). With multiple threads the
/// set of matched edges can vary with scheduling -- as in the original
/// algorithm -- but every result is a maximal matching with at least half
/// the maximum weight and half the maximum cardinality. `workspace`, when
/// given, supplies the solver's scratch vectors (see LdWorkspace); the
/// result does not depend on it.
BipartiteMatching locally_dominant_matching(const BipartiteGraph& L,
                                            std::span<const weight_t> w,
                                            const LdOptions& options = {},
                                            LdStats* stats = nullptr,
                                            LdWorkspace* workspace = nullptr);

}  // namespace netalign
