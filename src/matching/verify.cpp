#include "matching/verify.hpp"

#include <algorithm>
#include <functional>
#include <stdexcept>

namespace netalign {

std::vector<eid_t> BipartiteMatching::matched_edges(
    const BipartiteGraph& L) const {
  std::vector<eid_t> edges;
  edges.reserve(static_cast<std::size_t>(cardinality));
  for (vid_t a = 0; a < L.num_a(); ++a) {
    if (mate_a[a] == kInvalidVid) continue;
    const eid_t e = L.find_edge(a, mate_a[a]);
    if (e != kInvalidEid) edges.push_back(e);
  }
  return edges;
}

std::vector<std::uint8_t> BipartiteMatching::indicator(
    const BipartiteGraph& L) const {
  std::vector<std::uint8_t> x(static_cast<std::size_t>(L.num_edges()), 0);
  for (const eid_t e : matched_edges(L)) x[e] = 1;
  return x;
}

bool is_valid_matching(const BipartiteGraph& L, const BipartiteMatching& m) {
  if (static_cast<vid_t>(m.mate_a.size()) != L.num_a() ||
      static_cast<vid_t>(m.mate_b.size()) != L.num_b()) {
    return false;
  }
  eid_t count = 0;
  for (vid_t a = 0; a < L.num_a(); ++a) {
    const vid_t b = m.mate_a[a];
    if (b == kInvalidVid) continue;
    if (b < 0 || b >= L.num_b()) return false;
    if (m.mate_b[b] != a) return false;
    if (L.find_edge(a, b) == kInvalidEid) return false;
    ++count;
  }
  for (vid_t b = 0; b < L.num_b(); ++b) {
    const vid_t a = m.mate_b[b];
    if (a == kInvalidVid) continue;
    if (a < 0 || a >= L.num_a()) return false;
    if (m.mate_a[a] != b) return false;
  }
  return count == m.cardinality;
}

bool is_maximal_matching(const BipartiteGraph& L,
                         std::span<const weight_t> w,
                         const BipartiteMatching& m) {
  for (eid_t e = 0; e < L.num_edges(); ++e) {
    if (w[e] <= 0.0) continue;
    if (m.mate_a[L.edge_a(e)] == kInvalidVid &&
        m.mate_b[L.edge_b(e)] == kInvalidVid) {
      return false;
    }
  }
  return true;
}

weight_t matching_weight(const BipartiteGraph& L, std::span<const weight_t> w,
                         const BipartiteMatching& m) {
  weight_t total = 0.0;
  for (vid_t a = 0; a < L.num_a(); ++a) {
    if (m.mate_a[a] == kInvalidVid) continue;
    const eid_t e = L.find_edge(a, m.mate_a[a]);
    if (e == kInvalidEid) {
      throw std::logic_error("matching_weight: matched non-edge");
    }
    total += w[e];
  }
  return total;
}

weight_t brute_force_mwm_value(const BipartiteGraph& L,
                               std::span<const weight_t> w) {
  if (L.num_edges() > 24) {
    throw std::invalid_argument("brute_force_mwm_value: graph too large");
  }
  std::vector<std::uint8_t> used_a(static_cast<std::size_t>(L.num_a()), 0);
  std::vector<std::uint8_t> used_b(static_cast<std::size_t>(L.num_b()), 0);
  weight_t best = 0.0;
  std::function<void(eid_t, weight_t)> dfs = [&](eid_t e, weight_t acc) {
    best = std::max(best, acc);
    for (eid_t f = e; f < L.num_edges(); ++f) {
      if (w[f] <= 0.0) continue;
      const vid_t a = L.edge_a(f);
      const vid_t b = L.edge_b(f);
      if (used_a[a] || used_b[b]) continue;
      used_a[a] = used_b[b] = 1;
      dfs(f + 1, acc + w[f]);
      used_a[a] = used_b[b] = 0;
    }
  };
  dfs(0, 0.0);
  return best;
}

}  // namespace netalign
