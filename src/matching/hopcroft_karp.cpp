#include "matching/hopcroft_karp.hpp"

#include <functional>
#include <limits>
#include <stdexcept>
#include <vector>

namespace netalign {

namespace {
constexpr int kInf = std::numeric_limits<int>::max();
}  // namespace

BipartiteMatching maximum_cardinality_matching(
    const BipartiteGraph& L, std::span<const std::uint8_t> eligible) {
  if (!eligible.empty() &&
      static_cast<eid_t>(eligible.size()) != L.num_edges()) {
    throw std::invalid_argument(
        "maximum_cardinality_matching: eligible size mismatch");
  }
  const vid_t na = L.num_a();
  const vid_t nb = L.num_b();
  auto ok = [&](eid_t e) { return eligible.empty() || eligible[e] != 0; };

  BipartiteMatching m;
  m.mate_a.assign(static_cast<std::size_t>(na), kInvalidVid);
  m.mate_b.assign(static_cast<std::size_t>(nb), kInvalidVid);

  std::vector<int> dist(static_cast<std::size_t>(na), kInf);
  std::vector<vid_t> bfs_queue;
  bfs_queue.reserve(static_cast<std::size_t>(na));

  // BFS layers from free A vertices; returns true while augmenting paths
  // exist.
  auto bfs = [&]() {
    bfs_queue.clear();
    int free_layer = kInf;
    for (vid_t a = 0; a < na; ++a) {
      if (m.mate_a[a] == kInvalidVid) {
        dist[a] = 0;
        bfs_queue.push_back(a);
      } else {
        dist[a] = kInf;
      }
    }
    for (std::size_t head = 0; head < bfs_queue.size(); ++head) {
      const vid_t a = bfs_queue[head];
      if (dist[a] >= free_layer) continue;
      for (eid_t e = L.row_begin(a); e < L.row_end(a); ++e) {
        if (!ok(e)) continue;
        const vid_t b = L.edge_b(e);
        const vid_t a2 = m.mate_b[b];
        if (a2 == kInvalidVid) {
          free_layer = std::min(free_layer, dist[a] + 1);
        } else if (dist[a2] == kInf) {
          dist[a2] = dist[a] + 1;
          bfs_queue.push_back(a2);
        }
      }
    }
    return free_layer != kInf;
  };

  // Layered DFS augmentation.
  std::function<bool(vid_t)> dfs = [&](vid_t a) {
    for (eid_t e = L.row_begin(a); e < L.row_end(a); ++e) {
      if (!ok(e)) continue;
      const vid_t b = L.edge_b(e);
      const vid_t a2 = m.mate_b[b];
      if (a2 == kInvalidVid || (dist[a2] == dist[a] + 1 && dfs(a2))) {
        m.mate_a[a] = b;
        m.mate_b[b] = a;
        return true;
      }
    }
    dist[a] = kInf;  // dead end; prune for this phase
    return false;
  };

  while (bfs()) {
    for (vid_t a = 0; a < na; ++a) {
      if (m.mate_a[a] == kInvalidVid && dist[a] == 0 && dfs(a)) {
        m.cardinality += 1;
      }
    }
  }
  return m;
}

}  // namespace netalign
