// Exact sparse max-weight bipartite matching.
//
// This is the "exact" baseline the paper compares against (its Table I
// bipartite_match). We solve maximum-weight (not perfect, not maximum-
// cardinality) matching by the classic reduction: give every left vertex a
// private zero-weight dummy partner so a left-perfect matching always
// exists, then run the Jonker-Volgenant / Hungarian successive-shortest-
// path algorithm with dual potentials and Dijkstra. Worst case
// O(n (m + n log n)) -- the same practical complexity class the paper cites
// for exact matching codes (O(|E_L| N log N)), and the reason the exact
// rounding step dominates the alignment runtime.
#pragma once

#include <span>
#include <vector>

#include "matching/matching.hpp"

namespace netalign {

/// Reusable workspace so repeated solves (one per BP rounding, or one per
/// row of S in Klau's method) perform no allocations after the first call.
/// Not thread-safe: use one workspace per thread.
class MwmWorkspace {
 public:
  void resize(vid_t num_left, vid_t num_right);

  // Dual potentials, persisted across solves of the same sizes; solvers
  // reset them per call.
  std::vector<weight_t> pot_left;
  std::vector<weight_t> pot_right;
  std::vector<weight_t> dist;
  std::vector<vid_t> prev_left;    // tree predecessor (left vertex) per right
  std::vector<std::uint8_t> done;  // finalized marker per right vertex
  std::vector<vid_t> touched;      // right vertices to reset after a phase
  std::vector<std::pair<weight_t, vid_t>> heap;  // binary heap storage
  std::vector<vid_t> mate_r_ext;   // right-side mates incl. dummy vertices
};

/// Exact max-weight matching on L under external weights w (indexed by
/// edge id). Edges with w <= 0 are ignored.
BipartiteMatching max_weight_matching_exact(const BipartiteGraph& L,
                                            std::span<const weight_t> w);

/// As above, reusing a caller-provided workspace (no allocation after the
/// first call with a given problem size).
BipartiteMatching max_weight_matching_exact(const BipartiteGraph& L,
                                            std::span<const weight_t> w,
                                            MwmWorkspace& ws);

namespace detail {

/// Core solver over raw CSR arrays (left-to-right adjacency). Used by both
/// the full-graph solver above and the small per-row solver. Writes mate
/// maps (kInvalidVid = unmatched) and returns the matched weight.
/// Left vertex l has implicit access to a zero-weight dummy, so the solve
/// always succeeds. Edges with w <= 0 are skipped.
weight_t solve_mwm_csr(vid_t num_left, vid_t num_right,
                       std::span<const eid_t> ptr, std::span<const vid_t> col,
                       std::span<const weight_t> w, MwmWorkspace& ws,
                       std::span<vid_t> mate_left,
                       std::span<vid_t> mate_right);

}  // namespace detail

}  // namespace netalign
