// Matching verification predicates, used by the test suite's property
// checks and by assertion-heavy debug paths in the benches.
#pragma once

#include <span>

#include "matching/matching.hpp"

namespace netalign {

/// Structural validity: mate maps are mutually consistent, every matched
/// pair is an actual edge of L, and no vertex appears twice.
bool is_valid_matching(const BipartiteGraph& L, const BipartiteMatching& m);

/// Maximality w.r.t. positive-weight edges: no edge with w > 0 has both
/// endpoints unmatched. Half-approximation of *cardinality* follows from
/// this (paper Section V: the algorithm "computes a maximal matching").
bool is_maximal_matching(const BipartiteGraph& L,
                         std::span<const weight_t> w,
                         const BipartiteMatching& m);

/// Recompute the matched weight under w from the mate maps.
weight_t matching_weight(const BipartiteGraph& L, std::span<const weight_t> w,
                         const BipartiteMatching& m);

/// Brute-force exact max-weight matching by edge-subset enumeration over
/// DFS on the edge list. Exponential; only for tiny test graphs (the
/// oracle for property tests of the real solvers).
weight_t brute_force_mwm_value(const BipartiteGraph& L,
                               std::span<const weight_t> w);

}  // namespace netalign
