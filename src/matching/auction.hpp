// Auction algorithm for max-weight bipartite matching (Bertsekas).
//
// An alternative solver with a very different parallelization profile from
// the successive-shortest-path Hungarian: persons (A vertices) bid for
// objects (B vertices), prices rise monotonically until every person holds
// its best-value object (or its private zero-weight dummy, i.e. stays
// unmatched). The returned matching satisfies eps-complementary
// slackness, so its weight is within cardinality * eps of the optimum.
//
// This is the plain single-level forward auction: full epsilon *scaling*
// for the non-perfect (asymmetric) problem requires alternating forward
// and reverse phases (prices must be able to fall when persons can opt
// out), which is out of scope -- the default epsilon already gives
// near-exact results and the worst case (heavily tied weights) degrades
// to O(max_weight / epsilon) bids per contested object.
//
// Included as an extension point (the paper's discussion calls for better
// matching algorithms) and as an independent cross-check of the exact
// solver in the test suite.
#pragma once

#include <span>

#include "matching/matching.hpp"

namespace netalign {

struct AuctionOptions {
  /// Bid increment as a fraction of the maximum edge weight. The weight
  /// error bound is cardinality * epsilon_fraction * max_weight.
  double epsilon_fraction = 1e-7;
};

struct AuctionStats {
  eid_t bids = 0;  ///< total bids
  double epsilon = 0.0;
};

/// Auction matching on L under external weights (w <= 0 edges ignored).
BipartiteMatching auction_matching(const BipartiteGraph& L,
                                   std::span<const weight_t> w,
                                   const AuctionOptions& options = {},
                                   AuctionStats* stats = nullptr);

}  // namespace netalign
