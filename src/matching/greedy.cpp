#include "matching/greedy.hpp"

#include <algorithm>
#include <stdexcept>
#include <vector>

namespace netalign {

BipartiteMatching greedy_matching(const BipartiteGraph& L,
                                  std::span<const weight_t> w) {
  if (static_cast<eid_t>(w.size()) != L.num_edges()) {
    throw std::invalid_argument("greedy_matching: weight size mismatch");
  }
  std::vector<eid_t> order;
  order.reserve(static_cast<std::size_t>(L.num_edges()));
  for (eid_t e = 0; e < L.num_edges(); ++e) {
    if (w[e] > 0.0) order.push_back(e);
  }
  std::sort(order.begin(), order.end(), [&](eid_t x, eid_t y) {
    return w[x] != w[y] ? w[x] > w[y] : x < y;
  });

  BipartiteMatching m;
  m.mate_a.assign(static_cast<std::size_t>(L.num_a()), kInvalidVid);
  m.mate_b.assign(static_cast<std::size_t>(L.num_b()), kInvalidVid);
  for (eid_t e : order) {
    const vid_t a = L.edge_a(e);
    const vid_t b = L.edge_b(e);
    if (m.mate_a[a] == kInvalidVid && m.mate_b[b] == kInvalidVid) {
      m.mate_a[a] = b;
      m.mate_b[b] = a;
      m.weight += w[e];
      m.cardinality += 1;
    }
  }
  return m;
}

}  // namespace netalign
