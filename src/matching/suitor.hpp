// Suitor 1/2-approximate max-weight matching.
//
// The paper's future-work section points at better approximate matching
// algorithms for bipartite graphs; the Suitor algorithm (Manne and
// Halappanavar, IPDPS 2014) is the successor to the locally-dominant
// algorithm used in the paper and typically performs far fewer neighborhood
// scans. We include it as the extension module so the matching ablation
// bench can compare all three 1/2-approximation strategies (greedy,
// locally-dominant, suitor) for quality and scan counts.
//
// Each vertex proposes to the heaviest neighbor whose current best proposal
// it can beat; a displaced suitor re-proposes. The fixed point assigns each
// matched pair mutually-best proposals and yields the same matching as the
// greedy algorithm under consistent tie-breaking.
//
// Memory model. The standing proposal at a vertex t is logically a pair
// (weight, suitor id), read lock-free by scanning threads and replaced
// under t's spinlock by committing threads. Storing the pair in two words
// is a data race on the weight (UB) and, worse, lets a scan observe a torn
// pair -- e.g. the new proposal's weight with the old proposal's id -- and
// wrongly conclude it cannot beat a proposal it could, which breaks the
// algorithm's determinism guarantee. Instead the proposal is packed into
// ONE atomic 64-bit word: the CSR edge id of the proposing edge. Weight
// (w[e]) and suitor id (the edge's opposite endpoint) decode from the id
// against arrays that are immutable for the whole run, so every read is a
// consistent pair by construction. Orders:
//   - scan:   load-acquire of proposal[t], pairing with the commit's
//     store-release (the derived arrays being immutable, relaxed would
//     also be correct; acquire/release documents the publication and is
//     free on x86);
//   - commit: load-relaxed under the already-acquired spinlock, then
//     store-release of the new edge id;
//   - the commit path is the only writer and re-checks beats() under the
//     lock, so a stale scan costs at most a rescan, never a wrong commit.
// Stale scans are also *sound*: standing proposals only improve in the
// strict lexicographic order beats() defines, so a proposal that cannot
// beat a past value can never beat the final one, and skipping it is
// exactly what a serial execution would do. This is what makes the output
// identical across thread counts and runs (asserted by tests/stress).
#pragma once

#include <span>

#include "matching/matching.hpp"

namespace netalign::obs {
class Counters;
}  // namespace netalign::obs

namespace netalign {

struct SuitorStats {
  eid_t proposals = 0;   ///< number of proposal operations performed
  eid_t displaced = 0;   ///< proposals that displaced a previous suitor
};

/// Suitor matching on L under external weights (w <= 0 edges ignored).
/// When `counters` is given, the run's proposal/displacement totals are
/// accumulated into it as "suitor.proposals" / "suitor.displaced" (via
/// add_concurrent -- BP's batched rounding may run several matchers at
/// once against one registry).
BipartiteMatching suitor_matching(const BipartiteGraph& L,
                                  std::span<const weight_t> w,
                                  SuitorStats* stats = nullptr,
                                  obs::Counters* counters = nullptr);

}  // namespace netalign
