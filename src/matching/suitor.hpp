// Suitor 1/2-approximate max-weight matching.
//
// The paper's future-work section points at better approximate matching
// algorithms for bipartite graphs; the Suitor algorithm (Manne and
// Halappanavar, IPDPS 2014) is the successor to the locally-dominant
// algorithm used in the paper and typically performs far fewer neighborhood
// scans. We include it as the extension module so the matching ablation
// bench can compare all three 1/2-approximation strategies (greedy,
// locally-dominant, suitor) for quality and scan counts.
//
// Each vertex proposes to the heaviest neighbor whose current best proposal
// it can beat; a displaced suitor re-proposes. The fixed point assigns each
// matched pair mutually-best proposals and yields the same matching as the
// greedy algorithm under consistent tie-breaking.
#pragma once

#include <span>

#include "matching/matching.hpp"

namespace netalign::obs {
class Counters;
}  // namespace netalign::obs

namespace netalign {

struct SuitorStats {
  eid_t proposals = 0;   ///< number of proposal operations performed
  eid_t displaced = 0;   ///< proposals that displaced a previous suitor
};

/// Suitor matching on L under external weights (w <= 0 edges ignored).
/// When `counters` is given, the run's proposal/displacement totals are
/// accumulated into it as "suitor.proposals" / "suitor.displaced" (via
/// add_concurrent -- BP's batched rounding may run several matchers at
/// once against one registry).
BipartiteMatching suitor_matching(const BipartiteGraph& L,
                                  std::span<const weight_t> w,
                                  SuitorStats* stats = nullptr,
                                  obs::Counters* counters = nullptr);

}  // namespace netalign
