// Path-growing 1/2-approximate max-weight matching (Drake and Hougardy),
// with the dynamic-programming refinement.
//
// Grow vertex-disjoint paths by repeatedly leaving a vertex over its
// heaviest remaining edge; the edges of each path alternate between two
// tentative matchings. The classic analysis gives a 1/2 guarantee for the
// heavier of the two; the DP variant instead computes the *optimal*
// matching within each grown path (paths admit linear-time DP), which is
// never worse and usually noticeably better.
//
// A third 1/2-approximation family next to locally-dominant and Suitor:
// used by the matching ablation bench and as extra cross-checks in the
// property tests.
#pragma once

#include <span>

#include "matching/matching.hpp"

namespace netalign {

struct PathGrowingStats {
  eid_t paths = 0;         ///< number of non-empty paths grown
  eid_t longest_path = 0;  ///< edges in the longest path
};

/// Path-growing matching with per-path DP (w <= 0 edges ignored). Serial.
BipartiteMatching path_growing_matching(const BipartiteGraph& L,
                                        std::span<const weight_t> w,
                                        PathGrowingStats* stats = nullptr);

}  // namespace netalign
