#include "matching/locally_dominant.hpp"

#include <atomic>
#include <stdexcept>

#include "util/parallel.hpp"

namespace netalign {

namespace {

/// Sentinel for "this vertex has never scanned its neighborhood" -- used by
/// the one-sided initialization, where B-side vertices start uninitialized
/// and must be treated as stale when first reached from a matched neighbor.
constexpr vid_t kNeverScanned = -2;
/// Sentinel installed while a thread is recomputing a vertex's candidate;
/// serializes rescans so each vertex has a single candidate writer.
constexpr vid_t kRescanning = -3;

/// The bipartite graph viewed as a general graph: A vertices are
/// [0, num_a), B vertices are [num_a, num_a + num_b). This mirrors the
/// paper's presentation of L to the matcher "by not making a distinction
/// between the two sets of vertices".
class GeneralView {
 public:
  GeneralView(const BipartiteGraph& L, std::span<const weight_t> w)
      : L_(L), w_(w), na_(L.num_a()) {}

  [[nodiscard]] vid_t num_vertices() const { return na_ + L_.num_b(); }
  [[nodiscard]] vid_t num_a() const { return na_; }

  /// Visit (neighbor, weight) pairs of global vertex v.
  template <typename F>
  void for_neighbors(vid_t v, F&& f) const {
    if (v < na_) {
      for (eid_t e = L_.row_begin(v); e < L_.row_end(v); ++e) {
        f(static_cast<vid_t>(na_ + L_.edge_b(e)), w_[e]);
      }
    } else {
      const vid_t b = v - na_;
      for (eid_t k = L_.col_begin(b); k < L_.col_end(b); ++k) {
        f(L_.col_a(k), w_[L_.col_edge(k)]);
      }
    }
  }

 private:
  const BipartiteGraph& L_;
  std::span<const weight_t> w_;
  vid_t na_;
};

class LdSolver {
 public:
  /// The per-vertex state lives in `ws` (grown here if too small, values
  /// reinitialized unconditionally); the solver itself holds only views.
  LdSolver(const BipartiteGraph& L, std::span<const weight_t> w,
           const LdOptions& options, LdStats* stats, LdWorkspace& ws)
      : view_(L, w),
        options_(options),
        stats_(stats),
        n_(view_.num_vertices()),
        mate_(ensure_atomic(ws.mate, n_)),
        candidate_(ensure_atomic(ws.candidate, n_)),
        lock_(ensure_atomic(ws.lock, n_)),
        queue_current_(ws.queue_current),
        queue_next_(ws.queue_next) {
    if (queue_current_.size() < static_cast<std::size_t>(n_)) {
      queue_current_.resize(static_cast<std::size_t>(n_));
      queue_next_.resize(static_cast<std::size_t>(n_));
    }
    for (vid_t v = 0; v < n_; ++v) {
      mate_[v].store(kInvalidVid, std::memory_order_relaxed);
      candidate_[v].store(kNeverScanned, std::memory_order_relaxed);
      lock_[v].clear(std::memory_order_relaxed);
    }
  }

  void run() {
    const eid_t seeded = options_.init == LdInit::kOneSided
                             ? phase1_one_sided()
                             : phase1_two_sided();
    phase2(seeded);
  }

  /// Export the mate map back into bipartite form.
  void extract(const BipartiteGraph& L, std::span<const weight_t> w,
               BipartiteMatching& m) const {
    const vid_t na = view_.num_a();
    m.mate_a.assign(static_cast<std::size_t>(L.num_a()), kInvalidVid);
    m.mate_b.assign(static_cast<std::size_t>(L.num_b()), kInvalidVid);
    m.weight = 0.0;
    m.cardinality = 0;
    for (vid_t a = 0; a < na; ++a) {
      const vid_t g = mate_[a].load(std::memory_order_relaxed);
      if (g == kInvalidVid) continue;
      const vid_t b = g - na;
      m.mate_a[a] = b;
      m.mate_b[b] = a;
      m.cardinality += 1;
      m.weight += w[L.find_edge(a, b)];
    }
  }

 private:
  void acquire(vid_t v) {
    while (lock_[v].test_and_set(std::memory_order_acquire)) {
      // Spin; critical sections are a handful of loads and stores.
    }
  }
  void release(vid_t v) { lock_[v].clear(std::memory_order_release); }

  /// FINDMATE (paper Algorithm 2): heaviest unmatched neighbor with a
  /// positive edge; ties broken toward the smaller vertex id.
  vid_t findmate(vid_t v) {
    weight_t max_wt = 0.0;  // only strictly positive edges are eligible
    vid_t max_id = kInvalidVid;
    view_.for_neighbors(v, [&](vid_t t, weight_t wt) {
      if (wt <= 0.0) return;
      if (mate_[t].load(std::memory_order_acquire) != kInvalidVid) return;
      if (wt > max_wt ||
          (wt == max_wt && (max_id == kInvalidVid || t < max_id))) {
        max_wt = wt;
        max_id = t;
      }
    });
    if (stats_) findmate_calls_.fetch_add(1, std::memory_order_relaxed);
    return max_id;
  }

  /// MATCHVERTEX (paper Algorithm 3): match {v, x} if it is locally
  /// dominant, i.e. the two candidate pointers agree. Both endpoints (or a
  /// rescanner and a stale pointer holder) may attempt the same or an
  /// overlapping pair concurrently, so the decision is made atomically:
  /// take the two per-vertex locks in id order (deadlock-free) and
  /// re-verify both mates and both candidates before committing. The
  /// winner appends both endpoints to the queue with a fetch-and-add on
  /// the queue length -- the paper's __sync_fetch_and_add append.
  void try_match(vid_t v, vid_t x, std::vector<vid_t>& queue,
                 std::atomic<eid_t>& count) {
    const vid_t lo = v < x ? v : x;
    const vid_t hi = v < x ? x : v;
    acquire(lo);
    acquire(hi);
    const bool ok =
        mate_[lo].load(std::memory_order_relaxed) == kInvalidVid &&
        mate_[hi].load(std::memory_order_relaxed) == kInvalidVid &&
        candidate_[lo].load(std::memory_order_relaxed) == hi &&
        candidate_[hi].load(std::memory_order_relaxed) == lo;
    if (ok) {
      mate_[lo].store(hi, std::memory_order_release);
      mate_[hi].store(lo, std::memory_order_release);
    }
    release(hi);
    release(lo);
    if (ok) {
      const eid_t pos = count.fetch_add(2, std::memory_order_relaxed);
      queue[pos] = lo;
      queue[pos + 1] = hi;
    }
  }

  /// Phase 1, two-sided (paper Algorithm 1 lines 4-8): every vertex of
  /// both sets computes a candidate, then locally-dominant pairs match.
  /// The two loops are separate parallel regions, so every candidate is
  /// fixed (and findmate is a pure function of the all-unmatched state)
  /// before any matching happens.
  eid_t phase1_two_sided() {
    std::atomic<eid_t> count{0};
    fenced_parallel([&] {
#pragma omp for schedule(dynamic, kDynamicChunk) nowait
      for (vid_t v = 0; v < n_; ++v) {
        candidate_[v].store(findmate(v), std::memory_order_release);
      }
    });
    fenced_parallel([&] {
#pragma omp for schedule(dynamic, kDynamicChunk) nowait
      for (vid_t v = 0; v < n_; ++v) {
        const vid_t t = candidate_[v].load(std::memory_order_acquire);
        if (t >= 0 && candidate_[t].load(std::memory_order_acquire) == v) {
          try_match(v, t, queue_current_, count);
        }
      }
    });
    return count.load(std::memory_order_relaxed);
  }

  /// Phase 1, one-sided bipartite-aware initialization (paper Section V):
  /// threads spawn only from V_A; a thread handling vertex a also inspects
  /// the adjacency of its chosen b in V_B to decide local dominance. The
  /// candidate computation for reached B vertices happens in its own
  /// parallel region (still against the all-unmatched state, so concurrent
  /// recomputation is benign), and B vertices that are nobody's best keep
  /// the kNeverScanned sentinel for lazy initialization in phase 2.
  eid_t phase1_one_sided() {
    std::atomic<eid_t> count{0};
    const vid_t na = view_.num_a();
    fenced_parallel([&] {
#pragma omp for schedule(dynamic, kDynamicChunk) nowait
      for (vid_t a = 0; a < na; ++a) {
        candidate_[a].store(findmate(a), std::memory_order_release);
      }
    });
    fenced_parallel([&] {
#pragma omp for schedule(dynamic, kDynamicChunk) nowait
      for (vid_t a = 0; a < na; ++a) {
        const vid_t b = candidate_[a].load(std::memory_order_acquire);
        if (b == kInvalidVid) continue;
        if (candidate_[b].load(std::memory_order_acquire) == kNeverScanned) {
          // Pure function of the all-unmatched state: concurrent writers
          // compute the same value.
          candidate_[b].store(findmate(b), std::memory_order_release);
        }
      }
    });
    fenced_parallel([&] {
#pragma omp for schedule(dynamic, kDynamicChunk) nowait
      for (vid_t a = 0; a < na; ++a) {
        const vid_t b = candidate_[a].load(std::memory_order_acquire);
        if (b != kInvalidVid &&
            candidate_[b].load(std::memory_order_acquire) == a) {
          try_match(a, b, queue_current_, count);
        }
      }
    });
    return count.load(std::memory_order_relaxed);
  }

  /// Revalidation sweep, run when the queue drains: any unmatched vertex
  /// whose candidate is missing (one-sided lazy init) or points at a
  /// matched vertex is rescanned, and newly agreeing pairs are matched and
  /// queued. With two-sided initialization the wake-up propagation of
  /// phase 2 makes this a no-op; with one-sided initialization it catches
  /// B-side vertices that were never anyone's best and never became
  /// adjacent to a matched vertex, which would otherwise strand an
  /// augmentable edge and break maximality.
  eid_t revalidation_sweep(std::vector<vid_t>& queue,
                           std::atomic<eid_t>& count) {
    fenced_parallel([&] {
#pragma omp for schedule(dynamic, kDynamicChunk) nowait
      for (vid_t v = 0; v < n_; ++v) {
        if (mate_[v].load(std::memory_order_acquire) != kInvalidVid) continue;
        const vid_t cv = candidate_[v].load(std::memory_order_acquire);
        const bool dead = cv == kNeverScanned || cv == kInvalidVid ||
                          (cv >= 0 && mate_[cv].load(
                                          std::memory_order_acquire) !=
                                          kInvalidVid);
        if (dead) {
          candidate_[v].store(findmate(v), std::memory_order_release);
        }
      }
    });
    fenced_parallel([&] {
#pragma omp for schedule(dynamic, kDynamicChunk) nowait
      for (vid_t v = 0; v < n_; ++v) {
        if (mate_[v].load(std::memory_order_acquire) != kInvalidVid) continue;
        const vid_t t = candidate_[v].load(std::memory_order_acquire);
        if (t >= 0 && candidate_[t].load(std::memory_order_acquire) == v) {
          try_match(v, t, queue, count);
        }
      }
    });
    return count.load(std::memory_order_relaxed);
  }

  /// Phase 2 (paper Algorithm 1 lines 9-16): drain Q_C, reactivating
  /// unmatched neighbors whose candidate died, until no vertices were
  /// matched in a round. The queues swap by pointer at the barrier.
  void phase2(eid_t initial_size) {
    std::atomic<eid_t> next_count{0};
    eid_t current_size = initial_size;
    while (current_size > 0) {
      if (stats_) {
        stats_->queue_sizes.push_back(current_size);
        stats_->rounds += 1;
      }
      fenced_parallel([&] {
#pragma omp for schedule(dynamic, 64) nowait
        for (eid_t idx = 0; idx < current_size; ++idx) {
          const vid_t u = queue_current_[idx];
          view_.for_neighbors(u, [&](vid_t v, weight_t) {
            if (mate_[v].load(std::memory_order_acquire) != kInvalidVid) {
              return;
            }
            // Claim the rescan: CAS from the expected stale value to the
            // in-progress marker, so v has exactly one candidate writer
            // even when several matched neighbors reach it in the same
            // round.
            vid_t cv = candidate_[v].load(std::memory_order_acquire);
            if (cv != u && cv != kNeverScanned) return;
            if (!candidate_[v].compare_exchange_strong(
                    cv, kRescanning, std::memory_order_acq_rel)) {
              return;
            }
            const vid_t nv = findmate(v);
            candidate_[v].store(nv, std::memory_order_release);
            if (nv != kInvalidVid &&
                candidate_[nv].load(std::memory_order_acquire) == v) {
              try_match(v, nv, queue_next_, next_count);
            }
          });
        }
      });
      std::swap(queue_current_, queue_next_);  // the paper's pointer swap
      current_size = next_count.exchange(0, std::memory_order_acq_rel);
      if (current_size == 0) {
        // Queue drained: one revalidation sweep, then continue if it
        // matched anything (see revalidation_sweep).
        current_size = revalidation_sweep(queue_current_, next_count);
        next_count.store(0, std::memory_order_relaxed);
      }
    }
    if (stats_) {
      stats_->findmate_calls = findmate_calls_.load(std::memory_order_relaxed);
    }
  }

  /// Grow an atomic-element vector to at least n slots. Vectors of
  /// atomics cannot resize in place (the elements are immovable), so
  /// growth reconstructs; shrink never happens, keeping reuse cheap.
  template <typename T>
  static std::vector<T>& ensure_atomic(std::vector<T>& v, vid_t n) {
    if (v.size() < static_cast<std::size_t>(n)) {
      v = std::vector<T>(static_cast<std::size_t>(n));
    }
    return v;
  }

  GeneralView view_;
  LdOptions options_;
  LdStats* stats_;
  vid_t n_;
  std::vector<std::atomic<vid_t>>& mate_;
  std::vector<std::atomic<vid_t>>& candidate_;
  std::vector<std::atomic_flag>& lock_;
  std::vector<vid_t>& queue_current_;
  std::vector<vid_t>& queue_next_;
  std::atomic<eid_t> findmate_calls_{0};
};

}  // namespace

BipartiteMatching locally_dominant_matching(const BipartiteGraph& L,
                                            std::span<const weight_t> w,
                                            const LdOptions& options,
                                            LdStats* stats,
                                            LdWorkspace* workspace) {
  if (static_cast<eid_t>(w.size()) != L.num_edges()) {
    throw std::invalid_argument("locally_dominant_matching: weight size");
  }
  if (stats) *stats = LdStats{};
  LdWorkspace local;
  LdSolver solver(L, w, options, stats, workspace ? *workspace : local);
  solver.run();
  BipartiteMatching m;
  solver.extract(L, w, m);
  return m;
}

}  // namespace netalign
