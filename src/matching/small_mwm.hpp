// Exact max-weight matching on tiny bipartite subproblems.
//
// Step 1 of Klau's method solves one exact matching *per row of S*, on the
// handful of L-edges that share a square with that row's edge (paper
// Section IV-B). The paper pre-allocates the maximum memory p threads need
// and never allocates inside the iteration; this class is that per-thread
// scratch. It compresses the arbitrary (a, b) endpoint ids of the row's
// edges into dense local ids and runs the same successive-shortest-path
// core as the full-size exact solver.
#pragma once

#include <span>
#include <vector>

#include "matching/exact_mwm.hpp"
#include "util/types.hpp"

namespace netalign {

class SmallMwmSolver {
 public:
  /// One candidate edge of the subproblem: global endpoint ids plus weight.
  struct Edge {
    vid_t a;
    vid_t b;
    weight_t w;
  };

  /// Solve max-weight matching over `edges` (weights <= 0 ignored).
  /// Returns the matched weight; `chosen[k]` is set to 1 iff edges[k] is
  /// in the matching (chosen must have edges.size() entries).
  weight_t solve(std::span<const Edge> edges, std::span<std::uint8_t> chosen);

  /// Lifetime observability: number of solve() calls and total candidate
  /// edges seen by this instance. Each MR thread owns one solver, so the
  /// caller sums these across its per-thread scratch after the run and
  /// reports them through an obs::Counters registry -- the merge pattern
  /// of StepTimers, with no synchronization in the hot loop.
  [[nodiscard]] std::int64_t solve_calls() const { return solve_calls_; }
  [[nodiscard]] std::int64_t edges_seen() const { return edges_seen_; }

 private:
  // Endpoint-id compression scratch, reused across calls.
  std::vector<vid_t> local_a_, local_b_;      // per input edge
  std::vector<vid_t> uniq_a_, uniq_b_;        // sorted unique endpoint ids
  std::vector<eid_t> ptr_;
  std::vector<vid_t> col_;
  std::vector<weight_t> wgt_;
  std::vector<eid_t> edge_of_slot_;           // CSR slot -> input edge index
  std::vector<vid_t> mate_l_, mate_r_;
  std::vector<eid_t> order_;
  MwmWorkspace ws_;
  std::int64_t solve_calls_ = 0;
  std::int64_t edges_seen_ = 0;
};

}  // namespace netalign
