// Common result type and entry points for bipartite matching.
//
// All matchers take the bipartite graph L plus an *external* weight vector
// indexed by L's edge ids -- the alignment methods repeatedly re-match the
// same graph under different heuristic weights (y, z, w-bar), so weights are
// never read from L itself. Edges with weight <= 0 are ignored by every
// matcher: an optimal max-weight matching never uses them, and the 1/2
// guarantee of the approximate matchers is stated for positive weights.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "graph/bipartite.hpp"
#include "util/types.hpp"

namespace netalign {

/// A matching in a bipartite graph, as mate maps on both sides.
struct BipartiteMatching {
  std::vector<vid_t> mate_a;  ///< size num_a; matched B vertex or kInvalidVid
  std::vector<vid_t> mate_b;  ///< size num_b; matched A vertex or kInvalidVid
  weight_t weight = 0.0;      ///< total weight of matched edges
  eid_t cardinality = 0;      ///< number of matched edges

  /// True if edge id e of L is matched (both endpoints point at each other).
  [[nodiscard]] bool contains(const BipartiteGraph& L, eid_t e) const {
    return mate_a[L.edge_a(e)] == L.edge_b(e);
  }

  /// Matched edge ids in increasing order.
  [[nodiscard]] std::vector<eid_t> matched_edges(const BipartiteGraph& L) const;

  /// 0/1 indicator vector over L's edges (the x of the integer program).
  [[nodiscard]] std::vector<std::uint8_t> indicator(const BipartiteGraph& L) const;
};

}  // namespace netalign
