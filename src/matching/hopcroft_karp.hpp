// Hopcroft-Karp maximum-cardinality bipartite matching, O(E sqrt(V)).
//
// The weighted matchers only ever need weights, but the *cardinality*
// half of the locally-dominant algorithm's guarantee ("an approximation
// ratio of half for the cardinality as well", paper Section V) is stated
// against the maximum cardinality matching -- this solver is the oracle
// for that property in the test suite, and a generally useful substrate.
#pragma once

#include <span>

#include "matching/matching.hpp"

namespace netalign {

/// Maximum-cardinality matching on L (weights ignored). If `eligible` is
/// non-empty it must have one entry per edge; edges with eligible[e] == 0
/// are excluded (used to restrict to the positive-weight subgraph).
BipartiteMatching maximum_cardinality_matching(
    const BipartiteGraph& L, std::span<const std::uint8_t> eligible = {});

}  // namespace netalign
