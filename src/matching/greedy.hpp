// Classical greedy 1/2-approximation: sort edges by decreasing weight and
// take every edge whose endpoints are both free. Serial, O(m log m).
// Included as the textbook baseline the locally-dominant algorithm is
// equivalent to in output weight guarantees (both are 1/2-approximations
// that select locally-dominant edges), and as a reference implementation
// for the property tests.
#pragma once

#include <span>

#include "matching/matching.hpp"

namespace netalign {

/// Greedy matching under external weights (w <= 0 edges ignored).
/// Ties are broken by edge id so results are deterministic.
BipartiteMatching greedy_matching(const BipartiteGraph& L,
                                  std::span<const weight_t> w);

}  // namespace netalign
