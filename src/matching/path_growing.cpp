#include "matching/path_growing.hpp"

#include <algorithm>
#include <stdexcept>
#include <vector>

namespace netalign {

namespace {

/// Optimal matching of a path given its edge weights: classic DP where
/// take[i] = best using edge i, skip[i] = best without it. Marks chosen
/// edges in `chosen` (resized by the caller).
void path_dp(const std::vector<weight_t>& weights,
             std::vector<std::uint8_t>& chosen) {
  const std::size_t k = weights.size();
  chosen.assign(k, 0);
  if (k == 0) return;
  // best[i]: optimal value for the prefix of the first i edges; took[i]
  // records whether edge i-1 is in that optimum (robust traceback, no
  // floating-point equality tests).
  std::vector<weight_t> best(k + 1, 0.0);
  std::vector<std::uint8_t> took(k + 1, 0);
  for (std::size_t i = 1; i <= k; ++i) {
    const weight_t with =
        (i >= 2 ? best[i - 2] : 0.0) + std::max(weights[i - 1], 0.0);
    if (with > best[i - 1] && weights[i - 1] > 0.0) {
      best[i] = with;
      took[i] = 1;
    } else {
      best[i] = best[i - 1];
    }
  }
  std::size_t i = k;
  while (i >= 1) {
    if (took[i]) {
      chosen[i - 1] = 1;
      i = i >= 2 ? i - 2 : 0;
    } else {
      i -= 1;
    }
  }
}

}  // namespace

BipartiteMatching path_growing_matching(const BipartiteGraph& L,
                                        std::span<const weight_t> w,
                                        PathGrowingStats* stats) {
  if (static_cast<eid_t>(w.size()) != L.num_edges()) {
    throw std::invalid_argument("path_growing_matching: weight size");
  }
  const vid_t na = L.num_a();
  const vid_t n = na + L.num_b();

  // removed[v]: vertex already belongs to a grown path.
  std::vector<std::uint8_t> removed(static_cast<std::size_t>(n), 0);

  auto heaviest_edge = [&](vid_t v, vid_t& other, eid_t& edge) {
    weight_t best = 0.0;
    other = kInvalidVid;
    edge = kInvalidEid;
    if (v < na) {
      for (eid_t e = L.row_begin(v); e < L.row_end(v); ++e) {
        const vid_t t = na + L.edge_b(e);
        if (removed[t] || w[e] <= 0.0) continue;
        if (w[e] > best || (w[e] == best && t < other)) {
          best = w[e];
          other = t;
          edge = e;
        }
      }
    } else {
      const vid_t b = v - na;
      for (eid_t k = L.col_begin(b); k < L.col_end(b); ++k) {
        const eid_t e = L.col_edge(k);
        const vid_t t = L.col_a(k);
        if (removed[t] || w[e] <= 0.0) continue;
        if (w[e] > best || (w[e] == best && t < other)) {
          best = w[e];
          other = t;
          edge = e;
        }
      }
    }
    return best;
  };

  BipartiteMatching m;
  m.mate_a.assign(static_cast<std::size_t>(L.num_a()), kInvalidVid);
  m.mate_b.assign(static_cast<std::size_t>(L.num_b()), kInvalidVid);

  std::vector<eid_t> path_edges;
  std::vector<weight_t> path_weights;
  std::vector<std::uint8_t> chosen;
  for (vid_t start = 0; start < n; ++start) {
    if (removed[start]) continue;
    // Grow a path from `start`, removing each visited vertex.
    path_edges.clear();
    path_weights.clear();
    vid_t v = start;
    while (true) {
      vid_t other;
      eid_t edge;
      const weight_t best = heaviest_edge(v, other, edge);
      removed[v] = 1;
      if (best <= 0.0 || other == kInvalidVid) break;
      path_edges.push_back(edge);
      path_weights.push_back(best);
      v = other;
    }
    if (path_edges.empty()) continue;
    if (stats) {
      stats->paths += 1;
      stats->longest_path =
          std::max(stats->longest_path,
                   static_cast<eid_t>(path_edges.size()));
    }
    // Optimal matching within the path via DP.
    path_dp(path_weights, chosen);
    for (std::size_t i = 0; i < path_edges.size(); ++i) {
      if (!chosen[i]) continue;
      const eid_t e = path_edges[i];
      m.mate_a[L.edge_a(e)] = L.edge_b(e);
      m.mate_b[L.edge_b(e)] = L.edge_a(e);
      m.cardinality += 1;
      m.weight += w[e];
    }
  }
  return m;
}

}  // namespace netalign
