// Basic graph algorithms over the undirected Graph type: connectivity,
// BFS distances, and degree statistics. Used by the examples and benches
// to characterize generated instances (the paper's Section VI describes
// its inputs by exactly these statistics) and by tests as structural
// oracles.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"
#include "util/types.hpp"

namespace netalign {

/// Connected components: comp[v] in [0, count) with components numbered
/// by order of their smallest vertex.
struct Components {
  std::vector<vid_t> comp;
  vid_t count = 0;
  /// Size of each component.
  std::vector<vid_t> sizes;
  [[nodiscard]] vid_t largest() const;
};

Components connected_components(const Graph& g);

/// BFS hop distances from `source`; unreachable vertices get -1.
std::vector<vid_t> bfs_distances(const Graph& g, vid_t source);

/// Histogram of vertex degrees: bucket d counts vertices of degree d.
std::vector<eid_t> degree_histogram(const Graph& g);

/// Summary statistics of the degree sequence.
struct DegreeStats {
  double mean = 0.0;
  double second_moment = 0.0;  ///< mean of squared degrees
  vid_t max = 0;
  vid_t isolated = 0;  ///< degree-0 vertices
};

DegreeStats degree_stats(const Graph& g);

}  // namespace netalign
