#include "graph/algorithms.hpp"

#include <algorithm>
#include <stdexcept>

namespace netalign {

vid_t Components::largest() const {
  if (sizes.empty()) return 0;
  return *std::max_element(sizes.begin(), sizes.end());
}

Components connected_components(const Graph& g) {
  const vid_t n = g.num_vertices();
  Components out;
  out.comp.assign(static_cast<std::size_t>(n), kInvalidVid);
  std::vector<vid_t> stack;
  for (vid_t start = 0; start < n; ++start) {
    if (out.comp[start] != kInvalidVid) continue;
    const vid_t id = out.count++;
    out.sizes.push_back(0);
    stack.push_back(start);
    out.comp[start] = id;
    while (!stack.empty()) {
      const vid_t v = stack.back();
      stack.pop_back();
      out.sizes[id]++;
      for (const vid_t u : g.neighbors(v)) {
        if (out.comp[u] == kInvalidVid) {
          out.comp[u] = id;
          stack.push_back(u);
        }
      }
    }
  }
  return out;
}

std::vector<vid_t> bfs_distances(const Graph& g, vid_t source) {
  if (source < 0 || source >= g.num_vertices()) {
    throw std::out_of_range("bfs_distances: source out of range");
  }
  std::vector<vid_t> dist(static_cast<std::size_t>(g.num_vertices()), -1);
  std::vector<vid_t> queue;
  queue.push_back(source);
  dist[source] = 0;
  for (std::size_t head = 0; head < queue.size(); ++head) {
    const vid_t v = queue[head];
    for (const vid_t u : g.neighbors(v)) {
      if (dist[u] == -1) {
        dist[u] = dist[v] + 1;
        queue.push_back(u);
      }
    }
  }
  return dist;
}

std::vector<eid_t> degree_histogram(const Graph& g) {
  std::vector<eid_t> hist(static_cast<std::size_t>(g.max_degree()) + 1, 0);
  for (vid_t v = 0; v < g.num_vertices(); ++v) hist[g.degree(v)]++;
  return hist;
}

DegreeStats degree_stats(const Graph& g) {
  DegreeStats s;
  const vid_t n = g.num_vertices();
  if (n == 0) return s;
  double sum = 0.0, sq = 0.0;
  for (vid_t v = 0; v < n; ++v) {
    const auto d = static_cast<double>(g.degree(v));
    sum += d;
    sq += d * d;
    s.max = std::max(s.max, g.degree(v));
    if (g.degree(v) == 0) s.isolated++;
  }
  s.mean = sum / static_cast<double>(n);
  s.second_moment = sq / static_cast<double>(n);
  return s;
}

}  // namespace netalign
